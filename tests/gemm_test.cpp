// The GEMM kernel layer (nn/gemm.h) and everything routed through it:
// NN/NT/TN against an order-matched reference (exact — the blocked
// kernel's documented reduction order is reproducible in plain loops),
// im2col-conv against direct-conv across geometries, IEEE NaN/Inf
// propagation through matmul (the old kernel's zero-skip branch
// silently suppressed it), the batched LSTM input projection, and the
// steady-state no-allocation guarantee of the workspace arena.

#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "nn/conv.h"
#include "nn/dispatch.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/lstm.h"
#include "nn/ops.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace spectra::nn {
namespace {

using gemm::Trans;

// Reference implementing the kernel's documented reduction order: fresh
// per-kKC-block accumulators, p ascending within a block, blocks added to
// C in order. Exact-order match lets every comparison be bitwise.
void reference_gemm(Trans ta, Trans tb, long m, long n, long k, const float* a, long lda,
                    const float* b, long ldb, float* c, long ldc, bool accumulate) {
  for (long i = 0; i < m; ++i) {
    for (long j = 0; j < n; ++j) {
      float out = accumulate ? c[i * ldc + j] : 0.0f;
      for (long pc = 0; pc < k; pc += gemm::kKC) {
        const long kc = std::min(gemm::kKC, k - pc);
        float block = 0.0f;
        for (long p = pc; p < pc + kc; ++p) {
          const float av = ta == Trans::kNo ? a[i * lda + p] : a[p * lda + i];
          const float bv = tb == Trans::kNo ? b[p * ldb + j] : b[j * ldb + p];
          block += av * bv;
        }
        out += block;
      }
      c[i * ldc + j] = out;
    }
  }
}

std::vector<float> random_values(long count, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(count));
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

void check_variant(Trans ta, Trans tb, long m, long n, long k, bool accumulate, Rng& rng) {
  const long lda = ta == Trans::kNo ? k : m;
  const long ldb = tb == Trans::kNo ? n : k;
  const std::vector<float> a = random_values(m * k, rng);
  const std::vector<float> b = random_values(k * n, rng);
  std::vector<float> c = random_values(m * n, rng);
  std::vector<float> expected = c;
  gemm::sgemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, c.data(), n, accumulate);
  reference_gemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, expected.data(), n, accumulate);
  for (long i = 0; i < m * n; ++i) {
    ASSERT_EQ(c[static_cast<std::size_t>(i)], expected[static_cast<std::size_t>(i)])
        << "ta=" << (ta == Trans::kNo ? "N" : "T") << " tb=" << (tb == Trans::kNo ? "N" : "T")
        << " m=" << m << " n=" << n << " k=" << k << " accumulate=" << accumulate
        << " diverges at flat index " << i;
  }
}

TEST(GemmTest, RandomShapesMatchOrderedReferenceExactly) {
  Rng rng(2024);
  Rng shapes(7);
  for (int trial = 0; trial < 24; ++trial) {
    const long m = 1 + static_cast<long>(shapes.uniform_index(33));
    const long n = 1 + static_cast<long>(shapes.uniform_index(40));
    const long k = 1 + static_cast<long>(shapes.uniform_index(50));
    const bool accumulate = trial % 2 == 0;
    check_variant(Trans::kNo, Trans::kNo, m, n, k, accumulate, rng);
    check_variant(Trans::kNo, Trans::kTrans, m, n, k, accumulate, rng);
    check_variant(Trans::kTrans, Trans::kNo, m, n, k, accumulate, rng);
  }
}

TEST(GemmTest, BlockedShapesCrossEveryBlockBoundary) {
  Rng rng(11);
  // k > kKC exercises multi-block reduction, n > kNC the column blocking,
  // and the off-by-one shapes the edge tiles of the register kernel.
  check_variant(Trans::kNo, Trans::kNo, 5, 3, gemm::kKC + 37, false, rng);
  check_variant(Trans::kNo, Trans::kTrans, 3, gemm::kKC + 5, 9, true, rng);
  check_variant(Trans::kTrans, Trans::kNo, 7, gemm::kNC + 13, 21, false, rng);
  check_variant(Trans::kNo, Trans::kNo, gemm::kMR + 1, gemm::kNR + 1, 3, true, rng);
  check_variant(Trans::kNo, Trans::kNo, 1, 1, 1, false, rng);
}

// Every dispatch level must reproduce the ordered reference bitwise: the
// wider kernels change which C columns share a register, never the
// per-element reduction order. Runs whatever levels this CPU and build
// support (generic always; avx2/avx512 on x86 CI hosts).
TEST(GemmTest, EverySimdLevelMatchesOrderedReferenceExactly) {
  const SimdLevel restore = active_simd_level();
  for (const SimdLevel level :
       {SimdLevel::kGeneric, SimdLevel::kAvx2, SimdLevel::kAvx512, SimdLevel::kNeon}) {
    if (!simd_level_available(level)) continue;
    set_simd_level(level);
    Rng rng(3000 + static_cast<std::uint64_t>(level));
    // Shapes straddling each level's tile: mr up to 8, nr up to 32.
    check_variant(Trans::kNo, Trans::kNo, 9, 33, gemm::kKC + 7, false, rng);
    check_variant(Trans::kNo, Trans::kTrans, 8, 32, 19, true, rng);
    check_variant(Trans::kTrans, Trans::kNo, 3, 5, 41, false, rng);
    check_variant(Trans::kNo, Trans::kNo, 1, 1, 1, true, rng);
  }
  set_simd_level(restore);
}

TEST(GemmTest, ParseSimdLevelRoundTripsAndRejectsTypos) {
  for (const SimdLevel level :
       {SimdLevel::kGeneric, SimdLevel::kAvx2, SimdLevel::kAvx512, SimdLevel::kNeon}) {
    EXPECT_EQ(parse_simd_level(simd_level_name(level)), level);
  }
  EXPECT_THROW(parse_simd_level("avx9000"), spectra::Error);
  EXPECT_THROW(parse_simd_level(""), spectra::Error);
}

TEST(GemmTest, GenericSimdLevelIsAlwaysAvailable) {
  EXPECT_TRUE(simd_level_available(SimdLevel::kGeneric));
}

TEST(GemmTest, NaiveToleranceSanity) {
  // Independent of the order-matched reference: a plain p-ascending naive
  // product agrees to float tolerance even across k blocks.
  Rng rng(17);
  const long m = 6, n = 12, k = gemm::kKC + 50;
  const std::vector<float> a = random_values(m * k, rng);
  const std::vector<float> b = random_values(k * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  gemm::sgemm(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n, c.data(), n, false);
  for (long i = 0; i < m; ++i) {
    for (long j = 0; j < n; ++j) {
      double acc = 0.0;
      for (long p = 0; p < k; ++p)
        acc += static_cast<double>(a[static_cast<std::size_t>(i * k + p)]) *
               static_cast<double>(b[static_cast<std::size_t>(p * n + j)]);
      EXPECT_NEAR(c[static_cast<std::size_t>(i * n + j)], acc, 1e-4)
          << "at (" << i << ", " << j << ")";
    }
  }
}

TEST(GemmTest, MatmulPropagatesNaNAndInfPerIeee) {
  // The pre-GEMM kernel skipped zero A entries, silently producing 0
  // where IEEE demands NaN (0 · inf) — a regression guard for that.
  Tensor ta({2, 2});
  ta[0] = 0.0f, ta[1] = 0.0f, ta[2] = 1.0f, ta[3] = 2.0f;
  Tensor tb({2, 2});
  tb[0] = std::numeric_limits<float>::infinity(), tb[1] = 1.0f;
  tb[2] = std::numeric_limits<float>::quiet_NaN(), tb[3] = 2.0f;
  Var y = matmul(Var::constant(ta), Var::constant(tb));
  // Row 0: 0·inf + 0·NaN = NaN; 0·1 + 0·2 = 0.
  EXPECT_TRUE(std::isnan(y.value()[0]));
  EXPECT_EQ(y.value()[1], 0.0f);
  // Row 1: 1·inf + 2·NaN = NaN; 1·1 + 2·2 = 5.
  EXPECT_TRUE(std::isnan(y.value()[2]));
  EXPECT_EQ(y.value()[3], 5.0f);
}

TEST(GemmTest, MatmulBackwardMatchesOrderedReference) {
  Rng rng(23);
  const long m = 9, k = 14, n = 11;
  Var a = Var::leaf(init::gaussian({m, k}, 1.0f, rng));
  Var b = Var::leaf(init::gaussian({k, n}, 1.0f, rng));
  sum(matmul(a, b)).backward();
  // d(sum)/dA = 1·Bᵀ, d(sum)/dB = Aᵀ·1 — through the same kernel order.
  std::vector<float> ones(static_cast<std::size_t>(m * n), 1.0f);
  std::vector<float> ga(static_cast<std::size_t>(m * k), 0.0f);
  std::vector<float> gb(static_cast<std::size_t>(k * n), 0.0f);
  reference_gemm(Trans::kNo, Trans::kTrans, m, k, n, ones.data(), n, b.value().data(), n,
                 ga.data(), k, true);
  reference_gemm(Trans::kTrans, Trans::kNo, k, n, m, a.value().data(), k, ones.data(), n,
                 gb.data(), n, true);
  for (long i = 0; i < m * k; ++i) ASSERT_EQ(a.grad()[i], ga[static_cast<std::size_t>(i)]);
  for (long i = 0; i < k * n; ++i) ASSERT_EQ(b.grad()[i], gb[static_cast<std::size_t>(i)]);
}

// --- im2col lowering vs direct kernels ---

struct ConvCase {
  long N, C, H, W, O, kernel, stride, padding;
};

void expect_conv_impls_agree(const ConvCase& cc) {
  Rng rng(311);
  const Tensor x0 = init::gaussian({cc.N, cc.C, cc.H, cc.W}, 1.0f, rng);
  const Tensor w0 = init::gaussian({cc.O, cc.C, cc.kernel, cc.kernel}, 0.5f, rng);
  const Tensor b0 = init::gaussian({cc.O}, 0.5f, rng);

  struct Run {
    Tensor y, gx, gw, gb;
  };
  auto run = [&](Conv2dImpl impl) {
    Var x = Var::leaf(x0);
    Var w = Var::leaf(w0);
    Var b = Var::leaf(b0);
    Conv2dSpec spec{.stride = cc.stride, .padding = cc.padding, .impl = impl};
    Var y = conv2d(x, w, b, spec);
    sum(y).backward();
    return Run{y.value(), x.grad(), w.grad(), b.grad()};
  };
  const Run direct = run(Conv2dImpl::kDirect);
  const Run lowered = run(Conv2dImpl::kIm2col);

  auto near = [&](const Tensor& a, const Tensor& b, const char* what) {
    ASSERT_TRUE(a.same_shape(b)) << what;
    for (long i = 0; i < a.numel(); ++i) {
      ASSERT_NEAR(a[i], b[i], 1e-4)
          << what << " diverges at flat index " << i << " for kernel=" << cc.kernel
          << " stride=" << cc.stride << " padding=" << cc.padding;
    }
  };
  near(direct.y, lowered.y, "conv2d forward");
  near(direct.gx, lowered.gx, "conv2d grad input");
  near(direct.gw, lowered.gw, "conv2d grad weight");
  near(direct.gb, lowered.gb, "conv2d grad bias");
}

TEST(GemmTest, Im2colConvMatchesDirectAcrossGeometries) {
  // Stride/padding/kernel sweep incl. the pointwise no-copy path
  // (kh=kw=1) and a kernel larger than the input made valid by padding.
  expect_conv_impls_agree({2, 3, 7, 5, 4, 3, 1, 1});
  expect_conv_impls_agree({2, 3, 9, 7, 4, 3, 2, 1});
  expect_conv_impls_agree({3, 5, 6, 6, 7, 1, 1, 0});  // pointwise fast path
  expect_conv_impls_agree({2, 2, 6, 6, 3, 1, 2, 0});  // 1x1 but strided (col path)
  expect_conv_impls_agree({1, 2, 3, 3, 2, 5, 1, 2});  // kernel > input, padded
  expect_conv_impls_agree({2, 4, 8, 8, 6, 4, 3, 2});  // even kernel, coarse stride
}

// --- batched LSTM input projection ---

TEST(GemmTest, BatchedLstmForwardMatchesPerStepReference) {
  Rng rng(41);
  const long T = 5, B = 3, in = 6, hidden = 4, out = 2;
  Rng model_rng(77);
  Lstm lstm(in, hidden, out, model_rng, Activation::kNone);

  std::vector<Var> inputs;
  for (long t = 0; t < T; ++t) {
    inputs.push_back(Var::leaf(init::gaussian({B, in}, 1.0f, rng)));
  }
  const std::vector<Var> batched = lstm.forward(inputs);

  // Per-step reference through the public single-step API (the pre-batch
  // code path). The batched projection computes each row with the same
  // reduction order, so outputs must match bitwise.
  LstmState state = lstm.cell().initial_state(B);
  ASSERT_EQ(batched.size(), static_cast<std::size_t>(T));
  for (long t = 0; t < T; ++t) {
    state = lstm.cell().step(inputs[static_cast<std::size_t>(t)], state);
    const Tensor expected = lstm.head().forward(state.h).value();
    const Tensor& got = batched[static_cast<std::size_t>(t)].value();
    ASSERT_TRUE(got.same_shape(expected));
    for (long i = 0; i < expected.numel(); ++i) {
      ASSERT_EQ(got[i], expected[i]) << "step " << t << " flat index " << i;
    }
  }

  // Gradients flow back through concat/slice to every step's input.
  Var total = sum(batched[0]);
  for (std::size_t t = 1; t < batched.size(); ++t) total = add(total, sum(batched[t]));
  total.backward();
  for (long t = 0; t < T; ++t) {
    const Tensor& gx = inputs[static_cast<std::size_t>(t)].grad();
    ASSERT_EQ(gx.numel(), B * in);
    float norm = 0.0f;
    for (long i = 0; i < gx.numel(); ++i) norm += gx[i] * gx[i];
    EXPECT_GT(norm, 0.0f) << "no gradient reached step " << t << " input";
  }
}

TEST(GemmTest, ForwardRepeatSharesOneProjection) {
  Rng rng(43);
  Rng model_rng(79);
  Lstm lstm(5, 4, 3, model_rng, Activation::kTanh);
  Var input = Var::leaf(init::gaussian({2, 5}, 1.0f, rng));
  const std::vector<Var> outputs = lstm.forward_repeat(input, 6);
  ASSERT_EQ(outputs.size(), 6u);
  // Reference via the single-step API.
  LstmState state = lstm.cell().initial_state(2);
  for (std::size_t t = 0; t < outputs.size(); ++t) {
    state = lstm.cell().step(input, state);
    const Tensor expected = vtanh(lstm.head().forward(state.h)).value();
    for (long i = 0; i < expected.numel(); ++i) {
      ASSERT_EQ(outputs[t].value()[i], expected[i]) << "step " << t << " flat index " << i;
    }
  }
  sum(outputs.back()).backward();
  EXPECT_GT(input.grad().numel(), 0);
}

// --- steady-state allocation guarantee ---

TEST(GemmTest, WorkspaceArenaDoesNotGrowInSteadyState) {
  set_parallel_threads(1);  // one thread: a single arena to observe
  obs::Counter& grows = obs::Registry::instance().counter("gemm.workspace_grows");
  Rng rng(59);
  const long m = 24, n = 96, k = 243;
  const std::vector<float> a = random_values(m * k, rng);
  const std::vector<float> b = random_values(k * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n));

  gemm::sgemm(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n, c.data(), n, false);
  const std::uint64_t after_warmup = grows.value();
  for (int i = 0; i < 5; ++i) {
    gemm::sgemm(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n, c.data(), n, false);
    // Smaller problems reuse the same arena too.
    gemm::sgemm(Trans::kNo, Trans::kTrans, 6, 24, 96, a.data(), 96, b.data(), 96, c.data(), 24,
                false);
  }
  EXPECT_EQ(grows.value(), after_warmup) << "sgemm allocated in steady state";

  // The conv lowering's im2col/dcol scratch obeys the same contract.
  Var x = Var::leaf(init::gaussian({2, 3, 8, 8}, 1.0f, rng));
  Var w = Var::leaf(init::gaussian({4, 3, 3, 3}, 0.5f, rng));
  Var bias = Var::leaf(init::gaussian({4}, 0.5f, rng));
  Conv2dSpec spec{.stride = 1, .padding = 1, .impl = Conv2dImpl::kIm2col};
  sum(conv2d(x, w, bias, spec)).backward();
  const std::uint64_t after_conv_warmup = grows.value();
  for (int i = 0; i < 3; ++i) {
    x.zero_grad(), w.zero_grad(), bias.zero_grad();
    sum(conv2d(x, w, bias, spec)).backward();
  }
  EXPECT_EQ(grows.value(), after_conv_warmup) << "conv lowering allocated in steady state";
  set_parallel_threads(0);
}

// --- per-request workspaces (serving, DESIGN §6g) ---

TEST(GemmTest, WorkspaceScopeRedirectsScratchThenRestores) {
  gemm::Workspace ws;
  EXPECT_EQ(ws.bytes(), 0u);
  float* fallback = gemm::scratch(0, 16);  // thread-default arena
  {
    gemm::WorkspaceScope scope(ws);
    float* bound = gemm::scratch(0, 1024);
    ASSERT_NE(bound, nullptr);
    EXPECT_NE(bound, fallback);
    EXPECT_EQ(ws.bytes(), 1024 * sizeof(float));
    // Smaller request on the same slot reuses the arena without growth.
    EXPECT_EQ(gemm::scratch(0, 512), bound);
    EXPECT_EQ(ws.bytes(), 1024 * sizeof(float));
  }
  // Scope gone: scratch falls back to the thread-default arena.
  EXPECT_EQ(gemm::scratch(0, 16), fallback);
  ws.release();
  EXPECT_EQ(ws.bytes(), 0u);
}

TEST(GemmTest, WorkspaceScopesNest) {
  gemm::Workspace outer_ws;
  gemm::Workspace inner_ws;
  gemm::WorkspaceScope outer(outer_ws);
  float* outer_ptr = gemm::scratch(1, 64);
  {
    gemm::WorkspaceScope inner(inner_ws);
    EXPECT_NE(gemm::scratch(1, 64), outer_ptr);
    EXPECT_EQ(inner_ws.bytes(), 64 * sizeof(float));
  }
  // Inner scope popped: back to the outer workspace, same storage.
  EXPECT_EQ(gemm::scratch(1, 64), outer_ptr);
}

TEST(GemmTest, BoundWorkspaceCapturesKernelScratch) {
  set_parallel_threads(1);
  Rng rng(61);
  const long m = 24, n = 96, k = 48;
  const std::vector<float> a = random_values(m * k, rng);
  const std::vector<float> b = random_values(k * n, rng);
  std::vector<float> c_default(static_cast<std::size_t>(m * n));
  std::vector<float> c_bound(static_cast<std::size_t>(m * n));

  gemm::sgemm(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n, c_default.data(), n,
              false);
  gemm::Workspace ws;
  {
    gemm::WorkspaceScope scope(ws);
    gemm::sgemm(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n, c_bound.data(), n,
                false);
  }
  // The bound arena held the packed panels...
  EXPECT_GT(ws.bytes(), 0u);
  // ...and the result is bitwise the same as through the default arena.
  for (long i = 0; i < m * n; ++i) {
    ASSERT_EQ(c_bound[static_cast<std::size_t>(i)], c_default[static_cast<std::size_t>(i)]);
  }
  set_parallel_threads(0);
}

}  // namespace
}  // namespace spectra::nn
