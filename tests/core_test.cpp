// The SpectraGAN core: config validation, component shapes, the
// differentiable IFFT bridge (value + gradient), masked spectrum targets,
// a short training run and whole-city generation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/config.h"
#include "core/discriminators.h"
#include "core/encoder.h"
#include "core/fourier_bridge.h"
#include "core/losses.h"
#include "core/spectrum_generator.h"
#include "core/time_generator.h"
#include "core/trainer.h"
#include "core/variants.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "dsp/fft.h"
#include "nn/init.h"
#include "util/error.h"

namespace spectra::core {
namespace {

SpectraGanConfig tiny_config() {
  SpectraGanConfig config;
  config.train_steps = 24;
  config.spectrum_bins = 8;
  config.hidden_channels = 6;
  config.encoder_mid_channels = 8;
  config.spectrum_mid_channels = 8;
  config.lstm_hidden = 8;
  config.cond_dim = 8;
  config.disc_mlp_hidden = 8;
  config.noise_channels = 2;
  config.iterations = 4;
  config.batch = 2;
  return config;
}

TEST(ConfigTest, DefaultsValidate) {
  EXPECT_NO_THROW(default_config().validate());
  EXPECT_NO_THROW(tiny_config().validate());
}

TEST(ConfigTest, InvalidSettingsRejected) {
  SpectraGanConfig bad = tiny_config();
  bad.spectrum_bins = 1000;  // > T/2+1
  EXPECT_THROW(bad.validate(), spectra::Error);
  bad = tiny_config();
  bad.use_spectrum_generator = false;
  bad.use_time_generator = false;
  EXPECT_THROW(bad.validate(), spectra::Error);
  bad = tiny_config();
  bad.mask_quantile = 1.5f;
  EXPECT_THROW(bad.validate(), spectra::Error);
}

TEST(ConfigTest, FullBins) {
  SpectraGanConfig config;
  config.train_steps = 168;
  EXPECT_EQ(config.full_bins(), 85);
}

TEST(VariantTest, AllNamesResolve) {
  for (const char* name :
       {"SpectraGAN", "SpectraGAN-", "Spec-only", "Time-only", "Time-only+"}) {
    EXPECT_NO_THROW(variant_config(name).validate()) << name;
  }
  EXPECT_THROW(variant_config("nonsense"), spectra::Error);
}

TEST(VariantTest, SwitchesMatchPaperDefinitions) {
  EXPECT_FALSE(spec_only_config().use_time_generator);
  EXPECT_FALSE(time_only_config().use_spectrum_generator);
  EXPECT_TRUE(time_only_plus_config().extra_time_generator);
  const SpectraGanConfig minus = pixel_context_config();
  EXPECT_EQ(minus.patch.context_h, minus.patch.traffic_h);
}

TEST(EncoderTest, OutputAlignedWithTrafficPatch) {
  SpectraGanConfig config = tiny_config();
  Rng rng(1);
  ContextEncoder encoder(config, rng);
  nn::Var ctx = nn::Var::constant(nn::init::gaussian(
      {3, config.context_channels, config.patch.context_h, config.patch.context_w}, 1.0f, rng));
  nn::Var h = encoder.forward(ctx);
  EXPECT_EQ(h.value().dim(1), config.hidden_channels);
  EXPECT_EQ(h.value().dim(2), config.patch.traffic_h);
  EXPECT_EQ(h.value().dim(3), config.patch.traffic_w);
}

TEST(EncoderTest, PixelContextVariantGeometry) {
  SpectraGanConfig config = tiny_config();
  config.patch.context_h = config.patch.traffic_h;
  config.patch.context_w = config.patch.traffic_w;
  Rng rng(2);
  ContextEncoder encoder(config, rng);
  nn::Var ctx = nn::Var::constant(nn::init::gaussian(
      {2, config.context_channels, config.patch.context_h, config.patch.context_w}, 1.0f, rng));
  EXPECT_EQ(encoder.forward(ctx).value().dim(2), config.patch.traffic_h);
}

TEST(SpectrumGeneratorTest, OutputShape) {
  SpectraGanConfig config = tiny_config();
  Rng rng(3);
  SpectrumGenerator gen(config, rng);
  nn::Var h = nn::Var::constant(
      nn::init::gaussian({2, config.hidden_channels, 4, 4}, 1.0f, rng));
  nn::Var z = nn::Var::constant(nn::init::gaussian({2, config.noise_channels, 4, 4}, 1.0f, rng));
  nn::Var spec = gen.forward(h, z);
  EXPECT_EQ(spec.value().dim(1), 2 * config.spectrum_bins);
  EXPECT_EQ(spec.value().dim(2), 4);
}

TEST(TimeGeneratorTest, OutputShape) {
  SpectraGanConfig config = tiny_config();
  Rng rng(4);
  TimeGenerator gen(config, rng);
  nn::Var h = nn::Var::constant(nn::init::gaussian({2, config.hidden_channels, 4, 4}, 1.0f, rng));
  nn::Var z = nn::Var::constant(nn::init::gaussian({2, config.noise_channels, 4, 4}, 1.0f, rng));
  nn::Var out = gen.forward(h, z, 30);
  EXPECT_EQ(out.value().dim(0), 2);
  EXPECT_EQ(out.value().dim(1), 30);
  EXPECT_EQ(out.value().dim(2), 16);
}

TEST(DiscriminatorTest, LogitShapes) {
  SpectraGanConfig config = tiny_config();
  Rng rng(5);
  SpectrumDiscriminator ds(config, rng);
  TimeDiscriminator dt(config, rng);
  nn::Var h = nn::Var::constant(nn::init::gaussian({3, config.hidden_channels, 4, 4}, 1.0f, rng));
  nn::Var spec = nn::Var::constant(
      nn::init::gaussian({3, 2 * config.spectrum_bins, 16}, 1.0f, rng));
  nn::Var traffic = nn::Var::constant(nn::init::gaussian({3, config.train_steps, 16}, 1.0f, rng));
  EXPECT_EQ(ds.forward(spec, h).value().dim(0), 3);
  EXPECT_EQ(ds.forward(spec, h).value().dim(1), 1);
  EXPECT_EQ(dt.forward(traffic, h).value().dim(1), 1);
}

TEST(FourierBridgeTest, MatchesDspIrfft) {
  const long T = 24;
  const long f_gen = 6;
  Rng rng(6);
  nn::Tensor spec = nn::init::gaussian({1, 2 * f_gen, 2}, 1.0f, rng);
  nn::Var out = irfft_bridge(nn::Var::constant(spec), T, 1);
  ASSERT_EQ(out.value().dim(1), T);

  // Reference: unpack pixel 0's bins (model emits Y/T; restore Y) and run
  // the dsp irfft.
  std::vector<dsp::Complex> full(static_cast<std::size_t>(T / 2 + 1), dsp::Complex(0, 0));
  for (long i = 0; i < f_gen; ++i) {
    full[static_cast<std::size_t>(i)] =
        dsp::Complex(spec[(2 * i) * 2 + 0], spec[(2 * i + 1) * 2 + 0]) * static_cast<double>(T);
  }
  const std::vector<double> expected = dsp::irfft(full, T);
  for (long t = 0; t < T; ++t) {
    EXPECT_NEAR(out.value()[t * 2 + 0], expected[static_cast<std::size_t>(t)], 1e-5);
  }
}

TEST(FourierBridgeTest, ExpansionTilesPeriodicSignal) {
  const long T = 24;
  const long f_gen = 4;
  nn::Tensor spec({1, 2 * f_gen, 1});
  spec[2 * 1 * 1] = 12.0f;  // re of bin 1 -> one cosine cycle per window
  nn::Var base = irfft_bridge(nn::Var::constant(spec), T, 1);
  nn::Var expanded = irfft_bridge(nn::Var::constant(spec), T, 3);
  ASSERT_EQ(expanded.value().dim(1), 3 * T);
  for (long t = 0; t < 3 * T; ++t) {
    EXPECT_NEAR(expanded.value()[t], base.value()[t % T], 1e-5);
  }
}

TEST(FourierBridgeTest, GradientMatchesFiniteDifference) {
  const long T = 16;
  const long f_gen = 5;
  Rng rng(7);
  nn::Tensor spec = nn::init::gaussian({1, 2 * f_gen, 1}, 1.0f, rng);

  auto loss_value = [&](const nn::Tensor& s) {
    nn::Var out = irfft_bridge(nn::Var::constant(s), T, 1);
    // Weighted sum so gradient is nontrivial.
    float acc = 0.0f;
    for (long t = 0; t < T; ++t) acc += static_cast<float>(t + 1) * out.value()[t];
    return acc;
  };

  nn::Var leaf = nn::Var::leaf(spec);
  nn::Var out = irfft_bridge(leaf, T, 1);
  nn::Tensor weights({1, T, 1});
  for (long t = 0; t < T; ++t) weights[t] = static_cast<float>(t + 1);
  nn::Var loss = nn::sum(nn::mul(out, nn::Var::constant(weights)));
  loss.backward();

  const float eps = 1e-2f;
  for (long i = 0; i < spec.numel(); ++i) {
    nn::Tensor plus = spec, minus = spec;
    plus[i] += eps;
    minus[i] -= eps;
    const float numeric = (loss_value(plus) - loss_value(minus)) / (2.0f * eps);
    EXPECT_NEAR(leaf.grad()[i], numeric, 2e-2f * std::max(1.0f, std::fabs(numeric)))
        << "element " << i;
  }
}

TEST(FourierBridgeTest, DcAndNyquistImaginaryHaveZeroGradient) {
  const long T = 16;
  const long f_gen = T / 2 + 1;  // includes the Nyquist bin
  Rng rng(8);
  nn::Var leaf = nn::Var::leaf(nn::init::gaussian({1, 2 * f_gen, 1}, 1.0f, rng));
  nn::Var loss = nn::sum(irfft_bridge(leaf, T, 1));
  loss.backward();
  EXPECT_FLOAT_EQ(leaf.grad()[1], 0.0f);                    // im(DC)
  EXPECT_FLOAT_EQ(leaf.grad()[2 * (f_gen - 1) + 1], 0.0f);  // im(Nyquist)
}

TEST(LossesTest, BatchSpectrumMatchesRfft) {
  const long T = 24;
  nn::Tensor traffic({1, T, 1});
  Rng rng(9);
  std::vector<double> series(static_cast<std::size_t>(T));
  for (long t = 0; t < T; ++t) {
    series[static_cast<std::size_t>(t)] = rng.uniform(0, 1);
    traffic[t] = static_cast<float>(series[static_cast<std::size_t>(t)]);
  }
  const nn::Tensor spec = batch_spectrum(traffic, 5);
  const std::vector<dsp::Complex> expected = dsp::rfft(series);  // targets are Y/T
  for (long i = 0; i < 5; ++i) {
    EXPECT_NEAR(spec[2 * i], expected[static_cast<std::size_t>(i)].real() / T, 1e-5);
    EXPECT_NEAR(spec[2 * i + 1], expected[static_cast<std::size_t>(i)].imag() / T, 1e-5);
  }
}

TEST(LossesTest, MaskedTargetZeroesWeakBins) {
  const long T = 48;
  nn::Tensor traffic({1, T, 1});
  for (long t = 0; t < T; ++t) {
    traffic[t] = static_cast<float>(1.0 + std::cos(2.0 * M_PI * 2.0 * static_cast<double>(t) /
                                                   static_cast<double>(T)));
  }
  const long f_gen = 10;
  const nn::Tensor masked = masked_spectrum_target(traffic, f_gen, 0.75);
  // Only DC (bin 0) and bin 2 carry energy; everything else must be 0.
  for (long i = 0; i < f_gen; ++i) {
    const double mag = std::hypot(masked[2 * i], masked[2 * i + 1]);
    if (i == 0 || i == 2) {
      EXPECT_GT(mag, 0.4);  // DC carries the mean (1.0), bin 2 half the cosine
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-5);
    }
  }
}

TEST(SpectraGanTest, ParameterPartition) {
  SpectraGan model(tiny_config(), 11);
  EXPECT_GT(model.generator_parameters().size(), 0u);
  EXPECT_GT(model.discriminator_parameters().size(), 0u);
}

TEST(SpectraGanTest, ShortTrainingRunsAndGenerates) {
  data::DatasetConfig dc;
  dc.weeks = 1;
  data::CountryDataset dataset = data::make_country2(dc);

  SpectraGanConfig config = tiny_config();
  SpectraGan model(config, 12);
  data::PatchSampler sampler(dataset, {0, 1}, config.patch, 0, config.train_steps);
  Rng rng(13);
  const TrainStats stats = model.train(sampler, rng);
  EXPECT_EQ(stats.iterations, config.iterations);
  EXPECT_TRUE(std::isfinite(stats.final_l1_loss));

  const data::City& target = dataset.cities[2];
  const geo::CityTensor out = model.generate_city(target.context, 2 * config.train_steps, rng);
  EXPECT_EQ(out.steps(), 2 * config.train_steps);
  EXPECT_EQ(out.height(), target.height());
  for (double v : out.values()) EXPECT_GE(v, 0.0);
}

TEST(SpectraGanTest, GenerationRequiresMultipleOfTrainingWindow) {
  SpectraGanConfig config = tiny_config();
  SpectraGan model(config, 14);
  geo::ContextTensor context(config.context_channels, 12, 12);
  Rng rng(15);
  EXPECT_THROW(model.generate_city(context, config.train_steps + 1, rng), spectra::Error);
  EXPECT_THROW(model.generate_city(geo::ContextTensor(5, 12, 12), config.train_steps, rng),
               spectra::Error);
}

TEST(SpectraGanTest, SaveLoadReproducesGeneration) {
  SpectraGanConfig config = tiny_config();
  SpectraGan a(config, 16);
  SpectraGan b(config, 999);  // different init
  const std::string path = testing::TempDir() + "/sg_model.bin";
  a.save(path);
  b.load(path);

  geo::ContextTensor context(config.context_channels, 12, 12);
  Rng rng_fill(17);
  for (double& v : context.values()) v = rng_fill.uniform(0, 1);
  Rng rng_a(21), rng_b(21);
  const geo::CityTensor out_a = a.generate_city(context, config.train_steps, rng_a);
  const geo::CityTensor out_b = b.generate_city(context, config.train_steps, rng_b);
  for (long i = 0; i < out_a.size(); ++i) {
    EXPECT_NEAR(out_a[i], out_b[i], 1e-6);
  }
}

class VariantTrainingTest : public testing::TestWithParam<const char*> {};

TEST_P(VariantTrainingTest, EachVariantTrainsAndGenerates) {
  data::DatasetConfig dc;
  dc.weeks = 1;
  data::CountryDataset dataset = data::make_country2(dc);

  SpectraGanConfig config = variant_config(GetParam());
  // Shrink to test scale.
  config.train_steps = 24;
  config.spectrum_bins = 8;
  config.hidden_channels = 6;
  config.encoder_mid_channels = 8;
  config.spectrum_mid_channels = 8;
  config.lstm_hidden = 8;
  config.cond_dim = 8;
  config.disc_mlp_hidden = 8;
  config.iterations = 3;
  config.batch = 2;

  SpectraGan model(config, 22);
  data::PatchSampler sampler(dataset, {0}, config.patch, 0, config.train_steps);
  Rng rng(23);
  EXPECT_NO_THROW(model.train(sampler, rng));
  const geo::CityTensor out =
      model.generate_city(dataset.cities[1].context, config.train_steps, rng);
  EXPECT_EQ(out.steps(), config.train_steps);
}

INSTANTIATE_TEST_SUITE_P(Variants, VariantTrainingTest,
                         testing::Values("SpectraGAN", "SpectraGAN-", "Spec-only", "Time-only",
                                         "Time-only+"));

}  // namespace
}  // namespace spectra::core
