#include <gtest/gtest.h>

#include <cmath>

#include "baselines/conv3d_lstm.h"
#include "baselines/doppelganger.h"
#include "baselines/fdas.h"
#include "baselines/model_api.h"
#include "baselines/pix2pix.h"
#include "util/error.h"

namespace spectra::baselines {
namespace {

core::SpectraGanConfig tiny_config() {
  core::SpectraGanConfig config;
  config.train_steps = 48;
  config.spectrum_bins = 8;
  config.hidden_channels = 6;
  config.encoder_mid_channels = 8;
  config.spectrum_mid_channels = 8;
  config.lstm_hidden = 8;
  config.cond_dim = 8;
  config.disc_mlp_hidden = 8;
  config.noise_channels = 2;
  config.iterations = 3;
  config.batch = 2;
  return config;
}

data::CountryDataset tiny_dataset() {
  data::DatasetConfig dc;
  dc.weeks = 1;
  return data::make_country2(dc);
}

TEST(FdasTest, FitsHourlyLognormals) {
  data::CountryDataset dataset = tiny_dataset();
  Fdas model;
  Rng rng(1);
  model.fit(dataset, {0, 1}, 168, rng);
  for (long h = 0; h < 24; ++h) {
    const Fdas::HourlyFit& fit = model.hourly_fit(h);
    EXPECT_TRUE(std::isfinite(fit.mu));
    EXPECT_GT(fit.sigma, 0.0);
    EXPECT_GE(fit.zero_fraction, 0.0);
    EXPECT_LE(fit.zero_fraction, 1.0);
  }
  EXPECT_THROW(model.hourly_fit(24), spectra::Error);
}

TEST(FdasTest, NightHoursFitLowerThanDayHours) {
  data::CountryDataset dataset = tiny_dataset();
  Fdas model;
  Rng rng(2);
  model.fit(dataset, {0, 1, 2, 3}, 168, rng);
  // Log-mean at 4am should be below the busiest evening/midday hours.
  double best_mu = -1e9;
  for (long h = 10; h < 22; ++h) best_mu = std::max(best_mu, model.hourly_fit(h).mu);
  EXPECT_LT(model.hourly_fit(4).mu, best_mu);
}

TEST(FdasTest, GenerateShapesAndBounds) {
  data::CountryDataset dataset = tiny_dataset();
  Fdas model;
  Rng rng(3);
  model.fit(dataset, {0}, 168, rng);
  const geo::CityTensor out = model.generate(dataset.cities[1], 100, rng);
  EXPECT_EQ(out.steps(), 100);
  for (double v : out.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(FdasTest, UnfittedGenerateRejected) {
  data::CountryDataset dataset = tiny_dataset();
  Fdas model;
  Rng rng(4);
  EXPECT_THROW(model.generate(dataset.cities[0], 10, rng), spectra::Error);
}

TEST(FdasTest, NoSpatialStructure) {
  // FDAS cannot reproduce the spatial hotspot layout: correlation between
  // its time-averaged map and the real one should be near zero.
  data::CountryDataset dataset = tiny_dataset();
  Fdas model;
  Rng rng(5);
  model.fit(dataset, {0, 1, 2}, 168, rng);
  const data::City& target = dataset.cities[3];
  const geo::CityTensor out = model.generate(target, 168, rng);
  const geo::GridMap real_avg = target.traffic.time_average();
  const geo::GridMap fake_avg = out.time_average();
  double num = 0.0, da = 0.0, db = 0.0;
  const double ma = real_avg.mean(), mb = fake_avg.mean();
  for (long p = 0; p < real_avg.size(); ++p) {
    num += (real_avg[p] - ma) * (fake_avg[p] - mb);
    da += (real_avg[p] - ma) * (real_avg[p] - ma);
    db += (fake_avg[p] - mb) * (fake_avg[p] - mb);
  }
  const double pcc = num / std::sqrt(da * db + 1e-12);
  EXPECT_LT(std::fabs(pcc), 0.25);
}

TEST(Pix2PixTest, TrainsAndGenerates) {
  data::CountryDataset dataset = tiny_dataset();
  Pix2Pix model(tiny_config());
  Rng rng(6);
  model.fit(dataset, {0, 1}, 48, rng);
  const geo::CityTensor out = model.generate(dataset.cities[2], 20, rng);
  EXPECT_EQ(out.steps(), 20);
  EXPECT_EQ(out.height(), dataset.cities[2].height());
  for (double v : out.values()) EXPECT_GE(v, 0.0);
}

TEST(DoppelGangerTest, TrainsAndGenerates) {
  data::CountryDataset dataset = tiny_dataset();
  DoppelGanger model(tiny_config());
  Rng rng(7);
  model.fit(dataset, {0}, 48, rng);
  const geo::CityTensor out = model.generate(dataset.cities[1], 30, rng);
  EXPECT_EQ(out.steps(), 30);
  for (double v : out.values()) EXPECT_GE(v, 0.0);
}

TEST(Conv3dLstmTest, TrainsAndGenerates) {
  data::CountryDataset dataset = tiny_dataset();
  Conv3dLstm model(tiny_config());
  Rng rng(8);
  model.fit(dataset, {0}, 48, rng);
  const geo::CityTensor out = model.generate(dataset.cities[1], 24, rng);
  EXPECT_EQ(out.steps(), 24);
  for (double v : out.values()) EXPECT_GE(v, 0.0);
}

TEST(ModelApiTest, FactoryKnowsEveryPaperMethod) {
  const core::SpectraGanConfig config = tiny_config();
  for (const char* name : {"SpectraGAN", "SpectraGAN-", "Spec-only", "Time-only", "Time-only+",
                           "FDAS", "Pix2Pix", "DoppelGANger", "Conv{3D+LSTM}"}) {
    std::unique_ptr<TrafficGenerator> model = make_model(name, config);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->name(), name);
  }
  EXPECT_THROW(make_model("GPT-4", config), spectra::Error);
}

TEST(ModelApiTest, SpectraGanThroughApiRoundTrip) {
  data::CountryDataset dataset = tiny_dataset();
  core::SpectraGanConfig config = tiny_config();
  std::unique_ptr<TrafficGenerator> model = make_spectragan(config);
  Rng rng(9);
  EXPECT_THROW(model->generate(dataset.cities[0], 48, rng), spectra::Error);  // unfitted
  model->fit(dataset, {0, 1}, 48, rng);
  const geo::CityTensor out = model->generate(dataset.cities[2], 96, rng);
  EXPECT_EQ(out.steps(), 96);
}

}  // namespace
}  // namespace spectra::baselines
