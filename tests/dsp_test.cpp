// Spectrum masking, frequency expansion (Fig. 4 / Appendix C),
// autocorrelation and the signature transform.

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/autocorr.h"
#include "dsp/expansion.h"
#include "dsp/signature.h"
#include "dsp/spectrum.h"
#include "util/error.h"
#include "util/rng.h"

namespace spectra::dsp {
namespace {

TEST(SpectrumTest, PackUnpackRoundTrip) {
  std::vector<Complex> spec = {{1.0, -2.0}, {0.5, 0.25}, {-3.0, 4.0}};
  const std::vector<Complex> back = unpack_interleaved(pack_interleaved(spec));
  ASSERT_EQ(back.size(), spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i) {
    EXPECT_NEAR(back[i].real(), spec[i].real(), 1e-6);
    EXPECT_NEAR(back[i].imag(), spec[i].imag(), 1e-6);
  }
  EXPECT_THROW(unpack_interleaved(std::vector<float>{1.0f}), spectra::Error);
}

TEST(SpectrumTest, QuantileInterpolation) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_NEAR(quantile(v, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(quantile(v, 1.0), 5.0, 1e-12);
  EXPECT_NEAR(quantile(v, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(quantile(v, 0.75), 4.0, 1e-12);
  EXPECT_THROW(quantile({}, 0.5), spectra::Error);
}

TEST(SpectrumTest, QuantileMaskKeepsLargeBins) {
  std::vector<Complex> spec;
  for (int i = 0; i < 8; ++i) spec.emplace_back(i < 2 ? 10.0 + i : 0.1 * i, 0.0);
  const std::vector<Complex> masked = quantile_mask(spec, 0.75);
  EXPECT_GT(std::abs(masked[0]), 0.0);
  EXPECT_GT(std::abs(masked[1]), 0.0);
  long survivors = 0;
  for (const Complex& c : masked) {
    if (std::abs(c) > 0.0) ++survivors;
  }
  EXPECT_EQ(survivors, 2);
}

TEST(SpectrumTest, TopKKeepsLargestMagnitudes) {
  std::vector<Complex> spec = {{1, 0}, {5, 0}, {3, 0}, {0.5, 0}};
  const std::vector<Complex> kept = top_k_components(spec, 2);
  EXPECT_EQ(std::abs(kept[0]), 0.0);
  EXPECT_EQ(std::abs(kept[1]), 5.0);
  EXPECT_EQ(std::abs(kept[2]), 3.0);
  EXPECT_EQ(std::abs(kept[3]), 0.0);
}

TEST(SpectrumTest, ReconstructTopKApproximatesPeriodicSignal) {
  // A signal with 2 harmonics + small noise: 5 components (DC + 2x2
  // conjugate-free rfft bins) recover it almost exactly — the Fig. 1e
  // observation.
  const long n = 168;
  Rng rng(5);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (long t = 0; t < n; ++t) {
    const double ft = static_cast<double>(t), fn = static_cast<double>(n);
    x[static_cast<std::size_t>(t)] = 1.0 + 0.8 * std::cos(2.0 * M_PI * 7.0 * ft / fn) +
                                     0.3 * std::sin(2.0 * M_PI * 1.0 * ft / fn) +
                                     0.01 * rng.normal();
  }
  const std::vector<double> recon = reconstruct_top_k(x, 5);
  double err = 0.0;
  for (long t = 0; t < n; ++t) {
    err += std::fabs(recon[static_cast<std::size_t>(t)] - x[static_cast<std::size_t>(t)]);
  }
  EXPECT_LT(err / n, 0.02);
}

class ExpansionTest : public testing::TestWithParam<long> {};

TEST_P(ExpansionTest, LengthRule) {
  const long k = GetParam();
  // Base F bins of a length-T signal expand to k(F-1)+1 = (kT)/2+1.
  const long base_t = 24;
  const long base_bins = base_t / 2 + 1;
  EXPECT_EQ(expanded_length(base_bins, k), (k * base_t) / 2 + 1);
}

TEST_P(ExpansionTest, EnergyMultipliedByK) {
  const long k = GetParam();
  std::vector<double> x(24);
  Rng rng(7);
  for (double& v : x) v = rng.uniform(0, 1);
  const std::vector<Complex> base = rfft(x);
  const std::vector<Complex> expanded = expand_frequency(base, k);
  double base_energy = 0.0, expanded_energy = 0.0;
  for (const Complex& c : base) base_energy += std::abs(c);
  for (const Complex& c : expanded) expanded_energy += std::abs(c);
  EXPECT_NEAR(expanded_energy, static_cast<double>(k) * base_energy, 1e-9);
}

TEST_P(ExpansionTest, SynthesizedSignalRepeatsBaseWindow) {
  const long k = GetParam();
  // Pure periodic base -> expansion reproduces exactly k tiled copies
  // (Appendix C justification).
  const long base_t = 24;
  std::vector<double> x(static_cast<std::size_t>(base_t));
  for (long t = 0; t < base_t; ++t) {
    x[static_cast<std::size_t>(t)] =
        1.0 + std::cos(2.0 * M_PI * static_cast<double>(t) / static_cast<double>(base_t)) +
        0.4 * std::sin(2.0 * M_PI * 2 * static_cast<double>(t) / static_cast<double>(base_t));
  }
  const std::vector<double> longer = synthesize_expanded(rfft(x), base_t, k);
  ASSERT_EQ(longer.size(), static_cast<std::size_t>(k * base_t));
  for (long t = 0; t < k * base_t; ++t) {
    EXPECT_NEAR(longer[static_cast<std::size_t>(t)], x[static_cast<std::size_t>(t % base_t)], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, ExpansionTest, testing::Values(1L, 2L, 3L, 5L));

TEST(ExpansionTest, IdentityAtKOne) {
  std::vector<Complex> spec = {{1, 0}, {2, 1}, {0, -1}};
  const std::vector<Complex> same = expand_frequency(spec, 1);
  ASSERT_EQ(same.size(), spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i) {
    EXPECT_EQ(same[i], spec[i]);
  }
}

TEST(AutocorrTest, LagZeroIsOne) {
  Rng rng(9);
  std::vector<double> x(100);
  for (double& v : x) v = rng.normal();
  const std::vector<double> r = autocorrelation(x, 10);
  EXPECT_NEAR(r[0], 1.0, 1e-12);
}

TEST(AutocorrTest, PeriodicSignalPeaksAtPeriod) {
  const long period = 24;
  std::vector<double> x(240);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / period);
  }
  const std::vector<double> r = autocorrelation(x, 48);
  EXPECT_GT(r[24], 0.8);
  EXPECT_LT(r[12], -0.6);  // anti-phase at half period
}

TEST(AutocorrTest, WhiteNoiseDecorrelates) {
  Rng rng(11);
  std::vector<double> x(5000);
  for (double& v : x) v = rng.normal();
  const std::vector<double> r = autocorrelation(x, 5);
  for (long l = 1; l <= 5; ++l) {
    EXPECT_NEAR(r[static_cast<std::size_t>(l)], 0.0, 0.05);
  }
}

TEST(AutocorrTest, ConstantSeriesIsZeroByConvention) {
  std::vector<double> x(50, 3.14);
  const std::vector<double> r = autocorrelation(x, 5);
  for (double v : r) EXPECT_EQ(v, 0.0);
}

TEST(AutocorrTest, Validation) {
  std::vector<double> x = {1.0, 2.0};
  EXPECT_NO_THROW(autocorrelation(x, 1));
  EXPECT_THROW(autocorrelation(x, 2), spectra::Error);
  EXPECT_THROW(autocorrelation({1.0}, 0), spectra::Error);
}

TEST(SignatureTest, SizeFormula) {
  EXPECT_EQ(signature_size(3, 1), 3);
  EXPECT_EQ(signature_size(3, 2), 3 + 9);
  EXPECT_EQ(signature_size(2, 3), 2 + 4 + 8);
  EXPECT_THROW(signature_size(2, 4), spectra::Error);
}

TEST(SignatureTest, Level1IsTotalIncrement) {
  std::vector<std::vector<double>> path = {{0.0, 1.0}, {2.0, 1.5}, {5.0, -1.0}};
  const std::vector<double> sig = signature_transform(path, 1, /*time_augment=*/false);
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_NEAR(sig[0], 5.0, 1e-12);
  EXPECT_NEAR(sig[1], -2.0, 1e-12);
}

TEST(SignatureTest, Level2AntisymmetricPartIsArea) {
  // For a closed loop the level-1 terms vanish and the antisymmetric
  // level-2 part equals the signed enclosed area (Green's theorem).
  std::vector<std::vector<double>> square = {
      {0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 0}};
  const std::vector<double> sig = signature_transform(square, 2, /*time_augment=*/false);
  // Layout: [s1 (2), s2 (4: 00,01,10,11)].
  EXPECT_NEAR(sig[0], 0.0, 1e-12);
  EXPECT_NEAR(sig[1], 0.0, 1e-12);
  const double area = 0.5 * (sig[3] - sig[4]);  // (S^{01} - S^{10}) / 2
  EXPECT_NEAR(area, 1.0, 1e-12);
}

TEST(SignatureTest, InvariantToLinearInterpolationRefinement) {
  // The signature of a piecewise-linear path does not change when a
  // segment is subdivided.
  std::vector<std::vector<double>> coarse = {{0, 0}, {1, 2}, {3, 1}};
  std::vector<std::vector<double>> fine = {{0, 0}, {0.5, 1.0}, {1, 2}, {2, 1.5}, {3, 1}};
  const std::vector<double> a = signature_transform(coarse, 3, false);
  const std::vector<double> b = signature_transform(fine, 3, false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST(SignatureTest, TimeAugmentationDistinguishesSpeed) {
  // Same spatial trace at different speeds: plain signatures agree,
  // time-augmented ones differ.
  std::vector<std::vector<double>> slow = {{0.0}, {0.25}, {0.5}, {0.75}, {1.0}};
  std::vector<std::vector<double>> fast = {{0.0}, {0.9}, {0.95}, {0.98}, {1.0}};
  const std::vector<double> plain_slow = signature_transform(slow, 2, false);
  const std::vector<double> plain_fast = signature_transform(fast, 2, false);
  EXPECT_NEAR(plain_slow[0], plain_fast[0], 1e-12);
  const std::vector<double> aug_slow = signature_transform(slow, 2, true);
  const std::vector<double> aug_fast = signature_transform(fast, 2, true);
  double diff = 0.0;
  for (std::size_t i = 0; i < aug_slow.size(); ++i) diff += std::fabs(aug_slow[i] - aug_fast[i]);
  EXPECT_GT(diff, 0.05);
}

TEST(SignatureTest, Validation) {
  EXPECT_THROW(signature_transform({{1.0}}, 2), spectra::Error);
  EXPECT_THROW(signature_transform({{1.0}, {2.0, 3.0}}, 2), spectra::Error);
  EXPECT_THROW(signature_transform({{1.0}, {2.0}}, 0), spectra::Error);
}

}  // namespace
}  // namespace spectra::dsp
