// Property-style sweeps across random seeds and geometries: autograd
// gradients on randomly composed graphs, FFT/expansion invariants under
// random signals, patch sewing invariants, and dataset statistical
// properties that the traffic process must satisfy for any seed.

#include <gtest/gtest.h>

#include <cmath>

#include "core/fourier_bridge.h"
#include "data/city.h"
#include "dsp/expansion.h"
#include "dsp/fft.h"
#include "geo/patching.h"
#include "nn/conv.h"
#include "nn/init.h"
#include "nn/lstm.h"
#include "nn/ops.h"
#include "util/rng.h"

namespace spectra {
namespace {

// ---------- randomized gradient checks over seeds ----------

class SeededGradientTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededGradientTest, ComposedGraphGradientsMatchFiniteDifference) {
  Rng rng(GetParam());
  nn::Tensor a_init = nn::init::gaussian({3, 4}, 1.0f, rng);
  nn::Tensor b_init = nn::init::gaussian({4, 2}, 1.0f, rng);

  auto loss_of = [](const nn::Tensor& a, const nn::Tensor& b, nn::Var* grad_a) {
    nn::Var va = grad_a != nullptr ? nn::Var::leaf(a) : nn::Var::constant(a);
    nn::Var vb = nn::Var::constant(b);
    // A little bit of everything smooth: matmul, tanh, sigmoid, scaling,
    // concat, reductions.
    nn::Var m = nn::matmul(va, vb);                 // [3,2]
    nn::Var t = nn::vtanh(m);
    nn::Var s = nn::sigmoid(nn::mul_scalar(m, 0.5f));
    nn::Var c = nn::concat_axis({t, s}, 1);         // [3,4]
    nn::Var loss = nn::mean(nn::mul(c, c));
    if (grad_a != nullptr) {
      loss.backward();
      *grad_a = va;
    }
    return loss.value()[0];
  };

  nn::Var leaf;
  loss_of(a_init, b_init, &leaf);
  const float eps = 1e-2f;
  for (long i = 0; i < a_init.numel(); ++i) {
    nn::Tensor plus = a_init, minus = a_init;
    plus[i] += eps;
    minus[i] -= eps;
    const float numeric = (loss_of(plus, b_init, nullptr) - loss_of(minus, b_init, nullptr)) /
                          (2.0f * eps);
    EXPECT_NEAR(leaf.grad()[i], numeric, 2e-2f * std::max(1.0f, std::fabs(numeric)))
        << "seed " << GetParam() << " element " << i;
  }
}

TEST_P(SeededGradientTest, LstmStepGradientFlowsToInput) {
  Rng rng(GetParam() ^ 0xAA);
  nn::LSTMCell cell(3, 5, rng);
  nn::Var x = nn::Var::leaf(nn::init::gaussian({2, 3}, 1.0f, rng));
  nn::LstmState state = cell.initial_state(2);
  // Three steps feeding the same x: gradient accumulates over steps.
  for (int k = 0; k < 3; ++k) state = cell.step(x, state);
  nn::Var loss = nn::mean(nn::mul(state.h, state.h));
  loss.backward();
  float grad_norm = 0.0f;
  for (long i = 0; i < x.grad().numel(); ++i) grad_norm += std::fabs(x.grad()[i]);
  EXPECT_GT(grad_norm, 0.0f);
  EXPECT_FALSE(x.grad().has_nonfinite());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededGradientTest, testing::Values(1ULL, 2ULL, 3ULL, 5ULL, 8ULL));

// ---------- FFT / expansion invariants over random signals ----------

class SignalSweepTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SignalSweepTest, RfftIrfftRoundTripRandomSignal) {
  Rng rng(GetParam());
  const long n = 24 + static_cast<long>(rng.uniform_index(200));
  std::vector<double> x(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.uniform(-3, 3);
  const std::vector<double> back = dsp::irfft(dsp::rfft(x), n);
  for (long i = 0; i < n; ++i) {
    EXPECT_NEAR(back[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)], 1e-8);
  }
}

TEST_P(SignalSweepTest, ExpansionPreservesWindowMean) {
  // The DC bin carries the mean; after expansion the long signal's mean
  // must equal the base window's mean for any signal.
  Rng rng(GetParam() ^ 0x77);
  const long base_t = 48;
  const long k = 2 + static_cast<long>(rng.uniform_index(3));
  std::vector<double> x(static_cast<std::size_t>(base_t));
  for (double& v : x) v = rng.uniform(0, 1);
  double base_mean = 0.0;
  for (double v : x) base_mean += v;
  base_mean /= static_cast<double>(base_t);

  const std::vector<double> longer = dsp::synthesize_expanded(dsp::rfft(x), base_t, k);
  double long_mean = 0.0;
  for (double v : longer) long_mean += v;
  long_mean /= static_cast<double>(longer.size());
  EXPECT_NEAR(long_mean, base_mean, 1e-9);
}

TEST_P(SignalSweepTest, BridgeConsistentWithExpansionPath) {
  // irfft_bridge(spec, T, k) must equal irfft(expand(T*spec), k*T) bin for
  // bin — the two public code paths for long-horizon synthesis.
  Rng rng(GetParam() ^ 0x99);
  const long T = 24;
  const long f_gen = 13;  // full band for T=24
  const long k = 3;
  nn::Tensor spec = nn::init::gaussian({1, 2 * f_gen, 1}, 1.0f, rng);
  spec[1] = 0.0f;                    // im(DC) unused
  spec[2 * (f_gen - 1) + 1] = 0.0f;  // im(Nyquist) unused

  nn::Var bridged = core::irfft_bridge(nn::Var::constant(spec), T, k);

  std::vector<dsp::Complex> base(static_cast<std::size_t>(f_gen));
  for (long i = 0; i < f_gen; ++i) {
    base[static_cast<std::size_t>(i)] =
        dsp::Complex(spec[2 * i], spec[2 * i + 1]) * static_cast<double>(T);
  }
  const std::vector<double> reference = dsp::synthesize_expanded(base, T, k);
  for (long t = 0; t < k * T; ++t) {
    EXPECT_NEAR(bridged.value()[t], reference[static_cast<std::size_t>(t)], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Signals, SignalSweepTest,
                         testing::Values(11ULL, 13ULL, 17ULL, 19ULL, 23ULL));

// ---------- patch sewing invariants over random geometries ----------

class SewingSweepTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SewingSweepTest, ConstantFieldSurvivesOverlapAveraging) {
  Rng rng(GetParam());
  const long h = 8 + static_cast<long>(rng.uniform_index(20));
  const long w = 8 + static_cast<long>(rng.uniform_index(20));
  geo::PatchSpec spec;
  spec.stride = 1 + static_cast<long>(rng.uniform_index(4));
  const double value = rng.uniform(0.1, 5.0);

  geo::OverlapAccumulator acc(2, h, w);
  const std::vector<float> patch(static_cast<std::size_t>(2 * 16), static_cast<float>(value));
  for (const geo::PatchWindow& window : geo::enumerate_windows(h, w, spec)) {
    acc.add_patch(window, spec, patch);
  }
  const geo::CityTensor out = acc.finalize();
  for (long t = 0; t < 2; ++t) {
    for (long p = 0; p < h * w; ++p) {
      EXPECT_NEAR(out[t * h * w + p], value, 1e-6 * value);  // float patch storage
    }
  }
}

TEST_P(SewingSweepTest, ExtractThenSewRecoversFieldWhenPatchesAgree) {
  // When every patch carries the true field values, overlap-averaging is
  // exact — the identity behind Eq. 2's consistency.
  Rng rng(GetParam() ^ 0x1234);
  const long h = 10 + static_cast<long>(rng.uniform_index(8));
  const long w = 10 + static_cast<long>(rng.uniform_index(8));
  geo::CityTensor field(3, h, w);
  for (double& v : field.values()) v = rng.uniform(0, 1);

  geo::PatchSpec spec;
  spec.stride = 2;
  geo::OverlapAccumulator acc(3, h, w);
  for (const geo::PatchWindow& window : geo::enumerate_windows(h, w, spec)) {
    acc.add_patch(window, spec, geo::extract_traffic_patch(field, window, spec));
  }
  const geo::CityTensor out = acc.finalize();
  for (long i = 0; i < field.size(); ++i) {
    EXPECT_NEAR(out[i], field[i], 1e-6);  // float patch storage
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, SewingSweepTest,
                         testing::Values(31ULL, 37ULL, 41ULL, 43ULL));

// ---------- traffic-process invariants over seeds ----------

class ProcessSweepTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ProcessSweepTest, AnySeedYieldsValidCity) {
  Rng rng(GetParam());
  const data::City city = data::make_city("sweep", 13, 15, 1, 60, data::country1_params(), rng);
  EXPECT_NEAR(city.traffic.peak(), 1.0, 1e-12);
  for (double v : city.traffic.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Context channels normalized and complete.
  EXPECT_EQ(city.context.steps(), data::kNumContextChannels);
  for (double v : city.context.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

TEST_P(ProcessSweepTest, NightTrafficBelowDayTraffic) {
  Rng rng(GetParam() ^ 0x55);
  const data::City city = data::make_city("sweep2", 12, 12, 1, 60, data::country1_params(), rng);
  const std::vector<double> series = city.traffic.space_average();
  double night = 0.0, day = 0.0;
  long nights = 0, days = 0;
  for (long t = 0; t < city.steps(); ++t) {
    const long hour = t % 24;
    if (hour >= 2 && hour < 6) {
      night += series[static_cast<std::size_t>(t)];
      ++nights;
    } else if (hour >= 11 && hour < 21) {
      day += series[static_cast<std::size_t>(t)];
      ++days;
    }
  }
  EXPECT_LT(night / static_cast<double>(nights), 0.8 * day / static_cast<double>(days));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProcessSweepTest, testing::Values(101ULL, 103ULL, 107ULL, 109ULL));

}  // namespace
}  // namespace spectra
