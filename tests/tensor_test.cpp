#include <gtest/gtest.h>

#include "nn/tensor.h"
#include "util/error.h"

namespace spectra::nn {
namespace {

TEST(TensorTest, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0);
  EXPECT_EQ(t.numel(), 1);
  EXPECT_FLOAT_EQ(t[0], 0.0f);
}

TEST(TensorTest, ZeroFilledConstruction) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (long i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ExplicitDataValidated) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), Error);
}

TEST(TensorTest, ScalarAndFull) {
  EXPECT_FLOAT_EQ(Tensor::scalar(2.5f)[0], 2.5f);
  Tensor t = Tensor::full({3}, 7.0f);
  for (long i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(t[i], 7.0f);
}

TEST(TensorTest, MultiIndexAccess) {
  Tensor t({2, 3, 4});
  t.at({1, 2, 3}) = 5.0f;
  EXPECT_FLOAT_EQ(t[1 * 12 + 2 * 4 + 3], 5.0f);
  EXPECT_FLOAT_EQ(t.at({1, 2, 3}), 5.0f);
  EXPECT_THROW(t.at({2, 0, 0}), Error);
  EXPECT_THROW(t.at({0, 0}), Error);
}

TEST(TensorTest, NegativeDimIndexing) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
  EXPECT_THROW(t.dim(3), Error);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_FLOAT_EQ(r.at({2, 1}), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), Error);
}

TEST(TensorTest, ArithmeticHelpers) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.add_(b);
  EXPECT_FLOAT_EQ(a[2], 33.0f);
  a.scale_(0.5f);
  EXPECT_FLOAT_EQ(a[0], 5.5f);
  EXPECT_FLOAT_EQ(a.sum(), 5.5f + 11.0f + 16.5f);
  EXPECT_FLOAT_EQ(a.mean(), a.sum() / 3.0f);
  EXPECT_FLOAT_EQ(a.min(), 5.5f);
  EXPECT_FLOAT_EQ(a.max(), 16.5f);
}

TEST(TensorTest, AddShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a.add_(b), Error);
}

TEST(TensorTest, NonfiniteDetection) {
  Tensor t({2}, {1.0f, 2.0f});
  EXPECT_FALSE(t.has_nonfinite());
  t[1] = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(t.has_nonfinite());
  t[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(t.has_nonfinite());
}

TEST(TensorTest, ShapeHelpers) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_THROW(shape_numel({-1, 2}), Error);
}

class TensorShapeParamTest : public testing::TestWithParam<Shape> {};

TEST_P(TensorShapeParamTest, NumelMatchesProduct) {
  const Shape shape = GetParam();
  Tensor t(shape);
  EXPECT_EQ(t.numel(), shape_numel(shape));
  EXPECT_EQ(t.rank(), static_cast<int>(shape.size()));
}

INSTANTIATE_TEST_SUITE_P(VariousShapes, TensorShapeParamTest,
                         testing::Values(Shape{1}, Shape{5}, Shape{2, 3}, Shape{4, 1, 6},
                                         Shape{2, 2, 2, 2}, Shape{1, 1, 1}, Shape{0},
                                         Shape{3, 0, 2}));

}  // namespace
}  // namespace spectra::nn
