#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "util/csv.h"
#include "util/env.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace spectra {
namespace {

TEST(ErrorTest, CheckThrowsWithLocation) {
  try {
    SG_CHECK(false, "boom");
    FAIL() << "SG_CHECK did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, CheckPassesSilently) { EXPECT_NO_THROW(SG_CHECK(1 + 1 == 2, "never")); }

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PoissonMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(RngTest, PoissonLargeLambdaNormalApprox) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.5);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child1 = parent.split(1);
  Rng child2 = parent.split(1);
  // Splitting with the same tag from the same state is deterministic.
  EXPECT_EQ(child1.next_u64(), child2.next_u64());
  // And a different tag diverges.
  Rng child3 = parent.split(2);
  EXPECT_NE(child1.next_u64(), child3.next_u64());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<std::size_t> v = {0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(v);
  std::set<std::size_t> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 8u);
}

TEST(RngTest, UniformIndexBounds) {
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(7), 7u);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(RngTest, UniformIndexIsUnbiased) {
  // Lemire rejection sampling: every bucket of a non-power-of-two bound
  // must be hit equally often (the old `% n` path biased low residues).
  Rng rng(53);
  const int n = 60000;
  int buckets[6] = {0, 0, 0, 0, 0, 0};
  for (int i = 0; i < n; ++i) ++buckets[rng.uniform_index(6)];
  for (int b = 0; b < 6; ++b) {
    EXPECT_NEAR(static_cast<double>(buckets[b]), n / 6.0, 500.0) << "bucket " << b;
  }
}

TEST(RngTest, ShuffleProducesUniformPermutations) {
  // All 3! = 6 permutations of {0,1,2} equally likely under Fisher-Yates
  // with unbiased index draws.
  Rng rng(59);
  std::map<std::vector<std::size_t>, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    std::vector<std::size_t> v = {0, 1, 2};
    rng.shuffle(v);
    ++counts[v];
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count), n / 6.0, 500.0);
  }
}

TEST(CsvTest, HeaderArityEnforced) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), Error);
  EXPECT_NO_THROW(w.add_row({"1", "2"}));
}

TEST(CsvTest, WriteAndEscape) {
  CsvWriter w({"name", "value"});
  w.add_row({"plain", "1"});
  w.add_row({"with,comma", "quo\"te"});
  const std::string path = testing::TempDir() + "/sg_csv_test.csv";
  ASSERT_TRUE(w.write(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"quo\"\"te\"");
}

TEST(CsvTest, RenderTableAligns) {
  CsvWriter w({"m", "val"});
  w.add_row({"abc", "1.5"});
  const std::string out = render_table(w);
  EXPECT_NE(out.find("m"), std::string::npos);
  EXPECT_NE(out.find("abc"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(EnvTest, FallbacksAndParsing) {
  ::unsetenv("SG_TEST_ENV");
  EXPECT_EQ(env_string("SG_TEST_ENV", "dft"), "dft");
  EXPECT_EQ(env_long("SG_TEST_ENV", 5), 5);
  ::setenv("SG_TEST_ENV", "17", 1);
  EXPECT_EQ(env_long("SG_TEST_ENV", 5), 17);
  EXPECT_DOUBLE_EQ(env_double("SG_TEST_ENV", 0.0), 17.0);
  ::setenv("SG_TEST_ENV", "abc", 1);
  EXPECT_EQ(env_long("SG_TEST_ENV", 5), 5);
  ::unsetenv("SG_TEST_ENV");
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  const double first = w.seconds();
  EXPECT_GE(first, 0.0);
  w.reset();
  EXPECT_LT(w.seconds(), 1.0);
}

TEST(LogTest, LevelFiltering) {
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kError);
  std::ostringstream captured;
  std::streambuf* old_buf = std::cerr.rdbuf(captured.rdbuf());
  SG_LOG_INFO << "should be filtered";
  SG_LOG_ERROR << "should appear";
  std::cerr.rdbuf(old_buf);
  set_log_level(previous);
  EXPECT_EQ(captured.str().find("should be filtered"), std::string::npos);
  EXPECT_NE(captured.str().find("should appear"), std::string::npos);
}

// Concurrent SG_LOG_* calls from pool workers must emit whole lines:
// every captured line carries the timestamp + level prefix and an intact
// message (run under TSan locally to also check the data-race freedom).
TEST(LogTest, ConcurrentLoggingDoesNotInterleaveMidLine) {
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kInfo);
  std::ostringstream captured;
  std::streambuf* old_buf = std::cerr.rdbuf(captured.rdbuf());
  {
    ThreadPool pool(4);
    pool.parallel_for(64, [](std::size_t i) {
      SG_LOG_INFO << "interleave-" << i << "-abcdefghijklmnopqrstuvwxyz-" << i << "-end";
    });
  }
  std::cerr.rdbuf(old_buf);
  set_log_level(previous);

  const std::regex line_pattern(
      R"(\[ *[0-9]+\.[0-9]{3}\] \[INFO\] interleave-([0-9]+)-abcdefghijklmnopqrstuvwxyz-\1-end)");
  std::istringstream in(captured.str());
  std::string line;
  std::set<long> seen;
  while (std::getline(in, line)) {
    std::smatch match;
    ASSERT_TRUE(std::regex_match(line, match, line_pattern)) << "interleaved line: " << line;
    seen.insert(std::stol(match[1].str()));
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(4,
                                 [](std::size_t i) {
                                   if (i == 2) throw Error("task failed");
                                 }),
               Error);
}

TEST(ThreadPoolTest, SubmitFutureCompletes) {
  ThreadPool pool(1);
  std::atomic<bool> ran{false};
  auto future = pool.submit([&ran] { ran = true; });
  future.get();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace spectra
