#include <gtest/gtest.h>

#include <cmath>

#include "metrics/linalg.h"
#include "util/error.h"
#include "util/rng.h"

namespace spectra::metrics {
namespace {

TEST(SolveTest, KnownSystem) {
  SquareMatrix a(2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const std::vector<double> x = solve_linear_system(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
}

TEST(SolveTest, RequiresPivoting) {
  SquareMatrix a(2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const std::vector<double> x = solve_linear_system(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveTest, SingularRejected) {
  SquareMatrix a(2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_THROW(solve_linear_system(a, {1.0, 2.0}), spectra::Error);
}

TEST(SolveTest, RandomSystemResidual) {
  Rng rng(1);
  const long n = 8;
  SquareMatrix a(n);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    b[static_cast<std::size_t>(i)] = rng.uniform(-1, 1);
    for (long j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1, 1);
    a.at(i, i) += 4.0;  // diagonally dominant => well conditioned
  }
  const SquareMatrix a_copy = a;
  const std::vector<double> x = solve_linear_system(a, b);
  for (long i = 0; i < n; ++i) {
    double acc = 0.0;
    for (long j = 0; j < n; ++j) acc += a_copy.at(i, j) * x[static_cast<std::size_t>(j)];
    EXPECT_NEAR(acc, b[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(EigenTest, DiagonalMatrix) {
  SquareMatrix a(3);
  a.at(0, 0) = 3.0;
  a.at(1, 1) = -1.0;
  a.at(2, 2) = 5.0;
  std::vector<double> values;
  SquareMatrix v(3);
  symmetric_eigen(a, values, v);
  std::sort(values.begin(), values.end());
  EXPECT_NEAR(values[0], -1.0, 1e-10);
  EXPECT_NEAR(values[1], 3.0, 1e-10);
  EXPECT_NEAR(values[2], 5.0, 1e-10);
}

TEST(EigenTest, ReconstructsMatrix) {
  Rng rng(2);
  const long n = 5;
  SquareMatrix a(n);
  for (long i = 0; i < n; ++i) {
    for (long j = 0; j <= i; ++j) {
      const double v = rng.uniform(-1, 1);
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  }
  std::vector<double> values;
  SquareMatrix v(n);
  symmetric_eigen(a, values, v);
  // A == V diag(values) V^T.
  for (long i = 0; i < n; ++i) {
    for (long j = 0; j < n; ++j) {
      double acc = 0.0;
      for (long k = 0; k < n; ++k) {
        acc += v.at(i, k) * values[static_cast<std::size_t>(k)] * v.at(j, k);
      }
      EXPECT_NEAR(acc, a.at(i, j), 1e-8);
    }
  }
}

TEST(SqrtmTest, SquaresBackToOriginal) {
  Rng rng(3);
  const long n = 4;
  // Build PSD A = B B^T.
  SquareMatrix b(n);
  for (long i = 0; i < n; ++i) {
    for (long j = 0; j < n; ++j) b.at(i, j) = rng.uniform(-1, 1);
  }
  SquareMatrix bt(n);
  for (long i = 0; i < n; ++i) {
    for (long j = 0; j < n; ++j) bt.at(i, j) = b.at(j, i);
  }
  const SquareMatrix a = matmul(b, bt);
  const SquareMatrix root = sqrtm_psd(a);
  const SquareMatrix squared = matmul(root, root);
  for (long i = 0; i < n; ++i) {
    for (long j = 0; j < n; ++j) EXPECT_NEAR(squared.at(i, j), a.at(i, j), 1e-8);
  }
}

TEST(TraceTest, SumsDiagonal) {
  SquareMatrix a(3);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = 2.0;
  a.at(2, 2) = 3.5;
  a.at(0, 2) = 100.0;
  EXPECT_DOUBLE_EQ(trace(a), 6.5);
}

}  // namespace
}  // namespace spectra::metrics
