// The parallel execution layer: results must be bitwise identical for
// any thread count (disjoint writes, no RNG in parallel regions), nested
// parallel_for must run inline instead of deadlocking on its own queue,
// and exceptions must propagate out of chunked tasks.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/fourier_bridge.h"
#include "core/losses.h"
#include "core/trainer.h"
#include "dsp/fft.h"
#include "geo/patching.h"
#include "nn/conv.h"
#include "nn/dispatch.h"
#include "nn/init.h"
#include "nn/lstm.h"
#include "nn/ops.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace spectra {
namespace {

// Scoped override of the effective thread count; restores the
// SPECTRA_THREADS / hardware default on destruction.
struct ThreadsOverride {
  explicit ThreadsOverride(std::size_t n) { set_parallel_threads(n); }
  ~ThreadsOverride() { set_parallel_threads(0); }
};

void expect_bitwise_equal(const nn::Tensor& a, const nn::Tensor& b, const char* what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  for (long i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at flat index " << i;
  }
}

// --- bitwise determinism across thread counts ---

struct ConvRun {
  nn::Tensor y, gx, gw, gb;
};

ConvRun run_conv(std::size_t threads) {
  ThreadsOverride guard(threads);
  Rng rng(123);
  nn::Var x = nn::Var::leaf(nn::init::gaussian({2, 3, 9, 7}, 1.0f, rng));
  nn::Var w = nn::Var::leaf(nn::init::gaussian({4, 3, 3, 3}, 0.5f, rng));
  nn::Var b = nn::Var::leaf(nn::init::gaussian({4}, 0.5f, rng));
  nn::Conv2dSpec spec;
  spec.stride = 2;
  spec.padding = 1;
  nn::Var y = nn::conv2d(x, w, b, spec);
  nn::sum(y).backward();
  return {y.value(), x.grad(), w.grad(), b.grad()};
}

TEST(ParallelDeterminismTest, Conv2dBitwiseIdenticalAcrossThreadCounts) {
  const ConvRun serial = run_conv(1);
  const ConvRun parallel = run_conv(8);
  expect_bitwise_equal(serial.y, parallel.y, "conv2d forward");
  expect_bitwise_equal(serial.gx, parallel.gx, "conv2d grad input");
  expect_bitwise_equal(serial.gw, parallel.gw, "conv2d grad weight");
  expect_bitwise_equal(serial.gb, parallel.gb, "conv2d grad bias");
}

// The GEMM-lowered conv path: samples and row panels move between
// threads, outputs must not.
ConvRun run_conv_gemm(std::size_t threads) {
  ThreadsOverride guard(threads);
  Rng rng(124);
  nn::Var x = nn::Var::leaf(nn::init::gaussian({3, 4, 8, 8}, 1.0f, rng));
  nn::Var w = nn::Var::leaf(nn::init::gaussian({6, 4, 3, 3}, 0.5f, rng));
  nn::Var b = nn::Var::leaf(nn::init::gaussian({6}, 0.5f, rng));
  nn::Conv2dSpec spec{.stride = 1, .padding = 1, .impl = nn::Conv2dImpl::kIm2col};
  nn::Var y = nn::conv2d(x, w, b, spec);
  nn::sum(y).backward();
  return {y.value(), x.grad(), w.grad(), b.grad()};
}

TEST(ParallelDeterminismTest, Im2colConvBitwiseIdenticalAcrossThreadCounts) {
  const ConvRun serial = run_conv_gemm(1);
  const ConvRun parallel = run_conv_gemm(8);
  expect_bitwise_equal(serial.y, parallel.y, "im2col conv forward");
  expect_bitwise_equal(serial.gx, parallel.gx, "im2col conv grad input");
  expect_bitwise_equal(serial.gw, parallel.gw, "im2col conv grad weight");
  expect_bitwise_equal(serial.gb, parallel.gb, "im2col conv grad bias");
}

// matmul and both backward GEMM products (NT/TN) plus the add_rowvec
// column-sliced bias reduction, across thread counts.
struct LinearRun {
  nn::Tensor y, gx, gw, gb;
};

LinearRun run_linear(std::size_t threads) {
  ThreadsOverride guard(threads);
  Rng rng(67);
  nn::Var x = nn::Var::leaf(nn::init::gaussian({37, 29}, 1.0f, rng));
  nn::Var w = nn::Var::leaf(nn::init::gaussian({29, 43}, 1.0f, rng));
  nn::Var b = nn::Var::leaf(nn::init::gaussian({43}, 1.0f, rng));
  nn::Var y = nn::linear(x, w, b);
  nn::sum(y).backward();
  return {y.value(), x.grad(), w.grad(), b.grad()};
}

TEST(ParallelDeterminismTest, LinearBitwiseIdenticalAcrossThreadCounts) {
  const LinearRun serial = run_linear(1);
  const LinearRun parallel = run_linear(8);
  expect_bitwise_equal(serial.y, parallel.y, "linear forward");
  expect_bitwise_equal(serial.gx, parallel.gx, "linear grad input (NT gemm)");
  expect_bitwise_equal(serial.gw, parallel.gw, "linear grad weight (TN gemm)");
  expect_bitwise_equal(serial.gb, parallel.gb, "linear grad bias (column slices)");
}

// The batched LSTM projection: one [T·B, 4H] GEMM feeding sliced steps.
struct LstmRun {
  std::vector<nn::Tensor> outputs;
  std::vector<nn::Tensor> param_grads;
};

LstmRun run_lstm(std::size_t threads) {
  ThreadsOverride guard(threads);
  Rng model_rng(91);
  nn::Lstm lstm(7, 6, 3, model_rng, nn::Activation::kTanh);
  Rng rng(92);
  std::vector<nn::Var> inputs;
  for (long t = 0; t < 6; ++t) {
    inputs.push_back(nn::Var::leaf(nn::init::gaussian({4, 7}, 1.0f, rng)));
  }
  const std::vector<nn::Var> outs = lstm.forward(inputs);
  nn::Var total = nn::sum(outs[0]);
  for (std::size_t t = 1; t < outs.size(); ++t) total = nn::add(total, nn::sum(outs[t]));
  total.backward();
  LstmRun run;
  for (const nn::Var& o : outs) run.outputs.push_back(o.value());
  for (const nn::Var& p : lstm.parameters()) run.param_grads.push_back(p.grad());
  return run;
}

TEST(ParallelDeterminismTest, BatchedLstmBitwiseIdenticalAcrossThreadCounts) {
  const LstmRun serial = run_lstm(1);
  const LstmRun parallel = run_lstm(8);
  ASSERT_EQ(serial.outputs.size(), parallel.outputs.size());
  for (std::size_t t = 0; t < serial.outputs.size(); ++t) {
    expect_bitwise_equal(serial.outputs[t], parallel.outputs[t], "lstm output");
  }
  ASSERT_EQ(serial.param_grads.size(), parallel.param_grads.size());
  for (std::size_t i = 0; i < serial.param_grads.size(); ++i) {
    expect_bitwise_equal(serial.param_grads[i], parallel.param_grads[i], "lstm param grad");
  }
}

// Scoped override of the GEMM SIMD dispatch level.
struct SimdOverride {
  explicit SimdOverride(nn::SimdLevel level) : prev(nn::active_simd_level()) {
    nn::set_simd_level(level);
  }
  ~SimdOverride() { nn::set_simd_level(prev); }
  nn::SimdLevel prev;
};

// The 1-vs-8-thread contract must hold at every dispatch level this
// build and CPU support, not just the default: lane width changes which
// C columns share a register, never the per-element reduction order.
TEST(ParallelDeterminismTest, LinearBitwiseIdenticalAcrossThreadCountsAtEverySimdLevel) {
  for (const nn::SimdLevel level : {nn::SimdLevel::kGeneric, nn::SimdLevel::kAvx2,
                                    nn::SimdLevel::kAvx512, nn::SimdLevel::kNeon}) {
    if (!nn::simd_level_available(level)) continue;
    SimdOverride guard(level);
    const LinearRun serial = run_linear(1);
    const LinearRun parallel = run_linear(8);
    const char* name = nn::simd_level_name(level);
    expect_bitwise_equal(serial.y, parallel.y, name);
    expect_bitwise_equal(serial.gx, parallel.gx, name);
    expect_bitwise_equal(serial.gw, parallel.gw, name);
    expect_bitwise_equal(serial.gb, parallel.gb, name);
  }
}

// Concurrent rfft/irfft calls from pool workers: the per-thread Bluestein
// scratch and the shared rfft/Bluestein plan caches must not let results
// depend on which worker ran which row. Mixes fast-path (64) and
// fallback (168) lengths in one batch.
std::vector<std::vector<double>> run_rfft_batch(std::size_t threads) {
  ThreadsOverride guard(threads);
  std::vector<std::vector<double>> rows;
  for (long r = 0; r < 24; ++r) {
    const long n = (r % 2 == 0) ? 64 : 168;
    Rng rng(static_cast<std::uint64_t>(1000 + r));
    std::vector<double> x(static_cast<std::size_t>(n));
    for (double& v : x) v = rng.uniform(-1, 1);
    rows.push_back(std::move(x));
  }
  std::vector<std::vector<double>> out(rows.size());
  parallel_for(rows.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      out[r] = dsp::irfft(dsp::rfft(rows[r]), static_cast<long>(rows[r].size()));
    }
  });
  return out;
}

TEST(ParallelDeterminismTest, RfftRoundTripBitwiseIdenticalAcrossThreadCounts) {
  const std::vector<std::vector<double>> serial = run_rfft_batch(1);
  const std::vector<std::vector<double>> parallel = run_rfft_batch(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    ASSERT_EQ(serial[r].size(), parallel[r].size());
    for (std::size_t i = 0; i < serial[r].size(); ++i) {
      ASSERT_EQ(serial[r][i], parallel[r][i])
          << "rfft round trip diverges at row " << r << " index " << i;
    }
  }
}

struct BridgeRun {
  nn::Tensor traffic, grad;
};

BridgeRun run_bridge(std::size_t threads) {
  ThreadsOverride guard(threads);
  Rng rng(321);
  nn::Var spectrum = nn::Var::leaf(nn::init::gaussian({3, 8, 6}, 1.0f, rng));
  nn::Var traffic = core::irfft_bridge(spectrum, /*base_steps=*/24, /*expand_k=*/2);
  nn::sum(traffic).backward();
  return {traffic.value(), spectrum.grad()};
}

TEST(ParallelDeterminismTest, IrfftBridgeBitwiseIdenticalAcrossThreadCounts) {
  const BridgeRun serial = run_bridge(1);
  const BridgeRun parallel = run_bridge(8);
  expect_bitwise_equal(serial.traffic, parallel.traffic, "irfft_bridge forward");
  expect_bitwise_equal(serial.grad, parallel.grad, "irfft_bridge backward");
}

TEST(ParallelDeterminismTest, SpectrumTargetsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(55);
  const nn::Tensor traffic = nn::init::gaussian({2, 24, 9}, 1.0f, rng);
  nn::Tensor plain_serial, masked_serial;
  {
    ThreadsOverride guard(1);
    plain_serial = core::batch_spectrum(traffic, 8);
    masked_serial = core::masked_spectrum_target(traffic, 8, 0.6);
  }
  ThreadsOverride guard(8);
  expect_bitwise_equal(plain_serial, core::batch_spectrum(traffic, 8), "batch_spectrum");
  expect_bitwise_equal(masked_serial, core::masked_spectrum_target(traffic, 8, 0.6),
                       "masked_spectrum_target");
}

core::SpectraGanConfig tiny_config() {
  core::SpectraGanConfig config;
  config.train_steps = 24;
  config.spectrum_bins = 8;
  config.hidden_channels = 6;
  config.encoder_mid_channels = 8;
  config.spectrum_mid_channels = 8;
  config.lstm_hidden = 8;
  config.cond_dim = 8;
  config.disc_mlp_hidden = 8;
  config.noise_channels = 2;
  config.iterations = 2;
  config.batch = 2;
  return config;
}

geo::CityTensor run_citygen(std::size_t threads) {
  ThreadsOverride guard(threads);
  const core::SpectraGanConfig config = tiny_config();
  core::SpectraGan model(config, /*seed=*/16);
  geo::ContextTensor context(config.context_channels, 12, 12);
  Rng rng_fill(17);
  for (double& v : context.values()) v = rng_fill.uniform(0, 1);
  Rng rng(21);
  return model.generate_city(context, 2 * config.train_steps, rng);
}

TEST(ParallelDeterminismTest, GenerateCityBitwiseIdenticalAcrossThreadCounts) {
  const geo::CityTensor serial = run_citygen(1);
  const geo::CityTensor parallel = run_citygen(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (long i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "generate_city diverges at flat index " << i;
  }
}

// The ISSUE acceptance gate: the strip-streamed path must be bitwise
// identical to the legacy dense path at 24x24 for 1 and 8 threads, for
// both aggregation modes. The two paths share for_each_generated_patch,
// so a divergence would localize to the accumulators.
geo::CityTensor run_citygen_24(std::size_t threads, geo::OverlapAggregation aggregation,
                               bool streamed) {
  ThreadsOverride guard(threads);
  const core::SpectraGanConfig config = tiny_config();
  core::SpectraGan model(config, /*seed=*/16);
  geo::ContextTensor context(config.context_channels, 24, 24);
  Rng rng_fill(17);
  for (double& v : context.values()) v = rng_fill.uniform(0, 1);
  Rng rng(21);
  const long steps = config.train_steps;
  if (!streamed) return model.generate_city_dense(context, steps, rng, aggregation);
  geo::CityTensorSink sink(steps, 24, 24);
  model.generate_city_streamed(context, steps, rng, sink, aggregation);
  return sink.take();
}

TEST(ParallelDeterminismTest, StreamedCityBitwiseEqualsDensePath) {
  for (const geo::OverlapAggregation aggregation :
       {geo::OverlapAggregation::kMean, geo::OverlapAggregation::kMedian}) {
    const geo::CityTensor dense = run_citygen_24(1, aggregation, /*streamed=*/false);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      const geo::CityTensor streamed = run_citygen_24(threads, aggregation, /*streamed=*/true);
      ASSERT_EQ(streamed.size(), dense.size());
      for (long i = 0; i < dense.size(); ++i) {
        ASSERT_EQ(streamed[i], dense[i])
            << "streamed path diverges from dense at flat index " << i << " with " << threads
            << " thread(s), aggregation "
            << (aggregation == geo::OverlapAggregation::kMean ? "mean" : "median");
      }
    }
  }
}

geo::CityTensor run_median_finalize(std::size_t threads) {
  ThreadsOverride guard(threads);
  geo::PatchSpec spec;
  spec.traffic_h = spec.traffic_w = 4;
  spec.context_h = spec.context_w = 8;
  spec.stride = 2;
  geo::OverlapAccumulator acc(3, 10, 10, geo::OverlapAggregation::kMedian);
  Rng rng(9);
  std::vector<float> patch(static_cast<std::size_t>(3 * 4 * 4));
  for (const geo::PatchWindow& w : geo::enumerate_windows(10, 10, spec)) {
    for (float& v : patch) v = static_cast<float>(rng.uniform(0, 5));
    acc.add_patch(w, spec, patch);
  }
  return acc.finalize();
}

TEST(ParallelDeterminismTest, MedianFinalizeBitwiseIdenticalAcrossThreadCounts) {
  const geo::CityTensor serial = run_median_finalize(1);
  const geo::CityTensor parallel = run_median_finalize(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (long i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "median finalize diverges at flat index " << i;
  }
}

// --- chunking, nesting, and failure behaviour of the layer itself ---

TEST(ParallelForTest, CoversRangeWithDisjointChunks) {
  ThreadsOverride guard(8);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(1000, 1, [&](std::size_t begin, std::size_t end) {
    std::lock_guard lock(mu);
    chunks.push_back({begin, end});
  });
  // O(threads) chunks, not one task per index.
  EXPECT_LE(chunks.size(), 8u);
  std::sort(chunks.begin(), chunks.end());
  std::size_t expect_begin = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_GT(end, begin);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, 1000u);
}

TEST(ParallelForTest, GrainForcesInlineExecutionForSmallRanges) {
  ThreadsOverride guard(8);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(10, 100, [&](std::size_t begin, std::size_t end) {
    std::lock_guard lock(mu);
    chunks.push_back({begin, end});
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{0, 10}));
}

// Under the pre-parallel-layer pool this deadlocked: both workers blocked
// in the nested call's future.get() with the nested tasks stuck behind
// them in the queue. Nested calls now execute inline on the worker.
TEST(ParallelForTest, NestedParallelForOnSamePoolDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(4, [&pool, &count](std::size_t) {
    pool.parallel_for(8, [&count](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ParallelForTest, NestedFreeParallelForDoesNotDeadlock) {
  ThreadsOverride guard(4);
  std::atomic<int> count{0};
  parallel_for(8, 1, [&count](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      parallel_for(16, 1, [&count](std::size_t b, std::size_t e) {
        count += static_cast<int>(e - b);
      });
    }
  });
  EXPECT_EQ(count.load(), 8 * 16);
}

TEST(ParallelForTest, ExceptionPropagatesFromWorkerChunk) {
  ThreadsOverride guard(4);
  // n=100 over 4 threads -> chunks start at 0, 25, 50, 75; the throwing
  // chunks run on pool workers, not the calling thread.
  EXPECT_THROW(parallel_for(100, 1,
                            [](std::size_t begin, std::size_t) {
                              if (begin >= 50) throw Error("worker chunk failed");
                            }),
               Error);
}

TEST(ParallelForTest, ExceptionPropagatesFromCallerChunk) {
  ThreadsOverride guard(4);
  std::atomic<int> completed{0};
  try {
    parallel_for(100, 1, [&completed](std::size_t begin, std::size_t end) {
      if (begin == 0) throw Error("caller chunk failed");
      completed += static_cast<int>(end - begin);
    });
    FAIL() << "exception swallowed";
  } catch (const Error&) {
  }
  // The remaining chunks still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 75);
}

TEST(ParallelForTest, SerialThreadCountRunsInline) {
  ThreadsOverride guard(1);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  // No mutex needed: with parallel_threads() == 1 the callback runs on
  // this thread in a single chunk.
  parallel_for(1000, 1,
               [&](std::size_t begin, std::size_t end) { chunks.push_back({begin, end}); });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{0, 1000}));
}

}  // namespace
}  // namespace spectra
