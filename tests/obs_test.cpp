#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/train_log.h"
#include "util/thread_pool.h"

namespace spectra::obs {
namespace {

// Minimal structural JSON check: quotes pair up and brackets/braces
// balance outside strings. Catches truncated or mis-nested output.
bool json_well_formed(const std::string& json) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(CounterTest, IncrementAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter counter;
  ThreadPool pool(4);
  pool.parallel_for(64, [&counter](std::size_t) {
    for (int i = 0; i < 1000; ++i) counter.inc();
  });
  EXPECT_EQ(counter.value(), 64000u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.add(-6.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.0);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(HistogramTest, BucketAssignment) {
  Histogram hist({1.0, 2.0, 4.0});
  hist.observe(0.5);   // bucket 0 (<= 1)
  hist.observe(1.0);   // bucket 0 (bounds are inclusive upper limits)
  hist.observe(1.5);   // bucket 1
  hist.observe(4.0);   // bucket 2
  hist.observe(100.0); // overflow bucket
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 107.0);
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.bucket_count(3), 1u);   // +inf overflow
  EXPECT_EQ(hist.bucket_count(99), 0u);  // out of range reads as zero
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
}

TEST(HistogramTest, DefaultTimeBucketsAreIncreasing) {
  const std::vector<double> bounds = default_time_buckets();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
}

TEST(RegistryTest, SameNameReturnsSameInstrument) {
  Registry& registry = Registry::instance();
  Counter& a = registry.counter("obs_test.same_counter");
  Counter& b = registry.counter("obs_test.same_counter");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = registry.gauge("obs_test.same_gauge");
  Gauge& g2 = registry.gauge("obs_test.same_gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = registry.histogram("obs_test.same_hist", {1.0, 2.0});
  Histogram& h2 = registry.histogram("obs_test.same_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(RegistryTest, SnapshotsContainInstruments) {
  Registry& registry = Registry::instance();
  registry.counter("obs_test.snap_counter").inc(7);
  registry.gauge("obs_test.snap_gauge").set(3.5);
  registry.histogram("obs_test.snap_hist", {0.5}).observe(0.25);

  const std::string text = metrics_snapshot();
  EXPECT_NE(text.find("obs_test.snap_counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test.snap_gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_test.snap_hist"), std::string::npos);

  const std::string json = metrics_snapshot_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"obs_test.snap_counter\":"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(RegistryTest, DumpMetricsWritesJsonFile) {
  Registry::instance().counter("obs_test.dump_counter").inc();
  const std::string path = testing::TempDir() + "/sg_metrics_dump.json";
  dump_metrics(path);
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(json_well_formed(buffer.str())) << buffer.str();
  EXPECT_NE(buffer.str().find("obs_test.dump_counter"), std::string::npos);
  std::remove(path.c_str());
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_reset();
    trace_set_enabled(true);
  }
  void TearDown() override {
    trace_set_enabled(false);
    trace_reset();
  }
};

TEST_F(TraceTest, NestedSpansProduceWellFormedTraceJson) {
  {
    SG_TRACE_SPAN("outer");
    {
      SG_TRACE_SPAN("inner");
      SG_TRACE_SPAN("sibling");
    }
  }
  const std::string json = trace_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sibling\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceTest, SpansFromPoolThreadsAreRecorded) {
  ThreadPool pool(3);
  pool.parallel_for(8, [](std::size_t) { SG_TRACE_SPAN("pool_span"); });
  const std::string json = trace_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  std::size_t occurrences = 0;
  for (std::size_t pos = json.find("pool_span"); pos != std::string::npos;
       pos = json.find("pool_span", pos + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 8u);
}

TEST_F(TraceTest, FlushWritesFile) {
  { SG_TRACE_SPAN("flushed_span"); }
  const std::string path = testing::TempDir() + "/sg_trace_flush.json";
  trace_flush(path);
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(json_well_formed(buffer.str()));
  EXPECT_NE(buffer.str().find("flushed_span"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceDisabledTest, DisabledSpansRecordNothing) {
  trace_set_enabled(false);
  trace_reset();
  { SG_TRACE_SPAN("ghost"); }
  const std::string json = trace_json();
  EXPECT_EQ(json.find("ghost"), std::string::npos);
  EXPECT_TRUE(json_well_formed(json));
}

TEST(TrainLogTest, JsonlRoundTrip) {
  TrainIterRecord record;
  record.iteration = 123;
  record.d_loss = 1.25;
  record.g_adv_loss = 0.0625;
  record.l1_loss = 3.0e-7;
  record.grad_norm_d = 17.5;
  record.grad_norm_g = 0.0;
  record.seconds = 0.001953125;

  const std::string line = to_jsonl(record);
  EXPECT_TRUE(json_well_formed(line)) << line;
  const auto parsed = parse_jsonl(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->iteration, record.iteration);
  EXPECT_DOUBLE_EQ(parsed->d_loss, record.d_loss);
  EXPECT_DOUBLE_EQ(parsed->g_adv_loss, record.g_adv_loss);
  EXPECT_DOUBLE_EQ(parsed->l1_loss, record.l1_loss);
  EXPECT_DOUBLE_EQ(parsed->grad_norm_d, record.grad_norm_d);
  EXPECT_DOUBLE_EQ(parsed->grad_norm_g, record.grad_norm_g);
  EXPECT_DOUBLE_EQ(parsed->seconds, record.seconds);
}

TEST(TrainLogTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(parse_jsonl("").has_value());
  EXPECT_FALSE(parse_jsonl("{}").has_value());
  EXPECT_FALSE(parse_jsonl("{\"iter\":1,\"d_loss\":0.5}").has_value());
}

TEST(TrainLogTest, DisabledSinkIsNoop) {
  TrainLogSink sink{std::string()};
  EXPECT_FALSE(sink.enabled());
  sink.write({});  // must not crash or create files
}

TEST(TrainLogTest, SinkWritesOneLinePerRecord) {
  const std::string path = testing::TempDir() + "/sg_train_log.jsonl";
  std::remove(path.c_str());
  {
    TrainLogSink sink(path);
    ASSERT_TRUE(sink.enabled());
    for (long it = 0; it < 3; ++it) {
      TrainIterRecord record;
      record.iteration = it;
      record.d_loss = 0.5 * static_cast<double>(it);
      sink.write(record);
    }
  }
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::string line;
  long count = 0;
  while (std::getline(in, line)) {
    const auto parsed = parse_jsonl(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->iteration, count);
    ++count;
  }
  EXPECT_EQ(count, 3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spectra::obs
