#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/run_manifest.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "obs/train_log.h"
#include "util/thread_pool.h"

namespace spectra::obs {
namespace {

// Minimal structural JSON check: quotes pair up and brackets/braces
// balance outside strings. Catches truncated or mis-nested output.
bool json_well_formed(const std::string& json) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(CounterTest, IncrementAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter counter;
  ThreadPool pool(4);
  pool.parallel_for(64, [&counter](std::size_t) {
    for (int i = 0; i < 1000; ++i) counter.inc();
  });
  EXPECT_EQ(counter.value(), 64000u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.add(-6.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.0);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(HistogramTest, BucketAssignment) {
  Histogram hist({1.0, 2.0, 4.0});
  hist.observe(0.5);   // bucket 0 (<= 1)
  hist.observe(1.0);   // bucket 0 (bounds are inclusive upper limits)
  hist.observe(1.5);   // bucket 1
  hist.observe(4.0);   // bucket 2
  hist.observe(100.0); // overflow bucket
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 107.0);
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.bucket_count(3), 1u);   // +inf overflow
  EXPECT_EQ(hist.bucket_count(99), 0u);  // out of range reads as zero
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
}

TEST(HistogramTest, DefaultTimeBucketsAreIncreasing) {
  const std::vector<double> bounds = default_time_buckets();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
}

TEST(RegistryTest, SameNameReturnsSameInstrument) {
  Registry& registry = Registry::instance();
  Counter& a = registry.counter("obs_test.same_counter");
  Counter& b = registry.counter("obs_test.same_counter");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = registry.gauge("obs_test.same_gauge");
  Gauge& g2 = registry.gauge("obs_test.same_gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = registry.histogram("obs_test.same_hist", {1.0, 2.0});
  Histogram& h2 = registry.histogram("obs_test.same_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(RegistryTest, SnapshotsContainInstruments) {
  Registry& registry = Registry::instance();
  registry.counter("obs_test.snap_counter").inc(7);
  registry.gauge("obs_test.snap_gauge").set(3.5);
  registry.histogram("obs_test.snap_hist", {0.5}).observe(0.25);

  const std::string text = metrics_snapshot();
  EXPECT_NE(text.find("obs_test.snap_counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test.snap_gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_test.snap_hist"), std::string::npos);

  const std::string json = metrics_snapshot_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"obs_test.snap_counter\":"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(RegistryTest, DumpMetricsWritesJsonFile) {
  Registry::instance().counter("obs_test.dump_counter").inc();
  const std::string path = testing::TempDir() + "/sg_metrics_dump.json";
  dump_metrics(path);
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(json_well_formed(buffer.str())) << buffer.str();
  EXPECT_NE(buffer.str().find("obs_test.dump_counter"), std::string::npos);
  std::remove(path.c_str());
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_reset();
    trace_set_enabled(true);
  }
  void TearDown() override {
    trace_set_enabled(false);
    trace_reset();
  }
};

TEST_F(TraceTest, NestedSpansProduceWellFormedTraceJson) {
  {
    SG_TRACE_SPAN("outer");
    {
      SG_TRACE_SPAN("inner");
      SG_TRACE_SPAN("sibling");
    }
  }
  const std::string json = trace_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sibling\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceTest, SpansFromPoolThreadsAreRecorded) {
  ThreadPool pool(3);
  pool.parallel_for(8, [](std::size_t) { SG_TRACE_SPAN("pool_span"); });
  const std::string json = trace_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  std::size_t occurrences = 0;
  for (std::size_t pos = json.find("pool_span"); pos != std::string::npos;
       pos = json.find("pool_span", pos + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 8u);
}

TEST_F(TraceTest, FlushWritesFile) {
  { SG_TRACE_SPAN("flushed_span"); }
  const std::string path = testing::TempDir() + "/sg_trace_flush.json";
  trace_flush(path);
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(json_well_formed(buffer.str()));
  EXPECT_NE(buffer.str().find("flushed_span"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceDisabledTest, DisabledSpansRecordNothing) {
  trace_set_enabled(false);
  trace_reset();
  { SG_TRACE_SPAN("ghost"); }
  const std::string json = trace_json();
  EXPECT_EQ(json.find("ghost"), std::string::npos);
  EXPECT_TRUE(json_well_formed(json));
}

TEST(TrainLogTest, JsonlRoundTrip) {
  TrainIterRecord record;
  record.iteration = 123;
  record.d_loss = 1.25;
  record.g_adv_loss = 0.0625;
  record.l1_loss = 3.0e-7;
  record.grad_norm_d = 17.5;
  record.grad_norm_g = 0.0;
  record.seconds = 0.001953125;

  const std::string line = to_jsonl(record);
  EXPECT_TRUE(json_well_formed(line)) << line;
  const auto parsed = parse_jsonl(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->iteration, record.iteration);
  EXPECT_DOUBLE_EQ(parsed->d_loss, record.d_loss);
  EXPECT_DOUBLE_EQ(parsed->g_adv_loss, record.g_adv_loss);
  EXPECT_DOUBLE_EQ(parsed->l1_loss, record.l1_loss);
  EXPECT_DOUBLE_EQ(parsed->grad_norm_d, record.grad_norm_d);
  EXPECT_DOUBLE_EQ(parsed->grad_norm_g, record.grad_norm_g);
  EXPECT_DOUBLE_EQ(parsed->seconds, record.seconds);
}

TEST(TrainLogTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(parse_jsonl("").has_value());
  EXPECT_FALSE(parse_jsonl("{}").has_value());
  EXPECT_FALSE(parse_jsonl("{\"iter\":1,\"d_loss\":0.5}").has_value());
}

TEST(TrainLogTest, DisabledSinkIsNoop) {
  TrainLogSink sink{std::string()};
  EXPECT_FALSE(sink.enabled());
  sink.write({});  // must not crash or create files
}

TEST(TrainLogTest, SinkWritesOneLinePerRecord) {
  const std::string path = testing::TempDir() + "/sg_train_log.jsonl";
  std::remove(path.c_str());
  {
    TrainLogSink sink(path);
    ASSERT_TRUE(sink.enabled());
    for (long it = 0; it < 3; ++it) {
      TrainIterRecord record;
      record.iteration = it;
      record.d_loss = 0.5 * static_cast<double>(it);
      sink.write(record);
    }
  }
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::string line;
  long count = 0;
  while (std::getline(in, line)) {
    const auto parsed = parse_jsonl(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->iteration, count);
    ++count;
  }
  EXPECT_EQ(count, 3);
  std::remove(path.c_str());
}

TEST(MaxGaugeTest, KeepsHighWaterMark) {
  MaxGauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.update(3.0);
  gauge.update(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.update(7.25);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.25);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(MaxGaugeTest, ConcurrentUpdatesKeepGlobalMax) {
  MaxGauge gauge;
  ThreadPool pool(4);
  pool.parallel_for(64, [&gauge](std::size_t i) {
    gauge.update(static_cast<double>(i));
  });
  EXPECT_DOUBLE_EQ(gauge.value(), 63.0);
}

// Deterministic uniform stream in [0, 1) for the quantile tests (LCG —
// no std RNG so the stream is identical on every platform).
std::vector<double> uniform_stream(std::size_t n) {
  std::vector<double> values;
  values.reserve(n);
  std::uint64_t x = 1;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    values.push_back(static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0));
  }
  return values;
}

// Reference implementation the reservoir must match while unsaturated:
// sorted sample, linear interpolation between order statistics.
double reference_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) * (rank - static_cast<double>(lo));
}

TEST(HistogramQuantileTest, ExactWhileReservoirUnsaturated) {
  ASSERT_LT(400u, Histogram::kReservoirSize);
  Histogram hist({1e9});
  const std::vector<double> values = uniform_stream(400);
  for (double v : values) hist.observe(v);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_NEAR(hist.quantile(q), reference_quantile(values, q), 1e-12) << "q=" << q;
  }
}

TEST(HistogramQuantileTest, ApproximateOnceSaturated) {
  Histogram hist({1e9});
  const std::vector<double> values = uniform_stream(5000);
  for (double v : values) hist.observe(v);
  // The reservoir holds 512 of 5000; a uniform sample bounds the rank
  // error near 1/sqrt(512) ~ 4.4%. The stream and the replacement hash
  // are both deterministic, so this is a fixed comparison, not a flake.
  EXPECT_NEAR(hist.quantile(0.50), reference_quantile(values, 0.50), 0.08);
  EXPECT_NEAR(hist.quantile(0.95), reference_quantile(values, 0.95), 0.08);
  EXPECT_NEAR(hist.quantile(0.99), reference_quantile(values, 0.99), 0.08);
}

TEST(HistogramQuantileTest, EmptyHistogramQuantilesAreNaN) {
  Histogram hist({1.0});
  EXPECT_TRUE(std::isnan(hist.quantile(0.5)));
  EXPECT_TRUE(std::isnan(hist.bucket_quantile(0.5)));
}

TEST(HistogramQuantileTest, BucketQuantileInterpolatesInsideBuckets) {
  Histogram hist({1.0, 2.0, 4.0});
  for (int i = 0; i < 50; ++i) hist.observe(0.5);  // bucket (0, 1]
  for (int i = 0; i < 50; ++i) hist.observe(1.5);  // bucket (1, 2]
  EXPECT_NEAR(hist.bucket_quantile(0.25), 0.5, 1e-12);
  EXPECT_NEAR(hist.bucket_quantile(0.50), 1.0, 1e-12);
  EXPECT_NEAR(hist.bucket_quantile(0.75), 1.5, 1e-12);
  hist.observe(100.0);  // overflow bucket clamps to the last finite bound
  EXPECT_NEAR(hist.bucket_quantile(1.0), 4.0, 1e-12);
}

TEST(HistogramQuantileTest, SnapshotsRenderQuantiles) {
  Registry& registry = Registry::instance();
  Histogram& hist = registry.histogram("obs_test.quant_hist", {10.0});
  for (int i = 1; i <= 9; ++i) hist.observe(static_cast<double>(i));
  registry.max_gauge("obs_test.quant_max").update(17.0);

  const std::string text = metrics_snapshot();
  const std::size_t at = text.find("obs_test.quant_hist");
  ASSERT_NE(at, std::string::npos);
  const std::string line = text.substr(at, text.find('\n', at) - at);
  EXPECT_NE(line.find(" p50="), std::string::npos) << line;
  EXPECT_NE(line.find(" p95="), std::string::npos) << line;
  EXPECT_NE(line.find(" p99="), std::string::npos) << line;
  EXPECT_NE(text.find("maxgauge obs_test.quant_max = 17"), std::string::npos);

  const std::string json = metrics_snapshot_json();
  EXPECT_TRUE(json_well_formed(json));
  const std::size_t jat = json.find("\"obs_test.quant_hist\"");
  ASSERT_NE(jat, std::string::npos);
  EXPECT_NE(json.find("\"p50\":", jat), std::string::npos);
  EXPECT_NE(json.find("\"max_gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.quant_max\":17"), std::string::npos);
}

// --- hierarchical profiler ----------------------------------------------

// Parse the first numeric `field` appearing after `anchor` in `json`.
double json_number_after(const std::string& json, const std::string& anchor,
                         const std::string& field) {
  std::size_t pos = json.find(anchor);
  if (pos == std::string::npos) return std::nan("");
  pos = json.find("\"" + field + "\":", pos);
  if (pos == std::string::npos) return std::nan("");
  return std::strtod(json.c_str() + pos + field.size() + 3, nullptr);
}

// Saves and restores the global enabled flag so the suite behaves the
// same whether or not CI exported SPECTRA_PROFILE for the binary.
class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = profile_enabled();
    profile_reset();
    profile_set_enabled(true);
  }
  void TearDown() override {
    profile_set_enabled(was_enabled_);
    profile_reset();
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(ProfileTest, NestedScopesBuildTreeWithCallCounts) {
  {
    SG_PROFILE_SCOPE("prof_outer");
    { SG_PROFILE_SCOPE("prof_inner"); }
    { SG_PROFILE_SCOPE("prof_inner"); }
  }
  const std::string text = profile_report_text();
  EXPECT_NE(text.find("prof_outer"), std::string::npos);
  EXPECT_NE(text.find("  prof_inner"), std::string::npos);  // indented child

  const std::string json = profile_report_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_DOUBLE_EQ(json_number_after(json, "prof_outer", "calls"), 1.0);
  EXPECT_DOUBLE_EQ(json_number_after(json, "prof_inner", "calls"), 2.0);
}

TEST_F(ProfileTest, ExclusiveTimeIsInclusiveMinusChildren) {
  {
    SG_PROFILE_SCOPE("prof_excl_outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      SG_PROFILE_SCOPE("prof_excl_inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
    }
  }
  const std::string json = profile_report_json();
  const double outer_incl = json_number_after(json, "prof_excl_outer", "incl_seconds");
  const double outer_excl = json_number_after(json, "prof_excl_outer", "excl_seconds");
  const double inner_incl = json_number_after(json, "prof_excl_inner", "incl_seconds");
  ASSERT_FALSE(std::isnan(outer_incl));
  ASSERT_FALSE(std::isnan(inner_incl));
  EXPECT_GE(outer_incl, inner_incl);
  EXPECT_GE(inner_incl, 0.004);
  // excl is derived as incl - sum(children incl) from the same counters,
  // so the identity holds to JSON round-trip precision.
  EXPECT_NEAR(outer_excl, outer_incl - inner_incl, 1e-6);
}

TEST_F(ProfileTest, WorkIsAttributedToReportingNodeOnly) {
  {
    SG_PROFILE_SCOPE("prof_work_parent");
    {
      SG_PROFILE_SCOPE("prof_work_child");
      profile_add_work(2.0e9, 5.0e8);
    }
  }
  const std::string json = profile_report_json();
  EXPECT_DOUBLE_EQ(json_number_after(json, "prof_work_parent", "flops"), 0.0);
  EXPECT_DOUBLE_EQ(json_number_after(json, "prof_work_child", "flops"), 2.0e9);
  EXPECT_DOUBLE_EQ(json_number_after(json, "prof_work_child", "bytes"), 5.0e8);
  // A node with work gets a derived GFLOP/s figure.
  const std::size_t child = json.find("prof_work_child");
  ASSERT_NE(child, std::string::npos);
  EXPECT_NE(json.find("\"gflops\":", child), std::string::npos);
}

TEST_F(ProfileTest, DisabledScopesRecordNothing) {
  profile_set_enabled(false);
  {
    SG_PROFILE_SCOPE("prof_ghost");
    profile_add_work(1.0, 1.0);
  }
  EXPECT_EQ(profile_report_text().find("prof_ghost"), std::string::npos);
}

TEST_F(ProfileTest, ResetClearsTree) {
  { SG_PROFILE_SCOPE("prof_reset_me"); }
  EXPECT_NE(profile_report_text().find("prof_reset_me"), std::string::npos);
  profile_reset();
  EXPECT_EQ(profile_report_text().find("prof_reset_me"), std::string::npos);
}

TEST_F(ProfileTest, PoolThreadScopesMergeByPath) {
  ThreadPool pool(3);
  pool.parallel_for(8, [](std::size_t) { SG_PROFILE_SCOPE("prof_pool_scope"); });
  const std::string json = profile_report_json();
  EXPECT_TRUE(json_well_formed(json));
  // The same path on different threads merges into one node whose call
  // count is the total across threads.
  EXPECT_DOUBLE_EQ(json_number_after(json, "prof_pool_scope", "calls"), 8.0);
  const std::size_t first = json.find("prof_pool_scope");
  EXPECT_EQ(json.find("prof_pool_scope", first + 1), std::string::npos);
}

TEST_F(ProfileTest, DumpWritesWellFormedJsonFile) {
  { SG_PROFILE_SCOPE("prof_dumped"); }
  const std::string path = testing::TempDir() + "/sg_profile_dump.json";
  profile_dump(path);
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(json_well_formed(buffer.str()));
  EXPECT_NE(buffer.str().find("prof_dumped"), std::string::npos);
  EXPECT_NE(buffer.str().find("\"wall_seconds\":"), std::string::npos);
  std::remove(path.c_str());
}

// --- resource sampler ---------------------------------------------------

TEST(SamplerTest, ReadProcSampleReportsProcessFacts) {
#ifdef __linux__
  const ProcSample sample = read_proc_sample();
  EXPECT_GT(sample.rss_bytes, 0.0);
  EXPECT_GE(sample.peak_rss_bytes, sample.rss_bytes);
  EXPECT_GE(sample.cpu_utime_seconds, 0.0);
  EXPECT_GE(sample.cpu_stime_seconds, 0.0);
#else
  GTEST_SKIP() << "no /proc on this platform";
#endif
}

TEST(SamplerTest, SampleOnceUpdatesRegistry) {
  Registry& registry = Registry::instance();
  const std::uint64_t before = registry.counter("proc.sampler_ticks").value();
  sample_once();
  EXPECT_GE(registry.counter("proc.sampler_ticks").value(), before + 1);
#ifdef __linux__
  EXPECT_GT(registry.gauge("proc.rss_bytes").value(), 0.0);
  EXPECT_GT(registry.max_gauge("proc.peak_rss_bytes").value(), 0.0);
#endif
}

TEST(SamplerTest, StartStopLifecycle) {
  ResourceSampler& sampler = ResourceSampler::instance();
  const bool was_running = sampler.running();  // CI may have env-started it
  sampler.stop();
  EXPECT_FALSE(sampler.running());

  const std::uint64_t before = Registry::instance().counter("proc.sampler_ticks").value();
  sampler.start(1);
  EXPECT_TRUE(sampler.running());
  sampler.start(1);  // second start is a no-op, not a second thread
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  sampler.stop();  // idempotent
  EXPECT_GT(Registry::instance().counter("proc.sampler_ticks").value(), before);

  if (was_running) sampler.start(5);  // hand the env-started sampler back
}

// Pins the contract the thread safety annotations now make checkable:
// stop() joins the tick thread, so once it returns the tick counter is
// frozen — no straggler tick can land after stop(), no matter how the
// stop races the 1 ms tick loop. Hammering the start/stop edge makes the
// race window real instead of theoretical.
TEST(SamplerTest, StopFreezesTickCounter) {
  ResourceSampler& sampler = ResourceSampler::instance();
  const bool was_running = sampler.running();  // CI may have env-started it
  sampler.stop();

  Counter& ticks = Registry::instance().counter("proc.sampler_ticks");
  for (int round = 0; round < 5; ++round) {
    sampler.start(1);
    // Spin until at least one tick lands so the loop is really in flight
    // (first tick fires immediately on start, so this is quick).
    const std::uint64_t entered = ticks.value();
    while (ticks.value() == entered) std::this_thread::yield();
    sampler.stop();
    const std::uint64_t frozen = ticks.value();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(ticks.value(), frozen)
        << "tick landed after stop() returned (round " << round << ")";
  }

  if (was_running) sampler.start(5);
}

// --- run manifest -------------------------------------------------------

TEST(RunManifestTest, ManifestCarriesProvenanceAndExtras) {
  run_manifest_set("obs_test_extra", "42");
  run_manifest_set_string("obs_test_str", "hello \"quoted\"");
  const std::string json = run_manifest_json("obs-test-run");
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"name\":\"obs-test-run\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\":"), std::string::npos);
  EXPECT_NE(json.find("\"build_type\":"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"env\":"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"profile\":"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_extra\":42"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_str\":\"hello \\\"quoted\\\"\""), std::string::npos);
}

TEST(RunManifestTest, WriteRunManifestWritesFile) {
  const std::string path = testing::TempDir() + "/sg_run_manifest.json";
  std::remove(path.c_str());
  write_run_manifest(path, "obs-test-file");
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(json_well_formed(buffer.str()));
  EXPECT_NE(buffer.str().find("\"name\":\"obs-test-file\""), std::string::npos);
  std::remove(path.c_str());
}

// --- streaming trace export ---------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The stream sink is process-global; when the binary was launched with
// SPECTRA_TRACE set, the env autostart already owns it.
class TraceStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::getenv("SPECTRA_TRACE") != nullptr) {
      GTEST_SKIP() << "global trace stream owned by SPECTRA_TRACE";
    }
    trace_reset();
    trace_set_enabled(true);
  }
  void TearDown() override {
    trace_stream_close();
    trace_set_enabled(false);
    trace_reset();
  }
};

TEST_F(TraceStreamTest, DrainStreamsEventsBeforeCloseFinalizes) {
  const std::string path = testing::TempDir() + "/sg_trace_stream.json";
  std::remove(path.c_str());
  const std::uint64_t flushes_before =
      Registry::instance().counter("trace.stream_flushes").value();

  trace_stream_open(path);
  { SG_TRACE_SPAN("stream_span_a"); }
  { SG_TRACE_SPAN("stream_span_b"); }
  trace_stream_drain();

  // Events are on disk before process exit (the SIGKILL-safety claim)...
  const std::string partial = slurp(path);
  EXPECT_NE(partial.find("stream_span_a"), std::string::npos);
  EXPECT_NE(partial.find("stream_span_b"), std::string::npos);
  EXPECT_GE(Registry::instance().counter("trace.stream_flushes").value(),
            flushes_before + 1);

  // ...and close turns the stream into a complete JSON array.
  trace_stream_close();
  const std::string full = slurp(path);
  EXPECT_EQ(full.front(), '[');
  EXPECT_TRUE(json_well_formed(full)) << full;
  std::remove(path.c_str());
}

TEST_F(TraceStreamTest, RecordingPastThresholdDrainsWithoutExplicitFlush) {
  const std::string path = testing::TempDir() + "/sg_trace_autodrain.json";
  std::remove(path.c_str());
  trace_stream_open(path);
  for (std::uint64_t i = 0; i < kStreamFlushEvents + 8; ++i) {
    SG_TRACE_SPAN("auto_drain_span");
  }
  // The recording thread itself crossed the threshold and drained.
  EXPECT_NE(slurp(path).find("auto_drain_span"), std::string::npos);
  trace_stream_close();
  EXPECT_TRUE(json_well_formed(slurp(path)));
  std::remove(path.c_str());
}

TEST_F(TraceStreamTest, FlushRoutesToStreamWhenItOwnsThePath) {
  const std::string path = testing::TempDir() + "/sg_trace_owned.json";
  std::remove(path.c_str());
  trace_stream_open(path);
  { SG_TRACE_SPAN("owned_span"); }
  trace_flush(path);  // must drain, not overwrite with a whole document
  const std::string contents = slurp(path);
  EXPECT_NE(contents.find("owned_span"), std::string::npos);
  EXPECT_EQ(contents.find("traceEvents"), std::string::npos);
  trace_stream_close();
  std::remove(path.c_str());
}

TEST(TraceRecoverTest, PartialStreamIsFinalizedAndRenamed) {
  const std::string path = testing::TempDir() + "/sg_trace_partial.json";
  const std::string recovered = path + ".recovered";
  std::remove(path.c_str());
  std::remove(recovered.c_str());
  {
    std::ofstream out(path);
    out << "[\n{\"name\":\"cut_short\",\"ph\":\"X\",\"ts\":1,\"dur\":2},";
  }
  EXPECT_TRUE(trace_recover_partial(path));
  EXPECT_FALSE(static_cast<bool>(std::ifstream(path)));  // renamed away
  const std::string contents = slurp(recovered);
  EXPECT_TRUE(json_well_formed(contents)) << contents;
  EXPECT_NE(contents.find("cut_short"), std::string::npos);
  std::remove(recovered.c_str());
}

// A SIGKILL between drains leaves the file ending exactly at an event's
// closing brace — the common case, since drains flush whole events. The
// leading '[' (never present in one-shot dumps) must mark it as a cut
// stream.
TEST(TraceRecoverTest, KillAtEventBoundaryIsStillRecovered) {
  const std::string path = testing::TempDir() + "/sg_trace_boundary.json";
  const std::string recovered = path + ".recovered";
  std::remove(path.c_str());
  std::remove(recovered.c_str());
  {
    std::ofstream out(path);
    out << "[\n{\"name\":\"a\",\"ph\":\"X\",\"ts\":1,\"dur\":2},\n"
        << "{\"name\":\"b\",\"ph\":\"X\",\"ts\":3,\"dur\":4}";
  }
  EXPECT_TRUE(trace_recover_partial(path));
  const std::string contents = slurp(recovered);
  EXPECT_TRUE(json_well_formed(contents)) << contents;
  EXPECT_NE(contents.find("\"b\""), std::string::npos);
  std::remove(recovered.c_str());
}

// A kill mid-write leaves a half-serialized record; recovery must drop
// it and close the array after the last complete event.
TEST(TraceRecoverTest, MidRecordCutIsTruncatedToLastCompleteEvent) {
  const std::string path = testing::TempDir() + "/sg_trace_midcut.json";
  const std::string recovered = path + ".recovered";
  std::remove(path.c_str());
  std::remove(recovered.c_str());
  {
    std::ofstream out(path);
    out << "[\n{\"name\":\"whole\",\"ph\":\"X\",\"ts\":1,\"dur\":2},\n"
        << "{\"name\":\"torn\",\"ph\":\"X\",\"ts\":47";
  }
  EXPECT_TRUE(trace_recover_partial(path));
  const std::string contents = slurp(recovered);
  EXPECT_TRUE(json_well_formed(contents)) << contents;
  EXPECT_NE(contents.find("whole"), std::string::npos);
  EXPECT_EQ(contents.find("torn"), std::string::npos);
  std::remove(recovered.c_str());
}

TEST(TraceRecoverTest, CompleteFileIsLeftAlone) {
  const std::string path = testing::TempDir() + "/sg_trace_complete.json";
  {
    std::ofstream out(path);
    out << "[\n{\"name\":\"done\",\"ph\":\"X\",\"ts\":1,\"dur\":2}\n]\n";
  }
  EXPECT_FALSE(trace_recover_partial(path));
  EXPECT_TRUE(static_cast<bool>(std::ifstream(path)));
  EXPECT_FALSE(static_cast<bool>(std::ifstream((path + ".recovered").c_str())));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spectra::obs
