// Crash-safe checkpoint/resume: snapshot format round-trips (params,
// Adam moments, Rng streams, histories), atomic-write + retention
// behaviour, corruption fallback, serialize.cpp error paths, and the
// headline determinism guarantee — interrupt-at-N + resume reproduces an
// uninterrupted run bitwise.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "core/config.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "nn/optim.h"
#include "nn/serialize.h"
#include "train/checkpoint.h"
#include "util/error.h"
#include "util/rng.h"

namespace spectra {
namespace {

namespace fs = std::filesystem;

// Fresh per-test scratch directory.
std::string scratch_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/sg_ckpt_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void truncate_file(const std::string& path, std::uintmax_t keep_bytes) {
  fs::resize_file(path, keep_bytes);
}

std::vector<nn::Var> make_params() {
  std::vector<nn::Var> params;
  Rng rng(7);
  for (const nn::Shape& shape : {nn::Shape{3, 4}, nn::Shape{5}, nn::Shape{2, 2, 2}}) {
    nn::Tensor t(shape);
    for (long i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.normal());
    params.push_back(nn::Var::leaf(std::move(t)));
  }
  return params;
}

// --- serialize.cpp error paths ----------------------------------------

TEST(SerializeErrorTest, TruncatedFileThrows) {
  const std::string dir = scratch_dir("ser_trunc");
  const std::string path = dir + "/params.bin";
  std::vector<nn::Var> params = make_params();
  nn::save_parameters(path, params);

  const std::uintmax_t full = fs::file_size(path);
  for (std::uintmax_t keep : {full - 1, full / 2, std::uintmax_t{6}, std::uintmax_t{0}}) {
    truncate_file(path, keep);
    std::vector<nn::Var> dst = make_params();
    EXPECT_THROW(nn::load_parameters(path, dst), Error) << "kept " << keep << " bytes";
    nn::save_parameters(path, params);  // restore for the next round
  }
}

TEST(SerializeErrorTest, ShapeAndCountMismatchThrow) {
  const std::string dir = scratch_dir("ser_shape");
  const std::string path = dir + "/params.bin";
  std::vector<nn::Var> params = make_params();
  nn::save_parameters(path, params);

  std::vector<nn::Var> wrong_shape = make_params();
  wrong_shape[1] = nn::Var::leaf(nn::Tensor({6}));  // file has {5}
  EXPECT_THROW(nn::load_parameters(path, wrong_shape), Error);

  std::vector<nn::Var> wrong_rank = make_params();
  wrong_rank[0] = nn::Var::leaf(nn::Tensor({3, 4, 1}));  // file has rank 2
  EXPECT_THROW(nn::load_parameters(path, wrong_rank), Error);

  std::vector<nn::Var> too_few(params.begin(), params.begin() + 2);
  EXPECT_THROW(nn::load_parameters(path, too_few), Error);
}

TEST(SerializeErrorTest, ZeroParameterListRoundTrips) {
  const std::string dir = scratch_dir("ser_zero");
  const std::string path = dir + "/empty.bin";
  std::vector<nn::Var> none;
  nn::save_parameters(path, none);
  EXPECT_NO_THROW(nn::load_parameters(path, none));

  std::vector<nn::Var> some = make_params();
  EXPECT_THROW(nn::load_parameters(path, some), Error);
}

TEST(SerializeErrorTest, NonParameterFileRejected) {
  const std::string dir = scratch_dir("ser_magic");
  const std::string path = dir + "/junk.bin";
  std::ofstream(path, std::ios::binary) << "definitely not a parameter file";
  std::vector<nn::Var> params = make_params();
  EXPECT_THROW(nn::load_parameters(path, params), Error);
}

// --- Rng state round-trip ---------------------------------------------

TEST(RngStateTest, RestoreReplaysStreamExactly) {
  Rng rng(123);
  for (int i = 0; i < 17; ++i) rng.next_u64();
  (void)rng.normal();  // leaves a cached Box-Muller sample pending

  const RngState saved = rng.state();
  EXPECT_TRUE(saved.has_cached_normal);

  std::vector<double> expected;
  for (int i = 0; i < 9; ++i) expected.push_back(rng.normal());
  for (int i = 0; i < 5; ++i) expected.push_back(rng.uniform());

  Rng replay(999);  // unrelated seed; state restore must override it
  replay.set_state(saved);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const double v = i < 9 ? replay.normal() : replay.uniform();
    EXPECT_EQ(v, expected[i]) << "draw " << i;
  }
}

// --- checkpoint snapshot round-trip -----------------------------------

train::TrainingSnapshot make_snapshot(std::uint64_t iteration) {
  // Drive an Adam a few steps so moments and step count are non-trivial.
  std::vector<nn::Var> params = make_params();
  nn::Adam opt(params, 1e-2f);
  Rng grad_rng(31);
  for (int s = 0; s < 3; ++s) {
    opt.zero_grad();
    for (nn::Var& p : params) {
      nn::Tensor& g = p.grad_storage();
      for (long i = 0; i < g.numel(); ++i) g[i] = static_cast<float>(grad_rng.normal());
    }
    opt.step();
  }

  train::TrainingSnapshot snap;
  snap.iteration = iteration;
  for (const nn::Var& p : params) snap.gen_params.push_back(p.value());
  snap.disc_params.push_back(nn::Tensor::full({2, 3}, 0.25f));
  snap.opt_g = {static_cast<std::uint64_t>(opt.step_count()), opt.first_moments(),
                opt.second_moments()};
  snap.opt_d = {0, {}, {}};
  Rng rng(77);
  for (int i = 0; i < 11; ++i) rng.normal();
  snap.rng = rng.state();
  snap.stats.d_loss = {0.5, 0.25};
  snap.stats.g_adv_loss = {1.5, 1.25};
  snap.stats.l1_loss = {2.5, 2.25};
  snap.stats.grad_norm_d = {3.0, 3.5};
  snap.stats.grad_norm_g = {4.0, 4.5};
  snap.stats.iter_seconds = {0.01, 0.02};
  return snap;
}

void expect_tensors_eq(const std::vector<nn::Tensor>& a, const std::vector<nn::Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_TRUE(a[k].same_shape(b[k]));
    for (long i = 0; i < a[k].numel(); ++i) EXPECT_EQ(a[k][i], b[k][i]);
  }
}

TEST(CheckpointTest, AdamMomentsAndRngStateRoundTripBitwise) {
  const std::string dir = scratch_dir("roundtrip");
  const train::TrainingSnapshot snap = make_snapshot(42);
  const std::string path = train::write_checkpoint(dir, snap, 3);
  EXPECT_EQ(fs::path(path).filename().string(), train::checkpoint_filename(42));

  const train::TrainingSnapshot back = train::read_checkpoint(path);
  EXPECT_EQ(back.iteration, 42u);
  expect_tensors_eq(back.gen_params, snap.gen_params);
  expect_tensors_eq(back.disc_params, snap.disc_params);
  EXPECT_EQ(back.opt_g.step_count, snap.opt_g.step_count);
  expect_tensors_eq(back.opt_g.m, snap.opt_g.m);
  expect_tensors_eq(back.opt_g.v, snap.opt_g.v);
  EXPECT_EQ(back.opt_d.step_count, 0u);
  EXPECT_TRUE(back.opt_d.m.empty());
  EXPECT_EQ(back.rng.state, snap.rng.state);
  EXPECT_EQ(back.rng.has_cached_normal, snap.rng.has_cached_normal);
  EXPECT_EQ(back.rng.cached_normal, snap.rng.cached_normal);
  EXPECT_EQ(back.stats.d_loss, snap.stats.d_loss);
  EXPECT_EQ(back.stats.g_adv_loss, snap.stats.g_adv_loss);
  EXPECT_EQ(back.stats.l1_loss, snap.stats.l1_loss);
  EXPECT_EQ(back.stats.grad_norm_d, snap.stats.grad_norm_d);
  EXPECT_EQ(back.stats.grad_norm_g, snap.stats.grad_norm_g);
  EXPECT_EQ(back.stats.iter_seconds, snap.stats.iter_seconds);

  // The Adam moments survive an optimizer restore round-trip too.
  std::vector<nn::Var> params = make_params();
  nn::Adam opt(params, 1e-2f);
  opt.restore_state(static_cast<long>(back.opt_g.step_count), back.opt_g.m, back.opt_g.v);
  EXPECT_EQ(opt.step_count(), 3);
  expect_tensors_eq(opt.first_moments(), snap.opt_g.m);
  expect_tensors_eq(opt.second_moments(), snap.opt_g.v);

  // And shape/count mismatches are rejected.
  std::vector<nn::Tensor> bad_m = back.opt_g.m;
  bad_m.pop_back();
  EXPECT_THROW(opt.restore_state(3, bad_m, back.opt_g.v), Error);
  bad_m = back.opt_g.m;
  bad_m[0] = nn::Tensor({9, 9});
  EXPECT_THROW(opt.restore_state(3, bad_m, back.opt_g.v), Error);
}

TEST(CheckpointTest, ListOrderRetentionAndAtomicity) {
  const std::string dir = scratch_dir("retention");
  for (std::uint64_t it : {5u, 10u, 15u}) {
    train::write_checkpoint(dir, make_snapshot(it), 2);
  }
  const std::vector<std::string> kept = train::list_checkpoints(dir);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(fs::path(kept[0]).filename().string(), train::checkpoint_filename(10));
  EXPECT_EQ(fs::path(kept[1]).filename().string(), train::checkpoint_filename(15));

  // Atomic write leaves no tmp droppings, and stray files are ignored.
  std::ofstream(dir + "/notes.txt") << "not a checkpoint";
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    EXPECT_EQ(e.path().extension(), e.path().filename() == "notes.txt" ? ".txt" : ".sgc");
  }
  EXPECT_EQ(train::list_checkpoints(dir).size(), 2u);

  EXPECT_EQ(train::list_checkpoints(dir + "/does_not_exist").size(), 0u);
}

TEST(CheckpointTest, CorruptOrTruncatedSnapshotFallsBackToLastGood) {
  const std::string dir = scratch_dir("fallback");
  EXPECT_FALSE(train::load_latest(dir).has_value());

  train::write_checkpoint(dir, make_snapshot(8), 5);
  const std::string newest = train::write_checkpoint(dir, make_snapshot(16), 5);

  // Torn write: drop the tail (footer + part of the stats section).
  truncate_file(newest, fs::file_size(newest) - 37);
  EXPECT_THROW(train::read_checkpoint(newest), Error);
  std::optional<train::TrainingSnapshot> snap = train::load_latest(dir);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->iteration, 8u);

  // Flipped payload byte: checksum catches it even with intact framing.
  const std::string mid = train::write_checkpoint(dir, make_snapshot(24), 5);
  {
    std::fstream f(mid, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(mid) / 2));
    f.put('\x5a');
  }
  snap = train::load_latest(dir);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->iteration, 8u);

  // Everything corrupt => nullopt.
  for (const std::string& path : train::list_checkpoints(dir)) truncate_file(path, 3);
  EXPECT_FALSE(train::load_latest(dir).has_value());
}

// --- the determinism guarantee ----------------------------------------

core::SpectraGanConfig tiny_config() {
  core::SpectraGanConfig config;
  config.train_steps = 24;
  config.spectrum_bins = 8;
  config.hidden_channels = 6;
  config.encoder_mid_channels = 8;
  config.spectrum_mid_channels = 8;
  config.lstm_hidden = 8;
  config.cond_dim = 8;
  config.disc_mlp_hidden = 8;
  config.noise_channels = 2;
  config.iterations = 10;
  config.batch = 2;
  return config;
}

void expect_params_bitwise_eq(const core::SpectraGan& a, const core::SpectraGan& b) {
  const auto compare = [](const std::vector<nn::Var>& pa, const std::vector<nn::Var>& pb) {
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t k = 0; k < pa.size(); ++k) {
      ASSERT_TRUE(pa[k].value().same_shape(pb[k].value()));
      for (long i = 0; i < pa[k].value().numel(); ++i) {
        ASSERT_EQ(pa[k].value()[i], pb[k].value()[i]) << "param " << k << " elem " << i;
      }
    }
  };
  compare(a.generator_parameters(), b.generator_parameters());
  compare(a.discriminator_parameters(), b.discriminator_parameters());
}

void expect_histories_bitwise_eq(const core::TrainStats& a, const core::TrainStats& b) {
  EXPECT_EQ(a.d_loss_history, b.d_loss_history);
  EXPECT_EQ(a.g_adv_loss_history, b.g_adv_loss_history);
  EXPECT_EQ(a.l1_loss_history, b.l1_loss_history);
  EXPECT_EQ(a.grad_norm_d_history, b.grad_norm_d_history);
  EXPECT_EQ(a.grad_norm_g_history, b.grad_norm_g_history);
}

TEST(TrainResumeTest, InterruptedRunResumesBitwiseIdentical) {
  data::DatasetConfig dc;
  dc.weeks = 1;
  const data::CountryDataset dataset = data::make_country2(dc);
  const core::SpectraGanConfig config = tiny_config();
  const data::PatchSampler sampler(dataset, {0, 1}, config.patch, 0, config.train_steps);

  // Reference: uninterrupted, checkpointing off.
  core::SpectraGan ref(config, 12);
  Rng ref_rng(13);
  const core::TrainStats ref_stats = ref.train(sampler, ref_rng, {});
  EXPECT_EQ(ref_stats.resumed_iteration, 0);
  ASSERT_EQ(ref_stats.iterations, config.iterations);

  // "Crash" after 6 of 10 iterations (snapshots at 3 and 6): simply stop.
  const std::string dir = scratch_dir("resume");
  train::CheckpointOptions ckpt;
  ckpt.dir = dir;
  ckpt.every = 3;
  ckpt.keep_last = 2;
  {
    core::SpectraGanConfig partial = config;
    partial.iterations = 6;
    core::SpectraGan interrupted(partial, 12);
    Rng rng(13);
    interrupted.train(sampler, rng, ckpt);
  }

  // Resume in a fresh process-equivalent: different init seed and rng
  // seed, so every bit of the continuation must come from the snapshot.
  core::SpectraGan resumed(config, 999);
  Rng resumed_rng(4242);
  const core::TrainStats res_stats = resumed.train(sampler, resumed_rng, ckpt);
  EXPECT_EQ(res_stats.resumed_iteration, 6);
  EXPECT_EQ(res_stats.iterations, config.iterations);

  expect_histories_bitwise_eq(ref_stats, res_stats);
  expect_params_bitwise_eq(ref, resumed);
  EXPECT_EQ(ref_rng.state().state, resumed_rng.state().state);
}

TEST(TrainResumeTest, ResumeSkipsCorruptNewestSnapshot) {
  data::DatasetConfig dc;
  dc.weeks = 1;
  const data::CountryDataset dataset = data::make_country2(dc);
  core::SpectraGanConfig config = tiny_config();
  config.iterations = 8;
  const data::PatchSampler sampler(dataset, {0, 1}, config.patch, 0, config.train_steps);

  core::SpectraGan ref(config, 12);
  Rng ref_rng(13);
  const core::TrainStats ref_stats = ref.train(sampler, ref_rng, {});

  const std::string dir = scratch_dir("resume_corrupt");
  train::CheckpointOptions ckpt;
  ckpt.dir = dir;
  ckpt.every = 3;
  ckpt.keep_last = 3;
  {
    core::SpectraGanConfig partial = config;
    partial.iterations = 7;  // snapshots at 3 and 6
    core::SpectraGan interrupted(partial, 12);
    Rng rng(13);
    interrupted.train(sampler, rng, ckpt);
  }
  const std::vector<std::string> snaps = train::list_checkpoints(dir);
  ASSERT_EQ(snaps.size(), 2u);
  truncate_file(snaps.back(), fs::file_size(snaps.back()) / 2);

  core::SpectraGan resumed(config, 999);
  Rng resumed_rng(4242);
  const core::TrainStats res_stats = resumed.train(sampler, resumed_rng, ckpt);
  EXPECT_EQ(res_stats.resumed_iteration, 3);  // fell back past the torn iteration-6 file
  expect_histories_bitwise_eq(ref_stats, res_stats);
  expect_params_bitwise_eq(ref, resumed);
}

}  // namespace
}  // namespace spectra
