// End-to-end integration: a miniature leave-one-city-out study with a
// reduced SpectraGAN, exercising dataset -> sampler -> adversarial
// training -> whole-city generation -> every fidelity metric -> all three
// application use cases, exactly as the bench harness composes them.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/population.h"
#include "apps/power.h"
#include "apps/vran.h"
#include "baselines/model_api.h"
#include "eval/protocol.h"
#include "eval/report.h"
#include "util/error.h"

namespace spectra {
namespace {

struct MiniStudy {
  data::CountryDataset dataset;
  eval::EvalConfig config;
  core::SpectraGanConfig base;
};

MiniStudy make_study() {
  MiniStudy study;
  data::DatasetConfig dc;
  dc.weeks = 6;
  study.dataset = data::make_country2(dc);

  study.config.train_steps = 72;
  study.config.generate_steps = 144;
  study.config.eval_offset = 72;
  study.config.autocorr_max_lag = 48;
  study.config.seed = 3;

  study.base.train_steps = 72;
  study.base.iterations = 60;
  study.base.batch = 4;
  study.base.spectrum_bins = 16;
  study.base.hidden_channels = 8;
  study.base.encoder_mid_channels = 12;
  study.base.spectrum_mid_channels = 16;
  study.base.lstm_hidden = 12;
  study.base.cond_dim = 12;
  study.base.disc_mlp_hidden = 16;
  return study;
}

TEST(IntegrationTest, LeaveOneOutFoldEndToEnd) {
  const MiniStudy study = make_study();
  const std::vector<data::Fold> folds = data::leave_one_city_out(study.dataset);
  const data::Fold& fold = folds[0];
  const data::City& target = study.dataset.cities[fold.test_index];

  const geo::CityTensor synthetic =
      eval::generate_for_fold("SpectraGAN", study.base, study.dataset, fold, study.config);
  ASSERT_EQ(synthetic.steps(), study.config.generate_steps);
  ASSERT_EQ(synthetic.height(), target.height());

  const eval::MetricRow row = eval::compute_metrics("SpectraGAN", target, synthetic, study.config);
  EXPECT_TRUE(std::isfinite(row.m_tv));
  EXPECT_TRUE(std::isfinite(row.ssim));
  EXPECT_TRUE(std::isfinite(row.ac_l1));
  EXPECT_TRUE(std::isfinite(row.tstr));
  EXPECT_TRUE(std::isfinite(row.fvd));
  EXPECT_GE(row.m_tv, 0.0);
  EXPECT_LE(row.ssim, 1.0);

  // Even a 30-iteration model beats white noise on temporal structure.
  geo::CityTensor noise(study.config.generate_steps, target.height(), target.width());
  Rng rng(4);
  for (double& v : noise.values()) v = rng.uniform(0.0, 1.0);
  const eval::MetricRow noise_row = eval::compute_metrics("noise", target, noise, study.config);
  EXPECT_LT(row.ac_l1, noise_row.ac_l1);
}

TEST(IntegrationTest, SyntheticDataDrivesAllUseCases) {
  const MiniStudy study = make_study();
  const data::Fold fold{1, {0, 2, 3}};
  const data::City& target = study.dataset.cities[1];
  const geo::CityTensor synthetic =
      eval::generate_for_fold("SpectraGAN", study.base, study.dataset, fold, study.config);
  const geo::CityTensor real_eval =
      target.traffic.slice_time(study.config.eval_offset, study.config.generate_steps);

  // §5.1 BS sleeping: policy from synthetic data vs policy from real data.
  const apps::SleepingResult from_real = apps::simulate_bs_sleeping(real_eval, real_eval);
  const apps::SleepingResult from_synth = apps::simulate_bs_sleeping(synthetic, real_eval);
  EXPECT_GT(from_real.savings_fraction, 0.0);
  EXPECT_GT(from_synth.savings_fraction, 0.0);

  // §5.2 vRAN: associations planned on synthetic, scored on real.
  const long day = 24;
  const apps::VranComparison vran_real = apps::evaluate_vran(real_eval, real_eval, 4, 0, day, day);
  const apps::VranComparison vran_synth = apps::evaluate_vran(synthetic, real_eval, 4, 0, day, day);
  EXPECT_GT(vran_real.mean_jain, 0.6);
  EXPECT_GT(vran_synth.mean_jain, 0.5);

  // §5.3 population tracking: synthetic-fed maps close to real-fed maps.
  const apps::TrackingComparison tracking = apps::compare_population_tracking(
      real_eval, synthetic, day, 1, apps::default_population_params());
  EXPECT_TRUE(std::isfinite(tracking.mean_psnr));
  EXPECT_GT(tracking.mean_psnr, 5.0);
}

TEST(IntegrationTest, ComparedMethodsProduceFullTable) {
  // A miniature Table 2: three methods, one fold, all metrics finite.
  const MiniStudy study = make_study();
  const data::Fold fold{2, {0, 1, 3}};
  const data::City& target = study.dataset.cities[2];

  std::vector<eval::MetricRow> rows;
  for (const char* method : {"FDAS", "Pix2Pix", "SpectraGAN"}) {
    core::SpectraGanConfig base = study.base;
    base.iterations = 10;
    const geo::CityTensor synthetic =
        eval::generate_for_fold(method, base, study.dataset, fold, study.config);
    rows.push_back(eval::compute_metrics(method, target, synthetic, study.config));
  }
  rows.push_back(eval::data_reference_row(target, study.config));

  const CsvWriter table = eval::metrics_table(rows, /*include_fvd=*/true);
  EXPECT_EQ(table.rows().size(), 4u);
  const std::string rendered = render_table(table);
  EXPECT_NE(rendered.find("SpectraGAN"), std::string::npos);
  EXPECT_NE(rendered.find("FDAS"), std::string::npos);
}

TEST(IntegrationTest, LongHorizonGenerationViaExpansion) {
  // Train on 72 steps, generate 4x longer via the k-multiple expansion;
  // the output must keep the training-window periodicity.
  const MiniStudy study = make_study();
  Rng rng(8);
  std::unique_ptr<baselines::TrafficGenerator> model =
      baselines::make_spectragan(study.base);
  model->fit(study.dataset, {0, 1}, study.base.train_steps, rng);
  const geo::CityTensor out = model->generate(study.dataset.cities[2], 4 * 72, rng);
  EXPECT_EQ(out.steps(), 4 * 72);
  for (double v : out.values()) EXPECT_GE(v, 0.0);
}

}  // namespace
}  // namespace spectra
