#include <gtest/gtest.h>

#include <cmath>

#include "metrics/autocorr_l1.h"
#include "metrics/correlation.h"
#include "metrics/fairness.h"
#include "metrics/fvd.h"
#include "metrics/marginal.h"
#include "metrics/psnr.h"
#include "metrics/ssim.h"
#include "metrics/tstr.h"
#include "util/error.h"
#include "util/rng.h"

namespace spectra::metrics {
namespace {

geo::CityTensor random_tensor(long t, long h, long w, std::uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  geo::CityTensor tensor(t, h, w);
  for (double& v : tensor.values()) v = rng.uniform(0.0, scale);
  return tensor;
}

// A deterministic diurnal tensor with per-pixel amplitudes.
geo::CityTensor diurnal_tensor(long t, long h, long w, double phase = 0.0) {
  geo::CityTensor tensor(t, h, w);
  for (long step = 0; step < t; ++step) {
    for (long i = 0; i < h; ++i) {
      for (long j = 0; j < w; ++j) {
        const double amp = 0.2 + 0.8 * static_cast<double>(i * w + j) / static_cast<double>(h * w);
        tensor.at(step, i, j) =
            amp * (1.0 + 0.8 * std::cos(2.0 * M_PI * (static_cast<double>(step) - phase) / 24.0));
      }
    }
  }
  return tensor;
}

TEST(MarginalTest, HistogramNormalized) {
  const std::vector<double> h = histogram({0.1, 0.2, 0.9}, 0.0, 1.0, 10);
  double sum = 0.0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(h[1], 1.0 / 3.0, 1e-12);
}

TEST(MarginalTest, OutOfRangeClamped) {
  const std::vector<double> h = histogram({-1.0, 2.0}, 0.0, 1.0, 4);
  EXPECT_NEAR(h[0], 0.5, 1e-12);
  EXPECT_NEAR(h[3], 0.5, 1e-12);
}

TEST(MarginalTest, TotalVariationProperties) {
  EXPECT_NEAR(total_variation({0.5, 0.5}, {0.5, 0.5}), 0.0, 1e-12);
  EXPECT_NEAR(total_variation({1.0, 0.0}, {0.0, 1.0}), 1.0, 1e-12);
  EXPECT_THROW(total_variation({1.0}, {0.5, 0.5}), spectra::Error);
}

TEST(MarginalTest, IdenticalTensorsScoreZero) {
  const geo::CityTensor a = random_tensor(50, 6, 6, 1);
  EXPECT_NEAR(marginal_tv(a, a), 0.0, 1e-12);
}

TEST(MarginalTest, ShiftedDistributionScoresHigh) {
  const geo::CityTensor a = random_tensor(50, 6, 6, 1, 0.3);
  geo::CityTensor b = a;
  for (double& v : b.values()) v += 0.6;
  EXPECT_GT(marginal_tv(a, b), 0.8);
}

TEST(SsimTest, IdenticalMapsScoreOne) {
  geo::GridMap m(4, 4, {0.1, 0.5, 0.9, 0.3, 0.2, 0.8, 0.4, 0.7, 0.6, 0.15, 0.25, 0.35, 0.45,
                        0.55, 0.65, 0.75});
  EXPECT_NEAR(ssim(m, m), 1.0, 1e-9);
}

TEST(SsimTest, UncorrelatedMapsScoreLow) {
  Rng rng(2);
  geo::GridMap a(8, 8);
  geo::GridMap b(8, 8);
  for (long p = 0; p < 64; ++p) {
    a[p] = rng.uniform(0, 1);
    b[p] = rng.uniform(0, 1);
  }
  EXPECT_LT(ssim(a, b), 0.7);
  EXPECT_THROW(ssim(a, geo::GridMap(4, 4)), spectra::Error);
}

TEST(SsimTest, SensitiveToStructureNotJustMean) {
  geo::GridMap a(2, 2, {0.0, 1.0, 0.0, 1.0});
  geo::GridMap inverted(2, 2, {1.0, 0.0, 1.0, 0.0});
  EXPECT_LT(ssim(a, inverted), 0.2);
}

TEST(AutocorrL1Test, IdenticalTensorsScoreZero) {
  const geo::CityTensor a = diurnal_tensor(168, 4, 4);
  EXPECT_NEAR(autocorr_l1(a, a, 48), 0.0, 1e-9);
}

TEST(AutocorrL1Test, PhaseShiftPenalized) {
  const geo::CityTensor a = diurnal_tensor(168, 4, 4, 0.0);
  const geo::CityTensor shifted = diurnal_tensor(168, 4, 4, 12.0);
  // Autocorrelation is phase-invariant; shifting alone keeps AC equal...
  EXPECT_NEAR(autocorr_l1(a, shifted, 48), 0.0, 1e-6);
  // ...but white noise has a totally different correlation structure.
  const geo::CityTensor noise = random_tensor(168, 4, 4, 3);
  EXPECT_GT(autocorr_l1(a, noise, 48), 5.0);
}

TEST(TstrTest, TransfersBetweenSameProcess) {
  const geo::CityTensor train = diurnal_tensor(336, 5, 5);
  const geo::CityTensor test = diurnal_tensor(336, 5, 5);
  EXPECT_GT(tstr_r2(train, test), 0.9);
}

TEST(TstrTest, NoiseTrainedModelFailsOnStructure) {
  // White-noise synthetic data -> slope ~ 0 -> near-constant predictor.
  const geo::CityTensor noise = random_tensor(336, 5, 5, 4);
  const geo::CityTensor structured = diurnal_tensor(336, 5, 5);
  EXPECT_LT(tstr_r2(noise, structured), 0.5);
}

TEST(TstrTest, RecoversArCoefficient) {
  // Synthetic AR(1): slope should be recovered almost exactly.
  geo::CityTensor ar(400, 2, 2);
  Rng rng(11);
  double state[4] = {0, 0, 0, 0};
  for (long t = 0; t < 400; ++t) {
    for (long p = 0; p < 4; ++p) {
      state[p] = 0.8 * state[p] + 0.1 + 0.05 * rng.normal();
      ar.at(t, p / 2, p % 2) = state[p];
    }
  }
  const TstrModel model = fit_tstr(ar);
  EXPECT_NEAR(model.slope, 0.8, 0.05);
  EXPECT_GT(evaluate_tstr(model, ar), 0.5);
}

TEST(TstrTest, FitRejectsDegenerateInput) {
  EXPECT_THROW(fit_tstr(geo::CityTensor(1, 2, 2)), spectra::Error);
}

TEST(TstrTest, ConstantSyntheticFallsBackToMean) {
  geo::CityTensor constant(50, 3, 3);
  for (double& v : constant.values()) v = 0.4;
  const TstrModel model = fit_tstr(constant);
  EXPECT_DOUBLE_EQ(model.slope, 0.0);
  EXPECT_NEAR(model.intercept, 0.4, 1e-9);
}

TEST(FvdTest, EmbeddingCountAndSize) {
  const geo::CityTensor a = diurnal_tensor(168, 6, 6);
  FvdConfig config;
  config.window = 48;
  config.stride = 24;
  const auto embeddings = fvd_embeddings(a, config);
  EXPECT_EQ(embeddings.size(), static_cast<std::size_t>((168 - 48) / 24 + 1));
  // d = 5 pooled channels + time augment = 6; depth 2 => 6 + 36.
  EXPECT_EQ(embeddings[0].size(), 42u);
}

TEST(FvdTest, IdenticalProcessesScoreNearZero) {
  const geo::CityTensor a = diurnal_tensor(336, 6, 6);
  const double self_fvd = fvd(a, a);
  EXPECT_NEAR(self_fvd, 0.0, 1e-6);
}

TEST(FvdTest, DifferentProcessesScoreHigher) {
  const geo::CityTensor a = diurnal_tensor(336, 6, 6);
  const geo::CityTensor noise = random_tensor(336, 6, 6, 5);
  EXPECT_GT(fvd(a, noise), 10.0 * std::max(fvd(a, a), 1e-12));
}

TEST(FrechetTest, MeanSeparationDrivesDistance) {
  Rng rng(6);
  std::vector<std::vector<double>> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back({rng.normal(), rng.normal()});
    b.push_back({rng.normal() + 3.0, rng.normal()});
  }
  // FD ~ ||mu_a - mu_b||^2 = 9 for equal covariances.
  EXPECT_NEAR(frechet_distance(a, b), 9.0, 1.5);
}

TEST(PsnrTest, KnownValue) {
  geo::GridMap ref(1, 2, {1.0, 1.0});
  geo::GridMap est(1, 2, {0.9, 1.1});
  // MSE = 0.01, peak = 1 => PSNR = 20 dB.
  EXPECT_NEAR(psnr(ref, est), 20.0, 1e-9);
}

TEST(PsnrTest, IdenticalMapsSaturate) {
  geo::GridMap m(2, 2, {0.4, 0.3, 0.2, 0.1});
  EXPECT_DOUBLE_EQ(psnr(m, m), 300.0);
}

TEST(JainTest, UniformIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({2.0, 2.0, 2.0}), 1.0);
}

TEST(JainTest, SingleUserWorstCase) {
  EXPECT_NEAR(jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainTest, AllZeroIsVacuouslyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(PearsonTest, PerfectCorrelationSigns) {
  EXPECT_NEAR(pearson({1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1.0, 2.0, 3.0}, {3.0, 2.0, 1.0}), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSideIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
}

class BinCountTest : public testing::TestWithParam<long> {};

TEST_P(BinCountTest, MarginalTvStableAcrossBinCounts) {
  // Same-distribution tensors score low; the sampling-noise floor grows
  // roughly with sqrt(bins / samples).
  const geo::CityTensor a = random_tensor(40, 5, 5, 7);
  const geo::CityTensor b = random_tensor(40, 5, 5, 8);
  const double noise_floor = 0.5 * std::sqrt(static_cast<double>(GetParam()) / (40.0 * 25.0));
  EXPECT_LT(marginal_tv(a, b, GetParam()), 0.05 + noise_floor);
}

INSTANTIATE_TEST_SUITE_P(Bins, BinCountTest, testing::Values(16L, 32L, 64L, 128L));

}  // namespace
}  // namespace spectra::metrics
