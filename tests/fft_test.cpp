#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/rng.h"

namespace spectra::dsp {
namespace {

std::vector<Complex> naive_dft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * M_PI * static_cast<double>(k * t) / static_cast<double>(n);
      out[k] += x[t] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

std::vector<Complex> random_signal(std::size_t n, Rng& rng) {
  std::vector<Complex> x(n);
  for (auto& c : x) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return x;
}

TEST(FftTest, PowerOfTwoDetection) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(168));
  EXPECT_FALSE(is_power_of_two(-4));
}

class FftLengthTest : public testing::TestWithParam<long> {};

TEST_P(FftLengthTest, MatchesNaiveDft) {
  const long n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  const std::vector<Complex> x = random_signal(static_cast<std::size_t>(n), rng);
  const std::vector<Complex> fast = fft(x);
  const std::vector<Complex> slow = naive_dft(x);
  for (long k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[static_cast<std::size_t>(k)].real(), slow[static_cast<std::size_t>(k)].real(),
                1e-8 * static_cast<double>(n));
    EXPECT_NEAR(fast[static_cast<std::size_t>(k)].imag(), slow[static_cast<std::size_t>(k)].imag(),
                1e-8 * static_cast<double>(n));
  }
}

TEST_P(FftLengthTest, InverseRoundTrip) {
  const long n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) + 99);
  const std::vector<Complex> x = random_signal(static_cast<std::size_t>(n), rng);
  const std::vector<Complex> back = ifft(fft(x));
  for (long k = 0; k < n; ++k) {
    EXPECT_NEAR(back[static_cast<std::size_t>(k)].real(), x[static_cast<std::size_t>(k)].real(),
                1e-9 * static_cast<double>(n));
    EXPECT_NEAR(back[static_cast<std::size_t>(k)].imag(), x[static_cast<std::size_t>(k)].imag(),
                1e-9 * static_cast<double>(n));
  }
}

TEST_P(FftLengthTest, ParsevalHolds) {
  const long n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) + 7);
  const std::vector<Complex> x = random_signal(static_cast<std::size_t>(n), rng);
  const std::vector<Complex> y = fft(x);
  double time_energy = 0.0, freq_energy = 0.0;
  for (const Complex& c : x) time_energy += std::norm(c);
  for (const Complex& c : y) freq_energy += std::norm(c);
  const double fn = static_cast<double>(n);
  EXPECT_NEAR(freq_energy, time_energy * fn, 1e-7 * fn * fn);
}

// 168 is the hourly-week length at the heart of SpectraGAN; 504 is the
// 3-week generation horizon; the rest cover radix-2, odd, prime and
// composite lengths.
INSTANTIATE_TEST_SUITE_P(Lengths, FftLengthTest,
                         testing::Values(1L, 2L, 8L, 13L, 21L, 64L, 100L, 168L, 251L, 504L));

TEST(RfftTest, SizeIsHalfPlusOne) {
  std::vector<double> x(168, 0.0);
  EXPECT_EQ(rfft(x).size(), 85u);
  std::vector<double> odd(9, 0.0);
  EXPECT_EQ(rfft(odd).size(), 5u);
}

TEST(RfftTest, DcBinIsSum) {
  std::vector<double> x = {1, 2, 3, 4};
  const std::vector<Complex> y = rfft(x);
  EXPECT_NEAR(y[0].real(), 10.0, 1e-12);
  EXPECT_NEAR(y[0].imag(), 0.0, 1e-12);
}

TEST(RfftTest, PureCosineConcentrates) {
  const long n = 48;
  std::vector<double> x(static_cast<std::size_t>(n));
  for (long t = 0; t < n; ++t) {
    x[static_cast<std::size_t>(t)] =
        std::cos(2.0 * M_PI * 3.0 * static_cast<double>(t) / static_cast<double>(n));
  }
  const std::vector<Complex> y = rfft(x);
  for (std::size_t k = 0; k < y.size(); ++k) {
    if (k == 3) {
      EXPECT_NEAR(std::abs(y[k]), n / 2.0, 1e-9);
    } else {
      EXPECT_NEAR(std::abs(y[k]), 0.0, 1e-9);
    }
  }
}

TEST(IrfftTest, RoundTripEvenAndOdd) {
  for (long n : {8L, 9L, 168L, 21L}) {
    Rng rng(static_cast<std::uint64_t>(n));
    std::vector<double> x(static_cast<std::size_t>(n));
    for (double& v : x) v = rng.uniform(-1, 1);
    const std::vector<double> back = irfft(rfft(x), n);
    for (long i = 0; i < n; ++i) {
      EXPECT_NEAR(back[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)], 1e-9);
    }
  }
}

TEST(IrfftTest, SizeValidation) {
  std::vector<Complex> spec(5, Complex(0, 0));
  EXPECT_NO_THROW(irfft(spec, 8));
  EXPECT_NO_THROW(irfft(spec, 9));
  EXPECT_THROW(irfft(spec, 12), spectra::Error);
  EXPECT_THROW(irfft(spec, 0), spectra::Error);
}

std::vector<double> random_real_signal(long n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.uniform(-1, 1);
  return x;
}

// The power-of-two half-spectrum fast path must agree with the
// Bluestein-forced reference at every bin; non-pow2 lengths exercise the
// fallback against the same reference.
TEST(RfftFastPathTest, MatchesBluesteinReferenceAcrossLengths) {
  for (long n : {2L, 4L, 8L, 64L, 256L, 512L, 1024L,  // pow2 fast path
                 3L, 21L, 100L, 168L, 251L, 504L}) {  // fallback lengths
    const std::vector<double> x = random_real_signal(n, static_cast<std::uint64_t>(n) + 17);
    const std::vector<Complex> fast = rfft(x);
    const std::vector<Complex> ref = detail::rfft_bluestein(x);
    ASSERT_EQ(fast.size(), ref.size()) << "n=" << n;
    const double tol = 1e-9 * static_cast<double>(n);
    for (std::size_t k = 0; k < fast.size(); ++k) {
      EXPECT_NEAR(fast[k].real(), ref[k].real(), tol) << "n=" << n << " k=" << k;
      EXPECT_NEAR(fast[k].imag(), ref[k].imag(), tol) << "n=" << n << " k=" << k;
    }
  }
}

TEST(RfftFastPathTest, EdgeBinsAreExactlyReal) {
  for (long n : {4L, 256L}) {
    const std::vector<Complex> y = rfft(random_real_signal(n, 5));
    EXPECT_EQ(y.front().imag(), 0.0);
    EXPECT_EQ(y.back().imag(), 0.0);
  }
}

TEST(RfftFastPathTest, RoundTripAtPowerOfTwoLengths) {
  for (long n : {2L, 4L, 16L, 512L, 1024L}) {
    const std::vector<double> x = random_real_signal(n, static_cast<std::uint64_t>(n) + 3);
    const std::vector<double> back = irfft(rfft(x), n);
    for (long i = 0; i < n; ++i) {
      EXPECT_NEAR(back[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)],
                  1e-9 * static_cast<double>(n))
          << "n=" << n;
    }
  }
}

TEST(RfftFastPathTest, CounterCountsFastCallsOnly) {
  obs::Counter& calls = obs::Registry::instance().counter("fft.rfft_fast_calls");
  const std::uint64_t before = calls.value();
  const std::vector<double> pow2 = random_real_signal(64, 1);
  (void)irfft(rfft(pow2), 64);  // both directions take the fast path
  EXPECT_EQ(calls.value(), before + 2);
  const std::vector<double> awkward = random_real_signal(168, 2);
  (void)irfft(rfft(awkward), 168);  // fallback: counter untouched
  EXPECT_EQ(calls.value(), before + 2);
}

// The scratch-reusing Bluestein must produce bitwise-identical output to
// the historical per-call-allocating variant: same plan, same radix-2
// arithmetic, only the buffer's provenance differs.
TEST(BluesteinScratchTest, ReusedScratchBitwiseMatchesAllocating) {
  for (long n : {21L, 168L, 251L}) {
    Rng rng(static_cast<std::uint64_t>(n));
    const std::vector<Complex> x = random_signal(static_cast<std::size_t>(n), rng);
    for (bool inverse : {false, true}) {
      std::vector<Complex> reused = x;
      std::vector<Complex> alloc = x;
      detail::bluestein_inplace(reused, inverse, /*reuse_scratch=*/true);
      detail::bluestein_inplace(alloc, inverse, /*reuse_scratch=*/false);
      for (std::size_t k = 0; k < x.size(); ++k) {
        EXPECT_EQ(reused[k].real(), alloc[k].real()) << "n=" << n << " k=" << k;
        EXPECT_EQ(reused[k].imag(), alloc[k].imag()) << "n=" << n << " k=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace spectra::dsp
