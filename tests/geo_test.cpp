#include <gtest/gtest.h>

#include "geo/city_tensor.h"
#include "geo/grid.h"
#include "geo/patching.h"
#include "util/error.h"
#include "util/rng.h"

namespace spectra::geo {
namespace {

TEST(GridMapTest, AccessorsAndBounds) {
  GridMap m(3, 4);
  m.at(2, 3) = 7.0;
  EXPECT_EQ(m[2 * 4 + 3], 7.0);
  EXPECT_THROW(m.at(3, 0), spectra::Error);
  EXPECT_THROW(m.at(0, 4), spectra::Error);
}

TEST(GridMapTest, Statistics) {
  GridMap m(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m.sum(), 10.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.5);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 4.0);
}

TEST(GridMapTest, NormalizePeak) {
  GridMap m(1, 3, {1.0, 2.0, 4.0});
  m.normalize_peak();
  EXPECT_DOUBLE_EQ(m.max(), 1.0);
  EXPECT_DOUBLE_EQ(m[0], 0.25);
  GridMap zeros(2, 2);
  zeros.normalize_peak();  // no-op, no division by zero
  EXPECT_DOUBLE_EQ(zeros.max(), 0.0);
}

TEST(GridMapTest, AddScaleFill) {
  GridMap a(1, 2, {1.0, 2.0});
  GridMap b(1, 2, {10.0, 20.0});
  a.add(b);
  EXPECT_DOUBLE_EQ(a[1], 22.0);
  a.scale(0.5);
  EXPECT_DOUBLE_EQ(a[0], 5.5);
  a.fill(0.0);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
  GridMap c(2, 1);
  EXPECT_THROW(a.add(c), spectra::Error);
}

TEST(CityTensorTest, FrameRoundTrip) {
  CityTensor t(3, 2, 2);
  GridMap f(2, 2, {1.0, 2.0, 3.0, 4.0});
  t.set_frame(1, f);
  const GridMap back = t.frame(1);
  for (long p = 0; p < 4; ++p) EXPECT_DOUBLE_EQ(back[p], f[p]);
  EXPECT_DOUBLE_EQ(t.frame(0).sum(), 0.0);
  EXPECT_THROW(t.frame(3), spectra::Error);
}

TEST(CityTensorTest, TimeAverage) {
  CityTensor t(2, 1, 2);
  t.at(0, 0, 0) = 2.0;
  t.at(1, 0, 0) = 4.0;
  t.at(0, 0, 1) = 0.0;
  t.at(1, 0, 1) = 6.0;
  const GridMap avg = t.time_average();
  EXPECT_DOUBLE_EQ(avg.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(avg.at(0, 1), 3.0);
}

TEST(CityTensorTest, SpaceAverageAndPixelSeries) {
  CityTensor t(2, 2, 1);
  t.at(0, 0, 0) = 1.0;
  t.at(0, 1, 0) = 3.0;
  t.at(1, 0, 0) = 5.0;
  t.at(1, 1, 0) = 7.0;
  const std::vector<double> s = t.space_average();
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 6.0);
  const std::vector<double> p = t.pixel_series(1, 0);
  EXPECT_DOUBLE_EQ(p[0], 3.0);
  EXPECT_DOUBLE_EQ(p[1], 7.0);
}

TEST(CityTensorTest, SliceTime) {
  CityTensor t(5, 1, 1);
  for (long k = 0; k < 5; ++k) t.at(k, 0, 0) = static_cast<double>(k);
  const CityTensor s = t.slice_time(1, 3);
  EXPECT_EQ(s.steps(), 3);
  EXPECT_DOUBLE_EQ(s.at(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(2, 0, 0), 3.0);
  EXPECT_THROW(t.slice_time(3, 3), spectra::Error);
}

TEST(CityTensorTest, PeakNormalizeAndClamp) {
  CityTensor t(1, 1, 3);
  t.at(0, 0, 0) = -1.0;
  t.at(0, 0, 1) = 2.0;
  t.at(0, 0, 2) = 4.0;
  t.normalize_peak();
  EXPECT_DOUBLE_EQ(t.peak(), 1.0);
  t.clamp(0.0, 1.0);
  EXPECT_DOUBLE_EQ(t.at(0, 0, 0), 0.0);
}

TEST(PatchSpecTest, Validation) {
  PatchSpec good;
  EXPECT_NO_THROW(good.validate());
  PatchSpec small_context = good;
  small_context.context_h = 2;
  EXPECT_THROW(small_context.validate(), spectra::Error);
  PatchSpec odd_halo = good;
  odd_halo.context_h = 9;
  EXPECT_THROW(odd_halo.validate(), spectra::Error);
  PatchSpec big_stride = good;
  big_stride.stride = 5;
  EXPECT_THROW(big_stride.validate(), spectra::Error);
  EXPECT_EQ(good.halo_h(), 2);
}

struct WindowCase {
  long height;
  long width;
  long stride;
};

class WindowCoverageTest : public testing::TestWithParam<WindowCase> {};

TEST_P(WindowCoverageTest, EveryPixelCovered) {
  const WindowCase c = GetParam();
  PatchSpec spec;
  spec.stride = c.stride;
  const std::vector<PatchWindow> windows = enumerate_windows(c.height, c.width, spec);
  std::vector<int> covered(static_cast<std::size_t>(c.height * c.width), 0);
  for (const PatchWindow& w : windows) {
    EXPECT_GE(w.row, 0);
    EXPECT_LE(w.row + spec.traffic_h, c.height);
    for (long i = 0; i < spec.traffic_h; ++i) {
      for (long j = 0; j < spec.traffic_w; ++j) {
        ++covered[static_cast<std::size_t>((w.row + i) * c.width + w.col + j)];
      }
    }
  }
  for (int v : covered) EXPECT_GE(v, 1);
}

INSTANTIATE_TEST_SUITE_P(Geometries, WindowCoverageTest,
                         testing::Values(WindowCase{12, 12, 2}, WindowCase{13, 17, 2},
                                         WindowCase{16, 15, 3}, WindowCase{4, 4, 2},
                                         WindowCase{21, 8, 4}, WindowCase{9, 31, 1}));

TEST(PatchExtractionTest, ContextHaloZeroPadded) {
  ContextTensor context(2, 6, 6);
  for (long c = 0; c < 2; ++c) {
    for (long i = 0; i < 6; ++i) {
      for (long j = 0; j < 6; ++j) context.at(c, i, j) = 1.0;
    }
  }
  PatchSpec spec;  // traffic 4x4, context 8x8, halo 2
  const std::vector<float> patch = extract_context_patch(context, {0, 0}, spec);
  ASSERT_EQ(patch.size(), static_cast<std::size_t>(2 * 8 * 8));
  // Top-left corner of the context patch is outside the map -> zero.
  EXPECT_FLOAT_EQ(patch[0], 0.0f);
  // Center is inside -> one.
  EXPECT_FLOAT_EQ(patch[3 * 8 + 3], 1.0f);
}

TEST(PatchExtractionTest, TrafficPatchValues) {
  CityTensor traffic(2, 6, 6);
  traffic.at(1, 2, 3) = 42.0;
  PatchSpec spec;
  const std::vector<float> patch = extract_traffic_patch(traffic, {2, 2}, spec);
  // [T=2, 4, 4]; value at t=1, local (0,1).
  EXPECT_FLOAT_EQ(patch[16 + 0 * 4 + 1], 42.0f);
  EXPECT_THROW(extract_traffic_patch(traffic, {4, 0}, spec), spectra::Error);
}

TEST(OverlapAccumulatorTest, AveragesOverlappingPatches) {
  PatchSpec spec;
  spec.stride = 2;
  OverlapAccumulator acc(1, 6, 6);
  const std::vector<PatchWindow> windows = enumerate_windows(6, 6, spec);
  // Every patch contributes the constant 2.0: the average must be 2.0
  // everywhere regardless of multiplicity (Eq. 2 sanity).
  const std::vector<float> patch(static_cast<std::size_t>(1 * 4 * 4), 2.0f);
  for (const PatchWindow& w : windows) acc.add_patch(w, spec, patch);
  const CityTensor out = acc.finalize();
  for (long i = 0; i < 6; ++i) {
    for (long j = 0; j < 6; ++j) EXPECT_NEAR(out.at(0, i, j), 2.0, 1e-9);
  }
}

TEST(OverlapAccumulatorTest, DistinctValuesAverage) {
  PatchSpec spec;
  spec.traffic_h = 2;
  spec.traffic_w = 2;
  spec.context_h = 2;
  spec.context_w = 2;
  spec.stride = 1;
  OverlapAccumulator acc(1, 2, 3);
  // Two overlapping 2x2 patches over a 2x3 map: columns 1 get both.
  std::vector<float> ones(4, 1.0f);
  std::vector<float> threes(4, 3.0f);
  acc.add_patch({0, 0}, spec, ones);
  acc.add_patch({0, 1}, spec, threes);
  const CityTensor out = acc.finalize();
  EXPECT_NEAR(out.at(0, 0, 0), 1.0, 1e-9);
  EXPECT_NEAR(out.at(0, 0, 1), 2.0, 1e-9);  // (1+3)/2
  EXPECT_NEAR(out.at(0, 0, 2), 3.0, 1e-9);
}

TEST(OverlapAccumulatorTest, MedianAggregationRobustToOutlierPatch) {
  // Paper §2.2.4 leaves beyond-average aggregation as future work; the
  // median extension must ignore a single corrupted patch.
  PatchSpec spec;
  spec.traffic_h = 2;
  spec.traffic_w = 2;
  spec.context_h = 2;
  spec.context_w = 2;
  spec.stride = 1;
  OverlapAccumulator mean_acc(1, 2, 2, OverlapAggregation::kMean);
  OverlapAccumulator median_acc(1, 2, 2, OverlapAggregation::kMedian);
  const std::vector<float> good(4, 1.0f);
  const std::vector<float> outlier(4, 100.0f);
  for (auto* acc : {&mean_acc, &median_acc}) {
    acc->add_patch({0, 0}, spec, good);
    acc->add_patch({0, 0}, spec, good);
    acc->add_patch({0, 0}, spec, outlier);
  }
  EXPECT_NEAR(mean_acc.finalize().at(0, 0, 0), 34.0, 1e-9);
  EXPECT_NEAR(median_acc.finalize().at(0, 0, 0), 1.0, 1e-9);
}

TEST(OverlapAccumulatorTest, MedianOfEvenCountAveragesCentralPair) {
  PatchSpec spec;
  spec.traffic_h = 2;
  spec.traffic_w = 2;
  spec.context_h = 2;
  spec.context_w = 2;
  spec.stride = 1;
  OverlapAccumulator acc(1, 2, 2, OverlapAggregation::kMedian);
  acc.add_patch({0, 0}, spec, std::vector<float>(4, 1.0f));
  acc.add_patch({0, 0}, spec, std::vector<float>(4, 3.0f));
  EXPECT_NEAR(acc.finalize().at(0, 0, 0), 2.0, 1e-9);
}

TEST(OverlapAccumulatorTest, MedianMatchesMeanWhenPatchesAgree) {
  PatchSpec spec;
  spec.stride = 2;
  OverlapAccumulator mean_acc(1, 8, 8, OverlapAggregation::kMean);
  OverlapAccumulator median_acc(1, 8, 8, OverlapAggregation::kMedian);
  const std::vector<float> patch(16, 0.7f);
  for (const PatchWindow& w : enumerate_windows(8, 8, spec)) {
    mean_acc.add_patch(w, spec, patch);
    median_acc.add_patch(w, spec, patch);
  }
  const CityTensor a = mean_acc.finalize();
  const CityTensor b = median_acc.finalize();
  for (long p = 0; p < 64; ++p) EXPECT_NEAR(a[p], b[p], 1e-6);
}

TEST(OverlapAccumulatorTest, UncoveredPixelRejected) {
  PatchSpec spec;
  OverlapAccumulator acc(1, 8, 8);
  acc.add_patch({0, 0}, spec, std::vector<float>(16, 1.0f));
  EXPECT_THROW(acc.finalize(), spectra::Error);
}

}  // namespace
}  // namespace spectra::geo
