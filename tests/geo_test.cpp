#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "geo/city_tensor.h"
#include "geo/grid.h"
#include "geo/patching.h"
#include "geo/strip_accumulator.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/rng.h"

namespace spectra::geo {
namespace {

TEST(GridMapTest, AccessorsAndBounds) {
  GridMap m(3, 4);
  m.at(2, 3) = 7.0;
  EXPECT_EQ(m[2 * 4 + 3], 7.0);
  EXPECT_THROW(m.at(3, 0), spectra::Error);
  EXPECT_THROW(m.at(0, 4), spectra::Error);
}

TEST(GridMapTest, Statistics) {
  GridMap m(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m.sum(), 10.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.5);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 4.0);
}

TEST(GridMapTest, NormalizePeak) {
  GridMap m(1, 3, {1.0, 2.0, 4.0});
  m.normalize_peak();
  EXPECT_DOUBLE_EQ(m.max(), 1.0);
  EXPECT_DOUBLE_EQ(m[0], 0.25);
  GridMap zeros(2, 2);
  zeros.normalize_peak();  // no-op, no division by zero
  EXPECT_DOUBLE_EQ(zeros.max(), 0.0);
}

TEST(GridMapTest, AddScaleFill) {
  GridMap a(1, 2, {1.0, 2.0});
  GridMap b(1, 2, {10.0, 20.0});
  a.add(b);
  EXPECT_DOUBLE_EQ(a[1], 22.0);
  a.scale(0.5);
  EXPECT_DOUBLE_EQ(a[0], 5.5);
  a.fill(0.0);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
  GridMap c(2, 1);
  EXPECT_THROW(a.add(c), spectra::Error);
}

TEST(CityTensorTest, FrameRoundTrip) {
  CityTensor t(3, 2, 2);
  GridMap f(2, 2, {1.0, 2.0, 3.0, 4.0});
  t.set_frame(1, f);
  const GridMap back = t.frame(1);
  for (long p = 0; p < 4; ++p) EXPECT_DOUBLE_EQ(back[p], f[p]);
  EXPECT_DOUBLE_EQ(t.frame(0).sum(), 0.0);
  EXPECT_THROW(t.frame(3), spectra::Error);
}

TEST(CityTensorTest, TimeAverage) {
  CityTensor t(2, 1, 2);
  t.at(0, 0, 0) = 2.0;
  t.at(1, 0, 0) = 4.0;
  t.at(0, 0, 1) = 0.0;
  t.at(1, 0, 1) = 6.0;
  const GridMap avg = t.time_average();
  EXPECT_DOUBLE_EQ(avg.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(avg.at(0, 1), 3.0);
}

TEST(CityTensorTest, SpaceAverageAndPixelSeries) {
  CityTensor t(2, 2, 1);
  t.at(0, 0, 0) = 1.0;
  t.at(0, 1, 0) = 3.0;
  t.at(1, 0, 0) = 5.0;
  t.at(1, 1, 0) = 7.0;
  const std::vector<double> s = t.space_average();
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 6.0);
  const std::vector<double> p = t.pixel_series(1, 0);
  EXPECT_DOUBLE_EQ(p[0], 3.0);
  EXPECT_DOUBLE_EQ(p[1], 7.0);
}

TEST(CityTensorTest, SliceTime) {
  CityTensor t(5, 1, 1);
  for (long k = 0; k < 5; ++k) t.at(k, 0, 0) = static_cast<double>(k);
  const CityTensor s = t.slice_time(1, 3);
  EXPECT_EQ(s.steps(), 3);
  EXPECT_DOUBLE_EQ(s.at(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(2, 0, 0), 3.0);
  EXPECT_THROW(t.slice_time(3, 3), spectra::Error);
}

TEST(CityTensorTest, PeakNormalizeAndClamp) {
  CityTensor t(1, 1, 3);
  t.at(0, 0, 0) = -1.0;
  t.at(0, 0, 1) = 2.0;
  t.at(0, 0, 2) = 4.0;
  t.normalize_peak();
  EXPECT_DOUBLE_EQ(t.peak(), 1.0);
  t.clamp(0.0, 1.0);
  EXPECT_DOUBLE_EQ(t.at(0, 0, 0), 0.0);
}

TEST(PatchSpecTest, Validation) {
  PatchSpec good;
  EXPECT_NO_THROW(good.validate());
  PatchSpec small_context = good;
  small_context.context_h = 2;
  EXPECT_THROW(small_context.validate(), spectra::Error);
  PatchSpec odd_halo = good;
  odd_halo.context_h = 9;
  EXPECT_THROW(odd_halo.validate(), spectra::Error);
  PatchSpec big_stride = good;
  big_stride.stride = 5;
  EXPECT_THROW(big_stride.validate(), spectra::Error);
  EXPECT_EQ(good.halo_h(), 2);
}

struct WindowCase {
  long height;
  long width;
  long stride;
};

class WindowCoverageTest : public testing::TestWithParam<WindowCase> {};

TEST_P(WindowCoverageTest, EveryPixelCovered) {
  const WindowCase c = GetParam();
  PatchSpec spec;
  spec.stride = c.stride;
  const std::vector<PatchWindow> windows = enumerate_windows(c.height, c.width, spec);
  std::vector<int> covered(static_cast<std::size_t>(c.height * c.width), 0);
  for (const PatchWindow& w : windows) {
    EXPECT_GE(w.row, 0);
    EXPECT_LE(w.row + spec.traffic_h, c.height);
    for (long i = 0; i < spec.traffic_h; ++i) {
      for (long j = 0; j < spec.traffic_w; ++j) {
        ++covered[static_cast<std::size_t>((w.row + i) * c.width + w.col + j)];
      }
    }
  }
  for (int v : covered) EXPECT_GE(v, 1);
}

INSTANTIATE_TEST_SUITE_P(Geometries, WindowCoverageTest,
                         testing::Values(WindowCase{12, 12, 2}, WindowCase{13, 17, 2},
                                         WindowCase{16, 15, 3}, WindowCase{4, 4, 2},
                                         WindowCase{21, 8, 4}, WindowCase{9, 31, 1}));

// Border-clamp specifics of the sliding window: when the stride does not
// divide H - traffic_h the final origin is clamped to end exactly at the
// map edge, origins never repeat, and a map of exactly one patch yields
// exactly one origin.
TEST(EnumerateWindowsTest, ClampsFinalOriginWhenStrideDoesNotDivide) {
  PatchSpec spec;  // traffic 4x4
  spec.stride = 3;
  // H = 13: origins 0, 3, 6, 9 (= 13 - 4, exact hit). W = 12: 0, 3, 6,
  // then 9 > 12 - 4 = 8 clamps to 8.
  const std::vector<PatchWindow> windows = enumerate_windows(13, 12, spec);
  std::vector<long> rows, cols;
  for (const PatchWindow& w : windows) {
    if (w.col == 0) rows.push_back(w.row);
    if (w.row == 0) cols.push_back(w.col);
  }
  EXPECT_EQ(rows, (std::vector<long>{0, 3, 6, 9}));
  EXPECT_EQ(cols, (std::vector<long>{0, 3, 6, 8}));
  EXPECT_EQ(windows.size(), rows.size() * cols.size());
  EXPECT_EQ(windows.back().row, 13 - spec.traffic_h);
  EXPECT_EQ(windows.back().col, 12 - spec.traffic_w);
}

TEST(EnumerateWindowsTest, MapOfExactlyOnePatchYieldsOneWindow) {
  PatchSpec spec;  // traffic 4x4
  spec.stride = 2;
  const std::vector<PatchWindow> windows = enumerate_windows(4, 4, spec);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].row, 0);
  EXPECT_EQ(windows[0].col, 0);
}

TEST(EnumerateWindowsTest, RectangularMapOrdersRowMajorWithoutDuplicates) {
  PatchSpec spec;
  spec.stride = 2;
  // H == traffic_h: a single origin row; W = 9 clamps the last column.
  const std::vector<PatchWindow> windows = enumerate_windows(4, 9, spec);
  for (const PatchWindow& w : windows) EXPECT_EQ(w.row, 0);
  for (std::size_t i = 1; i < windows.size(); ++i) {
    EXPECT_GT(windows[i].col, windows[i - 1].col) << "origins must be strictly increasing";
  }
  EXPECT_EQ(windows.back().col, 9 - spec.traffic_w);
  EXPECT_THROW(enumerate_windows(3, 9, spec), spectra::Error);  // smaller than one patch
}

TEST(PatchExtractionTest, ContextHaloZeroPadded) {
  ContextTensor context(2, 6, 6);
  for (long c = 0; c < 2; ++c) {
    for (long i = 0; i < 6; ++i) {
      for (long j = 0; j < 6; ++j) context.at(c, i, j) = 1.0;
    }
  }
  PatchSpec spec;  // traffic 4x4, context 8x8, halo 2
  const std::vector<float> patch = extract_context_patch(context, {0, 0}, spec);
  ASSERT_EQ(patch.size(), static_cast<std::size_t>(2 * 8 * 8));
  // Top-left corner of the context patch is outside the map -> zero.
  EXPECT_FLOAT_EQ(patch[0], 0.0f);
  // Center is inside -> one.
  EXPECT_FLOAT_EQ(patch[3 * 8 + 3], 1.0f);
}

TEST(PatchExtractionTest, TrafficPatchValues) {
  CityTensor traffic(2, 6, 6);
  traffic.at(1, 2, 3) = 42.0;
  PatchSpec spec;
  const std::vector<float> patch = extract_traffic_patch(traffic, {2, 2}, spec);
  // [T=2, 4, 4]; value at t=1, local (0,1).
  EXPECT_FLOAT_EQ(patch[16 + 0 * 4 + 1], 42.0f);
  EXPECT_THROW(extract_traffic_patch(traffic, {4, 0}, spec), spectra::Error);
}

TEST(OverlapAccumulatorTest, AveragesOverlappingPatches) {
  PatchSpec spec;
  spec.stride = 2;
  OverlapAccumulator acc(1, 6, 6);
  const std::vector<PatchWindow> windows = enumerate_windows(6, 6, spec);
  // Every patch contributes the constant 2.0: the average must be 2.0
  // everywhere regardless of multiplicity (Eq. 2 sanity).
  const std::vector<float> patch(static_cast<std::size_t>(1 * 4 * 4), 2.0f);
  for (const PatchWindow& w : windows) acc.add_patch(w, spec, patch);
  const CityTensor out = acc.finalize();
  for (long i = 0; i < 6; ++i) {
    for (long j = 0; j < 6; ++j) EXPECT_NEAR(out.at(0, i, j), 2.0, 1e-9);
  }
}

TEST(OverlapAccumulatorTest, DistinctValuesAverage) {
  PatchSpec spec;
  spec.traffic_h = 2;
  spec.traffic_w = 2;
  spec.context_h = 2;
  spec.context_w = 2;
  spec.stride = 1;
  OverlapAccumulator acc(1, 2, 3);
  // Two overlapping 2x2 patches over a 2x3 map: columns 1 get both.
  std::vector<float> ones(4, 1.0f);
  std::vector<float> threes(4, 3.0f);
  acc.add_patch({0, 0}, spec, ones);
  acc.add_patch({0, 1}, spec, threes);
  const CityTensor out = acc.finalize();
  EXPECT_NEAR(out.at(0, 0, 0), 1.0, 1e-9);
  EXPECT_NEAR(out.at(0, 0, 1), 2.0, 1e-9);  // (1+3)/2
  EXPECT_NEAR(out.at(0, 0, 2), 3.0, 1e-9);
}

TEST(OverlapAccumulatorTest, MedianAggregationRobustToOutlierPatch) {
  // Paper §2.2.4 leaves beyond-average aggregation as future work; the
  // median extension must ignore a single corrupted patch.
  PatchSpec spec;
  spec.traffic_h = 2;
  spec.traffic_w = 2;
  spec.context_h = 2;
  spec.context_w = 2;
  spec.stride = 1;
  OverlapAccumulator mean_acc(1, 2, 2, OverlapAggregation::kMean);
  OverlapAccumulator median_acc(1, 2, 2, OverlapAggregation::kMedian);
  const std::vector<float> good(4, 1.0f);
  const std::vector<float> outlier(4, 100.0f);
  for (auto* acc : {&mean_acc, &median_acc}) {
    acc->add_patch({0, 0}, spec, good);
    acc->add_patch({0, 0}, spec, good);
    acc->add_patch({0, 0}, spec, outlier);
  }
  EXPECT_NEAR(mean_acc.finalize().at(0, 0, 0), 34.0, 1e-9);
  EXPECT_NEAR(median_acc.finalize().at(0, 0, 0), 1.0, 1e-9);
}

TEST(OverlapAccumulatorTest, MedianOfEvenCountAveragesCentralPair) {
  PatchSpec spec;
  spec.traffic_h = 2;
  spec.traffic_w = 2;
  spec.context_h = 2;
  spec.context_w = 2;
  spec.stride = 1;
  OverlapAccumulator acc(1, 2, 2, OverlapAggregation::kMedian);
  acc.add_patch({0, 0}, spec, std::vector<float>(4, 1.0f));
  acc.add_patch({0, 0}, spec, std::vector<float>(4, 3.0f));
  EXPECT_NEAR(acc.finalize().at(0, 0, 0), 2.0, 1e-9);
}

TEST(OverlapAccumulatorTest, MedianMatchesMeanWhenPatchesAgree) {
  PatchSpec spec;
  spec.stride = 2;
  OverlapAccumulator mean_acc(1, 8, 8, OverlapAggregation::kMean);
  OverlapAccumulator median_acc(1, 8, 8, OverlapAggregation::kMedian);
  const std::vector<float> patch(16, 0.7f);
  for (const PatchWindow& w : enumerate_windows(8, 8, spec)) {
    mean_acc.add_patch(w, spec, patch);
    median_acc.add_patch(w, spec, patch);
  }
  const CityTensor a = mean_acc.finalize();
  const CityTensor b = median_acc.finalize();
  for (long p = 0; p < 64; ++p) EXPECT_NEAR(a[p], b[p], 1e-6);
}

TEST(OverlapAccumulatorTest, UncoveredPixelRejected) {
  PatchSpec spec;
  OverlapAccumulator acc(1, 8, 8);
  acc.add_patch({0, 0}, spec, std::vector<float>(16, 1.0f));
  EXPECT_THROW(acc.finalize(), spectra::Error);
}

// ---------------------------------------------------------------------------
// StripAccumulator: bounded-memory sewing must be bitwise identical to the
// dense OverlapAccumulator (DESIGN §6f).

// Captures every emitted row for inspection.
class RecordingSink : public RowSink {
 public:
  void consume_row(long row, const std::vector<double>& values) override {
    rows.push_back(row);
    data.push_back(values);  // copy: the accumulator reuses the buffer
  }

  std::vector<long> rows;
  std::vector<std::vector<double>> data;
};

// Random patches in enumerate_windows order through both accumulators;
// the streamed rows must match the dense canvas bit for bit.
void expect_strip_equals_dense(long steps, long height, long width, long stride,
                               OverlapAggregation aggregation) {
  PatchSpec spec;
  spec.stride = stride;
  const std::vector<PatchWindow> windows = enumerate_windows(height, width, spec);
  const std::size_t patch_size =
      static_cast<std::size_t>(steps * spec.traffic_h * spec.traffic_w);

  spectra::Rng rng(42);
  std::vector<std::vector<float>> patches;
  patches.reserve(windows.size());
  for (std::size_t w = 0; w < windows.size(); ++w) {
    std::vector<float> patch(patch_size);
    for (float& v : patch) v = static_cast<float>(rng.uniform(-1.0, 5.0));
    patches.push_back(std::move(patch));
  }

  OverlapAccumulator dense(steps, height, width, aggregation);
  CityTensorSink sink(steps, height, width);
  StripAccumulator strip(steps, height, width, sink, aggregation);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    dense.add_patch(windows[w], spec, patches[w]);
    strip.add_patch(windows[w], spec, patches[w]);
  }
  strip.finish();

  const CityTensor want = dense.finalize();
  const CityTensor got = sink.take();
  ASSERT_EQ(got.size(), want.size());
  for (long p = 0; p < want.size(); ++p) {
    ASSERT_EQ(got[p], want[p]) << "pixel " << p << " diverged (aggregation="
                               << (aggregation == OverlapAggregation::kMean ? "mean" : "median")
                               << ")";
  }
}

TEST(StripAccumulatorTest, BitwiseEqualsDenseMean) {
  expect_strip_equals_dense(3, 13, 12, 3, OverlapAggregation::kMean);  // clamped final strip
  expect_strip_equals_dense(2, 12, 12, 2, OverlapAggregation::kMean);
  expect_strip_equals_dense(1, 4, 9, 2, OverlapAggregation::kMean);  // single-strip map
}

TEST(StripAccumulatorTest, BitwiseEqualsDenseMedian) {
  expect_strip_equals_dense(3, 13, 12, 3, OverlapAggregation::kMedian);
  expect_strip_equals_dense(2, 12, 12, 2, OverlapAggregation::kMedian);
}

TEST(StripAccumulatorTest, RowsFinalizeAsStripsRetire) {
  PatchSpec spec;  // traffic 4x4, stride 2
  spec.stride = 2;
  const long height = 10, width = 4;
  RecordingSink sink;
  StripAccumulator strip(1, height, width, sink);
  const std::vector<float> patch(16, 1.0f);

  const std::vector<PatchWindow> windows = enumerate_windows(height, width, spec);
  for (const PatchWindow& w : windows) {
    strip.add_patch(w, spec, patch);
    // A row is emitted the moment no later window can touch it: after the
    // strip at origin r lands, rows below r are final.
    EXPECT_EQ(strip.rows_emitted(), w.row) << "rows below the current origin must be emitted";
  }
  strip.finish();

  // Every row exactly once, strictly increasing.
  ASSERT_EQ(sink.rows.size(), static_cast<std::size_t>(height));
  for (long r = 0; r < height; ++r) EXPECT_EQ(sink.rows[static_cast<std::size_t>(r)], r);
  EXPECT_EQ(strip.rows_emitted(), height);
  strip.finish();  // idempotent
  EXPECT_EQ(sink.rows.size(), static_cast<std::size_t>(height));
}

TEST(StripAccumulatorTest, RejectsOutOfOrderAndLatePatches) {
  PatchSpec spec;
  spec.stride = 2;
  CityTensorSink sink(1, 8, 8);
  StripAccumulator strip(1, 8, 8, sink);
  const std::vector<float> patch(16, 1.0f);
  for (const PatchWindow& w : enumerate_windows(8, 8, spec)) strip.add_patch(w, spec, patch);
  // Origin row 0 was already finalized once the origin advanced past it.
  EXPECT_THROW(strip.add_patch({0, 0}, spec, patch), spectra::Error);
  strip.finish();
  EXPECT_THROW(strip.add_patch({4, 4}, spec, patch), spectra::Error);
}

TEST(StripAccumulatorTest, UncoveredPixelRejected) {
  PatchSpec spec;
  CityTensorSink sink(1, 8, 8);
  StripAccumulator strip(1, 8, 8, sink);
  strip.add_patch({0, 0}, spec, std::vector<float>(16, 1.0f));
  EXPECT_THROW(strip.finish(), spectra::Error);  // columns 4..7 never covered
}

TEST(SpillRowSinkTest, RoundTripsRowsThroughDisk) {
  const long steps = 3, width = 5, rows = 7;
  const std::string path = testing::TempDir() + "/spill_roundtrip.bin";
  {
    SpillRowSink sink(path, steps, width, /*batch_rows=*/2);  // force mid-run flushes
    std::vector<double> row(static_cast<std::size_t>(steps * width));
    for (long r = 0; r < rows; ++r) {
      for (long k = 0; k < steps * width; ++k) {
        row[static_cast<std::size_t>(k)] = static_cast<double>(r * 1000 + k);
      }
      sink.consume_row(r, row);
    }
    sink.close();
    EXPECT_EQ(sink.rows_written(), rows);
    EXPECT_EQ(sink.bytes_written(),
              static_cast<long long>(rows * steps * width) *
                  static_cast<long long>(sizeof(double)));
  }
  std::vector<double> back;
  for (long r = rows - 1; r >= 0; --r) {  // random access, reverse order
    read_spilled_row(path, steps, width, r, back);
    ASSERT_EQ(back.size(), static_cast<std::size_t>(steps * width));
    for (long k = 0; k < steps * width; ++k) {
      EXPECT_EQ(back[static_cast<std::size_t>(k)], static_cast<double>(r * 1000 + k));
    }
  }
  EXPECT_THROW(read_spilled_row(path, steps, width, rows, back), spectra::Error);
  std::remove(path.c_str());
}

TEST(SpillRowSinkTest, RejectsOutOfOrderRows) {
  const std::string path = testing::TempDir() + "/spill_order.bin";
  SpillRowSink sink(path, 1, 2);
  const std::vector<double> row(2, 0.0);
  sink.consume_row(0, row);
  EXPECT_THROW(sink.consume_row(2, row), spectra::Error);  // gap
  sink.close();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Sink write failures: a typed, catchable SinkWriteError counted in
// geo.sink_write_errors — never an abort, and never a terminate() from
// a throwing destructor.

// A sink whose downstream "device" fails mid-stream, the way SpillRowSink
// fails on a short write.
class FailingSink : public RowSink {
 public:
  explicit FailingSink(long fail_at) : fail_at_(fail_at) {}
  void consume_row(long row, const std::vector<double>&) override {
    if (row >= fail_at_) throw SinkWriteError("FailingSink rejecting row " + std::to_string(row));
    ++rows_ok_;
  }
  long rows_ok() const { return rows_ok_; }

 private:
  long fail_at_;
  long rows_ok_ = 0;
};

TEST(SinkWriteErrorTest, PropagatesThroughStripAccumulator) {
  PatchSpec spec{.traffic_h = 4, .traffic_w = 4, .context_h = 8, .context_w = 8, .stride = 4};
  FailingSink sink(/*fail_at=*/4);
  StripAccumulator strip(1, 8, 8, sink);
  const std::vector<float> patch(16, 1.0f);
  for (const PatchWindow& w : enumerate_windows(8, 8, spec)) strip.add_patch(w, spec, patch);
  // Rows 0..3 stream out while the second strip accumulates; row 4 hits
  // the failing device and the typed error surfaces to the caller.
  EXPECT_THROW(strip.finish(), SinkWriteError);
  EXPECT_EQ(sink.rows_ok(), 4);
}

TEST(SinkWriteErrorTest, SpillRowSinkFullDeviceThrowsTypedError) {
#ifdef __linux__
  // /dev/full fails every write with ENOSPC: the batched fwrite (or the
  // final fclose flush) must surface as SinkWriteError, not an abort.
  obs::Counter& errors = obs::Registry::instance().counter("geo.sink_write_errors");
  const std::uint64_t before = errors.value();
  const long steps = 4, width = 64;
  SpillRowSink sink("/dev/full", steps, width, /*batch_rows=*/2);
  const std::vector<double> row(static_cast<std::size_t>(steps * width), 1.0);
  bool threw = false;
  try {
    for (long r = 0; r < 8; ++r) sink.consume_row(r, row);
    sink.close();
  } catch (const SinkWriteError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  EXPECT_GE(errors.value(), before + 1);
#else
  GTEST_SKIP() << "/dev/full is Linux-specific";
#endif
}

TEST(SinkWriteErrorTest, DestructorSwallowsCloseFailure) {
#ifdef __linux__
  // Dropping an unflushed sink on a full device must log-and-count, not
  // terminate the process through a throwing destructor.
  obs::Counter& errors = obs::Registry::instance().counter("geo.sink_write_errors");
  const std::uint64_t before = errors.value();
  {
    SpillRowSink sink("/dev/full", 4, 64, /*batch_rows=*/64);
    const std::vector<double> row(4 * 64, 1.0);
    for (long r = 0; r < 4; ++r) sink.consume_row(r, row);
  }  // destructor flushes, fails, and survives
  EXPECT_GE(errors.value(), before + 1);
#else
  GTEST_SKIP() << "/dev/full is Linux-specific";
#endif
}

// ---------------------------------------------------------------------------
// NaN guards: peak normalization must fail loudly on non-finite input
// instead of silently poisoning the map (geo.nonfinite_pixels counts).

TEST(NonFiniteGuardTest, CityTensorPeakRejectsNaN) {
  obs::Counter& bad = obs::Registry::instance().counter("geo.nonfinite_pixels");
  const std::uint64_t before = bad.value();
  CityTensor t(1, 2, 2);
  t.at(0, 0, 0) = 3.0;
  t.at(0, 1, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(t.peak(), spectra::Error);
  EXPECT_THROW(t.normalize_peak(), spectra::Error);
  EXPECT_GT(bad.value(), before);
}

TEST(NonFiniteGuardTest, GridMapNormalizePeakRejectsInfinity) {
  GridMap m(2, 2, {1.0, 2.0, std::numeric_limits<double>::infinity(), 4.0});
  EXPECT_THROW(m.normalize_peak(), spectra::Error);
  CityTensor fine(1, 1, 2);
  fine.at(0, 0, 1) = 5.0;
  EXPECT_NO_THROW(fine.normalize_peak());  // finite input unaffected
  EXPECT_DOUBLE_EQ(fine.peak(), 1.0);
}

}  // namespace
}  // namespace spectra::geo
