// Fixture: MUST trigger [registry] in all four directions when checked
// against registry_design.md:
//   - reads a knob the design table does not document
//   - registers a metric the design table does not document
//   - (the design table also names a knob and a metric this file never
//     touches, so the unused-direction findings fire too)

namespace spectra {
std::string env_string(const char* name, const char* fallback);
namespace obs {
struct Registry {
  static Registry& instance();
  int& counter(const char* name);
};
}  // namespace obs
}  // namespace spectra

namespace spectra::fixture {

void touch() {
  (void)env_string("SPECTRA_BOGUS", "");  // not in the design knob table
  (void)obs::Registry::instance().counter("bogus.metric");  // not in the metric table
}

}  // namespace spectra::fixture
