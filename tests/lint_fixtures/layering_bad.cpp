// Fixture: MUST trigger [include-layering] — a back-edge up the module
// DAG (util is rank 0; serve is rank 7) and a sibling edge at equal rank.
// Linted as-if at src/util/fixture.cpp.

#include "serve/server.h"  // rule: include-layering (back-edge)
#include "util/error.h"    // same module: always fine

namespace spectra::fixture {

void poke();

}  // namespace spectra::fixture
