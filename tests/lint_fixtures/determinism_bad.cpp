// Fixture: MUST trigger [determinism] — nondeterministic sources in a core
// path. Linted as-if at src/train/fixture.cpp.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace spectra::fixture {

unsigned long bad_seed() {
  std::random_device rd;                                    // rule: determinism
  return rd() + static_cast<unsigned long>(time(nullptr));  // rule: determinism
}

long bad_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // rule: determinism
}

}  // namespace spectra::fixture
