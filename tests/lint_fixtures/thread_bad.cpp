// Fixture: MUST trigger [thread] — raw std::thread outside util/thread_pool.
// Linted as-if at src/core/fixture.cpp by run_fixture_tests.py.
#include <thread>

namespace spectra::fixture {

void spawn_worker() {
  std::thread t([] {});  // rule: thread
  t.join();
}

}  // namespace spectra::fixture
