#!/usr/bin/env python3
"""Fixture suite for scripts/lint/sg_lint.py (ctest label: lint).

Each sg_lint rule ships with a fixture that MUST trigger it and a clean
twin that MUST pass.  Fixtures are linted *as if* they lived at a path
inside the rule's scope (``--as``), so they never touch the real tree and
are never compiled.  The registry pair runs against a miniature design
document (``--design``) so the table-sync rule is exercised in both
directions without depending on the real DESIGN.md contents.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
LINTER = REPO / "scripts" / "lint" / "sg_lint.py"
FIXTURE_DESIGN = HERE / "registry_design.md"

# (fixture, lint-as path, extra args, expected exit, substrings required
#  in stdout — empty list means the run must be silent and clean)
CASES = [
    ("thread_bad.cpp", "src/core/fixture.cpp", [], 1, ["[thread]"]),
    ("thread_ok.cpp", "src/core/fixture.cpp", [], 0, []),
    ("determinism_bad.cpp", "src/train/fixture.cpp", [], 1,
     ["[determinism]", "random_device", "system_clock", "time"]),
    ("determinism_ok.cpp", "src/train/fixture.cpp", [], 0, []),
    ("static_bad.cpp", "src/geo/fixture.cpp", [], 1,
     ["[mutable-static]", "g_call_count", "tls_hits"]),
    ("static_ok.cpp", "src/geo/fixture.cpp", [], 0, []),
    # Dispatch-selection allowlist: only the audited identifier passes in
    # the dispatch TU; anything else still fires.
    ("dispatch_static_bad.cpp", "src/nn/dispatch.cpp", [], 1,
     ["[mutable-static]", "g_rogue"]),
    ("dispatch_static_ok.cpp", "src/nn/dispatch.cpp", [], 0, []),
    ("floatmix_bad.cpp", "src/nn/gemm.cpp", [], 1, ["[float-mix]"]),
    ("floatmix_ok.cpp", "src/nn/gemm.cpp", [], 0, []),
    ("registry_bad.cpp", "src/obs/fixture.cpp",
     ["--design", str(FIXTURE_DESIGN)], 1,
     ["[registry]", "SPECTRA_BOGUS", "bogus.metric",
      "SPECTRA_DOCUMENTED", "documented.metric"]),
    ("registry_ok.cpp", "src/obs/fixture.cpp",
     ["--design", str(FIXTURE_DESIGN)], 0, []),
    ("annotation_bad.cpp", "src/core/fixture.cpp", [], 1,
     ["[annotation]", "justification"]),
    ("annotation_ok.cpp", "src/core/fixture.cpp", [], 0, []),
    ("lock_bad.cpp", "src/serve/fixture.cpp", [], 1,
     ["[lock-annotation]", "m_raw", "cv_", "m_plain"]),
    ("lock_ok.cpp", "src/serve/fixture.cpp", [], 0, []),
    ("layering_bad.cpp", "src/util/fixture.cpp", [], 1,
     ["[include-layering]", "serve/server.h"]),
    ("layering_ok.cpp", "src/serve/fixture.cpp", [], 0, []),
]


def run_case(fixture: str, as_path: str, extra: list[str],
             want_exit: int, want_out: list[str]) -> list[str]:
    proc = subprocess.run(
        [sys.executable, str(LINTER), str(HERE / fixture), "--as", as_path,
         *extra],
        capture_output=True, text=True)
    errors = []
    if proc.returncode != want_exit:
        errors.append(f"exit {proc.returncode}, expected {want_exit}\n"
                      f"stdout: {proc.stdout}stderr: {proc.stderr}")
    for needle in want_out:
        if needle not in proc.stdout:
            errors.append(f"missing {needle!r} in output:\n{proc.stdout}")
    if not want_out and proc.stdout.strip():
        errors.append(f"expected clean output, got:\n{proc.stdout}")
    return [f"{fixture}: {e}" for e in errors]


def main() -> int:
    covered = set()
    failures = []
    for fixture, as_path, extra, want_exit, want_out in CASES:
        failures.extend(run_case(fixture, as_path, extra, want_exit, want_out))
        for needle in want_out:
            if needle.startswith("[") and needle.endswith("]"):
                covered.add(needle[1:-1])

    # Guard against the suite silently losing coverage when rules are added.
    rules = subprocess.run(
        [sys.executable, str(LINTER), "--list-rules"],
        capture_output=True, text=True, check=True).stdout.split()
    missing = [r for r in rules if r not in covered]
    if missing:
        failures.append(f"no failing fixture covers rule(s): {missing}")

    if failures:
        print(f"{len(failures)} fixture failure(s):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"{len(CASES)} fixture cases passed; "
          f"rules covered: {sorted(covered)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
