// Clean twin of static_bad.cpp: immutable statics, static member
// functions, and a justified waiver are all fine.

namespace spectra::obs {
class Counter {
 public:
  void inc();
};
struct Registry {
  static Registry& instance();
  Counter& counter(const char* name);
};
}  // namespace spectra::obs

namespace spectra::fixture {

static const long kLimit = 64;
static constexpr double kScale = 0.5;

struct Helper {
  static long clamp(long v);  // static member function, not state
};

long observe() {
  // Registry instrument handles are allowed by pattern.
  static obs::Counter& c = obs::Registry::instance().counter("fixture.calls");
  c.inc();
  // sg-lint: allow(mutable-static) fixture: documents the waiver syntax
  static long waived_cache = kLimit;
  return waived_cache + static_cast<long>(kScale);
}

}  // namespace spectra::fixture
