// Fixture: MUST trigger [mutable-static] — unaudited mutable process state.
// Linted as-if at src/geo/fixture.cpp.

namespace spectra::fixture {

static long g_call_count = 0;  // rule: mutable-static

long count_calls() {
  thread_local long tls_hits = 0;  // rule: mutable-static
  ++tls_hits;
  return ++g_call_count;
}

}  // namespace spectra::fixture
