// Clean twin of lock_bad.cpp: wrapped primitives placed in the lock
// hierarchy (serve layer), guarded state, and a CondVar (which carries no
// hierarchy position of its own — ordering lives on the mutex it waits on).
// Linted as-if at src/serve/fixture.cpp.

#include <deque>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace spectra::fixture {

class Queue {
 public:
  void push();

 private:
  Mutex mutex_ SG_ACQUIRED_AFTER(lock_order::serve)
      SG_ACQUIRED_BEFORE(lock_order::pool);
  // Annotation on the continuation line is still part of the declaration.
  SharedMutex snapshot_mutex_
      SG_ACQUIRED_AFTER(lock_order::serve) SG_ACQUIRED_BEFORE(lock_order::pool);
  CondVar cv_;
  std::deque<int> items_ SG_GUARDED_BY(mutex_);
};

}  // namespace spectra::fixture
