// Clean twin of dispatch_static_bad.cpp: the one-time dispatch-level
// selection cell is on the audited allowlist under exactly this file and
// identifier (src/nn/dispatch.cpp:g_active). Linted as-if at
// src/nn/dispatch.cpp.

namespace std {
template <typename T>
struct atomic {
  T load(int) const;
  void store(T, int);
};
}  // namespace std

namespace spectra::nn {

int select_level();

int active_level() {
  static std::atomic<int> g_active{-1};  // allowlisted dispatch selection
  int level = g_active.load(0);
  if (level < 0) {
    level = select_level();
    g_active.store(level, 0);
  }
  return level;
}

}  // namespace spectra::nn
