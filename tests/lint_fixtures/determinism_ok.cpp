// Clean twin of determinism_bad.cpp: randomness flows from the seeded
// spectra::Rng, timing from steady_clock (allowed — it never feeds data).
#include <chrono>

namespace spectra {
class Rng {
 public:
  explicit Rng(unsigned long seed);
  double normal();
};
}  // namespace spectra

namespace spectra::fixture {

double good_draw(Rng& rng) { return rng.normal(); }

// steady_clock is monotonic timing, not a data-path entropy source.
long good_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// An identifier merely *containing* the banned token must not fire:
long lifetime(long uptime) { return uptime; }

}  // namespace spectra::fixture
