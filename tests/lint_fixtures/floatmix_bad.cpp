// Fixture: MUST trigger [float-mix] — bare double in a kernel file mixes
// accumulation precision. Linted as-if at src/nn/gemm.cpp.

namespace spectra::nn::fixture {

float dot(const float* a, const float* b, long n) {
  double acc = 0.0;  // rule: float-mix
  for (long i = 0; i < n; ++i) acc += a[i] * b[i];
  return static_cast<float>(acc);
}

}  // namespace spectra::nn::fixture
