// Fixture: MUST trigger [annotation] — a waiver without a justification
// is itself an error (NOLINT-with-reason policy, DESIGN §6d).
#include <thread>

namespace spectra::fixture {

void spawn() {
  // sg-lint: allow(thread)
  std::thread t([] {});
  t.join();
}

}  // namespace spectra::fixture
