// Fixture: MUST trigger [mutable-static] — the dispatch allowlist entry
// covers exactly `g_active`, so any other mutable static smuggled into
// the dispatch TU still fires. Linted as-if at src/nn/dispatch.cpp.

namespace spectra::nn {

int select_level();

int rogue_level() {
  static int g_rogue = -1;  // rule: mutable-static (not the audited name)
  if (g_rogue < 0) g_rogue = select_level();
  return g_rogue;
}

}  // namespace spectra::nn
