// Clean twin of registry_bad.cpp: uses exactly the knob and metric that
// registry_design.md documents.

namespace spectra {
std::string env_string(const char* name, const char* fallback);
namespace obs {
struct Registry {
  static Registry& instance();
  int& counter(const char* name);
};
}  // namespace obs
}  // namespace spectra

namespace spectra::fixture {

void touch() {
  (void)env_string("SPECTRA_DOCUMENTED", "");
  (void)obs::Registry::instance().counter("documented.metric");
}

}  // namespace spectra::fixture
