// Clean twin of annotation_bad.cpp: a justified waiver silences the
// finding on the annotated line (and the line directly below it).
#include <thread>

namespace spectra::fixture {

void spawn() {
  // sg-lint: allow(thread) fixture: exercises the justified-waiver path
  std::thread t([] {});
  t.join();
}

}  // namespace spectra::fixture
