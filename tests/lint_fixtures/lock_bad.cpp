// Fixture: MUST trigger [lock-annotation] — concurrency primitives the
// clang thread safety analysis cannot see or order.
// Linted as-if at src/serve/fixture.cpp.

#include <condition_variable>
#include <mutex>

#include "util/mutex.h"

namespace spectra::fixture {

class Queue {
 public:
  void push();

 private:
  std::mutex m_raw;             // rule: lock-annotation (raw primitive)
  std::condition_variable cv_;  // rule: lock-annotation (raw primitive)
  Mutex m_plain;                // rule: lock-annotation (no hierarchy position)
};

}  // namespace spectra::fixture
