// Clean twin of thread_bad.cpp: parallelism goes through the shared pool,
// and mentioning std::thread in comments or strings is fine.
namespace spectra {
void parallel_for(unsigned long n, unsigned long grain, void (*fn)(unsigned long, unsigned long));
}

namespace spectra::fixture {

// A comment may say std::thread without tripping the rule.
const char* kDoc = "do not use std::thread directly";

void spawn_worker() {
  spectra::parallel_for(128, 16, [](unsigned long, unsigned long) {});
}

}  // namespace spectra::fixture
