// Clean twin of layering_bad.cpp: every cross-module edge points strictly
// down the DAG, same-module and non-module includes are ignored.
// Linted as-if at src/serve/fixture.cpp.

#include <vector>

#include "core/trainer.h"      // serve(7) -> core(5): down the DAG
#include "obs/metrics.h"       // serve(7) -> obs(1): down the DAG
#include "serve/protocol.h"    // same module
#include "util/thread_pool.h"  // serve(7) -> pool(2) via the file override
#include "generated/build_stamp.h"  // non-module path: out of scope

namespace spectra::fixture {

void poke();

}  // namespace spectra::fixture
