// Clean twin of floatmix_bad.cpp: the kernel accumulates in float; the
// only precision crossing is an explicit static_cast<double> at the
// observability boundary.

namespace spectra::nn::fixture {

float dot(const float* a, const float* b, long n) {
  float acc = 0.0f;
  for (long i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// Crossing the precision boundary via an explicit cast is allowed.
long scaled_micro(float value) {
  return static_cast<long>(static_cast<double>(value) * 1e6);
}

}  // namespace spectra::nn::fixture
