// Gradient correctness for the autograd engine and every operator:
// analytic gradients from backward() are compared against central finite
// differences on small random inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/autograd.h"
#include "nn/conv.h"
#include "nn/ops.h"
#include "util/error.h"
#include "util/rng.h"

namespace spectra::nn {
namespace {

using Builder = std::function<Var(const std::vector<Var>&)>;

Tensor random_tensor(Shape shape, Rng& rng, float scale = 1.0f) {
  Tensor t(std::move(shape));
  for (long i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
  return t;
}

// Verify d(out)/d(inputs) against central differences for every element.
void check_gradients(const Builder& build, std::vector<Tensor> initial, float eps = 1e-2f,
                     float tol = 2e-2f) {
  // Analytic pass.
  std::vector<Var> leaves;
  leaves.reserve(initial.size());
  for (const Tensor& t : initial) leaves.push_back(Var::leaf(t));
  Var out = build(leaves);
  ASSERT_EQ(out.value().numel(), 1) << "gradient check requires scalar output";
  out.backward();

  for (std::size_t k = 0; k < initial.size(); ++k) {
    for (long i = 0; i < initial[k].numel(); ++i) {
      auto eval = [&](float delta) {
        std::vector<Var> probe;
        for (std::size_t j = 0; j < initial.size(); ++j) {
          Tensor t = initial[j];
          if (j == k) t[i] += delta;
          probe.push_back(Var::constant(std::move(t)));
        }
        // Constants produce no graph; re-wrap the probed input as leaf so
        // the op tree is still constructible.
        probe[k] = Var::leaf(probe[k].value());
        return build(probe).value()[0];
      };
      const float numeric = (eval(eps) - eval(-eps)) / (2.0f * eps);
      const float analytic = leaves[k].grad()[i];
      const float scale = std::max({1.0f, std::fabs(numeric), std::fabs(analytic)});
      EXPECT_NEAR(analytic, numeric, tol * scale)
          << "input " << k << " element " << i;
    }
  }
}

TEST(AutogradTest, LeafAndConstantFlags) {
  Var leaf = Var::leaf(Tensor::scalar(1.0f));
  Var constant = Var::constant(Tensor::scalar(1.0f));
  EXPECT_TRUE(leaf.requires_grad());
  EXPECT_FALSE(constant.requires_grad());
  EXPECT_FALSE(Var().defined());
}

TEST(AutogradTest, BackwardRequiresScalar) {
  Var v = Var::leaf(Tensor({2}, {1, 2}));
  EXPECT_THROW(v.backward(), spectra::Error);
}

TEST(AutogradTest, SimpleChainRule) {
  // f(x) = sum(3 * x) => df/dx = 3.
  Var x = Var::leaf(Tensor({4}, {1, 2, 3, 4}));
  Var y = sum(mul_scalar(x, 3.0f));
  y.backward();
  for (long i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 3.0f);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // f(x) = sum(x*x + x) through two paths sharing x.
  Var x = Var::leaf(Tensor({3}, {1, 2, 3}));
  Var y = sum(add(mul(x, x), x));
  y.backward();
  for (long i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(x.grad()[i], 2.0f * x.value()[i] + 1.0f);
  }
}

TEST(AutogradTest, ZeroGradClears) {
  Var x = Var::leaf(Tensor::scalar(2.0f));
  Var y = mul(x, x);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(AutogradTest, InferenceGuardDropsGraph) {
  Var x = Var::leaf(Tensor::scalar(3.0f));
  {
    InferenceGuard guard;
    EXPECT_TRUE(InferenceGuard::active());
    Var y = mul(x, x);
    EXPECT_FALSE(y.requires_grad());
    EXPECT_FLOAT_EQ(y.value()[0], 9.0f);
  }
  EXPECT_FALSE(InferenceGuard::active());
}

TEST(AutogradTest, DeepChainDoesNotOverflow) {
  // 5000 chained ops exercise the iterative topological sort.
  Var x = Var::leaf(Tensor::scalar(1.0f));
  Var y = x;
  for (int i = 0; i < 5000; ++i) y = add_scalar(y, 0.001f);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
  EXPECT_NEAR(y.value()[0], 6.0f, 1e-2);
}

// ---- finite-difference checks per operator ----

TEST(GradCheck, AddSubMulDiv) {
  Rng rng(1);
  Tensor a = random_tensor({2, 3}, rng);
  Tensor b = random_tensor({2, 3}, rng);
  for (long i = 0; i < b.numel(); ++i) b[i] += (b[i] >= 0 ? 2.0f : -2.0f);  // keep away from 0
  check_gradients([](const std::vector<Var>& in) { return sum(add(in[0], in[1])); }, {a, b});
  check_gradients([](const std::vector<Var>& in) { return sum(sub(in[0], in[1])); }, {a, b});
  check_gradients([](const std::vector<Var>& in) { return sum(mul(in[0], in[1])); }, {a, b});
  check_gradients([](const std::vector<Var>& in) { return sum(divide(in[0], in[1])); }, {a, b});
}

TEST(GradCheck, ScalarOps) {
  Rng rng(2);
  Tensor a = random_tensor({5}, rng);
  check_gradients([](const std::vector<Var>& in) { return sum(add_scalar(in[0], 1.5f)); }, {a});
  check_gradients([](const std::vector<Var>& in) { return sum(mul_scalar(in[0], -2.5f)); }, {a});
  check_gradients([](const std::vector<Var>& in) { return sum(neg(in[0])); }, {a});
}

TEST(GradCheck, SmoothUnaries) {
  Rng rng(3);
  Tensor a = random_tensor({6}, rng);
  check_gradients([](const std::vector<Var>& in) { return sum(vtanh(in[0])); }, {a});
  check_gradients([](const std::vector<Var>& in) { return sum(sigmoid(in[0])); }, {a});
  check_gradients([](const std::vector<Var>& in) { return sum(vexp(in[0])); }, {a});
  check_gradients([](const std::vector<Var>& in) { return sum(softplus(in[0])); }, {a});
}

TEST(GradCheck, LogPositiveInputs) {
  Tensor a({4}, {0.5f, 1.0f, 2.0f, 3.0f});
  check_gradients([](const std::vector<Var>& in) { return sum(vlog(in[0])); }, {a});
}

TEST(GradCheck, PiecewiseUnariesAwayFromKink) {
  // relu/leaky/abs gradients checked at points far from the kink.
  Tensor a({4}, {-2.0f, -0.7f, 0.8f, 1.5f});
  check_gradients([](const std::vector<Var>& in) { return sum(relu(in[0])); }, {a}, 1e-2f);
  check_gradients([](const std::vector<Var>& in) { return sum(leaky_relu(in[0])); }, {a}, 1e-2f);
  check_gradients([](const std::vector<Var>& in) { return sum(vabs(in[0])); }, {a}, 1e-2f);
}

TEST(GradCheck, Reductions) {
  Rng rng(4);
  Tensor a = random_tensor({3, 3}, rng);
  check_gradients([](const std::vector<Var>& in) { return mean(mul(in[0], in[0])); }, {a});
}

TEST(GradCheck, ReshapeTransposeSliceSelect) {
  Rng rng(5);
  Tensor a = random_tensor({3, 4}, rng);
  check_gradients(
      [](const std::vector<Var>& in) {
        Var r = reshape(in[0], {4, 3});
        return sum(mul(r, r));
      },
      {a});
  check_gradients(
      [](const std::vector<Var>& in) {
        Var t = transpose01(in[0]);
        return sum(mul(t, t));
      },
      {a});
  check_gradients(
      [](const std::vector<Var>& in) {
        Var s = slice_axis(in[0], 1, 1, 2);
        return sum(mul(s, s));
      },
      {a});
  check_gradients(
      [](const std::vector<Var>& in) {
        Var s = select0(in[0], 2);
        return sum(mul(s, s));
      },
      {a});
}

TEST(GradCheck, StackAndConcat) {
  Rng rng(6);
  Tensor a = random_tensor({2, 3}, rng);
  Tensor b = random_tensor({2, 3}, rng);
  check_gradients(
      [](const std::vector<Var>& in) {
        Var s = stack0({in[0], in[1]});
        return sum(mul(s, s));
      },
      {a, b});
  check_gradients(
      [](const std::vector<Var>& in) {
        Var c = concat_axis({in[0], in[1]}, 1);
        return sum(mul(c, c));
      },
      {a, b});
  check_gradients(
      [](const std::vector<Var>& in) {
        Var c = concat_axis({in[0], in[1]}, 0);
        return sum(mul(c, c));
      },
      {a, b});
}

TEST(GradCheck, MatmulAndLinear) {
  Rng rng(7);
  Tensor a = random_tensor({3, 4}, rng);
  Tensor b = random_tensor({4, 2}, rng);
  Tensor bias = random_tensor({2}, rng);
  check_gradients(
      [](const std::vector<Var>& in) {
        Var y = matmul(in[0], in[1]);
        return sum(mul(y, y));
      },
      {a, b});
  check_gradients(
      [](const std::vector<Var>& in) {
        Var y = linear(in[0], in[1], in[2]);
        return sum(mul(y, y));
      },
      {a, b, bias});
}

TEST(GradCheck, Losses) {
  Rng rng(8);
  Tensor pred = random_tensor({2, 3}, rng);
  Tensor target = random_tensor({2, 3}, rng);
  check_gradients([&](const std::vector<Var>& in) { return mse_loss(in[0], Var::constant(target)); },
                  {pred});
  // L1 away from zero-difference kinks.
  Tensor far_target = target;
  for (long i = 0; i < far_target.numel(); ++i) far_target[i] += 3.0f;
  check_gradients(
      [&](const std::vector<Var>& in) { return l1_loss(in[0], Var::constant(far_target)); },
      {pred});
  Tensor labels({2, 3});
  for (long i = 0; i < labels.numel(); ++i) labels[i] = (i % 2 == 0) ? 1.0f : 0.0f;
  check_gradients(
      [&](const std::vector<Var>& in) { return bce_with_logits(in[0], Var::constant(labels)); },
      {pred});
}

TEST(GradCheck, Conv2d) {
  Rng rng(9);
  Tensor x = random_tensor({2, 3, 5, 4}, rng);
  Tensor w = random_tensor({4, 3, 3, 3}, rng, 0.5f);
  Tensor b = random_tensor({4}, rng, 0.5f);
  check_gradients(
      [](const std::vector<Var>& in) {
        Var y = conv2d(in[0], in[1], in[2], Conv2dSpec{.stride = 1, .padding = 1});
        return mean(mul(y, y));
      },
      {x, w, b}, 1e-2f, 3e-2f);
}

TEST(GradCheck, Conv2dStride2) {
  Rng rng(10);
  Tensor x = random_tensor({1, 2, 6, 6}, rng);
  Tensor w = random_tensor({3, 2, 3, 3}, rng, 0.5f);
  Tensor b = random_tensor({3}, rng, 0.5f);
  check_gradients(
      [](const std::vector<Var>& in) {
        Var y = conv2d(in[0], in[1], in[2], Conv2dSpec{.stride = 2, .padding = 1});
        return mean(mul(y, y));
      },
      {x, w, b}, 1e-2f, 3e-2f);
}

TEST(OpsShapeTest, Conv2dGeometry) {
  EXPECT_EQ(conv2d_out_extent(8, 3, 2, 1), 4);
  EXPECT_EQ(conv2d_out_extent(8, 3, 1, 1), 8);
  EXPECT_EQ(conv2d_out_extent(4, 1, 1, 0), 4);
  EXPECT_THROW(conv2d_out_extent(2, 5, 1, 0), spectra::Error);
}

TEST(OpsShapeTest, MismatchesThrow) {
  Var a = Var::leaf(Tensor({2, 2}));
  Var b = Var::leaf(Tensor({3, 2}));
  EXPECT_THROW(add(a, b), spectra::Error);
  EXPECT_THROW(matmul(a, b), spectra::Error);
  EXPECT_THROW(slice_axis(a, 1, 1, 3), spectra::Error);
  EXPECT_THROW(concat_axis({a, b}, 1), spectra::Error);
}

TEST(OpsValueTest, BceMatchesManual) {
  // BCE(sigmoid(z), t) at z=0, t=1 is log(2).
  Var z = Var::leaf(Tensor({1}, {0.0f}));
  Var loss = bce_with_logits_const(z, 1.0f);
  EXPECT_NEAR(loss.value()[0], std::log(2.0f), 1e-5);
}

TEST(OpsValueTest, SigmoidStableAtExtremes) {
  Var z = Var::constant(Tensor({2}, {100.0f, -100.0f}));
  Var s = sigmoid(z);
  EXPECT_NEAR(s.value()[0], 1.0f, 1e-6);
  EXPECT_NEAR(s.value()[1], 0.0f, 1e-6);
  EXPECT_FALSE(s.value().has_nonfinite());
}

}  // namespace
}  // namespace spectra::nn
