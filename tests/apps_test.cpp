#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/population.h"
#include "apps/power.h"
#include "apps/vran.h"
#include "util/error.h"
#include "util/rng.h"

namespace spectra::apps {
namespace {

TEST(PowerModelTest, Table6ParameterFormula) {
  // P(t) = N_trx (P0 + Δp Pmax ρ); macro at full load.
  const BsPowerParams macro = macro_bs_params();
  EXPECT_DOUBLE_EQ(bs_power(macro, 0.0), 6.0 * 84.0);
  EXPECT_DOUBLE_EQ(bs_power(macro, 1.0), 6.0 * (84.0 + 2.8 * 20.0));
  const BsPowerParams micro = micro_bs_params();
  EXPECT_DOUBLE_EQ(bs_power(micro, 0.5), 2.0 * (56.0 + 2.6 * 6.3 * 0.5));
}

TEST(PowerModelTest, LoadClamped) {
  const BsPowerParams micro = micro_bs_params();
  EXPECT_DOUBLE_EQ(bs_power(micro, 2.0), bs_power(micro, 1.0));
  EXPECT_DOUBLE_EQ(bs_power(micro, -1.0), bs_power(micro, 0.0));
}

TEST(SleepingTest, ZeroTrafficSleepsEverything) {
  geo::CityTensor zero(10, 5, 5);
  const SleepingResult result = simulate_bs_sleeping(zero, zero, 0.37, 5);
  EXPECT_DOUBLE_EQ(result.sleep_fraction, 1.0);
  EXPECT_GT(result.savings_fraction, 0.5);  // all micro static power saved
}

TEST(SleepingTest, FullLoadNeverSleeps) {
  geo::CityTensor full(10, 5, 5);
  for (double& v : full.values()) v = 1.0;
  const SleepingResult result = simulate_bs_sleeping(full, full, 0.37, 5);
  EXPECT_DOUBLE_EQ(result.sleep_fraction, 0.0);
  EXPECT_NEAR(result.savings_fraction, 0.0, 1e-9);
}

TEST(SleepingTest, DiurnalTrafficSavesInPaperRange) {
  // Night hours idle, day hours busy, heavy-tailed spatial amplitudes —
  // savings should land in the 30-70% band around the paper's 47-62%.
  geo::CityTensor traffic(48, 10, 10);
  Rng rng(1);
  for (long t = 0; t < 48; ++t) {
    const double diurnal = 0.5 + 0.5 * std::cos(2.0 * M_PI * (static_cast<double>(t) - 14.0) / 24.0);
    for (long p = 0; p < 100; ++p) {
      const double amp = rng.uniform(0.05, 1.0);
      traffic[t * 100 + p] = amp * diurnal;
    }
  }
  const SleepingResult result = simulate_bs_sleeping(traffic, traffic, 0.37, 5);
  EXPECT_GT(result.savings_fraction, 0.30);
  EXPECT_LT(result.savings_fraction, 0.75);
  EXPECT_GT(result.sleep_fraction, 0.3);
}

TEST(SleepingTest, DecisionAndActualCanDiffer) {
  geo::CityTensor actual(5, 5, 5);
  for (double& v : actual.values()) v = 1.0;  // network actually busy
  geo::CityTensor decision(5, 5, 5);          // decision data says idle
  const SleepingResult result = simulate_bs_sleeping(decision, actual, 0.37, 5);
  // Everything sleeps (bad decision) and macros absorb real load.
  EXPECT_DOUBLE_EQ(result.sleep_fraction, 1.0);
  geo::CityTensor wrong_shape(5, 4, 5);
  EXPECT_THROW(simulate_bs_sleeping(decision, wrong_shape), spectra::Error);
}

TEST(VranTest, PartitionCoversAllRusWithRequestedCus) {
  geo::GridMap load(8, 9);
  Rng rng(2);
  for (long p = 0; p < load.size(); ++p) load[p] = rng.uniform(0, 1);
  const long cus = 4;
  const std::vector<long> assignment = partition_rus(load, cus);
  ASSERT_EQ(assignment.size(), 72u);
  std::set<long> used(assignment.begin(), assignment.end());
  EXPECT_EQ(used.size(), static_cast<std::size_t>(cus));
  for (long a : assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, cus);
  }
}

TEST(VranTest, UniformLoadIsNearlyBalanced) {
  geo::GridMap load(10, 10);
  for (long p = 0; p < 100; ++p) load[p] = 1.0;
  const std::vector<long> assignment = partition_rus(load, 4);
  const std::vector<double> loads = cu_loads(load, assignment, 4);
  const double jain =
      (loads[0] + loads[1] + loads[2] + loads[3]) * (loads[0] + loads[1] + loads[2] + loads[3]) /
      (4.0 * (loads[0] * loads[0] + loads[1] * loads[1] + loads[2] * loads[2] + loads[3] * loads[3]));
  EXPECT_GT(jain, 0.95);
}

TEST(VranTest, SkewedLoadStillReasonablyFair) {
  geo::GridMap load(12, 12);
  Rng rng(3);
  for (long i = 0; i < 12; ++i) {
    for (long j = 0; j < 12; ++j) {
      // Hotspot at the center.
      const double fi = static_cast<double>(i), fj = static_cast<double>(j);
      const double d2 = (fi - 6.0) * (fi - 6.0) + (fj - 6.0) * (fj - 6.0);
      load.at(i, j) = std::exp(-d2 / 18.0) + 0.05 * rng.uniform(0, 1);
    }
  }
  const std::vector<long> assignment = partition_rus(load, 6);
  const std::vector<double> loads = cu_loads(load, assignment, 6);
  double sum = 0.0, sum_sq = 0.0;
  for (double l : loads) {
    sum += l;
    sum_sq += l * l;
  }
  EXPECT_GT(sum * sum / (6.0 * sum_sq), 0.75);
}

TEST(VranTest, SingleCuDegenerateCase) {
  geo::GridMap load(4, 4);
  for (long p = 0; p < 16; ++p) load[p] = 1.0;
  const std::vector<long> assignment = partition_rus(load, 1);
  for (long a : assignment) EXPECT_EQ(a, 0);
  EXPECT_EQ(cut_edges(assignment, 4, 4), 0);
}

TEST(VranTest, CutEdgesCountsBoundaries) {
  // Two vertical halves of a 2x4 grid: 2 cut edges.
  const std::vector<long> assignment = {0, 0, 1, 1, 0, 0, 1, 1};
  EXPECT_EQ(cut_edges(assignment, 2, 4), 2);
}

TEST(VranTest, EvaluateProducesBoundedJain) {
  geo::CityTensor planning(30, 8, 8);
  geo::CityTensor evaluation(30, 8, 8);
  Rng rng(4);
  for (double& v : planning.values()) v = rng.uniform(0.1, 1.0);
  for (double& v : evaluation.values()) v = rng.uniform(0.1, 1.0);
  const VranComparison result = evaluate_vran(planning, evaluation, 4, 0, 0, 24);
  EXPECT_GT(result.mean_jain, 0.5);
  EXPECT_LE(result.mean_jain, 1.0);
  EXPECT_GE(result.std_jain, 0.0);
  EXPECT_THROW(evaluate_vran(planning, evaluation, 4, 20, 0, 24), spectra::Error);
}

TEST(VranTest, PlanningWithOwnDataScoresHigher) {
  // Self-planned associations should be at least as fair as associations
  // planned from unrelated data.
  geo::CityTensor a(24, 8, 8);
  geo::CityTensor unrelated(24, 8, 8);
  Rng rng(5);
  for (double& v : a.values()) v = rng.uniform(0.1, 1.0);
  for (double& v : unrelated.values()) v = rng.uniform(0.1, 1.0);
  const double self_score = evaluate_vran(a, a, 6, 0, 0, 24).mean_jain;
  const double cross_score = evaluate_vran(unrelated, a, 6, 0, 0, 24).mean_jain;
  EXPECT_GE(self_score + 1e-9, cross_score);
}

TEST(PopulationTest, Eq8ExactValue) {
  PopulationModelParams params = default_population_params();
  geo::GridMap traffic(1, 1, {0.5});
  const long hour = 12;
  const geo::GridMap pop = estimate_population(traffic, hour, params);
  const double lambda = params.activity_by_hour[12];
  const double expected =
      std::exp(params.k1 * lambda + params.k2) * std::pow(0.5, params.k3 * lambda + params.k4);
  EXPECT_NEAR(pop[0], expected, 1e-9);
}

TEST(PopulationTest, ZeroTrafficZeroPopulation) {
  PopulationModelParams params = default_population_params();
  geo::GridMap traffic(2, 2);
  const geo::GridMap pop = estimate_population(traffic, 3, params);
  EXPECT_DOUBLE_EQ(pop.sum(), 0.0);
}

TEST(PopulationTest, ActivityCurveValidation) {
  PopulationModelParams params = default_population_params();
  EXPECT_EQ(params.activity_by_hour.size(), 24u);
  geo::GridMap traffic(1, 1, {0.5});
  EXPECT_THROW(estimate_population(traffic, 24, params), spectra::Error);
  params.activity_by_hour.resize(10);
  EXPECT_THROW(estimate_population(traffic, 0, params), spectra::Error);
}

TEST(PopulationTest, IdenticalTrafficGivesSaturatedPsnr) {
  geo::CityTensor traffic(24, 5, 5);
  Rng rng(6);
  for (double& v : traffic.values()) v = rng.uniform(0.01, 1.0);
  const TrackingComparison result =
      compare_population_tracking(traffic, traffic, 24, 1, default_population_params());
  EXPECT_DOUBLE_EQ(result.mean_psnr, 300.0);
  EXPECT_DOUBLE_EQ(result.std_psnr, 0.0);
}

TEST(PopulationTest, NoisierSyntheticLowersPsnr) {
  geo::CityTensor real(24, 6, 6);
  Rng rng(7);
  for (double& v : real.values()) v = rng.uniform(0.1, 1.0);
  geo::CityTensor close = real;
  geo::CityTensor far = real;
  Rng noise(8);
  for (double& v : close.values()) v = std::max(0.0, v + noise.normal(0.0, 0.01));
  for (double& v : far.values()) v = std::max(0.0, v + noise.normal(0.0, 0.3));
  const auto params = default_population_params();
  const double psnr_close = compare_population_tracking(real, close, 24, 1, params).mean_psnr;
  const double psnr_far = compare_population_tracking(real, far, 24, 1, params).mean_psnr;
  EXPECT_GT(psnr_close, psnr_far);
  EXPECT_GT(psnr_close, 20.0);
}

class CuCountTest : public testing::TestWithParam<long> {};

TEST_P(CuCountTest, PartitionHandlesPaperCuCounts) {
  const long cus = GetParam();  // Table 7: 4, 6, 8
  geo::GridMap load(14, 14);
  Rng rng(static_cast<std::uint64_t>(cus));
  for (long p = 0; p < load.size(); ++p) load[p] = rng.uniform(0.0, 1.0);
  const std::vector<long> assignment = partition_rus(load, cus);
  std::set<long> used(assignment.begin(), assignment.end());
  EXPECT_EQ(used.size(), static_cast<std::size_t>(cus));
  const std::vector<double> loads = cu_loads(load, assignment, cus);
  double sum = 0.0, sum_sq = 0.0;
  for (double l : loads) {
    sum += l;
    sum_sq += l * l;
  }
  EXPECT_GT(sum * sum / (static_cast<double>(cus) * sum_sq), 0.8);
}

INSTANTIATE_TEST_SUITE_P(PaperCuCounts, CuCountTest, testing::Values(4L, 6L, 8L));

}  // namespace
}  // namespace spectra::apps
