// Serving-layer tests (DESIGN §6g): queue backpressure, cooperative
// cancellation, failure isolation, the wire protocol, the daemon loop's
// corrupt-request tolerance, and the determinism contract — a
// (seed, context, T) request returns bitwise-identical rows whether it
// is served alone, among 8 concurrent clients, or computed directly
// with generate_city.

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#include "core/config.h"
#include "core/trainer.h"
#include "geo/strip_accumulator.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/weights_registry.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace spectra::serve {
namespace {

core::SpectraGanConfig tiny_config() {
  core::SpectraGanConfig config;
  config.train_steps = 24;
  config.spectrum_bins = 8;
  config.hidden_channels = 6;
  config.encoder_mid_channels = 8;
  config.spectrum_mid_channels = 8;
  config.lstm_hidden = 8;
  config.cond_dim = 8;
  config.disc_mlp_hidden = 8;
  config.noise_channels = 2;
  return config;
}

constexpr long kGrid = 12;

std::shared_ptr<const core::SpectraGan> tiny_model() {
  static std::shared_ptr<const core::SpectraGan> model =
      std::make_shared<const core::SpectraGan>(tiny_config(), /*seed=*/12);
  return model;
}

geo::ContextTensor tiny_context(long channels) {
  geo::ContextTensor context(channels, kGrid, kGrid);
  Rng rng(99);
  for (double& v : context.values()) v = rng.uniform(0, 1);
  return context;
}

Request tiny_request(std::uint64_t seed) {
  Request request;
  request.seed = seed;
  request.steps = tiny_config().train_steps;
  request.context = tiny_context(tiny_config().context_channels);
  return request;
}

geo::CityTensor direct_city(std::uint64_t seed) {
  Rng rng(seed);
  return tiny_model()->generate_city(tiny_context(tiny_config().context_channels),
                                     tiny_config().train_steps, rng);
}

// A sink whose first row blocks until open() — pins a request inside
// the worker so tests can fill the queue or cancel mid-stream
// deterministically.
class GateSink : public geo::RowSink {
 public:
  void consume_row(long, const std::vector<double>&) override {
    std::unique_lock lock(mutex_);
    ++rows_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
  }
  void open() {
    std::lock_guard lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }
  void wait_first_row() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return rows_ > 0; });
  }
  long rows() {
    std::lock_guard lock(mutex_);
    return rows_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
  long rows_ = 0;
};

// --- backpressure -----------------------------------------------------------

TEST(ServeQueueTest, RejectsWhenFullAndParksWhenBlocking) {
  obs::Counter& rejected = obs::Registry::instance().counter("serve.requests_rejected");
  const std::uint64_t rejected_before = rejected.value();

  ServerOptions options;
  options.workers = 1;
  options.queue_limit = 1;
  Server server(tiny_model(), options);

  // Pin the single worker inside a request...
  GateSink gate;
  RequestHandle running = server.submit(tiny_request(1), gate);
  gate.wait_first_row();
  // ...fill the one queue slot...
  geo::CityTensorSink queued_sink(tiny_config().train_steps, kGrid, kGrid);
  RequestHandle queued = server.submit(tiny_request(2), queued_sink);
  // ...and the queue is full: kReject throws the typed error.
  geo::CityTensorSink reject_sink(tiny_config().train_steps, kGrid, kGrid);
  EXPECT_THROW(server.submit(tiny_request(3), reject_sink, Server::OnFull::kReject),
               QueueFullError);
  EXPECT_EQ(rejected.value(), rejected_before + 1);

  // kBlock parks instead: the submit only returns once the worker frees
  // a slot, and the request then completes normally.
  geo::CityTensorSink parked_sink(tiny_config().train_steps, kGrid, kGrid);
  ThreadPool client(1);
  RequestState parked_state = RequestState::kFailed;  // published by future.get()
  std::future<void> parked = client.submit([&] {
    parked_state = server.submit(tiny_request(4), parked_sink, Server::OnFull::kBlock).wait();
  });
  gate.open();
  parked.get();
  EXPECT_EQ(parked_state, RequestState::kDone);
  EXPECT_EQ(running.wait(), RequestState::kDone);
  EXPECT_EQ(queued.wait(), RequestState::kDone);
  EXPECT_EQ(parked_sink.take().values(), direct_city(4).values());
}

// --- cancellation -----------------------------------------------------------

TEST(ServeCancelTest, CancelMidStreamStopsRowDelivery) {
  obs::Counter& cancelled = obs::Registry::instance().counter("serve.requests_cancelled");
  const std::uint64_t cancelled_before = cancelled.value();

  ServerOptions options;
  options.workers = 1;
  options.queue_limit = 4;
  Server server(tiny_model(), options);

  GateSink gate;
  RequestHandle handle = server.submit(tiny_request(5), gate);
  gate.wait_first_row();  // exactly one row delivered, worker pinned
  handle.cancel();
  gate.open();
  EXPECT_EQ(handle.wait(), RequestState::kCancelled);
  // The cancel flag is checked before every delivery: after cancel() no
  // further rows reached the sink.
  EXPECT_EQ(gate.rows(), 1);
  EXPECT_EQ(handle.rows_streamed(), 1);
  EXPECT_EQ(cancelled.value(), cancelled_before + 1);

  // The worker survives a cancellation and keeps serving.
  geo::CityTensorSink sink(tiny_config().train_steps, kGrid, kGrid);
  EXPECT_EQ(server.submit(tiny_request(6), sink).wait(), RequestState::kDone);
}

// --- failure isolation ------------------------------------------------------

TEST(ServeFailureTest, BadRequestFailsWithoutKillingServer) {
  obs::Counter& failed = obs::Registry::instance().counter("serve.requests_failed");
  const std::uint64_t failed_before = failed.value();

  ServerOptions options;
  options.workers = 2;
  options.queue_limit = 4;
  Server server(tiny_model(), options);

  // Wrong channel count: the model's precondition check throws inside
  // the worker; the request fails, the server does not.
  Request bad;
  bad.seed = 7;
  bad.steps = tiny_config().train_steps;
  bad.context = tiny_context(/*channels=*/1);
  geo::CityTensorSink bad_sink(tiny_config().train_steps, kGrid, kGrid);
  RequestHandle handle = server.submit(std::move(bad), bad_sink);
  EXPECT_EQ(handle.wait(), RequestState::kFailed);
  EXPECT_FALSE(handle.error().empty());
  EXPECT_EQ(failed.value(), failed_before + 1);

  geo::CityTensorSink sink(tiny_config().train_steps, kGrid, kGrid);
  RequestHandle ok = server.submit(tiny_request(8), sink);
  EXPECT_EQ(ok.wait(), RequestState::kDone);
  EXPECT_EQ(sink.take().values(), direct_city(8).values());
}

// --- determinism ------------------------------------------------------------

// The load-bearing contract: 8 concurrent clients and 1 sequential
// client produce bitwise-identical rows, both equal to direct
// generation. Runs under TSan in CI, where it doubles as the data-race
// proof for the shared model + per-request workspaces.
TEST(ServeDeterminismTest, OneVsEightClientsBitwiseIdentical) {
  constexpr long kClients = 8;
  std::vector<geo::CityTensor> reference;
  for (long c = 0; c < kClients; ++c) {
    reference.push_back(direct_city(100 + static_cast<std::uint64_t>(c)));
  }

  // 8 concurrent in-flight requests on 8 workers.
  std::vector<std::vector<double>> concurrent(kClients);
  {
    ServerOptions options;
    options.workers = kClients;
    options.queue_limit = kClients;
    Server server(tiny_model(), options);
    std::vector<std::unique_ptr<geo::CityTensorSink>> sinks;
    std::vector<RequestHandle> handles;
    for (long c = 0; c < kClients; ++c) {
      sinks.push_back(std::make_unique<geo::CityTensorSink>(tiny_config().train_steps, kGrid,
                                                            kGrid));
      handles.push_back(server.submit(tiny_request(100 + static_cast<std::uint64_t>(c)),
                                      *sinks.back(), Server::OnFull::kBlock));
    }
    for (long c = 0; c < kClients; ++c) {
      ASSERT_EQ(handles[static_cast<std::size_t>(c)].wait(), RequestState::kDone);
      concurrent[static_cast<std::size_t>(c)] =
          sinks[static_cast<std::size_t>(c)]->take().values();
    }
  }

  // The same requests, one at a time on a single worker.
  std::vector<std::vector<double>> sequential(kClients);
  {
    ServerOptions options;
    options.workers = 1;
    options.queue_limit = 1;
    Server server(tiny_model(), options);
    for (long c = 0; c < kClients; ++c) {
      geo::CityTensorSink sink(tiny_config().train_steps, kGrid, kGrid);
      ASSERT_EQ(
          server.submit(tiny_request(100 + static_cast<std::uint64_t>(c)), sink).wait(),
          RequestState::kDone);
      sequential[static_cast<std::size_t>(c)] = sink.take().values();
    }
  }

  for (long c = 0; c < kClients; ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    EXPECT_EQ(concurrent[i], reference[i].values()) << "client " << c << " (concurrent)";
    EXPECT_EQ(sequential[i], reference[i].values()) << "client " << c << " (sequential)";
  }
}

// --- weights registry -------------------------------------------------------

TEST(WeightsRegistryTest, SharesOneInstancePerKey) {
  WeightsRegistry registry;
  auto a = registry.get_or_load(tiny_config(), "", 12);
  auto b = registry.get_or_load(tiny_config(), "", 12);
  EXPECT_EQ(a.get(), b.get());
  auto c = registry.get_or_load(tiny_config(), "", 13);
  EXPECT_NE(a.get(), c.get());
  EXPECT_THROW(registry.get_or_load(tiny_config(), "/nonexistent/ckpt-dir", 12),
               spectra::Error);
}

// --- wire protocol ----------------------------------------------------------

TEST(ServeProtocolTest, RequestRoundTripsBitwise) {
  WireRequest request;
  request.id = 42;
  request.seed = 4711;
  request.steps = 24;
  request.channels = 3;
  request.height = 5;
  request.width = 7;
  request.aggregation = geo::OverlapAggregation::kMedian;
  Rng rng(3);
  request.context.resize(3 * 5 * 7);
  for (double& v : request.context) v = rng.uniform(-1, 1);

  const WireRequest back = decode_request(encode_request(request));
  EXPECT_EQ(back.id, request.id);
  EXPECT_EQ(back.seed, request.seed);
  EXPECT_EQ(back.steps, request.steps);
  EXPECT_EQ(back.channels, request.channels);
  EXPECT_EQ(back.height, request.height);
  EXPECT_EQ(back.width, request.width);
  EXPECT_EQ(back.aggregation, request.aggregation);
  EXPECT_EQ(back.context, request.context);
}

TEST(ServeProtocolTest, MalformedPayloadsThrowTyped) {
  WireRequest request;
  request.id = 1;
  request.seed = 2;
  request.steps = 4;
  request.channels = 1;
  request.height = 2;
  request.width = 2;
  request.context.assign(4, 0.5);
  std::vector<std::uint8_t> good = encode_request(request);

  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xFFu;
  EXPECT_THROW(decode_request(bad_magic), ProtocolError);

  std::vector<std::uint8_t> truncated = good;
  truncated.resize(truncated.size() - 8);  // context no longer matches shape
  EXPECT_THROW(decode_request(truncated), ProtocolError);

  EXPECT_THROW(decode_request(std::vector<std::uint8_t>{1, 2, 3}), ProtocolError);
  EXPECT_THROW(decode_row(good), ProtocolError);   // wrong frame type
  EXPECT_THROW(decode_done(good), ProtocolError);  // wrong frame type
}

// --- daemon loop ------------------------------------------------------------

// Drive daemon_loop in-process over tmpfile streams: two valid requests
// bracketing two corrupt ones. The corrupt frames are answered with
// SGER and the daemon keeps serving — both valid requests stream every
// row and the reassembled cities are bitwise equal to direct
// generation.
TEST(ServeDaemonTest, CorruptRequestsAnsweredWithoutDaemonDeath) {
  obs::Counter& proto_errors = obs::Registry::instance().counter("serve.protocol_errors");
  const std::uint64_t errors_before = proto_errors.value();

  const core::SpectraGanConfig config = tiny_config();
  auto make_wire = [&](std::uint64_t id, std::uint64_t seed) {
    WireRequest w;
    w.id = id;
    w.seed = seed;
    w.steps = config.train_steps;
    w.channels = config.context_channels;
    w.height = kGrid;
    w.width = kGrid;
    w.context = tiny_context(config.context_channels).values();
    return w;
  };

  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);

  write_frame(in, encode_request(make_wire(7, 200)));
  write_frame(in, std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF, 0x00});  // bad magic
  std::vector<std::uint8_t> torn_payload = encode_request(make_wire(8, 201));
  torn_payload.resize(torn_payload.size() - 16);  // context shorter than declared shape
  write_frame(in, torn_payload);
  write_frame(in, encode_request(make_wire(9, 202)));
  std::rewind(in);

  ServerOptions options;
  options.workers = 2;
  options.queue_limit = 4;
  Server server(tiny_model(), options);
  const DaemonStats stats = daemon_loop(in, out, server);
  server.stop();

  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.protocol_errors, 2);
  EXPECT_EQ(proto_errors.value(), errors_before + 2);

  // Demultiplex the response stream.
  std::rewind(out);
  std::map<std::uint64_t, geo::CityTensorSink> cities;
  cities.emplace(7, geo::CityTensorSink(config.train_steps, kGrid, kGrid));
  cities.emplace(9, geo::CityTensorSink(config.train_steps, kGrid, kGrid));
  std::map<std::uint64_t, WireDone> done;
  long error_frames = 0;
  std::vector<std::uint8_t> payload;
  while (read_frame(out, payload)) {
    switch (frame_type(payload)) {
      case FrameType::kRow: {
        const WireRow row = decode_row(payload);
        ASSERT_TRUE(cities.contains(row.id)) << "row for unknown request " << row.id;
        cities.at(row.id).consume_row(row.row, row.values);
        break;
      }
      case FrameType::kDone: {
        const WireDone d = decode_done(payload);
        done.emplace(d.id, d);
        break;
      }
      case FrameType::kError:
        ++error_frames;
        break;
      default:
        FAIL() << "unexpected frame type from daemon";
    }
  }
  EXPECT_EQ(error_frames, 2);
  ASSERT_TRUE(done.contains(7));
  ASSERT_TRUE(done.contains(9));
  EXPECT_EQ(done.at(7).state, RequestState::kDone);
  EXPECT_EQ(done.at(9).state, RequestState::kDone);
  EXPECT_EQ(done.at(7).rows, kGrid);
  EXPECT_EQ(done.at(9).rows, kGrid);
  EXPECT_EQ(cities.at(7).take().values(), direct_city(200).values());
  EXPECT_EQ(cities.at(9).take().values(), direct_city(202).values());

  std::fclose(in);
  std::fclose(out);
}

// A torn stream (length prefix promising more bytes than exist) ends
// the session cleanly: an SGER frame, no crash, and requests already
// accepted still drain.
TEST(ServeDaemonTest, TornStreamEndsSessionCleanly) {
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);

  const std::uint32_t lying_length = 1000;
  ASSERT_EQ(std::fwrite(&lying_length, sizeof lying_length, 1, in), 1u);
  const std::uint8_t stub[4] = {1, 2, 3, 4};  // far fewer than promised
  ASSERT_EQ(std::fwrite(stub, 1, sizeof stub, in), sizeof stub);
  std::rewind(in);

  Server server(tiny_model(), ServerOptions{.workers = 1, .queue_limit = 1});
  const DaemonStats stats = daemon_loop(in, out, server);
  EXPECT_EQ(stats.requests, 0);
  EXPECT_EQ(stats.protocol_errors, 1);

  std::rewind(out);
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(read_frame(out, payload));
  EXPECT_EQ(frame_type(payload), FrameType::kError);
  EXPECT_FALSE(decode_error(payload).empty());
  EXPECT_FALSE(read_frame(out, payload));  // nothing after the SGER

  std::fclose(in);
  std::fclose(out);
}

}  // namespace
}  // namespace spectra::serve
