#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "eval/protocol.h"
#include "eval/report.h"
#include "util/error.h"

namespace spectra::eval {
namespace {

data::CountryDataset small_dataset() {
  data::DatasetConfig dc;
  dc.weeks = 6;
  return data::make_country2(dc);
}

EvalConfig small_eval() {
  EvalConfig config;
  config.train_steps = 48;
  config.generate_steps = 96;
  config.eval_offset = 48;
  config.autocorr_max_lag = 48;
  config.seed = 5;
  return config;
}

TEST(EvalConfigTest, GranularityScaling) {
  const EvalConfig hourly = default_eval_config(60);
  const EvalConfig quarter = default_eval_config(15);
  EXPECT_EQ(hourly.train_steps, 168);
  EXPECT_EQ(quarter.train_steps, 4 * 168);
  EXPECT_EQ(quarter.generate_steps, 4 * 504);
  EXPECT_THROW(default_eval_config(7), spectra::Error);
}

TEST(EvalTest, SelfComparisonIsNearOptimal) {
  const data::CountryDataset dataset = small_dataset();
  const EvalConfig config = small_eval();
  const data::City& city = dataset.cities[0];
  const geo::CityTensor self = city.traffic.slice_time(config.eval_offset, config.generate_steps);
  const MetricRow row = compute_metrics("self", city, self, config);
  EXPECT_NEAR(row.m_tv, 0.0, 1e-9);
  EXPECT_NEAR(row.ssim, 1.0, 1e-9);
  EXPECT_NEAR(row.ac_l1, 0.0, 1e-9);
  EXPECT_GT(row.tstr, 0.5);
  EXPECT_NEAR(row.fvd, 0.0, 1e-6);
}

TEST(EvalTest, DataReferenceRowIsStrong) {
  const data::CountryDataset dataset = small_dataset();
  const EvalConfig config = small_eval();
  const MetricRow row = data_reference_row(dataset.cities[1], config);
  EXPECT_EQ(row.method, "Data");
  EXPECT_LT(row.m_tv, 0.1);
  EXPECT_GT(row.ssim, 0.9);
}

TEST(EvalTest, FvdCanBeDisabled) {
  const data::CountryDataset dataset = small_dataset();
  EvalConfig config = small_eval();
  config.compute_fvd = false;
  const MetricRow row = data_reference_row(dataset.cities[0], config);
  EXPECT_TRUE(std::isnan(row.fvd));
}

TEST(EvalTest, AverageByMethod) {
  MetricRow a{"m1", "c1", 0.2, 0.8, 10.0, 0.9, 100.0};
  MetricRow b{"m1", "c2", 0.4, 0.6, 20.0, 0.7, 200.0};
  MetricRow c{"m2", "c1", 1.0, 0.1, 99.0, 0.0, 999.0};
  const std::vector<MetricRow> averaged = average_by_method({a, b, c});
  ASSERT_EQ(averaged.size(), 2u);
  EXPECT_EQ(averaged[0].method, "m1");
  EXPECT_NEAR(averaged[0].m_tv, 0.3, 1e-12);
  EXPECT_NEAR(averaged[0].ssim, 0.7, 1e-12);
  EXPECT_NEAR(averaged[1].ac_l1, 99.0, 1e-12);
}

TEST(EvalTest, CityTensorRoundTrip) {
  geo::CityTensor t(3, 4, 5);
  Rng rng(9);
  for (double& v : t.values()) v = rng.uniform(0, 1);
  const std::string path = testing::TempDir() + "/sg_city_tensor.sgt";
  save_city_tensor(path, t);
  const std::optional<geo::CityTensor> back = load_city_tensor(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->steps(), 3);
  EXPECT_EQ(back->width(), 5);
  EXPECT_EQ(back->values(), t.values());
  EXPECT_FALSE(load_city_tensor("/nonexistent.sgt").has_value());
}

TEST(EvalTest, GenerateForFoldUsesCache) {
  const data::CountryDataset dataset = small_dataset();
  EvalConfig config = small_eval();
  const std::string cache = testing::TempDir() + "/sg_cache_test";
  std::filesystem::remove_all(cache);
  config.cache_dir = cache;

  core::SpectraGanConfig base;
  base.iterations = 2;
  base.batch = 2;
  base.train_steps = config.train_steps;
  base.spectrum_bins = 8;
  base.hidden_channels = 6;
  base.encoder_mid_channels = 8;
  base.spectrum_mid_channels = 8;
  base.lstm_hidden = 8;
  base.cond_dim = 8;
  base.disc_mlp_hidden = 8;

  const data::Fold fold{0, {1, 2, 3}};
  const geo::CityTensor first = generate_for_fold("FDAS", base, dataset, fold, config);
  EXPECT_EQ(first.steps(), config.generate_steps);
  // Second call must come from cache and match bit-for-bit.
  const geo::CityTensor second = generate_for_fold("FDAS", base, dataset, fold, config);
  EXPECT_EQ(first.values(), second.values());
  std::filesystem::remove_all(cache);
}

TEST(ReportTest, MetricsTableLayout) {
  MetricRow row{"SpectraGAN", "CITY A", 0.0362, 0.787, 46.8, 0.893, 205.0};
  const CsvWriter with_fvd = metrics_table({row}, true);
  EXPECT_EQ(with_fvd.header().size(), 6u);
  const CsvWriter with_city = metrics_table({row}, false, true);
  EXPECT_EQ(with_city.header()[0], "City");
  EXPECT_EQ(with_city.rows()[0][0], "CITY A");
}

TEST(ReportTest, NanFvdRendersDash) {
  MetricRow row{"X", "c", 0.1, 0.5, 1.0, 0.5, std::nan("")};
  const CsvWriter table = metrics_table({row}, true);
  EXPECT_EQ(table.rows()[0].back(), "-");
}

TEST(ReportTest, AsciiMapDimensions) {
  geo::GridMap m(3, 5);
  m.at(1, 2) = 1.0;
  const std::string art = ascii_map(m);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
  EXPECT_NE(art.find('@'), std::string::npos);
}

TEST(ReportTest, PgmWriterProducesValidHeaderAndSize) {
  geo::GridMap m(3, 4);
  m.at(1, 2) = 1.0;
  const std::string path = testing::TempDir() + "/sg_map.pgm";
  ASSERT_TRUE(write_pgm(m, path));
  std::ifstream in(path, std::ios::binary);
  std::string magic, dims1, dims2, maxval;
  in >> magic >> dims1 >> dims2 >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(dims1, "4");
  EXPECT_EQ(dims2, "3");
  EXPECT_EQ(maxval, "255");
  in.get();  // single whitespace after header
  std::vector<unsigned char> pixels(12);
  in.read(reinterpret_cast<char*>(pixels.data()), 12);
  ASSERT_TRUE(static_cast<bool>(in));
  EXPECT_EQ(pixels[1 * 4 + 2], 255);  // the peak pixel
  EXPECT_EQ(pixels[0], 0);
  EXPECT_FALSE(write_pgm(m, "/nonexistent_dir/x.pgm"));
}

TEST(ReportTest, SeriesTables) {
  const CsvWriter single = series_table({1.0, 2.0}, "traffic");
  EXPECT_EQ(single.rows().size(), 2u);
  const CsvWriter multi = multi_series_table({"a", "b"}, {{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(multi.header().size(), 3u);
  EXPECT_EQ(multi.rows()[1][2], "4");
  EXPECT_THROW(multi_series_table({"a"}, {{1.0}, {2.0}}), spectra::Error);
}

}  // namespace
}  // namespace spectra::eval
