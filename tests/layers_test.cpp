#include <gtest/gtest.h>

#include <cmath>

#include "nn/init.h"
#include "nn/layers.h"
#include "nn/lstm.h"
#include "nn/optim.h"
#include "nn/serialize.h"
#include "util/error.h"

namespace spectra::nn {
namespace {

TEST(InitTest, XavierBounds) {
  Rng rng(1);
  Tensor t = init::xavier_uniform({10, 20}, 10, 20, rng);
  const double bound = std::sqrt(6.0 / 30.0);
  for (long i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(t[i]), bound + 1e-6);
  }
}

TEST(InitTest, HeNormalVariance) {
  Rng rng(2);
  Tensor t = init::he_normal({200, 50}, 200, rng);
  double sum_sq = 0.0;
  for (long i = 0; i < t.numel(); ++i) sum_sq += static_cast<double>(t[i]) * static_cast<double>(t[i]);
  EXPECT_NEAR(sum_sq / static_cast<double>(t.numel()), 2.0 / 200.0, 2e-3);
}

TEST(InitTest, Zeros) {
  Tensor t = init::zeros({4, 4});
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
}

TEST(LinearTest, ForwardShapeAndValue) {
  Rng rng(3);
  Linear layer(4, 3, rng);
  Var x = Var::constant(Tensor({2, 4}, {1, 0, 0, 0, 0, 1, 0, 0}));
  Var y = layer.forward(x);
  EXPECT_EQ(y.value().dim(0), 2);
  EXPECT_EQ(y.value().dim(1), 3);
  EXPECT_THROW(layer.forward(Var::constant(Tensor({2, 5}))), spectra::Error);
}

TEST(LinearTest, ParameterCount) {
  Rng rng(4);
  Linear layer(10, 7, rng);
  EXPECT_EQ(layer.parameter_count(), 10 * 7 + 7);
  EXPECT_EQ(layer.parameters().size(), 2u);
}

TEST(MlpTest, HiddenAndOutputActivations) {
  Rng rng(5);
  Mlp mlp({3, 8, 1}, Activation::kRelu, Activation::kSigmoid, rng);
  Var x = Var::constant(Tensor({4, 3}));
  Var y = mlp.forward(x);
  EXPECT_EQ(y.value().dim(1), 1);
  for (long i = 0; i < y.value().numel(); ++i) {
    EXPECT_GE(y.value()[i], 0.0f);
    EXPECT_LE(y.value()[i], 1.0f);
  }
}

TEST(ConvStackTest, PreservesSpatialWithPadding) {
  Rng rng(6);
  ConvStack stack({3, 8, 2}, 3, Conv2dSpec{.stride = 1, .padding = 1}, Activation::kLeakyRelu,
                  Activation::kNone, rng);
  Var x = Var::constant(Tensor({2, 3, 5, 7}));
  Var y = stack.forward(x);
  EXPECT_EQ(y.value().dim(1), 2);
  EXPECT_EQ(y.value().dim(2), 5);
  EXPECT_EQ(y.value().dim(3), 7);
}

TEST(LstmCellTest, StepShapesAndStateEvolution) {
  Rng rng(7);
  LSTMCell cell(5, 8, rng);
  LstmState state = cell.initial_state(3);
  EXPECT_EQ(state.h.value().dim(1), 8);
  Var x = Var::constant(init::gaussian({3, 5}, 1.0f, rng));
  LstmState next = cell.step(x, state);
  EXPECT_EQ(next.h.value().dim(0), 3);
  // Cell output bounded by tanh.
  for (long i = 0; i < next.h.value().numel(); ++i) {
    EXPECT_LE(std::fabs(next.h.value()[i]), 1.0f);
  }
}

TEST(LstmCellTest, ForgetBiasInitializedToOne) {
  Rng rng(8);
  LSTMCell cell(2, 4, rng);
  const std::vector<Var> params = cell.parameters();
  const Tensor& bias = params[2].value();  // wx, wh, bias registration order
  ASSERT_EQ(bias.numel(), 16);
  for (long i = 4; i < 8; ++i) EXPECT_FLOAT_EQ(bias[i], 1.0f);
  EXPECT_FLOAT_EQ(bias[0], 0.0f);
}

TEST(LstmTest, ForwardRepeatProducesSteps) {
  Rng rng(9);
  Lstm lstm(4, 6, 2, rng);
  Var input = Var::constant(init::gaussian({3, 4}, 1.0f, rng));
  const std::vector<Var> outputs = lstm.forward_repeat(input, 10);
  EXPECT_EQ(outputs.size(), 10u);
  EXPECT_EQ(outputs[0].value().dim(1), 2);
  // The recurrent state evolves: consecutive outputs differ.
  bool any_diff = false;
  for (long i = 0; i < outputs[0].value().numel(); ++i) {
    if (std::fabs(static_cast<double>(outputs[0].value()[i] - outputs[9].value()[i])) > 1e-6)
      any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ConvLstmTest, StepPreservesGeometry) {
  Rng rng(10);
  ConvLSTMCell cell(3, 5, 3, rng);
  LstmState state = cell.initial_state(2, 4, 6);
  Var x = Var::constant(init::gaussian({2, 3, 4, 6}, 1.0f, rng));
  LstmState next = cell.step(x, state);
  EXPECT_EQ(next.h.value().dim(1), 5);
  EXPECT_EQ(next.h.value().dim(2), 4);
  EXPECT_EQ(next.h.value().dim(3), 6);
}

TEST(ConvLstmTest, EvenKernelRejected) {
  Rng rng(11);
  EXPECT_THROW(ConvLSTMCell(3, 5, 4, rng), spectra::Error);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  // Minimize (w - 3)^2.
  Var w = Var::leaf(Tensor::scalar(0.0f));
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    Var loss = mul(add_scalar(w, -3.0f), add_scalar(w, -3.0f));
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(w.value()[0], 3.0f, 1e-3);
}

TEST(OptimizerTest, AdamFitsLinearRegression) {
  Rng rng(12);
  // y = x * W* with W* = [[2], [-1]].
  Tensor x_data = init::gaussian({64, 2}, 1.0f, rng);
  Tensor y_data({64, 1});
  for (long i = 0; i < 64; ++i) {
    y_data[i] = 2.0f * x_data[i * 2] - 1.0f * x_data[i * 2 + 1];
  }
  Linear model(2, 1, rng);
  Adam opt(model.parameters(), 0.05f);
  Var x = Var::constant(x_data);
  Var y = Var::constant(y_data);
  float final_loss = 1e9f;
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    Var loss = mse_loss(model.forward(x), y);
    loss.backward();
    opt.step();
    final_loss = loss.value()[0];
  }
  EXPECT_LT(final_loss, 1e-3f);
}

TEST(OptimizerTest, GradClipScalesLargeGradients) {
  Var w = Var::leaf(Tensor({2}, {1.0f, 1.0f}));
  Sgd opt({w}, 1.0f);
  opt.zero_grad();
  Var loss = sum(mul_scalar(w, 100.0f));
  loss.backward();
  opt.clip_grad_norm(1.0f);
  double norm_sq = 0.0;
  for (long i = 0; i < 2; ++i)
    norm_sq += static_cast<double>(w.grad()[i]) * static_cast<double>(w.grad()[i]);
  EXPECT_NEAR(std::sqrt(norm_sq), 1.0, 1e-4);
}

TEST(OptimizerTest, RejectsConstants) {
  EXPECT_THROW(Sgd({Var::constant(Tensor::scalar(1.0f))}, 0.1f), spectra::Error);
}

TEST(SerializeTest, RoundTripPreservesParameters) {
  Rng rng(13);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);  // different init
  const std::string path = testing::TempDir() + "/sg_params_test.bin";
  std::vector<Var> pa = a.parameters();
  save_parameters(path, pa);
  std::vector<Var> pb = b.parameters();
  load_parameters(path, pb);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (long j = 0; j < pa[i].value().numel(); ++j) {
      EXPECT_FLOAT_EQ(pa[i].value()[j], pb[i].value()[j]);
    }
  }
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(14);
  Linear a(4, 3, rng);
  Linear wrong(5, 3, rng);
  const std::string path = testing::TempDir() + "/sg_params_mismatch.bin";
  std::vector<Var> pa = a.parameters();
  save_parameters(path, pa);
  std::vector<Var> pw = wrong.parameters();
  EXPECT_THROW(load_parameters(path, pw), spectra::Error);
}

TEST(SerializeTest, MissingFileRejected) {
  Rng rng(15);
  Linear a(2, 2, rng);
  std::vector<Var> pa = a.parameters();
  EXPECT_THROW(load_parameters("/nonexistent/sg.bin", pa), spectra::Error);
}

// Parameterized sweep: MLP trained on a separable toy task converges for
// a range of widths.
class MlpWidthTest : public testing::TestWithParam<long> {};

TEST_P(MlpWidthTest, FitsXorLikeTask) {
  const long width = GetParam();
  Rng rng(16);
  Mlp mlp({2, width, 1}, Activation::kTanh, Activation::kNone, rng);
  // XOR corners.
  Tensor x({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor y({4, 1}, {0, 1, 1, 0});
  Adam opt(mlp.parameters(), 0.05f);
  float loss_v = 1e9f;
  for (int i = 0; i < 600; ++i) {
    opt.zero_grad();
    Var loss = mse_loss(mlp.forward(Var::constant(x)), Var::constant(y));
    loss.backward();
    opt.step();
    loss_v = loss.value()[0];
  }
  EXPECT_LT(loss_v, 0.05f) << "width " << width;
}

INSTANTIATE_TEST_SUITE_P(Widths, MlpWidthTest, testing::Values(4L, 8L, 16L));

// --- fused LSTM recurrence vs the unfused op composition ---
// The fused kernel (ops.h lstm_fused_step) claims bitwise-identical
// forward values AND gradients: same per-element expressions, same
// accumulation order as the add_rowvec/slice/sigmoid/tanh/mul chain.

void expect_bitwise(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  for (long i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at flat index " << i;
  }
}

TEST(LstmFusedTest, SingleStepMatchesUnfusedBitwise) {
  Rng rng(41);
  LSTMCell cell(7, 12, rng);
  const long batch = 5;
  const Tensor x_init = init::gaussian({batch, 7}, 1.0f, rng);
  const Tensor h_init = init::gaussian({batch, 12}, 0.5f, rng);
  const Tensor c_init = init::gaussian({batch, 12}, 0.5f, rng);

  struct StepRun {
    Tensor h, c, gx, gh0, gc0;
    std::vector<Tensor> param_grads;
  };
  auto run = [&](bool fused) {
    Var x = Var::leaf(x_init);
    Var h0 = Var::leaf(h_init);
    Var c0 = Var::leaf(c_init);
    for (Var p : cell.parameters()) p.zero_grad();
    LstmState state{h0, c0};
    Var x_proj = cell.project_input(x);
    LstmState next =
        fused ? cell.step_projected(x_proj, state) : cell.step_projected_unfused(x_proj, state);
    // Loss touches both outputs so every gradient path (incl. the o-gate
    // dh side-channel and the direct dc path) is exercised.
    Var loss = add(sum(next.h), sum(next.c));
    loss.backward();
    StepRun r{next.h.value(), next.c.value(), x.grad(), h0.grad(), c0.grad(), {}};
    for (const Var& p : cell.parameters()) r.param_grads.push_back(p.grad());
    return r;
  };

  const StepRun unfused = run(false);
  const StepRun fused = run(true);
  expect_bitwise(unfused.h, fused.h, "h_next");
  expect_bitwise(unfused.c, fused.c, "c_next");
  expect_bitwise(unfused.gx, fused.gx, "grad x");
  expect_bitwise(unfused.gh0, fused.gh0, "grad h_prev");
  expect_bitwise(unfused.gc0, fused.gc0, "grad c_prev");
  ASSERT_EQ(unfused.param_grads.size(), fused.param_grads.size());
  for (std::size_t i = 0; i < unfused.param_grads.size(); ++i) {
    expect_bitwise(unfused.param_grads[i], fused.param_grads[i], "cell param grad");
  }
}

TEST(LstmFusedTest, TrainerShapeSequenceMatchesUnfusedBitwise) {
  // Trainer-scale shapes (the bench's lstm_train_gt geometry): T=168
  // steps, batch 6, 28 -> 24 hidden -> 16 out, full forward + backward.
  const long kSteps = 168, kBatch = 6, kIn = 28, kHidden = 24, kOut = 16;

  struct SeqRun {
    std::vector<Tensor> outputs;
    std::vector<Tensor> param_grads;
  };
  auto run = [&](bool fused) {
    Rng model_rng(91);
    Lstm lstm(kIn, kHidden, kOut, model_rng, Activation::kTanh);
    Rng data_rng(92);
    std::vector<Var> inputs;
    for (long t = 0; t < kSteps; ++t) {
      inputs.push_back(Var::leaf(init::gaussian({kBatch, kIn}, 1.0f, data_rng)));
    }
    std::vector<Var> outs;
    if (fused) {
      outs = lstm.forward(inputs);
    } else {
      // Replicate Lstm::forward exactly — batched projection, per-step
      // slices — but drive the unfused step.
      Var all_steps = concat_axis(inputs, 0);
      Var all_proj = lstm.cell().project_input(all_steps);
      LstmState state = lstm.cell().initial_state(kBatch);
      for (long t = 0; t < kSteps; ++t) {
        Var x_proj = slice_axis(all_proj, 0, t * kBatch, kBatch);
        state = lstm.cell().step_projected_unfused(x_proj, state);
        outs.push_back(apply_activation(lstm.head().forward(state.h), Activation::kTanh));
      }
    }
    Var total = sum(outs[0]);
    for (std::size_t t = 1; t < outs.size(); ++t) total = add(total, sum(outs[t]));
    total.backward();
    SeqRun r;
    for (const Var& o : outs) r.outputs.push_back(o.value());
    for (const Var& p : lstm.parameters()) r.param_grads.push_back(p.grad());
    return r;
  };

  const SeqRun unfused = run(false);
  const SeqRun fused = run(true);
  ASSERT_EQ(unfused.outputs.size(), fused.outputs.size());
  for (std::size_t t = 0; t < unfused.outputs.size(); ++t) {
    expect_bitwise(unfused.outputs[t], fused.outputs[t], "sequence output");
  }
  ASSERT_EQ(unfused.param_grads.size(), fused.param_grads.size());
  for (std::size_t i = 0; i < unfused.param_grads.size(); ++i) {
    expect_bitwise(unfused.param_grads[i], fused.param_grads[i], "lstm param grad");
  }
}

TEST(LstmFusedTest, UnusedFinalStateHMatchesUnfused) {
  // Loss through c only: h never receives gradient, so the fused o-gate
  // path must contribute exactly zero — matching the unfused graph where
  // the o-sigmoid node is unreachable from the loss.
  Rng rng(43);
  LSTMCell cell(4, 6, rng);
  const Tensor x_init = init::gaussian({3, 4}, 1.0f, rng);
  auto run = [&](bool fused) {
    Var x = Var::leaf(x_init);
    for (Var p : cell.parameters()) p.zero_grad();
    LstmState state = cell.initial_state(3);
    Var x_proj = cell.project_input(x);
    LstmState next =
        fused ? cell.step_projected(x_proj, state) : cell.step_projected_unfused(x_proj, state);
    Var loss = sum(next.c);
    loss.backward();
    std::vector<Tensor> grads{x.grad()};
    for (const Var& p : cell.parameters()) grads.push_back(p.grad());
    return grads;
  };
  const std::vector<Tensor> unfused = run(false);
  const std::vector<Tensor> fused = run(true);
  ASSERT_EQ(unfused.size(), fused.size());
  for (std::size_t i = 0; i < unfused.size(); ++i) {
    expect_bitwise(unfused[i], fused[i], "c-only-loss grad");
  }
}

}  // namespace
}  // namespace spectra::nn
