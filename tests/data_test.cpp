// The synthetic-city simulator: context channels, ground-truth traffic
// process (Fig. 1 empirical facts), datasets and the patch sampler.

#include <gtest/gtest.h>

#include <cmath>

#include "data/city.h"
#include "data/context.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "data/traffic_process.h"
#include "dsp/autocorr.h"
#include "metrics/correlation.h"
#include "util/error.h"

namespace spectra::data {
namespace {

LatentFields test_latents(long h = 16, long w = 16, std::uint64_t seed = 3) {
  Rng rng(seed);
  return sample_latent_fields(h, w, rng);
}

TEST(ContextTest, TwentySevenAttributeNames) {
  EXPECT_EQ(context_attribute_names().size(), static_cast<std::size_t>(kNumContextChannels));
  EXPECT_EQ(kNumContextChannels, 27);
  EXPECT_EQ(context_attribute_names()[kCensus], "Census");
  EXPECT_EQ(context_attribute_names()[kTramStops], "Tram Stops");
}

TEST(ContextTest, LatentFieldsInUnitRange) {
  const LatentFields f = test_latents();
  for (long p = 0; p < f.urban.size(); ++p) {
    EXPECT_GE(f.urban[p], 0.0);
    EXPECT_LE(f.urban[p], 1.0);
    EXPECT_GE(f.business_mix[p], 0.0);
    EXPECT_LE(f.business_mix[p], 1.0);
  }
}

TEST(ContextTest, DerivedChannelsNormalized) {
  LatentFields f = test_latents();
  Rng rng(4);
  const geo::ContextTensor context = derive_context(f, rng);
  EXPECT_EQ(context.steps(), kNumContextChannels);
  for (long c = 0; c < kNumContextChannels; ++c) {
    double max_v = 0.0;
    for (long i = 0; i < context.height(); ++i) {
      for (long j = 0; j < context.width(); ++j) {
        const double v = context.at(c, i, j);
        EXPECT_GE(v, 0.0) << context_attribute_names()[static_cast<std::size_t>(c)];
        max_v = std::max(max_v, v);
      }
    }
    EXPECT_LE(max_v, 1.0 + 1e-9);
  }
}

TEST(TrafficProcessTest, OutputNormalizedAndNonNegative) {
  LatentFields f = test_latents();
  Rng rng(5);
  const geo::CityTensor traffic = synthesize_traffic(f, 168, 60, country1_params(), rng);
  EXPECT_EQ(traffic.steps(), 168);
  EXPECT_NEAR(traffic.peak(), 1.0, 1e-12);
  for (double v : traffic.values()) EXPECT_GE(v, 0.0);
}

TEST(TrafficProcessTest, DiurnalPeriodicityDominates) {
  LatentFields f = test_latents();
  Rng rng(6);
  const geo::CityTensor traffic = synthesize_traffic(f, 2 * 168, 60, country1_params(), rng);
  const std::vector<double> city = traffic.space_average();
  const std::vector<double> r = dsp::autocorrelation(city, 30);
  EXPECT_GT(r[24], 0.5);  // strong 24 h correlation (Fig. 1c/1d)
}

TEST(TrafficProcessTest, BusinessPixelsPeakEarlierThanResidential) {
  TrafficProcessParams params = country1_params();
  // Find peak hours over a weekday for the two profile extremes.
  auto peak_hour = [&params](double mix) {
    double best_v = -1.0;
    long best_h = 0;
    for (long h = 0; h < 24; ++h) {
      const double v = periodic_profile(static_cast<double>(h), mix, params);
      if (v > best_v) {
        best_v = v;
        best_h = h;
      }
    }
    return best_h;
  };
  EXPECT_LT(peak_hour(1.0), peak_hour(0.0));
  EXPECT_GE(peak_hour(1.0), 11);  // business peaks around midday
  EXPECT_GE(peak_hour(0.0), 18);  // residential peaks in the evening
}

TEST(TrafficProcessTest, WeekendDampsBusinessTraffic) {
  TrafficProcessParams params = country1_params();
  // Saturday noon (day 5) vs Monday noon (day 0) for business pixels.
  const double weekday = periodic_profile(12.0, 1.0, params);
  const double weekend = periodic_profile(12.0 + 5 * 24.0, 1.0, params);
  EXPECT_LT(weekend, 0.8 * weekday);
}

TEST(TrafficProcessTest, CensusCorrelatesWithTraffic) {
  LatentFields f = test_latents(18, 18, 8);
  Rng rng(9);
  const geo::ContextTensor context = derive_context(f, rng);
  const geo::CityTensor traffic = synthesize_traffic(f, 168, 60, country1_params(), rng);
  const geo::GridMap avg = traffic.time_average();
  geo::GridMap census(18, 18);
  geo::GridMap barren(18, 18);
  for (long i = 0; i < 18; ++i) {
    for (long j = 0; j < 18; ++j) {
      census.at(i, j) = context.at(kCensus, i, j);
      barren.at(i, j) = context.at(kBarrenLands, i, j);
    }
  }
  // Table 1 shape: census strongly positive, barren lands negative.
  EXPECT_GT(metrics::pearson(census, avg), 0.3);
  EXPECT_LT(metrics::pearson(barren, avg), 0.0);
}

TEST(TrafficProcessTest, FinerGranularityScalesSteps) {
  LatentFields f = test_latents(12, 12, 10);
  Rng rng(11);
  const geo::CityTensor fine = synthesize_traffic(f, 4 * 168, 15, country2_params(), rng);
  EXPECT_EQ(fine.steps(), 4 * 168);
  EXPECT_THROW(synthesize_traffic(f, 10, 7, country1_params(), rng), spectra::Error);
}

TEST(CityTest, MakeCityAssemblesAllPieces) {
  Rng rng(12);
  const City city = make_city("TEST", 14, 15, 2, 60, country1_params(), rng);
  EXPECT_EQ(city.name, "TEST");
  EXPECT_EQ(city.height(), 14);
  EXPECT_EQ(city.width(), 15);
  EXPECT_EQ(city.steps(), 2 * 168);
  EXPECT_EQ(city.steps_per_week(), 168);
  EXPECT_EQ(city.context.steps(), kNumContextChannels);
}

TEST(DatasetTest, CountryCompositionsMatchPaper) {
  DatasetConfig config;
  config.weeks = 1;
  const CountryDataset c1 = make_country1(config);
  const CountryDataset c2 = make_country2(config);
  EXPECT_EQ(c1.cities.size(), 9u);  // CITY A..I
  EXPECT_EQ(c2.cities.size(), 4u);  // CITY 1..4
  EXPECT_EQ(c1.cities[0].name, "CITY A");
  EXPECT_EQ(c2.cities[3].name, "CITY 4");
  EXPECT_NO_THROW(c1.city("CITY D"));
  EXPECT_THROW(c1.city("CITY Z"), spectra::Error);
}

TEST(DatasetTest, CitiesHaveDiverseSizes) {
  DatasetConfig config;
  config.weeks = 1;
  const CountryDataset c1 = make_country1(config);
  bool any_diff = false;
  for (const City& city : c1.cities) {
    if (city.height() != c1.cities[0].height() || city.width() != c1.cities[0].width()) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(DatasetTest, DeterministicForSeed) {
  DatasetConfig config;
  config.weeks = 1;
  const CountryDataset a = make_country1(config);
  const CountryDataset b = make_country1(config);
  EXPECT_EQ(a.cities[2].traffic.values(), b.cities[2].traffic.values());
}

TEST(DatasetTest, SeedChangesData) {
  DatasetConfig a_config;
  a_config.weeks = 1;
  DatasetConfig b_config = a_config;
  b_config.seed = 1234;
  const CountryDataset a = make_country1(a_config);
  const CountryDataset b = make_country1(b_config);
  EXPECT_NE(a.cities[0].traffic.values(), b.cities[0].traffic.values());
}

TEST(DatasetTest, LeaveOneCityOutFolds) {
  DatasetConfig config;
  config.weeks = 1;
  const CountryDataset c2 = make_country2(config);
  const std::vector<Fold> folds = leave_one_city_out(c2);
  ASSERT_EQ(folds.size(), 4u);
  for (const Fold& fold : folds) {
    EXPECT_EQ(fold.train_indices.size(), 3u);
    for (std::size_t idx : fold.train_indices) EXPECT_NE(idx, fold.test_index);
  }
}

TEST(SamplerTest, BatchShapes) {
  DatasetConfig config;
  config.weeks = 1;
  const CountryDataset c2 = make_country2(config);
  geo::PatchSpec spec;
  PatchSampler sampler(c2, {0, 1}, spec, 0, 168);
  Rng rng(13);
  const PatchBatch batch = sampler.sample(5, rng);
  EXPECT_EQ(batch.batch, 5);
  EXPECT_EQ(batch.channels, kNumContextChannels);
  EXPECT_EQ(batch.context.size(), static_cast<std::size_t>(5 * 27 * 8 * 8));
  EXPECT_EQ(batch.traffic.size(), static_cast<std::size_t>(5 * 168 * 4 * 4));
  EXPECT_GT(sampler.window_count(), 0u);
}

TEST(SamplerTest, TrafficValuesWithinUnitRange) {
  DatasetConfig config;
  config.weeks = 1;
  const CountryDataset c2 = make_country2(config);
  geo::PatchSpec spec;
  PatchSampler sampler(c2, {0, 1, 2, 3}, spec, 0, 100);
  Rng rng(14);
  const PatchBatch batch = sampler.sample(8, rng);
  for (float v : batch.traffic) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SamplerTest, WindowExceedingDataRejected) {
  DatasetConfig config;
  config.weeks = 1;
  const CountryDataset c2 = make_country2(config);
  geo::PatchSpec spec;
  EXPECT_THROW(PatchSampler(c2, {0}, spec, 100, 168), spectra::Error);
  EXPECT_THROW(PatchSampler(c2, {}, spec, 0, 168), spectra::Error);
}

class GranularityTest : public testing::TestWithParam<long> {};

TEST_P(GranularityTest, StepsScaleWithGranularity) {
  const long minutes = GetParam();
  Rng rng(15);
  const City city = make_city("G", 12, 12, 1, minutes, country1_params(), rng);
  EXPECT_EQ(city.steps(), 7 * 24 * 60 / minutes);
  EXPECT_NEAR(city.traffic.peak(), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Granularities, GranularityTest, testing::Values(60L, 30L, 15L));

}  // namespace
}  // namespace spectra::data
