file(REMOVE_RECURSE
  "CMakeFiles/population_mapping.dir/population_mapping.cpp.o"
  "CMakeFiles/population_mapping.dir/population_mapping.cpp.o.d"
  "population_mapping"
  "population_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/population_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
