# Empty compiler generated dependencies file for population_mapping.
# This may be replaced when dependencies are built.
