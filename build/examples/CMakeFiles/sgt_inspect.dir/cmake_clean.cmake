file(REMOVE_RECURSE
  "CMakeFiles/sgt_inspect.dir/sgt_inspect.cpp.o"
  "CMakeFiles/sgt_inspect.dir/sgt_inspect.cpp.o.d"
  "sgt_inspect"
  "sgt_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgt_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
