# Empty compiler generated dependencies file for sgt_inspect.
# This may be replaced when dependencies are built.
