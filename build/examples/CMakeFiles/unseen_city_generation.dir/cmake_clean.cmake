file(REMOVE_RECURSE
  "CMakeFiles/unseen_city_generation.dir/unseen_city_generation.cpp.o"
  "CMakeFiles/unseen_city_generation.dir/unseen_city_generation.cpp.o.d"
  "unseen_city_generation"
  "unseen_city_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unseen_city_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
