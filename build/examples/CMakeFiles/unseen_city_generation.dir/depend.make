# Empty dependencies file for unseen_city_generation.
# This may be replaced when dependencies are built.
