# Empty compiler generated dependencies file for ran_power_planning.
# This may be replaced when dependencies are built.
