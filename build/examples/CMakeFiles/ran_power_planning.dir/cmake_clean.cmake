file(REMOVE_RECURSE
  "CMakeFiles/ran_power_planning.dir/ran_power_planning.cpp.o"
  "CMakeFiles/ran_power_planning.dir/ran_power_planning.cpp.o.d"
  "ran_power_planning"
  "ran_power_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ran_power_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
