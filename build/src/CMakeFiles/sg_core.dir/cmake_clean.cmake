file(REMOVE_RECURSE
  "CMakeFiles/sg_core.dir/core/citygen.cpp.o"
  "CMakeFiles/sg_core.dir/core/citygen.cpp.o.d"
  "CMakeFiles/sg_core.dir/core/config.cpp.o"
  "CMakeFiles/sg_core.dir/core/config.cpp.o.d"
  "CMakeFiles/sg_core.dir/core/discriminators.cpp.o"
  "CMakeFiles/sg_core.dir/core/discriminators.cpp.o.d"
  "CMakeFiles/sg_core.dir/core/encoder.cpp.o"
  "CMakeFiles/sg_core.dir/core/encoder.cpp.o.d"
  "CMakeFiles/sg_core.dir/core/fourier_bridge.cpp.o"
  "CMakeFiles/sg_core.dir/core/fourier_bridge.cpp.o.d"
  "CMakeFiles/sg_core.dir/core/losses.cpp.o"
  "CMakeFiles/sg_core.dir/core/losses.cpp.o.d"
  "CMakeFiles/sg_core.dir/core/spectrum_generator.cpp.o"
  "CMakeFiles/sg_core.dir/core/spectrum_generator.cpp.o.d"
  "CMakeFiles/sg_core.dir/core/time_generator.cpp.o"
  "CMakeFiles/sg_core.dir/core/time_generator.cpp.o.d"
  "CMakeFiles/sg_core.dir/core/trainer.cpp.o"
  "CMakeFiles/sg_core.dir/core/trainer.cpp.o.d"
  "CMakeFiles/sg_core.dir/core/variants.cpp.o"
  "CMakeFiles/sg_core.dir/core/variants.cpp.o.d"
  "libsg_core.a"
  "libsg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
