
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/citygen.cpp" "src/CMakeFiles/sg_core.dir/core/citygen.cpp.o" "gcc" "src/CMakeFiles/sg_core.dir/core/citygen.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/sg_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/sg_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/discriminators.cpp" "src/CMakeFiles/sg_core.dir/core/discriminators.cpp.o" "gcc" "src/CMakeFiles/sg_core.dir/core/discriminators.cpp.o.d"
  "/root/repo/src/core/encoder.cpp" "src/CMakeFiles/sg_core.dir/core/encoder.cpp.o" "gcc" "src/CMakeFiles/sg_core.dir/core/encoder.cpp.o.d"
  "/root/repo/src/core/fourier_bridge.cpp" "src/CMakeFiles/sg_core.dir/core/fourier_bridge.cpp.o" "gcc" "src/CMakeFiles/sg_core.dir/core/fourier_bridge.cpp.o.d"
  "/root/repo/src/core/losses.cpp" "src/CMakeFiles/sg_core.dir/core/losses.cpp.o" "gcc" "src/CMakeFiles/sg_core.dir/core/losses.cpp.o.d"
  "/root/repo/src/core/spectrum_generator.cpp" "src/CMakeFiles/sg_core.dir/core/spectrum_generator.cpp.o" "gcc" "src/CMakeFiles/sg_core.dir/core/spectrum_generator.cpp.o.d"
  "/root/repo/src/core/time_generator.cpp" "src/CMakeFiles/sg_core.dir/core/time_generator.cpp.o" "gcc" "src/CMakeFiles/sg_core.dir/core/time_generator.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/CMakeFiles/sg_core.dir/core/trainer.cpp.o" "gcc" "src/CMakeFiles/sg_core.dir/core/trainer.cpp.o.d"
  "/root/repo/src/core/variants.cpp" "src/CMakeFiles/sg_core.dir/core/variants.cpp.o" "gcc" "src/CMakeFiles/sg_core.dir/core/variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
