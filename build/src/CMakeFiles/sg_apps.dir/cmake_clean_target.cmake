file(REMOVE_RECURSE
  "libsg_apps.a"
)
