# Empty compiler generated dependencies file for sg_apps.
# This may be replaced when dependencies are built.
