file(REMOVE_RECURSE
  "CMakeFiles/sg_apps.dir/apps/population.cpp.o"
  "CMakeFiles/sg_apps.dir/apps/population.cpp.o.d"
  "CMakeFiles/sg_apps.dir/apps/power.cpp.o"
  "CMakeFiles/sg_apps.dir/apps/power.cpp.o.d"
  "CMakeFiles/sg_apps.dir/apps/vran.cpp.o"
  "CMakeFiles/sg_apps.dir/apps/vran.cpp.o.d"
  "libsg_apps.a"
  "libsg_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
