file(REMOVE_RECURSE
  "libsg_data.a"
)
