
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/city.cpp" "src/CMakeFiles/sg_data.dir/data/city.cpp.o" "gcc" "src/CMakeFiles/sg_data.dir/data/city.cpp.o.d"
  "/root/repo/src/data/context.cpp" "src/CMakeFiles/sg_data.dir/data/context.cpp.o" "gcc" "src/CMakeFiles/sg_data.dir/data/context.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/sg_data.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/sg_data.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/sampler.cpp" "src/CMakeFiles/sg_data.dir/data/sampler.cpp.o" "gcc" "src/CMakeFiles/sg_data.dir/data/sampler.cpp.o.d"
  "/root/repo/src/data/traffic_process.cpp" "src/CMakeFiles/sg_data.dir/data/traffic_process.cpp.o" "gcc" "src/CMakeFiles/sg_data.dir/data/traffic_process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sg_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
