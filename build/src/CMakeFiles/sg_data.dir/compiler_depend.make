# Empty compiler generated dependencies file for sg_data.
# This may be replaced when dependencies are built.
