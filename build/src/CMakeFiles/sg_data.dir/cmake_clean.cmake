file(REMOVE_RECURSE
  "CMakeFiles/sg_data.dir/data/city.cpp.o"
  "CMakeFiles/sg_data.dir/data/city.cpp.o.d"
  "CMakeFiles/sg_data.dir/data/context.cpp.o"
  "CMakeFiles/sg_data.dir/data/context.cpp.o.d"
  "CMakeFiles/sg_data.dir/data/dataset.cpp.o"
  "CMakeFiles/sg_data.dir/data/dataset.cpp.o.d"
  "CMakeFiles/sg_data.dir/data/sampler.cpp.o"
  "CMakeFiles/sg_data.dir/data/sampler.cpp.o.d"
  "CMakeFiles/sg_data.dir/data/traffic_process.cpp.o"
  "CMakeFiles/sg_data.dir/data/traffic_process.cpp.o.d"
  "libsg_data.a"
  "libsg_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
