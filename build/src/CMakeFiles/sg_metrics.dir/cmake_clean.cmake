file(REMOVE_RECURSE
  "CMakeFiles/sg_metrics.dir/metrics/autocorr_l1.cpp.o"
  "CMakeFiles/sg_metrics.dir/metrics/autocorr_l1.cpp.o.d"
  "CMakeFiles/sg_metrics.dir/metrics/correlation.cpp.o"
  "CMakeFiles/sg_metrics.dir/metrics/correlation.cpp.o.d"
  "CMakeFiles/sg_metrics.dir/metrics/fairness.cpp.o"
  "CMakeFiles/sg_metrics.dir/metrics/fairness.cpp.o.d"
  "CMakeFiles/sg_metrics.dir/metrics/fvd.cpp.o"
  "CMakeFiles/sg_metrics.dir/metrics/fvd.cpp.o.d"
  "CMakeFiles/sg_metrics.dir/metrics/linalg.cpp.o"
  "CMakeFiles/sg_metrics.dir/metrics/linalg.cpp.o.d"
  "CMakeFiles/sg_metrics.dir/metrics/marginal.cpp.o"
  "CMakeFiles/sg_metrics.dir/metrics/marginal.cpp.o.d"
  "CMakeFiles/sg_metrics.dir/metrics/psnr.cpp.o"
  "CMakeFiles/sg_metrics.dir/metrics/psnr.cpp.o.d"
  "CMakeFiles/sg_metrics.dir/metrics/ssim.cpp.o"
  "CMakeFiles/sg_metrics.dir/metrics/ssim.cpp.o.d"
  "CMakeFiles/sg_metrics.dir/metrics/tstr.cpp.o"
  "CMakeFiles/sg_metrics.dir/metrics/tstr.cpp.o.d"
  "libsg_metrics.a"
  "libsg_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
