
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/autocorr_l1.cpp" "src/CMakeFiles/sg_metrics.dir/metrics/autocorr_l1.cpp.o" "gcc" "src/CMakeFiles/sg_metrics.dir/metrics/autocorr_l1.cpp.o.d"
  "/root/repo/src/metrics/correlation.cpp" "src/CMakeFiles/sg_metrics.dir/metrics/correlation.cpp.o" "gcc" "src/CMakeFiles/sg_metrics.dir/metrics/correlation.cpp.o.d"
  "/root/repo/src/metrics/fairness.cpp" "src/CMakeFiles/sg_metrics.dir/metrics/fairness.cpp.o" "gcc" "src/CMakeFiles/sg_metrics.dir/metrics/fairness.cpp.o.d"
  "/root/repo/src/metrics/fvd.cpp" "src/CMakeFiles/sg_metrics.dir/metrics/fvd.cpp.o" "gcc" "src/CMakeFiles/sg_metrics.dir/metrics/fvd.cpp.o.d"
  "/root/repo/src/metrics/linalg.cpp" "src/CMakeFiles/sg_metrics.dir/metrics/linalg.cpp.o" "gcc" "src/CMakeFiles/sg_metrics.dir/metrics/linalg.cpp.o.d"
  "/root/repo/src/metrics/marginal.cpp" "src/CMakeFiles/sg_metrics.dir/metrics/marginal.cpp.o" "gcc" "src/CMakeFiles/sg_metrics.dir/metrics/marginal.cpp.o.d"
  "/root/repo/src/metrics/psnr.cpp" "src/CMakeFiles/sg_metrics.dir/metrics/psnr.cpp.o" "gcc" "src/CMakeFiles/sg_metrics.dir/metrics/psnr.cpp.o.d"
  "/root/repo/src/metrics/ssim.cpp" "src/CMakeFiles/sg_metrics.dir/metrics/ssim.cpp.o" "gcc" "src/CMakeFiles/sg_metrics.dir/metrics/ssim.cpp.o.d"
  "/root/repo/src/metrics/tstr.cpp" "src/CMakeFiles/sg_metrics.dir/metrics/tstr.cpp.o" "gcc" "src/CMakeFiles/sg_metrics.dir/metrics/tstr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sg_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
