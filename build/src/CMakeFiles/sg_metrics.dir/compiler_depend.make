# Empty compiler generated dependencies file for sg_metrics.
# This may be replaced when dependencies are built.
