file(REMOVE_RECURSE
  "libsg_baselines.a"
)
