# Empty compiler generated dependencies file for sg_baselines.
# This may be replaced when dependencies are built.
