file(REMOVE_RECURSE
  "CMakeFiles/sg_baselines.dir/baselines/conv3d_lstm.cpp.o"
  "CMakeFiles/sg_baselines.dir/baselines/conv3d_lstm.cpp.o.d"
  "CMakeFiles/sg_baselines.dir/baselines/doppelganger.cpp.o"
  "CMakeFiles/sg_baselines.dir/baselines/doppelganger.cpp.o.d"
  "CMakeFiles/sg_baselines.dir/baselines/fdas.cpp.o"
  "CMakeFiles/sg_baselines.dir/baselines/fdas.cpp.o.d"
  "CMakeFiles/sg_baselines.dir/baselines/model_api.cpp.o"
  "CMakeFiles/sg_baselines.dir/baselines/model_api.cpp.o.d"
  "CMakeFiles/sg_baselines.dir/baselines/pix2pix.cpp.o"
  "CMakeFiles/sg_baselines.dir/baselines/pix2pix.cpp.o.d"
  "libsg_baselines.a"
  "libsg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
