
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/conv3d_lstm.cpp" "src/CMakeFiles/sg_baselines.dir/baselines/conv3d_lstm.cpp.o" "gcc" "src/CMakeFiles/sg_baselines.dir/baselines/conv3d_lstm.cpp.o.d"
  "/root/repo/src/baselines/doppelganger.cpp" "src/CMakeFiles/sg_baselines.dir/baselines/doppelganger.cpp.o" "gcc" "src/CMakeFiles/sg_baselines.dir/baselines/doppelganger.cpp.o.d"
  "/root/repo/src/baselines/fdas.cpp" "src/CMakeFiles/sg_baselines.dir/baselines/fdas.cpp.o" "gcc" "src/CMakeFiles/sg_baselines.dir/baselines/fdas.cpp.o.d"
  "/root/repo/src/baselines/model_api.cpp" "src/CMakeFiles/sg_baselines.dir/baselines/model_api.cpp.o" "gcc" "src/CMakeFiles/sg_baselines.dir/baselines/model_api.cpp.o.d"
  "/root/repo/src/baselines/pix2pix.cpp" "src/CMakeFiles/sg_baselines.dir/baselines/pix2pix.cpp.o" "gcc" "src/CMakeFiles/sg_baselines.dir/baselines/pix2pix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
