# Empty compiler generated dependencies file for sg_eval.
# This may be replaced when dependencies are built.
