file(REMOVE_RECURSE
  "libsg_eval.a"
)
