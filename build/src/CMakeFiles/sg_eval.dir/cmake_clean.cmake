file(REMOVE_RECURSE
  "CMakeFiles/sg_eval.dir/eval/protocol.cpp.o"
  "CMakeFiles/sg_eval.dir/eval/protocol.cpp.o.d"
  "CMakeFiles/sg_eval.dir/eval/report.cpp.o"
  "CMakeFiles/sg_eval.dir/eval/report.cpp.o.d"
  "libsg_eval.a"
  "libsg_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
