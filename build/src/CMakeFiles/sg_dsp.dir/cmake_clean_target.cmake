file(REMOVE_RECURSE
  "libsg_dsp.a"
)
