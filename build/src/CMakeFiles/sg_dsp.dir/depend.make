# Empty dependencies file for sg_dsp.
# This may be replaced when dependencies are built.
