
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/autocorr.cpp" "src/CMakeFiles/sg_dsp.dir/dsp/autocorr.cpp.o" "gcc" "src/CMakeFiles/sg_dsp.dir/dsp/autocorr.cpp.o.d"
  "/root/repo/src/dsp/expansion.cpp" "src/CMakeFiles/sg_dsp.dir/dsp/expansion.cpp.o" "gcc" "src/CMakeFiles/sg_dsp.dir/dsp/expansion.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/CMakeFiles/sg_dsp.dir/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/sg_dsp.dir/dsp/fft.cpp.o.d"
  "/root/repo/src/dsp/signature.cpp" "src/CMakeFiles/sg_dsp.dir/dsp/signature.cpp.o" "gcc" "src/CMakeFiles/sg_dsp.dir/dsp/signature.cpp.o.d"
  "/root/repo/src/dsp/spectrum.cpp" "src/CMakeFiles/sg_dsp.dir/dsp/spectrum.cpp.o" "gcc" "src/CMakeFiles/sg_dsp.dir/dsp/spectrum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
