file(REMOVE_RECURSE
  "CMakeFiles/sg_dsp.dir/dsp/autocorr.cpp.o"
  "CMakeFiles/sg_dsp.dir/dsp/autocorr.cpp.o.d"
  "CMakeFiles/sg_dsp.dir/dsp/expansion.cpp.o"
  "CMakeFiles/sg_dsp.dir/dsp/expansion.cpp.o.d"
  "CMakeFiles/sg_dsp.dir/dsp/fft.cpp.o"
  "CMakeFiles/sg_dsp.dir/dsp/fft.cpp.o.d"
  "CMakeFiles/sg_dsp.dir/dsp/signature.cpp.o"
  "CMakeFiles/sg_dsp.dir/dsp/signature.cpp.o.d"
  "CMakeFiles/sg_dsp.dir/dsp/spectrum.cpp.o"
  "CMakeFiles/sg_dsp.dir/dsp/spectrum.cpp.o.d"
  "libsg_dsp.a"
  "libsg_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
