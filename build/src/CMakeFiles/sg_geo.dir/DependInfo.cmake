
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/city_tensor.cpp" "src/CMakeFiles/sg_geo.dir/geo/city_tensor.cpp.o" "gcc" "src/CMakeFiles/sg_geo.dir/geo/city_tensor.cpp.o.d"
  "/root/repo/src/geo/grid.cpp" "src/CMakeFiles/sg_geo.dir/geo/grid.cpp.o" "gcc" "src/CMakeFiles/sg_geo.dir/geo/grid.cpp.o.d"
  "/root/repo/src/geo/patching.cpp" "src/CMakeFiles/sg_geo.dir/geo/patching.cpp.o" "gcc" "src/CMakeFiles/sg_geo.dir/geo/patching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
