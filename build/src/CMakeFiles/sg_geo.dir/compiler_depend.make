# Empty compiler generated dependencies file for sg_geo.
# This may be replaced when dependencies are built.
