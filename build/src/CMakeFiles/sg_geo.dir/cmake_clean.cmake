file(REMOVE_RECURSE
  "CMakeFiles/sg_geo.dir/geo/city_tensor.cpp.o"
  "CMakeFiles/sg_geo.dir/geo/city_tensor.cpp.o.d"
  "CMakeFiles/sg_geo.dir/geo/grid.cpp.o"
  "CMakeFiles/sg_geo.dir/geo/grid.cpp.o.d"
  "CMakeFiles/sg_geo.dir/geo/patching.cpp.o"
  "CMakeFiles/sg_geo.dir/geo/patching.cpp.o.d"
  "libsg_geo.a"
  "libsg_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
