file(REMOVE_RECURSE
  "libsg_geo.a"
)
