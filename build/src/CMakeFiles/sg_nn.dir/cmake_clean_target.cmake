file(REMOVE_RECURSE
  "libsg_nn.a"
)
