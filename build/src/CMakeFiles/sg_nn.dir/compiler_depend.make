# Empty compiler generated dependencies file for sg_nn.
# This may be replaced when dependencies are built.
