file(REMOVE_RECURSE
  "CMakeFiles/sg_nn.dir/nn/autograd.cpp.o"
  "CMakeFiles/sg_nn.dir/nn/autograd.cpp.o.d"
  "CMakeFiles/sg_nn.dir/nn/conv.cpp.o"
  "CMakeFiles/sg_nn.dir/nn/conv.cpp.o.d"
  "CMakeFiles/sg_nn.dir/nn/init.cpp.o"
  "CMakeFiles/sg_nn.dir/nn/init.cpp.o.d"
  "CMakeFiles/sg_nn.dir/nn/layers.cpp.o"
  "CMakeFiles/sg_nn.dir/nn/layers.cpp.o.d"
  "CMakeFiles/sg_nn.dir/nn/lstm.cpp.o"
  "CMakeFiles/sg_nn.dir/nn/lstm.cpp.o.d"
  "CMakeFiles/sg_nn.dir/nn/ops.cpp.o"
  "CMakeFiles/sg_nn.dir/nn/ops.cpp.o.d"
  "CMakeFiles/sg_nn.dir/nn/optim.cpp.o"
  "CMakeFiles/sg_nn.dir/nn/optim.cpp.o.d"
  "CMakeFiles/sg_nn.dir/nn/serialize.cpp.o"
  "CMakeFiles/sg_nn.dir/nn/serialize.cpp.o.d"
  "CMakeFiles/sg_nn.dir/nn/tensor.cpp.o"
  "CMakeFiles/sg_nn.dir/nn/tensor.cpp.o.d"
  "libsg_nn.a"
  "libsg_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
