# Empty dependencies file for sg_util.
# This may be replaced when dependencies are built.
