file(REMOVE_RECURSE
  "CMakeFiles/sg_util.dir/util/csv.cpp.o"
  "CMakeFiles/sg_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/sg_util.dir/util/env.cpp.o"
  "CMakeFiles/sg_util.dir/util/env.cpp.o.d"
  "CMakeFiles/sg_util.dir/util/error.cpp.o"
  "CMakeFiles/sg_util.dir/util/error.cpp.o.d"
  "CMakeFiles/sg_util.dir/util/log.cpp.o"
  "CMakeFiles/sg_util.dir/util/log.cpp.o.d"
  "CMakeFiles/sg_util.dir/util/rng.cpp.o"
  "CMakeFiles/sg_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/sg_util.dir/util/stopwatch.cpp.o"
  "CMakeFiles/sg_util.dir/util/stopwatch.cpp.o.d"
  "CMakeFiles/sg_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/sg_util.dir/util/thread_pool.cpp.o.d"
  "libsg_util.a"
  "libsg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
