
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fft_test.cpp" "tests/CMakeFiles/fft_test.dir/fft_test.cpp.o" "gcc" "tests/CMakeFiles/fft_test.dir/fft_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
