# Empty compiler generated dependencies file for bench_fig10_bs_sleeping.
# This may be replaced when dependencies are built.
