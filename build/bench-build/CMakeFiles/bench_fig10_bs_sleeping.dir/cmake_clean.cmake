file(REMOVE_RECURSE
  "../bench/bench_fig10_bs_sleeping"
  "../bench/bench_fig10_bs_sleeping.pdb"
  "CMakeFiles/bench_fig10_bs_sleeping.dir/bench_fig10_bs_sleeping.cpp.o"
  "CMakeFiles/bench_fig10_bs_sleeping.dir/bench_fig10_bs_sleeping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_bs_sleeping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
