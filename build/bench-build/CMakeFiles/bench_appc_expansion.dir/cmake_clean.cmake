file(REMOVE_RECURSE
  "../bench/bench_appc_expansion"
  "../bench/bench_appc_expansion.pdb"
  "CMakeFiles/bench_appc_expansion.dir/bench_appc_expansion.cpp.o"
  "CMakeFiles/bench_appc_expansion.dir/bench_appc_expansion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appc_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
