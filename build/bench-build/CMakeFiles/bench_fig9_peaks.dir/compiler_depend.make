# Empty compiler generated dependencies file for bench_fig9_peaks.
# This may be replaced when dependencies are built.
