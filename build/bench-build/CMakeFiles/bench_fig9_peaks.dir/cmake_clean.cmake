file(REMOVE_RECURSE
  "../bench/bench_fig9_peaks"
  "../bench/bench_fig9_peaks.pdb"
  "CMakeFiles/bench_fig9_peaks.dir/bench_fig9_peaks.cpp.o"
  "CMakeFiles/bench_fig9_peaks.dir/bench_fig9_peaks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_peaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
