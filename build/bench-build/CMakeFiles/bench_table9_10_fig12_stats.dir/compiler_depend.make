# Empty compiler generated dependencies file for bench_table9_10_fig12_stats.
# This may be replaced when dependencies are built.
