file(REMOVE_RECURSE
  "../bench/bench_table9_10_fig12_stats"
  "../bench/bench_table9_10_fig12_stats.pdb"
  "CMakeFiles/bench_table9_10_fig12_stats.dir/bench_table9_10_fig12_stats.cpp.o"
  "CMakeFiles/bench_table9_10_fig12_stats.dir/bench_table9_10_fig12_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_10_fig12_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
