# Empty dependencies file for bench_fig1_characterization.
# This may be replaced when dependencies are built.
