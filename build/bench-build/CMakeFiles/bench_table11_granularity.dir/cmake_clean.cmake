file(REMOVE_RECURSE
  "../bench/bench_table11_granularity"
  "../bench/bench_table11_granularity.pdb"
  "CMakeFiles/bench_table11_granularity.dir/bench_table11_granularity.cpp.o"
  "CMakeFiles/bench_table11_granularity.dir/bench_table11_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
