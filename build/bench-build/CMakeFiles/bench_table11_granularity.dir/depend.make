# Empty dependencies file for bench_table11_granularity.
# This may be replaced when dependencies are built.
