file(REMOVE_RECURSE
  "../bench/bench_table4_context_ablation"
  "../bench/bench_table4_context_ablation.pdb"
  "CMakeFiles/bench_table4_context_ablation.dir/bench_table4_context_ablation.cpp.o"
  "CMakeFiles/bench_table4_context_ablation.dir/bench_table4_context_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_context_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
