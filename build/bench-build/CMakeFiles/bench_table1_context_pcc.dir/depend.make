# Empty dependencies file for bench_table1_context_pcc.
# This may be replaced when dependencies are built.
