file(REMOVE_RECURSE
  "../bench/bench_table1_context_pcc"
  "../bench/bench_table1_context_pcc.pdb"
  "CMakeFiles/bench_table1_context_pcc.dir/bench_table1_context_pcc.cpp.o"
  "CMakeFiles/bench_table1_context_pcc.dir/bench_table1_context_pcc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_context_pcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
