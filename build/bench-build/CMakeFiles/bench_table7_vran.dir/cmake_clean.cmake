file(REMOVE_RECURSE
  "../bench/bench_table7_vran"
  "../bench/bench_table7_vran.pdb"
  "CMakeFiles/bench_table7_vran.dir/bench_table7_vran.cpp.o"
  "CMakeFiles/bench_table7_vran.dir/bench_table7_vran.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_vran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
