# Empty dependencies file for bench_fig678_qualitative.
# This may be replaced when dependencies are built.
