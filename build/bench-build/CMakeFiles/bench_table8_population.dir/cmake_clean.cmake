file(REMOVE_RECURSE
  "../bench/bench_table8_population"
  "../bench/bench_table8_population.pdb"
  "CMakeFiles/bench_table8_population.dir/bench_table8_population.cpp.o"
  "CMakeFiles/bench_table8_population.dir/bench_table8_population.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
