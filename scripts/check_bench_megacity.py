#!/usr/bin/env python3
"""Gate streaming megacity generation against BENCH_MEGACITY.json.

Three checks on a fresh bench_megacity run, compared to the committed
baseline:

1. Bounded memory (hard, machine-independent): peak RSS growth between
   the half-height and full-height phases must stay within the committed
   rss_budget_bytes, and the per-phase strip-resident high-water mark
   (geo.strip_resident_bytes_peak) must be FLAT across heights — growth
   there means the band is leaking rows and memory scales with H again.
2. Peak RSS ceiling (hard): the full-phase peak RSS must stay within
   baseline peak RSS + rss_budget_bytes. A dense-canvas regression at the
   default 1024x1024x24 grid adds ~200 MB and trips this immediately.
3. Throughput (hard, MIN_RATIO): full-phase pixels/s must reach at least
   MIN_RATIO x the committed baseline pixels/s. Absolute rates are
   machine-dependent, so the margin is generous; the *within-run*
   half-vs-full throughput ratio is also gated at MIN_RATIO, which is
   machine-independent (per-pixel cost must not grow with grid height).

Usage: check_bench_megacity.py <baseline.json> <current.json>
"""

import json
import sys

MIN_RATIO = 0.8


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != 1:
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    if len(data.get("phases", [])) < 2:
        sys.exit(f"{path}: expected at least a half and a full phase")
    return data


def mib(n):
    return n / (1024.0 * 1024.0)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    baseline = load(sys.argv[1])
    current = load(sys.argv[2])

    half, full = current["phases"][0], current["phases"][-1]
    budget = baseline["rss_budget_bytes"]
    failures = []

    growth = full["peak_rss_bytes"] - half["peak_rss_bytes"]
    print(f"rss growth half->full: {mib(growth):.1f} MiB (budget {mib(budget):.1f} MiB)")
    if growth > budget:
        failures.append(
            f"peak RSS grew {mib(growth):.1f} MiB between half and full height "
            f"(budget {mib(budget):.1f} MiB) — memory is scaling with grid height")

    strip_half = half["strip_resident_bytes_peak"]
    strip_full = full["strip_resident_bytes_peak"]
    print(f"strip resident peak: half {strip_half:.0f} B, full {strip_full:.0f} B")
    if strip_full > strip_half:
        failures.append(
            f"strip-resident peak grew with grid height ({strip_half:.0f} -> "
            f"{strip_full:.0f} B) — the band is retaining rows")

    rss_ceiling = baseline["peak_rss_bytes"] + budget
    print(f"full-phase peak RSS: {mib(full['peak_rss_bytes']):.1f} MiB "
          f"(ceiling {mib(rss_ceiling):.1f} MiB)")
    if full["peak_rss_bytes"] > rss_ceiling:
        failures.append(
            f"peak RSS {mib(full['peak_rss_bytes']):.1f} MiB exceeds baseline "
            f"{mib(baseline['peak_rss_bytes']):.1f} + budget {mib(budget):.1f} MiB")

    base_rate = baseline["pixels_per_s"]
    cur_rate = full["pixels_per_s"]
    ratio = cur_rate / base_rate if base_rate > 0 else float("inf")
    print(f"throughput: {cur_rate:.3e} pixels/s vs baseline {base_rate:.3e} "
          f"(ratio {ratio:.2f}, min {MIN_RATIO})")
    if ratio < MIN_RATIO:
        failures.append(
            f"throughput {cur_rate:.3e} pixels/s < {MIN_RATIO} x baseline {base_rate:.3e}")

    flat = full["pixels_per_s"] / half["pixels_per_s"] if half["pixels_per_s"] > 0 else 0.0
    print(f"within-run full/half throughput ratio: {flat:.2f} (min {MIN_RATIO})")
    if flat < MIN_RATIO:
        failures.append(
            f"per-pixel cost grows with height: full/half throughput ratio {flat:.2f}")

    if failures:
        print("\nmegacity streaming gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("\nmegacity streaming gate passed")


if __name__ == "__main__":
    main()
