#!/usr/bin/env python3
"""sg_lint — repo-specific invariant linter for the SpectraGAN reproduction.

Enforces invariants that no off-the-shelf tool knows about (DESIGN §6d):

  thread        No std::thread / std::async / raw pthread outside
                util/thread_pool.  All parallelism must go through the
                shared pool so SPECTRA_THREADS, nested-inline execution,
                and the TSan matrix keep their guarantees.
  determinism   No std::rand / random_device / wall-clock time sources in
                src/{core,nn,dsp,train}.  Training must be a pure function
                of (seed, data, SPECTRA_THREADS-independent kernels);
                silent nondeterminism is the top reproducibility failure
                reported by GAN codebases (see PAPERS.md, DoppelGANger).
  registry      Every "SPECTRA_*" env knob and every metrics-registry name
                used in code must appear in the DESIGN.md knob/metric
                tables, and vice versa — the docs are a registry, not
                prose, and the two may not drift.
  mutable-static  No mutable static / thread_local state outside the
                audited allowlist below.  Hidden process state breaks the
                checkpoint bitwise-resume contract and the 1-vs-8-thread
                equality suite.
  float-mix     Kernel files accumulate in float only: any use of
                `double` must be an explicit static_cast<double> (e.g. at
                the observability boundary).  Implicit float<->double
                mixing changes results between vectorized and scalar
                paths, which breaks bitwise determinism.
  lock-annotation  Every concurrency primitive in src/ is visible to the
                clang thread safety analysis: raw std::mutex /
                std::shared_mutex / std::condition_variable may only
                appear inside the annotated wrappers (util/mutex.h, via
                the identifier-exact allowlist below), and every
                spectra::Mutex / SharedMutex declaration must place
                itself in the lock hierarchy with SG_ACQUIRED_AFTER /
                SG_ACQUIRED_BEFORE (or be allowlisted, e.g. the
                hierarchy's own root token).
  include-layering  Cross-module #include edges in src/ must point
                strictly down the module DAG (INCLUDE_LAYERS below).  A
                back-edge means a layering inversion that the linker
                ordering and the capability hierarchy both assume away.

A finding can be waived inline with a justified annotation on the same
line (or the line above):

    // sg-lint: allow(<rule>) <reason>

The reason is mandatory; an annotation without one is itself an error.

Usage:
  sg_lint.py                      lint the repository (src/ bench/ examples/)
  sg_lint.py FILE --as REL        lint FILE as if it lived at repo path REL
                                  (how the fixture suite exercises rules)
  sg_lint.py --design FILE        use FILE instead of DESIGN.md for the
                                  registry tables
  sg_lint.py --list-rules         print rule ids and exit

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

RULES = ("thread", "determinism", "registry", "mutable-static", "float-mix",
         "lock-annotation", "include-layering")

# ---------------------------------------------------------------------------
# Scope of each rule (repo-relative, forward slashes).

# Everything the thread / mutable-static rules see.
SRC_GLOBS = ("src/**/*.cpp", "src/**/*.h")
# The registry rule also scans drivers, which read knobs directly.
CODE_GLOBS = SRC_GLOBS + ("bench/**/*.cpp", "bench/**/*.h",
                          "examples/**/*.cpp", "examples/**/*.h")

THREAD_EXEMPT = ("src/util/thread_pool.cpp", "src/util/thread_pool.h",
                 # resource sampler: the one sanctioned non-pool thread —
                 # it only reads /proc and stores into registry atomics
                 "src/obs/sampler.cpp", "src/obs/sampler.h")
DETERMINISM_DIRS = ("src/core/", "src/nn/", "src/dsp/", "src/train/")
# Files holding the numeric kernels whose bitwise output the parallel and
# checkpoint suites pin down.
KERNEL_FILES = ("src/nn/gemm.cpp", "src/nn/conv.cpp", "src/nn/gemm_micro.h",
                "src/nn/gemm_kernels_avx2.cpp", "src/nn/gemm_kernels_avx512.cpp")

# Audited mutable static state: "<repo-relative-file>:<identifier>".
# Every entry must say why it is safe.  Registry instrument lookups
# (`static obs::Counter& ...`) are allowed by pattern, not listed here.
MUTABLE_STATIC_ALLOWLIST = {
    # Logger: level cache is a relaxed atomic seeded from the environment
    # on first use (the sink mutex is a namespace-scope annotated Mutex).
    "src/util/log.cpp:level",
    # Pool worker flag: per-thread marker that enables nested-inline
    # execution; written only by the owning thread.
    "src/util/thread_pool.cpp:tls_in_worker",
    # GEMM scratch routing: per-thread pointer to the bound Workspace,
    # written only by the owning thread via WorkspaceScope (serve daemon
    # binds request-owned arenas); and the per-thread default arena set —
    # grow-only, zero steady-state allocation contract asserted by
    # gemm_test via gemm.workspace_grows.
    "src/nn/gemm.cpp:tls_workspace",
    "src/nn/gemm.cpp:tls_default_workspace",
    # Inference-mode flag: per-thread autograd switch (InferenceGuard).
    "src/nn/autograd.cpp:g_inference_mode",
    # Metrics registry singleton: append-only registration behind a mutex.
    "src/obs/metrics.cpp:registry",
    # Trace state: leaked singleton + per-thread span buffers by design
    # (worker threads may outlive main during exit).
    "src/obs/trace.cpp:s",
    "src/obs/trace.cpp:buffer",
    # Bluestein plan cache: annotated SharedMutex + GUARDED_BY buckets
    # (BluesteinCache); plans are immutable after construction (§6a/§6d).
    "src/dsp/fft.cpp:bluestein_cache",
    # rfft twiddle-plan cache: same SharedMutex + immutable-plan shape.
    "src/dsp/fft.cpp:rfft_cache",
    # Bluestein per-thread transform scratch: grow-only buffer reused
    # across transforms; per-thread (not plan-owned) because plans are
    # shared read-only across threads. Holds no cross-call state — it is
    # fully overwritten at the start of every transform.
    "src/dsp/fft.cpp:scratch",
    # SIMD dispatch selection: written once on first kernel use (or by
    # the test-only set_simd_level override), then read lock-free. The
    # level never changes results — every level is bitwise identical
    # (gemm_micro.h) — so this is a throughput knob, not hidden
    # numerical state.
    "src/nn/dispatch.cpp:g_active",
}

# Sanctioned concurrency-primitive declarations:
# "<repo-relative-file>:<identifier>".  Two kinds of entry:
#   - raw std primitives: util/mutex.h wrapper internals are the ONLY
#     sanctioned home — everywhere else must use the annotated wrappers
#     so the clang thread safety analysis sees every acquire/release;
#   - wrapper declarations exempt from the SG_ACQUIRED_AFTER/BEFORE
#     hierarchy requirement (the hierarchy's own sentinel tokens).
LOCK_PRIMITIVE_ALLOWLIST = {
    # Wrapper internals (util/mutex.h): the audited raw primitives that
    # everything else delegates to.
    "src/util/mutex.h:raw_mutex_",
    "src/util/mutex.h:raw_shared_mutex_",
    "src/util/mutex.h:raw_cv_",
    # Hierarchy root token: the outermost layer has nothing to be
    # acquired after, so its declaration carries no SG_ACQUIRED_*.
    "src/util/mutex.h:serve",
    # Sentinel token definitions: the hierarchy attributes live on the
    # extern declarations in mutex.h; the definitions are plain.
    "src/util/mutex.cpp:serve",
    "src/util/mutex.cpp:pool",
    "src/util/mutex.cpp:obs",
    "src/util/mutex.cpp:fft_cache",
    "src/util/mutex.cpp:log",
}

# Module DAG for the include-layering rule: src/<module>/... may include
# another module only if its own rank is STRICTLY greater (includes point
# down the stack; same-module includes are always fine). `pool` is a
# pseudo-module for src/util/thread_pool.* (see FILE_MODULE_OVERRIDES):
# the pool instruments itself through obs, while the rest of util sits
# below obs — splitting it keeps both facts in the DAG instead of
# collapsing them into a util<->obs cycle. Mirrors the link order in
# src/CMakeLists.txt and the capability layers in DESIGN §6d.
INCLUDE_LAYERS = {
    "util": 0,
    "obs": 1,
    "pool": 2,
    "nn": 3, "dsp": 3, "geo": 3,
    "train": 4, "data": 4, "metrics": 4,
    "core": 5,
    "apps": 6, "baselines": 6,
    "eval": 7, "serve": 7,
}
FILE_MODULE_OVERRIDES = {
    "src/util/thread_pool.h": "pool",
    "src/util/thread_pool.cpp": "pool",
}

# Counters surfaced by --stats (CI thread-safety job summary).
LOCK_STATS = {"annotated": 0, "allowlisted": 0}

# ---------------------------------------------------------------------------

ALLOW_RE = re.compile(r"//\s*sg-lint:\s*allow\(([a-z-]+)\)\s*(.*)")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def parse_allows(lines: list[str], findings: list[Finding], path: str):
    """Map line number -> set of waived rules (annotation covers its own
    line and the line directly below, so decl-above style works)."""
    allows: dict[int, set[str]] = {}
    for i, text in enumerate(lines, start=1):
        m = ALLOW_RE.search(text)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if rule not in RULES:
            findings.append(Finding(path, i, "annotation",
                                    f"unknown rule '{rule}' in sg-lint allow"))
            continue
        if not reason:
            findings.append(Finding(path, i, "annotation",
                                    "sg-lint allow() requires a justification "
                                    "after the closing parenthesis"))
            continue
        allows.setdefault(i, set()).add(rule)
        allows.setdefault(i + 1, set()).add(rule)
    return allows


def strip_strings_and_comments(text: str) -> str:
    """Blank out string/char literals and comments, preserving line
    structure, so token rules don't fire on quoted text or prose."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode in ("str", "chr"):
            quote = '"' if mode == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
            out.append("\n" if c == "\n" else " ")
        elif mode == "line":
            if c == "\n":
                mode = "code"
            out.append("\n" if c == "\n" else " ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Per-file rules.

THREAD_RE = re.compile(r"\bstd::(thread|jthread|async|launch)\b|\bpthread_\w+")

DETERMINISM_RE = re.compile(
    r"\bstd::rand\b|\brandom_device\b|\bsystem_clock\b|\bgettimeofday\b"
    r"|(?<![\w:.>])time\s*\(")

STATIC_DECL_RE = re.compile(r"^\s*(?:inline\s+)?(?:static|thread_local)\b(?!_)")
STATIC_OK_RE = re.compile(
    r"static_assert|static_cast"
    r"|\bconst\b|\bconstexpr\b|\bconsteval\b|\bconstinit\b"
    # registry instrument lookups: thread-safe, append-only handles
    r"|static\s+obs::(Counter|Gauge|MaxGauge|Histogram)&")
STATIC_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:=|;|\{)")

DOUBLE_RE = re.compile(r"\bdouble\b")
DOUBLE_CAST_RE = re.compile(r"static_cast<\s*(?:long\s+)?double\s*>")

RAW_LOCK_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable"
    r"|condition_variable_any)\s+([A-Za-z_]\w*)")
WRAPPED_LOCK_RE = re.compile(r"\b(?:spectra::)?(Mutex|SharedMutex)\s+([A-Za-z_]\w*)")
LOCK_HIER_RE = re.compile(r"\bSG_ACQUIRED_(?:AFTER|BEFORE)\b")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def gather_decl(code_lines: list[str], lineno: int, limit: int = 5) -> str:
    """Join the declaration starting at 1-based `lineno` through its
    terminating ';' (bounded lookahead) so hierarchy annotations on
    continuation lines are seen."""
    parts = []
    for j in range(lineno - 1, min(lineno - 1 + limit, len(code_lines))):
        parts.append(code_lines[j])
        if ";" in code_lines[j]:
            break
    return " ".join(parts)


def lint_file(disk_path: Path, rel: str, findings: list[Finding]):
    try:
        text = disk_path.read_text()
    except OSError as e:
        findings.append(Finding(str(disk_path), 0, "io", str(e)))
        return
    raw_lines = text.splitlines()
    allows = parse_allows(raw_lines, findings, rel)
    code_lines = strip_strings_and_comments(text).splitlines()

    def report(lineno: int, rule: str, message: str):
        if rule in allows.get(lineno, set()):
            return
        findings.append(Finding(rel, lineno, rule, message))

    rel_posix = rel.replace("\\", "/")

    if rel_posix.startswith("src/") and rel_posix not in THREAD_EXEMPT:
        for i, line in enumerate(code_lines, start=1):
            m = THREAD_RE.search(line)
            if m:
                report(i, "thread",
                       f"'{m.group(0)}' outside util/thread_pool — use "
                       "spectra::parallel_for / the shared pool")

    if rel_posix.startswith(DETERMINISM_DIRS):
        for i, line in enumerate(code_lines, start=1):
            m = DETERMINISM_RE.search(line)
            if m:
                report(i, "determinism",
                       f"nondeterministic source '{m.group(0).strip()}' in a "
                       "core path — derive randomness from spectra::Rng and "
                       "timing from util/stopwatch")

    if rel_posix.startswith("src/"):
        for i, line in enumerate(code_lines, start=1):
            if not STATIC_DECL_RE.search(line):
                continue
            if STATIC_OK_RE.search(line):
                continue
            decl = STATIC_DECL_RE.sub("", line, count=1).strip()
            # function (or member-function) declarations are not state
            if re.match(r"^[\w:<>,*&~\s]*[A-Za-z_]\w*\s*\(", decl):
                continue
            name_m = STATIC_NAME_RE.search(decl)
            name = name_m.group(1) if name_m else "?"
            if f"{rel_posix}:{name}" in MUTABLE_STATIC_ALLOWLIST:
                continue
            report(i, "mutable-static",
                   f"mutable static/thread_local '{name}' is not in the "
                   "audited allowlist (scripts/lint/sg_lint.py) — hidden "
                   "process state breaks checkpoint-resume and thread-count "
                   "invariance")

    if rel_posix in KERNEL_FILES:
        for i, line in enumerate(code_lines, start=1):
            stripped_casts = DOUBLE_CAST_RE.sub("", line)
            if DOUBLE_RE.search(stripped_casts):
                report(i, "float-mix",
                       "bare 'double' in a kernel file — kernels accumulate "
                       "in float; cross the precision boundary only via an "
                       "explicit static_cast<double>")

    if rel_posix.startswith("src/"):
        for i, line in enumerate(code_lines, start=1):
            m = RAW_LOCK_RE.search(line)
            if m:
                name = m.group(2)
                if f"{rel_posix}:{name}" in LOCK_PRIMITIVE_ALLOWLIST:
                    LOCK_STATS["allowlisted"] += 1
                else:
                    report(i, "lock-annotation",
                           f"raw std::{m.group(1)} '{name}' — use the "
                           "annotated spectra::Mutex/SharedMutex/CondVar "
                           "(util/mutex.h) so the clang thread safety "
                           "analysis sees every acquire, or add an "
                           "identifier-exact allowlist entry in "
                           "scripts/lint/sg_lint.py")
                continue
            m = WRAPPED_LOCK_RE.search(line)
            if m:
                name = m.group(2)
                if f"{rel_posix}:{name}" in LOCK_PRIMITIVE_ALLOWLIST:
                    LOCK_STATS["allowlisted"] += 1
                elif LOCK_HIER_RE.search(gather_decl(code_lines, i)):
                    LOCK_STATS["annotated"] += 1
                else:
                    report(i, "lock-annotation",
                           f"{m.group(1)} '{name}' declares no lock-hierarchy "
                           "position — add SG_ACQUIRED_AFTER(<own layer>) and "
                           "SG_ACQUIRED_BEFORE(<next layer>) using the "
                           "lock_order tokens (util/mutex.h; layer table in "
                           "DESIGN §6d), or allowlist it in "
                           "scripts/lint/sg_lint.py")

    if rel_posix.startswith("src/"):
        file_mod = FILE_MODULE_OVERRIDES.get(rel_posix)
        if file_mod is None:
            parts = rel_posix.split("/")
            file_mod = parts[1] if len(parts) >= 3 else None
        file_rank = INCLUDE_LAYERS.get(file_mod)
        if file_rank is not None:
            # scan RAW lines: include paths live inside string literals,
            # which strip_strings_and_comments blanks out
            for i, line in enumerate(raw_lines, start=1):
                m = INCLUDE_RE.match(line)
                if not m:
                    continue
                inc = m.group(1)
                inc_mod = FILE_MODULE_OVERRIDES.get("src/" + inc)
                if inc_mod is None:
                    inc_mod = inc.split("/")[0]
                if inc_mod == file_mod:
                    continue
                inc_rank = INCLUDE_LAYERS.get(inc_mod)
                if inc_rank is None:
                    continue  # generated headers, non-module paths
                if file_rank > inc_rank:
                    continue
                report(i, "include-layering",
                       f"module '{file_mod}' (rank {file_rank}) includes "
                       f"'{inc}' from module '{inc_mod}' (rank {inc_rank}) — "
                       "cross-module includes must point strictly down the "
                       "module DAG (INCLUDE_LAYERS, DESIGN §6d); a back-edge "
                       "re-introduces a dependency cycle")


# ---------------------------------------------------------------------------
# Registry rule (whole-repo).

KNOB_LITERAL_RE = re.compile(r'"(SPECTRA_[A-Z][A-Z0-9_]*)"')
METRIC_CALL_RE = re.compile(r'\b(?:counter|gauge|max_gauge|histogram)\(\s*"([a-z0-9_.]+)"')
TABLE_TOKEN_RE = re.compile(r"`([^`]+)`")

KNOB_BEGIN = "<!-- sg-lint:knob-table-begin -->"
KNOB_END = "<!-- sg-lint:knob-table-end -->"
METRIC_BEGIN = "<!-- sg-lint:metric-table-begin -->"
METRIC_END = "<!-- sg-lint:metric-table-end -->"


def extract_table_tokens(design_text: str, begin: str, end: str,
                         token_filter) -> set[str] | None:
    start = design_text.find(begin)
    stop = design_text.find(end)
    if start < 0 or stop < 0 or stop < start:
        return None
    block = design_text[start:stop]
    tokens = set()
    for raw in TABLE_TOKEN_RE.findall(block):
        tok = token_filter(raw)
        if tok:
            tokens.add(tok)
    return tokens


def knob_filter(raw: str) -> str | None:
    m = re.match(r"(SPECTRA_[A-Z][A-Z0-9_]*)", raw)
    return m.group(1) if m else None


def metric_filter(raw: str) -> str | None:
    return raw if re.fullmatch(r"[a-z0-9_]+(\.[a-z0-9_]+)+", raw) else None


def lint_registry(code_files: list[tuple[Path, str]], design_path: Path,
                  findings: list[Finding]):
    design_rel = str(design_path)
    try:
        design_text = design_path.read_text()
    except OSError as e:
        findings.append(Finding(design_rel, 0, "registry", str(e)))
        return

    doc_knobs = extract_table_tokens(design_text, KNOB_BEGIN, KNOB_END, knob_filter)
    doc_metrics = extract_table_tokens(design_text, METRIC_BEGIN, METRIC_END,
                                       metric_filter)
    if doc_knobs is None:
        findings.append(Finding(design_rel, 0, "registry",
                                f"missing {KNOB_BEGIN} / {KNOB_END} markers"))
        return
    if doc_metrics is None:
        findings.append(Finding(design_rel, 0, "registry",
                                f"missing {METRIC_BEGIN} / {METRIC_END} markers"))
        return

    used_knobs: dict[str, tuple[str, int]] = {}
    used_metrics: dict[str, tuple[str, int]] = {}
    for disk_path, rel in code_files:
        try:
            text = disk_path.read_text()
        except OSError:
            continue
        # knobs/metrics live in string literals, so scan the raw text
        for i, line in enumerate(text.splitlines(), start=1):
            if "sg-lint: allow(registry)" in line:
                continue
            for m in KNOB_LITERAL_RE.finditer(line):
                used_knobs.setdefault(m.group(1), (rel, i))
            for m in METRIC_CALL_RE.finditer(line):
                used_metrics.setdefault(m.group(1), (rel, i))

    for knob, (rel, line) in sorted(used_knobs.items()):
        if knob not in doc_knobs:
            findings.append(Finding(rel, line, "registry",
                                    f"env knob '{knob}' is read here but missing "
                                    f"from the DESIGN.md knob table"))
    for knob in sorted(doc_knobs - set(used_knobs)):
        findings.append(Finding(design_rel, 0, "registry",
                                f"knob table documents '{knob}' but no code "
                                f"reads it"))
    for metric, (rel, line) in sorted(used_metrics.items()):
        if metric not in doc_metrics:
            findings.append(Finding(rel, line, "registry",
                                    f"metric '{metric}' is registered here but "
                                    f"missing from the DESIGN.md metric table"))
    for metric in sorted(doc_metrics - set(used_metrics)):
        findings.append(Finding(design_rel, 0, "registry",
                                f"metric table documents '{metric}' but no "
                                f"code registers it"))


# ---------------------------------------------------------------------------

def repo_code_files(root: Path, globs) -> list[tuple[Path, str]]:
    files = []
    for pattern in globs:
        for p in sorted(root.glob(pattern)):
            files.append((p, p.relative_to(root).as_posix()))
    return files


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*", help="explicit files to lint")
    ap.add_argument("--as", dest="as_path", metavar="REL",
                    help="treat the single FILE argument as this repo-relative path")
    ap.add_argument("--design", type=Path, default=None,
                    help="DESIGN.md override (fixtures)")
    ap.add_argument("--root", type=Path, default=REPO_ROOT,
                    help="repository root (default: auto)")
    ap.add_argument("--no-registry", action="store_true",
                    help="skip the whole-repo registry rule")
    ap.add_argument("--stats", action="store_true",
                    help="print lock-annotation coverage counts after linting")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        print("\n".join(RULES))
        return 0

    root = args.root.resolve()
    findings: list[Finding] = []

    if args.as_path and len(args.files) != 1:
        print("--as requires exactly one FILE argument", file=sys.stderr)
        return 2

    if args.files:
        for f in args.files:
            disk = Path(f)
            rel = args.as_path if args.as_path else \
                disk.resolve().relative_to(root).as_posix()
            lint_file(disk, rel, findings)
        if args.design is not None:
            lint_registry([(Path(f), args.as_path or f) for f in args.files],
                          args.design, findings)
    else:
        code_files = repo_code_files(root, CODE_GLOBS)
        for disk, rel in code_files:
            lint_file(disk, rel, findings)
        if not args.no_registry:
            lint_registry(code_files, args.design or root / "DESIGN.md", findings)

    for f in findings:
        print(f)
    if args.stats:
        print(f"lock-annotation: {LOCK_STATS['annotated']} hierarchy-annotated "
              f"primitive(s), {LOCK_STATS['allowlisted']} allowlisted "
              f"declaration(s)")
    if findings:
        print(f"sg_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
