#!/usr/bin/env bash
# run_tidy.sh — run the curated clang-tidy profile (.clang-tidy) over the
# project and diff normalized findings against the committed baseline.
#
# Usage:
#   scripts/run_tidy.sh [--build-dir DIR] [--update] [--jobs N]
#
#   --build-dir DIR  build tree holding compile_commands.json
#                    (default: build; configured automatically if missing)
#   --update         rewrite scripts/lint/clang_tidy_baseline.txt from the
#                    current findings instead of failing on drift
#   --jobs N         parallel clang-tidy processes (default: nproc)
#
# Exit status: 0 clean-vs-baseline (or clang-tidy unavailable: the run is
# skipped with a notice so local machines without LLVM don't block — CI
# installs clang-tidy and enforces), 1 findings above baseline.
#
# Findings are normalized to "<repo-relative-path> [check-name]" — line
# numbers are dropped so unrelated edits don't churn the baseline file.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="$ROOT/build"
BASELINE="$ROOT/scripts/lint/clang_tidy_baseline.txt"
UPDATE=0
JOBS="$(nproc 2>/dev/null || echo 4)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --update)    UPDATE=1; shift ;;
    --jobs)      JOBS="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_tidy: $TIDY not found — skipping (CI's static-analysis job enforces this gate)"
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_tidy: configuring $BUILD_DIR to export compile_commands.json"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t FILES < <(cd "$ROOT" && git ls-files \
  'src/**/*.cpp' 'bench/*.cpp' 'examples/*.cpp')
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run_tidy: no source files found" >&2
  exit 2
fi

RAW="$(mktemp)"
CURRENT="$(mktemp)"
trap 'rm -f "$RAW" "$CURRENT"' EXIT

echo "run_tidy: $TIDY over ${#FILES[@]} files with $JOBS jobs"
# -Wno-unknown-warning-option: the compile database may carry GCC-only
# flags from a hardened configure; clang must not warn about them.
# xargs exit status 123 means "some invocation failed" — tolerated, since
# findings are counted from the log, but any other failure is fatal.
(cd "$ROOT" && printf '%s\n' "${FILES[@]}" \
  | xargs -P "$JOBS" -n 1 "$TIDY" -p "$BUILD_DIR" --quiet \
      --extra-arg=-Wno-unknown-warning-option) >"$RAW" 2>/dev/null || {
  status=$?
  if [[ $status -ne 123 ]]; then
    echo "run_tidy: clang-tidy invocation failed (exit $status)" >&2
    exit 2
  fi
}

# "path:line:col: warning: msg [check]" -> "repo-relative-path [check]"
sed -nE 's|^('"$ROOT"'/)?([^: ]+):[0-9]+:[0-9]+: warning: .* (\[[a-z0-9.,-]+\])$|\2 \3|p' \
  "$RAW" | sort -u >"$CURRENT"

if [[ $UPDATE -eq 1 ]]; then
  { grep '^#' "$BASELINE"; cat "$CURRENT"; } >"$BASELINE.tmp"
  mv "$BASELINE.tmp" "$BASELINE"
  echo "run_tidy: baseline rewritten with $(wc -l <"$CURRENT") finding(s)"
  exit 0
fi

ACCEPTED="$(grep -v -e '^#' -e '^[[:space:]]*$' "$BASELINE" | sort -u || true)"
NEW="$(comm -13 <(printf '%s\n' "$ACCEPTED") "$CURRENT" | sed '/^$/d' || true)"
FIXED="$(comm -23 <(printf '%s\n' "$ACCEPTED") "$CURRENT" | sed '/^$/d' || true)"

echo "run_tidy: $(wc -l <"$CURRENT") finding(s) total, baseline $(printf '%s' "$ACCEPTED" | grep -c . || true) entr(ies)"
if [[ -n "$FIXED" ]]; then
  echo "run_tidy: stale baseline entries (fixed — remove via --update):"
  printf '%s\n' "$FIXED" | sed 's/^/  /'
fi
if [[ -n "$NEW" ]]; then
  echo "run_tidy: NEW findings above baseline:"
  printf '%s\n' "$NEW" | sed 's/^/  /'
  echo "run_tidy: fix them, or add to $BASELINE with justification" >&2
  exit 1
fi
echo "run_tidy: clean versus baseline"
