#!/usr/bin/env python3
"""Gate kernel perf against the committed BENCH_KERNELS.json baseline.

Compares *within-run speedup ratios* (new kernel vs the direct/naive
reference measured in the same process on the same machine) rather than
absolute GFLOP/s, so the gate is robust to CI runners of different
speeds.  A kernel FAILS if its current speedup drops below
MIN_RATIO x the committed baseline speedup (>20% relative regression)
or if it disappears from the bench output.  Absolute GFLOP/s drops are
reported as warnings only.

A few kernels additionally carry *absolute* speedup floors, checked on
the committed baseline itself: these encode PR acceptance criteria (the
fused LSTM recurrence must hold >= 1.4x over the unfused composition,
the rfft power-of-two fast path >= 2x over Bluestein at the same
length), so a regenerated baseline cannot quietly launder a regression
into the new normal.

Usage: check_bench_kernels.py <baseline.json> <current.json>
"""

import json
import sys

MIN_RATIO = 0.8

# name -> minimum speedup the *committed baseline* must hold.
ABSOLUTE_FLOORS = {
    "lstm_train_gt": 1.4,
    "lstm_fused_train": 1.4,
    "rfft_pow2": 2.0,
}


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != 1:
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return {k["name"]: k for k in data["kernels"]}


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    baseline = load(sys.argv[1])
    current = load(sys.argv[2])

    failures = []
    for name, floor in ABSOLUTE_FLOORS.items():
        base = baseline.get(name)
        if base is None:
            failures.append(f"{name}: carries an absolute floor but is missing from baseline")
        elif base["speedup"] < floor:
            failures.append(
                f"{name}: committed baseline speedup {base['speedup']:.2f}x below the "
                f"{floor:.1f}x acceptance floor")

    print(f"{'kernel':<28} {'base spdup':>10} {'cur spdup':>10} {'ratio':>7}  status")
    for name, base in baseline.items():
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current bench output")
            print(f"{name:<28} {base['speedup']:>10.2f} {'-':>10} {'-':>7}  MISSING")
            continue
        ratio = cur["speedup"] / base["speedup"] if base["speedup"] > 0 else float("inf")
        ok = ratio >= MIN_RATIO
        print(f"{name:<28} {base['speedup']:>10.2f} {cur['speedup']:>10.2f} "
              f"{ratio:>7.2f}  {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{name}: speedup {cur['speedup']:.2f}x < {MIN_RATIO} x baseline "
                f"{base['speedup']:.2f}x")
        if cur["gflops_new"] < base["gflops_new"] * MIN_RATIO:
            print(f"  warning: {name} absolute throughput {cur['gflops_new']:.2f} GF/s "
                  f"vs baseline {base['gflops_new']:.2f} GF/s (machine-dependent; not gated)")

    for name in current:
        if name not in baseline:
            print(f"  note: {name} not in baseline (new kernel; add it by regenerating "
                  f"BENCH_KERNELS.json)")

    if failures:
        print("\nkernel perf regression gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("\nkernel perf regression gate passed")


if __name__ == "__main__":
    main()
