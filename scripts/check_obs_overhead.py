#!/usr/bin/env python3
"""Gate the telemetry-off overhead of the obs layer (DESIGN 6e).

The PR 1 contract is that every disabled probe (SG_TRACE_SPAN,
SG_PROFILE_SCOPE, registry counters) costs one relaxed atomic load and
a branch.  This script measures that contract end to end: it times
`integration_test` from a probe-free build (-DSPECTRA_STRIP_PROBES=ON,
the "seed timing") against the instrumented build with all telemetry
env knobs unset, and fails if the instrumented-but-disabled binary is
more than MAX_OVERHEAD slower.

Like check_bench_kernels.py the gate compares *within-run ratios* on
the same machine (min-of-N against min-of-N, interleaved A/B order),
never absolute seconds, so it is robust to CI runners of different
speeds.  A third telemetry-ON pass (profiler + sampler + trace +
metrics + manifest all enabled) is timed and reported for the record
but not gated: enabled-mode cost is a feature trade-off, not a
regression.

Usage: check_obs_overhead.py <stripped_binary> <instrumented_binary>
           [--runs N] [--max-overhead FRAC] [--artifacts DIR]
"""

import argparse
import os
import subprocess
import sys
import time

MAX_OVERHEAD = 0.02  # disabled probes may cost at most 2% wall time
RUNS = 5


def clean_env():
    """Process env with every SPECTRA_* knob removed (telemetry off)."""
    env = {k: v for k, v in os.environ.items() if not k.startswith("SPECTRA_")}
    return env


def telemetry_on_env(artifacts):
    env = clean_env()
    env["SPECTRA_PROFILE"] = os.path.join(artifacts, "profile.json")
    env["SPECTRA_TRACE"] = os.path.join(artifacts, "trace.json")
    env["SPECTRA_METRICS"] = os.path.join(artifacts, "metrics.json")
    env["SPECTRA_RUNMETA"] = os.path.join(artifacts, "run.json")
    env["SPECTRA_SAMPLE_MS"] = "10"
    return env


def time_once(binary, env):
    start = time.perf_counter()
    proc = subprocess.run(
        [binary], env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        sys.exit(f"{binary}: exited {proc.returncode}")
    return elapsed


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("stripped", help="integration_test from the SPECTRA_STRIP_PROBES build")
    parser.add_argument("instrumented", help="integration_test from the normal build")
    parser.add_argument("--runs", type=int, default=RUNS)
    parser.add_argument("--max-overhead", type=float, default=MAX_OVERHEAD)
    parser.add_argument("--artifacts", default="obs_overhead_artifacts",
                        help="directory for the telemetry-on run's dumps")
    args = parser.parse_args()

    os.makedirs(args.artifacts, exist_ok=True)
    on_env = telemetry_on_env(args.artifacts)

    # One untimed warm-up per binary (page cache, lazy dynamic linking),
    # then interleave A/B/C so drift hits all modes evenly.
    time_once(args.stripped, clean_env())
    time_once(args.instrumented, clean_env())
    stripped, disabled, enabled = [], [], []
    for i in range(args.runs):
        stripped.append(time_once(args.stripped, clean_env()))
        disabled.append(time_once(args.instrumented, clean_env()))
        enabled.append(time_once(args.instrumented, on_env))
        print(f"run {i + 1}/{args.runs}: stripped {stripped[-1]:.3f}s  "
              f"disabled {disabled[-1]:.3f}s  enabled {enabled[-1]:.3f}s")

    # min-of-N is the standard noise-robust point estimate for a
    # deterministic workload: every slowdown source is additive.
    base, off, on = min(stripped), min(disabled), min(enabled)
    off_overhead = off / base - 1.0
    on_overhead = on / base - 1.0

    print(f"\n{'mode':<22} {'min wall':>9} {'overhead':>9}")
    print(f"{'probe-free (seed)':<22} {base:>8.3f}s {'-':>9}")
    print(f"{'telemetry disabled':<22} {off:>8.3f}s {off_overhead:>8.1%}")
    print(f"{'telemetry enabled':<22} {on:>8.3f}s {on_overhead:>8.1%}  (reported, not gated)")

    if off_overhead > args.max_overhead:
        print(f"\nobs overhead gate FAILED: disabled telemetry costs "
              f"{off_overhead:.1%} > {args.max_overhead:.0%} vs the probe-free build")
        sys.exit(1)
    print(f"\nobs overhead gate passed: disabled telemetry costs "
          f"{off_overhead:.1%} (limit {args.max_overhead:.0%})")


if __name__ == "__main__":
    main()
