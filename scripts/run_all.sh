#!/usr/bin/env bash
# Full reproduction driver: build, test, regenerate every paper table and
# figure, and record outputs at the repo root. Generations are cached in
# ./spectra_cache, so re-runs are cheap.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt
echo "Done. Tables/figures: *.csv, summaries: bench_output.txt"
