#!/usr/bin/env bash
# Checkpoint gauntlet: proves the crash-safety contract end to end with a
# real SIGKILL (CI job `checkpoint-gauntlet`; runnable locally too).
#
#   1. reference   — uninterrupted run, checkpointing off
#   2. kill/resume — same run with snapshots every 5 iterations, SIGKILLed
#                    at a random moment mid-run, then relaunched; must
#                    resume from a snapshot and reproduce the reference
#                    loss trajectory and final parameters bitwise
#   3. corruption  — the newest snapshot on disk is truncated; a further
#                    relaunch must detect it, fall back to the previous
#                    good snapshot, and still reproduce the reference
#
# usage: scripts/checkpoint_gauntlet.sh [build-dir]

set -euo pipefail

BUILD_DIR=${1:-build}
BIN="$BUILD_DIR/examples/checkpoint_gauntlet"
# ~4 ms/iteration in Release: 1000 iterations keeps the run alive for a
# few seconds so the SIGKILL lands mid-run rather than after the finish.
ITERS=${SPECTRA_GAUNTLET_ITERS:-1000}
EVERY=${SPECTRA_GAUNTLET_EVERY:-25}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

[ -x "$BIN" ] || { echo "FAIL: $BIN not built"; exit 1; }

resumed_from() { sed -n 's/.*resumed_from=\([0-9]*\).*/\1/p' <<<"$1"; }
corrupt_skipped() { sed -n 's/.*corrupt_skipped=\([0-9]*\).*/\1/p' <<<"$1"; }

echo "== phase 1: reference run (uninterrupted, no checkpointing)"
"$BIN" "$ITERS" "$WORK/ref_loss.txt" "$WORK/ref_params.bin"

echo "== phase 2: SIGKILL mid-run at a random iteration, then resume"
CKPT="$WORK/ckpt"
export SPECTRA_CKPT_DIR="$CKPT" SPECTRA_CKPT_EVERY="$EVERY" SPECTRA_CKPT_KEEP=3
"$BIN" "$ITERS" "$WORK/loss.txt" "$WORK/params.bin" &
PID=$!
# Wait for the first snapshot so a resume is possible, then kill after a
# random extra delay so the interruption iteration is unpredictable.
for _ in $(seq 1 1200); do
  compgen -G "$CKPT/ckpt_*.sgc" > /dev/null && break
  sleep 0.05
done
compgen -G "$CKPT/ckpt_*.sgc" > /dev/null || { echo "FAIL: no snapshot appeared"; exit 1; }
sleep "$((RANDOM % 2)).$((RANDOM % 900 + 100))"
if kill -9 "$PID" 2>/dev/null; then
  echo "killed pid $PID"
else
  echo "run finished before the kill; resume path is still exercised below"
fi
wait "$PID" 2>/dev/null || true

OUT=$("$BIN" "$ITERS" "$WORK/loss.txt" "$WORK/params.bin")
echo "$OUT"
[ "$(resumed_from "$OUT")" -gt 0 ] || { echo "FAIL: relaunch did not resume from a snapshot"; exit 1; }
cmp "$WORK/ref_loss.txt" "$WORK/loss.txt" || { echo "FAIL: resumed loss trajectory diverged"; exit 1; }
cmp "$WORK/ref_params.bin" "$WORK/params.bin" || { echo "FAIL: resumed final parameters diverged"; exit 1; }
echo "resume reproduced the reference bitwise"

echo "== phase 3: truncate the newest snapshot, resume must fall back"
LATEST=$(ls "$CKPT"/ckpt_*.sgc | sort | tail -n 1)
SIZE=$(stat -c %s "$LATEST")
truncate -s $((SIZE / 2)) "$LATEST"
echo "truncated $LATEST ($SIZE -> $((SIZE / 2)) bytes)"

OUT=$("$BIN" "$ITERS" "$WORK/loss2.txt" "$WORK/params2.bin")
echo "$OUT"
[ "$(corrupt_skipped "$OUT")" -ge 1 ] || { echo "FAIL: corrupt snapshot was not detected"; exit 1; }
RESUMED=$(resumed_from "$OUT")
[ "$RESUMED" -gt 0 ] && [ "$RESUMED" -lt "$ITERS" ] || { echo "FAIL: did not fall back to an earlier snapshot (resumed_from=$RESUMED)"; exit 1; }
cmp "$WORK/ref_loss.txt" "$WORK/loss2.txt" || { echo "FAIL: post-corruption loss trajectory diverged"; exit 1; }
cmp "$WORK/ref_params.bin" "$WORK/params2.bin" || { echo "FAIL: post-corruption final parameters diverged"; exit 1; }
echo "corruption fallback reproduced the reference bitwise"

echo "checkpoint gauntlet PASSED"
