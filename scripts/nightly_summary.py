#!/usr/bin/env python3
"""Aggregate SPECTRA_RUNMETA manifests into a nightly job-summary table.

Every binary in this repo writes a machine-diffable run manifest when
SPECTRA_RUNMETA is set (src/obs/run_manifest.cpp): name, git sha, build
type, wall seconds, the SPECTRA_* environment, and a full metrics
snapshot. The nightly workflow collects every manifest its jobs left
behind and this script renders them as one GitHub-flavored markdown
table so a regression (wall time drifting up across the 10x serve soak,
peak RSS creeping between runs) is visible at a glance on the run page.

Usage: nightly_summary.py <manifest.json | dir>... [> $GITHUB_STEP_SUMMARY]

Directories are searched recursively for *run*.json. Files that fail to
parse are reported in the table rather than aborting the summary — one
truncated manifest must not hide the other nine.
"""

import json
import pathlib
import sys


def collect(args):
    paths = []
    for arg in args:
        p = pathlib.Path(arg)
        if p.is_dir():
            paths.extend(sorted(p.rglob("*run*.json")))
        elif p.exists():
            paths.append(p)
    return paths


def mib(value):
    return value / (1024.0 * 1024.0)


def row(path):
    try:
        with open(path) as f:
            m = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        return f"| `{path.name}` | — | — | — | — | — | — | parse failed: {err} |"

    name = m.get("name", "?")
    sha = str(m.get("git_sha", "?"))[:12]
    build = m.get("build_type", "?")
    wall = m.get("wall_seconds")
    wall_s = f"{wall:.1f}" if isinstance(wall, (int, float)) else "—"

    metrics = m.get("metrics", {})
    peak = metrics.get("max_gauges", {}).get("proc.peak_rss_bytes")
    peak_s = f"{mib(peak):.0f}" if isinstance(peak, (int, float)) and peak > 0 else "—"

    counters = metrics.get("counters", {})
    served = counters.get("serve.requests_completed")
    served_s = f"{served:.0f}" if isinstance(served, (int, float)) else "—"

    note = ""
    hist = metrics.get("histograms", {}).get("serve.req_seconds", {})
    if hist.get("count"):
        note = f"req p50 {hist.get('p50', 0):.3f}s / p99 {hist.get('p99', 0):.3f}s"

    return (f"| `{path.name}` | {name} | {sha} | {build} | {wall_s} "
            f"| {peak_s} | {served_s} | {note} |")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    paths = collect(sys.argv[1:])
    print("### Nightly run manifests")
    print()
    if not paths:
        print("No run manifests found — every nightly job should leave at "
              "least one via SPECTRA_RUNMETA.")
        sys.exit(1)
    print("| manifest | run | git | build | wall (s) | peak RSS (MiB) "
          "| served reqs | latency |")
    print("|---|---|---|---|---|---|---|---|")
    for path in paths:
        print(row(path))
    print()
    print(f"{len(paths)} manifest(s) aggregated.")


if __name__ == "__main__":
    main()
