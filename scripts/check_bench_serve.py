#!/usr/bin/env python3
"""Gate the serving daemon's load behavior against BENCH_SERVE.json.

Checks on a fresh bench_serve run, compared to the committed baseline:

1. Determinism (hard): the run's "deterministic" flag must be true —
   bench_serve compares every served response bitwise against a direct
   generate_city call and refuses to emit JSON otherwise, so a false or
   missing flag means the serve determinism contract broke.
2. Concurrency (hard, machine-independent): in_flight_peak must reach
   the client count of the loaded phase — the server genuinely held
   that many requests in flight at once.
3. Throughput under load (hard, machine-independent): the loaded
   phase's aggregate req/s must reach at least MIN_RATIO x the solo
   phase's req/s *within the same run*. Concurrency that serializes
   (a global lock, a single shared workspace) fails here regardless of
   machine speed.
4. Absolute throughput (hard, MIN_RATIO): loaded req/s must reach at
   least MIN_RATIO x the committed baseline. Machine-dependent, so the
   margin is generous.
5. Latency tail (hard, machine-independent): the loaded p99/p50 ratio
   must stay within TAIL_SLACK x the baseline's p99/p50 ratio — a
   fairness regression (one request starving behind batched others)
   widens the tail even on a faster machine.
6. Memory (hard): peak RSS growth between the solo and loaded phases
   must stay within RSS_GROWTH_BUDGET — per-request state must be
   pooled, not accumulated per request served.

Usage: check_bench_serve.py <baseline.json> <current.json>
"""

import json
import sys

MIN_RATIO = 0.8
TAIL_SLACK = 2.0
RSS_GROWTH_BUDGET = 64 * 1024 * 1024


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != 1:
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    if len(data.get("phases", [])) < 2:
        sys.exit(f"{path}: expected at least a solo and a loaded phase")
    return data


def mib(n):
    return n / (1024.0 * 1024.0)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    baseline = load(sys.argv[1])
    current = load(sys.argv[2])

    solo, loaded = current["phases"][0], current["phases"][-1]
    failures = []

    deterministic = current.get("deterministic", False)
    print(f"deterministic: {deterministic}")
    if deterministic is not True:
        failures.append("served responses were not bitwise identical to direct generation")

    peak = current["in_flight_peak"]
    clients = loaded["clients"]
    print(f"in-flight peak: {peak:.0f} (required {clients})")
    if peak < clients:
        failures.append(
            f"in-flight peak {peak:.0f} never reached the {clients} concurrent clients")

    scale = loaded["req_per_s"] / solo["req_per_s"] if solo["req_per_s"] > 0 else 0.0
    print(f"within-run loaded/solo req/s ratio: {scale:.2f} (min {MIN_RATIO})")
    if scale < MIN_RATIO:
        failures.append(
            f"loaded throughput {loaded['req_per_s']:.2f} req/s fell below {MIN_RATIO} x "
            f"solo {solo['req_per_s']:.2f} req/s — concurrency is serializing")

    base_rate = baseline["req_per_s"]
    cur_rate = current["req_per_s"]
    ratio = cur_rate / base_rate if base_rate > 0 else float("inf")
    print(f"loaded throughput: {cur_rate:.2f} req/s vs baseline {base_rate:.2f} "
          f"(ratio {ratio:.2f}, min {MIN_RATIO})")
    if ratio < MIN_RATIO:
        failures.append(
            f"loaded throughput {cur_rate:.2f} req/s < {MIN_RATIO} x baseline {base_rate:.2f}")

    base_tail = baseline["p99_s"] / baseline["p50_s"] if baseline["p50_s"] > 0 else 1.0
    cur_tail = current["p99_s"] / current["p50_s"] if current["p50_s"] > 0 else 1.0
    print(f"loaded p99/p50: {cur_tail:.2f} vs baseline {base_tail:.2f} "
          f"(max {TAIL_SLACK} x baseline)")
    if cur_tail > TAIL_SLACK * base_tail:
        failures.append(
            f"latency tail widened: p99/p50 {cur_tail:.2f} > {TAIL_SLACK} x "
            f"baseline {base_tail:.2f}")

    growth = current["rss_growth_bytes"]
    print(f"rss growth solo->loaded: {mib(growth):.1f} MiB "
          f"(budget {mib(RSS_GROWTH_BUDGET):.1f} MiB)")
    if growth > RSS_GROWTH_BUDGET:
        failures.append(
            f"peak RSS grew {mib(growth):.1f} MiB under load "
            f"(budget {mib(RSS_GROWTH_BUDGET):.1f} MiB) — per-request state is accumulating")

    if failures:
        print("\nserve load gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("\nserve load gate passed")


if __name__ == "__main__":
    main()
