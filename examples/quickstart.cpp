// Quickstart: the end-to-end SpectraGAN workflow in ~60 lines.
//
//   1. Build a small synthetic multi-city dataset (3 cities).
//   2. Train SpectraGAN on two cities (1 week of hourly traffic).
//   3. Generate 3 weeks of traffic for the *unseen* third city from its
//      public context alone.
//   4. Score the generation with the paper's fidelity metrics and render
//      the time-averaged traffic maps.
//
// Run:  ./quickstart  (env knobs: SPECTRA_ITERS, SPECTRA_SEED)

#include <iostream>

#include "core/trainer.h"
#include "core/variants.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "eval/protocol.h"
#include "eval/report.h"
#include "util/env.h"
#include "util/stopwatch.h"

int main() {
  using namespace spectra;

  // 1. Dataset: three small cities from the Country-1 traffic process.
  data::DatasetConfig data_config;
  data_config.weeks = 6;
  data_config.seed = static_cast<std::uint64_t>(env_long("SPECTRA_SEED", 7));
  data::CountryDataset dataset = data::make_country1(data_config);
  dataset.cities.resize(3);
  std::cout << "dataset: " << dataset.cities.size() << " cities, "
            << dataset.cities[0].steps() << " hourly steps each\n";

  // 2. Train on cities 0 and 1.
  core::SpectraGanConfig config = core::default_config();
  config.iterations = env_long("SPECTRA_ITERS", 120);
  core::SpectraGan model(config, config.seed);
  data::PatchSampler sampler(dataset, {0, 1}, config.patch, 0, config.train_steps);

  Rng rng(data_config.seed ^ 0xABCDEF);
  Stopwatch watch;
  const core::TrainStats stats = model.train(sampler, rng);
  std::cout << "trained " << stats.iterations << " iterations in " << stats.seconds
            << " s (final L1 " << stats.final_l1_loss << ")\n";

  // 3. Generate 3 weeks for the unseen city 2.
  const data::City& target = dataset.cities[2];
  watch.reset();
  geo::CityTensor synthetic = model.generate_city(target.context, 3 * 168, rng);
  std::cout << "generated " << synthetic.steps() << " steps for unseen " << target.name << " ("
            << target.height() << "x" << target.width() << ") in " << watch.seconds() << " s\n";

  // 4. Fidelity metrics + qualitative maps.
  eval::EvalConfig eval_config = eval::default_eval_config();
  const eval::MetricRow row = eval::compute_metrics("SpectraGAN", target, synthetic, eval_config);
  const eval::MetricRow ref = eval::data_reference_row(target, eval_config);
  eval::emit_table(eval::metrics_table({row, ref}, /*include_fvd=*/true), "Quickstart fidelity",
                   "");

  std::cout << "\nReal time-averaged traffic:\n"
            << eval::ascii_map(target.traffic.slice_time(168, 504).time_average())
            << "\nSynthetic time-averaged traffic:\n"
            << eval::ascii_map(synthetic.time_average());
  return 0;
}
