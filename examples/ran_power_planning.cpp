// RAN planning on synthetic data (§5.1 + §5.2): an operator-less
// researcher uses SpectraGAN-generated traffic to (a) size micro-BS
// sleeping savings and (b) plan load-balanced RU-to-CU associations for
// a vRAN edge datacenter — then checks both decisions against the real
// traffic the model never saw.
//
// Run:  ./ran_power_planning   (env: SPECTRA_ITERS, SPECTRA_SEED)

#include <iostream>

#include "apps/power.h"
#include "apps/vran.h"
#include "baselines/model_api.h"
#include "core/variants.h"
#include "data/dataset.h"
#include "eval/report.h"
#include "util/env.h"

int main() {
  using namespace spectra;

  data::DatasetConfig dc;
  dc.weeks = 3;
  dc.seed = static_cast<std::uint64_t>(env_long("SPECTRA_SEED", 31));
  data::CountryDataset dataset = data::make_country2(dc);

  // Train with city 0 held out.
  core::SpectraGanConfig config = core::default_config();
  config.iterations = env_long("SPECTRA_ITERS", 250);
  std::unique_ptr<baselines::TrafficGenerator> model = baselines::make_spectragan(config);
  Rng rng(dc.seed ^ 0xF00D);
  model->fit(dataset, {1, 2, 3}, 168, rng);

  const data::City& target = dataset.cities[0];
  const geo::CityTensor synthetic = model->generate(target, 2 * 168, rng);
  const geo::CityTensor real = target.traffic.slice_time(168, 2 * 168);
  std::cout << "generated 2 weeks of synthetic traffic for held-out " << target.name << "\n";

  // (a) Micro-BS sleeping: policy sized on synthetic data, billed on real
  // loads.
  const apps::SleepingResult from_real = apps::simulate_bs_sleeping(real, real);
  const apps::SleepingResult from_synth = apps::simulate_bs_sleeping(synthetic, real);
  CsvWriter power({"policy source", "always-on [W/px]", "with sleeping [W/px]", "savings"});
  power.add_row({"real traffic", CsvWriter::num(from_real.power_always_on, 4),
                 CsvWriter::num(from_real.power_with_sleeping, 4),
                 CsvWriter::num(from_real.savings_fraction, 3)});
  power.add_row({"SpectraGAN traffic", CsvWriter::num(from_synth.power_always_on, 4),
                 CsvWriter::num(from_synth.power_with_sleeping, 4),
                 CsvWriter::num(from_synth.savings_fraction, 3)});
  eval::emit_table(power, "Micro-BS sleeping (decisions vs real loads)", "");

  // (b) vRAN: RU-to-CU association planned per hour on day 1, evaluated
  // on day 2 of the real traffic.
  CsvWriter vran({"CUs", "Jain (planned on synthetic)", "Jain (planned on real)"});
  for (long cus : {4L, 6L, 8L}) {
    const apps::VranComparison synth_plan = apps::evaluate_vran(synthetic, real, cus, 0, 24, 24);
    const apps::VranComparison real_plan = apps::evaluate_vran(real, real, cus, 0, 24, 24);
    vran.add_row({std::to_string(cus),
                  CsvWriter::num(synth_plan.mean_jain, 3) + " +/- " +
                      CsvWriter::num(synth_plan.std_jain, 2),
                  CsvWriter::num(real_plan.mean_jain, 3) + " +/- " +
                      CsvWriter::num(real_plan.std_jain, 2)});
  }
  eval::emit_table(vran, "vRAN RU-to-CU load balancing", "");

  // Visual: one hour's partition of the city.
  const std::vector<long> assignment = apps::partition_rus(real.frame(19), 4);
  std::cout << "\nRU-to-CU partition at 19:00 (4 CUs):\n";
  for (long i = 0; i < target.height(); ++i) {
    for (long j = 0; j < target.width(); ++j) {
      std::cout << static_cast<char>('A' + assignment[static_cast<std::size_t>(i * target.width() + j)]);
    }
    std::cout << '\n';
  }
  std::cout << "cut edges: " << apps::cut_edges(assignment, target.height(), target.width())
            << "\n";
  return 0;
}
