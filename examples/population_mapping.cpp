// Dynamic urban population tracking from synthetic traffic (§5.3):
// estimate hour-by-hour population presence with the Eq. 8 regression,
// fed by SpectraGAN traffic for a city whose measurements were never
// seen, and compare against the real-fed estimate (PSNR + maps).
//
// Run:  ./population_mapping   (env: SPECTRA_ITERS, SPECTRA_SEED)

#include <iostream>

#include "apps/population.h"
#include "baselines/model_api.h"
#include "core/variants.h"
#include "data/dataset.h"
#include "eval/report.h"
#include "metrics/psnr.h"
#include "util/env.h"

int main() {
  using namespace spectra;

  data::DatasetConfig dc;
  dc.weeks = 3;
  dc.seed = static_cast<std::uint64_t>(env_long("SPECTRA_SEED", 41));
  data::CountryDataset dataset = data::make_country1(dc);
  dataset.cities.resize(4);

  core::SpectraGanConfig config = core::default_config();
  config.iterations = env_long("SPECTRA_ITERS", 250);
  std::unique_ptr<baselines::TrafficGenerator> model = baselines::make_spectragan(config);
  Rng rng(dc.seed ^ 0xBEEF);
  model->fit(dataset, {0, 1, 2}, 168, rng);

  const data::City& target = dataset.cities[3];
  const geo::CityTensor synthetic = model->generate(target, 168, rng);
  const geo::CityTensor real = target.traffic.slice_time(168, 168);

  const apps::PopulationModelParams params = apps::default_population_params();
  const apps::TrackingComparison tracking =
      apps::compare_population_tracking(real, synthetic, 168, 1, params);

  CsvWriter summary({"quantity", "value"});
  summary.add_row({"mean PSNR [dB]", CsvWriter::num(tracking.mean_psnr, 3)});
  summary.add_row({"std PSNR [dB]", CsvWriter::num(tracking.std_psnr, 3)});
  summary.add_row({"acceptability threshold", "20 dB"});
  eval::emit_table(summary, "Population tracking: synthetic-fed vs real-fed maps", "");

  // Morning/noon/evening presence maps side by side (Fig. 11-style).
  for (long hour : {8L, 13L, 21L}) {
    const geo::GridMap p_real = apps::estimate_population(real.frame(hour), hour, params);
    const geo::GridMap p_synth = apps::estimate_population(synthetic.frame(hour), hour, params);
    std::cout << "\n== presence at " << hour << ":00 (PSNR "
              << CsvWriter::num(metrics::psnr(p_real, p_synth), 3) << " dB) ==\n";
    std::cout << "[real-fed]\n" << eval::ascii_map(p_real);
    std::cout << "[SpectraGAN-fed]\n" << eval::ascii_map(p_synth);
  }

  // Hourly total-presence curves show the circadian rhythm both agree on.
  std::vector<double> total_real, total_synth;
  for (long t = 0; t < 168; ++t) {
    const long hour = t % 24;
    total_real.push_back(apps::estimate_population(real.frame(t), hour, params).sum());
    total_synth.push_back(apps::estimate_population(synthetic.frame(t), hour, params).sum());
  }
  eval::multi_series_table({"real_fed", "synthetic_fed"}, {total_real, total_synth})
      .write("population_series.csv");
  std::cout << "\n(hourly city-total presence series: population_series.csv)\n";
  return 0;
}
