// Inspection CLI for exported .sgt traffic tensors (the release format
// written by eval::save_city_tensor and examples/unseen_city_generation):
//
//   sgt_inspect <file.sgt>                    summary stats + maps
//   sgt_inspect <file.sgt> series <i> <j>     one pixel's series as CSV
//   sgt_inspect <a.sgt> compare <b.sgt>       fidelity metrics A vs B
//
// Gives downstream users of a released synthetic dataset a zero-setup
// way to sanity-check what they downloaded.

#include <algorithm>
#include <iostream>

#include "dsp/spectrum.h"
#include "eval/protocol.h"
#include "eval/report.h"
#include "metrics/autocorr_l1.h"
#include "metrics/marginal.h"
#include "metrics/ssim.h"
#include "metrics/tstr.h"

namespace {

using namespace spectra;

int usage() {
  std::cerr << "usage: sgt_inspect <file.sgt> [series <row> <col> | compare <other.sgt>]\n";
  return 2;
}

void print_summary(const geo::CityTensor& t) {
  std::vector<double> values = t.values();
  std::sort(values.begin(), values.end());
  auto q = [&values](double p) {
    return values[static_cast<std::size_t>(p * static_cast<double>(values.size() - 1))];
  };
  CsvWriter table({"quantity", "value"});
  table.add_row({"steps", std::to_string(t.steps())});
  table.add_row({"height", std::to_string(t.height())});
  table.add_row({"width", std::to_string(t.width())});
  table.add_row({"mean", CsvWriter::num(t.values().empty() ? 0.0 : t.time_average().mean(), 5)});
  table.add_row({"p50", CsvWriter::num(q(0.5), 5)});
  table.add_row({"p90", CsvWriter::num(q(0.9), 5)});
  table.add_row({"max", CsvWriter::num(values.back(), 5)});
  eval::emit_table(table, "tensor summary", "");

  std::cout << "\ntime-averaged map:\n" << eval::ascii_map(t.time_average());

  // Dominant frequency bins of the city-average series.
  const std::vector<double> series = t.space_average();
  const std::vector<dsp::Complex> top = dsp::top_k_components(dsp::rfft(series), 6);
  std::cout << "dominant frequency bins (cycles per tensor span): ";
  for (std::size_t k = 0; k < top.size(); ++k) {
    if (std::abs(top[k]) > 0.0) std::cout << k << " ";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::optional<geo::CityTensor> tensor = eval::load_city_tensor(argv[1]);
  if (!tensor) {
    std::cerr << "cannot read " << argv[1] << " (not a .sgt tensor?)\n";
    return 1;
  }

  if (argc == 2) {
    print_summary(*tensor);
    return 0;
  }

  const std::string mode = argv[2];
  if (mode == "series" && argc == 5) {
    const long row = std::atol(argv[3]);
    const long col = std::atol(argv[4]);
    if (row < 0 || row >= tensor->height() || col < 0 || col >= tensor->width()) {
      std::cerr << "pixel out of range\n";
      return 1;
    }
    std::cout << render_table(
        eval::series_table(tensor->pixel_series(row, col),
                           "traffic(" + std::to_string(row) + "," + std::to_string(col) + ")"));
    return 0;
  }

  if (mode == "compare" && argc == 4) {
    const std::optional<geo::CityTensor> other = eval::load_city_tensor(argv[3]);
    if (!other) {
      std::cerr << "cannot read " << argv[3] << "\n";
      return 1;
    }
    if (other->height() != tensor->height() || other->width() != tensor->width()) {
      std::cerr << "tensors have different spatial shapes\n";
      return 1;
    }
    const long steps = std::min(tensor->steps(), other->steps());
    const geo::CityTensor a = tensor->slice_time(0, steps);
    const geo::CityTensor b = other->slice_time(0, steps);
    CsvWriter table({"metric", "value"});
    table.add_row({"M-TV", CsvWriter::num(metrics::marginal_tv(a, b), 4)});
    table.add_row({"SSIM", CsvWriter::num(metrics::ssim(a.time_average(), b.time_average()), 4)});
    table.add_row(
        {"AC-L1", CsvWriter::num(metrics::autocorr_l1(a, b, std::min<long>(168, steps - 1)), 4)});
    table.add_row({"TSTR R2", CsvWriter::num(metrics::tstr_r2(b, a), 4)});
    eval::emit_table(table, std::string(argv[1]) + " vs " + argv[3], "");
    return 0;
  }

  return usage();
}
