// The paper's release workflow: train SpectraGAN once on a multi-city
// dataset, save the model, then (as a downstream user would) reload it
// and synthesize multi-week traffic for a brand-new city from nothing
// but its public context maps.
//
//   1. Train on 4 Country-1 cities; save parameters to disk.
//   2. Build a *new* city that exists in no dataset (fresh latents ->
//      fresh context); the model never sees its traffic.
//   3. Reload the model, generate 6 weeks of hourly traffic (2x the
//      k-multiple expansion beyond the paper's 3 weeks).
//   4. Export the synthetic tensor (binary + CSV series) for sharing.
//
// Run:  ./unseen_city_generation   (env: SPECTRA_ITERS, SPECTRA_SEED)

#include <iostream>

#include "core/trainer.h"
#include "core/variants.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "eval/protocol.h"
#include "eval/report.h"
#include "util/env.h"

int main() {
  using namespace spectra;

  const std::uint64_t seed = static_cast<std::uint64_t>(env_long("SPECTRA_SEED", 21));

  // 1. Train on four cities.
  data::DatasetConfig dc;
  dc.weeks = 2;
  dc.seed = seed;
  data::CountryDataset dataset = data::make_country1(dc);
  dataset.cities.resize(4);

  core::SpectraGanConfig config = core::default_config();
  config.iterations = env_long("SPECTRA_ITERS", 250);
  core::SpectraGan trained(config, config.seed);
  data::PatchSampler sampler(dataset, {0, 1, 2, 3}, config.patch, 0, config.train_steps);
  Rng rng(seed ^ 0x5EED);
  std::cout << "training on " << sampler.window_count() << " candidate windows...\n";
  trained.train(sampler, rng);
  trained.save("spectragan_pretrained.bin");
  std::cout << "saved pre-trained model to spectragan_pretrained.bin\n";

  // 2. A brand-new city: public context only, no measured traffic at all.
  Rng city_rng(seed ^ 0xC17F);
  const data::LatentFields latents = data::sample_latent_fields(18, 16, city_rng);
  const geo::ContextTensor context = data::derive_context(latents, city_rng);
  std::cout << "new city: 18x16 pixels, " << context.steps() << " context channels\n";

  // 3. Reload into a fresh model instance and generate 6 weeks.
  core::SpectraGan releasing(config, /*seed=*/12345);
  releasing.load("spectragan_pretrained.bin");
  const long horizon = 6 * 168;
  const geo::CityTensor synthetic = releasing.generate_city(context, horizon, rng);
  std::cout << "generated " << synthetic.steps() << " hourly steps ("
            << synthetic.steps() / 168 << " weeks)\n";

  // 4. Export for sharing.
  eval::save_city_tensor("new_city_traffic.sgt", synthetic);
  eval::series_table(synthetic.space_average(), "city_mean_traffic")
      .write("new_city_series.csv");
  std::cout << "\nSynthetic time-averaged traffic for the unseen city:\n"
            << eval::ascii_map(synthetic.time_average())
            << "\nArtifacts: spectragan_pretrained.bin, new_city_traffic.sgt, "
               "new_city_series.csv\n";
  return 0;
}
