// CI checkpoint gauntlet driver: trains a small, fully deterministic
// SpectraGAN with checkpointing driven by the SPECTRA_CKPT_* env knobs,
// then writes the loss trajectory (hexfloat, so equality is bitwise) and
// the final parameters to the given paths. scripts/checkpoint_gauntlet.sh
// runs this binary three ways — uninterrupted for a reference, SIGKILLed
// mid-run and relaunched, and against a deliberately truncated snapshot —
// and asserts all three produce identical trajectories and parameters.
//
// usage: checkpoint_gauntlet <iterations> <loss_out> <params_out>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/config.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "obs/metrics.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr, "usage: %s <iterations> <loss_out> <params_out>\n", argv[0]);
    return 2;
  }
  const long iterations = std::strtol(argv[1], nullptr, 10);
  const std::string loss_out = argv[2];
  const std::string params_out = argv[3];

  spectra::data::DatasetConfig dc;
  dc.weeks = 1;
  const spectra::data::CountryDataset dataset = spectra::data::make_country2(dc);

  spectra::core::SpectraGanConfig config;
  config.train_steps = 24;
  config.spectrum_bins = 8;
  config.hidden_channels = 6;
  config.encoder_mid_channels = 8;
  config.spectrum_mid_channels = 8;
  config.lstm_hidden = 8;
  config.cond_dim = 8;
  config.disc_mlp_hidden = 8;
  config.noise_channels = 2;
  config.batch = 2;
  config.iterations = iterations;

  spectra::core::SpectraGan model(config, 12);
  const spectra::data::PatchSampler sampler(dataset, {0, 1}, config.patch, 0, config.train_steps);
  spectra::Rng rng(13);

  // Checkpoint knobs come from SPECTRA_CKPT_DIR / _EVERY / _KEEP; when
  // the dir holds a snapshot this resumes instead of starting over.
  const spectra::core::TrainStats stats = model.train(sampler, rng);

  std::FILE* f = std::fopen(loss_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", loss_out.c_str());
    return 1;
  }
  for (std::size_t i = 0; i < stats.d_loss_history.size(); ++i) {
    std::fprintf(f, "%zu %a %a %a %a %a\n", i, stats.d_loss_history[i],
                 stats.g_adv_loss_history[i], stats.l1_loss_history[i],
                 stats.grad_norm_d_history[i], stats.grad_norm_g_history[i]);
  }
  std::fclose(f);
  model.save(params_out);

  const std::uint64_t corrupt_skipped =
      spectra::obs::Registry::instance().counter("checkpoint.corrupt_skipped").value();
  std::printf("gauntlet iterations=%ld resumed_from=%ld corrupt_skipped=%llu\n",
              stats.iterations, stats.resumed_iteration,
              static_cast<unsigned long long>(corrupt_skipped));
  return 0;
}
