// Figure 2 — traffic-flow phenomenon: the peak-traffic area shifts to a
// neighbouring region within two hours, driven by the smooth spatial
// variation of the residential/business activity mix.
//
// We quantify the effect across every Country-1 city: where the hourly
// argmax pixel sits over an afternoon-to-evening window, how far it
// moves, and the fraction of pixels whose daily peak hour differs from a
// 4-neighbour's by at least one hour (flow intensity).

#include <cmath>
#include <iostream>

#include "bench_common.h"

namespace {

using namespace spectra;

const data::CountryDataset& country1() {
  static const data::CountryDataset dataset = data::make_country1(bench::dataset_config());
  return dataset;
}

// Hour of day at which a pixel's average day peaks.
geo::GridMap peak_hour_map(const geo::CityTensor& traffic) {
  geo::GridMap peaks(traffic.height(), traffic.width());
  const long days = traffic.steps() / 24;
  for (long i = 0; i < traffic.height(); ++i) {
    for (long j = 0; j < traffic.width(); ++j) {
      double best = -1.0;
      long best_h = 0;
      for (long h = 0; h < 24; ++h) {
        double acc = 0.0;
        for (long d = 0; d < days; ++d) acc += traffic.at(d * 24 + h, i, j);
        if (acc > best) {
          best = acc;
          best_h = h;
        }
      }
      peaks.at(i, j) = static_cast<double>(best_h);
    }
  }
  return peaks;
}

void BM_PeakHourMaps(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(peak_hour_map(country1().cities[0].traffic));
  }
}
BENCHMARK(BM_PeakHourMaps)->Iterations(1)->Unit(benchmark::kSecond);

void report() {
  CsvWriter table({"city", "argmax shift 12h->14h->...->20h (row,col)",
                   "neighbour peak-hour disagreement"});
  for (const data::City& city : country1().cities) {
    // Track the argmax pixel across 2-hour windows of the first Friday.
    std::string trail;
    for (long h = 12; h <= 20; h += 2) {
      const long t = 4 * 24 + h;  // day 4 (Friday) of week 1
      const geo::GridMap frame = city.traffic.frame(t);
      long best = 0;
      for (long p = 1; p < frame.size(); ++p) {
        if (frame[p] > frame[best]) best = p;
      }
      trail += "(" + std::to_string(best / city.width()) + "," +
               std::to_string(best % city.width()) + ") ";
    }

    const geo::GridMap peaks = peak_hour_map(city.traffic);
    long disagree = 0, pairs = 0;
    for (long i = 0; i < city.height(); ++i) {
      for (long j = 0; j + 1 < city.width(); ++j) {
        if (std::fabs(peaks.at(i, j) - peaks.at(i, j + 1)) >= 1.0) ++disagree;
        ++pairs;
      }
    }
    table.add_row({city.name, trail,
                   CsvWriter::num(static_cast<double>(disagree) / static_cast<double>(pairs), 3)});
  }
  eval::emit_table(table, "Fig. 2 — peak-traffic flows across neighbouring regions",
                   "fig2_flows.csv");

  const data::City& city_a = country1().cities[0];
  std::cout << "\nCITY A peak-hour map (digits = hour mod 10; flows appear as smooth "
               "gradients between business midday and residential evening):\n";
  const geo::GridMap peaks = peak_hour_map(city_a.traffic);
  for (long i = 0; i < peaks.height(); ++i) {
    for (long j = 0; j < peaks.width(); ++j) {
      std::cout << static_cast<char>('0' + static_cast<long>(peaks.at(i, j)) % 10);
    }
    std::cout << '\n';
  }
}

}  // namespace

SG_BENCH_MAIN(report)
