// Figure 4 / Appendix C — the k-multiple frequency expansion.
//
// Quantifies the approximation the paper justifies analytically: for
// signals dominated by a few harmonics (mobile traffic), IFFT(f') of the
// expanded vector matches the ground-truth long signal; total energy
// scales by k. Also micro-benchmarks the FFT kernels across the lengths
// the pipeline uses.

#include <cmath>

#include "bench_common.h"
#include "dsp/expansion.h"
#include "dsp/spectrum.h"

namespace {

using namespace spectra;

void BM_FftLength(benchmark::State& state) {
  const long n = state.range(0);
  std::vector<dsp::Complex> x(static_cast<std::size_t>(n));
  Rng rng(static_cast<std::uint64_t>(n));
  for (auto& c : x) c = dsp::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  for (auto _ : state) {
    std::vector<dsp::Complex> copy = x;
    dsp::fft_inplace(copy, false);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_FftLength)->Arg(64)->Arg(168)->Arg(504)->Arg(1024);

void BM_ExpansionK3(benchmark::State& state) {
  std::vector<double> x(168);
  Rng rng(1);
  for (double& v : x) v = rng.uniform(0, 1);
  const std::vector<dsp::Complex> spec = dsp::rfft(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::synthesize_expanded(spec, 168, 3));
  }
}
BENCHMARK(BM_ExpansionK3);

void report() {
  // Accuracy study: periodic base + varying noise, expansion error vs the
  // true continuation of the same process.
  CsvWriter table({"k", "noise std", "expansion MAE vs true long signal", "energy ratio"});
  for (long k : {2L, 3L, 4L}) {
    for (double noise : {0.0, 0.02, 0.1}) {
      const long base_t = 168;
      Rng rng(static_cast<std::uint64_t>(k * 100 + static_cast<long>(noise * 1000)));
      // True long signal: deterministic harmonics + iid noise.
      std::vector<double> long_signal(static_cast<std::size_t>(k * base_t));
      for (long t = 0; t < k * base_t; ++t) {
        long_signal[static_cast<std::size_t>(t)] =
            1.0 + 0.7 * std::cos(2.0 * M_PI * static_cast<double>(t) / 24.0) +
            0.2 * std::cos(2.0 * M_PI * static_cast<double>(t) / 168.0) +
            noise * rng.normal();
      }
      const std::vector<double> base(long_signal.begin(), long_signal.begin() + base_t);
      const std::vector<double> approx = dsp::synthesize_expanded(dsp::rfft(base), base_t, k);

      double mae = 0.0;
      for (long t = 0; t < k * base_t; ++t) {
        mae += std::fabs(approx[static_cast<std::size_t>(t)] -
                         long_signal[static_cast<std::size_t>(t)]);
      }
      mae /= static_cast<double>(k * base_t);

      double base_energy = 0.0, approx_energy = 0.0;
      for (const dsp::Complex& c : dsp::rfft(base)) base_energy += std::abs(c);
      for (const dsp::Complex& c : dsp::expand_frequency(dsp::rfft(base), k)) {
        approx_energy += std::abs(c);
      }
      table.add_row({std::to_string(k), CsvWriter::num(noise, 2), CsvWriter::num(mae, 4),
                     CsvWriter::num(approx_energy / base_energy, 4)});
    }
  }
  eval::emit_table(table,
                   "Appendix C — k-multiple expansion accuracy (MAE ~ noise floor; energy x k)",
                   "appc_expansion.csv");
}

}  // namespace

SG_BENCH_MAIN(report)
