// Figure 1 (a–f) — data characterization for CITY A.
//
// (a) time-averaged traffic map; (b) census context map; (c) weekly
// city-average / max-pixel / median-pixel series; (d) significant
// frequency components across all cities; (e) top-5 component
// reconstruction error; (f) residual signal statistics. Also times the
// rfft kernel that the whole spectrum pipeline rests on.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "dsp/spectrum.h"

namespace {

using namespace spectra;

const data::CountryDataset& country1() {
  static const data::CountryDataset dataset = data::make_country1(bench::dataset_config());
  return dataset;
}

void BM_Rfft168(benchmark::State& state) {
  std::vector<double> series(168);
  Rng rng(1);
  for (double& v : series) v = rng.uniform(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::rfft(series));
  }
}
BENCHMARK(BM_Rfft168);

void BM_TopKReconstruction(benchmark::State& state) {
  std::vector<double> series(168);
  Rng rng(2);
  for (double& v : series) v = rng.uniform(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::reconstruct_top_k(series, 5));
  }
}
BENCHMARK(BM_TopKReconstruction);

void report() {
  const data::City& city_a = country1().cities[0];
  const long week = 168;

  // (a) time-averaged traffic map + (b) census context.
  std::cout << "\n== Fig. 1a — CITY A time-averaged traffic ==\n"
            << eval::ascii_map(city_a.traffic.time_average());
  geo::GridMap census(city_a.height(), city_a.width());
  for (long i = 0; i < city_a.height(); ++i) {
    for (long j = 0; j < city_a.width(); ++j) census.at(i, j) = city_a.context.at(data::kCensus, i, j);
  }
  std::cout << "\n== Fig. 1b — CITY A census context ==\n" << eval::ascii_map(census);

  // (c) weekly series: space average, max-load pixel, median-load pixel.
  const geo::GridMap avg_map = city_a.traffic.time_average();
  long max_p = 0;
  std::vector<std::pair<double, long>> ranked;
  for (long p = 0; p < avg_map.size(); ++p) {
    ranked.push_back({avg_map[p], p});
    if (avg_map[p] > avg_map[max_p]) max_p = p;
  }
  std::sort(ranked.begin(), ranked.end());
  const long median_p = ranked[ranked.size() / 2].second;

  const geo::CityTensor week1 = city_a.traffic.slice_time(0, week);
  const std::vector<double> city_series = week1.space_average();
  const std::vector<double> max_series =
      week1.pixel_series(max_p / city_a.width(), max_p % city_a.width());
  const std::vector<double> median_series =
      week1.pixel_series(median_p / city_a.width(), median_p % city_a.width());
  CsvWriter fig1c = eval::multi_series_table({"city_avg", "max_pixel", "median_pixel"},
                                                   {city_series, max_series, median_series});
  eval::emit_table(eval::series_table(city_series, "city_avg"),
                   "Fig. 1c — weekly city-average traffic (first 10 rows shown via CSV)", "");
  fig1c.write("fig1c_weekly_series.csv");
  std::cout << "(full three-series CSV: fig1c_weekly_series.csv)\n";

  // (d) significant frequencies: count, per city, which rFFT bins survive
  // the q=0.75 magnitude mask of the city-average series.
  CsvWriter fig1d({"city", "significant_bins (cycles/week)"});
  for (const data::City& city : country1().cities) {
    const std::vector<double> series = city.traffic.slice_time(0, week).space_average();
    const std::vector<dsp::Complex> spec = dsp::rfft(series);
    const std::vector<dsp::Complex> top = dsp::top_k_components(spec, 6);
    std::string bins;
    for (std::size_t k = 0; k < top.size(); ++k) {
      if (std::abs(top[k]) > 0.0) bins += std::to_string(k) + " ";
    }
    fig1d.add_row({city.name, bins});
  }
  eval::emit_table(fig1d, "Fig. 1d — significant frequency components (bin = cycles/week)",
                   "fig1d_significant_bins.csv");

  // (e)+(f): 5-component reconstruction quality and residual magnitude,
  // averaged over CITY A pixels (paper: reconstruction nearly overlays
  // the data; residual is small).
  double recon_mae = 0.0, residual_std = 0.0, signal_mean = 0.0;
  long counted = 0;
  for (long i = 0; i < city_a.height(); ++i) {
    for (long j = 0; j < city_a.width(); ++j) {
      const std::vector<double> series = week1.pixel_series(i, j);
      double mean = 0.0;
      for (double v : series) mean += v;
      mean /= static_cast<double>(series.size());
      if (mean < 1e-5) continue;
      const std::vector<double> recon = dsp::reconstruct_top_k(series, 5);
      double mae = 0.0, var = 0.0;
      for (std::size_t t = 0; t < series.size(); ++t) {
        const double r = series[t] - recon[t];
        mae += std::fabs(r);
        var += r * r;
      }
      recon_mae += mae / static_cast<double>(series.size());
      residual_std += std::sqrt(var / static_cast<double>(series.size()));
      signal_mean += mean;
      ++counted;
    }
  }
  CsvWriter fig1ef({"quantity", "value"});
  const double fcounted = static_cast<double>(counted);
  fig1ef.add_row({"mean pixel traffic", CsvWriter::num(signal_mean / fcounted)});
  fig1ef.add_row({"top-5 reconstruction MAE", CsvWriter::num(recon_mae / fcounted)});
  fig1ef.add_row({"residual std (Fig. 1f)", CsvWriter::num(residual_std / fcounted)});
  fig1ef.add_row(
      {"relative reconstruction error", CsvWriter::num(recon_mae / signal_mean)});
  eval::emit_table(fig1ef, "Fig. 1e/1f — top-5 component reconstruction & residual",
                   "fig1ef_reconstruction.csv");
}

}  // namespace

SG_BENCH_MAIN(report)
