// Table 4 — Importance of wider spatial contexts (§4.2).
//
// SpectraGAN (context patch = 2x traffic patch) vs SpectraGAN- (pixel-
// level context only). Expected shape: the wide-context model wins on
// most metrics, most clearly on spatial fidelity (SSIM).

#include "bench_common.h"

namespace {

using namespace spectra;

const std::vector<eval::MetricRow>& table4() {
  static const std::vector<eval::MetricRow> result = [] {
    const data::CountryDataset dataset = data::make_country1(bench::dataset_config());
    const eval::EvalConfig config = bench::eval_config();
    const core::SpectraGanConfig base = bench::base_model_config();
    // Ablation benches default to 3 folds (SPECTRA_FOLDS=0 for all 9).
    const std::vector<data::Fold> folds = bench::select_folds(dataset, 3);
    return eval::average_by_method(
        bench::run_sweep(dataset, folds, {"SpectraGAN", "SpectraGAN-"}, base, config));
  }();
  return result;
}

void BM_Table4_ContextAblation(benchmark::State& state) {
  bench::run_once(state, [] { table4(); });
}
BENCHMARK(BM_Table4_ContextAblation)->Iterations(1)->Unit(benchmark::kSecond);

void report() {
  eval::emit_table(eval::metrics_table(table4(), true),
                   "Table 4 — Importance of wider spatial contexts",
                   "table4_context_ablation.csv");
}

}  // namespace

SG_BENCH_MAIN(report)
