// Serving-throughput bench (DESIGN §6g): drive a Server the way the
// daemon does — closed-loop clients, each submitting generation
// requests and blocking for rows — and measure request throughput and
// latency tails solo (1 client) versus loaded (SPECTRA_SERVE_CLIENTS
// concurrent clients, default 8).
//
// Two contracts are asserted here, not just measured:
//   * the loaded phase must actually sustain `clients` concurrent
//     in-flight requests (serve.inflight_peak), and
//   * every response — solo, loaded, any interleaving — must be bitwise
//     identical to a direct generate_city call with the same
//     (seed, context, T): the serve determinism contract.
//
// Emits BENCH_SERVE.json (override with SPECTRA_BENCH_OUT) — gated in
// CI by scripts/check_bench_serve.py: determinism and concurrency are
// hard gates, the loaded/solo throughput ratio is machine-independent,
// and absolute req/s is compared against the committed baseline.
//
// Knobs: SPECTRA_SERVE_CLIENTS (default 8), SPECTRA_SERVE_REQS
// (requests per client per phase, default 4), SPECTRA_SERVE_GRID (city
// extent, default 64).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.h"
#include "core/trainer.h"
#include "geo/strip_accumulator.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "serve/server.h"
#include "util/env.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace spectra;

// Same deliberately small model as bench_megacity: the subject is the
// serving machinery, so the per-patch forward stays cheap while the
// patch geometry stays realistic.
core::SpectraGanConfig bench_config() {
  core::SpectraGanConfig config;
  config.patch = {.traffic_h = 8, .traffic_w = 8, .context_h = 16, .context_w = 16, .stride = 4};
  config.context_channels = 3;
  config.train_steps = 24;
  config.spectrum_bins = 8;
  config.hidden_channels = 6;
  config.encoder_mid_channels = 8;
  config.spectrum_mid_channels = 8;
  config.lstm_hidden = 8;
  config.cond_dim = 8;
  config.disc_mlp_hidden = 8;
  config.noise_channels = 2;
  return config;
}

struct PhaseResult {
  std::string name;
  long clients = 0;
  long requests = 0;
  double seconds = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double peak_rss_bytes = 0.0;
  double req_per_s() const {
    return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

double exact_quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

// Closed-loop phase: `clients` concurrent clients, each submitting
// `reqs` requests back-to-back (seed fixed per client so every response
// can be checked bitwise against the direct-generation reference).
PhaseResult run_phase(const std::string& name, serve::Server& server,
                      const geo::ContextTensor& context, long steps, long clients, long reqs,
                      const std::vector<geo::CityTensor>& reference) {
  std::vector<std::vector<double>> latencies(static_cast<std::size_t>(clients));
  std::atomic<long> mismatches{0};
  std::atomic<long> failures{0};

  Stopwatch phase_watch;
  {
    ThreadPool client_pool(static_cast<std::size_t>(clients));
    std::vector<std::future<void>> futures;
    for (long c = 0; c < clients; ++c) {
      futures.push_back(client_pool.submit([&, c] {
        const std::size_t slot = static_cast<std::size_t>(c);
        for (long i = 0; i < reqs; ++i) {
          serve::Request request;
          request.seed = 1000 + static_cast<std::uint64_t>(c);
          request.steps = steps;
          request.context = context;  // copy: requests own their context
          geo::CityTensorSink sink(steps, context.height(), context.width());
          Stopwatch watch;
          serve::RequestHandle handle =
              server.submit(std::move(request), sink, serve::Server::OnFull::kBlock);
          const serve::RequestState state = handle.wait();
          latencies[slot].push_back(watch.seconds());
          if (state != serve::RequestState::kDone) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (sink.take().values() != reference[slot].values()) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }));
    }
    for (std::future<void>& f : futures) f.get();
  }

  PhaseResult r;
  r.name = name;
  r.clients = clients;
  r.requests = clients * reqs;
  r.seconds = phase_watch.seconds();
  std::vector<double> all;
  for (const std::vector<double>& v : latencies) all.insert(all.end(), v.begin(), v.end());
  r.p50_s = exact_quantile(all, 0.50);
  r.p99_s = exact_quantile(all, 0.99);
  r.peak_rss_bytes = obs::sample_once().peak_rss_bytes;

  SG_CHECK(failures.load() == 0, "serve bench: requests failed in phase " + name);
  SG_CHECK(mismatches.load() == 0,
           "serve bench: response differed from direct generation in phase " + name +
               " — determinism contract broken");
  return r;
}

void emit_json(const std::vector<PhaseResult>& phases, double in_flight_peak, long grid,
               long steps, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    SG_LOG_ERROR << "bench_serve: cannot open " << path;
    return;
  }
  const PhaseResult& solo = phases.front();
  const PhaseResult& loaded = phases.back();
  std::fprintf(f, "{\n  \"schema\": 1,\n  \"threads\": %zu,\n", parallel_threads());
  std::fprintf(f, "  \"grid\": %ld,\n  \"steps\": %ld,\n", grid, steps);
  std::fprintf(f, "  \"req_per_s\": %.3f,\n", loaded.req_per_s());
  std::fprintf(f, "  \"p50_s\": %.4f,\n  \"p99_s\": %.4f,\n", loaded.p50_s, loaded.p99_s);
  std::fprintf(f, "  \"in_flight_peak\": %.0f,\n", in_flight_peak);
  std::fprintf(f, "  \"deterministic\": true,\n");
  std::fprintf(f, "  \"rss_growth_bytes\": %.0f,\n",
               loaded.peak_rss_bytes - solo.peak_rss_bytes);
  std::fprintf(f, "  \"phases\": [\n");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& r = phases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"clients\": %ld, \"requests\": %ld,\n"
                 "     \"seconds\": %.3f, \"req_per_s\": %.3f, \"p50_s\": %.4f,\n"
                 "     \"p99_s\": %.4f, \"peak_rss_bytes\": %.0f}%s\n",
                 r.name.c_str(), r.clients, r.requests, r.seconds, r.req_per_s(), r.p50_s,
                 r.p99_s, r.peak_rss_bytes, i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  const long clients = env_long("SPECTRA_SERVE_CLIENTS", 8);
  const long reqs = env_long("SPECTRA_SERVE_REQS", 4);
  const long grid = env_long("SPECTRA_SERVE_GRID", 64);
  SG_CHECK(clients >= 1 && reqs >= 1 && grid >= 16, "bench_serve: bad knob values");

  const core::SpectraGanConfig config = bench_config();
  auto model = std::make_shared<const core::SpectraGan>(config, /*seed=*/16);

  geo::ContextTensor context(config.context_channels, grid, grid);
  Rng rng_fill(17);
  for (double& v : context.values()) v = rng_fill.uniform(0, 1);

  // Direct-generation references, one per client seed: the bitwise
  // ground truth every served response is compared against.
  std::vector<geo::CityTensor> reference;
  reference.reserve(static_cast<std::size_t>(clients));
  for (long c = 0; c < clients; ++c) {
    Rng rng(1000 + static_cast<std::uint64_t>(c));
    reference.push_back(model->generate_city(context, config.train_steps, rng));
  }

  serve::ServerOptions options;
  options.workers = static_cast<std::size_t>(clients);
  options.queue_limit = static_cast<std::size_t>(clients) * 4;
  serve::Server server(model, options);

  obs::MaxGauge& inflight = obs::Registry::instance().max_gauge("serve.inflight_peak");

  std::vector<PhaseResult> phases;
  // Solo FIRST: VmHWM is monotone per process, so loaded - solo RSS
  // growth is only meaningful in this order (and the solo phase warms
  // the workspace pool, so growth isolates load-driven allocation).
  phases.push_back(
      run_phase("solo", server, context, config.train_steps, 1, clients * reqs, reference));
  inflight.reset();
  phases.push_back(
      run_phase("loaded", server, context, config.train_steps, clients, reqs, reference));
  const double in_flight_peak = inflight.value();
  server.stop();

  // The load gate's reason to exist: the loaded phase must have had
  // `clients` requests genuinely in flight at once.
  SG_CHECK(in_flight_peak >= static_cast<double>(clients),
           "bench_serve: loaded phase never reached " + std::to_string(clients) +
               " concurrent in-flight requests");

  std::printf("%-7s %-8s %-9s %-9s %-9s %-9s %s\n", "phase", "clients", "requests", "seconds",
              "req/s", "p50 ms", "p99 ms");
  for (const PhaseResult& r : phases) {
    std::printf("%-7s %-8ld %-9ld %-9.2f %-9.2f %-9.1f %.1f\n", r.name.c_str(), r.clients,
                r.requests, r.seconds, r.req_per_s(), r.p50_s * 1e3, r.p99_s * 1e3);
  }
  std::printf("in-flight peak: %.0f, deterministic: yes, rss growth solo->loaded: %.1f MB\n",
              in_flight_peak,
              (phases[1].peak_rss_bytes - phases[0].peak_rss_bytes) / (1024.0 * 1024.0));

  emit_json(phases, in_flight_peak, grid, config.train_steps,
            env_string("SPECTRA_BENCH_OUT", "BENCH_SERVE.json"));
  spectra::bench::bench_report("bench_serve");
  return 0;
}
