// Table 2 — Average testing performance in COUNTRY 1 (§4.1.1).
//
// Leave-one-city-out over the nine Country-1 cities: each method trains
// on eight cities' week-1 traffic + context and generates 3 weeks for the
// held-out city; fidelity is scored against real weeks 2-4. Paper shape
// to reproduce: SpectraGAN best or near-best on M-TV / AC-L1 / FVD,
// Pix2Pix strong SSIM but worst temporal metrics, DoppelGANger weak SSIM,
// Conv{3D+LSTM} intermediate, DATA bound best everywhere.

#include "bench_common.h"

namespace {

using namespace spectra;

const std::vector<std::string> kMethods = {"SpectraGAN", "Pix2Pix", "DoppelGANger",
                                           "Conv{3D+LSTM}"};

struct Table2Result {
  std::vector<eval::MetricRow> per_city;
  std::vector<eval::MetricRow> averaged;
};

const Table2Result& table2() {
  static const Table2Result result = [] {
    const data::CountryDataset dataset = data::make_country1(bench::dataset_config());
    const eval::EvalConfig config = bench::eval_config();
    const core::SpectraGanConfig base = bench::base_model_config();
    const std::vector<data::Fold> folds = bench::select_folds(dataset, 0);  // all 9 by default
    Table2Result out;
    out.per_city = bench::run_sweep(dataset, folds, kMethods, base, config);
    out.averaged = eval::average_by_method(out.per_city);
    return out;
  }();
  return result;
}

void BM_Table2_Country1(benchmark::State& state) {
  bench::run_once(state, [] { table2(); });
}
BENCHMARK(BM_Table2_Country1)->Iterations(1)->Unit(benchmark::kSecond);

void report() {
  eval::emit_table(eval::metrics_table(table2().per_city, true, true),
                   "Table 2 (per city) — COUNTRY 1 leave-one-city-out",
                   "table2_country1_per_city.csv");
  eval::emit_table(eval::metrics_table(table2().averaged, true),
                   "Table 2 — Average testing performance in COUNTRY 1", "table2_country1.csv");
}

}  // namespace

SG_BENCH_MAIN(report)
