// Parallel-layer scaling study: the compute hot paths (conv2d planes,
// the per-pixel irfft bridge, masked-spectrum targets, whole-city
// generation) across thread counts. Run on a multi-core host to verify
// the speedup; on a single core the table shows the serial-parity /
// oversubscription baseline instead. The `pool.*`, `fourier_bridge.*`,
// and `fft.*` instruments (README "Observability") carry the same
// numbers for end-to-end runs.

#include <cmath>

#include "bench_common.h"
#include "core/fourier_bridge.h"
#include "core/losses.h"
#include "core/trainer.h"
#include "nn/conv.h"
#include "nn/init.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace spectra;

void BM_Conv2dForward(benchmark::State& state) {
  set_parallel_threads(static_cast<std::size_t>(state.range(0)));
  Rng rng(7);
  const nn::Var x = nn::Var::constant(nn::init::gaussian({8, 8, 32, 32}, 1.0f, rng));
  const nn::Var w = nn::Var::constant(nn::init::gaussian({16, 8, 3, 3}, 0.5f, rng));
  const nn::Var b = nn::Var::constant(nn::init::gaussian({16}, 0.5f, rng));
  nn::Conv2dSpec spec;
  spec.padding = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::conv2d(x, w, b, spec).value().data());
  }
  set_parallel_threads(0);
}
BENCHMARK(BM_Conv2dForward)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_IrfftBridge(benchmark::State& state) {
  set_parallel_threads(static_cast<std::size_t>(state.range(0)));
  Rng rng(11);
  const nn::Var spectrum = nn::Var::constant(nn::init::gaussian({16, 48, 64}, 1.0f, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::irfft_bridge(spectrum, 168, 1).value().data());
  }
  set_parallel_threads(0);
}
BENCHMARK(BM_IrfftBridge)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_MaskedSpectrumTarget(benchmark::State& state) {
  set_parallel_threads(static_cast<std::size_t>(state.range(0)));
  Rng rng(13);
  const nn::Tensor traffic = nn::init::gaussian({16, 168, 64}, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::masked_spectrum_target(traffic, 20, 0.8).data());
  }
  set_parallel_threads(0);
}
BENCHMARK(BM_MaskedSpectrumTarget)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void report() {
  // Whole-city generation wall clock per thread count on one trained
  // tiny model — the end-to-end number the tentpole targets.
  core::SpectraGanConfig config = core::default_config();
  config.iterations = 1;  // config must validate; train() is never called
  core::SpectraGan model(config, 3);
  geo::ContextTensor context(config.context_channels, 24, 24);
  Rng fill(5);
  for (double& v : context.values()) v = fill.uniform(0, 1);

  CsvWriter table({"threads", "generate_city seconds", "speedup vs 1 thread"});
  double serial_seconds = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    set_parallel_threads(threads);
    Rng rng(21);
    Stopwatch watch;
    const geo::CityTensor city = model.generate_city(context, config.train_steps, rng);
    const double seconds = watch.seconds();
    benchmark::DoNotOptimize(city.values().data());
    if (threads == 1) serial_seconds = seconds;
    table.add_row({std::to_string(threads), CsvWriter::num(seconds, 4),
                   CsvWriter::num(serial_seconds / seconds, 2)});
  }
  set_parallel_threads(0);
  eval::emit_table(table, "Parallel scaling — generate_city wall clock by SPECTRA_THREADS",
                   "parallel_scaling.csv");
}

}  // namespace

SG_BENCH_MAIN(report)
