// Table 7 — load balancing of RU-to-CU associations (§5.2).
//
// For every Country-1 city and |C| in {4, 6, 8}: associations planned on
// one day of traffic (real vs SpectraGAN synthetic), Jain's fairness of
// CU loads evaluated on a different real day; mean ± std over the day's
// hours. Paper shape: synthetic-planned associations within ~0.06 of the
// real-planned fairness.

#include <iostream>

#include "apps/vran.h"
#include "bench_common.h"

namespace {

using namespace spectra;

struct VranRow {
  std::string city;
  long cus;
  apps::VranComparison synthetic;
  apps::VranComparison real;
};

const std::vector<VranRow>& table7() {
  static const std::vector<VranRow> result = [] {
    const data::CountryDataset dataset = data::make_country1(bench::dataset_config());
    const eval::EvalConfig config = bench::eval_config();
    const core::SpectraGanConfig base = bench::base_model_config();
    const std::vector<data::Fold> folds = bench::select_folds(dataset, 0);
    const long day = 24;

    std::vector<VranRow> rows;
    for (const data::Fold& fold : folds) {
      const data::City& city = dataset.cities[fold.test_index];
      const geo::CityTensor real_eval =
          city.traffic.slice_time(config.eval_offset, config.generate_steps);
      const geo::CityTensor synthetic =
          eval::generate_for_fold("SpectraGAN", base, dataset, fold, config);
      for (long cus : {4L, 6L, 8L}) {
        VranRow row;
        row.city = city.name;
        row.cus = cus;
        // Plan on day 1, evaluate on day 2 of the real data.
        row.real = apps::evaluate_vran(real_eval, real_eval, cus, 0, day, day);
        row.synthetic = apps::evaluate_vran(synthetic, real_eval, cus, 0, day, day);
        rows.push_back(row);
      }
    }
    return rows;
  }();
  return result;
}

void BM_Table7_Vran(benchmark::State& state) {
  bench::run_once(state, [] { table7(); });
}
BENCHMARK(BM_Table7_Vran)->Iterations(1)->Unit(benchmark::kSecond);

void report() {
  CsvWriter table({"CUs", "City", "Jain (SpectraGAN)", "Jain (Real Data)"});
  double total_gap = 0.0;
  for (const VranRow& row : table7()) {
    table.add_row({std::to_string(row.cus), row.city,
                   CsvWriter::num(row.synthetic.mean_jain, 3) + " +/- " +
                       CsvWriter::num(row.synthetic.std_jain, 2),
                   CsvWriter::num(row.real.mean_jain, 3) + " +/- " +
                       CsvWriter::num(row.real.std_jain, 2)});
    total_gap += row.real.mean_jain - row.synthetic.mean_jain;
  }
  eval::emit_table(table, "Table 7 — vRAN RU-to-CU load balancing (Jain's index)",
                   "table7_vran.csv");
  std::cout << "average fairness gap (real - synthetic): "
            << CsvWriter::num(total_gap / static_cast<double>(table7().size()), 3)
            << " (paper reports 0.059)\n";
}

}  // namespace

SG_BENCH_MAIN(report)
