// Table 11 (Appendix B) — SpectraGAN at finer time granularity.
//
// The same leave-one-city-out experiment at 60-, 30- and 15-minute
// steps (only the model's output length changes, as in the paper), plus
// the DATA reference at each granularity. Paper shape: AC-L1 and FVD
// degrade as granularity gets finer — for the DATA bound too — while
// M-TV/SSIM/TSTR stay comparable.

#include "bench_common.h"

namespace {

using namespace spectra;

struct GranularityResult {
  std::vector<eval::MetricRow> rows;  // "60-min", "30-min", ... incl. Data
};

const GranularityResult& table11() {
  static const GranularityResult result = [] {
    GranularityResult out;
    const core::SpectraGanConfig base_hourly = bench::base_model_config();
    for (long minutes : {60L, 30L, 15L}) {
      data::DatasetConfig dc = bench::dataset_config();
      dc.minutes_per_step = minutes;
      const data::CountryDataset dataset = data::make_country1(dc);
      eval::EvalConfig config = bench::eval_config(minutes);
      // Finer granularity multiplies recurrent costs; keep folds small by
      // default (SPECTRA_FOLDS=0 for the full sweep).
      const std::vector<data::Fold> folds = bench::select_folds(dataset, 2);

      core::SpectraGanConfig base = base_hourly;
      base.train_steps = config.train_steps;
      // Keep the generated band at the same *physical* frequencies: the
      // bin spacing is 1/week regardless of granularity, so the bin count
      // carries over unchanged (only the output layer length changes, as
      // the paper notes in Appendix B).

      const std::string label = std::to_string(minutes) + "-min";
      std::vector<eval::MetricRow> fold_rows;
      for (const data::Fold& fold : folds) {
        const data::City& city = dataset.cities[fold.test_index];
        const geo::CityTensor synthetic =
            eval::generate_for_fold("SpectraGAN", base, dataset, fold, config);
        eval::MetricRow row = eval::compute_metrics(label, city, synthetic, config);
        fold_rows.push_back(row);
        eval::MetricRow ref = eval::data_reference_row(city, config);
        ref.method = label + " Data";
        fold_rows.push_back(ref);
      }
      const std::vector<eval::MetricRow> averaged = eval::average_by_method(fold_rows);
      out.rows.insert(out.rows.end(), averaged.begin(), averaged.end());
    }
    return out;
  }();
  return result;
}

void BM_Table11_Granularity(benchmark::State& state) {
  bench::run_once(state, [] { table11(); });
}
BENCHMARK(BM_Table11_Granularity)->Iterations(1)->Unit(benchmark::kSecond);

void report() {
  eval::emit_table(eval::metrics_table(table11().rows, true),
                   "Table 11 — SpectraGAN at finer time granularity",
                   "table11_granularity.csv");
}

}  // namespace

SG_BENCH_MAIN(report)
