// Table 6 + Figure 10 — data-driven micro-BS sleeping (§5.1).
//
// For every Country-1 city: average power per pixel with micro BSs
// always on, with the sleeping policy driven by real traffic, and with
// the policy driven by SpectraGAN synthetic traffic for the same (held-
// out) city. Paper shape: both policies save 47-62% and track each other
// closely across cities.

#include "apps/power.h"
#include "bench_common.h"

namespace {

using namespace spectra;

struct CityPower {
  std::string city;
  apps::SleepingResult real;
  apps::SleepingResult synthetic;
  double always_on = 0.0;
};

const std::vector<CityPower>& fig10() {
  static const std::vector<CityPower> result = [] {
    const data::CountryDataset dataset = data::make_country1(bench::dataset_config());
    const eval::EvalConfig config = bench::eval_config();
    const core::SpectraGanConfig base = bench::base_model_config();
    const std::vector<data::Fold> folds =
        bench::select_folds(dataset, 0);  // all nine cities, as in Fig. 10

    std::vector<CityPower> rows;
    for (const data::Fold& fold : folds) {
      const data::City& city = dataset.cities[fold.test_index];
      const geo::CityTensor real_eval =
          city.traffic.slice_time(config.eval_offset, config.generate_steps);
      const geo::CityTensor synthetic =
          eval::generate_for_fold("SpectraGAN", base, dataset, fold, config);
      CityPower row;
      row.city = city.name;
      row.real = apps::simulate_bs_sleeping(real_eval, real_eval);
      row.synthetic = apps::simulate_bs_sleeping(synthetic, real_eval);
      row.always_on = row.real.power_always_on;
      rows.push_back(row);
    }
    return rows;
  }();
  return result;
}

void BM_Fig10_BsSleeping(benchmark::State& state) {
  bench::run_once(state, [] { fig10(); });
}
BENCHMARK(BM_Fig10_BsSleeping)->Iterations(1)->Unit(benchmark::kSecond);

void report() {
  CsvWriter params({"BS type", "N_trx", "Pmax", "P0", "dP"});
  const apps::BsPowerParams macro = apps::macro_bs_params();
  const apps::BsPowerParams micro = apps::micro_bs_params();
  params.add_row({"Macro", CsvWriter::num(macro.n_trx), CsvWriter::num(macro.p_max),
                  CsvWriter::num(macro.p0), CsvWriter::num(macro.delta_p)});
  params.add_row({"Micro", CsvWriter::num(micro.n_trx), CsvWriter::num(micro.p_max),
                  CsvWriter::num(micro.p0), CsvWriter::num(micro.delta_p)});
  eval::emit_table(params, "Table 6 — BS power consumption model", "table6_power_params.csv");

  CsvWriter table({"City", "Always-on [W/px]", "Sleeping (real) [W/px]",
                   "Sleeping (SpectraGAN) [W/px]", "Savings real", "Savings SpectraGAN"});
  for (const CityPower& row : fig10()) {
    table.add_row({row.city, CsvWriter::num(row.always_on, 4),
                   CsvWriter::num(row.real.power_with_sleeping, 4),
                   CsvWriter::num(row.synthetic.power_with_sleeping, 4),
                   CsvWriter::num(row.real.savings_fraction, 3),
                   CsvWriter::num(row.synthetic.savings_fraction, 3)});
  }
  eval::emit_table(table, "Fig. 10 — micro-BS sleeping power per unit area (COUNTRY 1)",
                   "fig10_bs_sleeping.csv");
}

}  // namespace

SG_BENCH_MAIN(report)
