// Table 8 + Figure 11 — dynamic urban population tracking (§5.3).
//
// Eq. 8 applied to real vs SpectraGAN traffic for every Country-1 city;
// PSNR (mean ± std over hourly maps) between the two population
// cartographies. Paper shape: PSNR well above the 20 dB acceptability
// threshold everywhere. Fig. 11: presence maps at five times of day for
// a sample city (CITY H).

#include <iostream>

#include "apps/population.h"
#include "bench_common.h"

namespace {

using namespace spectra;

struct PopulationRow {
  std::string city;
  apps::TrackingComparison comparison;
};

struct Table8Data {
  std::vector<PopulationRow> rows;
  data::CountryDataset dataset;
  geo::CityTensor city_h_real;
  geo::CityTensor city_h_synth;
};

const Table8Data& table8() {
  static const Table8Data result = [] {
    Table8Data out;
    out.dataset = data::make_country1(bench::dataset_config());
    const eval::EvalConfig config = bench::eval_config();
    const core::SpectraGanConfig base = bench::base_model_config();
    const std::vector<data::Fold> folds = bench::select_folds(out.dataset, 0);
    const apps::PopulationModelParams params = apps::default_population_params();

    for (const data::Fold& fold : folds) {
      const data::City& city = out.dataset.cities[fold.test_index];
      const geo::CityTensor real_eval =
          city.traffic.slice_time(config.eval_offset, config.generate_steps);
      const geo::CityTensor synthetic =
          eval::generate_for_fold("SpectraGAN", base, out.dataset, fold, config);
      PopulationRow row;
      row.city = city.name;
      row.comparison = apps::compare_population_tracking(real_eval, synthetic,
                                                         real_eval.steps(), 1, params);
      out.rows.push_back(row);
      if (city.name == "CITY H") {
        out.city_h_real = real_eval;
        out.city_h_synth = synthetic;
      }
    }
    return out;
  }();
  return result;
}

void BM_Table8_Population(benchmark::State& state) {
  bench::run_once(state, [] { table8(); });
}
BENCHMARK(BM_Table8_Population)->Iterations(1)->Unit(benchmark::kSecond);

void report() {
  CsvWriter table({"City", "PSNR mean [dB]", "PSNR std [dB]"});
  for (const PopulationRow& row : table8().rows) {
    table.add_row({row.city, CsvWriter::num(row.comparison.mean_psnr, 3),
                   CsvWriter::num(row.comparison.std_psnr, 3)});
  }
  eval::emit_table(table, "Table 8 — population-tracking fidelity (PSNR, >20 dB acceptable)",
                   "table8_population.csv");

  // Fig. 11: presence maps at 5 times of day (CITY H when available).
  if (table8().city_h_real.steps() > 0) {
    const apps::PopulationModelParams params = apps::default_population_params();
    for (long hour : {4L, 9L, 13L, 18L, 22L}) {
      std::cout << "\n== Fig. 11 — CITY H presence at " << hour << ":00 ==\n";
      std::cout << "[real-fed]\n"
                << eval::ascii_map(apps::estimate_population(table8().city_h_real.frame(hour),
                                                             hour, params));
      std::cout << "[SpectraGAN-fed]\n"
                << eval::ascii_map(apps::estimate_population(table8().city_h_synth.frame(hour),
                                                             hour, params));
    }
  }
}

}  // namespace

SG_BENCH_MAIN(report)
