// Tables 9 & 10 and Figure 12 — traffic dataset characteristics
// (Appendix A): per-city mean and median traffic over all grid cells
// (both countries) and the spatiotemporal CDF of traffic per cell.

#include <algorithm>

#include "bench_common.h"

namespace {

using namespace spectra;

struct CityStats {
  std::string city;
  double mean = 0.0;
  double median = 0.0;
};

std::vector<CityStats> country_stats(const data::CountryDataset& dataset) {
  std::vector<CityStats> stats;
  for (const data::City& city : dataset.cities) {
    CityStats s;
    s.city = city.name;
    std::vector<double> values = city.traffic.values();
    for (double v : values) s.mean += v;
    s.mean /= static_cast<double>(values.size());
    std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(values.size() / 2),
                     values.end());
    s.median = values[values.size() / 2];
    stats.push_back(s);
  }
  return stats;
}

struct StatsData {
  std::vector<CityStats> country1;
  std::vector<CityStats> country2;
  data::CountryDataset c1;
  data::CountryDataset c2;
};

const StatsData& stats() {
  static const StatsData result = [] {
    StatsData out;
    out.c1 = data::make_country1(bench::dataset_config());
    out.c2 = data::make_country2(bench::dataset_config());
    out.country1 = country_stats(out.c1);
    out.country2 = country_stats(out.c2);
    return out;
  }();
  return result;
}

void BM_DatasetStats(benchmark::State& state) {
  bench::run_once(state, [] { stats(); });
}
BENCHMARK(BM_DatasetStats)->Iterations(1)->Unit(benchmark::kSecond);

void report() {
  CsvWriter t9({"City", "Mean", "Median"});
  for (const CityStats& s : stats().country1) {
    t9.add_row({s.city, CsvWriter::num(s.mean, 5), CsvWriter::num(s.median, 5)});
  }
  eval::emit_table(t9, "Table 9 — per-city traffic mean/median (COUNTRY 1)",
                   "table9_country1_stats.csv");

  CsvWriter t10({"City", "Mean", "Median"});
  for (const CityStats& s : stats().country2) {
    t10.add_row({s.city, CsvWriter::num(s.mean, 5), CsvWriter::num(s.median, 5)});
  }
  eval::emit_table(t10, "Table 10 — per-city traffic mean/median (COUNTRY 2)",
                   "table10_country2_stats.csv");

  // Fig. 12: spatiotemporal CDF per city, tabulated at fixed quantiles.
  CsvWriter fig12({"city", "p10", "p25", "p50", "p75", "p90", "p99"});
  auto add_cdf_rows = [&fig12](const data::CountryDataset& dataset) {
    for (const data::City& city : dataset.cities) {
      std::vector<double> values = city.traffic.values();
      std::sort(values.begin(), values.end());
      auto q = [&values](double p) {
        return values[static_cast<std::size_t>(p * static_cast<double>(values.size() - 1))];
      };
      fig12.add_row({city.name, CsvWriter::num(q(0.10), 5), CsvWriter::num(q(0.25), 5),
                     CsvWriter::num(q(0.50), 5), CsvWriter::num(q(0.75), 5),
                     CsvWriter::num(q(0.90), 5), CsvWriter::num(q(0.99), 5)});
    }
  };
  add_cdf_rows(stats().c1);
  add_cdf_rows(stats().c2);
  eval::emit_table(fig12, "Fig. 12 — spatiotemporal traffic CDF quantiles per city",
                   "fig12_cdf_quantiles.csv");
}

}  // namespace

SG_BENCH_MAIN(report)
