// Table 3 — Average testing performance in COUNTRY 2 (§4.1.2).
//
// Same leave-one-city-out protocol over the four Country-2 cities
// (different operator, different traffic statistics). FVD is omitted as
// in the paper (too little data for reliable embeddings). Expected shape:
// relative ordering consistent with Table 2 — SpectraGAN most reliable,
// Pix2Pix weakest overall.

#include "bench_common.h"

namespace {

using namespace spectra;

const std::vector<std::string> kMethods = {"SpectraGAN", "Pix2Pix", "DoppelGANger",
                                           "Conv{3D+LSTM}"};

struct Result {
  std::vector<eval::MetricRow> per_city;
  std::vector<eval::MetricRow> averaged;
};

const Result& table3() {
  static const Result result = [] {
    const data::CountryDataset dataset = data::make_country2(bench::dataset_config());
    eval::EvalConfig config = bench::eval_config();
    config.compute_fvd = false;  // §4.1.2: FVD omitted for Country 2
    const core::SpectraGanConfig base = bench::base_model_config();
    const std::vector<data::Fold> folds = bench::select_folds(dataset, 0);  // all 4
    Result out;
    out.per_city = bench::run_sweep(dataset, folds, kMethods, base, config);
    out.averaged = eval::average_by_method(out.per_city);
    return out;
  }();
  return result;
}

void BM_Table3_Country2(benchmark::State& state) {
  bench::run_once(state, [] { table3(); });
}
BENCHMARK(BM_Table3_Country2)->Iterations(1)->Unit(benchmark::kSecond);

void report() {
  eval::emit_table(eval::metrics_table(table3().per_city, false, true),
                   "Table 3 (per city) — COUNTRY 2 leave-one-city-out",
                   "table3_country2_per_city.csv");
  eval::emit_table(eval::metrics_table(table3().averaged, false),
                   "Table 3 — Average testing performance in COUNTRY 2", "table3_country2.csv");
}

}  // namespace

SG_BENCH_MAIN(report)
