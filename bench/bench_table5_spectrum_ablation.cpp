// Table 5 — Importance of the spectrum generator (§4.2).
//
// Full SpectraGAN vs Spec-only (no residual time generator), Time-only
// (no spectrum generator) and Time-only+ (Time-only with an extra minmax
// generator). Expected shape: the full hybrid wins across the metric
// bundle; pure-time variants can match AC-L1 but lose on M-TV/FVD.

#include "bench_common.h"

namespace {

using namespace spectra;

const std::vector<eval::MetricRow>& table5() {
  static const std::vector<eval::MetricRow> result = [] {
    const data::CountryDataset dataset = data::make_country1(bench::dataset_config());
    const eval::EvalConfig config = bench::eval_config();
    const core::SpectraGanConfig base = bench::base_model_config();
    const std::vector<data::Fold> folds = bench::select_folds(dataset, 3);
    return eval::average_by_method(bench::run_sweep(
        dataset, folds, {"SpectraGAN", "Spec-only", "Time-only", "Time-only+"}, base, config));
  }();
  return result;
}

void BM_Table5_SpectrumAblation(benchmark::State& state) {
  bench::run_once(state, [] { table5(); });
}
BENCHMARK(BM_Table5_SpectrumAblation)->Iterations(1)->Unit(benchmark::kSecond);

void report() {
  eval::emit_table(eval::metrics_table(table5(), true),
                   "Table 5 — Importance of the spectrum generator",
                   "table5_spectrum_ablation.csv");
}

}  // namespace

SG_BENCH_MAIN(report)
