// Kernel-level throughput bench (DESIGN.md §6c): GEMM / conv2d / LSTM
// at the shapes the SpectraGAN trainer actually runs, each measured
// against the pre-GEMM direct kernel so the speedup is computed within
// one run on one machine. Emits BENCH_KERNELS.json (override with
// SPECTRA_BENCH_OUT) — the seed point of the kernel perf trajectory; CI
// re-runs this at reduced iterations and fails if any kernel's speedup
// regresses >20% against the committed baseline
// (scripts/check_bench_kernels.py).
//
// Knobs: SPECTRA_BENCH_ITERS (timed iterations per kernel, default 200),
// SPECTRA_THREADS (kernels are measured at 1 thread — the single-thread
// speedup is the contract; the parallel layer is bench_parallel_scaling's
// subject).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.h"
#include "dsp/fft.h"
#include "nn/autograd.h"
#include "nn/conv.h"
#include "nn/gemm.h"
#include "nn/init.h"
#include "nn/lstm.h"
#include "nn/ops.h"
#include "util/env.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace spectra;

struct KernelResult {
  std::string name;
  std::string shape;
  double flops_per_call = 0.0;
  double seconds_ref = 0.0;
  double seconds_new = 0.0;
  double speedup() const { return seconds_new > 0.0 ? seconds_ref / seconds_new : 0.0; }
  double gflops(double seconds) const {
    return seconds > 0.0 ? flops_per_call / seconds * 1e-9 : 0.0;
  }
};

long g_iters = 200;

// Median-free simple protocol: warm up twice (populates workspace arenas
// and caches), then average `g_iters` calls — kernels here are far above
// timer resolution at trainer shapes.
template <typename Fn>
double time_kernel(Fn&& fn) {
  fn();
  fn();
  Stopwatch watch;
  for (long i = 0; i < g_iters; ++i) fn();
  return watch.seconds() / static_cast<double>(g_iters);
}

// The pre-PR matmul kernel, verbatim: serial triple loop with the
// zero-skip branch (src/nn/ops.cpp before the GEMM routing).
void naive_matmul(long m, long k, long n, const float* pa, const float* pb, float* py) {
  for (long i = 0; i < m * n; ++i) py[i] = 0.0f;
  for (long i = 0; i < m; ++i) {
    for (long p = 0; p < k; ++p) {
      const float av = pa[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = pb + p * n;
      float* yrow = py + i * n;
      for (long j = 0; j < n; ++j) yrow[j] += av * brow[j];
    }
  }
}

KernelResult bench_matmul(const std::string& name, long m, long k, long n) {
  Rng rng(5);
  const nn::Tensor a = nn::init::gaussian({m, k}, 1.0f, rng);
  const nn::Tensor b = nn::init::gaussian({k, n}, 1.0f, rng);
  nn::Tensor y({m, n});

  KernelResult r;
  r.name = name;
  r.shape = "[" + std::to_string(m) + "x" + std::to_string(k) + "]*[" + std::to_string(k) + "x" +
            std::to_string(n) + "]";
  r.flops_per_call = 2.0 * static_cast<double>(m) * static_cast<double>(k) * static_cast<double>(n);
  r.seconds_ref = time_kernel([&] { naive_matmul(m, k, n, a.data(), b.data(), y.data()); });
  r.seconds_new = time_kernel([&] {
    nn::gemm::sgemm(nn::gemm::Trans::kNo, nn::gemm::Trans::kNo, m, n, k, a.data(), k, b.data(), n,
                    y.data(), n, /*accumulate=*/false);
  });
  return r;
}

KernelResult bench_conv_forward(const std::string& name, long N, long C, long H, long W, long O,
                                long kernel, long stride, long padding) {
  Rng rng(7);
  const nn::Var x = nn::Var::constant(nn::init::gaussian({N, C, H, W}, 1.0f, rng));
  const nn::Var w = nn::Var::constant(nn::init::gaussian({O, C, kernel, kernel}, 0.5f, rng));
  const nn::Var b = nn::Var::constant(nn::init::gaussian({O}, 0.5f, rng));
  const long Ho = nn::conv2d_out_extent(H, kernel, stride, padding);
  const long Wo = nn::conv2d_out_extent(W, kernel, stride, padding);

  KernelResult r;
  r.name = name;
  r.shape = "x[" + std::to_string(N) + "," + std::to_string(C) + "," + std::to_string(H) + "," +
            std::to_string(W) + "] w[" + std::to_string(O) + "," + std::to_string(C) + "," +
            std::to_string(kernel) + "," + std::to_string(kernel) + "] s" +
            std::to_string(stride) + " p" + std::to_string(padding);
  r.flops_per_call = 2.0 * static_cast<double>(N * O * C * kernel * kernel * Ho * Wo);
  nn::InferenceGuard guard;  // forward only: no graph bookkeeping in the timing
  nn::Conv2dSpec direct{.stride = stride, .padding = padding, .impl = nn::Conv2dImpl::kDirect};
  nn::Conv2dSpec lowered{.stride = stride, .padding = padding, .impl = nn::Conv2dImpl::kIm2col};
  r.seconds_ref = time_kernel([&] { nn::conv2d(x, w, b, direct); });
  r.seconds_new = time_kernel([&] { nn::conv2d(x, w, b, lowered); });
  return r;
}

KernelResult bench_conv_train_step(const std::string& name, long N, long C, long H, long W, long O,
                                   long kernel, long stride, long padding) {
  Rng rng(9);
  nn::Var x = nn::Var::leaf(nn::init::gaussian({N, C, H, W}, 1.0f, rng));
  nn::Var w = nn::Var::leaf(nn::init::gaussian({O, C, kernel, kernel}, 0.5f, rng));
  nn::Var b = nn::Var::leaf(nn::init::gaussian({O}, 0.5f, rng));
  const long Ho = nn::conv2d_out_extent(H, kernel, stride, padding);
  const long Wo = nn::conv2d_out_extent(W, kernel, stride, padding);

  KernelResult r;
  r.name = name;
  r.shape = "fwd+bwd x[" + std::to_string(N) + "," + std::to_string(C) + "," + std::to_string(H) +
            "," + std::to_string(W) + "] w[" + std::to_string(O) + ",...," +
            std::to_string(kernel) + "]";
  // forward + dx + dw ≈ 3× the forward contraction.
  r.flops_per_call = 3.0 * 2.0 * static_cast<double>(N * O * C * kernel * kernel * Ho * Wo);
  auto run = [&](nn::Conv2dImpl impl) {
    nn::Conv2dSpec spec{.stride = stride, .padding = padding, .impl = impl};
    x.zero_grad(), w.zero_grad(), b.zero_grad();
    nn::sum(nn::conv2d(x, w, b, spec)).backward();
  };
  r.seconds_ref = time_kernel([&] { run(nn::Conv2dImpl::kDirect); });
  r.seconds_new = time_kernel([&] { run(nn::Conv2dImpl::kIm2col); });
  return r;
}

KernelResult bench_lstm_train_step(const std::string& name, long T, long B, long in, long hidden,
                                   long out) {
  Rng model_rng(13);
  nn::Lstm lstm(in, hidden, out, model_rng, nn::Activation::kNone);
  Rng rng(15);
  std::vector<nn::Var> inputs;
  for (long t = 0; t < T; ++t) {
    inputs.push_back(nn::Var::constant(nn::init::gaussian({B, in}, 1.0f, rng)));
  }

  KernelResult r;
  r.name = name;
  r.shape = "fwd+bwd T=" + std::to_string(T) + " B=" + std::to_string(B) +
            " in=" + std::to_string(in) + " H=" + std::to_string(hidden) +
            " out=" + std::to_string(out);
  // forward + backward ≈ 3× the forward contraction flops.
  r.flops_per_call = 3.0 * static_cast<double>(T) * 2.0 *
                     static_cast<double>(B * (in * 4 * hidden + hidden * 4 * hidden + hidden * out));
  auto accumulate_loss = [](const std::vector<nn::Var>& outputs) {
    nn::Var loss = nn::sum(outputs.front());
    for (std::size_t t = 1; t < outputs.size(); ++t) loss = nn::add(loss, nn::sum(outputs[t]));
    return loss;
  };
  auto zero_params = [&] {
    for (nn::Var& p : lstm.parameters()) p.zero_grad();
  };
  // Reference: the pre-batching, pre-fusion training path — one input
  // projection per step and the op-by-op gate composition. (`step()` now
  // runs the fused kernel, so composing the reference from it would hide
  // part of the win inside the baseline.)
  r.seconds_ref = time_kernel([&] {
    zero_params();
    std::vector<nn::Var> outputs;
    nn::LstmState state = lstm.cell().initial_state(B);
    for (const nn::Var& x : inputs) {
      state = lstm.cell().step_projected_unfused(lstm.cell().project_input(x), state);
      outputs.push_back(lstm.head().forward(state.h));
    }
    accumulate_loss(outputs).backward();
  });
  r.seconds_new = time_kernel([&] {
    zero_params();
    accumulate_loss(lstm.forward(inputs)).backward();
  });
  return r;
}

// Fusion speedup in isolation: both arms use the batched [T·B, 4H] input
// projection; only the per-step gate math differs (op-by-op composition
// vs the fused two-node kernel).
KernelResult bench_lstm_fused_train(const std::string& name, long T, long B, long in, long hidden,
                                    long out) {
  Rng model_rng(13);
  nn::Lstm lstm(in, hidden, out, model_rng, nn::Activation::kNone);
  Rng rng(15);
  std::vector<nn::Var> inputs;
  for (long t = 0; t < T; ++t) {
    inputs.push_back(nn::Var::constant(nn::init::gaussian({B, in}, 1.0f, rng)));
  }

  KernelResult r;
  r.name = name;
  r.shape = "fwd+bwd T=" + std::to_string(T) + " B=" + std::to_string(B) +
            " in=" + std::to_string(in) + " H=" + std::to_string(hidden) +
            " out=" + std::to_string(out);
  r.flops_per_call = 3.0 * static_cast<double>(T) * 2.0 *
                     static_cast<double>(B * (in * 4 * hidden + hidden * 4 * hidden + hidden * out));
  auto accumulate_loss = [](const std::vector<nn::Var>& outputs) {
    nn::Var loss = nn::sum(outputs.front());
    for (std::size_t t = 1; t < outputs.size(); ++t) loss = nn::add(loss, nn::sum(outputs[t]));
    return loss;
  };
  auto zero_params = [&] {
    for (nn::Var& p : lstm.parameters()) p.zero_grad();
  };
  r.seconds_ref = time_kernel([&] {
    zero_params();
    nn::Var all = nn::concat_axis(inputs, /*axis=*/0);
    nn::Var all_proj = lstm.cell().project_input(all);
    nn::LstmState state = lstm.cell().initial_state(B);
    std::vector<nn::Var> outputs;
    for (long t = 0; t < T; ++t) {
      nn::Var x_proj = nn::slice_axis(all_proj, /*axis=*/0, t * B, B);
      state = lstm.cell().step_projected_unfused(x_proj, state);
      outputs.push_back(lstm.head().forward(state.h));
    }
    accumulate_loss(outputs).backward();
  });
  r.seconds_new = time_kernel([&] {
    zero_params();
    accumulate_loss(lstm.forward(inputs)).backward();
  });
  return r;
}

std::vector<double> random_real_signal(long n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.uniform(-1, 1);
  return x;
}

// Real-input transform at a power-of-two length: the half-spectrum fast
// path vs the Bluestein chirp-z evaluation of the same rfft.
KernelResult bench_rfft_pow2(const std::string& name, long n) {
  const std::vector<double> x = random_real_signal(n, 31);
  KernelResult r;
  r.name = name;
  r.shape = "rfft N=" + std::to_string(n);
  const double nd = static_cast<double>(n);
  r.flops_per_call = 5.0 * nd * std::log2(nd);
  r.seconds_ref = time_kernel([&] { dsp::detail::rfft_bluestein(x); });
  r.seconds_new = time_kernel([&] { dsp::rfft(x); });
  return r;
}

// Awkward-length Bluestein: per-thread scratch reuse vs the historical
// per-call allocation of the length-m convolution buffer.
KernelResult bench_rfft_bluestein_fallback(const std::string& name, long n) {
  const std::vector<double> x = random_real_signal(n, 33);
  std::vector<dsp::Complex> a(x.begin(), x.end());
  KernelResult r;
  r.name = name;
  r.shape = "bluestein N=" + std::to_string(n);
  const double nd = static_cast<double>(n);
  r.flops_per_call = 5.0 * nd * std::log2(nd);
  std::vector<dsp::Complex> work;
  r.seconds_ref = time_kernel([&] {
    work = a;
    dsp::detail::bluestein_inplace(work, /*inverse=*/false, /*reuse_scratch=*/false);
  });
  r.seconds_new = time_kernel([&] {
    work = a;
    dsp::detail::bluestein_inplace(work, /*inverse=*/false, /*reuse_scratch=*/true);
  });
  return r;
}

void emit_json(const std::vector<KernelResult>& results, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    SG_LOG_ERROR << "bench_kernels: cannot open " << path;
    return;
  }
  std::fprintf(f, "{\n  \"schema\": 1,\n  \"threads\": 1,\n  \"iters\": %ld,\n  \"kernels\": [\n",
               g_iters);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"shape\": \"%s\", \"flops_per_call\": %.0f,\n"
                 "     \"seconds_ref\": %.9f, \"seconds_new\": %.9f,\n"
                 "     \"gflops_ref\": %.3f, \"gflops_new\": %.3f, \"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.shape.c_str(), r.flops_per_call, r.seconds_ref, r.seconds_new,
                 r.gflops(r.seconds_ref), r.gflops(r.seconds_new), r.speedup(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  g_iters = env_long("SPECTRA_BENCH_ITERS", 200);
  // Single-thread contract: the JSON records per-core kernel quality;
  // thread scaling is bench_parallel_scaling's subject.
  set_parallel_threads(1);

  std::vector<KernelResult> results;
  // matmul at trainer shapes: the batched LSTM input projection
  // (T·B=1008 rows), the per-step hidden→gates product, and the
  // spectrum/time discriminator MLP layer.
  results.push_back(bench_matmul("matmul_lstm_xproj_batched", 1008, 28, 96));
  results.push_back(bench_matmul("matmul_lstm_gate_h", 6, 24, 96));
  results.push_back(bench_matmul("matmul_disc_mlp", 6, 128, 48));
  results.push_back(bench_matmul("matmul_square_256", 256, 256, 256));
  // conv2d at trainer shapes: encoder conv1/conv2 and the spectrum
  // generator output conv (§2.2 geometry, default config).
  results.push_back(bench_conv_forward("conv_fwd_encoder1", 6, 27, 8, 8, 24, 3, 1, 1));
  results.push_back(bench_conv_forward("conv_fwd_encoder2_s2", 6, 24, 8, 8, 16, 3, 2, 1));
  results.push_back(bench_conv_forward("conv_fwd_spectrum_out", 6, 32, 4, 4, 56, 3, 1, 1));
  results.push_back(bench_conv_train_step("conv_train_encoder1", 6, 27, 8, 8, 24, 3, 1, 1));
  // Full recurrent training step at G^t shape: batched+fused vs the
  // per-step unfused path, plus the fusion win in isolation.
  results.push_back(bench_lstm_train_step("lstm_train_gt", 168, 6, 28, 24, 16));
  results.push_back(bench_lstm_fused_train("lstm_fused_train", 168, 6, 28, 24, 16));
  // Real-input FFT: the hourly 512-bin pow2 fast path and the 168-length
  // (hourly week) Bluestein fallback with hoisted scratch.
  results.push_back(bench_rfft_pow2("rfft_pow2", 512));
  results.push_back(bench_rfft_bluestein_fallback("rfft_bluestein_fallback", 168));

  std::printf("%-28s %-14s %-14s %-10s %-10s %s\n", "kernel", "ref s/call", "new s/call",
              "ref GF/s", "new GF/s", "speedup");
  for (const KernelResult& r : results) {
    std::printf("%-28s %-14.3e %-14.3e %-10.2f %-10.2f %.2fx\n", r.name.c_str(), r.seconds_ref,
                r.seconds_new, r.gflops(r.seconds_ref), r.gflops(r.seconds_new), r.speedup());
  }

  emit_json(results, env_string("SPECTRA_BENCH_OUT", "BENCH_KERNELS.json"));
  set_parallel_threads(0);
  spectra::bench::bench_report("bench_kernels");
  return 0;
}
