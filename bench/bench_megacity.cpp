// Megacity streaming-generation bench (DESIGN.md §6f): sew a city far
// larger than anything the dense path should ever hold — 1024x1024 by
// default — through generate_city_streamed + SpillRowSink, and prove the
// bounded-memory contract by running the SAME model at half height
// first: strip-resident bytes must be flat across heights and the peak
// RSS gained between the two runs must stay under a fixed budget (a
// dense canvas would add ~2x the half-height footprint instead).
//
// Emits BENCH_MEGACITY.json (override with SPECTRA_BENCH_OUT) — gated in
// CI by scripts/check_bench_megacity.py: rss growth / budget are
// machine-independent, throughput is compared against the committed
// baseline at MIN_RATIO 0.8.
//
// Knobs: SPECTRA_MEGACITY_H / SPECTRA_MEGACITY_W (grid extent, default
// 1024), SPECTRA_SPILL_DIR (where the spilled city lands, default the
// working directory; the file is removed after verification).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.h"
#include "core/trainer.h"
#include "geo/strip_accumulator.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "util/env.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace spectra;

// A deliberately small model: the subject is the sewing machinery, not
// the generator, so the per-patch forward is kept cheap while the patch
// geometry stays realistic (8x8 traffic windows at stride 4 = 50% row
// overlap, the band holds 8 + 4 rows).
core::SpectraGanConfig bench_config() {
  core::SpectraGanConfig config;
  config.patch = {.traffic_h = 8, .traffic_w = 8, .context_h = 16, .context_w = 16, .stride = 4};
  config.context_channels = 3;
  config.train_steps = 24;
  config.spectrum_bins = 8;
  config.hidden_channels = 6;
  config.encoder_mid_channels = 8;
  config.spectrum_mid_channels = 8;
  config.lstm_hidden = 8;
  config.cond_dim = 8;
  config.disc_mlp_hidden = 8;
  config.noise_channels = 2;
  return config;
}

struct PhaseResult {
  std::string name;
  long height = 0;
  long width = 0;
  long steps = 0;
  double seconds = 0.0;
  long rows_spilled = 0;
  long long bytes_spilled = 0;
  double strip_resident_bytes_peak = 0.0;
  double peak_rss_bytes = 0.0;
  // Spatiotemporal values per second: H * W * T / seconds.
  double pixels_per_s() const {
    return seconds > 0.0
               ? static_cast<double>(height) * static_cast<double>(width) *
                     static_cast<double>(steps) / seconds
               : 0.0;
  }
};

PhaseResult run_phase(const std::string& name, const core::SpectraGan& model, long height,
                      long width, const std::string& spill_dir) {
  const core::SpectraGanConfig& config = model.config();
  geo::ContextTensor context(config.context_channels, height, width);
  Rng rng_fill(17);
  for (double& v : context.values()) v = rng_fill.uniform(0, 1);

  obs::MaxGauge& strip_peak =
      obs::Registry::instance().max_gauge("geo.strip_resident_bytes_peak");
  obs::Counter& spilled = obs::Registry::instance().counter("geo.rows_spilled");
  strip_peak.reset();  // per-phase high-water mark: must be flat across heights
  const std::uint64_t spilled_before = spilled.value();

  PhaseResult r;
  r.name = name;
  r.height = height;
  r.width = width;
  r.steps = config.train_steps;

  const std::string spill_path = spill_dir + "/megacity_" + name + ".f64";
  {
    geo::SpillRowSink sink(spill_path, config.train_steps, width);
    Rng rng(21);
    Stopwatch watch;
    model.generate_city_streamed(context, config.train_steps, rng, sink);
    sink.close();
    r.seconds = watch.seconds();
    r.rows_spilled = sink.rows_written();
    r.bytes_spilled = sink.bytes_written();
  }
  r.strip_resident_bytes_peak = strip_peak.value();
  r.peak_rss_bytes = obs::sample_once().peak_rss_bytes;

  SG_CHECK(r.rows_spilled == height, "spilled city is missing rows");
  SG_CHECK(spilled.value() - spilled_before == static_cast<std::uint64_t>(height),
           "geo.rows_spilled did not advance by one per row");

  // Spot-check the spilled city is readable and sane before deleting it:
  // first, middle, and last rows, non-negative finite values.
  std::vector<double> row;
  for (const long probe : {0L, height / 2, height - 1}) {
    geo::read_spilled_row(spill_path, config.train_steps, width, probe, row);
    for (const double v : row) {
      SG_CHECK(std::isfinite(v) && v >= 0.0, "spilled row holds a negative or non-finite value");
    }
  }
  std::remove(spill_path.c_str());
  return r;
}

void emit_json(const std::vector<PhaseResult>& phases, long long rss_budget_bytes,
               const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    SG_LOG_ERROR << "bench_megacity: cannot open " << path;
    return;
  }
  const PhaseResult& half = phases.front();
  const PhaseResult& full = phases.back();
  std::fprintf(f, "{\n  \"schema\": 1,\n  \"threads\": %zu,\n", parallel_threads());
  std::fprintf(f, "  \"rss_budget_bytes\": %lld,\n", rss_budget_bytes);
  std::fprintf(f, "  \"pixels_per_s\": %.1f,\n", full.pixels_per_s());
  std::fprintf(f, "  \"peak_rss_bytes\": %.0f,\n", full.peak_rss_bytes);
  std::fprintf(f, "  \"rss_growth_bytes\": %.0f,\n",
               full.peak_rss_bytes - half.peak_rss_bytes);
  std::fprintf(f, "  \"phases\": [\n");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& r = phases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"height\": %ld, \"width\": %ld, \"steps\": %ld,\n"
                 "     \"seconds\": %.3f, \"pixels_per_s\": %.1f, \"rows_spilled\": %ld,\n"
                 "     \"bytes_spilled\": %lld, \"strip_resident_bytes_peak\": %.0f,\n"
                 "     \"peak_rss_bytes\": %.0f}%s\n",
                 r.name.c_str(), r.height, r.width, r.steps, r.seconds, r.pixels_per_s(),
                 r.rows_spilled, r.bytes_spilled, r.strip_resident_bytes_peak, r.peak_rss_bytes,
                 i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  const long height = env_long("SPECTRA_MEGACITY_H", 1024);
  const long width = env_long("SPECTRA_MEGACITY_W", 1024);
  const std::string spill_dir = env_string("SPECTRA_SPILL_DIR", ".");
  // The bounded-memory contract: doubling the grid height must not grow
  // peak RSS by more than the band + bookkeeping slack. A dense canvas at
  // the full grid would add steps * H * W * 8 bytes (~200 MB at defaults)
  // — two orders of magnitude over this budget.
  const long long rss_budget_bytes = env_long("SPECTRA_MEGACITY_RSS_BUDGET", 48L << 20);

  const core::SpectraGanConfig config = bench_config();
  core::SpectraGan model(config, /*seed=*/16);

  std::vector<PhaseResult> phases;
  // Half height FIRST: VmHWM is monotone per process, so the growth
  // full - half is only meaningful in this order.
  phases.push_back(run_phase("half", model, height / 2, width, spill_dir));
  phases.push_back(run_phase("full", model, height, width, spill_dir));

  std::printf("%-6s %-11s %-9s %-14s %-16s %s\n", "phase", "grid", "seconds", "pixels/s",
              "strip peak B", "peak RSS MB");
  for (const PhaseResult& r : phases) {
    std::printf("%-6s %ldx%-6ld %-9.2f %-14.3e %-16.0f %.1f\n", r.name.c_str(), r.height,
                r.width, r.seconds, r.pixels_per_s(), r.strip_resident_bytes_peak,
                r.peak_rss_bytes / (1024.0 * 1024.0));
  }
  std::printf("rss growth half->full: %.1f MB (budget %.1f MB)\n",
              (phases[1].peak_rss_bytes - phases[0].peak_rss_bytes) / (1024.0 * 1024.0),
              static_cast<double>(rss_budget_bytes) / (1024.0 * 1024.0));

  emit_json(phases, rss_budget_bytes, env_string("SPECTRA_BENCH_OUT", "BENCH_MEGACITY.json"));
  spectra::bench::bench_report("bench_megacity");
  return 0;
}
