// The one obs-backed teardown shared by every bench binary (google-
// benchmark sweeps and plain-main kernels alike): flush the trace (if
// SPECTRA_TRACE is set), write the metrics JSON (if SPECTRA_METRICS is
// set), dump the profile tree (if SPECTRA_PROFILE names a path), log the
// text snapshot so a debug run shows where the time went, and leave a
// run.json manifest (path overridable via SPECTRA_RUNMETA) so every run
// is machine-diffable across commits.

#pragma once

#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/run_manifest.h"
#include "obs/trace.h"
#include "util/log.h"

namespace spectra::bench {

// `run_name` is usually argv[0]; the basename becomes the manifest name.
inline void bench_report(const std::string& run_name) {
  ::spectra::obs::trace_flush();
  ::spectra::obs::dump_metrics();
  ::spectra::obs::profile_dump();
  SG_LOG_DEBUG << "\n" << ::spectra::obs::metrics_snapshot();
  std::string name = run_name;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  // Also make this the default name so the SPECTRA_RUNMETA atexit
  // rewrite (which runs after us and wins) keeps it.
  ::spectra::obs::run_manifest_set_name(name);
  const char* meta = std::getenv("SPECTRA_RUNMETA");
  ::spectra::obs::write_run_manifest(meta != nullptr ? meta : "run.json", name);
}

}  // namespace spectra::bench
