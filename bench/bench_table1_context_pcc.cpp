// Table 1 — Pearson correlation of each of the 27 context attributes with
// the (time-averaged) traffic, mean ± std across the Country-1 cities.
//
// Paper shape to reproduce: Census / Continuous Urban / Cafe /
// Restaurant / Shop strongly positive (0.4-0.6), Barren Lands and Sea
// negative, Ports / Motorways near zero — and *no* attribute strong
// enough for a univariate model, motivating the multi-attribute
// conditioning of SpectraGAN.

#include <cmath>

#include "bench_common.h"
#include "data/context.h"
#include "metrics/correlation.h"

namespace {

using namespace spectra;

struct PccStats {
  double mean = 0.0;
  double stddev = 0.0;
};

const std::vector<PccStats>& table1() {
  static const std::vector<PccStats> result = [] {
    const data::CountryDataset dataset = data::make_country1(bench::dataset_config());
    std::vector<std::vector<double>> pccs(data::kNumContextChannels);
    for (const data::City& city : dataset.cities) {
      const geo::GridMap avg = city.traffic.time_average();
      for (long c = 0; c < data::kNumContextChannels; ++c) {
        geo::GridMap channel(city.height(), city.width());
        for (long i = 0; i < city.height(); ++i) {
          for (long j = 0; j < city.width(); ++j) channel.at(i, j) = city.context.at(c, i, j);
        }
        pccs[static_cast<std::size_t>(c)].push_back(metrics::pearson(channel, avg));
      }
    }
    std::vector<PccStats> stats(data::kNumContextChannels);
    for (long c = 0; c < data::kNumContextChannels; ++c) {
      const std::vector<double>& values = pccs[static_cast<std::size_t>(c)];
      PccStats& s = stats[static_cast<std::size_t>(c)];
      for (double v : values) s.mean += v;
      s.mean /= static_cast<double>(values.size());
      for (double v : values) s.stddev += (v - s.mean) * (v - s.mean);
      s.stddev = std::sqrt(s.stddev / static_cast<double>(values.size()));
    }
    return stats;
  }();
  return result;
}

void BM_Table1_ContextPcc(benchmark::State& state) {
  bench::run_once(state, [] { table1(); });
}
BENCHMARK(BM_Table1_ContextPcc)->Iterations(1)->Unit(benchmark::kSecond);

void report() {
  CsvWriter table({"Contextual Attribute", "Mean", "Std"});
  const auto& names = data::context_attribute_names();
  for (long c = 0; c < data::kNumContextChannels; ++c) {
    table.add_row({names[static_cast<std::size_t>(c)],
                   CsvWriter::num(table1()[static_cast<std::size_t>(c)].mean, 3),
                   CsvWriter::num(table1()[static_cast<std::size_t>(c)].stddev, 3)});
  }
  eval::emit_table(table, "Table 1 — context attribute PCC with traffic (COUNTRY 1)",
                   "table1_context_pcc.csv");
}

}  // namespace

SG_BENCH_MAIN(report)
