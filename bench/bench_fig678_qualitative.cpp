// Figures 6, 7 and 8 — qualitative comparison of all methods.
//
// Fig. 6: FDAS output is spatiotemporally structureless (flat noisy
//         series, random maps).
// Fig. 7: time-averaged traffic maps for CITY C / D / H across methods
//         (rendered as ASCII + written as CSV matrices).
// Fig. 8: 3-week city-average series for CITY B per method.
//
// Generations come from the shared leave-one-city-out cache, so this
// binary is cheap when bench_table2_country1 has already run.

#include <cctype>
#include <fstream>
#include <iostream>
#include <map>

#include "bench_common.h"

namespace {

using namespace spectra;

const std::vector<std::string> kMethods = {"FDAS", "SpectraGAN", "Pix2Pix", "DoppelGANger",
                                           "Conv{3D+LSTM}"};

struct Qualitative {
  data::CountryDataset dataset;
  // method -> city index -> generated tensor (only for inspected cities).
  std::map<std::string, std::map<std::size_t, geo::CityTensor>> generated;
};

const Qualitative& results() {
  static const Qualitative q = [] {
    Qualitative out;
    out.dataset = data::make_country1(bench::dataset_config());
    const eval::EvalConfig config = bench::eval_config();
    const core::SpectraGanConfig base = bench::base_model_config();
    const std::vector<data::Fold> folds = data::leave_one_city_out(out.dataset);
    // CITY B (series, Fig. 8), CITY C/D/H (maps, Figs. 6-7).
    for (std::size_t index : {1u, 2u, 3u, 7u}) {
      for (const std::string& method : kMethods) {
        out.generated[method][index] =
            eval::generate_for_fold(method, base, out.dataset, folds[index], config);
      }
    }
    return out;
  }();
  return q;
}

void BM_Fig678_Qualitative(benchmark::State& state) {
  bench::run_once(state, [] { results(); });
}
BENCHMARK(BM_Fig678_Qualitative)->Iterations(1)->Unit(benchmark::kSecond);

// Writes Fig. 8's aligned per-method series.
void multi_series_table_to_file(const std::vector<std::string>& names,
                                const std::vector<std::vector<double>>& series) {
  eval::multi_series_table(names, series).write("fig8_cityB_series.csv");
}

void write_map_csv(const geo::GridMap& map, const std::string& path) {
  std::ofstream out(path);
  for (long i = 0; i < map.height(); ++i) {
    for (long j = 0; j < map.width(); ++j) {
      if (j > 0) out << ',';
      out << map.at(i, j);
    }
    out << '\n';
  }
}

void report() {
  const Qualitative& q = results();
  const eval::EvalConfig config = bench::eval_config();

  // Fig. 6a + 8: city-wide mean series for CITY B (index 1).
  {
    std::vector<std::string> names = {"real"};
    std::vector<std::vector<double>> series;
    series.push_back(q.dataset.cities[1]
                         .traffic.slice_time(config.eval_offset, config.generate_steps)
                         .space_average());
    for (const std::string& method : kMethods) {
      names.push_back(method);
      series.push_back(q.generated.at(method).at(1).space_average());
    }
    multi_series_table_to_file(names, series);
  }

  // Fig. 7: time-averaged maps, CITY C (2), CITY D (3), CITY H (7).
  for (std::size_t index : {2u, 3u, 7u}) {
    const data::City& city = q.dataset.cities[index];
    std::cout << "\n== Fig. 7 — " << city.name << " time-averaged maps ==\n";
    std::cout << "[Data]\n"
              << eval::ascii_map(
                     city.traffic.slice_time(config.eval_offset, config.generate_steps)
                         .time_average());
    write_map_csv(city.traffic.slice_time(config.eval_offset, config.generate_steps)
                      .time_average(),
                  "fig7_" + std::to_string(index) + "_data.csv");
    for (const std::string& method : kMethods) {
      const geo::GridMap avg = q.generated.at(method).at(index).time_average();
      std::cout << "[" << method << "]\n" << eval::ascii_map(avg);
      std::string tag = method;
      for (char& c : tag) {
        if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
      }
      write_map_csv(avg, "fig7_" + std::to_string(index) + "_" + tag + ".csv");
    }
  }
  std::cout << "(map CSVs: fig7_<city>_<method>.csv; series CSV: fig8_cityB_series.csv)\n";
}

}  // namespace

SG_BENCH_MAIN(report)
