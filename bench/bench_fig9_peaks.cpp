// Figure 9 — distribution of the hour of day at which pixel traffic
// peaks, CITY B: real data vs DoppelGANger vs SpectraGAN.
//
// Paper shape: DoppelGANger's per-pixel independence scrambles peak
// timing (distribution deviates markedly from real); SpectraGAN matches
// the real concentration around midday/evening hours.

#include <cmath>

#include "bench_common.h"

namespace {

using namespace spectra;

std::vector<double> peak_hour_histogram(const geo::CityTensor& traffic) {
  std::vector<double> hist(24, 0.0);
  const long days = traffic.steps() / 24;
  long counted = 0;
  for (long i = 0; i < traffic.height(); ++i) {
    for (long j = 0; j < traffic.width(); ++j) {
      double best = 0.0;
      long best_h = -1;
      for (long h = 0; h < 24; ++h) {
        double acc = 0.0;
        for (long d = 0; d < days; ++d) acc += traffic.at(d * 24 + h, i, j);
        if (acc > best) {
          best = acc;
          best_h = h;
        }
      }
      if (best_h >= 0 && best > 1e-9) {
        hist[static_cast<std::size_t>(best_h)] += 1.0;
        ++counted;
      }
    }
  }
  if (counted > 0) {
    for (double& v : hist) v /= static_cast<double>(counted);
  }
  return hist;
}

struct Fig9 {
  std::vector<double> real;
  std::vector<double> doppelganger;
  std::vector<double> spectragan;
  double tv_doppelganger = 0.0;
  double tv_spectragan = 0.0;
};

const Fig9& fig9() {
  static const Fig9 result = [] {
    const data::CountryDataset dataset = data::make_country1(bench::dataset_config());
    const eval::EvalConfig config = bench::eval_config();
    const core::SpectraGanConfig base = bench::base_model_config();
    const data::Fold fold = data::leave_one_city_out(dataset)[1];  // CITY B

    Fig9 out;
    out.real = peak_hour_histogram(
        dataset.cities[1].traffic.slice_time(config.eval_offset, config.generate_steps));
    out.doppelganger = peak_hour_histogram(
        eval::generate_for_fold("DoppelGANger", base, dataset, fold, config));
    out.spectragan = peak_hour_histogram(
        eval::generate_for_fold("SpectraGAN", base, dataset, fold, config));
    for (long h = 0; h < 24; ++h) {
      out.tv_doppelganger += 0.5 * std::fabs(out.real[static_cast<std::size_t>(h)] -
                                             out.doppelganger[static_cast<std::size_t>(h)]);
      out.tv_spectragan += 0.5 * std::fabs(out.real[static_cast<std::size_t>(h)] -
                                           out.spectragan[static_cast<std::size_t>(h)]);
    }
    return out;
  }();
  return result;
}

void BM_Fig9_PeakDistributions(benchmark::State& state) {
  bench::run_once(state, [] { fig9(); });
}
BENCHMARK(BM_Fig9_PeakDistributions)->Iterations(1)->Unit(benchmark::kSecond);

void report() {
  CsvWriter table({"hour", "real", "DoppelGANger", "SpectraGAN"});
  for (long h = 0; h < 24; ++h) {
    table.add_row({std::to_string(h), CsvWriter::num(fig9().real[static_cast<std::size_t>(h)], 3),
                   CsvWriter::num(fig9().doppelganger[static_cast<std::size_t>(h)], 3),
                   CsvWriter::num(fig9().spectragan[static_cast<std::size_t>(h)], 3)});
  }
  eval::emit_table(table, "Fig. 9 — pixel peak-hour distributions, CITY B", "fig9_peaks.csv");

  CsvWriter summary({"method", "TV distance to real peak-hour distribution"});
  summary.add_row({"DoppelGANger", CsvWriter::num(fig9().tv_doppelganger, 3)});
  summary.add_row({"SpectraGAN", CsvWriter::num(fig9().tv_spectragan, 3)});
  eval::emit_table(summary, "Fig. 9 summary (lower = closer to real)", "fig9_summary.csv");
}

}  // namespace

SG_BENCH_MAIN(report)
