// Shared plumbing for the per-table/figure bench binaries: dataset and
// evaluation configuration from env knobs (DESIGN.md §6), the shared
// generation cache, and fold-subset selection for the expensive sweeps.
//
// Env knobs:
//   SPECTRA_SEED    master dataset/eval seed (default 99)
//   SPECTRA_EPOCHS  GAN training iterations (default 400)
//   SPECTRA_FOLDS   leave-one-city-out folds to run (default: all for the
//                   headline tables; ablation benches default to 3)
//   SPECTRA_CACHE   generation cache directory (default ./spectra_cache)

#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_report.h"
#include "core/variants.h"
#include "data/dataset.h"
#include "eval/protocol.h"
#include "eval/report.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/log.h"

namespace spectra::bench {

inline data::DatasetConfig dataset_config() {
  data::DatasetConfig config;
  config.weeks = 6;
  config.minutes_per_step = 60;
  config.seed = static_cast<std::uint64_t>(env_long("SPECTRA_SEED", 99));
  config.size_scale = env_double("SPECTRA_SCALE", 1.0);
  return config;
}

inline core::SpectraGanConfig base_model_config() {
  core::SpectraGanConfig config = core::default_config();
  config.iterations = env_long("SPECTRA_EPOCHS", config.iterations);
  return config;
}

inline eval::EvalConfig eval_config(long minutes_per_step = 60) {
  eval::EvalConfig config = eval::default_eval_config(minutes_per_step);
  if (config.cache_dir.empty()) config.cache_dir = "spectra_cache";
  return config;
}

// First `max_default` folds unless SPECTRA_FOLDS overrides (0 = all).
inline std::vector<data::Fold> select_folds(const data::CountryDataset& dataset,
                                            long max_default) {
  std::vector<data::Fold> folds = data::leave_one_city_out(dataset);
  long keep = env_long("SPECTRA_FOLDS", max_default);
  if (keep <= 0 || keep > static_cast<long>(folds.size())) {
    keep = static_cast<long>(folds.size());
  }
  folds.resize(static_cast<std::size_t>(keep));
  return folds;
}

// Sweep a list of methods over folds, returning per-(method, city) rows
// plus the DATA reference per city.
inline std::vector<eval::MetricRow> run_sweep(const data::CountryDataset& dataset,
                                              const std::vector<data::Fold>& folds,
                                              const std::vector<std::string>& methods,
                                              const core::SpectraGanConfig& base,
                                              const eval::EvalConfig& config) {
  std::vector<eval::MetricRow> rows;
  for (const data::Fold& fold : folds) {
    const data::City& city = dataset.cities[fold.test_index];
    for (const std::string& method : methods) {
      const geo::CityTensor synthetic =
          eval::generate_for_fold(method, base, dataset, fold, config);
      rows.push_back(eval::compute_metrics(method, city, synthetic, config));
    }
    rows.push_back(eval::data_reference_row(city, config));
  }
  return rows;
}

// Run `fn` exactly once under google-benchmark timing (experiment sweeps
// are too expensive to repeat, and their results are cached in statics).
template <typename Fn>
void run_once(::benchmark::State& state, Fn&& fn) {
  for (auto _ : state) {
    fn();
  }
}

}  // namespace spectra::bench

// BENCHMARK_MAIN-style entry with a post-run report hook: REPORT() runs
// after the timed benchmarks and prints the paper-style tables; the
// shared bench_report teardown (trace/metrics/profile/manifest) runs
// last.
#define SG_BENCH_MAIN(REPORT)                                   \
  int main(int argc, char** argv) {                             \
    ::benchmark::Initialize(&argc, argv);                       \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                                 \
    }                                                           \
    ::benchmark::RunSpecifiedBenchmarks();                      \
    REPORT();                                                   \
    ::spectra::bench::bench_report(argv[0]);                    \
    ::benchmark::Shutdown();                                    \
    return 0;                                                   \
  }
