#include "data/city.h"

#include "util/error.h"

namespace spectra::data {

City make_city(std::string name, long height, long width, long weeks, long minutes_per_step,
               const TrafficProcessParams& params, Rng& rng) {
  SG_CHECK(weeks > 0, "make_city requires at least one week of data");
  City city;
  city.name = std::move(name);
  city.minutes_per_step = minutes_per_step;
  city.latents = sample_latent_fields(height, width, rng);
  city.context = derive_context(city.latents, rng);
  const long steps = weeks * 7 * 24 * 60 / minutes_per_step;
  city.traffic = synthesize_traffic(city.latents, steps, minutes_per_step, params, rng);
  return city;
}

}  // namespace spectra::data
