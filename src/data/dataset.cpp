#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace spectra::data {

const City& CountryDataset::city(const std::string& city_name) const {
  for (const City& c : cities) {
    if (c.name == city_name) return c;
  }
  SG_THROW("unknown city: " + city_name);
}

namespace {

struct CityPlan {
  const char* name;
  long height;
  long width;
};

City build(const CityPlan& plan, const DatasetConfig& config, const TrafficProcessParams& params,
           Rng& rng) {
  const long h =
      std::max<long>(12, std::lround(static_cast<double>(plan.height) * config.size_scale));
  const long w =
      std::max<long>(12, std::lround(static_cast<double>(plan.width) * config.size_scale));
  return make_city(plan.name, h, w, config.weeks, config.minutes_per_step, params, rng);
}

}  // namespace

CountryDataset make_country1(const DatasetConfig& config) {
  // Grid extents scaled down ~2.5x from the paper's 33x33..50x48 range,
  // preserving the diversity of city sizes the leave-one-city-out protocol
  // relies on ("arbitrary spatial sizes").
  static const CityPlan plans[] = {
      {"CITY A", 14, 14}, {"CITY B", 20, 19}, {"CITY C", 16, 15},
      {"CITY D", 18, 14}, {"CITY E", 15, 17}, {"CITY F", 17, 16},
      {"CITY G", 19, 15}, {"CITY H", 14, 18}, {"CITY I", 16, 18},
  };
  CountryDataset dataset;
  dataset.name = "COUNTRY 1";
  dataset.process = country1_params();
  Rng master(config.seed);
  for (const CityPlan& plan : plans) {
    Rng city_rng = master.split(std::hash<std::string>{}(plan.name));
    dataset.cities.push_back(build(plan, config, dataset.process, city_rng));
  }
  return dataset;
}

CountryDataset make_country2(const DatasetConfig& config) {
  static const CityPlan plans[] = {
      {"CITY 1", 16, 16}, {"CITY 2", 19, 17}, {"CITY 3", 14, 15}, {"CITY 4", 17, 18},
  };
  CountryDataset dataset;
  dataset.name = "COUNTRY 2";
  dataset.process = country2_params();
  Rng master(config.seed ^ 0xc2c2c2c2ULL);
  for (const CityPlan& plan : plans) {
    Rng city_rng = master.split(std::hash<std::string>{}(plan.name));
    dataset.cities.push_back(build(plan, config, dataset.process, city_rng));
  }
  return dataset;
}

std::vector<Fold> leave_one_city_out(const CountryDataset& dataset) {
  SG_CHECK(dataset.cities.size() >= 2, "leave-one-city-out needs at least two cities");
  std::vector<Fold> folds;
  folds.reserve(dataset.cities.size());
  for (std::size_t test = 0; test < dataset.cities.size(); ++test) {
    Fold fold;
    fold.test_index = test;
    for (std::size_t train = 0; train < dataset.cities.size(); ++train) {
      if (train != test) fold.train_indices.push_back(train);
    }
    folds.push_back(std::move(fold));
  }
  return folds;
}

}  // namespace spectra::data
