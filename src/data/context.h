// Synthetic urban-context generator.
//
// Substitutes the paper's public context sources (census, Copernicus
// Urban Atlas land use, OpenStreetMap PoIs — Table 1, 27 attributes) with
// a procedural model. A city is built from a small set of latent fields
// (urban-core intensity, industrial blobs, green patches, optional sea,
// road network); the 27 attribute channels of Table 1 are derived from
// those fields with per-attribute mixing weights chosen so their Pearson
// correlation with the synthetic traffic lands in the ranges the paper
// reports (strong for census/continuous-urban/cafe/restaurant/shop,
// negative for barren land/sea, near zero for ports/motorways).

#pragma once

#include <string>
#include <vector>

#include "geo/city_tensor.h"
#include "util/rng.h"

namespace spectra::data {

// Fixed channel order of the 27 context attributes (matches Table 1).
enum ContextChannel : long {
  kCensus = 0,
  kContinuousUrban,
  kHighDenseUrban,
  kMediumDenseUrban,
  kLowDenseUrban,
  kVeryLowDenseUrban,
  kIsolatedStructures,
  kGreenUrban,
  kIndustrialCommercial,
  kAirSeaPorts,
  kLeisureFacilities,
  kBarrenLands,
  kSea,
  kTourism,
  kCafe,
  kParking,
  kRestaurant,
  kPostPolice,
  kTrafficSignals,
  kOffice,
  kPublicTransport,
  kShop,
  kSecondaryRoads,
  kPrimaryRoads,
  kMotorways,
  kRailwayStations,
  kTramStops,
  kNumContextChannels  // == 27
};

// Human-readable names, index-aligned with ContextChannel.
const std::vector<std::string>& context_attribute_names();

// Latent fields from which both context channels and the ground-truth
// traffic process are derived. Exposed so the traffic process can use the
// *latents* (not the noisy observed channels), mirroring reality where
// public context is an imperfect proxy of what drives traffic.
struct LatentFields {
  geo::GridMap urban;        // U in [0,1]: urban-core intensity
  geo::GridMap industrial;   // I in [0,1]: industrial/commercial districts
  geo::GridMap green;        // G in [0,1]: parks / leisure areas
  geo::GridMap sea;          // S in {0..1}: water body mask (may be all 0)
  geo::GridMap roads_minor;  // secondary road density
  geo::GridMap roads_major;  // primary road density
  geo::GridMap motorways;    // ring/motorway density
  geo::GridMap business_mix; // theta in [0,1]: business- vs residential-led activity
};

// Sample latent fields for an H x W city.
LatentFields sample_latent_fields(long height, long width, Rng& rng);

// Derive the 27-channel context tensor from latents (each channel
// normalized to [0,1] by its own peak, as the real pipeline normalizes
// heterogeneous public sources).
geo::ContextTensor derive_context(const LatentFields& latents, Rng& rng);

}  // namespace spectra::data
