// A City bundles a name, its context tensor, its ground-truth traffic and
// the sampling granularity — one element of the multi-city datasets used
// in the leave-one-city-out protocol (§4.1).

#pragma once

#include <string>

#include "data/context.h"
#include "data/traffic_process.h"
#include "geo/city_tensor.h"

namespace spectra::data {

struct City {
  std::string name;
  geo::ContextTensor context;  // [27, H, W], channels peak-normalized
  geo::CityTensor traffic;     // [T, H, W], peak-normalized to [0,1]
  long minutes_per_step = 60;

  long height() const { return traffic.height(); }
  long width() const { return traffic.width(); }
  long steps() const { return traffic.steps(); }
  long steps_per_week() const { return 7 * 24 * 60 / minutes_per_step; }

  // Latent fields kept for ground-truth-aware diagnostics (e.g. the
  // Fig. 2 flow characterization); models never see them.
  LatentFields latents;
};

// Build one synthetic city end to end.
City make_city(std::string name, long height, long width, long weeks, long minutes_per_step,
               const TrafficProcessParams& params, Rng& rng);

}  // namespace spectra::data
