// Ground-truth spatiotemporal traffic process.
//
// Substitutes the operators' measured traffic with a generative process
// engineered to reproduce the empirical facts the paper reports:
//   * per-pixel series dominated by a handful of frequency components —
//     diurnal, semi-diurnal, weekly, semi-weekly (Fig. 1d);
//   * a smooth residential-vs-business activity mix that shifts the
//     diurnal peak phase across space, creating the traffic-flow
//     phenomenon of Fig. 2;
//   * weekday/weekend dichotomy (business activity damped on weekends);
//   * heavy-tailed pixel amplitudes driven by the urban context, with
//     log-normal-ish marginals (Appendix A);
//   * AR(1) small-scale residual noise on top of the periodic part
//     (Fig. 1f).
// Traffic is normalized by the city's peak, exactly as the paper's
// datasets are anonymized.

#pragma once

#include "data/context.h"
#include "geo/city_tensor.h"
#include "util/rng.h"

namespace spectra::data {

// Operator/country-level parameterization: the two countries in the study
// are measured by different operators with different customer bases, so
// their traffic differs in scale and noise (Tables 9-10).
struct TrafficProcessParams {
  double amplitude_floor = 0.02;   // minimum relative activity on land
  double business_weekend_damp = 0.5;  // business activity factor on weekends
  double residual_sigma = 0.10;    // AR(1) residual scale (fraction of amplitude)
  double residual_rho = 0.6;       // AR(1) correlation
  double burst_rate = 0.004;       // probability of a traffic burst per pixel-step
  double burst_scale = 1.6;        // burst multiplier
  double diurnal_amp = 0.85;       // amplitude of the 24 h component
  double semidiurnal_amp = 0.30;   // amplitude of the 12 h component
  double weekly_amp = 0.22;        // amplitude of the 168 h component
  double semiweekly_amp = 0.10;    // amplitude of the 84 h component
  double mean_level = 1.0;         // DC level before normalization
};

// Parameter sets mirroring the two countries' datasets.
TrafficProcessParams country1_params();
TrafficProcessParams country2_params();

// Synthesize `steps` samples at `minutes_per_step` granularity for the
// city described by `latents`. Output is peak-normalized to [0,1].
geo::CityTensor synthesize_traffic(const LatentFields& latents, long steps, long minutes_per_step,
                                   const TrafficProcessParams& params, Rng& rng);

// The deterministic periodic template for one pixel (before amplitude
// scaling and noise); exposed for tests and the Fig. 1 characterization.
double periodic_profile(double hours, double business_mix, const TrafficProcessParams& params);

}  // namespace spectra::data
