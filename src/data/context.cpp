#include "data/context.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace spectra::data {

const std::vector<std::string>& context_attribute_names() {
  static const std::vector<std::string> names = {
      "Census",
      "Continuous Urban",
      "High Dense Urban",
      "Medium Dense Urban",
      "Low Dense Urban",
      "Very-Low Dense Urban",
      "Isolated Structures",
      "Green Urban",
      "Industrial/Commercial",
      "Air/Sea Ports",
      "Leisure Facilities",
      "Barren Lands",
      "Sea",
      "Tourism",
      "Cafe",
      "Parking",
      "Restaurant",
      "Post/Police",
      "Traffic Signals",
      "Office",
      "Public Transport",
      "Shop",
      "Secondary Roads",
      "Primary Roads",
      "Motorways",
      "Railway Stations",
      "Tram Stops",
  };
  return names;
}

namespace {

// Smoothstep band: 1 inside [lo, hi] with soft edges of width `soft`.
double band(double x, double lo, double hi, double soft) {
  auto smooth = [](double t) {
    t = std::clamp(t, 0.0, 1.0);
    return t * t * (3.0 - 2.0 * t);
  };
  return smooth((x - lo) / soft + 0.5) * (1.0 - smooth((x - hi) / soft + 0.5));
}

double smoothstep(double x, double lo, double hi) {
  const double t = std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
  return t * t * (3.0 - 2.0 * t);
}

// Smooth random field in [0,1]: bilinear interpolation of a coarse white
// noise lattice (cheap substitute for Perlin noise).
geo::GridMap smooth_noise(long h, long w, long cell, Rng& rng) {
  const long gh = h / cell + 2;
  const long gw = w / cell + 2;
  std::vector<double> lattice(static_cast<std::size_t>(gh * gw));
  for (double& v : lattice) v = rng.uniform();
  geo::GridMap out(h, w);
  for (long i = 0; i < h; ++i) {
    const double fi = static_cast<double>(i) / static_cast<double>(cell);
    const long i0 = static_cast<long>(fi);
    const double ti = fi - static_cast<double>(i0);
    for (long j = 0; j < w; ++j) {
      const double fj = static_cast<double>(j) / static_cast<double>(cell);
      const long j0 = static_cast<long>(fj);
      const double tj = fj - static_cast<double>(j0);
      const double v00 = lattice[static_cast<std::size_t>(i0 * gw + j0)];
      const double v01 = lattice[static_cast<std::size_t>(i0 * gw + j0 + 1)];
      const double v10 = lattice[static_cast<std::size_t>((i0 + 1) * gw + j0)];
      const double v11 = lattice[static_cast<std::size_t>((i0 + 1) * gw + j0 + 1)];
      out.at(i, j) = v00 * (1 - ti) * (1 - tj) + v01 * (1 - ti) * tj + v10 * ti * (1 - tj) +
                     v11 * ti * tj;
    }
  }
  return out;
}

// Sum of isotropic Gaussian blobs.
geo::GridMap gaussian_blobs(long h, long w, long count, double sigma_lo, double sigma_hi,
                            double margin, Rng& rng) {
  geo::GridMap out(h, w);
  for (long b = 0; b < count; ++b) {
    const double ci = rng.uniform(margin, static_cast<double>(h) - margin);
    const double cj = rng.uniform(margin, static_cast<double>(w) - margin);
    const double sigma = rng.uniform(sigma_lo, sigma_hi);
    const double amp = rng.uniform(0.55, 1.0);
    for (long i = 0; i < h; ++i) {
      for (long j = 0; j < w; ++j) {
        const double fi = static_cast<double>(i), fj = static_cast<double>(j);
        const double d2 = (fi - ci) * (fi - ci) + (fj - cj) * (fj - cj);
        out.at(i, j) += amp * std::exp(-d2 / (2.0 * sigma * sigma));
      }
    }
  }
  const double peak = out.max();
  if (peak > 0.0) out.scale(1.0 / peak);
  return out;
}

// A handful of straight "roads": line segments with Gaussian cross-profile.
geo::GridMap road_lines(long h, long w, long count, double width_px, Rng& rng) {
  geo::GridMap out(h, w);
  for (long r = 0; r < count; ++r) {
    // Random line through a random interior point at a random angle.
    const double fh = static_cast<double>(h), fw = static_cast<double>(w);
    const double pi0 = rng.uniform(0.15 * fh, 0.85 * fh);
    const double pj0 = rng.uniform(0.15 * fw, 0.85 * fw);
    const double angle = rng.uniform(0.0, M_PI);
    const double di = std::sin(angle);
    const double dj = std::cos(angle);
    for (long i = 0; i < h; ++i) {
      for (long j = 0; j < w; ++j) {
        // Perpendicular distance from (i,j) to the line.
        const double dist =
            std::fabs((static_cast<double>(i) - pi0) * dj - (static_cast<double>(j) - pj0) * di);
        out.at(i, j) += std::exp(-dist * dist / (2.0 * width_px * width_px));
      }
    }
  }
  const double peak = out.max();
  if (peak > 0.0) out.scale(1.0 / peak);
  return out;
}

void normalize_channel(geo::GridMap& m) { m.normalize_peak(); }

}  // namespace

LatentFields sample_latent_fields(long height, long width, Rng& rng) {
  SG_CHECK(height >= 8 && width >= 8, "city too small for latent field synthesis");

  LatentFields f{
      geo::GridMap(height, width), geo::GridMap(height, width), geo::GridMap(height, width),
      geo::GridMap(height, width), geo::GridMap(height, width), geo::GridMap(height, width),
      geo::GridMap(height, width), geo::GridMap(height, width)};

  // Urban core: 1 main center + 1-3 subcenters, plus low-frequency texture.
  const long subcenters = 1 + static_cast<long>(rng.uniform_index(3));
  const double min_dim = static_cast<double>(std::min(height, width));
  geo::GridMap cores = gaussian_blobs(height, width, 1 + subcenters, 0.12 * min_dim,
                                      0.28 * min_dim, 0.2 * min_dim, rng);
  geo::GridMap texture = smooth_noise(height, width, std::max<long>(3, height / 5), rng);
  for (long p = 0; p < cores.size(); ++p) {
    f.urban[p] = std::clamp(0.8 * cores[p] + 0.25 * texture[p], 0.0, 1.0);
  }

  // Industrial districts: blobs offset from the core (industry sits at the
  // urban fringe), masked away from the deepest center.
  geo::GridMap ind = gaussian_blobs(height, width, 2, 0.08 * min_dim, 0.16 * min_dim, 1.0, rng);
  for (long p = 0; p < ind.size(); ++p) {
    f.industrial[p] = ind[p] * (1.0 - 0.6 * smoothstep(f.urban[p], 0.75, 0.95));
  }

  // Green areas: mid-scale patches, favoring mid-density urban rings.
  geo::GridMap green = smooth_noise(height, width, std::max<long>(2, height / 6), rng);
  for (long p = 0; p < green.size(); ++p) {
    f.green[p] = smoothstep(green[p], 0.62, 0.85) * band(f.urban[p], 0.15, 0.75, 0.2);
  }

  // Sea: with probability 0.35 the city borders water on one side.
  if (rng.bernoulli(0.35)) {
    const int side = static_cast<int>(rng.uniform_index(4));
    const double extent = rng.uniform(0.12, 0.28);
    for (long i = 0; i < height; ++i) {
      for (long j = 0; j < width; ++j) {
        const double fh = static_cast<double>(height), fw = static_cast<double>(width);
        double coast = 0.0;
        switch (side) {
          case 0: coast = static_cast<double>(i) / fh; break;
          case 1: coast = 1.0 - static_cast<double>(i) / fh; break;
          case 2: coast = static_cast<double>(j) / fw; break;
          default: coast = 1.0 - static_cast<double>(j) / fw; break;
        }
        f.sea.at(i, j) = coast < extent ? 1.0 : 0.0;
      }
    }
    // Water suppresses everything else.
    for (long p = 0; p < f.sea.size(); ++p) {
      const double land = 1.0 - f.sea[p];
      f.urban[p] *= land;
      f.industrial[p] *= land;
      f.green[p] *= land;
    }
  }

  // Road networks at three scales.
  f.roads_minor = road_lines(height, width, 5, 0.8, rng);
  f.roads_major = road_lines(height, width, 3, 1.0, rng);
  f.motorways = road_lines(height, width, 2, 1.2, rng);
  for (long p = 0; p < f.roads_minor.size(); ++p) {
    const double land = 1.0 - f.sea[p];
    // Minor roads track the urban fabric; motorways skirt the periphery.
    f.roads_minor[p] *= land * (0.3 + 0.7 * f.urban[p]);
    f.roads_major[p] *= land * (0.4 + 0.6 * f.urban[p]);
    f.motorways[p] *= land * (1.0 - 0.5 * smoothstep(f.urban[p], 0.5, 0.9));
  }

  // Business mix theta: industrial/office districts lead daytime activity;
  // residential areas lead evenings. Smooth by construction (latents are
  // smooth), which is what creates the peak-flow phenomenon of Fig. 2.
  for (long p = 0; p < f.business_mix.size(); ++p) {
    const double business = 0.65 * f.industrial[p] + 0.35 * smoothstep(f.urban[p], 0.65, 0.95);
    const double residential = band(f.urban[p], 0.25, 0.75, 0.25);
    f.business_mix[p] = std::clamp(0.15 + 0.7 * business / (business + residential + 0.25), 0.0, 1.0);
  }

  return f;
}

geo::ContextTensor derive_context(const LatentFields& f, Rng& rng) {
  const long h = f.urban.height();
  const long w = f.urban.width();
  geo::ContextTensor context(kNumContextChannels, h, w);

  // Per-channel scratch map filled below, then peak-normalized.
  std::vector<geo::GridMap> channels(kNumContextChannels, geo::GridMap(h, w));

  geo::GridMap obs_noise = smooth_noise(h, w, 3, rng);

  for (long i = 0; i < h; ++i) {
    for (long j = 0; j < w; ++j) {
      const long p = i * w + j;
      const double U = f.urban[p];
      const double I = f.industrial[p];
      const double G = f.green[p];
      const double S = f.sea[p];
      const double Rmin = f.roads_minor[p];
      const double Rmaj = f.roads_major[p];
      const double Rmot = f.motorways[p];

      // Census: inhabitants track urban intensity with heavy-tailed
      // observation noise (PCC ~ 0.6 in Table 1).
      channels[kCensus][p] = std::pow(U, 1.2) * rng.lognormal(0.0, 0.35);

      // Urban Atlas density classes occupy bands of U.
      channels[kContinuousUrban][p] = smoothstep(U, 0.55, 0.85) + 0.05 * obs_noise[p];
      channels[kHighDenseUrban][p] = band(U, 0.45, 0.65, 0.12) + 0.08 * obs_noise[p];
      channels[kMediumDenseUrban][p] = band(U, 0.3, 0.48, 0.12) + 0.1 * obs_noise[p];
      channels[kLowDenseUrban][p] = band(U, 0.18, 0.32, 0.1) + 0.1 * obs_noise[p];
      channels[kVeryLowDenseUrban][p] = band(U, 0.08, 0.2, 0.08) + 0.1 * obs_noise[p];
      channels[kIsolatedStructures][p] = band(U, 0.02, 0.1, 0.05) * (1.0 - S) + 0.08 * obs_noise[p];
      channels[kGreenUrban][p] = G;
      channels[kIndustrialCommercial][p] = I;
      // Ports exist only for coastal/fringe cities; mostly uncorrelated.
      channels[kAirSeaPorts][p] = (S > 0.0 ? 0.0 : 1.0) * band(U, 0.05, 0.25, 0.1) *
                                  (rng.bernoulli(0.02) ? rng.uniform(0.5, 1.0) : 0.0);
      channels[kLeisureFacilities][p] = 0.6 * G + 0.25 * band(U, 0.4, 0.7, 0.2) + 0.1 * obs_noise[p];
      channels[kBarrenLands][p] = smoothstep(1.0 - U, 0.82, 0.98) * (1.0 - S);
      channels[kSea][p] = S;

      // PoIs: Poisson counts with intensity driven by urban fabric.
      const double u2 = U * U;
      channels[kTourism][p] = rng.poisson(6.0 * u2 * (0.5 + 0.5 * G + 0.3 * obs_noise[p]));
      channels[kCafe][p] = rng.poisson(9.0 * u2);
      channels[kParking][p] = rng.poisson(3.0 * (0.4 * U + 0.4 * I + 0.2 * Rmaj));
      channels[kRestaurant][p] = rng.poisson(10.0 * u2 * (0.8 + 0.2 * I));
      channels[kPostPolice][p] = rng.poisson(1.5 * (0.5 * U + 0.2 * I));
      channels[kTrafficSignals][p] = rng.poisson(5.0 * (0.5 * U * Rmin + 0.3 * U * Rmaj + 0.2 * u2));
      channels[kOffice][p] = rng.poisson(7.0 * (0.55 * u2 + 0.45 * U * I));
      channels[kPublicTransport][p] = rng.poisson(5.0 * (0.6 * U + 0.4 * Rmaj) * U);
      channels[kShop][p] = rng.poisson(11.0 * u2 * (0.85 + 0.15 * Rmin));

      // Transport infrastructure.
      channels[kSecondaryRoads][p] = Rmin * (0.6 + 0.4 * obs_noise[p]);
      channels[kPrimaryRoads][p] = Rmaj * (0.7 + 0.3 * obs_noise[p]);
      channels[kMotorways][p] = Rmot;
      channels[kRailwayStations][p] =
          rng.bernoulli(0.04 * (0.3 + 0.7 * U)) ? rng.uniform(0.5, 1.0) : 0.0;
      channels[kTramStops][p] = rng.poisson(2.0 * U * (0.5 * Rmin + 0.5 * Rmaj));
    }
  }

  for (long c = 0; c < kNumContextChannels; ++c) {
    geo::GridMap& channel = channels[static_cast<std::size_t>(c)];
    normalize_channel(channel);
    for (long p = 0; p < h * w; ++p) context.at(c, p / w, p % w) = channel[p];
  }
  return context;
}

}  // namespace spectra::data
