// Minibatch sampling of (context patch, traffic patch) pairs for
// adversarial training (§2.2.1). Returns plain float buffers + shape
// metadata so the data layer stays independent of the autograd stack.

#pragma once

#include <vector>

#include "data/dataset.h"
#include "geo/patching.h"
#include "util/rng.h"

namespace spectra::data {

struct PatchBatch {
  long batch = 0;
  long channels = 0;   // C
  long context_h = 0;  // Hc
  long context_w = 0;  // Wc
  long steps = 0;      // T
  long traffic_h = 0;  // Ht
  long traffic_w = 0;  // Wt
  std::vector<float> context;  // [B, C, Hc, Wc]
  std::vector<float> traffic;  // [B, T, Ht, Wt]
};

class PatchSampler {
 public:
  // `train_steps` selects traffic[time_offset, time_offset+train_steps) —
  // the paper trains on one week and generates three (§4.1).
  PatchSampler(const CountryDataset& dataset, const std::vector<std::size_t>& city_indices,
               const geo::PatchSpec& spec, long time_offset, long train_steps);

  // Uniformly sample `batch` (city, window) pairs.
  PatchBatch sample(long batch, Rng& rng) const;

  // Total number of candidate windows across all training cities.
  std::size_t window_count() const;

  const geo::PatchSpec& spec() const { return spec_; }
  long train_steps() const { return train_steps_; }

 private:
  struct Candidate {
    const City* city;
    geo::PatchWindow window;
  };
  std::vector<Candidate> candidates_;
  geo::PatchSpec spec_;
  long time_offset_;
  long train_steps_;
};

}  // namespace spectra::data
