#include "data/traffic_process.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace spectra::data {

TrafficProcessParams country1_params() {
  return TrafficProcessParams{};  // defaults describe Country 1
}

TrafficProcessParams country2_params() {
  TrafficProcessParams p;
  // A different operator: flatter diurnal swing, noisier measurements,
  // higher relative mean (cf. Tables 9-10: Country 2 means are ~4x higher).
  p.amplitude_floor = 0.06;
  p.mean_level = 1.35;
  p.diurnal_amp = 0.7;
  p.semidiurnal_amp = 0.22;
  p.weekly_amp = 0.28;
  p.residual_sigma = 0.14;
  p.business_weekend_damp = 0.55;
  return p;
}

double periodic_profile(double hours, double business_mix, const TrafficProcessParams& params) {
  const double theta = std::clamp(business_mix, 0.0, 1.0);
  // Diurnal peak drifts from ~20:30 (residential) to ~13:00 (business);
  // the smooth spatial variation of theta is what moves traffic peaks
  // between neighbouring pixels over the day (Fig. 2).
  const double peak_hour = 20.5 - 7.5 * theta;
  const double w_day = 2.0 * M_PI / 24.0;
  const double w_week = 2.0 * M_PI / 168.0;

  double v = params.mean_level;
  v += params.diurnal_amp * std::cos(w_day * (hours - peak_hour));
  v += params.semidiurnal_amp * std::cos(2.0 * w_day * (hours - peak_hour - 2.0));
  v += params.weekly_amp * std::cos(w_week * (hours - 24.0 * 2.5));
  v += params.semiweekly_amp * std::cos(2.0 * w_week * hours);

  // Weekday/weekend dichotomy: business-led traffic collapses on weekends
  // (days 5 and 6 of the cycle), residential traffic rises slightly.
  const double day_of_week = std::fmod(hours / 24.0, 7.0);
  const bool weekend = day_of_week >= 5.0;
  if (weekend) {
    v *= (1.0 - theta) * 1.08 + theta * params.business_weekend_damp;
  }
  return std::max(v, 0.0);
}

geo::CityTensor synthesize_traffic(const LatentFields& latents, long steps, long minutes_per_step,
                                   const TrafficProcessParams& params, Rng& rng) {
  SG_CHECK(steps > 0, "synthesize_traffic requires steps > 0");
  SG_CHECK(minutes_per_step > 0 && 60 % minutes_per_step == 0,
           "minutes_per_step must divide 60");
  const long h = latents.urban.height();
  const long w = latents.urban.width();
  geo::CityTensor traffic(steps, h, w);

  // Per-pixel amplitude from the latent urban fabric; exponent > 1 plus a
  // log-normal factor yields the heavy-tailed spatial distribution of
  // Fig. 12 (most pixels faint, a few hotspots near 1).
  geo::GridMap amplitude(h, w);
  for (long i = 0; i < h; ++i) {
    for (long j = 0; j < w; ++j) {
      const long p = i * w + j;
      const double land = 1.0 - latents.sea[p];
      const double drive = 0.55 * latents.urban[p] + 0.22 * latents.industrial[p] +
                           0.13 * latents.roads_major[p] + 0.10 * latents.green[p] * 0.3;
      const double amp = std::pow(std::max(drive, 0.0), 1.6) * rng.lognormal(0.0, 0.25);
      amplitude.at(i, j) = land * std::max(amp, params.amplitude_floor * land);
    }
  }

  // AR(1) residual state per pixel.
  std::vector<double> residual(static_cast<std::size_t>(h * w), 0.0);
  const double hours_per_step = static_cast<double>(minutes_per_step) / 60.0;

  for (long t = 0; t < steps; ++t) {
    const double hours = static_cast<double>(t) * hours_per_step;
    for (long i = 0; i < h; ++i) {
      for (long j = 0; j < w; ++j) {
        const long p = i * w + j;
        if (latents.sea[p] >= 1.0) {
          traffic.at(t, i, j) = 0.0;
          continue;
        }
        const double base = periodic_profile(hours, latents.business_mix[p], params);
        double& eps = residual[static_cast<std::size_t>(p)];
        eps = params.residual_rho * eps +
              rng.normal(0.0, params.residual_sigma * std::sqrt(1.0 - params.residual_rho *
                                                                          params.residual_rho));
        double v = amplitude.at(i, j) * std::max(base + eps, 0.0);
        if (rng.bernoulli(params.burst_rate)) v *= params.burst_scale;
        traffic.at(t, i, j) = v;
      }
    }
  }

  traffic.normalize_peak();
  return traffic;
}

}  // namespace spectra::data
