#include "data/sampler.h"

#include "util/error.h"

namespace spectra::data {

PatchSampler::PatchSampler(const CountryDataset& dataset,
                           const std::vector<std::size_t>& city_indices,
                           const geo::PatchSpec& spec, long time_offset, long train_steps)
    : spec_(spec), time_offset_(time_offset), train_steps_(train_steps) {
  spec_.validate();
  SG_CHECK(!city_indices.empty(), "PatchSampler requires at least one training city");
  SG_CHECK(train_steps > 0, "PatchSampler requires train_steps > 0");
  for (std::size_t index : city_indices) {
    SG_CHECK(index < dataset.cities.size(), "city index out of range");
    const City& city = dataset.cities[index];
    SG_CHECK(time_offset >= 0 && time_offset + train_steps <= city.steps(),
             "training window exceeds available traffic for " + city.name);
    for (const geo::PatchWindow& window :
         geo::enumerate_windows(city.height(), city.width(), spec_)) {
      candidates_.push_back({&city, window});
    }
  }
  SG_CHECK(!candidates_.empty(), "no candidate windows");
}

std::size_t PatchSampler::window_count() const { return candidates_.size(); }

PatchBatch PatchSampler::sample(long batch, Rng& rng) const {
  SG_CHECK(batch > 0, "batch must be positive");
  PatchBatch out;
  out.batch = batch;
  out.channels = kNumContextChannels;
  out.context_h = spec_.context_h;
  out.context_w = spec_.context_w;
  out.steps = train_steps_;
  out.traffic_h = spec_.traffic_h;
  out.traffic_w = spec_.traffic_w;
  out.context.reserve(static_cast<std::size_t>(batch * out.channels * out.context_h * out.context_w));
  out.traffic.reserve(static_cast<std::size_t>(batch * out.steps * out.traffic_h * out.traffic_w));

  for (long b = 0; b < batch; ++b) {
    const Candidate& cand = candidates_[rng.uniform_index(candidates_.size())];
    const std::vector<float> ctx = geo::extract_context_patch(cand.city->context, cand.window, spec_);
    out.context.insert(out.context.end(), ctx.begin(), ctx.end());
    const geo::CityTensor& traffic = cand.city->traffic;
    for (long t = 0; t < train_steps_; ++t) {
      for (long i = 0; i < spec_.traffic_h; ++i) {
        for (long j = 0; j < spec_.traffic_w; ++j) {
          out.traffic.push_back(static_cast<float>(
              traffic.at(time_offset_ + t, cand.window.row + i, cand.window.col + j)));
        }
      }
    }
  }
  return out;
}

}  // namespace spectra::data
