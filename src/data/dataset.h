// Multi-city datasets mirroring the paper's study: Country 1 with nine
// cities (CITY A..CITY I) and Country 2 with four (CITY 1..CITY 4), each
// covering six continuous weeks (§3.1). City grid sizes are scaled down
// from the paper's 33x33..50x48 so the full leave-one-city-out sweep runs
// on one CPU core; the SPECTRA_SCALE env knob restores larger grids.

#pragma once

#include <vector>

#include "data/city.h"

namespace spectra::data {

struct DatasetConfig {
  long weeks = 6;             // continuous measurement period (paper: 6 weeks)
  long minutes_per_step = 60; // paper data is 15-min; evaluation uses hourly (§4.1)
  double size_scale = 1.0;    // multiplies city grid extents
  std::uint64_t seed = 7;     // master seed for the whole dataset
};

struct CountryDataset {
  std::string name;
  std::vector<City> cities;
  TrafficProcessParams process;

  const City& city(const std::string& city_name) const;
};

// Nine diverse-size cities, operator/parameter set 1.
CountryDataset make_country1(const DatasetConfig& config = {});

// Four cities, operator/parameter set 2.
CountryDataset make_country2(const DatasetConfig& config = {});

// Leave-one-city-out folds: for each index, training cities are all but
// the held-out one.
struct Fold {
  std::size_t test_index;
  std::vector<std::size_t> train_indices;
};
std::vector<Fold> leave_one_city_out(const CountryDataset& dataset);

}  // namespace spectra::data
