#include "eval/protocol.h"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "metrics/autocorr_l1.h"
#include "metrics/fvd.h"
#include "metrics/marginal.h"
#include "metrics/ssim.h"
#include "metrics/tstr.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/error.h"
#include "util/log.h"

namespace spectra::eval {

EvalConfig default_eval_config(long minutes_per_step) {
  SG_CHECK(minutes_per_step > 0 && 60 % minutes_per_step == 0, "invalid granularity");
  const long scale = 60 / minutes_per_step;
  EvalConfig config;
  config.train_steps *= scale;
  config.generate_steps *= scale;
  config.eval_offset *= scale;
  config.autocorr_max_lag *= scale;
  config.seed = static_cast<std::uint64_t>(env_long("SPECTRA_SEED", 99));
  config.cache_dir = env_string("SPECTRA_CACHE", "");
  return config;
}

MetricRow compute_metrics(const std::string& method, const data::City& city,
                          const geo::CityTensor& synthetic, const EvalConfig& config) {
  SG_CHECK(city.steps() >= config.eval_offset + config.generate_steps,
           "city has too little real data for the evaluation window");
  const geo::CityTensor real_eval = city.traffic.slice_time(config.eval_offset, config.generate_steps);

  MetricRow row;
  row.method = method;
  row.city = city.name;
  row.m_tv = metrics::marginal_tv(real_eval, synthetic);
  row.ssim = metrics::ssim(real_eval.time_average(), synthetic.time_average());
  row.ac_l1 = metrics::autocorr_l1(real_eval, synthetic, config.autocorr_max_lag);
  row.tstr = metrics::tstr_r2(synthetic, real_eval);
  if (config.compute_fvd) {
    metrics::FvdConfig fvd_config;
    fvd_config.window = 2 * EvalConfig::steps_per_day(city);
    fvd_config.stride = EvalConfig::steps_per_day(city) / 2;
    row.fvd = metrics::fvd(real_eval, synthetic, fvd_config);
  } else {
    row.fvd = std::nan("");
  }
  return row;
}

MetricRow data_reference_row(const data::City& city, const EvalConfig& config) {
  // Two distinct 3-week periods of real data (§3.3): the evaluation
  // window vs the window starting where it ends (wrapping to the start if
  // the tail is too short).
  const long first = config.eval_offset;
  long second = first + config.generate_steps;
  if (second + config.generate_steps > city.steps()) second = 0;
  SG_CHECK(second + config.generate_steps <= city.steps(),
           "not enough real data for the DATA reference");
  const geo::CityTensor other = city.traffic.slice_time(second, config.generate_steps);
  return compute_metrics("Data", city, other, config);
}

namespace {

constexpr std::uint32_t kTensorMagic = 0x53475354;  // "SGST"

std::string sanitize(const std::string& s) {
  std::string out;
  for (char c : s) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

std::string cache_path(const std::string& cache_dir, const std::string& model,
                       const data::CountryDataset& dataset, const data::City& city,
                       const EvalConfig& config, const core::SpectraGanConfig& base_config) {
  return cache_dir + "/" + sanitize(dataset.name) + "_" + sanitize(city.name) + "_" +
         sanitize(model) + "_t" + std::to_string(config.generate_steps) + "_it" +
         std::to_string(base_config.iterations) + "_s" + std::to_string(config.seed) + ".sgt";
}

}  // namespace

void save_city_tensor(const std::string& path, const geo::CityTensor& tensor) {
  std::ofstream out(path, std::ios::binary);
  SG_CHECK(static_cast<bool>(out), "cannot open " + path + " for writing");
  const std::uint32_t magic = kTensorMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  const std::int64_t dims[3] = {tensor.steps(), tensor.height(), tensor.width()};
  out.write(reinterpret_cast<const char*>(dims), sizeof(dims));
  out.write(reinterpret_cast<const char*>(tensor.values().data()),
            static_cast<std::streamsize>(tensor.values().size() * sizeof(double)));
  SG_CHECK(static_cast<bool>(out), "write failed for " + path);
}

std::optional<geo::CityTensor> load_city_tensor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kTensorMagic) return std::nullopt;
  std::int64_t dims[3] = {0, 0, 0};
  in.read(reinterpret_cast<char*>(dims), sizeof(dims));
  if (!in) return std::nullopt;
  geo::CityTensor tensor(dims[0], dims[1], dims[2]);
  in.read(reinterpret_cast<char*>(tensor.values().data()),
          static_cast<std::streamsize>(tensor.values().size() * sizeof(double)));
  if (!in) return std::nullopt;
  return tensor;
}

geo::CityTensor generate_for_fold(const std::string& model_name,
                                  const core::SpectraGanConfig& base_config,
                                  const data::CountryDataset& dataset, const data::Fold& fold,
                                  const EvalConfig& config) {
  static obs::Counter& cache_hits = obs::Registry::instance().counter("eval.cache.hits");
  static obs::Counter& cache_misses = obs::Registry::instance().counter("eval.cache.misses");
  static obs::Counter& cache_writes = obs::Registry::instance().counter("eval.cache.writes");
  static obs::Counter& cache_write_bytes =
      obs::Registry::instance().counter("eval.cache.write_bytes");

  const data::City& target = dataset.cities.at(fold.test_index);

  std::string path;
  if (!config.cache_dir.empty()) {
    std::filesystem::create_directories(config.cache_dir);
    path = cache_path(config.cache_dir, model_name, dataset, target, config, base_config);
    if (std::optional<geo::CityTensor> cached = load_city_tensor(path)) {
      cache_hits.inc();
      SG_LOG_INFO << "cache hit: " << path;
      return std::move(*cached);
    }
    cache_misses.inc();
    SG_LOG_INFO << "cache miss: " << path;
  }

  Rng rng(config.seed ^ (fold.test_index * 0x9e3779b9ULL) ^
          std::hash<std::string>{}(model_name));
  std::unique_ptr<baselines::TrafficGenerator> model =
      baselines::make_model(model_name, base_config);
  SG_LOG_INFO << "training " << model_name << " for held-out " << target.name;
  {
    SG_TRACE_SPAN("eval/fold_train");
    SG_PROFILE_SCOPE("eval/fold_train");
    model->fit(dataset, fold.train_indices, config.train_steps, rng);
  }
  geo::CityTensor synthetic;
  {
    SG_TRACE_SPAN("eval/fold_generate");
    SG_PROFILE_SCOPE("eval/fold_generate");
    synthetic = model->generate(target, config.generate_steps, rng);
  }

  if (!path.empty()) {
    save_city_tensor(path, synthetic);
    std::error_code ec;
    const std::uintmax_t bytes = std::filesystem::file_size(path, ec);
    cache_writes.inc();
    if (!ec) cache_write_bytes.inc(static_cast<std::uint64_t>(bytes));
    SG_LOG_INFO << "cache write: " << path << " (" << (ec ? 0 : bytes) << " bytes)";
  }
  return synthetic;
}

std::vector<MetricRow> average_by_method(const std::vector<MetricRow>& rows) {
  std::vector<MetricRow> averaged;
  for (const MetricRow& row : rows) {
    MetricRow* bucket = nullptr;
    for (MetricRow& existing : averaged) {
      if (existing.method == row.method) bucket = &existing;
    }
    if (bucket == nullptr) {
      MetricRow fresh;
      fresh.method = row.method;
      fresh.city = "average";
      averaged.push_back(fresh);
      bucket = &averaged.back();
    }
    bucket->m_tv += row.m_tv;
    bucket->ssim += row.ssim;
    bucket->ac_l1 += row.ac_l1;
    bucket->tstr += row.tstr;
    bucket->fvd += row.fvd;
  }
  for (MetricRow& bucket : averaged) {
    long count = 0;
    for (const MetricRow& row : rows) {
      if (row.method == bucket.method) ++count;
    }
    const double inv = 1.0 / static_cast<double>(count);
    bucket.m_tv *= inv;
    bucket.ssim *= inv;
    bucket.ac_l1 *= inv;
    bucket.tstr *= inv;
    bucket.fvd *= inv;
  }
  return averaged;
}

}  // namespace spectra::eval
