// Reporting helpers shared by the bench binaries: paper-style console
// tables from MetricRows, CSV dumps, and ASCII renderings of traffic maps
// for the qualitative figures.

#pragma once

#include <string>
#include <vector>

#include "eval/protocol.h"
#include "util/csv.h"

namespace spectra::eval {

// "Method | M-TV | SSIM | AC-L1 | TSTR [| FVD]" table (Tables 2-5).
CsvWriter metrics_table(const std::vector<MetricRow>& rows, bool include_fvd,
                        bool include_city = false);

// Print a table to stdout and also write it next to the binary as CSV.
void emit_table(const CsvWriter& table, const std::string& title, const std::string& csv_path);

// Coarse ASCII art of a map (for eyeballing Fig. 6/7-style results in a
// terminal): one character per pixel, ' .:-=+*#%@' by intensity.
std::string ascii_map(const geo::GridMap& map);

// Write a map as a binary PGM image (grayscale, peak-normalized) for
// figure generation with standard tooling. Returns false on I/O failure.
bool write_pgm(const geo::GridMap& map, const std::string& path);

// Dump a time series as "t,value" CSV rows.
CsvWriter series_table(const std::vector<double>& series, const std::string& value_name);

// Dump several aligned series: header = {"t", names...}.
CsvWriter multi_series_table(const std::vector<std::string>& names,
                             const std::vector<std::vector<double>>& series);

}  // namespace spectra::eval
