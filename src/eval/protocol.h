// The leave-one-city-out evaluation protocol of §4.1: train each model on
// all cities but one, generate 3 weeks of traffic for the held-out city
// from its context alone, and score fidelity against the real data with
// the §3.2 metric bundle.
//
// Because the same fold/model generations feed many tables (2, 3, 7, 8,
// Figs. 7-11), generated tensors are cached on disk keyed by
// (dataset, city, model, horizon, seed); set SPECTRA_CACHE to a directory
// to enable (the bench harness does this by default).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "baselines/model_api.h"
#include "data/dataset.h"

namespace spectra::eval {

struct EvalConfig {
  long train_steps = 168;     // train on week 1 (hourly)
  long generate_steps = 504;  // generate 3 weeks
  long eval_offset = 168;     // score against real weeks 2-4
  long autocorr_max_lag = 168;
  bool compute_fvd = true;
  std::uint64_t seed = 99;
  std::string cache_dir;  // empty disables the generation cache

  // Steps spanned by one day for a given city granularity.
  static long steps_per_day(const data::City& city) { return 24 * 60 / city.minutes_per_step; }
};

// EvalConfig scaled to a dataset's granularity (hourly defaults above are
// multiplied for 30/15-min data) with cache dir from SPECTRA_CACHE.
EvalConfig default_eval_config(long minutes_per_step = 60);

struct MetricRow {
  std::string method;
  std::string city;
  double m_tv = 0.0;
  double ssim = 0.0;
  double ac_l1 = 0.0;
  double tstr = 0.0;
  double fvd = 0.0;  // NaN when FVD disabled
};

// Score a generated tensor against the real evaluation window.
MetricRow compute_metrics(const std::string& method, const data::City& city,
                          const geo::CityTensor& synthetic, const EvalConfig& config);

// The DATA reference: two distinct 3-week periods of real data compared
// against each other (§3.3).
MetricRow data_reference_row(const data::City& city, const EvalConfig& config);

// Train (or load from cache) and generate synthetic traffic for one fold.
geo::CityTensor generate_for_fold(const std::string& model_name,
                                  const core::SpectraGanConfig& base_config,
                                  const data::CountryDataset& dataset, const data::Fold& fold,
                                  const EvalConfig& config);

// Mean of rows sharing the method name (the per-country averages of
// Tables 2-5).
std::vector<MetricRow> average_by_method(const std::vector<MetricRow>& rows);

// Binary CityTensor (de)serialization used by the cache and by examples.
void save_city_tensor(const std::string& path, const geo::CityTensor& tensor);
std::optional<geo::CityTensor> load_city_tensor(const std::string& path);

}  // namespace spectra::eval
