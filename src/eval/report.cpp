#include "eval/report.h"

#include <algorithm>
#include <cmath>
#include <iostream>

#include "util/error.h"
#include "util/log.h"

namespace spectra::eval {

CsvWriter metrics_table(const std::vector<MetricRow>& rows, bool include_fvd, bool include_city) {
  std::vector<std::string> header;
  if (include_city) header.push_back("City");
  header.insert(header.end(), {"Method", "M-TV", "SSIM", "AC-L1", "TSTR"});
  if (include_fvd) header.push_back("FVD");

  CsvWriter table(header);
  for (const MetricRow& row : rows) {
    std::vector<std::string> cells;
    if (include_city) cells.push_back(row.city);
    cells.push_back(row.method);
    cells.push_back(CsvWriter::num(row.m_tv, 3));
    cells.push_back(CsvWriter::num(row.ssim, 3));
    cells.push_back(CsvWriter::num(row.ac_l1, 3));
    cells.push_back(CsvWriter::num(row.tstr, 3));
    if (include_fvd) {
      cells.push_back(std::isnan(row.fvd) ? "-" : CsvWriter::num(row.fvd, 3));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

void emit_table(const CsvWriter& table, const std::string& title, const std::string& csv_path) {
  std::cout << "\n== " << title << " ==\n" << render_table(table);
  if (!csv_path.empty()) {
    if (table.write(csv_path)) {
      std::cout << "(csv: " << csv_path << ")\n";
    } else {
      SG_LOG_WARN << "could not write " << csv_path;
    }
  }
}

std::string ascii_map(const geo::GridMap& map) {
  static const char* kRamp = " .:-=+*#%@";
  const double peak = map.size() > 0 ? map.max() : 0.0;
  std::string out;
  out.reserve(static_cast<std::size_t>((map.width() + 1) * map.height()));
  for (long i = 0; i < map.height(); ++i) {
    for (long j = 0; j < map.width(); ++j) {
      const double v = peak > 0.0 ? map.at(i, j) / peak : 0.0;
      const int level = std::min(9, static_cast<int>(v * 10.0));
      out += kRamp[level];
    }
    out += '\n';
  }
  return out;
}

bool write_pgm(const geo::GridMap& map, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P5\n" << map.width() << " " << map.height() << "\n255\n";
  const double peak = map.size() > 0 ? map.max() : 0.0;
  for (long i = 0; i < map.height(); ++i) {
    for (long j = 0; j < map.width(); ++j) {
      const double v = peak > 0.0 ? map.at(i, j) / peak : 0.0;
      const unsigned char level =
          static_cast<unsigned char>(std::clamp(v, 0.0, 1.0) * 255.0 + 0.5);
      out.write(reinterpret_cast<const char*>(&level), 1);
    }
  }
  return static_cast<bool>(out);
}

CsvWriter series_table(const std::vector<double>& series, const std::string& value_name) {
  CsvWriter table({"t", value_name});
  for (std::size_t t = 0; t < series.size(); ++t) {
    table.add_row({std::to_string(t), CsvWriter::num(series[t], 6)});
  }
  return table;
}

CsvWriter multi_series_table(const std::vector<std::string>& names,
                             const std::vector<std::vector<double>>& series) {
  SG_CHECK(names.size() == series.size() && !series.empty(), "names/series mismatch");
  const std::size_t len = series[0].size();
  for (const auto& s : series) SG_CHECK(s.size() == len, "series must be aligned");

  std::vector<std::string> header = {"t"};
  header.insert(header.end(), names.begin(), names.end());
  CsvWriter table(header);
  for (std::size_t t = 0; t < len; ++t) {
    std::vector<std::string> row = {std::to_string(t)};
    for (const auto& s : series) row.push_back(CsvWriter::num(s[t], 6));
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace spectra::eval
