// Out-of-core city sewing (§2.2.4 at megacity scale): a bounded-memory
// replacement for OverlapAccumulator.
//
// OverlapAccumulator materializes the full T x H x W canvas (plus
// per-pixel contribution lists on the median path), so whole-city
// generation memory scales with city area and horizon. StripAccumulator
// exploits the sliding-window order instead: windows arrive sorted by
// origin row (the enumerate_windows order), so once the origin row
// advances past row r, no later window can touch r. Only the active band
// of rows — the current window strip plus the `traffic_h - stride`
// overlap rows still receiving contributions — is resident; finalized
// rows are divided (or median-reduced) immediately and handed to a
// RowSink, after which their buffers are recycled for the next strip.
//
// Resident footprint is O(traffic_h x T x W) regardless of H, which is
// what lets `bench_megacity` sew a 1024x1024 grid in a flat band of a
// few hundred kilobytes (DESIGN.md §6f).

#pragma once

#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "geo/patching.h"
#include "util/error.h"

namespace spectra::geo {

// Typed failure for sink-side write errors (short fwrite, failed close,
// a downstream consumer that cannot accept more rows). Callers stream
// cities into external media, so a mid-stream write failure is an
// *expected* runtime condition: it must propagate as a catchable error —
// counted in `geo.sink_write_errors` — never abort the process. In
// particular SpillRowSink's destructor swallows (and counts) a failing
// final flush instead of throwing during unwinding.
class SinkWriteError : public Error {
 public:
  explicit SinkWriteError(std::string message) : Error(std::move(message)) {}
};

// Receives finalized rows in strictly increasing row order, each exactly
// once. `values` is the row in t-major layout: values[t * width + col].
// The buffer is owned by the accumulator and reused across rows — copy
// what must outlive the call.
class RowSink {
 public:
  virtual ~RowSink() = default;
  virtual void consume_row(long row, const std::vector<double>& values) = 0;
};

// In-memory collector: the small-grid sink behind the classic
// `generate_city` return value.
class CityTensorSink : public RowSink {
 public:
  CityTensorSink(long steps, long height, long width);

  void consume_row(long row, const std::vector<double>& values) override;

  // Hand the finished tensor out; every row must have been consumed.
  CityTensor take();

 private:
  CityTensor city_;
  long rows_received_ = 0;
};

// Spill-to-disk writer for grids that must never be resident: rows are
// appended to `path` as raw native-endian doubles in (row, t, col) order,
// buffered SPECTRA_STRIP_ROWS rows (default 8) per batched fwrite so
// megacity runs do not pay one syscall per row. Instrumented via
// `geo.rows_spilled`.
class SpillRowSink : public RowSink {
 public:
  // `steps`/`width` fix the row record size; rows buffered per flush
  // come from SPECTRA_STRIP_ROWS when `batch_rows` is 0.
  SpillRowSink(const std::string& path, long steps, long width, long batch_rows = 0);
  ~SpillRowSink() override;

  SpillRowSink(const SpillRowSink&) = delete;
  SpillRowSink& operator=(const SpillRowSink&) = delete;

  // Throws SinkWriteError when the batched fwrite comes up short (disk
  // full, pipe closed); the failure is counted in `geo.sink_write_errors`
  // and the sink stays closed afterwards.
  void consume_row(long row, const std::vector<double>& values) override;

  // Flush buffered rows and close the file (idempotent). Throws
  // SinkWriteError when the final flush or fclose fails; the destructor
  // runs the same teardown but logs-and-counts instead of throwing.
  // After close(), `bytes_written` is the final file size.
  void close();

  long rows_written() const { return rows_written_; }
  long long bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  void flush();

  std::string path_;
  std::FILE* file_ = nullptr;
  long row_values_ = 0;  // doubles per row record (steps * width)
  long batch_rows_ = 0;
  long rows_written_ = 0;
  long long bytes_written_ = 0;
  std::vector<double> buffer_;
};

// Read row `row` of a city spilled by SpillRowSink back into `values`
// (resized to steps * width). For verification and row-served workloads.
void read_spilled_row(const std::string& path, long steps, long width, long row,
                      std::vector<double>& values);

// Bounded-memory overlap accumulator. Patches must be added in
// enumerate_windows order (non-decreasing origin row; any column order
// within a strip). Produces bitwise-identical rows to
// OverlapAccumulator::finalize() for both aggregation modes — the per
// pixel sums accumulate in the same window order and the same
// division/median reduction runs on the same operands
// (tests/geo_test.cpp pins this down).
class StripAccumulator {
 public:
  StripAccumulator(long steps, long height, long width, RowSink& sink,
                   OverlapAggregation aggregation = OverlapAggregation::kMean);

  // Add a generated [T, Ht, Wt] patch at `window`; `values` points at
  // T * traffic_h * traffic_w contiguous floats. Advancing the origin row
  // finalizes and emits every row the new strip can no longer touch.
  void add_patch(const PatchWindow& window, const PatchSpec& spec, const float* values,
                 std::size_t size);
  void add_patch(const PatchWindow& window, const PatchSpec& spec,
                 const std::vector<float>& patch);

  // Finalize and emit all remaining rows. Every pixel must have been
  // covered by at least one patch. Idempotent.
  void finish();

  long rows_emitted() const { return band_start_; }

  // Current band footprint: bytes held by live row buffers (sums, counts,
  // and median contribution lists). The high-water mark is exported as
  // `geo.strip_resident_bytes_peak` — flat across grid heights, which is
  // the bench_megacity bounded-memory gate.
  std::size_t resident_bytes() const;

 private:
  // One active row of the canvas: T x W running sums, per-column patch
  // multiplicity, and (median only) per-(t, col) contribution lists.
  struct RowBuf {
    std::vector<double> sum;           // steps * width
    std::vector<double> count;         // width
    std::vector<std::vector<double>> contribs;  // median: steps * width lists
  };

  RowBuf acquire_row();
  void ensure_rows_through(long row);
  void finalize_rows_below(long row);
  void emit_row(long row, RowBuf& buf);

  OverlapAggregation aggregation_;
  long steps_ = 0;
  long height_ = 0;
  long width_ = 0;
  RowSink& sink_;
  long band_start_ = 0;  // first row not yet emitted
  std::deque<RowBuf> band_;
  std::vector<RowBuf> free_rows_;  // recycled buffers, capacity-preserving
  std::vector<double> emit_buf_;   // reused finalized-row staging
  std::vector<double> median_scratch_;
  bool finished_ = false;
};

}  // namespace spectra::geo
