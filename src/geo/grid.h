// 2-D raster over the regular grid tessellation the paper uses (pixels of
// 250x250 m^2). GridMap is the value type for single-channel spatial data:
// time-averaged traffic maps, context attribute layers, population maps.

#pragma once

#include <vector>

namespace spectra::geo {

class GridMap {
 public:
  GridMap() = default;
  GridMap(long height, long width);
  GridMap(long height, long width, std::vector<double> values);

  long height() const { return height_; }
  long width() const { return width_; }
  long size() const { return height_ * width_; }

  double& at(long row, long col);
  double at(long row, long col) const;

  double& operator[](long flat) { return values_[static_cast<std::size_t>(flat)]; }
  double operator[](long flat) const { return values_[static_cast<std::size_t>(flat)]; }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  double sum() const;
  double mean() const;
  double min() const;
  double max() const;

  // Scale all values so the maximum becomes 1 (no-op on all-zero maps).
  // Fails on non-finite values — see check_finite below.
  void normalize_peak();

  // Elementwise helpers.
  void fill(double v);
  void add(const GridMap& other);
  void scale(double v);

  bool same_shape(const GridMap& other) const {
    return height_ == other.height_ && width_ == other.width_;
  }

 private:
  long height_ = 0;
  long width_ = 0;
  std::vector<double> values_;
};

namespace detail {
// Guard for peak-based normalization: std::max_element's `<` comparator
// silently misorders NaN, so a single NaN pixel would yield a bogus peak
// and a NaN-poisoned normalized map. Counts offending pixels into
// `geo.nonfinite_pixels` and throws; `what` names the container in the
// error message.
void check_finite(const std::vector<double>& values, const char* what);
}  // namespace detail

}  // namespace spectra::geo
