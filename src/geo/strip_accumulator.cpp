#include "geo/strip_accumulator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/error.h"
#include "util/log.h"

namespace spectra::geo {

// --- CityTensorSink ---------------------------------------------------------

CityTensorSink::CityTensorSink(long steps, long height, long width)
    : city_(steps, height, width) {}

void CityTensorSink::consume_row(long row, const std::vector<double>& values) {
  const long W = city_.width();
  SG_CHECK(row >= 0 && row < city_.height(), "CityTensorSink row out of bounds");
  SG_CHECK(static_cast<long>(values.size()) == city_.steps() * W,
           "CityTensorSink row size mismatch");
  for (long t = 0; t < city_.steps(); ++t) {
    const double* src = values.data() + t * W;
    double* dst = &city_[(t * city_.height() + row) * W];
    std::copy(src, src + W, dst);
  }
  ++rows_received_;
}

CityTensor CityTensorSink::take() {
  SG_CHECK(rows_received_ == city_.height(), "CityTensorSink missing rows");
  return std::move(city_);
}

// --- SpillRowSink -----------------------------------------------------------

SpillRowSink::SpillRowSink(const std::string& path, long steps, long width, long batch_rows)
    : path_(path), row_values_(steps * width), batch_rows_(batch_rows) {
  SG_CHECK(steps > 0 && width > 0, "SpillRowSink needs a positive row shape");
  if (batch_rows_ <= 0) batch_rows_ = env_long("SPECTRA_STRIP_ROWS", 8);
  if (batch_rows_ <= 0) batch_rows_ = 1;
  file_ = std::fopen(path_.c_str(), "wb");
  SG_CHECK(file_ != nullptr, "SpillRowSink cannot open spill file " + path_);
  buffer_.reserve(static_cast<std::size_t>(batch_rows_ * row_values_));
}

namespace {

obs::Counter& sink_write_errors() {
  static obs::Counter& c = obs::Registry::instance().counter("geo.sink_write_errors");
  return c;
}

}  // namespace

SpillRowSink::~SpillRowSink() {
  // A throw during unwinding would terminate the process; the typed-error
  // contract is that write failures are catchable, so the destructor
  // degrades to log-and-count (close() already incremented the counter).
  try {
    close();
  } catch (const SinkWriteError& e) {
    SG_LOG_ERROR << "SpillRowSink: dropping write failure in destructor: " << e.what();
  }
}

void SpillRowSink::consume_row(long row, const std::vector<double>& values) {
  static obs::Counter& spilled = obs::Registry::instance().counter("geo.rows_spilled");
  SG_CHECK(file_ != nullptr, "SpillRowSink already closed");
  SG_CHECK(row == rows_written_ + static_cast<long>(buffer_.size()) / row_values_,
           "SpillRowSink rows must arrive in order");
  SG_CHECK(static_cast<long>(values.size()) == row_values_, "SpillRowSink row size mismatch");
  buffer_.insert(buffer_.end(), values.begin(), values.end());
  spilled.inc();
  if (static_cast<long>(buffer_.size()) >= batch_rows_ * row_values_) flush();
}

void SpillRowSink::flush() {
  if (buffer_.empty() || file_ == nullptr) return;
  const std::size_t wrote = std::fwrite(buffer_.data(), sizeof(double), buffer_.size(), file_);
  if (wrote != buffer_.size()) {
    sink_write_errors().inc();
    // The file is unusable past a short write (the row framing is torn);
    // close it so later consume_row calls fail fast instead of appending
    // misaligned records.
    std::fclose(file_);
    file_ = nullptr;
    throw SinkWriteError("SpillRowSink short write to " + path_);
  }
  rows_written_ += static_cast<long>(buffer_.size()) / row_values_;
  bytes_written_ += static_cast<long long>(wrote * sizeof(double));
  buffer_.clear();
}

void SpillRowSink::close() {
  if (file_ == nullptr) return;
  flush();
  std::FILE* f = file_;
  file_ = nullptr;
  if (std::fclose(f) != 0) {
    // fclose flushes the stdio buffer, so ENOSPC surfaces here even when
    // every fwrite "succeeded" into the buffer.
    sink_write_errors().inc();
    throw SinkWriteError("SpillRowSink failed to close " + path_);
  }
}

void read_spilled_row(const std::string& path, long steps, long width, long row,
                      std::vector<double>& values) {
  SG_CHECK(steps > 0 && width > 0 && row >= 0, "read_spilled_row bad arguments");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  SG_CHECK(f != nullptr, "read_spilled_row cannot open " + path);
  const long row_values = steps * width;
  values.resize(static_cast<std::size_t>(row_values));
  const long long offset = static_cast<long long>(row) * row_values *
                           static_cast<long long>(sizeof(double));
  const bool sought = std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0;
  const std::size_t read =
      sought ? std::fread(values.data(), sizeof(double), values.size(), f) : 0;
  std::fclose(f);
  SG_CHECK(sought && read == values.size(), "read_spilled_row truncated read from " + path);
}

// --- StripAccumulator -------------------------------------------------------

StripAccumulator::StripAccumulator(long steps, long height, long width, RowSink& sink,
                                   OverlapAggregation aggregation)
    : aggregation_(aggregation), steps_(steps), height_(height), width_(width), sink_(sink) {
  SG_CHECK(steps > 0 && height > 0 && width > 0,
           "StripAccumulator dimensions must be positive");
}

StripAccumulator::RowBuf StripAccumulator::acquire_row() {
  RowBuf buf;
  if (!free_rows_.empty()) {
    buf = std::move(free_rows_.back());
    free_rows_.pop_back();
    std::fill(buf.sum.begin(), buf.sum.end(), 0.0);
    std::fill(buf.count.begin(), buf.count.end(), 0.0);
    for (std::vector<double>& c : buf.contribs) c.clear();
  } else {
    buf.sum.assign(static_cast<std::size_t>(steps_ * width_), 0.0);
    buf.count.assign(static_cast<std::size_t>(width_), 0.0);
    if (aggregation_ == OverlapAggregation::kMedian) {
      buf.contribs.resize(static_cast<std::size_t>(steps_ * width_));
    }
  }
  return buf;
}

void StripAccumulator::ensure_rows_through(long row) {
  while (band_start_ + static_cast<long>(band_.size()) <= row) {
    band_.push_back(acquire_row());
  }
}

std::size_t StripAccumulator::resident_bytes() const {
  std::size_t bytes = 0;
  auto row_bytes = [](const RowBuf& buf) {
    std::size_t b = buf.sum.capacity() * sizeof(double) + buf.count.capacity() * sizeof(double);
    for (const std::vector<double>& c : buf.contribs) b += c.capacity() * sizeof(double);
    return b;
  };
  for (const RowBuf& buf : band_) bytes += row_bytes(buf);
  for (const RowBuf& buf : free_rows_) bytes += row_bytes(buf);
  return bytes;
}

void StripAccumulator::add_patch(const PatchWindow& window, const PatchSpec& spec,
                                 const std::vector<float>& patch) {
  add_patch(window, spec, patch.data(), patch.size());
}

void StripAccumulator::add_patch(const PatchWindow& window, const PatchSpec& spec,
                                 const float* values, std::size_t size) {
  static obs::Counter& patches = obs::Registry::instance().counter("geo.patches_accumulated");
  patches.inc();
  SG_CHECK(!finished_, "StripAccumulator::add_patch after finish");
  SG_CHECK(static_cast<long>(size) == steps_ * spec.traffic_h * spec.traffic_w,
           "patch size does not match accumulator geometry");
  SG_CHECK(window.row >= 0 && window.row + spec.traffic_h <= height_ && window.col >= 0 &&
               window.col + spec.traffic_w <= width_,
           "patch window out of bounds");
  SG_CHECK(window.row >= band_start_,
           "patches must arrive in enumerate_windows order (non-decreasing origin row)");

  // Entering a new strip: every row above the new origin can no longer
  // receive contributions — stream it out before touching the band.
  finalize_rows_below(window.row);
  ensure_rows_through(window.row + spec.traffic_h - 1);

  const float* p = values;
  for (long t = 0; t < steps_; ++t) {
    for (long i = 0; i < spec.traffic_h; ++i) {
      RowBuf& buf = band_[static_cast<std::size_t>(window.row + i - band_start_)];
      double* sum_row = buf.sum.data() + t * width_ + window.col;
      for (long j = 0; j < spec.traffic_w; ++j) {
        const double v = static_cast<double>(*p++);
        sum_row[j] += v;
        if (aggregation_ == OverlapAggregation::kMedian) {
          buf.contribs[static_cast<std::size_t>(t * width_ + window.col + j)].push_back(v);
        }
      }
    }
  }
  for (long i = 0; i < spec.traffic_h; ++i) {
    RowBuf& buf = band_[static_cast<std::size_t>(window.row + i - band_start_)];
    for (long j = 0; j < spec.traffic_w; ++j) {
      buf.count[static_cast<std::size_t>(window.col + j)] += 1.0;
    }
  }
}

void StripAccumulator::finalize_rows_below(long row) {
  if (band_start_ >= row) return;
  SG_TRACE_SPAN("geo/strip_finalize");
  SG_PROFILE_SCOPE("geo/strip_finalize");
  static obs::Counter& strips = obs::Registry::instance().counter("geo.strips_finalized");
  static obs::MaxGauge& peak =
      obs::Registry::instance().max_gauge("geo.strip_resident_bytes_peak");
  strips.inc();
  // The band is at its fullest right before a strip retires: sample the
  // high-water mark here (once per strip, not per patch).
  peak.update(static_cast<double>(resident_bytes()));
  while (band_start_ < row) {
    SG_CHECK(!band_.empty(), "row finalized before any patch covered it");
    emit_row(band_start_, band_.front());
    free_rows_.push_back(std::move(band_.front()));
    band_.pop_front();
    ++band_start_;
  }
}

// Same reduction as OverlapAccumulator::finalize, one row at a time: the
// mean divides the window-ordered sum once, the median runs the single
// nth_element partition pass (upper median; for even counts the lower
// median is the max of the left partition) — bitwise identical outputs.
void StripAccumulator::emit_row(long row, RowBuf& buf) {
  emit_buf_.resize(static_cast<std::size_t>(steps_ * width_));
  for (long j = 0; j < width_; ++j) {
    const double n = buf.count[static_cast<std::size_t>(j)];
    SG_CHECK(n > 0.0, "pixel not covered by any patch");
    for (long t = 0; t < steps_; ++t) {
      const std::size_t tj = static_cast<std::size_t>(t * width_ + j);
      if (aggregation_ == OverlapAggregation::kMean) {
        emit_buf_[tj] = buf.sum[tj] / n;
      } else {
        const std::vector<double>& contribs = buf.contribs[tj];
        median_scratch_.assign(contribs.begin(), contribs.end());
        const auto mid =
            median_scratch_.begin() + static_cast<std::ptrdiff_t>(median_scratch_.size() / 2);
        std::nth_element(median_scratch_.begin(), mid, median_scratch_.end());
        double median = *mid;
        if (median_scratch_.size() % 2 == 0) {
          median = 0.5 * (*std::max_element(median_scratch_.begin(), mid) + median);
        }
        emit_buf_[tj] = median;
      }
    }
  }
  sink_.consume_row(row, emit_buf_);
}

void StripAccumulator::finish() {
  if (finished_) return;
  finalize_rows_below(height_);
  SG_CHECK(band_start_ == height_, "StripAccumulator finished with unemitted rows");
  finished_ = true;
}

}  // namespace spectra::geo
