#include "geo/city_tensor.h"

#include <algorithm>

#include "util/error.h"

namespace spectra::geo {

CityTensor::CityTensor(long steps, long height, long width)
    : steps_(steps),
      height_(height),
      width_(width),
      values_(static_cast<std::size_t>(steps * height * width), 0.0) {
  SG_CHECK(steps >= 0 && height >= 0 && width >= 0, "CityTensor dimensions must be non-negative");
}

double& CityTensor::at(long t, long row, long col) {
  SG_CHECK(t >= 0 && t < steps_ && row >= 0 && row < height_ && col >= 0 && col < width_,
           "CityTensor index out of bounds");
  return values_[static_cast<std::size_t>((t * height_ + row) * width_ + col)];
}

double CityTensor::at(long t, long row, long col) const {
  SG_CHECK(t >= 0 && t < steps_ && row >= 0 && row < height_ && col >= 0 && col < width_,
           "CityTensor index out of bounds");
  return values_[static_cast<std::size_t>((t * height_ + row) * width_ + col)];
}

GridMap CityTensor::frame(long t) const {
  SG_CHECK(t >= 0 && t < steps_, "frame index out of bounds");
  const auto begin = values_.begin() + t * frame_size();
  return GridMap(height_, width_, std::vector<double>(begin, begin + frame_size()));
}

void CityTensor::set_frame(long t, const GridMap& frame) {
  SG_CHECK(t >= 0 && t < steps_, "frame index out of bounds");
  SG_CHECK(frame.height() == height_ && frame.width() == width_, "set_frame shape mismatch");
  std::copy(frame.values().begin(), frame.values().end(),
            values_.begin() + t * frame_size());
}

GridMap CityTensor::time_average() const {
  SG_CHECK(steps_ > 0, "time_average of empty CityTensor");
  GridMap avg(height_, width_);
  for (long t = 0; t < steps_; ++t) {
    const double* frame_data = values_.data() + t * frame_size();
    for (long p = 0; p < frame_size(); ++p) avg[p] += frame_data[p];
  }
  avg.scale(1.0 / static_cast<double>(steps_));
  return avg;
}

std::vector<double> CityTensor::space_average() const {
  SG_CHECK(frame_size() > 0, "space_average of empty frames");
  std::vector<double> series(static_cast<std::size_t>(steps_), 0.0);
  for (long t = 0; t < steps_; ++t) {
    const double* frame_data = values_.data() + t * frame_size();
    double acc = 0.0;
    for (long p = 0; p < frame_size(); ++p) acc += frame_data[p];
    series[static_cast<std::size_t>(t)] = acc / static_cast<double>(frame_size());
  }
  return series;
}

std::vector<double> CityTensor::pixel_series(long row, long col) const {
  SG_CHECK(row >= 0 && row < height_ && col >= 0 && col < width_, "pixel index out of bounds");
  std::vector<double> series(static_cast<std::size_t>(steps_));
  for (long t = 0; t < steps_; ++t) {
    series[static_cast<std::size_t>(t)] = values_[static_cast<std::size_t>((t * height_ + row) * width_ + col)];
  }
  return series;
}

CityTensor CityTensor::slice_time(long start, long len) const {
  SG_CHECK(start >= 0 && len >= 0 && start + len <= steps_, "slice_time out of range");
  CityTensor out(len, height_, width_);
  std::copy(values_.begin() + start * frame_size(),
            values_.begin() + (start + len) * frame_size(),
            out.values_.begin());
  return out;
}

double CityTensor::peak() const {
  SG_CHECK(!values_.empty(), "peak of empty CityTensor");
  // max_element's comparator misorders NaN: one NaN pixel would yield a
  // bogus peak and poison the normalized city. Fail loudly instead.
  detail::check_finite(values_, "CityTensor::peak");
  return *std::max_element(values_.begin(), values_.end());
}

void CityTensor::normalize_peak() {
  const double p = values_.empty() ? 0.0 : peak();
  if (p <= 0.0) return;
  for (double& v : values_) v /= p;
}

void CityTensor::clamp(double lo, double hi) {
  for (double& v : values_) v = std::clamp(v, lo, hi);
}

}  // namespace spectra::geo
