// Patch geometry (§2.2.1) and whole-city sewing (§2.2.4).
//
// The model never sees a whole city: it operates on traffic patches of
// Ht x Wt pixels conditioned on larger context patches of Hc x Wc pixels
// (Hc > Ht so surrounding context is visible). At generation time a
// sliding window covers the map with overlapping patches; each pixel's
// final value is the average of every patch value generated for it (Eq. 2).

#pragma once

#include <vector>

#include "geo/city_tensor.h"

namespace spectra::geo {

struct PatchSpec {
  long traffic_h = 4;   // Ht
  long traffic_w = 4;   // Wt
  long context_h = 8;   // Hc (>= traffic_h, same parity recommended)
  long context_w = 8;   // Wc
  long stride = 2;      // sliding-window stride over traffic-patch origins

  // Halo of the context patch around the traffic patch per side.
  long halo_h() const { return (context_h - traffic_h) / 2; }
  long halo_w() const { return (context_w - traffic_w) / 2; }

  void validate() const;
};

// Top-left corner of a traffic patch in city coordinates.
struct PatchWindow {
  long row = 0;
  long col = 0;
};

// All sliding windows needed to cover an H x W map with the given spec.
// Origins advance by `stride` and are clamped at the borders so the final
// window ends exactly at the map edge (every pixel covered >= once).
std::vector<PatchWindow> enumerate_windows(long height, long width, const PatchSpec& spec);

// Context patch for a window: [C, Hc, Wc] flattened row-major, zero padded
// where the halo extends outside the city. The spec is only
// debug-asserted here: callers own the spec and validate it once (all of
// them go through enumerate_windows, which does) rather than per window
// — on a megacity grid the per-window re-validation was O(windows)
// redundant checks.
std::vector<float> extract_context_patch(const ContextTensor& context, const PatchWindow& window,
                                         const PatchSpec& spec);

// Traffic patch for a window over all T steps: [T, Ht, Wt] flattened.
// Same validation contract as extract_context_patch.
std::vector<float> extract_traffic_patch(const CityTensor& traffic, const PatchWindow& window,
                                         const PatchSpec& spec);

// How overlapping patch estimates are combined per pixel. The paper uses
// the mean (Eq. 2) and flags "more sophisticated methods ... beyond the
// average" as future work; the median is implemented as that extension —
// it is robust to a single outlier patch at the cost of buffering all
// contributions.
enum class OverlapAggregation { kMean, kMedian };

// Accumulates generated patches and produces the combined per-pixel map.
// One accumulator per generated city tensor.
class OverlapAccumulator {
 public:
  OverlapAccumulator(long steps, long height, long width,
                     OverlapAggregation aggregation = OverlapAggregation::kMean);

  // Add a generated [T, Ht, Wt] patch at `window`. The pointer overload
  // reads `size` contiguous floats in place — batched generator outputs
  // pass `traffic.data() + b * steps * pixels` directly, no scratch copy.
  void add_patch(const PatchWindow& window, const PatchSpec& spec, const std::vector<float>& patch);
  void add_patch(const PatchWindow& window, const PatchSpec& spec, const float* values,
                 std::size_t size);

  // Combined estimate; every pixel must have been covered.
  CityTensor finalize() const;

 private:
  OverlapAggregation aggregation_;
  CityTensor sum_;
  GridMap count_;  // patch multiplicity is time-invariant
  // kMedian only: every contribution per (t, pixel), filled lazily.
  std::vector<std::vector<double>> contributions_;
};

}  // namespace spectra::geo
