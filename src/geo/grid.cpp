#include "geo/grid.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.h"
#include "util/error.h"

namespace spectra::geo {

namespace detail {
void check_finite(const std::vector<double>& values, const char* what) {
  std::size_t bad = 0;
  for (double v : values) {
    if (!std::isfinite(v)) ++bad;
  }
  if (bad == 0) return;
  static obs::Counter& nonfinite = obs::Registry::instance().counter("geo.nonfinite_pixels");
  nonfinite.inc(bad);
  SG_THROW(std::string(what) + ": " + std::to_string(bad) +
           " non-finite pixel(s) — peak normalization would silently poison the map");
}
}  // namespace detail

GridMap::GridMap(long height, long width)
    : height_(height), width_(width), values_(static_cast<std::size_t>(height * width), 0.0) {
  SG_CHECK(height >= 0 && width >= 0, "GridMap dimensions must be non-negative");
}

GridMap::GridMap(long height, long width, std::vector<double> values)
    : height_(height), width_(width), values_(std::move(values)) {
  SG_CHECK(static_cast<long>(values_.size()) == height * width, "GridMap values size mismatch");
}

double& GridMap::at(long row, long col) {
  SG_CHECK(row >= 0 && row < height_ && col >= 0 && col < width_, "GridMap index out of bounds");
  return values_[static_cast<std::size_t>(row * width_ + col)];
}

double GridMap::at(long row, long col) const {
  SG_CHECK(row >= 0 && row < height_ && col >= 0 && col < width_, "GridMap index out of bounds");
  return values_[static_cast<std::size_t>(row * width_ + col)];
}

double GridMap::sum() const {
  double acc = 0.0;
  for (double v : values_) acc += v;
  return acc;
}

double GridMap::mean() const { return values_.empty() ? 0.0 : sum() / static_cast<double>(values_.size()); }

double GridMap::min() const {
  SG_CHECK(!values_.empty(), "min of empty GridMap");
  return *std::min_element(values_.begin(), values_.end());
}

double GridMap::max() const {
  SG_CHECK(!values_.empty(), "max of empty GridMap");
  return *std::max_element(values_.begin(), values_.end());
}

void GridMap::normalize_peak() {
  detail::check_finite(values_, "GridMap::normalize_peak");
  const double peak = values_.empty() ? 0.0 : max();
  if (peak <= 0.0) return;
  for (double& v : values_) v /= peak;
}

void GridMap::fill(double v) { std::fill(values_.begin(), values_.end(), v); }

void GridMap::add(const GridMap& other) {
  SG_CHECK(same_shape(other), "GridMap::add shape mismatch");
  for (std::size_t i = 0; i < values_.size(); ++i) values_[i] += other.values_[i];
}

void GridMap::scale(double v) {
  for (double& x : values_) x *= v;
}

}  // namespace spectra::geo
