#include "geo/patching.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace spectra::geo {

void PatchSpec::validate() const {
  SG_CHECK(traffic_h > 0 && traffic_w > 0, "traffic patch must be non-empty");
  SG_CHECK(context_h >= traffic_h && context_w >= traffic_w,
           "context patch must contain the traffic patch");
  SG_CHECK((context_h - traffic_h) % 2 == 0 && (context_w - traffic_w) % 2 == 0,
           "context halo must be symmetric (same parity extents)");
  SG_CHECK(stride > 0 && stride <= traffic_h && stride <= traffic_w,
           "stride must be in [1, traffic patch size] so windows cover every pixel");
}

std::vector<PatchWindow> enumerate_windows(long height, long width, const PatchSpec& spec) {
  spec.validate();
  SG_CHECK(height >= spec.traffic_h && width >= spec.traffic_w,
           "city smaller than one traffic patch");
  std::vector<long> rows, cols;
  for (long r = 0;; r += spec.stride) {
    const long clamped = std::min(r, height - spec.traffic_h);
    rows.push_back(clamped);
    if (clamped == height - spec.traffic_h) break;
  }
  for (long c = 0;; c += spec.stride) {
    const long clamped = std::min(c, width - spec.traffic_w);
    cols.push_back(clamped);
    if (clamped == width - spec.traffic_w) break;
  }
  std::vector<PatchWindow> windows;
  windows.reserve(rows.size() * cols.size());
  for (long r : rows) {
    for (long c : cols) windows.push_back({r, c});
  }
  return windows;
}

std::vector<float> extract_context_patch(const ContextTensor& context, const PatchWindow& window,
                                         const PatchSpec& spec) {
#ifndef NDEBUG
  spec.validate();  // callers own the spec; per-window cost is debug-only
#endif
  const long C = context.steps();
  const long H = context.height();
  const long W = context.width();
  const long r0 = window.row - spec.halo_h();
  const long c0 = window.col - spec.halo_w();
  std::vector<float> patch(static_cast<std::size_t>(C * spec.context_h * spec.context_w), 0.0f);
  for (long ch = 0; ch < C; ++ch) {
    for (long i = 0; i < spec.context_h; ++i) {
      const long row = r0 + i;
      if (row < 0 || row >= H) continue;  // zero padding outside the city
      for (long j = 0; j < spec.context_w; ++j) {
        const long col = c0 + j;
        if (col < 0 || col >= W) continue;
        patch[static_cast<std::size_t>((ch * spec.context_h + i) * spec.context_w + j)] =
            static_cast<float>(context.at(ch, row, col));
      }
    }
  }
  return patch;
}

std::vector<float> extract_traffic_patch(const CityTensor& traffic, const PatchWindow& window,
                                         const PatchSpec& spec) {
#ifndef NDEBUG
  spec.validate();  // callers own the spec; per-window cost is debug-only
#endif
  const long T = traffic.steps();
  SG_CHECK(window.row >= 0 && window.row + spec.traffic_h <= traffic.height() &&
               window.col >= 0 && window.col + spec.traffic_w <= traffic.width(),
           "traffic patch window out of bounds");
  std::vector<float> patch(static_cast<std::size_t>(T * spec.traffic_h * spec.traffic_w));
  std::size_t k = 0;
  for (long t = 0; t < T; ++t) {
    for (long i = 0; i < spec.traffic_h; ++i) {
      for (long j = 0; j < spec.traffic_w; ++j) {
        patch[k++] = static_cast<float>(traffic.at(t, window.row + i, window.col + j));
      }
    }
  }
  return patch;
}

OverlapAccumulator::OverlapAccumulator(long steps, long height, long width,
                                       OverlapAggregation aggregation)
    : aggregation_(aggregation), sum_(steps, height, width), count_(height, width) {
  if (aggregation_ == OverlapAggregation::kMedian) {
    contributions_.resize(static_cast<std::size_t>(steps * height * width));
  }
}

void OverlapAccumulator::add_patch(const PatchWindow& window, const PatchSpec& spec,
                                   const std::vector<float>& patch) {
  add_patch(window, spec, patch.data(), patch.size());
}

void OverlapAccumulator::add_patch(const PatchWindow& window, const PatchSpec& spec,
                                   const float* values, std::size_t size) {
  static obs::Counter& patches = obs::Registry::instance().counter("geo.patches_accumulated");
  patches.inc();
  const long T = sum_.steps();
  const long H = sum_.height();
  const long W = sum_.width();
  SG_CHECK(static_cast<long>(size) == T * spec.traffic_h * spec.traffic_w,
           "patch size does not match accumulator geometry");
  std::size_t k = 0;
  for (long t = 0; t < T; ++t) {
    for (long i = 0; i < spec.traffic_h; ++i) {
      for (long j = 0; j < spec.traffic_w; ++j) {
        const double v = static_cast<double>(values[k++]);
        sum_.at(t, window.row + i, window.col + j) += v;
        if (aggregation_ == OverlapAggregation::kMedian) {
          contributions_[static_cast<std::size_t>((t * H + window.row + i) * W + window.col + j)]
              .push_back(v);
        }
      }
    }
  }
  for (long i = 0; i < spec.traffic_h; ++i) {
    for (long j = 0; j < spec.traffic_w; ++j) count_.at(window.row + i, window.col + j) += 1.0;
  }
}

CityTensor OverlapAccumulator::finalize() const {
  SG_TRACE_SPAN("geo/assemble_city");
  SG_PROFILE_SCOPE("geo/assemble_city");
  static obs::Histogram& seconds = obs::Registry::instance().histogram("geo.assemble_seconds");
  obs::ScopedTimer timer(seconds);
  CityTensor out = sum_;
  const long H = out.height();
  const long W = out.width();
  const long T = out.steps();
  // Each (i, j) pixel column is finalized independently; chunking the
  // flattened H*W axis gives disjoint writes into `out` and (for the
  // median path) a per-chunk scratch buffer reused across pixels.
  parallel_for(
      static_cast<std::size_t>(H * W), /*grain=*/8,
      [&](std::size_t begin, std::size_t end) {
        std::vector<double> values;
        for (std::size_t ij = begin; ij < end; ++ij) {
          const long i = static_cast<long>(ij) / W;
          const long j = static_cast<long>(ij) % W;
          const double n = count_.at(i, j);
          SG_CHECK(n > 0.0, "pixel not covered by any patch");
          for (long t = 0; t < T; ++t) {
            if (aggregation_ == OverlapAggregation::kMean) {
              out.at(t, i, j) /= n;
            } else {
              // One partition pass: nth_element places the upper median;
              // for even counts the lower median is the maximum of the
              // left partition — no second nth_element, no fresh copy.
              const std::vector<double>& contribs =
                  contributions_[static_cast<std::size_t>((t * H + i) * W + j)];
              values.assign(contribs.begin(), contribs.end());
              const auto mid = values.begin() + static_cast<std::ptrdiff_t>(values.size() / 2);
              std::nth_element(values.begin(), mid, values.end());
              double median = *mid;
              if (values.size() % 2 == 0) {
                median = 0.5 * (*std::max_element(values.begin(), mid) + median);
              }
              out.at(t, i, j) = median;
            }
          }
        }
      });
  return out;
}

}  // namespace spectra::geo
