// CityTensor: the T x H x W spatiotemporal traffic tensor of §2.1.2
// (x_{1:T} in R^{T x H x W}). The same container doubles as the C x H x W
// context tensor (leading axis = channels instead of time steps), exposed
// under the ContextTensor alias.

#pragma once

#include <vector>

#include "geo/grid.h"

namespace spectra::geo {

class CityTensor {
 public:
  CityTensor() = default;
  CityTensor(long steps, long height, long width);

  long steps() const { return steps_; }
  long height() const { return height_; }
  long width() const { return width_; }
  long frame_size() const { return height_ * width_; }
  long size() const { return steps_ * height_ * width_; }

  double& at(long t, long row, long col);
  double at(long t, long row, long col) const;

  double& operator[](long flat) { return values_[static_cast<std::size_t>(flat)]; }
  double operator[](long flat) const { return values_[static_cast<std::size_t>(flat)]; }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  // Frame t as a GridMap copy.
  GridMap frame(long t) const;

  // Overwrite frame t.
  void set_frame(long t, const GridMap& frame);

  // Mean over time per pixel (the paper's time-averaged traffic map).
  GridMap time_average() const;

  // Mean over space per time step (city-wide traffic series).
  std::vector<double> space_average() const;

  // Time series of a single pixel.
  std::vector<double> pixel_series(long row, long col) const;

  // Sub-range of time steps [start, start+len).
  CityTensor slice_time(long start, long len) const;

  // Global peak value; and normalization by peak (paper: per-city traffic
  // anonymized via peak normalization). Both fail on non-finite values
  // (counted in `geo.nonfinite_pixels`) — a silent NaN peak would poison
  // the whole normalized city.
  double peak() const;
  void normalize_peak();

  // Clamp all values to [lo, hi].
  void clamp(double lo, double hi);

 private:
  long steps_ = 0;
  long height_ = 0;
  long width_ = 0;
  std::vector<double> values_;
};

// Context data c in R^{C x H x W}: identical layout, leading axis is the
// contextual-attribute channel.
using ContextTensor = CityTensor;

}  // namespace spectra::geo
