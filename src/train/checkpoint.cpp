#include "train/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/error.h"
#include "util/log.h"
#include "util/stopwatch.h"

namespace spectra::train {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x53474350;   // "SGCP"
constexpr std::uint32_t kFooter = 0x50434753;  // "PCGS"
constexpr std::uint32_t kVersion = 1;

// Section ids — all six must be present exactly once.
enum SectionId : std::uint32_t {
  kSectionGenParams = 1,
  kSectionDiscParams = 2,
  kSectionOptG = 3,
  kSectionOptD = 4,
  kSectionRng = 5,
  kSectionStats = 6,
};
constexpr std::uint32_t kSectionCount = 6;

std::uint64_t fnv1a64(const char* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// --- buffer-backed primitive (de)serialization -------------------------

void put_bytes(std::string& buf, const void* p, std::size_t n) {
  buf.append(static_cast<const char*>(p), n);
}
void put_u32(std::string& buf, std::uint32_t v) { put_bytes(buf, &v, sizeof(v)); }
void put_u64(std::string& buf, std::uint64_t v) { put_bytes(buf, &v, sizeof(v)); }
void put_f64(std::string& buf, double v) { put_bytes(buf, &v, sizeof(v)); }

// Cursor over a read-only byte span; every get_* bounds-checks so a
// truncated section fails loudly instead of reading garbage.
struct Reader {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  void get_bytes(void* out, std::size_t n) {
    SG_CHECK(pos + n <= size, "checkpoint section truncated");
    std::memcpy(out, data + pos, n);
    pos += n;
  }
  std::uint32_t get_u32() {
    std::uint32_t v = 0;
    get_bytes(&v, sizeof(v));
    return v;
  }
  std::uint64_t get_u64() {
    std::uint64_t v = 0;
    get_bytes(&v, sizeof(v));
    return v;
  }
  double get_f64() {
    double v = 0;
    get_bytes(&v, sizeof(v));
    return v;
  }
  void expect_end() const { SG_CHECK(pos == size, "checkpoint section has trailing bytes"); }
};

// --- composite payloads ------------------------------------------------

void put_tensor_list(std::string& buf, const std::vector<nn::Tensor>& tensors) {
  put_u64(buf, tensors.size());
  for (const nn::Tensor& t : tensors) {
    put_u32(buf, static_cast<std::uint32_t>(t.rank()));
    for (int i = 0; i < t.rank(); ++i) put_u64(buf, static_cast<std::uint64_t>(t.dim(i)));
    put_bytes(buf, t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  }
}

std::vector<nn::Tensor> get_tensor_list(Reader& r) {
  const std::uint64_t count = r.get_u64();
  // A plausibility bound so a corrupt count fails fast instead of
  // attempting a multi-gigabyte allocation.
  SG_CHECK(count <= 1u << 20, "checkpoint tensor count implausible");
  std::vector<nn::Tensor> tensors;
  tensors.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::uint32_t rank = r.get_u32();
    SG_CHECK(rank <= 8, "checkpoint tensor rank implausible");
    nn::Shape shape(rank);
    // Overflow-safe element count, bounded by the bytes actually left in
    // the section, so corrupt dims fail before any allocation.
    const std::uint64_t max_numel = (r.size - r.pos) / sizeof(float);
    std::uint64_t numel = 1;
    for (std::uint32_t i = 0; i < rank; ++i) {
      const std::uint64_t extent = r.get_u64();
      SG_CHECK(extent == 0 || numel <= max_numel / extent,
               "checkpoint tensor data truncated");
      numel *= extent;
      shape[i] = static_cast<long>(extent);
    }
    nn::Tensor t(shape);
    r.get_bytes(t.data(), numel * sizeof(float));
    tensors.push_back(std::move(t));
  }
  return tensors;
}

void put_doubles(std::string& buf, const std::vector<double>& xs) {
  put_u64(buf, xs.size());
  for (double x : xs) put_f64(buf, x);
}

std::vector<double> get_doubles(Reader& r) {
  const std::uint64_t count = r.get_u64();
  SG_CHECK(count <= (r.size - r.pos) / sizeof(double), "checkpoint history truncated");
  std::vector<double> xs(count);
  for (std::uint64_t i = 0; i < count; ++i) xs[i] = r.get_f64();
  return xs;
}

std::string encode_adam(const AdamSnapshot& a) {
  std::string buf;
  put_u64(buf, a.step_count);
  put_tensor_list(buf, a.m);
  put_tensor_list(buf, a.v);
  return buf;
}

AdamSnapshot decode_adam(Reader& r) {
  AdamSnapshot a;
  a.step_count = r.get_u64();
  a.m = get_tensor_list(r);
  a.v = get_tensor_list(r);
  return a;
}

// --- file-level helpers ------------------------------------------------

void append_section(std::string& out, std::uint32_t id, const std::string& payload) {
  put_u32(out, id);
  put_u64(out, payload.size());
  put_u64(out, fnv1a64(payload.data(), payload.size()));
  out.append(payload);
}

// Parse the iteration out of "ckpt_000000000042.sgc"; nullopt for
// anything that is not a snapshot filename.
std::optional<std::uint64_t> parse_iteration(const std::string& filename) {
  constexpr const char* kPrefix = "ckpt_";
  constexpr const char* kSuffix = ".sgc";
  if (filename.size() != 5 + 12 + 4) return std::nullopt;
  if (filename.rfind(kPrefix, 0) != 0) return std::nullopt;
  if (filename.compare(filename.size() - 4, 4, kSuffix) != 0) return std::nullopt;
  std::uint64_t iter = 0;
  for (std::size_t i = 5; i < 5 + 12; ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return std::nullopt;
    iter = iter * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return iter;
}

// Durably write `contents` to `path` via tmp + fsync + rename; on POSIX
// also fsync the parent directory so the rename itself is durable.
void atomic_write_file(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
#ifndef _WIN32
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  SG_CHECK(f != nullptr, "cannot open " + tmp + " for writing");
  const std::size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool flushed = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  SG_CHECK(written == contents.size() && flushed && closed, "write failed for " + tmp);
  SG_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
           "cannot rename " + tmp + " to " + path);
  const fs::path parent = fs::path(path).parent_path();
  const int dir_fd = ::open(parent.empty() ? "." : parent.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
#else
  std::ofstream out(tmp, std::ios::binary);
  SG_CHECK(static_cast<bool>(out), "cannot open " + tmp + " for writing");
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.close();
  SG_CHECK(static_cast<bool>(out), "write failed for " + tmp);
  fs::rename(tmp, path);
#endif
}

}  // namespace

CheckpointOptions CheckpointOptions::from_env() {
  CheckpointOptions opts;
  opts.dir = env_string("SPECTRA_CKPT_DIR", "");
  opts.every = env_long("SPECTRA_CKPT_EVERY", opts.every);
  opts.keep_last = static_cast<int>(env_long("SPECTRA_CKPT_KEEP", opts.keep_last));
  if (opts.keep_last < 1) opts.keep_last = 1;
  return opts;
}

std::string checkpoint_filename(std::uint64_t iteration) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt_%012llu.sgc",
                static_cast<unsigned long long>(iteration));
  return buf;
}

std::string write_checkpoint(const std::string& dir, const TrainingSnapshot& snap,
                             int keep_last) {
  SG_CHECK(!dir.empty(), "checkpoint dir must not be empty");
  SG_CHECK(keep_last >= 1, "checkpoint retention must keep at least one snapshot");
  SG_TRACE_SPAN("checkpoint/write");
  static obs::Counter& writes = obs::Registry::instance().counter("checkpoint.writes");
  static obs::Histogram& write_hist =
      obs::Registry::instance().histogram("checkpoint.write_seconds");
  Stopwatch watch;

  std::error_code ec;
  fs::create_directories(dir, ec);
  SG_CHECK(!ec, "cannot create checkpoint dir " + dir + ": " + ec.message());

  std::string out;
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u64(out, snap.iteration);
  put_u32(out, kSectionCount);
  {
    std::string payload;
    put_tensor_list(payload, snap.gen_params);
    append_section(out, kSectionGenParams, payload);
  }
  {
    std::string payload;
    put_tensor_list(payload, snap.disc_params);
    append_section(out, kSectionDiscParams, payload);
  }
  append_section(out, kSectionOptG, encode_adam(snap.opt_g));
  append_section(out, kSectionOptD, encode_adam(snap.opt_d));
  {
    std::string payload;
    put_u64(payload, snap.rng.state);
    payload.push_back(snap.rng.has_cached_normal ? '\1' : '\0');
    put_f64(payload, snap.rng.cached_normal);
    append_section(out, kSectionRng, payload);
  }
  {
    std::string payload;
    put_doubles(payload, snap.stats.d_loss);
    put_doubles(payload, snap.stats.g_adv_loss);
    put_doubles(payload, snap.stats.l1_loss);
    put_doubles(payload, snap.stats.grad_norm_d);
    put_doubles(payload, snap.stats.grad_norm_g);
    put_doubles(payload, snap.stats.iter_seconds);
    append_section(out, kSectionStats, payload);
  }
  put_u32(out, kFooter);

  const std::string path = (fs::path(dir) / checkpoint_filename(snap.iteration)).string();
  atomic_write_file(path, out);
  writes.inc();
  write_hist.observe(watch.seconds());

  // Retention: prune everything but the newest keep_last snapshots. Done
  // after the write so a crash here can only leave extra files behind.
  const std::vector<std::string> all = list_checkpoints(dir);
  for (std::size_t i = 0; i + static_cast<std::size_t>(keep_last) < all.size(); ++i) {
    fs::remove(all[i], ec);  // best effort; stale files are harmless
  }
  return path;
}

TrainingSnapshot read_checkpoint(const std::string& path) {
  SG_TRACE_SPAN("checkpoint/read");
  std::ifstream in(path, std::ios::binary);
  SG_CHECK(static_cast<bool>(in), "cannot open " + path + " for reading");
  std::string contents((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  SG_CHECK(!in.bad(), "read failed for " + path);

  Reader r{contents.data(), contents.size()};
  SG_CHECK(r.get_u32() == kMagic, path + " is not a checkpoint file");
  const std::uint32_t version = r.get_u32();
  SG_CHECK(version == kVersion,
           path + " has unsupported checkpoint version " + std::to_string(version));

  TrainingSnapshot snap;
  snap.iteration = r.get_u64();
  const std::uint32_t sections = r.get_u32();
  SG_CHECK(sections == kSectionCount, path + " has wrong section count");

  std::uint32_t seen_mask = 0;
  for (std::uint32_t s = 0; s < sections; ++s) {
    const std::uint32_t id = r.get_u32();
    const std::uint64_t bytes = r.get_u64();
    const std::uint64_t checksum = r.get_u64();
    SG_CHECK(id >= kSectionGenParams && id <= kSectionStats, path + " has unknown section id");
    SG_CHECK((seen_mask & (1u << id)) == 0, path + " has duplicate section");
    seen_mask |= 1u << id;
    SG_CHECK(bytes <= contents.size() - r.pos, path + " is truncated");
    const char* payload = contents.data() + r.pos;
    SG_CHECK(fnv1a64(payload, bytes) == checksum,
             path + " failed checksum for section " + std::to_string(id));
    Reader section{payload, static_cast<std::size_t>(bytes)};
    switch (id) {
      case kSectionGenParams:
        snap.gen_params = get_tensor_list(section);
        break;
      case kSectionDiscParams:
        snap.disc_params = get_tensor_list(section);
        break;
      case kSectionOptG:
        snap.opt_g = decode_adam(section);
        break;
      case kSectionOptD:
        snap.opt_d = decode_adam(section);
        break;
      case kSectionRng:
        snap.rng.state = section.get_u64();
        {
          char flag = 0;
          section.get_bytes(&flag, 1);
          snap.rng.has_cached_normal = flag != '\0';
        }
        snap.rng.cached_normal = section.get_f64();
        break;
      case kSectionStats:
        snap.stats.d_loss = get_doubles(section);
        snap.stats.g_adv_loss = get_doubles(section);
        snap.stats.l1_loss = get_doubles(section);
        snap.stats.grad_norm_d = get_doubles(section);
        snap.stats.grad_norm_g = get_doubles(section);
        snap.stats.iter_seconds = get_doubles(section);
        break;
    }
    section.expect_end();
    r.pos += static_cast<std::size_t>(bytes);
  }
  SG_CHECK(r.get_u32() == kFooter, path + " is missing its footer (torn write)");
  r.expect_end();
  return snap;
}

std::vector<std::string> list_checkpoints(const std::string& dir) {
  std::error_code ec;
  std::vector<std::pair<std::uint64_t, std::string>> found;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::optional<std::uint64_t> iter = parse_iteration(entry.path().filename().string());
    if (iter) found.emplace_back(*iter, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [iter, path] : found) paths.push_back(std::move(path));
  return paths;
}

std::optional<TrainingSnapshot> load_latest(const std::string& dir) {
  static obs::Counter& corrupt =
      obs::Registry::instance().counter("checkpoint.corrupt_skipped");
  const std::vector<std::string> all = list_checkpoints(dir);
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    try {
      return read_checkpoint(*it);
    } catch (const spectra::Error& e) {
      corrupt.inc();
      SG_LOG_WARN << "skipping corrupt checkpoint " << *it << ": " << e.what();
    }
  }
  return std::nullopt;
}

std::optional<ModelWeights> load_latest_weights(const std::string& dir) {
  std::optional<TrainingSnapshot> snap = load_latest(dir);
  if (!snap) return std::nullopt;
  ModelWeights weights;
  weights.iteration = snap->iteration;
  weights.gen_params = std::move(snap->gen_params);
  weights.disc_params = std::move(snap->disc_params);
  return weights;
}

}  // namespace spectra::train
