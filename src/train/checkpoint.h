// Crash-safe checkpoint/resume for training runs.
//
// A snapshot captures the *full* training state — generator and
// discriminator parameters, Adam first/second moments and step counts,
// the training Rng stream, the iteration counter, and the per-iteration
// loss/grad-norm histories — so that kill-at-iteration-N plus resume
// reproduces an uninterrupted run bitwise (same determinism bar the
// parallel layer sets for thread counts, DESIGN.md §6a/§6b).
//
// Snapshots are versioned binary files with a per-section manifest
// (section id, byte size, FNV-1a 64 checksum) and a footer magic, written
// atomically: serialize to `<name>.tmp`, fsync, rename into place, fsync
// the directory. A torn or truncated write therefore either leaves the
// previous file untouched or produces a file that fails validation and is
// skipped by `load_latest` in favour of the last good snapshot.
//
// This layer sits below `core/` (it knows tensors, optimizer moments and
// Rng state, not the model), so `core/trainer.cpp` composes it without a
// dependency cycle.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace spectra::train {

// Knobs (see README "Checkpoint & resume"): SPECTRA_CKPT_DIR enables
// checkpointing, SPECTRA_CKPT_EVERY sets the snapshot cadence in
// iterations, SPECTRA_CKPT_KEEP the retention depth.
struct CheckpointOptions {
  std::string dir;    // empty => checkpointing disabled
  long every = 25;    // write a snapshot every N completed iterations
  int keep_last = 3;  // snapshots retained after each write (>= 1)

  static CheckpointOptions from_env();

  // True when periodic snapshot writes should happen.
  bool enabled() const { return !dir.empty() && every > 0; }
};

// Adam optimizer state (nn::Adam accessors mirror this exactly).
struct AdamSnapshot {
  std::uint64_t step_count = 0;
  std::vector<nn::Tensor> m;  // first moments, parameter order
  std::vector<nn::Tensor> v;  // second moments, parameter order
};

// Per-iteration training histories (core::TrainStats mirrors these).
struct StatsSnapshot {
  std::vector<double> d_loss;
  std::vector<double> g_adv_loss;
  std::vector<double> l1_loss;
  std::vector<double> grad_norm_d;
  std::vector<double> grad_norm_g;
  std::vector<double> iter_seconds;
};

// Everything needed to continue a training run deterministically.
struct TrainingSnapshot {
  std::uint64_t iteration = 0;  // completed iterations at capture time
  std::vector<nn::Tensor> gen_params;
  std::vector<nn::Tensor> disc_params;
  AdamSnapshot opt_g;
  AdamSnapshot opt_d;
  RngState rng;
  StatsSnapshot stats;
};

// Canonical snapshot filename for an iteration count: "ckpt_<12-digit>.sgc"
// (zero-padded so lexicographic order is iteration order).
std::string checkpoint_filename(std::uint64_t iteration);

// Atomically write `snap` into `dir` (created if missing), then prune to
// the newest `keep_last` snapshots. Returns the final path. Throws
// spectra::Error on I/O failure.
std::string write_checkpoint(const std::string& dir, const TrainingSnapshot& snap, int keep_last);

// Strict parse of one snapshot file; throws spectra::Error on missing
// file, bad magic/version, truncation, or a checksum mismatch.
TrainingSnapshot read_checkpoint(const std::string& path);

// Snapshot paths in `dir`, ascending iteration order. Missing directory
// is an empty list.
std::vector<std::string> list_checkpoints(const std::string& dir);

// Newest snapshot in `dir` that parses cleanly. Corrupt or truncated
// files are skipped (logged + counted in `checkpoint.corrupt_skipped`)
// and the next-older one is tried; nullopt when none is usable.
std::optional<TrainingSnapshot> load_latest(const std::string& dir);

// Read-only weight loading for serving (DESIGN §6g): the generator and
// discriminator parameters of the newest valid snapshot, without the
// optimizer moments, Rng stream, or histories a resumed *training* run
// needs. The serve weights registry loads these once per checkpoint
// directory and shares them immutably across every request.
struct ModelWeights {
  std::uint64_t iteration = 0;
  std::vector<nn::Tensor> gen_params;
  std::vector<nn::Tensor> disc_params;
};
std::optional<ModelWeights> load_latest_weights(const std::string& dir);

}  // namespace spectra::train
