#include "dsp/signature.h"

#include "util/error.h"

namespace spectra::dsp {

long signature_size(long d, int depth) {
  SG_CHECK(d >= 1 && depth >= 1 && depth <= 3, "signature_size: invalid arguments");
  long total = d;
  if (depth >= 2) total += d * d;
  if (depth >= 3) total += d * d * d;
  return total;
}

std::vector<double> signature_transform(const std::vector<std::vector<double>>& series, int depth,
                                        bool time_augment) {
  SG_CHECK(depth >= 1 && depth <= 3, "signature depth must be 1..3");
  SG_CHECK(series.size() >= 2, "signature requires at least two time steps");
  const std::size_t steps = series.size();
  const std::size_t base_d = series[0].size();
  SG_CHECK(base_d >= 1, "signature requires at least one channel");
  for (const auto& row : series) {
    SG_CHECK(row.size() == base_d, "signature series must be rectangular");
  }
  const std::size_t d = base_d + (time_augment ? 1 : 0);

  auto point_at = [&](std::size_t t) {
    std::vector<double> p;
    p.reserve(d);
    if (time_augment) {
      p.push_back(static_cast<double>(t) / static_cast<double>(steps - 1));
    }
    p.insert(p.end(), series[t].begin(), series[t].end());
    return p;
  };

  std::vector<double> s1(d, 0.0);
  std::vector<double> s2(depth >= 2 ? d * d : 0, 0.0);
  std::vector<double> s3(depth >= 3 ? d * d * d : 0, 0.0);

  std::vector<double> prev = point_at(0);
  for (std::size_t t = 1; t < steps; ++t) {
    const std::vector<double> cur = point_at(t);
    std::vector<double> dx(d);
    for (std::size_t i = 0; i < d; ++i) dx[i] = cur[i] - prev[i];

    // Order matters: higher levels consume the *previous* lower levels.
    if (depth >= 3) {
      for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
          for (std::size_t k = 0; k < d; ++k) {
            s3[(i * d + j) * d + k] += s2[i * d + j] * dx[k] + s1[i] * dx[j] * dx[k] / 2.0 +
                                       dx[i] * dx[j] * dx[k] / 6.0;
          }
        }
      }
    }
    if (depth >= 2) {
      for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
          s2[i * d + j] += s1[i] * dx[j] + dx[i] * dx[j] / 2.0;
        }
      }
    }
    for (std::size_t i = 0; i < d; ++i) s1[i] += dx[i];
    prev = cur;
  }

  std::vector<double> out;
  out.reserve(s1.size() + s2.size() + s3.size());
  out.insert(out.end(), s1.begin(), s1.end());
  out.insert(out.end(), s2.begin(), s2.end());
  out.insert(out.end(), s3.begin(), s3.end());
  return out;
}

}  // namespace spectra::dsp
