// Truncated path-signature transform (Chen iterated integrals) of a
// multivariate time series, used as the neutral embedding for the FVD
// metric (§3.2: the paper replaces a pretrained video network with a
// signature transform to avoid embedding bias).
//
// For a piecewise-linear path X: [0,1] -> R^d the depth-m signature is
// accumulated segment by segment:
//   level 1:  S1 += dx
//   level 2:  S2 += S1_prev (x) dx + (dx (x) dx) / 2
//   level 3:  S3 += S2_prev (x) dx + S1_prev (x) (dx (x) dx) / 2
//                 + (dx (x) dx (x) dx) / 6
// which is exact for linear segments (the signature of a straight segment
// is the tensor exponential of its increment).

#pragma once

#include <vector>

namespace spectra::dsp {

// `series[t]` is the d-dimensional observation at step t. Returns the
// concatenation of signature levels 1..depth (d + d^2 [+ d^3] values).
// depth must be 1, 2 or 3. The path is time-augmented when
// `time_augment` is true (prepends a uniform time coordinate, making the
// signature sensitive to parametrization — recommended for FVD).
std::vector<double> signature_transform(const std::vector<std::vector<double>>& series, int depth,
                                        bool time_augment = true);

// Number of output values for dimension d and depth m.
long signature_size(long d, int depth);

}  // namespace spectra::dsp
