// Fast Fourier transforms: iterative radix-2 for power-of-two lengths and
// Bluestein's chirp-z algorithm for arbitrary lengths, plus real-input
// helpers (rfft/irfft) with NumPy conventions — forward unnormalized,
// inverse scaled by 1/N.
//
// These kernels serve double duty: the SpectraGAN generator's
// differentiable inverse transform (core/fourier_bridge) and the offline
// analysis in data characterization and metrics.

#pragma once

#include <complex>
#include <vector>

namespace spectra::dsp {

using Complex = std::complex<double>;

// In-place FFT of arbitrary length (radix-2 when N is a power of two,
// Bluestein otherwise). `inverse` applies the conjugate transform and the
// 1/N scale.
void fft_inplace(std::vector<Complex>& a, bool inverse);

std::vector<Complex> fft(std::vector<Complex> a);
std::vector<Complex> ifft(std::vector<Complex> a);

// Real-input FFT: returns the N/2+1 non-redundant bins.
std::vector<Complex> rfft(const std::vector<double>& x);

// Inverse of rfft; `n` is the output length (must satisfy n/2+1 == spectrum size).
std::vector<double> irfft(const std::vector<Complex>& spectrum, long n);

// True if n is a power of two (n >= 1).
bool is_power_of_two(long n);

}  // namespace spectra::dsp
