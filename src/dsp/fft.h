// Fast Fourier transforms: iterative radix-2 for power-of-two lengths and
// Bluestein's chirp-z algorithm for arbitrary lengths, plus real-input
// helpers (rfft/irfft) with NumPy conventions — forward unnormalized,
// inverse scaled by 1/N.
//
// These kernels serve double duty: the SpectraGAN generator's
// differentiable inverse transform (core/fourier_bridge) and the offline
// analysis in data characterization and metrics.

#pragma once

#include <complex>
#include <vector>

namespace spectra::dsp {

using Complex = std::complex<double>;

// In-place FFT of arbitrary length (radix-2 when N is a power of two,
// Bluestein otherwise). `inverse` applies the conjugate transform and the
// 1/N scale.
void fft_inplace(std::vector<Complex>& a, bool inverse);

std::vector<Complex> fft(std::vector<Complex> a);
std::vector<Complex> ifft(std::vector<Complex> a);

// Real-input FFT: returns the N/2+1 non-redundant bins. Power-of-two
// lengths take a half-spectrum fast path (one N/2-point complex FFT plus
// an O(N) twiddle unpack, counted by fft.rfft_fast_calls); other lengths
// fall back to the full-length complex transform.
std::vector<Complex> rfft(const std::vector<double>& x);

// Inverse of rfft; `n` is the output length (must satisfy n/2+1 == spectrum size).
// Power-of-two n takes the inverse half-spectrum fast path.
std::vector<double> irfft(const std::vector<Complex>& spectrum, long n);

// True if n is a power of two (n >= 1).
bool is_power_of_two(long n);

namespace detail {

// Test/bench hooks. Production code routes through fft_inplace/rfft; these
// force specific strategies so the fast paths above have an independent
// reference and an honest bench baseline.

// Chirp-z (Bluestein) transform at any length, including powers of two.
// `reuse_scratch=false` reproduces the historical per-call-allocating work
// buffer (the baseline for the scratch-hoist bench entry).
void bluestein_inplace(std::vector<Complex>& a, bool inverse, bool reuse_scratch = true);

// rfft evaluated through the full-length Bluestein transform — the
// reference the power-of-two fast path is compared against.
std::vector<Complex> rfft_bluestein(const std::vector<double>& x);

}  // namespace detail

}  // namespace spectra::dsp
