// Sample autocorrelation of a time series, the basis of the AC-L1
// temporal-fidelity metric (§3.2).

#pragma once

#include <vector>

namespace spectra::dsp {

// Normalized autocorrelation r(l) for lags l = 0..max_lag (inclusive).
// r(0) == 1 whenever the series has positive variance; a constant series
// yields r(l) = 0 for l > 0 by convention.
std::vector<double> autocorrelation(const std::vector<double>& series, long max_lag);

}  // namespace spectra::dsp
