#include "dsp/spectrum.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace spectra::dsp {

std::vector<float> pack_interleaved(const std::vector<Complex>& spectrum) {
  std::vector<float> out;
  out.reserve(spectrum.size() * 2);
  for (const Complex& c : spectrum) {
    out.push_back(static_cast<float>(c.real()));
    out.push_back(static_cast<float>(c.imag()));
  }
  return out;
}

std::vector<Complex> unpack_interleaved(const std::vector<float>& interleaved) {
  SG_CHECK(interleaved.size() % 2 == 0, "interleaved spectrum must have even size");
  std::vector<Complex> out;
  out.reserve(interleaved.size() / 2);
  for (std::size_t i = 0; i < interleaved.size(); i += 2) {
    out.emplace_back(static_cast<double>(interleaved[i]), static_cast<double>(interleaved[i + 1]));
  }
  return out;
}

std::vector<double> magnitudes(const std::vector<Complex>& spectrum) {
  std::vector<double> out;
  out.reserve(spectrum.size());
  for (const Complex& c : spectrum) out.push_back(std::abs(c));
  return out;
}

double quantile(std::vector<double> values, double q) {
  SG_CHECK(!values.empty(), "quantile of empty vector");
  SG_CHECK(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<bool> quantile_mask_bits(const std::vector<Complex>& spectrum, double q) {
  const std::vector<double> mags = magnitudes(spectrum);
  const double threshold = quantile(mags, q);
  std::vector<bool> mask(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) mask[i] = mags[i] > threshold;
  return mask;
}

std::vector<Complex> quantile_mask(const std::vector<Complex>& spectrum, double q) {
  const std::vector<bool> mask = quantile_mask_bits(spectrum, q);
  std::vector<Complex> out(spectrum.size(), Complex(0.0, 0.0));
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    if (mask[i]) out[i] = spectrum[i];
  }
  return out;
}

std::vector<Complex> top_k_components(const std::vector<Complex>& spectrum, long k) {
  SG_CHECK(k >= 0, "top_k_components requires k >= 0");
  const std::vector<double> mags = magnitudes(spectrum);
  std::vector<std::size_t> order(spectrum.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&mags](std::size_t a, std::size_t b) { return mags[a] > mags[b]; });
  std::vector<Complex> out(spectrum.size(), Complex(0.0, 0.0));
  const std::size_t keep = std::min<std::size_t>(static_cast<std::size_t>(k), spectrum.size());
  for (std::size_t i = 0; i < keep; ++i) out[order[i]] = spectrum[order[i]];
  return out;
}

std::vector<double> reconstruct_top_k(const std::vector<double>& series, long k) {
  const std::vector<Complex> spec = rfft(series);
  const std::vector<Complex> kept = top_k_components(spec, k);
  return irfft(kept, static_cast<long>(series.size()));
}

}  // namespace spectra::dsp
