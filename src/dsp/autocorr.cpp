#include "dsp/autocorr.h"

#include <cmath>

#include "util/error.h"

namespace spectra::dsp {

std::vector<double> autocorrelation(const std::vector<double>& series, long max_lag) {
  const long n = static_cast<long>(series.size());
  SG_CHECK(n >= 2, "autocorrelation requires at least two samples");
  SG_CHECK(max_lag >= 0 && max_lag < n, "autocorrelation lag out of range");

  double mean = 0.0;
  for (double v : series) mean += v;
  mean /= static_cast<double>(n);

  double var = 0.0;
  for (double v : series) var += (v - mean) * (v - mean);

  std::vector<double> r(static_cast<std::size_t>(max_lag) + 1, 0.0);
  // Constant series (up to floating-point accumulation noise): all zero
  // by convention.
  if (var <= 1e-16 * static_cast<double>(n) * (mean * mean + 1.0)) return r;

  for (long lag = 0; lag <= max_lag; ++lag) {
    double acc = 0.0;
    for (long t = 0; t + lag < n; ++t) {
      acc += (series[static_cast<std::size_t>(t)] - mean) *
             (series[static_cast<std::size_t>(t + lag)] - mean);
    }
    r[static_cast<std::size_t>(lag)] = acc / var;
  }
  return r;
}

}  // namespace spectra::dsp
