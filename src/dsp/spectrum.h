// Spectrum utilities around the masked-Fourier representation at the core
// of SpectraGAN (§2.1.3, §2.2.3): quantile masking M^q, top-k component
// reconstruction (Fig. 1e), and interleaved real<->complex packing used
// when spectra flow through the float tensor stack.

#pragma once

#include <vector>

#include "dsp/fft.h"

namespace spectra::dsp {

// Pack complex bins as interleaved [re0, im0, re1, im1, ...] floats.
std::vector<float> pack_interleaved(const std::vector<Complex>& spectrum);

// Inverse of pack_interleaved; size must be even.
std::vector<Complex> unpack_interleaved(const std::vector<float>& interleaved);

// Magnitudes |f_k| of each bin.
std::vector<double> magnitudes(const std::vector<Complex>& spectrum);

// The q-quantile (q in [0,1]) of the given values (linear interpolation).
double quantile(std::vector<double> values, double q);

// Masked spectrum M^q(y): zero every bin whose magnitude is <= the
// q-quantile of the magnitudes (paper §2.2.3: m = I(FFT(x) > y^q)).
std::vector<Complex> quantile_mask(const std::vector<Complex>& spectrum, double q);

// Boolean mask corresponding to quantile_mask.
std::vector<bool> quantile_mask_bits(const std::vector<Complex>& spectrum, double q);

// Keep only the k bins with the largest magnitudes (the "5 significant
// components" reconstruction of Fig. 1e); all other bins zeroed.
std::vector<Complex> top_k_components(const std::vector<Complex>& spectrum, long k);

// Reconstruct a time series from the top-k components of its spectrum.
std::vector<double> reconstruct_top_k(const std::vector<double>& series, long k);

}  // namespace spectra::dsp
