// k-multiple frequency-vector expansion (paper §2.2.4 & Fig. 4, justified
// in Appendix C): to synthesize a time series k times longer than the
// training window, place each trained bin f[i] at index k*i of a zeroed
// vector of length k*(F-1)+1 and scale by k, preserving total energy.

#pragma once

#include <vector>

#include "dsp/fft.h"

namespace spectra::dsp {

// Expanded spectrum length for a base length F and factor k.
long expanded_length(long base_bins, long k);

// Expand an rfft spectrum of a length-T signal so irfft of the result
// yields a length k*T signal repeating the base periodicities.
std::vector<Complex> expand_frequency(const std::vector<Complex>& spectrum, long k);

// Convenience: synthesize a length k*T signal directly from a base
// spectrum of a length-T signal.
std::vector<double> synthesize_expanded(const std::vector<Complex>& base_spectrum, long base_length,
                                        long k);

}  // namespace spectra::dsp
