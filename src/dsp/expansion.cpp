#include "dsp/expansion.h"

#include "util/error.h"

namespace spectra::dsp {

long expanded_length(long base_bins, long k) {
  SG_CHECK(base_bins >= 1 && k >= 1, "expanded_length requires positive arguments");
  return k * (base_bins - 1) + 1;
}

std::vector<Complex> expand_frequency(const std::vector<Complex>& spectrum, long k) {
  SG_CHECK(k >= 1, "expand_frequency requires k >= 1");
  const long f = static_cast<long>(spectrum.size());
  const long f_prime = expanded_length(f, k);
  std::vector<Complex> out(static_cast<std::size_t>(f_prime), Complex(0.0, 0.0));
  // Every k-th bin takes the base value scaled by k so the total energy is
  // multiplied by k (the signal is k times longer).
  for (long i = 0; i < f; ++i) {
    out[static_cast<std::size_t>(k * i)] = spectrum[static_cast<std::size_t>(i)] * static_cast<double>(k);
  }
  return out;
}

std::vector<double> synthesize_expanded(const std::vector<Complex>& base_spectrum, long base_length,
                                        long k) {
  SG_CHECK(static_cast<long>(base_spectrum.size()) == base_length / 2 + 1,
           "base spectrum size must be base_length/2+1");
  const std::vector<Complex> expanded = expand_frequency(base_spectrum, k);
  return irfft(expanded, k * base_length);
}

}  // namespace spectra::dsp
