#include "dsp/fft.h"

#include <cmath>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/error.h"

namespace spectra::dsp {

bool is_power_of_two(long n) { return n >= 1 && (n & (n - 1)) == 0; }

namespace {

// Iterative Cooley-Tukey, N a power of two. `sign` is -1 for the forward
// transform, +1 for the (unscaled) inverse.
void radix2(std::vector<Complex>& a, int sign) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Precomputed Bluestein plan for one (length, sign) pair. Training and
// generation transform millions of equal-length pixel series, so the
// chirp and the convolution kernel's FFT are cached per length.
struct BluesteinPlan {
  long n = 0;
  long m = 0;
  std::vector<Complex> chirp;   // w_k = exp(sign*i*pi*k^2/n)
  std::vector<Complex> kernel;  // FFT of the padded conjugate chirp
};

std::unique_ptr<BluesteinPlan> build_bluestein_plan(long n, int sign) {
  auto plan = std::make_unique<BluesteinPlan>();
  plan->n = n;
  long m = 1;
  while (m < 2 * n - 1) m <<= 1;
  plan->m = m;
  plan->chirp.resize(static_cast<std::size_t>(n));
  for (long k = 0; k < n; ++k) {
    // k^2 taken mod 2n to keep the argument small for large k.
    const long k2 = (k * k) % (2 * n);
    const double angle = sign * M_PI * static_cast<double>(k2) / static_cast<double>(n);
    plan->chirp[static_cast<std::size_t>(k)] = Complex(std::cos(angle), std::sin(angle));
  }
  plan->kernel.assign(static_cast<std::size_t>(m), Complex(0.0, 0.0));
  for (long k = 0; k < n; ++k) {
    const Complex c = std::conj(plan->chirp[static_cast<std::size_t>(k)]);
    plan->kernel[static_cast<std::size_t>(k)] = c;
    if (k != 0) plan->kernel[static_cast<std::size_t>(m - k)] = c;
  }
  radix2(plan->kernel, -1);
  return plan;
}

const BluesteinPlan& bluestein_plan(long n, int sign) {
  // Process-wide keyed cache shared by all pool workers; transforms of a
  // handful of distinct lengths dominate, so each plan is built once per
  // (length, sign) instead of once per thread. unique_ptr storage keeps
  // returned references stable while the vector grows.
  static std::shared_mutex mutex;
  static std::vector<std::unique_ptr<BluesteinPlan>> plans[2];
  auto& bucket = plans[sign < 0 ? 0 : 1];
  {
    std::shared_lock lock(mutex);
    for (const auto& plan : bucket) {
      if (plan->n == n) return *plan;
    }
  }
  // Build outside the lock (two racing threads may both build; one copy
  // wins below and the other is discarded).
  auto plan = build_bluestein_plan(n, sign);
  std::unique_lock lock(mutex);
  for (const auto& existing : bucket) {
    if (existing->n == n) return *existing;
  }
  bucket.push_back(std::move(plan));
  return *bucket.back();
}

// Bluestein's algorithm: express an arbitrary-length DFT as a convolution,
// evaluated with a zero-padded power-of-two FFT.
void bluestein(std::vector<Complex>& a, int sign) {
  const long n = static_cast<long>(a.size());
  const BluesteinPlan& plan = bluestein_plan(n, sign);
  const long m = plan.m;

  std::vector<Complex> u(static_cast<std::size_t>(m), Complex(0.0, 0.0));
  for (long k = 0; k < n; ++k) {
    u[static_cast<std::size_t>(k)] =
        a[static_cast<std::size_t>(k)] * plan.chirp[static_cast<std::size_t>(k)];
  }
  radix2(u, -1);
  for (long k = 0; k < m; ++k) {
    u[static_cast<std::size_t>(k)] *= plan.kernel[static_cast<std::size_t>(k)];
  }
  radix2(u, +1);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (long k = 0; k < n; ++k) {
    a[static_cast<std::size_t>(k)] =
        u[static_cast<std::size_t>(k)] * inv_m * plan.chirp[static_cast<std::size_t>(k)];
  }
}

}  // namespace

void fft_inplace(std::vector<Complex>& a, bool inverse) {
  const long n = static_cast<long>(a.size());
  if (n <= 1) return;
  // Instrument every transform: call counters plus a seconds histogram.
  // All three instruments are relaxed atomics — safe from pool workers.
  static obs::Counter& calls = obs::Registry::instance().counter("fft.calls");
  static obs::Counter& bluestein_calls = obs::Registry::instance().counter("fft.bluestein_calls");
  static obs::Histogram& seconds = obs::Registry::instance().histogram("fft.seconds");
  calls.inc();
  obs::ScopedTimer timer(seconds);
  SG_PROFILE_SCOPE("dsp/fft");
  if (obs::profile_enabled()) {
    // 5·N·log2(N) real flops (the standard complex radix-2 count);
    // traffic is the in-place buffer read and written once per pass.
    const double nd = static_cast<double>(n);
    const double log2n = std::log2(nd);
    obs::profile_add_work(5.0 * nd * log2n, 2.0 * nd * 16.0);
  }
  const int sign = inverse ? +1 : -1;
  if (is_power_of_two(n)) {
    radix2(a, sign);
  } else {
    bluestein_calls.inc();
    bluestein(a, sign);
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (Complex& c : a) c *= inv_n;
  }
}

std::vector<Complex> fft(std::vector<Complex> a) {
  fft_inplace(a, false);
  return a;
}

std::vector<Complex> ifft(std::vector<Complex> a) {
  fft_inplace(a, true);
  return a;
}

std::vector<Complex> rfft(const std::vector<double>& x) {
  SG_TRACE_SPAN("fft/rfft");
  const long n = static_cast<long>(x.size());
  SG_CHECK(n >= 1, "rfft of empty signal");
  std::vector<Complex> a(x.begin(), x.end());
  fft_inplace(a, false);
  a.resize(static_cast<std::size_t>(n / 2 + 1));
  return a;
}

std::vector<double> irfft(const std::vector<Complex>& spectrum, long n) {
  SG_TRACE_SPAN("fft/irfft");
  SG_CHECK(n >= 1, "irfft target length must be positive");
  SG_CHECK(static_cast<long>(spectrum.size()) == n / 2 + 1,
           "irfft: spectrum size must be n/2+1 (got " + std::to_string(spectrum.size()) +
               " for n=" + std::to_string(n) + ")");
  std::vector<Complex> full(static_cast<std::size_t>(n));
  for (long k = 0; k <= n / 2; ++k) {
    full[static_cast<std::size_t>(k)] = spectrum[static_cast<std::size_t>(k)];
  }
  for (long k = n / 2 + 1; k < n; ++k) {
    full[static_cast<std::size_t>(k)] = std::conj(spectrum[static_cast<std::size_t>(n - k)]);
  }
  fft_inplace(full, true);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] = full[static_cast<std::size_t>(i)].real();
  }
  return out;
}

}  // namespace spectra::dsp
