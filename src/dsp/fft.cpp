#include "dsp/fft.h"

#include <cmath>
#include <memory>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace spectra::dsp {

bool is_power_of_two(long n) { return n >= 1 && (n & (n - 1)) == 0; }

namespace {

// Iterative Cooley-Tukey, N a power of two. `sign` is -1 for the forward
// transform, +1 for the (unscaled) inverse.
void radix2(std::vector<Complex>& a, int sign) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Precomputed Bluestein plan for one (length, sign) pair. Training and
// generation transform millions of equal-length pixel series, so the
// chirp and the convolution kernel's FFT are cached per length.
struct BluesteinPlan {
  long n = 0;
  long m = 0;
  std::vector<Complex> chirp;   // w_k = exp(sign*i*pi*k^2/n)
  std::vector<Complex> kernel;  // FFT of the padded conjugate chirp
};

std::unique_ptr<BluesteinPlan> build_bluestein_plan(long n, int sign) {
  auto plan = std::make_unique<BluesteinPlan>();
  plan->n = n;
  long m = 1;
  while (m < 2 * n - 1) m <<= 1;
  plan->m = m;
  plan->chirp.resize(static_cast<std::size_t>(n));
  for (long k = 0; k < n; ++k) {
    // k^2 taken mod 2n to keep the argument small for large k.
    const long k2 = (k * k) % (2 * n);
    const double angle = sign * M_PI * static_cast<double>(k2) / static_cast<double>(n);
    plan->chirp[static_cast<std::size_t>(k)] = Complex(std::cos(angle), std::sin(angle));
  }
  plan->kernel.assign(static_cast<std::size_t>(m), Complex(0.0, 0.0));
  for (long k = 0; k < n; ++k) {
    const Complex c = std::conj(plan->chirp[static_cast<std::size_t>(k)]);
    plan->kernel[static_cast<std::size_t>(k)] = c;
    if (k != 0) plan->kernel[static_cast<std::size_t>(m - k)] = c;
  }
  radix2(plan->kernel, -1);
  return plan;
}

// Process-wide keyed cache shared by all pool workers; transforms of a
// handful of distinct lengths dominate, so each plan is built once per
// (length, sign) instead of once per thread. unique_ptr storage keeps
// returned references stable while the vector grows.
struct BluesteinCache {
  SharedMutex mutex SG_ACQUIRED_AFTER(lock_order::fft_cache)
      SG_ACQUIRED_BEFORE(lock_order::log);
  // [0]: sign < 0, [1]: sign >= 0. Plans are immutable once inserted.
  std::vector<std::unique_ptr<BluesteinPlan>> buckets[2] SG_GUARDED_BY(mutex);
};

const BluesteinPlan& bluestein_plan(long n, int sign) {
  static BluesteinCache bluestein_cache;
  const int bucket_index = sign < 0 ? 0 : 1;
  {
    SharedReaderLock lock(bluestein_cache.mutex);
    for (const auto& plan : bluestein_cache.buckets[bucket_index]) {
      if (plan->n == n) return *plan;
    }
  }
  // Build outside the lock (two racing threads may both build; one copy
  // wins below and the other is discarded).
  auto plan = build_bluestein_plan(n, sign);
  SharedMutexLock lock(bluestein_cache.mutex);
  auto& bucket = bluestein_cache.buckets[bucket_index];
  for (const auto& existing : bucket) {
    if (existing->n == n) return *existing;
  }
  bucket.push_back(std::move(plan));
  return *bucket.back();
}

// Bluestein's algorithm: express an arbitrary-length DFT as a convolution,
// evaluated with a zero-padded power-of-two FFT. The length-m work buffer
// is per-thread grow-only scratch (it cannot live on the plan: plans are
// shared read-only across pool workers); `reuse_scratch=false` is the
// historical per-call-allocating behavior, kept only as the bench
// baseline for the hoist (detail::bluestein_inplace).
void bluestein_transform(std::vector<Complex>& a, int sign, bool reuse_scratch) {
  const long n = static_cast<long>(a.size());
  const BluesteinPlan& plan = bluestein_plan(n, sign);
  const long m = plan.m;

  thread_local std::vector<Complex> scratch;
  std::vector<Complex> local;
  std::vector<Complex>& u = reuse_scratch ? scratch : local;
  u.assign(static_cast<std::size_t>(m), Complex(0.0, 0.0));
  for (long k = 0; k < n; ++k) {
    u[static_cast<std::size_t>(k)] =
        a[static_cast<std::size_t>(k)] * plan.chirp[static_cast<std::size_t>(k)];
  }
  radix2(u, -1);
  for (long k = 0; k < m; ++k) {
    u[static_cast<std::size_t>(k)] *= plan.kernel[static_cast<std::size_t>(k)];
  }
  radix2(u, +1);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (long k = 0; k < n; ++k) {
    a[static_cast<std::size_t>(k)] =
        u[static_cast<std::size_t>(k)] * inv_m * plan.chirp[static_cast<std::size_t>(k)];
  }
}

void bluestein(std::vector<Complex>& a, int sign) { bluestein_transform(a, sign, true); }

// Precomputed twiddles for the real-input half-spectrum transform: an
// N-point rfft/irfft runs one N/2-point complex FFT plus an O(N) unpack
// against exp(-2πik/N). Cached per length like the Bluestein plans.
struct RfftPlan {
  long n = 0;
  std::vector<Complex> twiddle;  // exp(-2*pi*i*k/n), k = 0..n/2
};

std::unique_ptr<RfftPlan> build_rfft_plan(long n) {
  auto plan = std::make_unique<RfftPlan>();
  plan->n = n;
  const long h = n / 2;
  plan->twiddle.resize(static_cast<std::size_t>(h + 1));
  for (long k = 0; k <= h; ++k) {
    const double angle = -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n);
    plan->twiddle[static_cast<std::size_t>(k)] = Complex(std::cos(angle), std::sin(angle));
  }
  return plan;
}

// Same shape as the Bluestein cache: SharedMutex-guarded, unique_ptr
// storage for reference stability, double-checked insert.
struct RfftCache {
  SharedMutex mutex SG_ACQUIRED_AFTER(lock_order::fft_cache)
      SG_ACQUIRED_BEFORE(lock_order::log);
  std::vector<std::unique_ptr<RfftPlan>> plans SG_GUARDED_BY(mutex);
};

const RfftPlan& rfft_plan(long n) {
  static RfftCache rfft_cache;
  {
    SharedReaderLock lock(rfft_cache.mutex);
    for (const auto& plan : rfft_cache.plans) {
      if (plan->n == n) return *plan;
    }
  }
  auto plan = build_rfft_plan(n);
  SharedMutexLock lock(rfft_cache.mutex);
  for (const auto& existing : rfft_cache.plans) {
    if (existing->n == n) return *existing;
  }
  rfft_cache.plans.push_back(std::move(plan));
  return *rfft_cache.plans.back();
}

obs::Counter& rfft_fast_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("fft.rfft_fast_calls");
  return c;
}

// Power-of-two real-input fast path: pack x into the length-N/2 complex
// signal z[j] = x[2j] + i·x[2j+1], FFT once at half length, then split
// even/odd spectra with the cached twiddles:
//   E[k] = (Z[k] + conj(Z[h-k]))/2,  O[k] = -i/2 · (Z[k] - conj(Z[h-k])),
//   X[k] = E[k] + w^k·O[k],          w = exp(-2πi/N).
std::vector<Complex> rfft_pow2(const std::vector<double>& x) {
  const long n = static_cast<long>(x.size());
  const long h = n / 2;
  const RfftPlan& plan = rfft_plan(n);
  rfft_fast_counter().inc();
  SG_PROFILE_SCOPE("dsp/fft");
  if (obs::profile_enabled()) {
    // One half-length complex FFT plus the O(N) unpack.
    const double hd = static_cast<double>(h);
    obs::profile_add_work(5.0 * hd * std::log2(hd > 1.0 ? hd : 2.0) + 8.0 * static_cast<double>(n),
                          2.0 * static_cast<double>(n) * 16.0);
  }
  std::vector<Complex> z(static_cast<std::size_t>(h));
  for (long j = 0; j < h; ++j) {
    z[static_cast<std::size_t>(j)] =
        Complex(x[static_cast<std::size_t>(2 * j)], x[static_cast<std::size_t>(2 * j + 1)]);
  }
  radix2(z, -1);
  std::vector<Complex> out(static_cast<std::size_t>(h + 1));
  // Bins 0 and h come from Z[0] alone; their imaginary parts cancel
  // exactly, so pin them to the real axis like the full transform would.
  out[0] = Complex(z[0].real() + z[0].imag(), 0.0);
  out[static_cast<std::size_t>(h)] = Complex(z[0].real() - z[0].imag(), 0.0);
  for (long k = 1; k < h; ++k) {
    const Complex zk = z[static_cast<std::size_t>(k)];
    const Complex zc = std::conj(z[static_cast<std::size_t>(h - k)]);
    const Complex even = 0.5 * (zk + zc);
    const Complex odd = Complex(0.0, -0.5) * (zk - zc);
    out[static_cast<std::size_t>(k)] = even + plan.twiddle[static_cast<std::size_t>(k)] * odd;
  }
  return out;
}

// Inverse of rfft_pow2: rebuild Z[k] = E[k] + i·O[k] from the half
// spectrum (E, O recovered with conjugate twiddles), one inverse FFT at
// half length, then de-interleave.
std::vector<double> irfft_pow2(const std::vector<Complex>& spectrum, long n) {
  const long h = n / 2;
  const RfftPlan& plan = rfft_plan(n);
  rfft_fast_counter().inc();
  SG_PROFILE_SCOPE("dsp/fft");
  if (obs::profile_enabled()) {
    const double hd = static_cast<double>(h);
    obs::profile_add_work(5.0 * hd * std::log2(hd > 1.0 ? hd : 2.0) + 8.0 * static_cast<double>(n),
                          2.0 * static_cast<double>(n) * 16.0);
  }
  std::vector<Complex> z(static_cast<std::size_t>(h));
  // The legacy path (Hermitian reconstruction + real part of the full
  // inverse) ignores any imaginary component of the self-mirrored DC and
  // Nyquist bins — only their Hermitian projection reaches the real
  // output. Replicate that by pinning both to the real axis; the
  // fourier_bridge gradient convention (zero grad for DC/Nyquist imag)
  // depends on it.
  const Complex x_dc(spectrum[0].real(), 0.0);
  const Complex x_ny(spectrum[static_cast<std::size_t>(h)].real(), 0.0);
  for (long k = 0; k < h; ++k) {
    const Complex xk = k == 0 ? x_dc : spectrum[static_cast<std::size_t>(k)];
    const Complex xc =
        k == 0 ? x_ny : std::conj(spectrum[static_cast<std::size_t>(h - k)]);
    const Complex even = 0.5 * (xk + xc);
    const Complex odd =
        std::conj(plan.twiddle[static_cast<std::size_t>(k)]) * (0.5 * (xk - xc));
    z[static_cast<std::size_t>(k)] = even + Complex(0.0, 1.0) * odd;
  }
  radix2(z, +1);
  std::vector<double> out(static_cast<std::size_t>(n));
  const double inv_h = 1.0 / static_cast<double>(h);
  for (long j = 0; j < h; ++j) {
    out[static_cast<std::size_t>(2 * j)] = z[static_cast<std::size_t>(j)].real() * inv_h;
    out[static_cast<std::size_t>(2 * j + 1)] = z[static_cast<std::size_t>(j)].imag() * inv_h;
  }
  return out;
}

}  // namespace

void fft_inplace(std::vector<Complex>& a, bool inverse) {
  const long n = static_cast<long>(a.size());
  if (n <= 1) return;
  // Instrument every transform: call counters plus a seconds histogram.
  // All three instruments are relaxed atomics — safe from pool workers.
  static obs::Counter& calls = obs::Registry::instance().counter("fft.calls");
  static obs::Counter& bluestein_calls = obs::Registry::instance().counter("fft.bluestein_calls");
  static obs::Histogram& seconds = obs::Registry::instance().histogram("fft.seconds");
  calls.inc();
  obs::ScopedTimer timer(seconds);
  SG_PROFILE_SCOPE("dsp/fft");
  if (obs::profile_enabled()) {
    // 5·N·log2(N) real flops (the standard complex radix-2 count);
    // traffic is the in-place buffer read and written once per pass.
    const double nd = static_cast<double>(n);
    const double log2n = std::log2(nd);
    obs::profile_add_work(5.0 * nd * log2n, 2.0 * nd * 16.0);
  }
  const int sign = inverse ? +1 : -1;
  if (is_power_of_two(n)) {
    radix2(a, sign);
  } else {
    bluestein_calls.inc();
    bluestein(a, sign);
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (Complex& c : a) c *= inv_n;
  }
}

std::vector<Complex> fft(std::vector<Complex> a) {
  fft_inplace(a, false);
  return a;
}

std::vector<Complex> ifft(std::vector<Complex> a) {
  fft_inplace(a, true);
  return a;
}

std::vector<Complex> rfft(const std::vector<double>& x) {
  SG_TRACE_SPAN("fft/rfft");
  const long n = static_cast<long>(x.size());
  SG_CHECK(n >= 1, "rfft of empty signal");
  if (is_power_of_two(n) && n >= 2) return rfft_pow2(x);
  std::vector<Complex> a(x.begin(), x.end());
  fft_inplace(a, false);
  a.resize(static_cast<std::size_t>(n / 2 + 1));
  return a;
}

std::vector<double> irfft(const std::vector<Complex>& spectrum, long n) {
  SG_TRACE_SPAN("fft/irfft");
  SG_CHECK(n >= 1, "irfft target length must be positive");
  SG_CHECK(static_cast<long>(spectrum.size()) == n / 2 + 1,
           "irfft: spectrum size must be n/2+1 (got " + std::to_string(spectrum.size()) +
               " for n=" + std::to_string(n) + ")");
  if (is_power_of_two(n) && n >= 2) return irfft_pow2(spectrum, n);
  std::vector<Complex> full(static_cast<std::size_t>(n));
  for (long k = 0; k <= n / 2; ++k) {
    full[static_cast<std::size_t>(k)] = spectrum[static_cast<std::size_t>(k)];
  }
  for (long k = n / 2 + 1; k < n; ++k) {
    full[static_cast<std::size_t>(k)] = std::conj(spectrum[static_cast<std::size_t>(n - k)]);
  }
  fft_inplace(full, true);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] = full[static_cast<std::size_t>(i)].real();
  }
  return out;
}

namespace detail {

void bluestein_inplace(std::vector<Complex>& a, bool inverse, bool reuse_scratch) {
  const long n = static_cast<long>(a.size());
  if (n <= 1) return;
  bluestein_transform(a, inverse ? +1 : -1, reuse_scratch);
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (Complex& c : a) c *= inv_n;
  }
}

std::vector<Complex> rfft_bluestein(const std::vector<double>& x) {
  const long n = static_cast<long>(x.size());
  SG_CHECK(n >= 1, "rfft_bluestein of empty signal");
  std::vector<Complex> a(x.begin(), x.end());
  if (n > 1) bluestein_transform(a, -1, true);
  a.resize(static_cast<std::size_t>(n / 2 + 1));
  return a;
}

}  // namespace detail

}  // namespace spectra::dsp
