#include "apps/population.h"

#include <cmath>

#include "metrics/psnr.h"
#include "util/error.h"

namespace spectra::apps {

PopulationModelParams default_population_params() {
  PopulationModelParams params;
  // Diurnal activity per subscriber: low overnight, morning ramp, evening
  // peak — the shape of [42]'s Fig. 8.
  params.activity_by_hour = {0.6, 0.5, 0.45, 0.42, 0.45, 0.55, 0.8, 1.1, 1.35, 1.45, 1.5, 1.55,
                             1.6, 1.55, 1.5, 1.5, 1.55, 1.7, 1.85, 1.9, 1.8, 1.5, 1.1, 0.8};
  return params;
}

geo::GridMap estimate_population(const geo::GridMap& traffic_frame, long hour_of_day,
                                 const PopulationModelParams& params) {
  SG_CHECK(params.activity_by_hour.size() == 24, "activity curve must have 24 entries");
  SG_CHECK(hour_of_day >= 0 && hour_of_day < 24, "hour_of_day out of range");
  const double lambda = params.activity_by_hour[static_cast<std::size_t>(hour_of_day)];
  const double scale = std::exp(params.k1 * lambda + params.k2);
  const double exponent = params.k3 * lambda + params.k4;

  geo::GridMap population(traffic_frame.height(), traffic_frame.width());
  for (long p = 0; p < traffic_frame.size(); ++p) {
    const double x = std::max(traffic_frame[p], 0.0);
    population[p] = x > 0.0 ? scale * std::pow(x, exponent) : 0.0;
  }
  return population;
}

TrackingComparison compare_population_tracking(const geo::CityTensor& real,
                                               const geo::CityTensor& synthetic, long steps,
                                               long steps_per_hour,
                                               const PopulationModelParams& params) {
  SG_CHECK(real.height() == synthetic.height() && real.width() == synthetic.width(),
           "real and synthetic tensors must share spatial shape");
  SG_CHECK(steps <= real.steps() && steps <= synthetic.steps(), "steps out of range");
  SG_CHECK(steps_per_hour >= 1, "steps_per_hour must be >= 1");

  std::vector<double> psnrs;
  for (long t = 0; t < steps; ++t) {
    const long hour = (t / steps_per_hour) % 24;
    const geo::GridMap p_real = estimate_population(real.frame(t), hour, params);
    const geo::GridMap p_synth = estimate_population(synthetic.frame(t), hour, params);
    psnrs.push_back(metrics::psnr(p_real, p_synth));
  }

  TrackingComparison out;
  for (double v : psnrs) out.mean_psnr += v;
  out.mean_psnr /= static_cast<double>(psnrs.size());
  for (double v : psnrs) out.std_psnr += (v - out.mean_psnr) * (v - out.mean_psnr);
  out.std_psnr = std::sqrt(out.std_psnr / static_cast<double>(psnrs.size()));
  return out;
}

}  // namespace spectra::apps
