// vRAN RU-to-CU association (§5.2, Eq. 3-7, Table 7).
//
// Each pixel hosts one Radio Unit; RUs of a city attach to |C| Central
// Units in an edge datacenter. The paper's ILP asks for a load-balanced,
// spatially contiguous partition of the RU adjacency graph (minimum edge
// cut subject to per-CU load within (1±ε) of the mean). We solve it with
// a greedy balanced region-growing heuristic plus boundary refinement —
// the role KaFFPa [62] plays in the paper.

#pragma once

#include <vector>

#include "geo/city_tensor.h"
#include "geo/grid.h"

namespace spectra::apps {

// Partition the H x W RU grid into `num_cus` spatially contiguous groups
// with (approximately) balanced total load. Returns the CU index of every
// pixel (row-major).
std::vector<long> partition_rus(const geo::GridMap& load, long num_cus);

// Total load per CU under an assignment.
std::vector<double> cu_loads(const geo::GridMap& load, const std::vector<long>& assignment,
                             long num_cus);

// Number of cut edges (4-neighbourhood) — the ILP objective (Eq. 3).
long cut_edges(const std::vector<long>& assignment, long height, long width);

struct VranComparison {
  double mean_jain = 0.0;
  double std_jain = 0.0;
};

// The paper's protocol: for every step of the planning day, partition
// using `planning` loads; score Jain's fairness of the resulting CU loads
// on the corresponding step of the evaluation day.
VranComparison evaluate_vran(const geo::CityTensor& planning, const geo::CityTensor& evaluation,
                             long num_cus, long planning_offset, long evaluation_offset,
                             long steps);

}  // namespace spectra::apps
