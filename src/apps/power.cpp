#include "apps/power.h"

#include <algorithm>

#include "util/error.h"

namespace spectra::apps {

BsPowerParams macro_bs_params() { return {6.0, 20.0, 84.0, 2.8}; }

BsPowerParams micro_bs_params() { return {2.0, 6.3, 56.0, 2.6}; }

double bs_power(const BsPowerParams& params, double rho) {
  rho = std::clamp(rho, 0.0, 1.0);
  return params.n_trx * (params.p0 + params.delta_p * params.p_max * rho);
}

SleepingResult simulate_bs_sleeping(const geo::CityTensor& decision,
                                    const geo::CityTensor& actual, double rho_min,
                                    long macro_block) {
  SG_CHECK(decision.steps() == actual.steps() && decision.height() == actual.height() &&
               decision.width() == actual.width(),
           "decision and actual tensors must share their shape");
  SG_CHECK(rho_min >= 0.0 && rho_min <= 1.0, "rho_min must be in [0,1]");
  SG_CHECK(macro_block >= 1, "macro_block must be >= 1");

  const long T = actual.steps();
  const long H = actual.height();
  const long W = actual.width();
  const long macro_rows = (H + macro_block - 1) / macro_block;
  const long macro_cols = (W + macro_block - 1) / macro_block;
  const long pixels_per_macro = macro_block * macro_block;

  const BsPowerParams macro = macro_bs_params();
  const BsPowerParams micro = micro_bs_params();

  double total_always_on = 0.0;
  double total_sleeping = 0.0;
  long sleeping_count = 0;

  std::vector<double> macro_offload(static_cast<std::size_t>(macro_rows * macro_cols));
  for (long t = 0; t < T; ++t) {
    std::fill(macro_offload.begin(), macro_offload.end(), 0.0);

    for (long i = 0; i < H; ++i) {
      for (long j = 0; j < W; ++j) {
        const double rho_actual = std::clamp(actual.at(t, i, j), 0.0, 1.0);
        const double rho_decision = std::clamp(decision.at(t, i, j), 0.0, 1.0);
        total_always_on += bs_power(micro, rho_actual);
        if (rho_decision <= rho_min) {
          // Sleep: the pixel's actual traffic moves to the macro BS.
          macro_offload[static_cast<std::size_t>((i / macro_block) * macro_cols +
                                                 j / macro_block)] += rho_actual;
          ++sleeping_count;
        } else {
          total_sleeping += bs_power(micro, rho_actual);
        }
      }
    }
    for (long m = 0; m < macro_rows * macro_cols; ++m) {
      // Macro relative load: offloaded micro loads normalized by the
      // block size (a macro sized to carry its whole block at capacity).
      const double rho_macro = macro_offload[static_cast<std::size_t>(m)] /
                               static_cast<double>(pixels_per_macro);
      total_sleeping += bs_power(macro, rho_macro);
      total_always_on += bs_power(macro, 0.0);  // idle umbrella layer
    }
  }

  const double cells = static_cast<double>(T * H * W);
  SleepingResult result;
  result.power_always_on = total_always_on / cells;
  result.power_with_sleeping = total_sleeping / cells;
  result.savings_fraction = 1.0 - result.power_with_sleeping / result.power_always_on;
  result.sleep_fraction = static_cast<double>(sleeping_count) / cells;
  return result;
}

}  // namespace spectra::apps
