#include "apps/vran.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "metrics/fairness.h"
#include "util/error.h"

namespace spectra::apps {

namespace {

struct Neighbors {
  long idx[4];
  int count = 0;
};

Neighbors neighbors_of(long p, long h, long w) {
  Neighbors n;
  const long i = p / w;
  const long j = p % w;
  if (i > 0) n.idx[n.count++] = p - w;
  if (i + 1 < h) n.idx[n.count++] = p + w;
  if (j > 0) n.idx[n.count++] = p - 1;
  if (j + 1 < w) n.idx[n.count++] = p + 1;
  return n;
}

}  // namespace

std::vector<long> partition_rus(const geo::GridMap& load, long num_cus) {
  const long h = load.height();
  const long w = load.width();
  const long p_total = h * w;
  SG_CHECK(num_cus >= 1 && num_cus <= p_total, "invalid CU count");

  std::vector<long> assignment(static_cast<std::size_t>(p_total), -1);

  // Seeds: evenly spaced along a space-filling diagonal sweep, which
  // spreads the initial regions across the map.
  std::vector<long> seeds;
  seeds.reserve(static_cast<std::size_t>(num_cus));
  for (long c = 0; c < num_cus; ++c) {
    const long pos = (2 * c + 1) * p_total / (2 * num_cus);
    seeds.push_back(pos);
  }

  std::vector<double> region_load(static_cast<std::size_t>(num_cus), 0.0);
  std::vector<std::deque<long>> frontier(static_cast<std::size_t>(num_cus));
  for (long c = 0; c < num_cus; ++c) {
    long s = seeds[static_cast<std::size_t>(c)];
    // Resolve seed collisions by scanning forward.
    while (assignment[static_cast<std::size_t>(s)] != -1) s = (s + 1) % p_total;
    assignment[static_cast<std::size_t>(s)] = c;
    region_load[static_cast<std::size_t>(c)] += load[s];
    frontier[static_cast<std::size_t>(c)].push_back(s);
  }

  // Balanced multi-source BFS growth: the least-loaded region claims the
  // next unassigned pixel adjacent to it.
  long assigned = num_cus;
  while (assigned < p_total) {
    // Pick the least-loaded region with a non-empty frontier.
    long best_c = -1;
    for (long c = 0; c < num_cus; ++c) {
      if (frontier[static_cast<std::size_t>(c)].empty()) continue;
      if (best_c == -1 ||
          region_load[static_cast<std::size_t>(c)] < region_load[static_cast<std::size_t>(best_c)]) {
        best_c = c;
      }
    }
    if (best_c == -1) {
      // All frontiers exhausted (disconnected remainder): attach the
      // first unassigned pixel to the least-loaded region directly.
      long p = 0;
      while (assignment[static_cast<std::size_t>(p)] != -1) ++p;
      long c = std::min_element(region_load.begin(), region_load.end()) - region_load.begin();
      assignment[static_cast<std::size_t>(p)] = c;
      region_load[static_cast<std::size_t>(c)] += load[p];
      frontier[static_cast<std::size_t>(c)].push_back(p);
      ++assigned;
      continue;
    }
    std::deque<long>& fq = frontier[static_cast<std::size_t>(best_c)];
    bool claimed = false;
    while (!fq.empty() && !claimed) {
      const long p = fq.front();
      const Neighbors nb = neighbors_of(p, h, w);
      bool has_unassigned_neighbor = false;
      for (int k = 0; k < nb.count; ++k) {
        const long q = nb.idx[k];
        if (assignment[static_cast<std::size_t>(q)] == -1) {
          if (!claimed) {
            assignment[static_cast<std::size_t>(q)] = best_c;
            region_load[static_cast<std::size_t>(best_c)] += load[q];
            fq.push_back(q);
            ++assigned;
            claimed = true;
          } else {
            has_unassigned_neighbor = true;
          }
        }
      }
      if (!has_unassigned_neighbor && claimed) break;
      if (!claimed) fq.pop_front();  // exhausted frontier pixel
    }
    if (!claimed && fq.empty()) continue;  // frontier dried up; loop retries
  }

  // Boundary refinement: move boundary pixels to a neighbouring region
  // when it reduces the squared deviation of region loads, keeping the
  // donor region non-empty.
  std::vector<long> region_size(static_cast<std::size_t>(num_cus), 0);
  for (long p = 0; p < p_total; ++p) ++region_size[static_cast<std::size_t>(assignment[static_cast<std::size_t>(p)])];

  const double mean_load = load.sum() / static_cast<double>(num_cus);
  for (int pass = 0; pass < 4; ++pass) {
    bool moved = false;
    for (long p = 0; p < p_total; ++p) {
      const long from = assignment[static_cast<std::size_t>(p)];
      if (region_size[static_cast<std::size_t>(from)] <= 1) continue;
      const Neighbors nb = neighbors_of(p, h, w);
      for (int k = 0; k < nb.count; ++k) {
        const long to = assignment[static_cast<std::size_t>(nb.idx[k])];
        if (to == from) continue;
        const double lf = region_load[static_cast<std::size_t>(from)];
        const double lt = region_load[static_cast<std::size_t>(to)];
        const double v = load[p];
        const double before = (lf - mean_load) * (lf - mean_load) + (lt - mean_load) * (lt - mean_load);
        const double after = (lf - v - mean_load) * (lf - v - mean_load) +
                             (lt + v - mean_load) * (lt + v - mean_load);
        if (after + 1e-12 < before) {
          assignment[static_cast<std::size_t>(p)] = to;
          region_load[static_cast<std::size_t>(from)] -= v;
          region_load[static_cast<std::size_t>(to)] += v;
          --region_size[static_cast<std::size_t>(from)];
          ++region_size[static_cast<std::size_t>(to)];
          moved = true;
          break;
        }
      }
    }
    if (!moved) break;
  }

  return assignment;
}

std::vector<double> cu_loads(const geo::GridMap& load, const std::vector<long>& assignment,
                             long num_cus) {
  SG_CHECK(static_cast<long>(assignment.size()) == load.size(), "assignment size mismatch");
  std::vector<double> loads(static_cast<std::size_t>(num_cus), 0.0);
  for (long p = 0; p < load.size(); ++p) {
    const long c = assignment[static_cast<std::size_t>(p)];
    SG_CHECK(c >= 0 && c < num_cus, "assignment out of range");
    loads[static_cast<std::size_t>(c)] += load[p];
  }
  return loads;
}

long cut_edges(const std::vector<long>& assignment, long height, long width) {
  SG_CHECK(static_cast<long>(assignment.size()) == height * width, "assignment size mismatch");
  long cut = 0;
  for (long i = 0; i < height; ++i) {
    for (long j = 0; j < width; ++j) {
      const long p = i * width + j;
      if (j + 1 < width && assignment[static_cast<std::size_t>(p)] !=
                               assignment[static_cast<std::size_t>(p + 1)]) {
        ++cut;
      }
      if (i + 1 < height && assignment[static_cast<std::size_t>(p)] !=
                                assignment[static_cast<std::size_t>(p + width)]) {
        ++cut;
      }
    }
  }
  return cut;
}

VranComparison evaluate_vran(const geo::CityTensor& planning, const geo::CityTensor& evaluation,
                             long num_cus, long planning_offset, long evaluation_offset,
                             long steps) {
  SG_CHECK(planning.height() == evaluation.height() && planning.width() == evaluation.width(),
           "planning and evaluation tensors must share spatial shape");
  SG_CHECK(planning_offset + steps <= planning.steps() &&
               evaluation_offset + steps <= evaluation.steps(),
           "evaluate_vran window out of range");

  std::vector<double> jains;
  jains.reserve(static_cast<std::size_t>(steps));
  for (long t = 0; t < steps; ++t) {
    const geo::GridMap plan_load = planning.frame(planning_offset + t);
    const std::vector<long> assignment = partition_rus(plan_load, num_cus);
    const geo::GridMap eval_load = evaluation.frame(evaluation_offset + t);
    jains.push_back(metrics::jain_fairness(cu_loads(eval_load, assignment, num_cus)));
  }

  VranComparison out;
  for (double j : jains) out.mean_jain += j;
  out.mean_jain /= static_cast<double>(jains.size());
  for (double j : jains) out.std_jain += (j - out.mean_jain) * (j - out.mean_jain);
  out.std_jain = std::sqrt(out.std_jain / static_cast<double>(jains.size()));
  return out;
}

}  // namespace spectra::apps
