// Dynamic urban population tracking (§5.3, Eq. 8, Table 8, Fig. 11).
//
// The multivariate regression of Khodabandelou et al. [42] maps traffic
// x_i(t) and a network activity level λ_i(t) to population presence:
//   p_i(t) = exp(k1 λ_i(t) + k2) * x_i(t)^(k3 λ_i(t) + k4).
// λ(t) follows the diurnal empirical curve of that study's Fig. 8 and the
// constants mirror its Table 4 (representative values; the comparison in
// Table 8 is between real-fed and synthetic-fed estimates, so only the
// functional form matters, not the absolute calibration).

#pragma once

#include <vector>

#include "geo/city_tensor.h"
#include "geo/grid.h"

namespace spectra::apps {

struct PopulationModelParams {
  double k1 = 0.35;
  double k2 = 4.2;
  double k3 = -0.12;
  double k4 = 0.65;
  // Mean network events per subscriber by hour of day (0..23).
  std::vector<double> activity_by_hour;
};

// Defaults with the diurnal activity curve.
PopulationModelParams default_population_params();

// Eq. 8 applied to one traffic frame at the given hour of day.
geo::GridMap estimate_population(const geo::GridMap& traffic_frame, long hour_of_day,
                                 const PopulationModelParams& params);

struct TrackingComparison {
  double mean_psnr = 0.0;
  double std_psnr = 0.0;
};

// Hourly population cartographies from real vs synthetic traffic,
// compared frame by frame with PSNR (peak = max of the real-fed map).
TrackingComparison compare_population_tracking(const geo::CityTensor& real,
                                               const geo::CityTensor& synthetic, long steps,
                                               long steps_per_hour,
                                               const PopulationModelParams& params);

}  // namespace spectra::apps
