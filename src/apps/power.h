// Data-driven micro-BS sleeping (§5.1, Table 6, Fig. 10).
//
// Heterogeneous RAN: one micro BS per pixel, one macro BS per 5x5 block
// of pixels providing umbrella coverage. BS power follows
//   P(t) = N_trx (P0 + Δp Pmax ρ(t)),  0 <= ρ(t) <= 1,
// with the Table 6 parameters. A micro BS whose relative load drops to
// ρ <= ρ_min (0.37, [23]) offloads to its macro and sleeps at ~zero power.

#pragma once

#include "geo/city_tensor.h"

namespace spectra::apps {

struct BsPowerParams {
  double n_trx;
  double p_max;
  double p0;
  double delta_p;
};

// Table 6 parameter sets.
BsPowerParams macro_bs_params();  // N_trx 6, Pmax 20, P0 84, Δp 2.8
BsPowerParams micro_bs_params();  // N_trx 2, Pmax 6.3, P0 56, Δp 2.6

// Instantaneous BS power at relative load rho (clamped to [0,1]).
double bs_power(const BsPowerParams& params, double rho);

struct SleepingResult {
  double power_always_on = 0.0;      // mean W per pixel, micro BSs never sleep
  double power_with_sleeping = 0.0;  // mean W per pixel under the policy
  double savings_fraction = 0.0;     // 1 - with_sleeping / always_on
  double sleep_fraction = 0.0;       // fraction of (micro BS, step) pairs asleep
};

// Simulate the policy over the whole tensor. `decision` provides the
// traffic that drives on/off decisions; `actual` provides the loads that
// determine consumed power (pass the same tensor for the paper's
// real-data reference, or synthetic decision data against real loads to
// study policy transfer). Both tensors must share their shape.
SleepingResult simulate_bs_sleeping(const geo::CityTensor& decision,
                                    const geo::CityTensor& actual, double rho_min = 0.37,
                                    long macro_block = 5);

}  // namespace spectra::apps
