// Differentiable inverse real FFT — the bridge between the spectrum
// generator's frequency-domain output and the time-domain traffic patch
// (§2.2.2: "IFFT is differentiable so is the overall generator").
//
// Forward: an interleaved-complex spectrum tensor [B, 2*Fgen, P] (Fgen
// generated low-frequency bins per pixel p) is zero-padded to the full
// T/2+1 bins and inverse-transformed to [B, T, P].
//
// Backward: the adjoint of the (linear) inverse transform — an rFFT of
// the incoming gradient with Hermitian weighting 2/T on interior bins and
// 1/T on the DC/Nyquist bins, truncated back to the generated band.
//
// The same entry point implements long-horizon generation: when
// `expand_k > 1` the spectrum is first expanded with the k-multiple rule
// (dsp/expansion.h, Fig. 4) so the output covers k*T steps.

#pragma once

#include "nn/autograd.h"

namespace spectra::core {

// spectrum: [B, 2*Fgen, P]; returns [B, T_out, P] with
// T_out = expand_k * base_steps.
nn::Var irfft_bridge(const nn::Var& spectrum, long base_steps, long expand_k = 1);

}  // namespace spectra::core
