// Context encoders E^G / E^R (§2.2.2, Fig. 3): CNNs that map a context
// patch [B, C, Hc, Wc] to a hidden representation [B, C_h, H_h, W_h].
// With the default geometry (Hc = 2*Ht, stride-2 second conv) the hidden
// feature map is spatially aligned with the traffic patch (H_h = Ht),
// giving the per-pixel context-to-spectrum correspondence that §2.1.3
// highlights. The generator and the discriminators use *separate*
// encoder instances (the paper's Fig. 3 note).

#pragma once

#include "core/config.h"
#include "nn/layers.h"

namespace spectra::core {

class ContextEncoder : public nn::Module {
 public:
  ContextEncoder(const SpectraGanConfig& config, Rng& rng);

  // [B, C, Hc, Wc] -> [B, hidden_channels, Ht, Wt].
  nn::Var forward(const nn::Var& context) const;

  long hidden_channels() const { return hidden_channels_; }

 private:
  long hidden_channels_;
  nn::Conv2dLayer conv1_;  // C -> mid, stride 1, pad 1
  nn::Conv2dLayer conv2_;  // mid -> hidden, stride 2, pad 1
};

}  // namespace spectra::core
