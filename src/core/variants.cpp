#include "core/variants.h"

#include "util/error.h"

namespace spectra::core {

SpectraGanConfig default_config() { return SpectraGanConfig{}; }

SpectraGanConfig pixel_context_config() {
  SpectraGanConfig config;
  // Context patch collapses to the traffic patch: each pixel is
  // conditioned only on its own context (the DoppelGANger-style setting).
  config.patch.context_h = config.patch.traffic_h;
  config.patch.context_w = config.patch.traffic_w;
  return config;
}

SpectraGanConfig spec_only_config() {
  SpectraGanConfig config;
  config.use_time_generator = false;
  return config;
}

SpectraGanConfig time_only_config() {
  SpectraGanConfig config;
  config.use_spectrum_generator = false;
  return config;
}

SpectraGanConfig time_only_plus_config() {
  SpectraGanConfig config = time_only_config();
  config.extra_time_generator = true;
  return config;
}

SpectraGanConfig variant_config(const std::string& name) {
  if (name == "SpectraGAN") return default_config();
  if (name == "SpectraGAN-") return pixel_context_config();
  if (name == "Spec-only") return spec_only_config();
  if (name == "Time-only") return time_only_config();
  if (name == "Time-only+") return time_only_plus_config();
  SG_THROW("unknown SpectraGAN variant: " + name);
}

}  // namespace spectra::core
