#include "core/trainer.h"

#include <algorithm>

#include "core/fourier_bridge.h"
#include "core/losses.h"
#include "nn/init.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "obs/train_log.h"
#include "util/error.h"
#include "util/log.h"
#include "util/stopwatch.h"

namespace spectra::core {

using nn::Var;

SpectraGan::SpectraGan(SpectraGanConfig config, std::uint64_t seed)
    : config_(std::move(config)), model_rng_(seed) {
  config_.validate();
  encoder_g_ = std::make_unique<ContextEncoder>(config_, model_rng_);
  encoder_r_ = std::make_unique<ContextEncoder>(config_, model_rng_);
  if (config_.use_spectrum_generator) {
    spectrum_gen_ = std::make_unique<SpectrumGenerator>(config_, model_rng_);
    disc_s_ = std::make_unique<SpectrumDiscriminator>(config_, model_rng_);
  }
  if (config_.use_time_generator) {
    time_gen_ = std::make_unique<TimeGenerator>(config_, model_rng_);
    if (config_.extra_time_generator) {
      time_gen_extra_ = std::make_unique<TimeGenerator>(config_, model_rng_);
    }
  }
  disc_t_ = std::make_unique<TimeDiscriminator>(config_, model_rng_);
}

std::vector<Var> SpectraGan::generator_parameters() const {
  std::vector<Var> params = encoder_g_->parameters();
  auto append = [&params](const nn::Module* m) {
    if (m == nullptr) return;
    const std::vector<Var> sub = m->parameters();
    params.insert(params.end(), sub.begin(), sub.end());
  };
  append(spectrum_gen_.get());
  append(time_gen_.get());
  append(time_gen_extra_.get());
  return params;
}

std::vector<Var> SpectraGan::discriminator_parameters() const {
  std::vector<Var> params = encoder_r_->parameters();
  auto append = [&params](const nn::Module* m) {
    if (m == nullptr) return;
    const std::vector<Var> sub = m->parameters();
    params.insert(params.end(), sub.begin(), sub.end());
  };
  append(disc_s_.get());
  append(disc_t_.get());
  return params;
}

nn::Tensor SpectraGan::sample_noise(long batch, Rng& rng) const {
  return nn::init::gaussian(
      {batch, config_.noise_channels, config_.patch.traffic_h, config_.patch.traffic_w}, 1.0f, rng);
}

SpectraGan::GeneratorOutput SpectraGan::generator_forward(const Var& context,
                                                          const Var& spatial_noise, long steps,
                                                          long expand_k) const {
  const long batch = context.value().dim(0);
  const long pixels = config_.patch.traffic_h * config_.patch.traffic_w;
  Var hidden = encoder_g_->forward(context);

  GeneratorOutput out;
  if (spectrum_gen_) {
    Var spec_map = spectrum_gen_->forward(hidden, spatial_noise);  // [B, 2F, Ht, Wt]
    out.spectrum = nn::reshape(spec_map, {batch, 2 * config_.spectrum_bins, pixels});
    out.traffic = irfft_bridge(out.spectrum, config_.train_steps, expand_k);
  }
  if (time_gen_) {
    Var residual = time_gen_->forward(hidden, spatial_noise, steps);
    out.traffic = out.traffic.defined() ? nn::add(out.traffic, residual) : residual;
    if (time_gen_extra_) {
      out.traffic = nn::add(out.traffic, time_gen_extra_->forward(hidden, spatial_noise, steps));
    }
  }
  return out;
}

namespace {

// Copy checkpointed tensors back into live parameter storage.
void restore_params(const std::vector<nn::Tensor>& saved, std::vector<Var> params,
                    const char* which) {
  SG_CHECK(saved.size() == params.size(),
           std::string("checkpoint ") + which + " parameter count mismatch");
  for (std::size_t k = 0; k < params.size(); ++k) {
    SG_CHECK(saved[k].same_shape(params[k].value()),
             std::string("checkpoint ") + which + " parameter shape mismatch");
    params[k].value_mut() = saved[k];
  }
}

train::AdamSnapshot capture_adam(const nn::Adam& opt) {
  train::AdamSnapshot snap;
  snap.step_count = static_cast<std::uint64_t>(opt.step_count());
  snap.m = opt.first_moments();
  snap.v = opt.second_moments();
  return snap;
}

}  // namespace

TrainStats SpectraGan::train(const data::PatchSampler& sampler, Rng& rng) {
  return train(sampler, rng, train::CheckpointOptions::from_env());
}

TrainStats SpectraGan::train(const data::PatchSampler& sampler, Rng& rng,
                             const train::CheckpointOptions& ckpt) {
  SG_CHECK(sampler.train_steps() == config_.train_steps,
           "sampler window length must equal config.train_steps");
  SG_TRACE_SPAN("train/run");
  SG_PROFILE_SCOPE("train/run");
  Stopwatch watch;

  obs::TrainLogSink train_log;  // $SPECTRA_TRAIN_LOG; disabled when unset
  static obs::Counter& iter_counter = obs::Registry::instance().counter("train.iterations");
  static obs::Counter& restore_counter = obs::Registry::instance().counter("checkpoint.restores");
  static obs::Histogram& iter_hist =
      obs::Registry::instance().histogram("train.iteration_seconds");

  nn::Adam opt_g(generator_parameters(), config_.lr_generator, 0.5f, 0.999f);
  nn::Adam opt_d(discriminator_parameters(), config_.lr_discriminator, 0.5f, 0.999f);

  TrainStats stats;
  long start_it = 0;
  if (!ckpt.dir.empty()) {
    if (std::optional<train::TrainingSnapshot> snap = train::load_latest(ckpt.dir)) {
      SG_TRACE_SPAN("checkpoint/restore");
      SG_PROFILE_SCOPE("checkpoint/restore");
      restore_params(snap->gen_params, generator_parameters(), "generator");
      restore_params(snap->disc_params, discriminator_parameters(), "discriminator");
      opt_g.restore_state(static_cast<long>(snap->opt_g.step_count), std::move(snap->opt_g.m),
                          std::move(snap->opt_g.v));
      opt_d.restore_state(static_cast<long>(snap->opt_d.step_count), std::move(snap->opt_d.m),
                          std::move(snap->opt_d.v));
      rng.set_state(snap->rng);
      stats.d_loss_history = std::move(snap->stats.d_loss);
      stats.g_adv_loss_history = std::move(snap->stats.g_adv_loss);
      stats.l1_loss_history = std::move(snap->stats.l1_loss);
      stats.grad_norm_d_history = std::move(snap->stats.grad_norm_d);
      stats.grad_norm_g_history = std::move(snap->stats.grad_norm_g);
      stats.iter_seconds_history = std::move(snap->stats.iter_seconds);
      stats.iterations = static_cast<long>(snap->iteration);
      stats.resumed_iteration = stats.iterations;
      if (!stats.d_loss_history.empty()) stats.final_d_loss = stats.d_loss_history.back();
      if (!stats.g_adv_loss_history.empty()) {
        stats.final_g_adv_loss = stats.g_adv_loss_history.back();
      }
      if (!stats.l1_loss_history.empty()) stats.final_l1_loss = stats.l1_loss_history.back();
      start_it = std::min(stats.iterations, config_.iterations);
      restore_counter.inc();
      SG_LOG_INFO << "resumed from checkpoint at iteration " << stats.iterations << " in "
                  << ckpt.dir;
    }
  }
  for (long it = start_it; it < config_.iterations; ++it) {
    Stopwatch iter_watch;
    double grad_norm_d = 0.0;
    double grad_norm_g = 0.0;

    // Masked-FFT target y^q for the spectrum branch (Eq. 1's L1 target).
    Var context, real_traffic, noise, masked_target;
    {
      SG_TRACE_SPAN("train/sample");
      SG_PROFILE_SCOPE("train/sample");
      const data::PatchBatch batch = sampler.sample(config_.batch, rng);
      context = Var::constant(context_tensor(batch));
      real_traffic = Var::constant(traffic_tensor(batch));
      noise = Var::constant(sample_noise(batch.batch, rng));
      if (spectrum_gen_) {
        masked_target = Var::constant(masked_spectrum_target(
            traffic_tensor(batch), config_.spectrum_bins, config_.mask_quantile));
      }
    }

    // Single generator forward reused by both optimization steps.
    GeneratorOutput fake;
    {
      SG_TRACE_SPAN("train/g_forward");
      SG_PROFILE_SCOPE("train/g_forward");
      fake = generator_forward(context, noise, config_.train_steps, /*expand_k=*/1);
    }

    // --- discriminator step (fakes detached via value copies) ---
    {
      SG_TRACE_SPAN("train/d_step");
      SG_PROFILE_SCOPE("train/d_step");
      Var hidden_r = encoder_r_->forward(context);
      Var d_loss;
      auto accumulate = [&d_loss](Var term) {
        d_loss = d_loss.defined() ? nn::add(d_loss, term) : term;
      };
      if (disc_s_) {
        accumulate(nn::bce_with_logits_const(disc_s_->forward(masked_target, hidden_r), 1.0f));
        accumulate(nn::bce_with_logits_const(
            disc_s_->forward(Var::constant(fake.spectrum.value()), hidden_r), 0.0f));
      }
      accumulate(nn::bce_with_logits_const(disc_t_->forward(real_traffic, hidden_r), 1.0f));
      accumulate(nn::bce_with_logits_const(
          disc_t_->forward(Var::constant(fake.traffic.value()), hidden_r), 0.0f));

      opt_d.zero_grad();
      {
        SG_TRACE_SPAN("train/backward");
        SG_PROFILE_SCOPE("train/backward");
        d_loss.backward();
      }
      grad_norm_d = opt_d.clip_grad_norm(config_.grad_clip);
      opt_d.step();
      stats.final_d_loss = d_loss.value()[0];
    }

    // --- generator step ---
    {
      SG_TRACE_SPAN("train/g_step");
      SG_PROFILE_SCOPE("train/g_step");
      Var hidden_r = encoder_r_->forward(context);
      Var g_adv;
      auto accumulate = [&g_adv](Var term) {
        g_adv = g_adv.defined() ? nn::add(g_adv, term) : term;
      };
      if (disc_s_) {
        accumulate(nn::bce_with_logits_const(disc_s_->forward(fake.spectrum, hidden_r), 1.0f));
      }
      accumulate(nn::bce_with_logits_const(disc_t_->forward(fake.traffic, hidden_r), 1.0f));

      Var l1 = nn::l1_loss(fake.traffic, real_traffic);
      if (disc_s_) l1 = nn::add(l1, nn::l1_loss(fake.spectrum, masked_target));

      Var g_loss = nn::add(g_adv, nn::mul_scalar(l1, config_.lambda_l1));

      opt_g.zero_grad();
      // The backward pass also deposits gradients into discriminator
      // parameters; they are discarded at the next opt_d.zero_grad().
      {
        SG_TRACE_SPAN("train/backward");
        SG_PROFILE_SCOPE("train/backward");
        g_loss.backward();
      }
      grad_norm_g = opt_g.clip_grad_norm(config_.grad_clip);
      opt_g.step();
      stats.final_g_adv_loss = g_adv.value()[0];
      stats.final_l1_loss = l1.value()[0];
    }

    ++stats.iterations;
    iter_counter.inc();
    const double iter_seconds = iter_watch.seconds();
    iter_hist.observe(iter_seconds);
    stats.d_loss_history.push_back(stats.final_d_loss);
    stats.g_adv_loss_history.push_back(stats.final_g_adv_loss);
    stats.l1_loss_history.push_back(stats.final_l1_loss);
    stats.grad_norm_d_history.push_back(grad_norm_d);
    stats.grad_norm_g_history.push_back(grad_norm_g);
    stats.iter_seconds_history.push_back(iter_seconds);
    if (train_log.enabled()) {
      train_log.write({it, stats.final_d_loss, stats.final_g_adv_loss, stats.final_l1_loss,
                       grad_norm_d, grad_norm_g, iter_seconds});
    }
    if ((it + 1) % 50 == 0) {
      SG_LOG_INFO << "iter " << (it + 1) << "/" << config_.iterations
                  << " d=" << stats.final_d_loss << " g_adv=" << stats.final_g_adv_loss
                  << " l1=" << stats.final_l1_loss;
    }
    if (ckpt.enabled() && (it + 1) % ckpt.every == 0) {
      train::TrainingSnapshot snap;
      snap.iteration = static_cast<std::uint64_t>(it + 1);
      for (const Var& p : generator_parameters()) snap.gen_params.push_back(p.value());
      for (const Var& p : discriminator_parameters()) snap.disc_params.push_back(p.value());
      snap.opt_g = capture_adam(opt_g);
      snap.opt_d = capture_adam(opt_d);
      snap.rng = rng.state();
      snap.stats = {stats.d_loss_history,      stats.g_adv_loss_history,
                    stats.l1_loss_history,     stats.grad_norm_d_history,
                    stats.grad_norm_g_history, stats.iter_seconds_history};
      train::write_checkpoint(ckpt.dir, snap, ckpt.keep_last);
    }
  }
  stats.seconds = watch.seconds();
  return stats;
}

void SpectraGan::save(const std::string& path) const {
  std::vector<Var> all = generator_parameters();
  const std::vector<Var> d = discriminator_parameters();
  all.insert(all.end(), d.begin(), d.end());
  nn::save_parameters(path, all);
}

void SpectraGan::load(const std::string& path) {
  std::vector<Var> all = generator_parameters();
  const std::vector<Var> d = discriminator_parameters();
  all.insert(all.end(), d.begin(), d.end());
  nn::load_parameters(path, all);
}

}  // namespace spectra::core
