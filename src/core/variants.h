// Named configuration variants for the ablation study (§4.2, Tables 4-5):
//   * full SpectraGAN;
//   * SpectraGAN- (pixel-level context only, no halo);
//   * Spec-only (no residual time-series generator);
//   * Time-only (no spectrum generator);
//   * Time-only+ (Time-only with an extra minmax generator — implemented
//     as a second residual LSTM generator trained in the same adversarial
//     game, i.e. "DoppelGANger with a wider context and explicit time-
//     domain loss" as the paper characterizes it).

#pragma once

#include <string>

#include "core/config.h"

namespace spectra::core {

SpectraGanConfig default_config();

SpectraGanConfig pixel_context_config();  // SpectraGAN-
SpectraGanConfig spec_only_config();
SpectraGanConfig time_only_config();
SpectraGanConfig time_only_plus_config();

// Lookup by the names used in the paper's tables; throws on unknown name.
SpectraGanConfig variant_config(const std::string& name);

}  // namespace spectra::core
