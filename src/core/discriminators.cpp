#include "core/discriminators.h"

#include "util/error.h"

namespace spectra::core {

SpectrumDiscriminator::SpectrumDiscriminator(const SpectraGanConfig& config, Rng& rng)
    : spectrum_size_(2 * config.spectrum_bins * config.patch.traffic_h * config.patch.traffic_w),
      hidden_size_(config.hidden_channels * config.patch.traffic_h * config.patch.traffic_w),
      mlp_({spectrum_size_ + hidden_size_, config.disc_mlp_hidden, config.disc_mlp_hidden, 1},
           nn::Activation::kLeakyRelu, nn::Activation::kNone, rng) {
  register_child(mlp_);
}

nn::Var SpectrumDiscriminator::forward(const nn::Var& spectrum, const nn::Var& hidden) const {
  const long batch = spectrum.value().dim(0);
  nn::Var spec_flat = nn::reshape(spectrum, {batch, spectrum_size_});
  nn::Var hidden_flat = nn::reshape(hidden, {batch, hidden_size_});
  return mlp_.forward(nn::concat_axis({spec_flat, hidden_flat}, /*axis=*/1));
}

TimeDiscriminator::TimeDiscriminator(const SpectraGanConfig& config, Rng& rng)
    : pixels_(config.patch.traffic_h * config.patch.traffic_w),
      stride_(config.disc_time_stride),
      cond_input_(config.hidden_channels * pixels_),
      condition_(cond_input_, config.cond_dim, rng),
      cell_(pixels_ + config.cond_dim, config.lstm_hidden, rng),
      head_(config.lstm_hidden, 1, rng) {
  register_child(condition_);
  register_child(cell_);
  register_child(head_);
}

nn::Var TimeDiscriminator::forward(const nn::Var& traffic, const nn::Var& hidden) const {
  SG_CHECK(traffic.value().rank() == 3, "TimeDiscriminator expects [B, T, P]");
  const long batch = traffic.value().dim(0);
  const long steps = traffic.value().dim(1);
  SG_CHECK(traffic.value().dim(2) == pixels_, "TimeDiscriminator pixel count mismatch");

  nn::Var cond =
      nn::vtanh(condition_.forward(nn::reshape(hidden, {batch, cond_input_})));

  nn::LstmState state = cell_.initial_state(batch);
  nn::Var logit_sum;
  long counted = 0;
  // Critiquing every stride_-th step keeps the full temporal span in view
  // at a fraction of the recurrent cost.
  for (long t = 0; t < steps; t += stride_) {
    nn::Var x_t = nn::reshape(nn::slice_axis(traffic, /*axis=*/1, t, 1), {batch, pixels_});
    state = cell_.step(nn::concat_axis({x_t, cond}, /*axis=*/1), state);
    nn::Var logit_t = head_.forward(state.h);
    logit_sum = logit_sum.defined() ? nn::add(logit_sum, logit_t) : logit_t;
    ++counted;
  }
  return nn::mul_scalar(logit_sum, 1.0f / static_cast<float>(counted));
}

}  // namespace spectra::core
