// Whole-city generation (§2.2.4): sliding-window patches, shared noise
// across all patches, per-pixel overlap averaging (Eq. 2), and k-multiple
// frequency expansion for horizons beyond the training length.

#include <limits>

#include "core/fourier_bridge.h"
#include "core/trainer.h"
#include "nn/init.h"
#include "util/error.h"

namespace spectra::core {

geo::CityTensor SpectraGan::generate_city(const geo::ContextTensor& context, long steps,
                                          Rng& rng) const {
  SG_CHECK(context.steps() == config_.context_channels,
           "context channel count does not match the model");
  SG_CHECK(steps > 0 && steps % config_.train_steps == 0,
           "steps must be a positive multiple of the training window (k-multiple expansion)");
  const long expand_k = steps / config_.train_steps;

  const geo::PatchSpec& spec = config_.patch;
  const std::vector<geo::PatchWindow> windows =
      geo::enumerate_windows(context.height(), context.width(), spec);

  // Shared noise across every patch of the city (§2.2.4): independent
  // noise plus overlap averaging would converge to the expected traffic
  // and oversmooth the maps.
  const nn::Tensor shared_noise = nn::init::gaussian(
      {1, config_.noise_channels, spec.traffic_h, spec.traffic_w}, 1.0f, rng);

  geo::OverlapAccumulator accumulator(steps, context.height(), context.width());
  const long pixels = spec.traffic_h * spec.traffic_w;

  nn::InferenceGuard no_grad;
  constexpr std::size_t kChunk = 16;  // bound peak memory of the forward pass
  for (std::size_t begin = 0; begin < windows.size(); begin += kChunk) {
    const std::size_t end = std::min(begin + kChunk, windows.size());
    const long n = static_cast<long>(end - begin);

    nn::Tensor ctx_batch({n, config_.context_channels, spec.context_h, spec.context_w});
    for (long b = 0; b < n; ++b) {
      const std::vector<float> patch =
          geo::extract_context_patch(context, windows[begin + static_cast<std::size_t>(b)], spec);
      std::copy(patch.begin(), patch.end(),
                ctx_batch.data() + b * static_cast<long>(patch.size()));
    }
    nn::Tensor noise_batch({n, config_.noise_channels, spec.traffic_h, spec.traffic_w});
    for (long b = 0; b < n; ++b) {
      std::copy(shared_noise.data(), shared_noise.data() + shared_noise.numel(),
                noise_batch.data() + b * shared_noise.numel());
    }

    const GeneratorOutput out = generator_forward(
        nn::Var::constant(std::move(ctx_batch)), nn::Var::constant(std::move(noise_batch)), steps,
        expand_k);
    const nn::Tensor& traffic = out.traffic.value();  // [n, steps, P]

    std::vector<float> patch(static_cast<std::size_t>(steps * pixels));
    for (long b = 0; b < n; ++b) {
      for (long t = 0; t < steps; ++t) {
        for (long p = 0; p < pixels; ++p) {
          patch[static_cast<std::size_t>(t * pixels + p)] = traffic[(b * steps + t) * pixels + p];
        }
      }
      accumulator.add_patch(windows[begin + static_cast<std::size_t>(b)], spec, patch);
    }
  }

  geo::CityTensor city = accumulator.finalize();
  city.clamp(0.0, std::numeric_limits<double>::infinity());
  return city;
}

}  // namespace spectra::core
