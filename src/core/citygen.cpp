// Whole-city generation (§2.2.4): sliding-window patches, shared noise
// across all patches, per-pixel overlap averaging (Eq. 2), and k-multiple
// frequency expansion for horizons beyond the training length.
//
// Two sewing paths share one patch-production engine
// (for_each_generated_patch): the streaming path finalizes rows strip by
// strip through a RowSink in O(traffic_h x T x W) resident memory
// (DESIGN §6f, bench_megacity), and the dense path materializes the full
// canvas — kept as the determinism oracle the equality tests compare
// against. Both replay accumulation serially in window order, so output
// is bitwise independent of thread count and identical across paths.

#include <algorithm>
#include <limits>

#include "core/trainer.h"
#include "geo/strip_accumulator.h"
#include "nn/init.h"
#include "obs/profile.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace spectra::core {

namespace {

// The model contract is non-negative traffic; the dense path clamps the
// finished canvas, the streaming path clamps each row as it is emitted —
// the same std::clamp per value, so the paths stay bitwise equal.
class ClampRowSink : public geo::RowSink {
 public:
  explicit ClampRowSink(geo::RowSink& inner) : inner_(inner) {}

  void consume_row(long row, const std::vector<double>& values) override {
    buf_.assign(values.begin(), values.end());
    for (double& v : buf_) v = std::clamp(v, 0.0, std::numeric_limits<double>::infinity());
    inner_.consume_row(row, buf_);
  }

 private:
  geo::RowSink& inner_;
  std::vector<double> buf_;
};

}  // namespace

void SpectraGan::for_each_generated_patch(
    const geo::ContextTensor& context, long steps, Rng& rng,
    const std::function<void(const geo::PatchWindow&, const float*, std::size_t)>& consume)
    const {
  SG_CHECK(context.steps() == config_.context_channels,
           "context channel count does not match the model");
  SG_CHECK(steps > 0 && steps % config_.train_steps == 0,
           "steps must be a positive multiple of the training window (k-multiple expansion)");
  const long expand_k = steps / config_.train_steps;

  const geo::PatchSpec& spec = config_.patch;
  const std::vector<geo::PatchWindow> windows =
      geo::enumerate_windows(context.height(), context.width(), spec);

  // Shared noise across every patch of the city (§2.2.4): independent
  // noise plus overlap averaging would converge to the expected traffic
  // and oversmooth the maps.
  const nn::Tensor shared_noise = nn::init::gaussian(
      {1, config_.noise_channels, spec.traffic_h, spec.traffic_w}, 1.0f, rng);

  const long pixels = spec.traffic_h * spec.traffic_w;

  nn::InferenceGuard no_grad;
  constexpr std::size_t kChunk = 16;  // bound peak memory of the forward pass
  const std::size_t n_chunks = (windows.size() + kChunk - 1) / kChunk;

  // One chunk = one batched generator forward. Chunks are independent, so
  // groups of up to parallel_threads() chunks run concurrently (peak
  // memory stays bounded at threads x kChunk patches); the consumer below
  // then replays every patch in window order on this thread, keeping the
  // sewn city bitwise independent of thread count.
  const auto run_chunk = [&](std::size_t chunk) -> nn::Tensor {
    const std::size_t begin = chunk * kChunk;
    const std::size_t end = std::min(begin + kChunk, windows.size());
    const long n = static_cast<long>(end - begin);

    nn::Tensor ctx_batch({n, config_.context_channels, spec.context_h, spec.context_w});
    for (long b = 0; b < n; ++b) {
      const std::vector<float> patch =
          geo::extract_context_patch(context, windows[begin + static_cast<std::size_t>(b)], spec);
      std::copy(patch.begin(), patch.end(),
                ctx_batch.data() + b * static_cast<long>(patch.size()));
    }
    nn::Tensor noise_batch({n, config_.noise_channels, spec.traffic_h, spec.traffic_w});
    for (long b = 0; b < n; ++b) {
      std::copy(shared_noise.data(), shared_noise.data() + shared_noise.numel(),
                noise_batch.data() + b * shared_noise.numel());
    }

    const GeneratorOutput out = generator_forward(
        nn::Var::constant(std::move(ctx_batch)), nn::Var::constant(std::move(noise_batch)), steps,
        expand_k);
    return out.traffic.value();  // [n, steps, P]
  };

  const std::size_t group = std::max<std::size_t>(1, parallel_threads());
  for (std::size_t g0 = 0; g0 < n_chunks; g0 += group) {
    const std::size_t g1 = std::min(g0 + group, n_chunks);
    std::vector<nn::Tensor> chunk_traffic(g1 - g0);
    parallel_for(g1 - g0, /*grain=*/1, [&](std::size_t lo, std::size_t hi) {
      // InferenceGuard is thread-local: pool workers re-arm it so the
      // forward pass skips graph recording there too.
      nn::InferenceGuard worker_no_grad;
      for (std::size_t c = lo; c < hi; ++c) chunk_traffic[c] = run_chunk(g0 + c);
    });

    for (std::size_t c = 0; c < chunk_traffic.size(); ++c) {
      const nn::Tensor& traffic = chunk_traffic[c];
      const std::size_t begin = (g0 + c) * kChunk;
      const long n = traffic.dim(0);
      for (long b = 0; b < n; ++b) {
        // The [T, P] block of patch b is contiguous in the batched
        // output — hand it to the consumer in place, no scratch copy.
        consume(windows[begin + static_cast<std::size_t>(b)],
                traffic.data() + b * steps * pixels,
                static_cast<std::size_t>(steps * pixels));
      }
    }
  }
}

geo::CityTensor SpectraGan::generate_city(const geo::ContextTensor& context, long steps,
                                          Rng& rng) const {
  SG_PROFILE_SCOPE("core/generate_city");
  geo::CityTensorSink sink(steps, context.height(), context.width());
  generate_city_streamed(context, steps, rng, sink);
  return sink.take();
}

void SpectraGan::generate_city_streamed(const geo::ContextTensor& context, long steps, Rng& rng,
                                        geo::RowSink& sink,
                                        geo::OverlapAggregation aggregation) const {
  SG_PROFILE_SCOPE("core/generate_city_streamed");
  ClampRowSink clamped(sink);
  geo::StripAccumulator accumulator(steps, context.height(), context.width(), clamped,
                                    aggregation);
  for_each_generated_patch(
      context, steps, rng,
      [&](const geo::PatchWindow& window, const float* patch, std::size_t size) {
        accumulator.add_patch(window, config_.patch, patch, size);
      });
  accumulator.finish();
}

geo::CityTensor SpectraGan::generate_city_dense(const geo::ContextTensor& context, long steps,
                                                Rng& rng,
                                                geo::OverlapAggregation aggregation) const {
  SG_PROFILE_SCOPE("core/generate_city_dense");
  geo::OverlapAccumulator accumulator(steps, context.height(), context.width(), aggregation);
  for_each_generated_patch(
      context, steps, rng,
      [&](const geo::PatchWindow& window, const float* patch, std::size_t size) {
        accumulator.add_patch(window, config_.patch, patch, size);
      });
  geo::CityTensor city = accumulator.finalize();
  city.clamp(0.0, std::numeric_limits<double>::infinity());
  return city;
}

}  // namespace spectra::core
