// Whole-city generation (§2.2.4): sliding-window patches, shared noise
// across all patches, per-pixel overlap averaging (Eq. 2), and k-multiple
// frequency expansion for horizons beyond the training length.

#include <limits>

#include "core/fourier_bridge.h"
#include "core/trainer.h"
#include "nn/init.h"
#include "obs/profile.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace spectra::core {

geo::CityTensor SpectraGan::generate_city(const geo::ContextTensor& context, long steps,
                                          Rng& rng) const {
  SG_PROFILE_SCOPE("core/generate_city");
  SG_CHECK(context.steps() == config_.context_channels,
           "context channel count does not match the model");
  SG_CHECK(steps > 0 && steps % config_.train_steps == 0,
           "steps must be a positive multiple of the training window (k-multiple expansion)");
  const long expand_k = steps / config_.train_steps;

  const geo::PatchSpec& spec = config_.patch;
  const std::vector<geo::PatchWindow> windows =
      geo::enumerate_windows(context.height(), context.width(), spec);

  // Shared noise across every patch of the city (§2.2.4): independent
  // noise plus overlap averaging would converge to the expected traffic
  // and oversmooth the maps.
  const nn::Tensor shared_noise = nn::init::gaussian(
      {1, config_.noise_channels, spec.traffic_h, spec.traffic_w}, 1.0f, rng);

  geo::OverlapAccumulator accumulator(steps, context.height(), context.width());
  const long pixels = spec.traffic_h * spec.traffic_w;

  nn::InferenceGuard no_grad;
  constexpr std::size_t kChunk = 16;  // bound peak memory of the forward pass
  const std::size_t n_chunks = (windows.size() + kChunk - 1) / kChunk;

  // One chunk = one batched generator forward. Chunks are independent, so
  // groups of up to parallel_threads() chunks run concurrently (peak
  // memory stays bounded at threads x kChunk patches); the overlap
  // accumulation below then replays every patch in window order on this
  // thread, keeping the sewn city bitwise independent of thread count.
  const auto run_chunk = [&](std::size_t chunk) -> nn::Tensor {
    const std::size_t begin = chunk * kChunk;
    const std::size_t end = std::min(begin + kChunk, windows.size());
    const long n = static_cast<long>(end - begin);

    nn::Tensor ctx_batch({n, config_.context_channels, spec.context_h, spec.context_w});
    for (long b = 0; b < n; ++b) {
      const std::vector<float> patch =
          geo::extract_context_patch(context, windows[begin + static_cast<std::size_t>(b)], spec);
      std::copy(patch.begin(), patch.end(),
                ctx_batch.data() + b * static_cast<long>(patch.size()));
    }
    nn::Tensor noise_batch({n, config_.noise_channels, spec.traffic_h, spec.traffic_w});
    for (long b = 0; b < n; ++b) {
      std::copy(shared_noise.data(), shared_noise.data() + shared_noise.numel(),
                noise_batch.data() + b * shared_noise.numel());
    }

    const GeneratorOutput out = generator_forward(
        nn::Var::constant(std::move(ctx_batch)), nn::Var::constant(std::move(noise_batch)), steps,
        expand_k);
    return out.traffic.value();  // [n, steps, P]
  };

  const std::size_t group = std::max<std::size_t>(1, parallel_threads());
  std::vector<float> patch(static_cast<std::size_t>(steps * pixels));
  for (std::size_t g0 = 0; g0 < n_chunks; g0 += group) {
    const std::size_t g1 = std::min(g0 + group, n_chunks);
    std::vector<nn::Tensor> chunk_traffic(g1 - g0);
    parallel_for(g1 - g0, /*grain=*/1, [&](std::size_t lo, std::size_t hi) {
      // InferenceGuard is thread-local: pool workers re-arm it so the
      // forward pass skips graph recording there too.
      nn::InferenceGuard worker_no_grad;
      for (std::size_t c = lo; c < hi; ++c) chunk_traffic[c] = run_chunk(g0 + c);
    });

    for (std::size_t c = 0; c < chunk_traffic.size(); ++c) {
      const nn::Tensor& traffic = chunk_traffic[c];
      const std::size_t begin = (g0 + c) * kChunk;
      const long n = traffic.dim(0);
      for (long b = 0; b < n; ++b) {
        for (long t = 0; t < steps; ++t) {
          for (long p = 0; p < pixels; ++p) {
            patch[static_cast<std::size_t>(t * pixels + p)] = traffic[(b * steps + t) * pixels + p];
          }
        }
        accumulator.add_patch(windows[begin + static_cast<std::size_t>(b)], spec, patch);
      }
    }
  }

  geo::CityTensor city = accumulator.finalize();
  city.clamp(0.0, std::numeric_limits<double>::infinity());
  return city;
}

}  // namespace spectra::core
