// The SpectraGAN model: generator-side encoder E^G, spectrum generator
// G^s, residual time generator G^t, discriminator-side encoder E^R and
// critics R^s / R^t, with the adversarial + explicit-L1 training loop of
// Eq. 1 and whole-city generation (§2.2.4).

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/discriminators.h"
#include "core/encoder.h"
#include "core/spectrum_generator.h"
#include "core/time_generator.h"
#include "data/sampler.h"
#include "geo/city_tensor.h"
#include "geo/strip_accumulator.h"
#include "nn/optim.h"
#include "train/checkpoint.h"

namespace spectra::core {

struct TrainStats {
  long iterations = 0;
  long resumed_iteration = 0;  // 0 = fresh start; N = resumed after N completed iterations
  double final_d_loss = 0.0;
  double final_g_adv_loss = 0.0;
  double final_l1_loss = 0.0;
  double seconds = 0.0;

  // Per-iteration running histories (one entry per iteration run); the
  // final_* fields above are the last entries, kept for convenience.
  std::vector<double> d_loss_history;
  std::vector<double> g_adv_loss_history;
  std::vector<double> l1_loss_history;
  std::vector<double> grad_norm_d_history;  // pre-clip discriminator grad norm
  std::vector<double> grad_norm_g_history;  // pre-clip generator grad norm
  std::vector<double> iter_seconds_history;
};

class SpectraGan {
 public:
  SpectraGan(SpectraGanConfig config, std::uint64_t seed);

  // Run the full adversarial training loop on patches from `sampler`.
  // Checkpointing defaults to the SPECTRA_CKPT_* env knobs: when
  // SPECTRA_CKPT_DIR is set, the run first resumes from the newest valid
  // snapshot in that directory (corrupt ones are skipped) and then
  // snapshots the full training state — parameters, Adam moments and
  // step counts, the `rng` stream, iteration counter, and loss histories
  // — every SPECTRA_CKPT_EVERY iterations. A killed-and-resumed run
  // reproduces the uninterrupted loss trajectory and final parameters
  // bitwise (tests/checkpoint_test.cpp; CI checkpoint-gauntlet).
  TrainStats train(const data::PatchSampler& sampler, Rng& rng);
  TrainStats train(const data::PatchSampler& sampler, Rng& rng,
                   const train::CheckpointOptions& ckpt);

  // Generate a whole-city tensor of `steps` time steps for the given
  // context (steps must be a multiple of config.train_steps; longer
  // horizons use the k-multiple frequency expansion). Noise is shared
  // across patches (§2.2.4). Non-negative output. Thin wrapper over
  // generate_city_streamed with an in-memory CityTensorSink.
  geo::CityTensor generate_city(const geo::ContextTensor& context, long steps, Rng& rng) const;

  // Streaming whole-city generation (DESIGN §6f): identical forwards and
  // window-ordered accumulation to generate_city, but rows are finalized
  // strip by strip through `sink` the moment their last covering window
  // lands, so resident memory is O(traffic_h x steps x W) regardless of
  // grid height. Emitted rows are clamped non-negative, in strictly
  // increasing row order, t-major ([t * W + col]). Bitwise identical to
  // the dense path for any thread count.
  void generate_city_streamed(
      const geo::ContextTensor& context, long steps, Rng& rng, geo::RowSink& sink,
      geo::OverlapAggregation aggregation = geo::OverlapAggregation::kMean) const;

  // The legacy full-canvas path, retained as the determinism oracle: sews
  // the whole T x H x W city through a resident OverlapAccumulator.
  // tests/parallel_test.cpp pins streamed ≡ dense bitwise for mean and
  // median aggregation at 1 and 8 threads. Memory scales with city area —
  // use only at grid sizes that fit in RAM.
  geo::CityTensor generate_city_dense(
      const geo::ContextTensor& context, long steps, Rng& rng,
      geo::OverlapAggregation aggregation = geo::OverlapAggregation::kMean) const;

  const SpectraGanConfig& config() const { return config_; }

  std::vector<nn::Var> generator_parameters() const;
  std::vector<nn::Var> discriminator_parameters() const;

  // Parameter (de)serialization for pre-trained-model workflows.
  void save(const std::string& path) const;
  void load(const std::string& path);

 private:
  // One generator forward pass on a batch. Outputs are null Vars when the
  // corresponding component is disabled by the variant switches.
  struct GeneratorOutput {
    nn::Var spectrum;  // [B, 2*Fgen, P]
    nn::Var traffic;   // [B, T, P]
  };
  GeneratorOutput generator_forward(const nn::Var& context, const nn::Var& spatial_noise,
                                    long steps, long expand_k) const;

  // Shared §2.2.4 machinery behind both city paths: validate, enumerate
  // windows, draw the shared noise, run chunked generator forwards
  // (groups of parallel_threads() chunks fan out on the pool), then call
  // `consume(window, patch, size)` serially in enumerate_windows order —
  // the consumer choice (dense canvas vs strip band) is the only
  // difference between the paths, so their outputs cannot diverge.
  void for_each_generated_patch(
      const geo::ContextTensor& context, long steps, Rng& rng,
      const std::function<void(const geo::PatchWindow&, const float*, std::size_t)>& consume)
      const;

  nn::Tensor sample_noise(long batch, Rng& rng) const;

  SpectraGanConfig config_;
  Rng model_rng_;

  // Generator side.
  std::unique_ptr<ContextEncoder> encoder_g_;
  std::unique_ptr<SpectrumGenerator> spectrum_gen_;
  std::unique_ptr<TimeGenerator> time_gen_;
  std::unique_ptr<TimeGenerator> time_gen_extra_;  // Time-only+ ablation

  // Discriminator side.
  std::unique_ptr<ContextEncoder> encoder_r_;
  std::unique_ptr<SpectrumDiscriminator> disc_s_;
  std::unique_ptr<TimeDiscriminator> disc_t_;
};

}  // namespace spectra::core
