// Residual time-series generator G^t (§2.2.2): a batched LSTM driven by
// a conditioning vector distilled from the hidden context representation
// and the noise, emitting the non-periodic residual traffic of every
// pixel of the patch at each step (Fig. 1f).

#pragma once

#include "core/config.h"
#include "nn/layers.h"
#include "nn/lstm.h"

namespace spectra::core {

// Per-step inputs for conditioned recurrent generation: each step's input
// is [cond, sin/cos(2 pi t / day), sin/cos(2 pi t / week)]. The explicit
// clock mirrors DoppelGANger's batched-step conditioning and lets the
// recurrent generators lock onto circadian phase in few iterations;
// periodicity *content* still has to be learned.
// `include_week=false` zeroes the weekly phase features: used by the
// RNN-only baselines, whose inability to track long-horizon structure is
// precisely the weakness SpectraGAN's spectrum branch addresses (§2.1.1);
// handing them the weekly clock would erase the effect under study.
std::vector<nn::Var> time_encoded_inputs(const nn::Var& cond, long steps, long steps_per_day,
                                         bool include_week = true);

// Number of time-encoding features appended per step.
inline constexpr long kTimeFeatures = 4;

class TimeGenerator : public nn::Module {
 public:
  TimeGenerator(const SpectraGanConfig& config, Rng& rng);

  // hidden: [B, C_h, Ht, Wt]; noise: [B, Z, Ht, Wt].
  // Returns the residual traffic [B, steps, P] with P = Ht*Wt.
  nn::Var forward(const nn::Var& hidden, const nn::Var& noise, long steps) const;

 private:
  long pixels_;         // P
  long steps_per_day_;  // phase reference for the time encoding
  long cond_input_;     // flattened hidden + noise size
  nn::Linear condition_;  // distill to cond_dim
  nn::Lstm lstm_;
};

}  // namespace spectra::core
