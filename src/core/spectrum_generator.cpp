#include "core/spectrum_generator.h"

namespace spectra::core {

SpectrumGenerator::SpectrumGenerator(const SpectraGanConfig& config, Rng& rng)
    : output_channels_(2 * config.spectrum_bins),
      conv1_(config.hidden_channels + config.noise_channels, config.spectrum_mid_channels, 3,
             nn::Conv2dSpec{.stride = 1, .padding = 1}, rng),
      conv2_(config.spectrum_mid_channels, output_channels_, 3,
             nn::Conv2dSpec{.stride = 1, .padding = 1}, rng) {
  register_child(conv1_);
  register_child(conv2_);
}

nn::Var SpectrumGenerator::forward(const nn::Var& hidden, const nn::Var& noise) const {
  nn::Var input = nn::concat_axis({hidden, noise}, /*axis=*/1);
  nn::Var mid = nn::leaky_relu(conv1_.forward(input));
  // Linear output: spectra are signed and unbounded.
  return conv2_.forward(mid);
}

}  // namespace spectra::core
