#include "core/config.h"

#include "util/error.h"

namespace spectra::core {

void SpectraGanConfig::validate() const {
  patch.validate();
  SG_CHECK(context_channels > 0, "context_channels must be positive");
  SG_CHECK(train_steps >= 8, "train_steps too small");
  SG_CHECK(steps_per_day > 0 && train_steps % steps_per_day == 0,
           "train_steps must be a multiple of steps_per_day");
  SG_CHECK(hidden_channels > 0 && noise_channels >= 0, "invalid channel counts");
  SG_CHECK(spectrum_bins >= 2 && spectrum_bins <= full_bins(),
           "spectrum_bins must be in [2, train_steps/2+1]");
  SG_CHECK(lstm_hidden > 0 && cond_dim > 0, "invalid recurrent sizes");
  SG_CHECK(mask_quantile > 0.0f && mask_quantile < 1.0f, "mask_quantile must be in (0,1)");
  SG_CHECK(lambda_l1 >= 0.0f, "lambda_l1 must be non-negative");
  SG_CHECK(use_spectrum_generator || use_time_generator,
           "at least one of spectrum/time generators must be enabled");
  SG_CHECK(iterations > 0 && batch > 0, "invalid training plan");
}

}  // namespace spectra::core
