// SpectraGAN hyperparameters (§2.2) and their scaled-down defaults.
//
// The architecture follows the paper exactly; sizes are calibrated for
// single-core CPU training (DESIGN.md §2). One deliberate engineering
// choice is documented here: the spectrum generator emits only the first
// `spectrum_bins` rFFT bins instead of all T/2+1. The significant
// components of mobile traffic all live at low frequencies (Fig. 1d: 1/w,
// 2/w, 1/d, 2/d, 3/d cycles), so truncating the generated band loses
// nothing the masked-L1 target would keep, and the residual time-series
// generator owns the high-frequency remainder by design.

#pragma once

#include <cstdint>

#include "geo/patching.h"

namespace spectra::core {

struct SpectraGanConfig {
  // --- geometry (§2.2.1) ---
  geo::PatchSpec patch{.traffic_h = 4, .traffic_w = 4, .context_h = 8, .context_w = 8, .stride = 2};
  long context_channels = 27;  // C
  long train_steps = 168;      // T: one week of hourly steps (§4.1)
  long steps_per_day = 24;     // phase reference for recurrent time encodings

  // --- architecture ---
  long hidden_channels = 16;  // C_h of the encoder output
  long encoder_mid_channels = 24;
  long noise_channels = 4;    // Z per hidden spatial location
  long spectrum_bins = 28;    // generated rFFT bins (see header comment)
  long spectrum_mid_channels = 32;
  long lstm_hidden = 24;      // G^t / R^t hidden width
  long cond_dim = 24;         // conditioning vector distilled from h for LSTMs
  long disc_mlp_hidden = 48;  // R^s width
  long disc_time_stride = 2;  // R^t critiques every k-th step (cost knob)

  // --- losses (Eq. 1) ---
  float lambda_l1 = 2.0f;     // lambda (paper: 0.5; raised for the CPU-scale
                              // iteration budget and normalized-spectrum units)
  float mask_quantile = 0.75f;  // q

  // --- variant switches (ablations, §4.2) ---
  bool use_spectrum_generator = true;   // off => Time-only
  bool use_time_generator = true;       // off => Spec-only
  bool extra_time_generator = false;    // Time-only+ 's extra minmax generator

  // --- training ---
  long iterations = 400;
  long batch = 6;
  float lr_generator = 2e-3f;
  float lr_discriminator = 1e-3f;
  float grad_clip = 5.0f;
  std::uint64_t seed = 17;

  // Number of rFFT bins of a length-`train_steps` signal.
  long full_bins() const { return train_steps / 2 + 1; }

  void validate() const;
};

}  // namespace spectra::core
