#include "core/losses.h"

#include "dsp/spectrum.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace spectra::core {

nn::Tensor context_tensor(const data::PatchBatch& batch) {
  return nn::Tensor({batch.batch, batch.channels, batch.context_h, batch.context_w},
                    batch.context);
}

nn::Tensor traffic_tensor(const data::PatchBatch& batch) {
  return nn::Tensor({batch.batch, batch.steps, batch.traffic_h * batch.traffic_w}, batch.traffic);
}

namespace {

template <typename BinFilter>
nn::Tensor spectrum_with_filter(const nn::Tensor& traffic, long f_gen, BinFilter filter) {
  SG_CHECK(traffic.rank() == 3, "batch_spectrum expects [B, T, P]");
  const long B = traffic.dim(0);
  const long T = traffic.dim(1);
  const long P = traffic.dim(2);
  SG_CHECK(f_gen >= 1 && f_gen <= T / 2 + 1, "f_gen out of range");

  nn::Tensor out({B, 2 * f_gen, P});
  // One rfft per (b, p) series; the flattened B*P axis chunks over the
  // shared pool with disjoint writes into `out` (bitwise deterministic).
  parallel_for(
      static_cast<std::size_t>(B * P), /*grain=*/16,
      [&](std::size_t begin, std::size_t end) {
        std::vector<double> series(static_cast<std::size_t>(T));
        for (std::size_t bp = begin; bp < end; ++bp) {
          const long b = static_cast<long>(bp) / P;
          const long p = static_cast<long>(bp) % P;
          for (long t = 0; t < T; ++t) {
            series[static_cast<std::size_t>(t)] = traffic[(b * T + t) * P + p];
          }
          std::vector<dsp::Complex> spec = dsp::rfft(series);
          spec.resize(static_cast<std::size_t>(f_gen));
          filter(spec);
          // Normalized-spectrum convention shared with irfft_bridge: targets
          // are Y/T so the spectrum L1 term is commensurate with the time L1.
          for (dsp::Complex& c : spec) c /= static_cast<double>(T);
          for (long i = 0; i < f_gen; ++i) {
            out[(b * 2 * f_gen + 2 * i) * P + p] =
                static_cast<float>(spec[static_cast<std::size_t>(i)].real());
            out[(b * 2 * f_gen + 2 * i + 1) * P + p] =
                static_cast<float>(spec[static_cast<std::size_t>(i)].imag());
          }
        }
      });
  return out;
}

}  // namespace

nn::Tensor batch_spectrum(const nn::Tensor& traffic, long f_gen) {
  return spectrum_with_filter(traffic, f_gen, [](std::vector<dsp::Complex>&) {});
}

nn::Tensor masked_spectrum_target(const nn::Tensor& traffic, long f_gen, double q) {
  SG_CHECK(q > 0.0 && q < 1.0, "mask quantile must be in (0,1)");
  return spectrum_with_filter(traffic, f_gen, [q](std::vector<dsp::Complex>& spec) {
    spec = dsp::quantile_mask(spec, q);
  });
}

}  // namespace spectra::core
