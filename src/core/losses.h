// Loss plumbing for Eq. 1: the masked-FFT target y^q = M^q(FFT(x)) that
// supervises the spectrum generator, and batch conversion helpers between
// the sampler's float buffers and nn::Tensors.

#pragma once

#include "core/config.h"
#include "data/sampler.h"
#include "nn/tensor.h"

namespace spectra::core {

// Wrap the sampler's context buffer as [B, C, Hc, Wc].
nn::Tensor context_tensor(const data::PatchBatch& batch);

// Wrap the sampler's traffic buffer as [B, T, P] (pixels flattened).
nn::Tensor traffic_tensor(const data::PatchBatch& batch);

// rFFT of each pixel series of a [B, T, P] traffic tensor, truncated to
// `f_gen` bins, interleaved re/im: [B, 2*f_gen, P].
nn::Tensor batch_spectrum(const nn::Tensor& traffic, long f_gen);

// The masked target y^q (§2.2.3): per pixel series, bins whose magnitude
// is <= the q-quantile of that series' (truncated) magnitudes are zeroed.
nn::Tensor masked_spectrum_target(const nn::Tensor& traffic, long f_gen, double q);

}  // namespace spectra::core
