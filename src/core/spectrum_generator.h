// Spectrum generator G^s (§2.2.2): a CNN mapping the hidden context
// representation plus spatial noise to per-pixel traffic spectra —
// interleaved re/im values for the generated low-frequency band.

#pragma once

#include "core/config.h"
#include "nn/layers.h"

namespace spectra::core {

class SpectrumGenerator : public nn::Module {
 public:
  SpectrumGenerator(const SpectraGanConfig& config, Rng& rng);

  // hidden: [B, C_h, Ht, Wt]; noise: [B, Z, Ht, Wt].
  // Returns spectra [B, 2*Fgen, Ht, Wt].
  nn::Var forward(const nn::Var& hidden, const nn::Var& noise) const;

  long output_channels() const { return output_channels_; }

 private:
  long output_channels_;  // 2 * spectrum_bins
  nn::Conv2dLayer conv1_;
  nn::Conv2dLayer conv2_;
};

}  // namespace spectra::core
