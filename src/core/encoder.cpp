#include "core/encoder.h"

#include "util/error.h"

namespace spectra::core {

namespace {
// Reduction factor from context patch to traffic patch. 2 for the full
// model (wide context, stride-2 conv), 1 for the pixel-context ablation
// SpectraGAN- (§4.2) where Hc == Ht.
long reduction_factor(const SpectraGanConfig& config) {
  const long fh = config.patch.context_h / config.patch.traffic_h;
  const long fw = config.patch.context_w / config.patch.traffic_w;
  SG_CHECK(fh == fw && (fh == 1 || fh == 2) &&
               config.patch.context_h == fh * config.patch.traffic_h &&
               config.patch.context_w == fw * config.patch.traffic_w,
           "ContextEncoder expects context patch = 1x or 2x the traffic patch");
  return fh;
}
}  // namespace

ContextEncoder::ContextEncoder(const SpectraGanConfig& config, Rng& rng)
    : hidden_channels_(config.hidden_channels),
      conv1_(config.context_channels, config.encoder_mid_channels, 3,
             nn::Conv2dSpec{.stride = 1, .padding = 1}, rng),
      conv2_(config.encoder_mid_channels, config.hidden_channels, 3,
             nn::Conv2dSpec{.stride = reduction_factor(config), .padding = 1}, rng) {
  register_child(conv1_);
  register_child(conv2_);
}

nn::Var ContextEncoder::forward(const nn::Var& context) const {
  nn::Var h = nn::leaky_relu(conv1_.forward(context));
  return nn::leaky_relu(conv2_.forward(h));
}

}  // namespace spectra::core
