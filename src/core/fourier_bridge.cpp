#include "core/fourier_bridge.h"

#include "dsp/fft.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace spectra::core {

using nn::Tensor;
using nn::Var;

Var irfft_bridge(const Var& spectrum, long base_steps, long expand_k) {
  SG_TRACE_SPAN("core/irfft_bridge");
  SG_PROFILE_SCOPE("core/irfft_bridge");
  static obs::Counter& calls = obs::Registry::instance().counter("fourier_bridge.calls");
  static obs::Histogram& seconds =
      obs::Registry::instance().histogram("fourier_bridge.seconds");
  calls.inc();
  obs::ScopedTimer timer(seconds);
  const Tensor& spec = spectrum.value();
  SG_CHECK(spec.rank() == 3, "irfft_bridge expects [B, 2*Fgen, P]");
  SG_CHECK(base_steps >= 2 && expand_k >= 1, "invalid irfft_bridge geometry");
  const long B = spec.dim(0);
  const long two_f = spec.dim(1);
  const long P = spec.dim(2);
  SG_CHECK(two_f % 2 == 0, "spectrum channel count must be even (re/im interleaved)");
  const long f_gen = two_f / 2;
  SG_CHECK(f_gen <= base_steps / 2 + 1, "more generated bins than the base signal supports");

  const long t_out = expand_k * base_steps;
  const long f_out = t_out / 2 + 1;
  // Normalized-spectrum convention: the generator emits Y/T (so its
  // outputs are O(signal) rather than O(signal * T)); the bridge restores
  // the unnormalized bins and applies the k-multiple energy scale.
  const double k_scale = static_cast<double>(expand_k) * static_cast<double>(base_steps);

  Tensor out({B, t_out, P});
  // Each (b, p) series is independent; chunk the flattened B*P axis over
  // the shared pool. Writes into `out` are disjoint per (b, p), so the
  // result is bitwise identical for any thread count.
  parallel_for(
      static_cast<std::size_t>(B * P), /*grain=*/16,
      [&](std::size_t begin, std::size_t end) {
        std::vector<dsp::Complex> full(static_cast<std::size_t>(f_out));
        for (std::size_t bp = begin; bp < end; ++bp) {
          const long b = static_cast<long>(bp) / P;
          const long p = static_cast<long>(bp) % P;
          std::fill(full.begin(), full.end(), dsp::Complex(0.0, 0.0));
          for (long i = 0; i < f_gen; ++i) {
            // Channel layout: [re_0, im_0, re_1, im_1, ...] over axis 1.
            const double re = spec[(b * two_f + 2 * i) * P + p];
            const double im = spec[(b * two_f + 2 * i + 1) * P + p];
            full[static_cast<std::size_t>(expand_k * i)] = dsp::Complex(re, im) * k_scale;
          }
          const std::vector<double> series = dsp::irfft(full, t_out);
          for (long t = 0; t < t_out; ++t) {
            out[(b * t_out + t) * P + p] = static_cast<float>(series[static_cast<std::size_t>(t)]);
          }
        }
      });

  return Var::make_op(
      std::move(out), {spectrum},
      [B, two_f, f_gen, P, t_out, expand_k, k_scale](const Tensor& g, std::vector<Var>& parents) {
        if (!parents[0].requires_grad()) return;
        SG_TRACE_SPAN("core/irfft_bridge_backward");
        SG_PROFILE_SCOPE("core/irfft_bridge_backward");
        Tensor& gs = parents[0].grad_storage();
        // Gradient writes touch only the (b, p) column being processed,
        // so the flattened B*P axis parallelizes with disjoint writes.
        parallel_for(
            static_cast<std::size_t>(B * P), /*grain=*/16,
            [&](std::size_t begin, std::size_t end) {
              std::vector<double> series(static_cast<std::size_t>(t_out));
              for (std::size_t bp = begin; bp < end; ++bp) {
                const long b = static_cast<long>(bp) / P;
                const long p = static_cast<long>(bp) % P;
                for (long t = 0; t < t_out; ++t) {
                  series[static_cast<std::size_t>(t)] = g[(b * t_out + t) * P + p];
                }
                const std::vector<dsp::Complex> grad_spec = dsp::rfft(series);
                for (long i = 0; i < f_gen; ++i) {
                  const long bin = expand_k * i;
                  // Hermitian weighting: interior bins appear twice in the
                  // inverse transform, DC and Nyquist once.
                  const bool edge = (bin == 0) || (2 * bin == t_out);
                  const double c = (edge ? 1.0 : 2.0) * k_scale / static_cast<double>(t_out);
                  const dsp::Complex gb = grad_spec[static_cast<std::size_t>(bin)];
                  gs[(b * two_f + 2 * i) * P + p] += static_cast<float>(c * gb.real());
                  if (!edge) {
                    gs[(b * two_f + 2 * i + 1) * P + p] += static_cast<float>(c * gb.imag());
                  }
                }
              }
            });
      });
}

}  // namespace spectra::core
