#include "core/time_generator.h"

#include <cmath>

#include "util/error.h"

namespace spectra::core {

std::vector<nn::Var> time_encoded_inputs(const nn::Var& cond, long steps, long steps_per_day,
                                         bool include_week) {
  SG_CHECK(steps > 0 && steps_per_day > 0, "invalid time encoding geometry");
  const long batch = cond.value().dim(0);
  std::vector<nn::Var> inputs;
  inputs.reserve(static_cast<std::size_t>(steps));
  for (long t = 0; t < steps; ++t) {
    const double day_phase = 2.0 * M_PI * static_cast<double>(t % steps_per_day) /
                             static_cast<double>(steps_per_day);
    const double week_phase = 2.0 * M_PI * static_cast<double>(t % (7 * steps_per_day)) /
                              static_cast<double>(7 * steps_per_day);
    nn::Tensor clock({batch, kTimeFeatures});
    for (long b = 0; b < batch; ++b) {
      clock[b * kTimeFeatures + 0] = static_cast<float>(std::sin(day_phase));
      clock[b * kTimeFeatures + 1] = static_cast<float>(std::cos(day_phase));
      clock[b * kTimeFeatures + 2] = include_week ? static_cast<float>(std::sin(week_phase)) : 0.0f;
      clock[b * kTimeFeatures + 3] = include_week ? static_cast<float>(std::cos(week_phase)) : 0.0f;
    }
    inputs.push_back(nn::concat_axis({cond, nn::Var::constant(std::move(clock))}, 1));
  }
  return inputs;
}

TimeGenerator::TimeGenerator(const SpectraGanConfig& config, Rng& rng)
    : pixels_(config.patch.traffic_h * config.patch.traffic_w),
      steps_per_day_(config.steps_per_day),
      cond_input_((config.hidden_channels + config.noise_channels) * pixels_),
      condition_(cond_input_, config.cond_dim, rng),
      lstm_(config.cond_dim + kTimeFeatures, config.lstm_hidden, pixels_, rng,
            nn::Activation::kNone) {
  register_child(condition_);
  register_child(lstm_);
}

nn::Var TimeGenerator::forward(const nn::Var& hidden, const nn::Var& noise, long steps) const {
  SG_CHECK(steps > 0, "TimeGenerator requires steps > 0");
  const long batch = hidden.value().dim(0);
  nn::Var flat = nn::reshape(nn::concat_axis({hidden, noise}, /*axis=*/1), {batch, cond_input_});
  nn::Var cond = nn::vtanh(condition_.forward(flat));
  const std::vector<nn::Var> outputs =
      lstm_.forward(time_encoded_inputs(cond, steps, steps_per_day_));
  // [steps, B, P] -> [B, steps, P].
  return nn::transpose01(nn::stack0(outputs));
}

}  // namespace spectra::core
