// Adversarial critics (§2.2.3, Fig. 3b): a shared discriminator-side
// context encoder E^R feeding
//   * R^s — an MLP over the (masked) spectrum patch, and
//   * R^t — a batched LSTM over the time-domain patch,
// each emitting one real/fake logit per sample.

#pragma once

#include "core/config.h"
#include "core/encoder.h"
#include "nn/layers.h"
#include "nn/lstm.h"

namespace spectra::core {

class SpectrumDiscriminator : public nn::Module {
 public:
  SpectrumDiscriminator(const SpectraGanConfig& config, Rng& rng);

  // spectrum: [B, 2*Fgen, P]; hidden: [B, C_h, Ht, Wt]. Returns logits [B, 1].
  nn::Var forward(const nn::Var& spectrum, const nn::Var& hidden) const;

 private:
  long spectrum_size_;
  long hidden_size_;
  nn::Mlp mlp_;
};

class TimeDiscriminator : public nn::Module {
 public:
  TimeDiscriminator(const SpectraGanConfig& config, Rng& rng);

  // traffic: [B, T, P]; hidden: [B, C_h, Ht, Wt]. Returns logits [B, 1]
  // (mean of per-step critic outputs).
  nn::Var forward(const nn::Var& traffic, const nn::Var& hidden) const;

 private:
  long pixels_;
  long stride_;
  long cond_input_;
  nn::Linear condition_;
  nn::LSTMCell cell_;
  nn::Linear head_;
};

}  // namespace spectra::core
