#include "baselines/doppelganger.h"

#include "core/time_generator.h"

#include <limits>

#include "nn/init.h"
#include "nn/optim.h"
#include "util/error.h"

namespace spectra::baselines {

using nn::Var;

DoppelGanger::DoppelGanger(const core::SpectraGanConfig& config)
    : config_(config), model_rng_(config.seed ^ 0x64677232ULL) {
  config_.validate();
  const long C = config_.context_channels;
  embed_ = std::make_unique<nn::Mlp>(std::vector<long>{C + noise_dim_, config_.cond_dim, config_.cond_dim},
                                     nn::Activation::kLeakyRelu, nn::Activation::kTanh, model_rng_);
  gen_ = std::make_unique<nn::Lstm>(config_.cond_dim + core::kTimeFeatures,
                                    config_.lstm_hidden, 1, model_rng_,
                                    nn::Activation::kSigmoid);
  amp_ = std::make_unique<nn::Mlp>(std::vector<long>{C + noise_dim_, config_.cond_dim, 1},
                                   nn::Activation::kLeakyRelu, nn::Activation::kNone, model_rng_);
  embed_d_ = std::make_unique<nn::Mlp>(std::vector<long>{C, config_.cond_dim},
                                       nn::Activation::kNone, nn::Activation::kTanh, model_rng_);
  disc_cell_ = std::make_unique<nn::LSTMCell>(1 + config_.cond_dim, config_.lstm_hidden, model_rng_);
  disc_head_ = std::make_unique<nn::Linear>(config_.lstm_hidden, 1, model_rng_);
}

Var DoppelGanger::condition(const Var& pixel_context, const Var& noise) const {
  return embed_->forward(nn::concat_axis({pixel_context, noise}, 1));
}

Var DoppelGanger::series_forward(const Var& cond, long steps) const {
  // [steps][B,1] -> [B, steps].
  const std::vector<Var> outputs =
      gen_->forward(core::time_encoded_inputs(cond, steps, config_.steps_per_day,
                                              /*include_week=*/false));
  return nn::reshape(nn::transpose01(nn::stack0(outputs)),
                     {cond.value().dim(0), steps});
}

Var DoppelGanger::amplitude_forward(const Var& pixel_context, const Var& amp_noise) const {
  return nn::softplus(amp_->forward(nn::concat_axis({pixel_context, amp_noise}, 1)));
}

namespace {
// Broadcast a [B,1] column over steps: amp * ones(1,T) -> [B,T].
Var tile_columns(const Var& column, long steps) {
  return nn::matmul(column, nn::Var::constant(nn::Tensor::full({1, steps}, 1.0f)));
}
}  // namespace

namespace {

// Collect (context vector, traffic series) for every land pixel of the
// training cities.
struct PixelPool {
  std::vector<std::vector<float>> contexts;  // [P][C]
  std::vector<std::vector<float>> series;    // [P][T]
};

PixelPool build_pool(const data::CountryDataset& dataset,
                     const std::vector<std::size_t>& train_cities, long train_steps) {
  PixelPool pool;
  for (std::size_t index : train_cities) {
    const data::City& city = dataset.cities.at(index);
    const long C = city.context.steps();
    for (long i = 0; i < city.height(); ++i) {
      for (long j = 0; j < city.width(); ++j) {
        std::vector<float> series(static_cast<std::size_t>(train_steps));
        double total = 0.0;
        for (long t = 0; t < train_steps; ++t) {
          const double v = city.traffic.at(t, i, j);
          series[static_cast<std::size_t>(t)] = static_cast<float>(v);
          total += v;
        }
        if (total <= 1e-9) continue;  // skip sea / dead pixels
        std::vector<float> ctx(static_cast<std::size_t>(C));
        for (long c = 0; c < C; ++c) ctx[static_cast<std::size_t>(c)] = static_cast<float>(city.context.at(c, i, j));
        pool.contexts.push_back(std::move(ctx));
        pool.series.push_back(std::move(series));
      }
    }
  }
  SG_CHECK(!pool.series.empty(), "DoppelGANger: no active pixels in training data");
  return pool;
}

}  // namespace

void DoppelGanger::fit(const data::CountryDataset& dataset,
                       const std::vector<std::size_t>& train_cities, long train_steps, Rng& rng) {
  const PixelPool pool = build_pool(dataset, train_cities, train_steps);
  const long C = config_.context_channels;
  const long B = config_.batch;

  std::vector<Var> g_params = embed_->parameters();
  for (const nn::Module* m : {static_cast<const nn::Module*>(gen_.get()),
                              static_cast<const nn::Module*>(amp_.get())}) {
    const std::vector<Var> sub = m->parameters();
    g_params.insert(g_params.end(), sub.begin(), sub.end());
  }
  std::vector<Var> d_params = embed_d_->parameters();
  for (const nn::Module* m : {static_cast<const nn::Module*>(disc_cell_.get()),
                              static_cast<const nn::Module*>(disc_head_.get())}) {
    const std::vector<Var> sub = m->parameters();
    d_params.insert(d_params.end(), sub.begin(), sub.end());
  }
  nn::Adam opt_g(g_params, config_.lr_generator, 0.5f, 0.999f);
  nn::Adam opt_d(d_params, config_.lr_discriminator, 0.5f, 0.999f);

  auto disc_logits = [&](const Var& series, const Var& cond_d) {
    nn::LstmState state = disc_cell_->initial_state(series.value().dim(0));
    Var logit_sum;
    const long steps = series.value().dim(1);
    for (long t = 0; t < steps; ++t) {
      Var x_t = nn::slice_axis(series, 1, t, 1);  // [B,1]
      state = disc_cell_->step(nn::concat_axis({x_t, cond_d}, 1), state);
      Var logit = disc_head_->forward(state.h);
      logit_sum = logit_sum.defined() ? nn::add(logit_sum, logit) : logit;
    }
    return nn::mul_scalar(logit_sum, 1.0f / static_cast<float>(steps));
  };

  for (long it = 0; it < config_.iterations; ++it) {
    nn::Tensor ctx({B, C});
    nn::Tensor real({B, train_steps});
    for (long b = 0; b < B; ++b) {
      const std::size_t pick = rng.uniform_index(pool.series.size());
      std::copy(pool.contexts[pick].begin(), pool.contexts[pick].end(), ctx.data() + b * C);
      std::copy(pool.series[pick].begin(), pool.series[pick].end(),
                real.data() + b * train_steps);
    }
    // Real series and their per-series peaks (targets for the normalized
    // branch).
    nn::Tensor real_norm = real;
    for (long b = 0; b < B; ++b) {
      float peak = 1e-6f;
      for (long t = 0; t < train_steps; ++t) peak = std::max(peak, real[b * train_steps + t]);
      for (long t = 0; t < train_steps; ++t) real_norm[b * train_steps + t] /= peak;
    }
    Var context = Var::constant(std::move(ctx));
    Var real_series = Var::constant(std::move(real));
    Var real_normalized = Var::constant(std::move(real_norm));
    Var noise = Var::constant(nn::init::gaussian({B, noise_dim_}, 1.0f, rng));
    Var amp_noise = Var::constant(nn::init::gaussian({B, noise_dim_}, 1.0f, rng));

    Var fake_normalized = series_forward(condition(context, noise), train_steps);
    Var amp = amplitude_forward(context, amp_noise);
    Var fake_series = nn::mul(tile_columns(amp, train_steps), fake_normalized);

    {
      Var cond_d = embed_d_->forward(context);
      Var d_loss = nn::add(
          nn::bce_with_logits_const(disc_logits(real_series, cond_d), 1.0f),
          nn::bce_with_logits_const(disc_logits(Var::constant(fake_series.value()), cond_d), 0.0f));
      opt_d.zero_grad();
      d_loss.backward();
      opt_d.clip_grad_norm(config_.grad_clip);
      opt_d.step();
    }
    {
      Var cond_d = embed_d_->forward(context);
      // The original DoppelGANger trains adversarially only; a small L1
      // anchor on the *normalized* series (shape only — the amplitude
      // branch stays purely adversarial, as its min/max generator does)
      // stabilizes the scaled-down model. It is deliberately an order of
      // magnitude weaker than SpectraGAN's explicit loss: Eq. 1's strong
      // explicit supervision is part of SpectraGAN's contribution, not of
      // this baseline.
      Var g_loss = nn::add(nn::bce_with_logits_const(disc_logits(fake_series, cond_d), 1.0f),
                           nn::mul_scalar(nn::l1_loss(fake_normalized, real_normalized),
                                          0.1f * config_.lambda_l1));
      opt_g.zero_grad();
      g_loss.backward();
      opt_g.clip_grad_norm(config_.grad_clip);
      opt_g.step();
    }
  }
}

geo::CityTensor DoppelGanger::generate(const data::City& target, long steps, Rng& rng) {
  const long C = config_.context_channels;
  const long H = target.height();
  const long W = target.width();
  const long P = H * W;

  nn::InferenceGuard no_grad;

  geo::CityTensor out(steps, H, W);
  constexpr long kChunk = 128;  // pixels per forward pass
  for (long begin = 0; begin < P; begin += kChunk) {
    const long n = std::min(kChunk, P - begin);
    nn::Tensor ctx({n, C});
    for (long b = 0; b < n; ++b) {
      const long p = begin + b;
      for (long c = 0; c < C; ++c) {
        ctx[b * C + c] = static_cast<float>(target.context.at(c, p / W, p % W));
      }
    }
    // Independent noise per pixel: the source of DoppelGANger's spatial
    // incoherence on this task.
    Var context = Var::constant(std::move(ctx));
    Var noise = Var::constant(nn::init::gaussian({n, noise_dim_}, 1.0f, rng));
    Var amp_noise = Var::constant(nn::init::gaussian({n, noise_dim_}, 1.0f, rng));
    Var normalized = series_forward(condition(context, noise), steps);
    Var amp = amplitude_forward(context, amp_noise);
    for (long b = 0; b < n; ++b) {
      const long p = begin + b;
      const float a = amp.value()[b];
      for (long t = 0; t < steps; ++t) {
        out.at(t, p / W, p % W) = std::max(0.0f, a * normalized.value()[b * steps + t]);
      }
    }
  }
  return out;
}

}  // namespace spectra::baselines
