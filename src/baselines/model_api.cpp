#include "baselines/model_api.h"

#include "baselines/conv3d_lstm.h"
#include "baselines/doppelganger.h"
#include "baselines/fdas.h"
#include "baselines/pix2pix.h"
#include "core/trainer.h"
#include "core/variants.h"
#include "util/error.h"

namespace spectra::baselines {

namespace {

// Adapts core::SpectraGan (any variant) to the TrafficGenerator API.
class SpectraGanGenerator : public TrafficGenerator {
 public:
  SpectraGanGenerator(const core::SpectraGanConfig& config, std::string display_name)
      : config_(config), display_name_(std::move(display_name)) {}

  std::string name() const override { return display_name_; }

  void fit(const data::CountryDataset& dataset, const std::vector<std::size_t>& train_cities,
           long train_steps, Rng& rng) override {
    core::SpectraGanConfig config = config_;
    config.train_steps = train_steps;
    model_ = std::make_unique<core::SpectraGan>(config, config.seed);
    data::PatchSampler sampler(dataset, train_cities, config.patch, 0, train_steps);
    model_->train(sampler, rng);
  }

  geo::CityTensor generate(const data::City& target, long steps, Rng& rng) override {
    SG_CHECK(model_ != nullptr, "SpectraGAN model not fitted");
    return model_->generate_city(target.context, steps, rng);
  }

 private:
  core::SpectraGanConfig config_;
  std::string display_name_;
  std::unique_ptr<core::SpectraGan> model_;
};

}  // namespace

std::unique_ptr<TrafficGenerator> make_spectragan(const core::SpectraGanConfig& config,
                                                  std::string display_name) {
  return std::make_unique<SpectraGanGenerator>(config, std::move(display_name));
}

std::unique_ptr<TrafficGenerator> make_model(const std::string& name,
                                             const core::SpectraGanConfig& base_config) {
  if (name == "FDAS") return std::make_unique<Fdas>();
  if (name == "Pix2Pix") return std::make_unique<Pix2Pix>(base_config);
  if (name == "DoppelGANger") return std::make_unique<DoppelGanger>(base_config);
  if (name == "Conv{3D+LSTM}") return std::make_unique<Conv3dLstm>(base_config);

  // SpectraGAN and its ablation variants keep the caller's training plan
  // (iterations/batch/seed) but take geometry/switches from the variant.
  core::SpectraGanConfig config = core::variant_config(name);
  config.iterations = base_config.iterations;
  config.batch = base_config.batch;
  config.seed = base_config.seed;
  config.train_steps = base_config.train_steps;
  return make_spectragan(config, name);
}

}  // namespace spectra::baselines
