// Common interface for every traffic generation model compared in the
// evaluation (§3.3): SpectraGAN (and its ablation variants), FDAS,
// Pix2Pix, DoppelGANger and Conv{3D+LSTM}. The leave-one-city-out
// protocol (eval/protocol.h) drives models exclusively through this API.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "data/dataset.h"
#include "util/rng.h"

namespace spectra::baselines {

class TrafficGenerator {
 public:
  virtual ~TrafficGenerator() = default;

  virtual std::string name() const = 0;

  // Train on the listed cities of `dataset`, using the first
  // `train_steps` time steps (the paper trains on one week, §4.1).
  virtual void fit(const data::CountryDataset& dataset,
                   const std::vector<std::size_t>& train_cities, long train_steps, Rng& rng) = 0;

  // Generate `steps` of synthetic traffic for the target city's context.
  virtual geo::CityTensor generate(const data::City& target, long steps, Rng& rng) = 0;
};

// SpectraGAN (or one of its ablation variants) behind the common API.
std::unique_ptr<TrafficGenerator> make_spectragan(const core::SpectraGanConfig& config,
                                                  std::string display_name = "SpectraGAN");

// Factory by the names used in the paper's tables: "SpectraGAN",
// "SpectraGAN-", "Spec-only", "Time-only", "Time-only+", "FDAS",
// "Pix2Pix", "DoppelGANger", "Conv{3D+LSTM}".
std::unique_ptr<TrafficGenerator> make_model(const std::string& name,
                                             const core::SpectraGanConfig& base_config);

}  // namespace spectra::baselines
