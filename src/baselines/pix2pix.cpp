#include "baselines/pix2pix.h"

#include <limits>

#include "data/sampler.h"
#include "nn/init.h"
#include "util/error.h"
#include "util/log.h"

namespace spectra::baselines {

using nn::Var;

Pix2Pix::Pix2Pix(const core::SpectraGanConfig& config) : config_(config), model_rng_(config.seed ^ 0x70697832ULL) {
  config_.validate();
  encoder_g_ = std::make_unique<core::ContextEncoder>(config_, model_rng_);
  head1_ = std::make_unique<nn::Conv2dLayer>(
      config_.hidden_channels + config_.noise_channels, config_.spectrum_mid_channels, 3,
      nn::Conv2dSpec{.stride = 1, .padding = 1}, model_rng_);
  head2_ = std::make_unique<nn::Conv2dLayer>(config_.spectrum_mid_channels, 1, 3,
                                             nn::Conv2dSpec{.stride = 1, .padding = 1}, model_rng_);
  encoder_r_ = std::make_unique<core::ContextEncoder>(config_, model_rng_);
  const long pixels = config_.patch.traffic_h * config_.patch.traffic_w;
  disc_ = std::make_unique<nn::Mlp>(
      std::vector<long>{pixels + config_.hidden_channels * pixels, config_.disc_mlp_hidden, 1},
      nn::Activation::kLeakyRelu, nn::Activation::kNone, model_rng_);
}

Var Pix2Pix::frame_forward(const Var& hidden, const Var& noise) const {
  Var mid = nn::leaky_relu(head1_->forward(nn::concat_axis({hidden, noise}, 1)));
  return head2_->forward(mid);  // linear; traffic clamped at generation
}

void Pix2Pix::fit(const data::CountryDataset& dataset, const std::vector<std::size_t>& train_cities,
                  long train_steps, Rng& rng) {
  data::PatchSampler sampler(dataset, train_cities, config_.patch, 0, train_steps);
  const long pixels = config_.patch.traffic_h * config_.patch.traffic_w;

  std::vector<Var> g_params = encoder_g_->parameters();
  for (const nn::Module* m : {static_cast<const nn::Module*>(head1_.get()),
                              static_cast<const nn::Module*>(head2_.get())}) {
    const std::vector<Var> sub = m->parameters();
    g_params.insert(g_params.end(), sub.begin(), sub.end());
  }
  std::vector<Var> d_params = encoder_r_->parameters();
  {
    const std::vector<Var> sub = disc_->parameters();
    d_params.insert(d_params.end(), sub.begin(), sub.end());
  }
  nn::Adam opt_g(g_params, config_.lr_generator, 0.5f, 0.999f);
  nn::Adam opt_d(d_params, config_.lr_discriminator, 0.5f, 0.999f);

  for (long it = 0; it < config_.iterations; ++it) {
    const data::PatchBatch batch = sampler.sample(config_.batch, rng);
    Var context = Var::constant(nn::Tensor(
        {batch.batch, batch.channels, batch.context_h, batch.context_w}, batch.context));

    // One random frame per sample from its [T, Ht, Wt] traffic patch.
    nn::Tensor frames({batch.batch, 1, batch.traffic_h, batch.traffic_w});
    for (long b = 0; b < batch.batch; ++b) {
      const long t = static_cast<long>(rng.uniform_index(static_cast<std::size_t>(batch.steps)));
      for (long p = 0; p < pixels; ++p) {
        frames[b * pixels + p] = batch.traffic[static_cast<std::size_t>((b * batch.steps + t) * pixels + p)];
      }
    }
    Var real_frame = Var::constant(std::move(frames));
    Var noise = Var::constant(nn::init::gaussian(
        {batch.batch, config_.noise_channels, batch.traffic_h, batch.traffic_w}, 1.0f, rng));

    Var fake_frame = frame_forward(encoder_g_->forward(context), noise);

    auto disc_logits = [&](const Var& frame, const Var& hidden_r) {
      Var flat_frame = nn::reshape(frame, {batch.batch, pixels});
      Var flat_hidden =
          nn::reshape(hidden_r, {batch.batch, config_.hidden_channels * pixels});
      return disc_->forward(nn::concat_axis({flat_frame, flat_hidden}, 1));
    };

    {
      Var hidden_r = encoder_r_->forward(context);
      Var d_loss = nn::add(
          nn::bce_with_logits_const(disc_logits(real_frame, hidden_r), 1.0f),
          nn::bce_with_logits_const(disc_logits(Var::constant(fake_frame.value()), hidden_r), 0.0f));
      opt_d.zero_grad();
      d_loss.backward();
      opt_d.clip_grad_norm(config_.grad_clip);
      opt_d.step();
    }
    {
      Var hidden_r = encoder_r_->forward(context);
      Var g_loss = nn::add(nn::bce_with_logits_const(disc_logits(fake_frame, hidden_r), 1.0f),
                           nn::mul_scalar(nn::l1_loss(fake_frame, real_frame),
                                          10.0f * config_.lambda_l1));
      opt_g.zero_grad();
      g_loss.backward();
      opt_g.clip_grad_norm(config_.grad_clip);
      opt_g.step();
    }
  }
}

geo::CityTensor Pix2Pix::generate(const data::City& target, long steps, Rng& rng) {
  const geo::PatchSpec& spec = config_.patch;
  const std::vector<geo::PatchWindow> windows =
      geo::enumerate_windows(target.height(), target.width(), spec);
  const long n = static_cast<long>(windows.size());
  const long pixels = spec.traffic_h * spec.traffic_w;

  nn::InferenceGuard no_grad;

  // Context hidden states are time-invariant: encode all windows once.
  nn::Tensor ctx_batch({n, config_.context_channels, spec.context_h, spec.context_w});
  for (long b = 0; b < n; ++b) {
    const std::vector<float> patch =
        geo::extract_context_patch(target.context, windows[static_cast<std::size_t>(b)], spec);
    std::copy(patch.begin(), patch.end(), ctx_batch.data() + b * static_cast<long>(patch.size()));
  }
  Var hidden = encoder_g_->forward(Var::constant(std::move(ctx_batch)));

  geo::OverlapAccumulator accumulator(steps, target.height(), target.width());
  std::vector<std::vector<float>> window_series(
      static_cast<std::size_t>(n), std::vector<float>(static_cast<std::size_t>(steps * pixels)));

  for (long t = 0; t < steps; ++t) {
    // Fresh noise each frame, shared across windows (as in the SpectraGAN
    // generation rule, so spatial sewing stays coherent within a frame).
    nn::Tensor noise_one = nn::init::gaussian(
        {1, config_.noise_channels, spec.traffic_h, spec.traffic_w}, 1.0f, rng);
    nn::Tensor noise({n, config_.noise_channels, spec.traffic_h, spec.traffic_w});
    for (long b = 0; b < n; ++b) {
      std::copy(noise_one.data(), noise_one.data() + noise_one.numel(),
                noise.data() + b * noise_one.numel());
    }
    const Var frame = frame_forward(hidden, Var::constant(std::move(noise)));
    for (long b = 0; b < n; ++b) {
      for (long p = 0; p < pixels; ++p) {
        window_series[static_cast<std::size_t>(b)][static_cast<std::size_t>(t * pixels + p)] =
            frame.value()[b * pixels + p];
      }
    }
  }
  for (long b = 0; b < n; ++b) {
    accumulator.add_patch(windows[static_cast<std::size_t>(b)], spec,
                          window_series[static_cast<std::size_t>(b)]);
  }
  geo::CityTensor city = accumulator.finalize();
  city.clamp(0.0, std::numeric_limits<double>::infinity());
  return city;
}

}  // namespace spectra::baselines
