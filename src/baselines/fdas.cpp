#include "baselines/fdas.h"

#include <cmath>

#include "util/error.h"

namespace spectra::baselines {

void Fdas::fit(const data::CountryDataset& dataset, const std::vector<std::size_t>& train_cities,
               long train_steps, Rng& rng) {
  (void)rng;  // fitting is deterministic
  SG_CHECK(!train_cities.empty(), "FDAS requires at least one training city");

  struct Accumulator {
    double sum_log = 0.0;
    double sum_log_sq = 0.0;
    long positive = 0;
    long zero = 0;
  };
  std::array<Accumulator, 24> acc{};

  for (std::size_t index : train_cities) {
    const data::City& city = dataset.cities.at(index);
    const long steps = std::min(train_steps, city.steps());
    const long steps_per_hour = 60 / city.minutes_per_step;
    steps_per_hour_ = steps_per_hour;
    for (long t = 0; t < steps; ++t) {
      const long hour = (t / steps_per_hour) % 24;
      Accumulator& a = acc[static_cast<std::size_t>(hour)];
      for (long i = 0; i < city.height(); ++i) {
        for (long j = 0; j < city.width(); ++j) {
          const double v = city.traffic.at(t, i, j);
          if (v > 1e-9) {
            const double lv = std::log(v);
            a.sum_log += lv;
            a.sum_log_sq += lv * lv;
            ++a.positive;
          } else {
            ++a.zero;
          }
        }
      }
    }
  }

  for (long h = 0; h < 24; ++h) {
    const Accumulator& a = acc[static_cast<std::size_t>(h)];
    HourlyFit& fit = fits_[static_cast<std::size_t>(h)];
    SG_CHECK(a.positive >= 2, "FDAS: not enough positive samples for hour " + std::to_string(h));
    fit.mu = a.sum_log / static_cast<double>(a.positive);
    const double var = a.sum_log_sq / static_cast<double>(a.positive) - fit.mu * fit.mu;
    fit.sigma = std::sqrt(std::max(var, 1e-12));
    fit.zero_fraction =
        static_cast<double>(a.zero) / static_cast<double>(a.zero + a.positive);
  }
  fitted_ = true;
}

const Fdas::HourlyFit& Fdas::hourly_fit(long hour) const {
  SG_CHECK(fitted_, "FDAS not fitted");
  SG_CHECK(hour >= 0 && hour < 24, "hour out of range");
  return fits_[static_cast<std::size_t>(hour)];
}

geo::CityTensor Fdas::generate(const data::City& target, long steps, Rng& rng) {
  SG_CHECK(fitted_, "FDAS not fitted");
  geo::CityTensor out(steps, target.height(), target.width());
  const long steps_per_hour = 60 / target.minutes_per_step;
  for (long t = 0; t < steps; ++t) {
    const HourlyFit& fit = fits_[static_cast<std::size_t>((t / steps_per_hour) % 24)];
    for (long i = 0; i < target.height(); ++i) {
      for (long j = 0; j < target.width(); ++j) {
        if (rng.bernoulli(fit.zero_fraction)) {
          out.at(t, i, j) = 0.0;
        } else {
          out.at(t, i, j) = std::min(rng.lognormal(fit.mu, fit.sigma), 1.0);
        }
      }
    }
  }
  return out;
}

}  // namespace spectra::baselines
