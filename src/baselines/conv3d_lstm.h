// Conv{3D+LSTM} baseline (§3.3): the representative spatiotemporal
// generative architecture — the SpectraGAN context encoder feeding a
// convolutional-LSTM frame generator, adversarially trained against a
// ConvLSTM discriminator. A "black-box" design agnostic to the traffic
// structure, which is exactly the property the paper's ablation argues
// against (intermediate SSIM, suboptimal AC-L1).

#pragma once

#include <memory>

#include "baselines/model_api.h"
#include "core/encoder.h"
#include "nn/lstm.h"

namespace spectra::baselines {

class Conv3dLstm : public TrafficGenerator {
 public:
  explicit Conv3dLstm(const core::SpectraGanConfig& config);

  std::string name() const override { return "Conv{3D+LSTM}"; }

  void fit(const data::CountryDataset& dataset, const std::vector<std::size_t>& train_cities,
           long train_steps, Rng& rng) override;

  geo::CityTensor generate(const data::City& target, long steps, Rng& rng) override;

 private:
  // ConvLSTM rollout: hidden context map + noise -> [B, steps, P].
  nn::Var rollout(const nn::Var& hidden, const nn::Var& noise, long steps) const;

  core::SpectraGanConfig config_;
  Rng model_rng_;
  long conv_hidden_ = 4;     // ConvLSTM hidden channels
  long disc_stride_ = 4;     // discriminator samples every k-th frame

  std::unique_ptr<core::ContextEncoder> encoder_g_;
  std::unique_ptr<nn::ConvLSTMCell> gen_cell_;
  std::unique_ptr<nn::Conv2dLayer> gen_head_;  // hidden -> 1 channel frame
  std::unique_ptr<core::ContextEncoder> encoder_r_;
  std::unique_ptr<nn::ConvLSTMCell> disc_cell_;
  std::unique_ptr<nn::Linear> disc_head_;
};

}  // namespace spectra::baselines
