// Pix2Pix baseline (§3.3): an image-to-image conditional GAN [38] adapted
// to traffic generation by conditioning on the spatial context patch. It
// generates one traffic *frame* at a time from context + noise and has no
// notion of time: temporal structure in its output is pure noise, which
// is exactly the failure mode Fig. 8b shows.

#pragma once

#include <memory>

#include "baselines/model_api.h"
#include "core/encoder.h"
#include "nn/layers.h"
#include "nn/optim.h"

namespace spectra::baselines {

class Pix2Pix : public TrafficGenerator {
 public:
  explicit Pix2Pix(const core::SpectraGanConfig& config);

  std::string name() const override { return "Pix2Pix"; }

  void fit(const data::CountryDataset& dataset, const std::vector<std::size_t>& train_cities,
           long train_steps, Rng& rng) override;

  geo::CityTensor generate(const data::City& target, long steps, Rng& rng) override;

 private:
  // Frame generator forward: context hidden + per-frame noise -> [B,1,Ht,Wt].
  nn::Var frame_forward(const nn::Var& hidden, const nn::Var& noise) const;

  core::SpectraGanConfig config_;
  Rng model_rng_;
  std::unique_ptr<core::ContextEncoder> encoder_g_;
  std::unique_ptr<nn::Conv2dLayer> head1_;
  std::unique_ptr<nn::Conv2dLayer> head2_;
  std::unique_ptr<core::ContextEncoder> encoder_r_;
  std::unique_ptr<nn::Mlp> disc_;
};

}  // namespace spectra::baselines
