// DoppelGANger baseline (§3.3): conditional time-series GAN [46]. The
// original has no spatial dimension; applied to spatiotemporal traffic it
// models every pixel independently, conditioned on that pixel's own
// context attributes. (The paper instantiates one DoppelGANger per pixel;
// we share one set of weights conditioned per pixel — same independence
// structure, tractable at our scale. Documented in DESIGN.md.)
//
// The expected failure mode — spatial artifacts and poor SSIM, reasonable
// temporal metrics — comes from the per-pixel independence, which this
// implementation preserves exactly: independent noise per pixel and no
// information flow between pixels.

#pragma once

#include <memory>

#include "baselines/model_api.h"
#include "nn/layers.h"
#include "nn/lstm.h"

namespace spectra::baselines {

class DoppelGanger : public TrafficGenerator {
 public:
  explicit DoppelGanger(const core::SpectraGanConfig& config);

  std::string name() const override { return "DoppelGANger"; }

  void fit(const data::CountryDataset& dataset, const std::vector<std::size_t>& train_cities,
           long train_steps, Rng& rng) override;

  geo::CityTensor generate(const data::City& target, long steps, Rng& rng) override;

 private:
  // Per-pixel context (27) + noise -> conditioning vector.
  nn::Var condition(const nn::Var& pixel_context, const nn::Var& noise) const;

  // Normalized-series generator forward: [B, steps] in (0,1).
  nn::Var series_forward(const nn::Var& cond, long steps) const;

  // DoppelGANger's auto-normalization: a dedicated metadata generator
  // samples each series' amplitude (its "min/max generator") from
  // (context, noise). It is trained adversarially only, so it keeps
  // noise-driven variance — the per-pixel amplitude jitter behind the
  // spatial artifacts the paper reports for this baseline.
  nn::Var amplitude_forward(const nn::Var& pixel_context, const nn::Var& amp_noise) const;

  core::SpectraGanConfig config_;
  Rng model_rng_;
  long noise_dim_ = 8;

  std::unique_ptr<nn::Mlp> embed_;   // context+noise -> cond
  std::unique_ptr<nn::Lstm> gen_;    // cond -> per-step scalar
  std::unique_ptr<nn::Mlp> amp_;     // context+noise -> series amplitude
  std::unique_ptr<nn::Mlp> embed_d_; // discriminator-side context embedding
  std::unique_ptr<nn::LSTMCell> disc_cell_;
  std::unique_ptr<nn::Linear> disc_head_;
};

}  // namespace spectra::baselines
