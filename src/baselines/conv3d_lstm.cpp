#include "baselines/conv3d_lstm.h"

#include <cmath>

#include <algorithm>
#include <limits>

#include "data/sampler.h"
#include "nn/init.h"
#include "nn/optim.h"
#include "util/error.h"

namespace spectra::baselines {

using nn::Var;

Conv3dLstm::Conv3dLstm(const core::SpectraGanConfig& config)
    : config_(config), model_rng_(config.seed ^ 0x636c3364ULL) {
  config_.validate();
  // A ConvLSTM iteration costs ~5x a SpectraGAN iteration (full-rate
  // recurrent convolutions); scale the budget so wall-clock per fold is
  // comparable across models.
  config_.iterations = std::max<long>(60, config_.iterations * 3 / 10);
  encoder_g_ = std::make_unique<core::ContextEncoder>(config_, model_rng_);
  // Day clock only: the video-generation lineage this baseline stands in
  // captures short-term correlations (the paper's critique); weekly
  // structure must come from its recurrent state, where it struggles.
  gen_cell_ = std::make_unique<nn::ConvLSTMCell>(
      config_.hidden_channels + config_.noise_channels + 2, conv_hidden_, 3, model_rng_);
  gen_head_ = std::make_unique<nn::Conv2dLayer>(conv_hidden_, 1, 1,
                                                nn::Conv2dSpec{.stride = 1, .padding = 0},
                                                model_rng_);
  encoder_r_ = std::make_unique<core::ContextEncoder>(config_, model_rng_);
  disc_cell_ = std::make_unique<nn::ConvLSTMCell>(1 + config_.hidden_channels, conv_hidden_, 3,
                                                  model_rng_);
  disc_head_ = std::make_unique<nn::Linear>(
      conv_hidden_ * config_.patch.traffic_h * config_.patch.traffic_w, 1, model_rng_);
}

Var Conv3dLstm::rollout(const Var& hidden, const Var& noise, long steps) const {
  const long B = hidden.value().dim(0);
  const long Ht = config_.patch.traffic_h;
  const long Wt = config_.patch.traffic_w;
  Var base_input = nn::concat_axis({hidden, noise}, 1);
  nn::LstmState state = gen_cell_->initial_state(B, Ht, Wt);
  std::vector<Var> frames;
  frames.reserve(static_cast<std::size_t>(steps));
  const long spd = config_.steps_per_day;
  for (long t = 0; t < steps; ++t) {
    // Broadcast the day clock phase as two constant feature planes.
    const double day = 2.0 * M_PI * static_cast<double>(t % spd) / static_cast<double>(spd);
    const float phases[2] = {static_cast<float>(std::sin(day)), static_cast<float>(std::cos(day))};
    nn::Tensor clock({B, 2, Ht, Wt});
    for (long b = 0; b < B; ++b) {
      for (long c = 0; c < 2; ++c) {
        for (long p = 0; p < Ht * Wt; ++p) clock[(b * 2 + c) * Ht * Wt + p] = phases[c];
      }
    }
    Var input = nn::concat_axis({base_input, nn::Var::constant(std::move(clock))}, 1);
    state = gen_cell_->step(input, state);
    frames.push_back(nn::reshape(gen_head_->forward(state.h), {B, Ht * Wt}));
  }
  return nn::transpose01(nn::stack0(frames));  // [B, steps, P]
}

void Conv3dLstm::fit(const data::CountryDataset& dataset,
                     const std::vector<std::size_t>& train_cities, long train_steps, Rng& rng) {
  data::PatchSampler sampler(dataset, train_cities, config_.patch, 0, train_steps);
  const long Ht = config_.patch.traffic_h;
  const long Wt = config_.patch.traffic_w;
  const long pixels = Ht * Wt;

  std::vector<Var> g_params = encoder_g_->parameters();
  for (const nn::Module* m : {static_cast<const nn::Module*>(gen_cell_.get()),
                              static_cast<const nn::Module*>(gen_head_.get())}) {
    const std::vector<Var> sub = m->parameters();
    g_params.insert(g_params.end(), sub.begin(), sub.end());
  }
  std::vector<Var> d_params = encoder_r_->parameters();
  for (const nn::Module* m : {static_cast<const nn::Module*>(disc_cell_.get()),
                              static_cast<const nn::Module*>(disc_head_.get())}) {
    const std::vector<Var> sub = m->parameters();
    d_params.insert(d_params.end(), sub.begin(), sub.end());
  }
  nn::Adam opt_g(g_params, config_.lr_generator, 0.5f, 0.999f);
  nn::Adam opt_d(d_params, config_.lr_discriminator, 0.5f, 0.999f);

  // ConvLSTM critics are expensive; sample every disc_stride_-th frame.
  auto disc_logits = [&](const Var& traffic, const Var& hidden_r) {
    const long B = traffic.value().dim(0);
    const long steps = traffic.value().dim(1);
    nn::LstmState state = disc_cell_->initial_state(B, Ht, Wt);
    Var logit_sum;
    long counted = 0;
    for (long t = 0; t < steps; t += disc_stride_) {
      Var frame = nn::reshape(nn::slice_axis(traffic, 1, t, 1), {B, 1, Ht, Wt});
      state = disc_cell_->step(nn::concat_axis({frame, hidden_r}, 1), state);
      Var logit = disc_head_->forward(nn::reshape(state.h, {B, conv_hidden_ * pixels}));
      logit_sum = logit_sum.defined() ? nn::add(logit_sum, logit) : logit;
      ++counted;
    }
    return nn::mul_scalar(logit_sum, 1.0f / static_cast<float>(counted));
  };

  for (long it = 0; it < config_.iterations; ++it) {
    const data::PatchBatch batch = sampler.sample(config_.batch, rng);
    Var context = Var::constant(nn::Tensor(
        {batch.batch, batch.channels, batch.context_h, batch.context_w}, batch.context));
    Var real_traffic =
        Var::constant(nn::Tensor({batch.batch, batch.steps, pixels}, batch.traffic));
    Var noise = Var::constant(
        nn::init::gaussian({batch.batch, config_.noise_channels, Ht, Wt}, 1.0f, rng));

    Var fake_traffic = rollout(encoder_g_->forward(context), noise, batch.steps);

    {
      Var hidden_r = encoder_r_->forward(context);
      Var d_loss = nn::add(
          nn::bce_with_logits_const(disc_logits(real_traffic, hidden_r), 1.0f),
          nn::bce_with_logits_const(disc_logits(Var::constant(fake_traffic.value()), hidden_r),
                                    0.0f));
      opt_d.zero_grad();
      d_loss.backward();
      opt_d.clip_grad_norm(config_.grad_clip);
      opt_d.step();
    }
    {
      Var hidden_r = encoder_r_->forward(context);
      // Like DoppelGANger, the published model is purely adversarial; the
      // weak L1 anchor only stabilizes the scaled-down training.
      Var g_loss = nn::add(nn::bce_with_logits_const(disc_logits(fake_traffic, hidden_r), 1.0f),
                           nn::mul_scalar(nn::l1_loss(fake_traffic, real_traffic),
                                          0.1f * config_.lambda_l1));
      opt_g.zero_grad();
      g_loss.backward();
      opt_g.clip_grad_norm(config_.grad_clip);
      opt_g.step();
    }
  }
}

geo::CityTensor Conv3dLstm::generate(const data::City& target, long steps, Rng& rng) {
  const geo::PatchSpec& spec = config_.patch;
  const std::vector<geo::PatchWindow> windows =
      geo::enumerate_windows(target.height(), target.width(), spec);
  const long pixels = spec.traffic_h * spec.traffic_w;

  const nn::Tensor shared_noise = nn::init::gaussian(
      {1, config_.noise_channels, spec.traffic_h, spec.traffic_w}, 1.0f, rng);

  geo::OverlapAccumulator accumulator(steps, target.height(), target.width());

  nn::InferenceGuard no_grad;
  constexpr std::size_t kChunk = 16;
  for (std::size_t begin = 0; begin < windows.size(); begin += kChunk) {
    const std::size_t end = std::min(begin + kChunk, windows.size());
    const long n = static_cast<long>(end - begin);

    nn::Tensor ctx_batch({n, config_.context_channels, spec.context_h, spec.context_w});
    for (long b = 0; b < n; ++b) {
      const std::vector<float> patch =
          geo::extract_context_patch(target.context, windows[begin + static_cast<std::size_t>(b)], spec);
      std::copy(patch.begin(), patch.end(), ctx_batch.data() + b * static_cast<long>(patch.size()));
    }
    nn::Tensor noise({n, config_.noise_channels, spec.traffic_h, spec.traffic_w});
    for (long b = 0; b < n; ++b) {
      std::copy(shared_noise.data(), shared_noise.data() + shared_noise.numel(),
                noise.data() + b * shared_noise.numel());
    }

    Var traffic = rollout(encoder_g_->forward(Var::constant(std::move(ctx_batch))),
                          Var::constant(std::move(noise)), steps);

    std::vector<float> patch(static_cast<std::size_t>(steps * pixels));
    for (long b = 0; b < n; ++b) {
      for (long k = 0; k < steps * pixels; ++k) {
        patch[static_cast<std::size_t>(k)] = traffic.value()[b * steps * pixels + k];
      }
      accumulator.add_patch(windows[begin + static_cast<std::size_t>(b)], spec, patch);
    }
  }
  geo::CityTensor city = accumulator.finalize();
  city.clamp(0.0, std::numeric_limits<double>::infinity());
  return city;
}

}  // namespace spectra::baselines
