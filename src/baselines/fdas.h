// FDAS — "Fit Distribution And Sample" (§3.3): the state of the art in
// mobile traffic synthesis before deep generative models [26, 54]. A
// log-normal distribution is fitted to the pixel-level traffic of every
// hour of the day (pooled over pixels, days and training cities) and
// sampled independently per pixel and step. By construction it matches
// marginals well and captures no correlation in space or time (Fig. 6).

#pragma once

#include <array>

#include "baselines/model_api.h"

namespace spectra::baselines {

class Fdas : public TrafficGenerator {
 public:
  std::string name() const override { return "FDAS"; }

  void fit(const data::CountryDataset& dataset, const std::vector<std::size_t>& train_cities,
           long train_steps, Rng& rng) override;

  geo::CityTensor generate(const data::City& target, long steps, Rng& rng) override;

  // Fitted log-normal parameters for a given hour of day (0..23).
  struct HourlyFit {
    double mu = 0.0;
    double sigma = 1.0;
    double zero_fraction = 0.0;  // mass of exactly-zero observations
  };
  const HourlyFit& hourly_fit(long hour) const;

 private:
  std::array<HourlyFit, 24> fits_{};
  long steps_per_hour_ = 1;
  bool fitted_ = false;
};

}  // namespace spectra::baselines
