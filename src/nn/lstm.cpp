#include "nn/lstm.h"

#include "nn/init.h"
#include "obs/profile.h"
#include "util/error.h"

namespace spectra::nn {

LSTMCell::LSTMCell(long input_size, long hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  SG_CHECK(input_size > 0 && hidden_size > 0, "LSTMCell requires positive sizes");
  weight_x_ = register_parameter(
      init::xavier_uniform({input_size, 4 * hidden_size}, input_size, hidden_size, rng));
  weight_h_ = register_parameter(
      init::xavier_uniform({hidden_size, 4 * hidden_size}, hidden_size, hidden_size, rng));
  Tensor bias = init::zeros({4 * hidden_size});
  // Forget-gate bias at 1.0: standard trick so early training does not
  // immediately flush the cell state.
  for (long i = hidden_size; i < 2 * hidden_size; ++i) bias[i] = 1.0f;
  bias_ = register_parameter(std::move(bias));
}

LstmState LSTMCell::initial_state(long batch) const {
  SG_CHECK(batch > 0, "initial_state requires positive batch");
  return {Var::constant(Tensor({batch, hidden_size_})), Var::constant(Tensor({batch, hidden_size_}))};
}

Var LSTMCell::project_input(const Var& x) const {
  SG_CHECK(x.value().rank() == 2 && x.value().dim(1) == input_size_,
           "LSTMCell input must be [*, input_size]");
  return matmul(x, weight_x_);
}

LstmState LSTMCell::step(const Var& x, const LstmState& state) const {
  return step_projected(project_input(x), state);
}

LstmState LSTMCell::step_projected(const Var& x_proj, const LstmState& state) const {
  SG_CHECK(x_proj.value().rank() == 2 && x_proj.value().dim(1) == 4 * hidden_size_,
           "LSTMCell projected input must be [B, 4*hidden]");
  SG_PROFILE_SCOPE("nn/lstm_step");
  if (obs::profile_enabled()) {
    // Elementwise gate cost only (~40 nominal flops per hidden element:
    // gate sums, three sigmoids, two tanhs, cell/output blends); the
    // recurrent GEMM accounts for itself on the nested nn/gemm node.
    const double bh = static_cast<double>(x_proj.value().dim(0)) *
                      static_cast<double>(hidden_size_);
    obs::profile_add_work(40.0 * bh, 10.0 * bh * 4.0);
  }
  // Single fused gate kernel (two autograd nodes) instead of the ~12-node
  // unfused composition below; bitwise-identical forward and backward
  // (asserted by layers_test against step_projected_unfused).
  auto [h_next, c_next] = lstm_fused_step(x_proj, state.h, state.c, weight_h_, bias_);
  return {h_next, c_next};
}

LstmState LSTMCell::step_projected_unfused(const Var& x_proj, const LstmState& state) const {
  SG_CHECK(x_proj.value().rank() == 2 && x_proj.value().dim(1) == 4 * hidden_size_,
           "LSTMCell projected input must be [B, 4*hidden]");
  Var gates = add_rowvec(add(x_proj, matmul(state.h, weight_h_)), bias_);
  const long H = hidden_size_;
  Var i = sigmoid(slice_cols(gates, 0, H));
  Var f = sigmoid(slice_cols(gates, H, H));
  Var g = vtanh(slice_cols(gates, 2 * H, H));
  Var o = sigmoid(slice_cols(gates, 3 * H, H));
  Var c_next = add(mul(f, state.c), mul(i, g));
  Var h_next = mul(o, vtanh(c_next));
  return {h_next, c_next};
}

Lstm::Lstm(long input_size, long hidden_size, long output_size, Rng& rng,
           Activation output_activation)
    : cell_(input_size, hidden_size, rng),
      head_(hidden_size, output_size, rng),
      output_activation_(output_activation) {
  register_child(cell_);
  register_child(head_);
}

std::vector<Var> Lstm::forward(const std::vector<Var>& inputs) const {
  SG_PROFILE_SCOPE("nn/lstm_forward");
  SG_CHECK(!inputs.empty(), "Lstm::forward requires at least one step");
  const long batch = inputs[0].value().dim(0);
  // Batch the input projection of the whole sequence into one [T·B, 4H]
  // GEMM instead of T per-step matmuls; per-step slices keep autograd
  // connectivity (concat/slice backward route the gradients back to each
  // step's input).
  Var all_steps = inputs.size() == 1 ? inputs[0] : concat_axis(inputs, /*axis=*/0);
  Var all_proj = cell_.project_input(all_steps);
  LstmState state = cell_.initial_state(batch);
  std::vector<Var> outputs;
  outputs.reserve(inputs.size());
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    SG_CHECK(inputs[t].value().dim(0) == batch, "Lstm::forward steps must share a batch size");
    Var x_proj = slice_axis(all_proj, /*axis=*/0, static_cast<long>(t) * batch, batch);
    state = cell_.step_projected(x_proj, state);
    outputs.push_back(apply_activation(head_.forward(state.h), output_activation_));
  }
  return outputs;
}

std::vector<Var> Lstm::forward_repeat(const Var& input, long steps) const {
  SG_PROFILE_SCOPE("nn/lstm_forward");
  SG_CHECK(steps > 0, "forward_repeat requires steps > 0");
  // The input is static across steps, so one projection serves all of
  // them.
  Var x_proj = cell_.project_input(input);
  LstmState state = cell_.initial_state(input.value().dim(0));
  std::vector<Var> outputs;
  outputs.reserve(static_cast<std::size_t>(steps));
  for (long t = 0; t < steps; ++t) {
    state = cell_.step_projected(x_proj, state);
    outputs.push_back(apply_activation(head_.forward(state.h), output_activation_));
  }
  return outputs;
}

ConvLSTMCell::ConvLSTMCell(long input_channels, long hidden_channels, long kernel, Rng& rng)
    : input_channels_(input_channels),
      hidden_channels_(hidden_channels),
      gates_(input_channels + hidden_channels, 4 * hidden_channels, kernel,
             Conv2dSpec{.stride = 1, .padding = (kernel - 1) / 2}, rng) {
  SG_CHECK(kernel % 2 == 1, "ConvLSTMCell kernel must be odd to preserve extents");
  register_child(gates_);
}

LstmState ConvLSTMCell::initial_state(long batch, long height, long width) const {
  Tensor zero({batch, hidden_channels_, height, width});
  return {Var::constant(zero), Var::constant(std::move(zero))};
}

LstmState ConvLSTMCell::step(const Var& x, const LstmState& state) const {
  SG_CHECK(x.value().rank() == 4 && x.value().dim(1) == input_channels_,
           "ConvLSTMCell input must be [B, input_channels, H, W]");
  Var stacked = concat_axis({x, state.h}, /*axis=*/1);
  Var gates = gates_.forward(stacked);
  const long H = hidden_channels_;
  Var i = sigmoid(slice_axis(gates, 1, 0, H));
  Var f = sigmoid(slice_axis(gates, 1, H, H));
  Var g = vtanh(slice_axis(gates, 1, 2 * H, H));
  Var o = sigmoid(slice_axis(gates, 1, 3 * H, H));
  Var c_next = add(mul(f, state.c), mul(i, g));
  Var h_next = mul(o, vtanh(c_next));
  return {h_next, c_next};
}

}  // namespace spectra::nn
