// Binary (de)serialization of parameter lists, so trained SpectraGAN
// models can be saved and reloaded (e.g. the pre-trained-model workflow
// the paper describes for releasing synthetic datasets).

#pragma once

#include <string>
#include <vector>

#include "nn/autograd.h"

namespace spectra::nn {

// Write shapes + float data for each parameter, in order.
// Throws spectra::Error on I/O failure.
void save_parameters(const std::string& path, const std::vector<Var>& params);

// Load into existing parameters; shapes must match exactly.
void load_parameters(const std::string& path, std::vector<Var>& params);

}  // namespace spectra::nn
