// Reverse-mode automatic differentiation over Tensors.
//
// A `Var` is a shared handle to a node in a dynamically-built computation
// graph. Operators (nn/ops.h, nn/conv.h) create new nodes whose backward
// closures accumulate gradients into their parents. Calling `backward()`
// on a scalar Var topologically sorts the reachable subgraph and runs the
// closures in reverse order — the classic tape-free define-by-run design.
//
// Graphs are rebuilt per training step and freed when the root Var goes
// out of scope (nodes own their parents via shared_ptr).

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace spectra::nn {

namespace detail {
struct Node;
}  // namespace detail

// RAII guard that disables graph recording while alive (thread-local).
// Ops built under the guard keep their forward values but no parents or
// backward closures — intermediate results are freed as soon as their
// handles go out of scope. Use for generation/inference passes.
class InferenceGuard {
 public:
  InferenceGuard();
  ~InferenceGuard();
  InferenceGuard(const InferenceGuard&) = delete;
  InferenceGuard& operator=(const InferenceGuard&) = delete;

  static bool active();

 private:
  bool previous_;
};

class Var {
 public:
  // Null handle; defined() is false.
  Var() = default;

  // Leaf with gradient tracking (trainable parameter or input needing grads).
  static Var leaf(Tensor value);

  // Leaf without gradient tracking (data, noise, targets).
  static Var constant(Tensor value);

  bool defined() const { return node_ != nullptr; }
  bool requires_grad() const;

  const Tensor& value() const;
  Tensor& value_mut();  // used by optimizers for in-place parameter updates

  // Gradient of the last backward() (zero-shaped until backward runs).
  const Tensor& grad() const;

  void zero_grad();

  // Run reverse-mode autodiff from this (scalar) variable.
  void backward();

  // Identity used as map key for optimizer state.
  const void* id() const { return node_.get(); }

  // --- graph construction (used by op implementations) ---

  // Backward closure: given the node's accumulated output gradient,
  // add each parent's contribution into parents[i].grad_storage().
  using BackwardFn = std::function<void(const Tensor& out_grad, std::vector<Var>& parents)>;

  // Create an interior node. requires_grad is inherited from parents.
  static Var make_op(Tensor value, std::vector<Var> parents, BackwardFn backward);

  // Direct access to the mutable gradient buffer (op backward closures
  // accumulate here). Allocates a zero tensor of value's shape on first use.
  Tensor& grad_storage();

 private:
  explicit Var(std::shared_ptr<detail::Node> node) : node_(std::move(node)) {}
  std::shared_ptr<detail::Node> node_;
};

}  // namespace spectra::nn
