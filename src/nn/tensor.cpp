#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/error.h"

namespace spectra::nn {

long shape_numel(const Shape& shape) {
  long n = 1;
  for (long d : shape) {
    SG_CHECK(d >= 0, "shape dimensions must be non-negative");
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data) : shape_(std::move(shape)), data_(std::move(data)) {
  SG_CHECK(static_cast<long>(data_.size()) == shape_numel(shape_),
           "tensor data size does not match shape " + shape_to_string(shape_));
}

Tensor Tensor::scalar(float v) {
  Tensor t;
  t.data_[0] = v;
  return t;
}

Tensor Tensor::full(Shape shape, float v) {
  Tensor t(std::move(shape));
  t.fill(v);
  return t;
}

long Tensor::dim(int i) const {
  const int r = rank();
  if (i < 0) i += r;
  SG_CHECK(i >= 0 && i < r, "dimension index out of range");
  return shape_[static_cast<std::size_t>(i)];
}

long Tensor::offset(std::initializer_list<long> index) const {
  SG_CHECK(static_cast<int>(index.size()) == rank(), "index rank mismatch");
  long off = 0;
  int i = 0;
  for (long idx : index) {
    const long extent = shape_[static_cast<std::size_t>(i)];
    SG_CHECK(idx >= 0 && idx < extent, "index out of bounds");
    off = off * extent + idx;
    ++i;
  }
  return off;
}

float& Tensor::at(std::initializer_list<long> index) { return data_[static_cast<std::size_t>(offset(index))]; }

float Tensor::at(std::initializer_list<long> index) const {
  return data_[static_cast<std::size_t>(offset(index))];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  SG_CHECK(shape_numel(new_shape) == numel(),
           "reshape from " + shape_to_string(shape_) + " to " + shape_to_string(new_shape) +
               " changes element count");
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::add_(const Tensor& other) {
  SG_CHECK(same_shape(other), "add_: shape mismatch " + shape_to_string(shape_) + " vs " +
                                  shape_to_string(other.shape_));
  const float* src = other.data();
  float* dst = data();
  const long n = numel();
  for (long i = 0; i < n; ++i) dst[i] += src[i];
}

void Tensor::scale_(float v) {
  for (float& x : data_) x *= v;
}

float Tensor::sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0f); }

float Tensor::mean() const { return numel() == 0 ? 0.0f : sum() / static_cast<float>(numel()); }

float Tensor::min() const {
  SG_CHECK(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  SG_CHECK(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

bool Tensor::has_nonfinite() const {
  return std::any_of(data_.begin(), data_.end(), [](float v) { return !std::isfinite(v); });
}

}  // namespace spectra::nn
