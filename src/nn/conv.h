// Differentiable 2-D convolution (NCHW), the workhorse of the SpectraGAN
// encoder and spectrum generator.
//
// Two kernel implementations (DESIGN.md §6c):
//   - im2col + GEMM lowering (the default for real model shapes): the
//     input patch matrix is materialized into a reusable per-thread
//     workspace and the contraction runs on the blocked GEMM kernel
//     (nn/gemm.h); 1×1/stride-1/no-padding convs skip the copy and GEMM
//     directly on the input planes.
//   - direct loop nests, kept as the fallback for tiny shapes where the
//     lowering's copy costs more than it saves, and as the reference
//     implementation for equivalence tests.
// Both are bitwise deterministic across thread counts.

#pragma once

#include "nn/autograd.h"

namespace spectra::nn {

// Kernel selection: kAuto picks the GEMM lowering unless the per-sample
// contraction is tiny (see kDirectFlopThreshold in conv.cpp); the
// explicit values force one implementation (tests, benches).
enum class Conv2dImpl { kAuto, kDirect, kIm2col };

struct Conv2dSpec {
  long stride = 1;
  long padding = 0;  // symmetric zero padding
  Conv2dImpl impl = Conv2dImpl::kAuto;
};

// input  [N, C, H, W]
// weight [O, C, kh, kw]
// bias   [O]
// output [N, O, H', W'] with H' = (H + 2p - kh)/s + 1.
Var conv2d(const Var& input, const Var& weight, const Var& bias, const Conv2dSpec& spec = {});

// Output spatial extent helper (throws if the geometry is invalid).
long conv2d_out_extent(long in, long kernel, long stride, long padding);

}  // namespace spectra::nn
