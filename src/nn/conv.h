// Differentiable 2-D convolution (NCHW), the workhorse of the SpectraGAN
// encoder and spectrum generator. Direct (non-im2col) kernels: model
// feature maps here are tiny (≤ 16×16), so the simple loops are both
// fast enough and easy to verify against finite differences.

#pragma once

#include "nn/autograd.h"

namespace spectra::nn {

struct Conv2dSpec {
  long stride = 1;
  long padding = 0;  // symmetric zero padding
};

// input  [N, C, H, W]
// weight [O, C, kh, kw]
// bias   [O]
// output [N, O, H', W'] with H' = (H + 2p - kh)/s + 1.
Var conv2d(const Var& input, const Var& weight, const Var& bias, const Conv2dSpec& spec = {});

// Output spatial extent helper (throws if the geometry is invalid).
long conv2d_out_extent(long in, long kernel, long stride, long padding);

}  // namespace spectra::nn
