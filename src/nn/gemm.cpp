#include "nn/gemm.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace spectra::nn::gemm {

namespace {

obs::Counter& grows_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("gemm.workspace_grows");
  return c;
}

obs::Counter& calls_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("gemm.calls");
  return c;
}

obs::Gauge& bytes_gauge() {
  static obs::Gauge& g = obs::Registry::instance().gauge("gemm.workspace_bytes");
  return g;
}

// The active workspace of this thread: null means the implicit
// thread-local default below. WorkspaceScope swaps request-owned
// workspaces in and out (serve daemon); kernels never see the
// difference.
thread_local Workspace* tls_workspace = nullptr;

Workspace& thread_default_workspace() {
  thread_local Workspace tls_default_workspace;
  return tls_default_workspace;
}

// Pack the (kc × nc) block of op(B) starting at (pc, jc) into kNR-wide
// column panels: dst[panel jp][p][j] at offset (jp*kc + p)*kNR + j.
// Columns beyond nc are zero-padded; the padded lanes feed accumulator
// columns that are never written back.
void pack_b(Trans tb, const float* b, long ldb, long pc, long jc, long kc, long nc, float* dst) {
  const long panels = (nc + kNR - 1) / kNR;
  for (long jp = 0; jp < panels; ++jp) {
    const long j0 = jp * kNR;
    const long jw = std::min(kNR, nc - j0);
    float* panel = dst + jp * kc * kNR;
    if (tb == Trans::kNo) {
      // op(B)[p][j] = b[(pc+p)*ldb + jc+j]: copy row fragments.
      for (long p = 0; p < kc; ++p) {
        const float* src = b + (pc + p) * ldb + jc + j0;
        float* out = panel + p * kNR;
        for (long j = 0; j < jw; ++j) out[j] = src[j];
        for (long j = jw; j < kNR; ++j) out[j] = 0.0f;
      }
    } else {
      // op(B)[p][j] = b[(jc+j)*ldb + pc+p]: gather kNR source rows.
      for (long p = 0; p < kc; ++p) {
        float* out = panel + p * kNR;
        for (long j = 0; j < kNR; ++j) {
          out[j] = j < jw ? b[(jc + j0 + j) * ldb + pc + p] : 0.0f;
        }
      }
    }
  }
}

// Register-tiled micro-kernel: acc[MR_][kNR] += op(A) rows × packed-B
// panel over kc, then store or add `mr`×`nr` of it into C. Accumulation
// per element is strictly p-ascending (separate multiply and add — never
// contracted to FMA), independent of everything but the k blocking.
//
// The GCC/Clang path spells the j dimension as 4-lane vector values so
// the accumulator provably lives in SIMD registers; left as a plain
// 2-D float loop, GCC 12 vectorizes the *p* loop instead, transposing A
// fragments through a wall of shufps with acc spilled to the stack
// (~1.3× naive instead of >2×).
#if defined(__GNUC__) || defined(__clang__)
using Vf = float __attribute__((vector_size(16), aligned(4), may_alias));
inline constexpr long kVL = 4;  // float lanes per vector
static_assert(kNR % kVL == 0, "panel width must be a whole number of vectors");

template <int MR_>
void micro_kernel(long kc, const float* __restrict a, long a_row_stride, long a_col_stride,
                  const float* __restrict bp, float* c, long ldc, long nr, bool add_to_c) {
  constexpr int NV = static_cast<int>(kNR / kVL);
  Vf acc[static_cast<std::size_t>(MR_)][static_cast<std::size_t>(NV)] = {};
  for (long p = 0; p < kc; ++p) {
    const Vf* brow = reinterpret_cast<const Vf*>(bp + p * kNR);
    Vf bv[NV];
    for (int v = 0; v < NV; ++v) bv[v] = brow[v];
    for (int i = 0; i < MR_; ++i) {
      const float av = a[i * a_row_stride + p * a_col_stride];
      for (int v = 0; v < NV; ++v) acc[i][v] += av * bv[v];
    }
  }
  for (int i = 0; i < MR_; ++i) {
    float* crow = c + i * ldc;
    if (nr == kNR) {
      Vf* cv = reinterpret_cast<Vf*>(crow);
      for (int v = 0; v < NV; ++v) cv[v] = add_to_c ? cv[v] + acc[i][v] : acc[i][v];
    } else {
      for (long j = 0; j < nr; ++j) {
        const float val = acc[i][j / kVL][j % kVL];
        crow[j] = add_to_c ? crow[j] + val : val;
      }
    }
  }
}
#else
template <int MR_>
void micro_kernel(long kc, const float* a, long a_row_stride, long a_col_stride, const float* bp,
                  float* c, long ldc, long nr, bool add_to_c) {
  float acc[static_cast<std::size_t>(MR_)][static_cast<std::size_t>(kNR)] = {};
  for (long p = 0; p < kc; ++p) {
    const float* brow = bp + p * kNR;
    for (int i = 0; i < MR_; ++i) {
      const float av = a[i * a_row_stride + p * a_col_stride];
      for (long j = 0; j < kNR; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (int i = 0; i < MR_; ++i) {
    float* crow = c + i * ldc;
    if (add_to_c) {
      for (long j = 0; j < nr; ++j) crow[j] += acc[i][j];
    } else {
      for (long j = 0; j < nr; ++j) crow[j] = acc[i][j];
    }
  }
}
#endif

using MicroFn = void (*)(long, const float*, long, long, const float*, float*, long, long, bool);

constexpr MicroFn kMicroKernels[kMR] = {micro_kernel<1>, micro_kernel<2>, micro_kernel<3>,
                                        micro_kernel<4>};

}  // namespace

Workspace::~Workspace() { release(); }

float* Workspace::get(int slot, std::size_t floats) {
  SG_CHECK(slot >= 0 && slot < kScratchSlots, "gemm scratch slot out of range");
  std::vector<float>& arena = arenas_[slot];
  if (arena.size() < floats) {
    const std::size_t grown = floats - arena.size();
    arena.resize(floats);
    grows_counter().inc();
    bytes_gauge().add(static_cast<double>(grown * sizeof(float)));
  }
  return arena.data();
}

void Workspace::release() {
  const std::size_t held = bytes();
  if (held == 0) return;
  for (std::vector<float>& arena : arenas_) {
    arena.clear();
    arena.shrink_to_fit();
  }
  bytes_gauge().add(-static_cast<double>(held));
}

std::size_t Workspace::bytes() const {
  std::size_t total = 0;
  for (const std::vector<float>& arena : arenas_) total += arena.size() * sizeof(float);
  return total;
}

WorkspaceScope::WorkspaceScope(Workspace& ws) : prev_(tls_workspace) { tls_workspace = &ws; }

WorkspaceScope::~WorkspaceScope() { tls_workspace = prev_; }

float* scratch(int slot, std::size_t floats) {
  Workspace* ws = tls_workspace;
  return (ws != nullptr ? *ws : thread_default_workspace()).get(slot, floats);
}

void sgemm(Trans ta, Trans tb, long m, long n, long k, const float* a, long lda, const float* b,
           long ldb, float* c, long ldc, bool accumulate) {
  SG_CHECK(m >= 0 && n >= 0 && k >= 0, "sgemm negative extent");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) {
      for (long i = 0; i < m; ++i) std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
    return;
  }
  calls_counter().inc();
  SG_PROFILE_SCOPE("nn/gemm");
  if (obs::profile_enabled()) {
    // 2·M·N·K flops; traffic counts each operand once plus the C
    // write-back (the roofline convention, ignoring blocking reuse).
    obs::profile_add_work(
        2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k),
        (static_cast<double>(m) * static_cast<double>(k) +
         static_cast<double>(k) * static_cast<double>(n) +
         2.0 * static_cast<double>(m) * static_cast<double>(n)) *
            4.0);
  }

  const long a_row_stride = ta == Trans::kNo ? lda : 1;
  const long a_col_stride = ta == Trans::kNo ? 1 : lda;

  for (long jc = 0; jc < n; jc += kNC) {
    const long nc = std::min(kNC, n - jc);
    const long panels = (nc + kNR - 1) / kNR;
    for (long pc = 0; pc < k; pc += kKC) {
      const long kc = std::min(kKC, k - pc);
      // One shared read-only packed block per (jc, pc); row panels below
      // all read it, so it is packed once on the calling thread.
      float* bp = scratch(0, static_cast<std::size_t>(panels * kc * kNR));
      pack_b(tb, b, ldb, pc, jc, kc, nc, bp);

      const bool add_to_c = accumulate || pc > 0;
      const long row_panels = (m + kMR - 1) / kMR;
      // Threads split only the M dimension; each row panel owns its C
      // rows and runs the identical instruction sequence regardless of
      // which thread executes it — bitwise deterministic.
      parallel_for(static_cast<std::size_t>(row_panels), /*grain=*/1,
                   [&](std::size_t begin, std::size_t end) {
                     for (std::size_t rp = begin; rp < end; ++rp) {
                       const long i0 = static_cast<long>(rp) * kMR;
                       const long mr = std::min(kMR, m - i0);
                       const float* abase = ta == Trans::kNo ? a + i0 * lda + pc
                                                             : a + pc * lda + i0;
                       const MicroFn kernel = kMicroKernels[mr - 1];
                       for (long jp = 0; jp < panels; ++jp) {
                         const long j0 = jp * kNR;
                         const long nr = std::min(kNR, nc - j0);
                         kernel(kc, abase, a_row_stride, a_col_stride, bp + jp * kc * kNR,
                                c + i0 * ldc + jc + j0, ldc, nr, add_to_c);
                       }
                     }
                   });
    }
  }
}

}  // namespace spectra::nn::gemm
