#include "nn/gemm.h"

#include <algorithm>
#include <vector>

#include "nn/dispatch.h"
#include "nn/gemm_micro.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace spectra::nn::gemm {

namespace {

obs::Counter& grows_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("gemm.workspace_grows");
  return c;
}

obs::Counter& calls_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("gemm.calls");
  return c;
}

obs::Gauge& bytes_gauge() {
  static obs::Gauge& g = obs::Registry::instance().gauge("gemm.workspace_bytes");
  return g;
}

// The active workspace of this thread: null means the implicit
// thread-local default below. WorkspaceScope swaps request-owned
// workspaces in and out (serve daemon); kernels never see the
// difference. Deliberately thread_local rather than a guarded shared
// structure — per-thread ownership is what keeps the GEMM hot path off
// the capability layer entirely (DESIGN §6d: nn holds no locks).
thread_local Workspace* tls_workspace = nullptr;

Workspace& thread_default_workspace() {
  thread_local Workspace tls_default_workspace;
  return tls_default_workspace;
}

// Pack the (kc × nc) block of op(B) starting at (pc, jc) into nr-wide
// column panels: dst[panel jp][p][j] at offset (jp*kc + p)*nr + j.
// Columns beyond nc are zero-padded; the padded lanes feed accumulator
// columns that are never written back. `nr` is the active dispatch
// level's panel width.
void pack_b(Trans tb, const float* b, long ldb, long pc, long jc, long kc, long nc, long nr,
            float* dst) {
  const long panels = (nc + nr - 1) / nr;
  for (long jp = 0; jp < panels; ++jp) {
    const long j0 = jp * nr;
    const long jw = std::min(nr, nc - j0);
    float* panel = dst + jp * kc * nr;
    if (tb == Trans::kNo) {
      // op(B)[p][j] = b[(pc+p)*ldb + jc+j]: copy row fragments.
      for (long p = 0; p < kc; ++p) {
        const float* src = b + (pc + p) * ldb + jc + j0;
        float* out = panel + p * nr;
        for (long j = 0; j < jw; ++j) out[j] = src[j];
        for (long j = jw; j < nr; ++j) out[j] = 0.0f;
      }
    } else {
      // op(B)[p][j] = b[(jc+j)*ldb + pc+p]: gather nr source rows.
      for (long p = 0; p < kc; ++p) {
        float* out = panel + p * nr;
        for (long j = 0; j < nr; ++j) {
          out[j] = j < jw ? b[(jc + j0 + j) * ldb + pc + p] : 0.0f;
        }
      }
    }
  }
}

// The micro-kernel template itself lives in gemm_micro.h so the per-ISA
// TUs (gemm_kernels_avx2.cpp, gemm_kernels_avx512.cpp) instantiate the
// same body at wider lanes. This TU owns the always-available levels:
// the 4-lane generic tile (the pre-dispatch kernel, unchanged shapes)
// and, on AArch64, a wider-unrolled NEON tile.
constexpr detail::MicroKernelSet kGenericSet = {
    /*mr=*/kMR,
    /*nr=*/kNR,
    {detail::micro_kernel<1, 4, 2>, detail::micro_kernel<2, 4, 2>, detail::micro_kernel<3, 4, 2>,
     detail::micro_kernel<4, 4, 2>, nullptr, nullptr, nullptr, nullptr},
};
static_assert(kNR == 4 * 2, "generic tile instantiation must match gemm.h blocking constants");

#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
constexpr detail::MicroKernelSet kNeonSet = {
    /*mr=*/4,
    /*nr=*/16,
    {detail::micro_kernel<1, 4, 4>, detail::micro_kernel<2, 4, 4>, detail::micro_kernel<3, 4, 4>,
     detail::micro_kernel<4, 4, 4>, nullptr, nullptr, nullptr, nullptr},
};
#endif

// The register tile sgemm feeds: resolved once per call from the
// dispatch layer (the level itself is selected once per process).
const detail::MicroKernelSet& active_kernel_set() {
  switch (active_simd_level()) {
    case SimdLevel::kAvx2:
      return *detail::kernels_avx2();
    case SimdLevel::kAvx512:
      return *detail::kernels_avx512();
    case SimdLevel::kNeon:
      return *detail::kernels_neon();
    case SimdLevel::kGeneric:
      break;
  }
  return *detail::kernels_generic();
}

}  // namespace

namespace detail {

const MicroKernelSet* kernels_generic() { return &kGenericSet; }

const MicroKernelSet* kernels_neon() {
#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
  return &kNeonSet;
#else
  return nullptr;
#endif
}

}  // namespace detail

Workspace::~Workspace() { release(); }

float* Workspace::get(int slot, std::size_t floats) {
  SG_CHECK(slot >= 0 && slot < kScratchSlots, "gemm scratch slot out of range");
  std::vector<float>& arena = arenas_[slot];
  if (arena.size() < floats) {
    const std::size_t grown = floats - arena.size();
    arena.resize(floats);
    grows_counter().inc();
    bytes_gauge().add(static_cast<double>(grown * sizeof(float)));
  }
  return arena.data();
}

void Workspace::release() {
  const std::size_t held = bytes();
  if (held == 0) return;
  for (std::vector<float>& arena : arenas_) {
    arena.clear();
    arena.shrink_to_fit();
  }
  bytes_gauge().add(-static_cast<double>(held));
}

std::size_t Workspace::bytes() const {
  std::size_t total = 0;
  for (const std::vector<float>& arena : arenas_) total += arena.size() * sizeof(float);
  return total;
}

WorkspaceScope::WorkspaceScope(Workspace& ws) : prev_(tls_workspace) { tls_workspace = &ws; }

WorkspaceScope::~WorkspaceScope() { tls_workspace = prev_; }

float* scratch(int slot, std::size_t floats) {
  Workspace* ws = tls_workspace;
  return (ws != nullptr ? *ws : thread_default_workspace()).get(slot, floats);
}

void sgemm(Trans ta, Trans tb, long m, long n, long k, const float* a, long lda, const float* b,
           long ldb, float* c, long ldc, bool accumulate) {
  SG_CHECK(m >= 0 && n >= 0 && k >= 0, "sgemm negative extent");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) {
      for (long i = 0; i < m; ++i) std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
    return;
  }
  calls_counter().inc();
  SG_PROFILE_SCOPE("nn/gemm");
  if (obs::profile_enabled()) {
    // 2·M·N·K flops; traffic counts each operand once plus the C
    // write-back (the roofline convention, ignoring blocking reuse).
    obs::profile_add_work(
        2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k),
        (static_cast<double>(m) * static_cast<double>(k) +
         static_cast<double>(k) * static_cast<double>(n) +
         2.0 * static_cast<double>(m) * static_cast<double>(n)) *
            4.0);
  }

  const long a_row_stride = ta == Trans::kNo ? lda : 1;
  const long a_col_stride = ta == Trans::kNo ? 1 : lda;

  // The register tile of the active SIMD level. Within a level the tile
  // is fixed, the k loop stays serial, and threads still split only M —
  // so results are bitwise identical for any thread count, and (because
  // every level accumulates each C element in the same p-ascending
  // order, gemm_micro.h) across dispatch levels too.
  const detail::MicroKernelSet& ks = active_kernel_set();
  const long mr_tile = ks.mr;
  const long nr_tile = ks.nr;

  for (long jc = 0; jc < n; jc += kNC) {
    const long nc = std::min(kNC, n - jc);
    const long panels = (nc + nr_tile - 1) / nr_tile;
    for (long pc = 0; pc < k; pc += kKC) {
      const long kc = std::min(kKC, k - pc);
      // One shared read-only packed block per (jc, pc); row panels below
      // all read it, so it is packed once on the calling thread.
      float* bp = scratch(0, static_cast<std::size_t>(panels * kc * nr_tile));
      pack_b(tb, b, ldb, pc, jc, kc, nc, nr_tile, bp);

      const bool add_to_c = accumulate || pc > 0;
      const long row_panels = (m + mr_tile - 1) / mr_tile;
      // Threads split only the M dimension; each row panel owns its C
      // rows and runs the identical instruction sequence regardless of
      // which thread executes it — bitwise deterministic.
      parallel_for(static_cast<std::size_t>(row_panels), /*grain=*/1,
                   [&](std::size_t begin, std::size_t end) {
                     for (std::size_t rp = begin; rp < end; ++rp) {
                       const long i0 = static_cast<long>(rp) * mr_tile;
                       const long mr = std::min(mr_tile, m - i0);
                       const float* abase = ta == Trans::kNo ? a + i0 * lda + pc
                                                             : a + pc * lda + i0;
                       const detail::MicroFn kernel = ks.fns[mr - 1];
                       for (long jp = 0; jp < panels; ++jp) {
                         const long j0 = jp * nr_tile;
                         const long nr = std::min(nr_tile, nc - j0);
                         kernel(kc, abase, a_row_stride, a_col_stride, bp + jp * kc * nr_tile,
                                c + i0 * ldc + jc + j0, ldc, nr, add_to_c);
                       }
                     }
                   });
    }
  }
}

}  // namespace spectra::nn::gemm
