#include "nn/layers.h"

#include "nn/init.h"
#include "util/error.h"

namespace spectra::nn {

std::vector<Var> Module::parameters() const {
  std::vector<Var> all = params_;
  for (const Module* child : children_) {
    const std::vector<Var> sub = child->parameters();
    all.insert(all.end(), sub.begin(), sub.end());
  }
  return all;
}

long Module::parameter_count() const {
  long total = 0;
  for (const Var& p : parameters()) total += p.value().numel();
  return total;
}

void Module::zero_grad() const {
  for (Var p : parameters()) p.zero_grad();
}

Var Module::register_parameter(Tensor initial_value) {
  params_.push_back(Var::leaf(std::move(initial_value)));
  return params_.back();
}

void Module::register_child(Module& child) { children_.push_back(&child); }

Var apply_activation(const Var& x, Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return relu(x);
    case Activation::kLeakyRelu:
      return leaky_relu(x);
    case Activation::kTanh:
      return vtanh(x);
    case Activation::kSigmoid:
      return sigmoid(x);
  }
  SG_THROW("unknown activation");
}

Linear::Linear(long in_features, long out_features, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  SG_CHECK(in_features > 0 && out_features > 0, "Linear requires positive dimensions");
  weight_ = register_parameter(
      init::xavier_uniform({in_features, out_features}, in_features, out_features, rng));
  bias_ = register_parameter(init::zeros({out_features}));
}

Var Linear::forward(const Var& x) const {
  SG_CHECK(x.value().rank() == 2 && x.value().dim(1) == in_features_,
           "Linear input must be [B, " + std::to_string(in_features_) + "]");
  return linear(x, weight_, bias_);
}

Mlp::Mlp(std::vector<long> dims, Activation hidden, Activation output, Rng& rng)
    : hidden_(hidden), output_(output) {
  SG_CHECK(dims.size() >= 2, "Mlp requires at least input and output dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    register_child(*layers_.back());
  }
}

Var Mlp::forward(const Var& x) const {
  Var h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->forward(h);
    h = apply_activation(h, i + 1 < layers_.size() ? hidden_ : output_);
  }
  return h;
}

Conv2dLayer::Conv2dLayer(long in_channels, long out_channels, long kernel, Conv2dSpec spec,
                         Rng& rng)
    : out_channels_(out_channels), spec_(spec) {
  SG_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0,
           "Conv2dLayer requires positive dimensions");
  const long fan_in = in_channels * kernel * kernel;
  const long fan_out = out_channels * kernel * kernel;
  weight_ = register_parameter(
      init::xavier_uniform({out_channels, in_channels, kernel, kernel}, fan_in, fan_out, rng));
  bias_ = register_parameter(init::zeros({out_channels}));
}

Var Conv2dLayer::forward(const Var& x) const { return conv2d(x, weight_, bias_, spec_); }

ConvStack::ConvStack(std::vector<long> channels, long kernel, Conv2dSpec spec, Activation hidden,
                     Activation output, Rng& rng)
    : hidden_(hidden), output_(output) {
  SG_CHECK(channels.size() >= 2, "ConvStack requires at least in/out channels");
  for (std::size_t i = 0; i + 1 < channels.size(); ++i) {
    layers_.push_back(std::make_unique<Conv2dLayer>(channels[i], channels[i + 1], kernel, spec, rng));
    register_child(*layers_.back());
  }
}

Var ConvStack::forward(const Var& x) const {
  Var h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->forward(h);
    h = apply_activation(h, i + 1 < layers_.size() ? hidden_ : output_);
  }
  return h;
}

}  // namespace spectra::nn
