// Layer/module abstraction: parameter registration, Linear, MLP, and
// Conv2d layers. Recurrent layers live in nn/lstm.h.

#pragma once

#include <memory>
#include <vector>

#include "nn/autograd.h"
#include "nn/conv.h"
#include "nn/ops.h"
#include "util/rng.h"

namespace spectra::nn {

// Base class for anything with trainable parameters. Children are
// registered non-owning (the owner stores them as members), mirroring the
// usual module-tree design without reference cycles.
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All parameters of this module and registered children, in
  // registration order (stable — serialization relies on it).
  std::vector<Var> parameters() const;

  long parameter_count() const;

  void zero_grad() const;

 protected:
  Var register_parameter(Tensor initial_value);
  void register_child(Module& child);

 private:
  std::vector<Var> params_;
  std::vector<const Module*> children_;
};

enum class Activation { kNone, kRelu, kLeakyRelu, kTanh, kSigmoid };

Var apply_activation(const Var& x, Activation activation);

// Fully connected layer: y = x W + b, x is [B, in].
class Linear : public Module {
 public:
  Linear(long in_features, long out_features, Rng& rng);
  Var forward(const Var& x) const;

  long in_features() const { return in_features_; }
  long out_features() const { return out_features_; }

 private:
  long in_features_;
  long out_features_;
  Var weight_;  // [in, out]
  Var bias_;    // [out]
};

// Multilayer perceptron over rank-2 inputs.
class Mlp : public Module {
 public:
  // dims = {in, h1, ..., out}; `hidden` applied between layers, `output`
  // applied after the last.
  Mlp(std::vector<long> dims, Activation hidden, Activation output, Rng& rng);
  Var forward(const Var& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation hidden_;
  Activation output_;
};

// Conv2d layer with owned weight/bias.
class Conv2dLayer : public Module {
 public:
  Conv2dLayer(long in_channels, long out_channels, long kernel, Conv2dSpec spec, Rng& rng);
  Var forward(const Var& x) const;

  long out_channels() const { return out_channels_; }

 private:
  long out_channels_;
  Conv2dSpec spec_;
  Var weight_;
  Var bias_;
};

// A stack of conv layers with a shared activation between them.
class ConvStack : public Module {
 public:
  // channels = {in, c1, ..., out}; same kernel/padding for every layer;
  // `hidden` between layers, `output` after the last.
  ConvStack(std::vector<long> channels, long kernel, Conv2dSpec spec, Activation hidden,
            Activation output, Rng& rng);
  Var forward(const Var& x) const;

 private:
  std::vector<std::unique_ptr<Conv2dLayer>> layers_;
  Activation hidden_;
  Activation output_;
};

}  // namespace spectra::nn
