// First-order optimizers operating on parameter Vars. Since Vars share
// their node, the optimizer and the model see the same storage; `step()`
// updates values in place from the gradients of the last backward().

#pragma once

#include <unordered_map>
#include <vector>

#include "nn/autograd.h"

namespace spectra::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  void zero_grad();
  virtual void step() = 0;

  // Clip all gradients to the given L2 norm (no-op if already within).
  // Returns the pre-clip global norm (training telemetry reads it).
  double clip_grad_norm(float max_norm);

 protected:
  std::vector<Var> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f);
  void step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  // Full optimizer state for checkpoint/resume: bias-correction step
  // count plus first/second moment estimates, in parameter order.
  long step_count() const { return t_; }
  const std::vector<Tensor>& first_moments() const { return m_; }
  const std::vector<Tensor>& second_moments() const { return v_; }

  // Restore state captured by the accessors above. Moment shapes must
  // match this optimizer's parameters; throws spectra::Error otherwise.
  void restore_state(long step_count, std::vector<Tensor> m, std::vector<Tensor> v);

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  long t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace spectra::nn
