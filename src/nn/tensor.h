// Dense N-dimensional float tensor (row-major), the value type of the
// from-scratch training stack (DESIGN.md §3, `src/nn/`).
//
// The tensor is a plain value: copyable, movable, no view aliasing. All
// learning-rate-critical kernels (matmul, conv) live in ops.cpp/conv.cpp
// and operate on raw data pointers; Tensor itself only manages shape and
// storage, which keeps its invariant trivial (size == product(shape)).

#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace spectra::nn {

using Shape = std::vector<long>;

// Total number of elements described by a shape (1 for rank-0).
long shape_numel(const Shape& shape);

// Human-readable "[2, 3, 4]" form for diagnostics.
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  // Rank-0 scalar zero.
  Tensor() : shape_{}, data_(1, 0.0f) {}

  // Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  // Tensor with explicit contents; data.size() must equal numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  static Tensor scalar(float v);
  static Tensor full(Shape shape, float v);

  int rank() const { return static_cast<int>(shape_.size()); }
  const Shape& shape() const { return shape_; }

  // Extent along dimension `i`; negative `i` counts from the back.
  long dim(int i) const;

  long numel() const { return static_cast<long>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](long flat_index) { return data_[static_cast<std::size_t>(flat_index)]; }
  float operator[](long flat_index) const { return data_[static_cast<std::size_t>(flat_index)]; }

  // Multi-index accessor (bounds-checked); convenient in tests and
  // non-critical paths.
  float& at(std::initializer_list<long> index);
  float at(std::initializer_list<long> index) const;

  // Flat offset of a multi-index.
  long offset(std::initializer_list<long> index) const;

  // Same data, new shape (numel must match).
  Tensor reshaped(Shape new_shape) const;

  // Fill all elements with `v`.
  void fill(float v);

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  // Elementwise in-place accumulation; shapes must match.
  void add_(const Tensor& other);

  // Multiply all elements by `v`.
  void scale_(float v);

  // Sum / mean / min / max over all elements.
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;

  // True if any element is NaN or infinite.
  bool has_nonfinite() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace spectra::nn
