#include "nn/dispatch.h"

#include <atomic>

#include "nn/gemm_micro.h"
#include "obs/metrics.h"
#include "util/env.h"
#include "util/error.h"
#include "util/log.h"

namespace spectra::nn {

namespace {

obs::Gauge& simd_gauge() {
  static obs::Gauge& g = obs::Registry::instance().gauge("gemm.simd_level");
  return g;
}

// One-time dispatch selection. -1 = not yet selected; otherwise the
// SimdLevel value. Concurrent first calls race benignly: both sides
// compute the same environment-determined level and store the same
// value, and set_simd_level (tests only) is called from a single thread.
// An atomic, not a mutex, so dispatch stays outside the lock hierarchy
// (DESIGN §6d) and can be consulted from under any layer's lock.
std::atomic<int>& active_state() {
  static std::atomic<int> g_active{-1};
  return g_active;
}

// Does the CPU this process runs on implement the level's ISA?
bool cpu_supports(SimdLevel level) {
  switch (level) {
    case SimdLevel::kGeneric:
      return true;
    case SimdLevel::kAvx2:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdLevel::kAvx512:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
    case SimdLevel::kNeon:
#if defined(__aarch64__)
      return true;  // AArch64 mandates Advanced SIMD
#else
      return false;
#endif
  }
  return false;
}

// Did this build actually compile kernels for the level? (The per-ISA
// TUs fall back to null accessors when the compiler lacks the target.)
bool build_has_kernels(SimdLevel level) {
  switch (level) {
    case SimdLevel::kGeneric:
      return gemm::detail::kernels_generic() != nullptr;
    case SimdLevel::kAvx2:
      return gemm::detail::kernels_avx2() != nullptr;
    case SimdLevel::kAvx512:
      return gemm::detail::kernels_avx512() != nullptr;
    case SimdLevel::kNeon:
      return gemm::detail::kernels_neon() != nullptr;
  }
  return false;
}

SimdLevel select_level() {
  const std::string requested = env_string("SPECTRA_SIMD", "");
  if (!requested.empty()) {
    const SimdLevel level = parse_simd_level(requested);
    SG_CHECK(simd_level_available(level),
             "SPECTRA_SIMD=" + requested + " is not supported by this CPU/build");
    return level;
  }
  // Widest first; generic is always available.
  for (SimdLevel level : {SimdLevel::kAvx512, SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (simd_level_available(level)) return level;
  }
  return SimdLevel::kGeneric;
}

void publish(SimdLevel level) {
  simd_gauge().set(static_cast<double>(static_cast<int>(level)));
  SG_LOG_DEBUG << "gemm simd dispatch level: " << simd_level_name(level);
}

}  // namespace

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kGeneric:
      return "generic";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "generic";
}

SimdLevel parse_simd_level(const std::string& name) {
  if (name == "generic") return SimdLevel::kGeneric;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  if (name == "neon") return SimdLevel::kNeon;
  SG_CHECK(false, "unknown SIMD level '" + name + "' (expected generic|avx2|avx512|neon)");
  return SimdLevel::kGeneric;
}

bool simd_level_available(SimdLevel level) {
  return cpu_supports(level) && build_has_kernels(level);
}

SimdLevel active_simd_level() {
  const int cached = active_state().load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<SimdLevel>(cached);
  const SimdLevel level = select_level();
  active_state().store(static_cast<int>(level), std::memory_order_release);
  publish(level);
  return level;
}

void set_simd_level(SimdLevel level) {
  SG_CHECK(simd_level_available(level),
           std::string("cannot force SIMD level '") + simd_level_name(level) +
               "': not supported by this CPU/build");
  active_state().store(static_cast<int>(level), std::memory_order_release);
  publish(level);
}

}  // namespace spectra::nn
