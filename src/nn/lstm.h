// Recurrent layers: LSTMCell/LSTM (batched, as used by the SpectraGAN
// residual time-series generator and time discriminator, §2.2.2–2.2.3)
// and ConvLSTMCell (for the Conv{3D+LSTM} baseline, §3.3).

#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace spectra::nn {

// Hidden/cell state pair threaded through recurrent steps.
struct LstmState {
  Var h;
  Var c;
};

// Standard LSTM cell (Hochreiter & Schmidhuber 1997) with fused gate
// projection: gates = x Wx + h Wh + b, split into i, f, g, o.
class LSTMCell : public Module {
 public:
  LSTMCell(long input_size, long hidden_size, Rng& rng);

  // Zero state for batch size B (constants; no gradient).
  LstmState initial_state(long batch) const;

  // One step: x is [B, input_size]; returns the new state.
  LstmState step(const Var& x, const LstmState& state) const;

  // Input projection x·Wx as one GEMM. `x` may batch several timesteps
  // as [T·B, input_size]; slice the result per step and feed it to
  // step_projected. Lstm::forward uses this to turn T small per-step
  // matmuls into a single [T·B, 4H] product.
  Var project_input(const Var& x) const;

  // One step from a precomputed input projection ([B, 4*hidden]). Runs
  // the fused gate kernel (ops.h lstm_fused_step): one autograd node
  // pair per step instead of the ~12-node op composition.
  LstmState step_projected(const Var& x_proj, const LstmState& state) const;

  // The pre-fusion op-by-op composition (add_rowvec/slice/sigmoid/tanh/
  // mul chains). Kept as the reference the fused kernel is tested
  // bitwise against, and as the honest baseline for bench_kernels'
  // lstm speedup entries. Produces identical values and gradients to
  // step_projected, just slower.
  LstmState step_projected_unfused(const Var& x_proj, const LstmState& state) const;

  long input_size() const { return input_size_; }
  long hidden_size() const { return hidden_size_; }

 private:
  long input_size_;
  long hidden_size_;
  Var weight_x_;  // [input, 4*hidden]
  Var weight_h_;  // [hidden, 4*hidden]
  Var bias_;      // [4*hidden] (forget-gate slice initialized to 1)
};

// Multi-step LSTM with a per-step linear head. Consumes a sequence of
// [B, input] vars and emits a sequence of [B, output] vars.
class Lstm : public Module {
 public:
  Lstm(long input_size, long hidden_size, long output_size, Rng& rng,
       Activation output_activation = Activation::kNone);

  // Run over `inputs` (each [B, input]); returns per-step outputs.
  std::vector<Var> forward(const std::vector<Var>& inputs) const;

  // Run `steps` iterations feeding the same input every step (used when
  // conditioning on a static context embedding).
  std::vector<Var> forward_repeat(const Var& input, long steps) const;

  const LSTMCell& cell() const { return cell_; }
  const Linear& head() const { return head_; }

 private:
  LSTMCell cell_;
  Linear head_;
  Activation output_activation_;
};

// Convolutional LSTM cell (Shi et al. 2015): gates are convolutions over
// the channel-concatenated [x, h] feature map. States are [B, hidden, H, W].
class ConvLSTMCell : public Module {
 public:
  ConvLSTMCell(long input_channels, long hidden_channels, long kernel, Rng& rng);

  LstmState initial_state(long batch, long height, long width) const;

  // x is [B, input_channels, H, W].
  LstmState step(const Var& x, const LstmState& state) const;

  long hidden_channels() const { return hidden_channels_; }

 private:
  long input_channels_;
  long hidden_channels_;
  Conv2dLayer gates_;  // (input+hidden) -> 4*hidden channels
};

}  // namespace spectra::nn
