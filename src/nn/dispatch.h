// Runtime SIMD dispatch for the kernel layer (DESIGN.md §6c).
//
// The GEMM micro-kernel is compiled at several register widths (4-lane
// generic, 8-lane AVX2, 16-lane AVX-512, wide-unrolled NEON); at first
// use the process picks the widest level the CPU *and* the build
// support, overridable with the `SPECTRA_SIMD` knob (values: generic |
// avx2 | avx512 | neon). Every level preserves the per-element reduction
// order of the generic kernel (see gemm_micro.h), so the choice affects
// throughput only — results are bitwise identical across levels and
// thread counts.

#pragma once

#include <string>

namespace spectra::nn {

enum class SimdLevel { kGeneric = 0, kAvx2 = 1, kAvx512 = 2, kNeon = 3 };

// Lower-case knob spelling ("generic", "avx2", "avx512", "neon").
const char* simd_level_name(SimdLevel level);

// Inverse of simd_level_name; SG_CHECK-fails on an unknown spelling so a
// typo'd SPECTRA_SIMD dies loudly instead of silently running generic.
SimdLevel parse_simd_level(const std::string& name);

// True when the CPU supports the level and this build compiled its
// kernels (a cross-compile without -mavx512f support reports false even
// on AVX-512 hardware).
bool simd_level_available(SimdLevel level);

// The level sgemm dispatches to. Selected once on first call: honours
// SPECTRA_SIMD when set (SG_CHECK-fails if unavailable), otherwise the
// widest available level. Published in the `gemm.simd_level` gauge.
SimdLevel active_simd_level();

// Test override: force a specific level for the rest of the process (or
// until the next call). SG_CHECK-fails when unavailable. Used by the
// cross-level equality suites; production code never calls this.
void set_simd_level(SimdLevel level);

}  // namespace spectra::nn
