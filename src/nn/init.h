// Weight initialization schemes (Glorot/He), parameterized by an explicit
// Rng so model construction is reproducible.

#pragma once

#include "nn/tensor.h"
#include "util/rng.h"

namespace spectra::nn::init {

// Uniform(-a, a) with a = sqrt(6 / (fan_in + fan_out)) — Glorot/Xavier.
Tensor xavier_uniform(Shape shape, long fan_in, long fan_out, Rng& rng);

// Normal(0, sqrt(2 / fan_in)) — He, for ReLU-family activations.
Tensor he_normal(Shape shape, long fan_in, Rng& rng);

// All zeros (biases).
Tensor zeros(Shape shape);

// Normal(0, stddev).
Tensor gaussian(Shape shape, float stddev, Rng& rng);

}  // namespace spectra::nn::init
