#include "nn/conv.h"

#include <algorithm>

#include "util/error.h"
#include "util/thread_pool.h"

namespace spectra::nn {

long conv2d_out_extent(long in, long kernel, long stride, long padding) {
  SG_CHECK(stride >= 1 && padding >= 0 && kernel >= 1, "invalid conv2d geometry");
  const long span = in + 2 * padding - kernel;
  SG_CHECK(span >= 0, "conv2d kernel larger than padded input");
  return span / stride + 1;
}

namespace {

// Valid kernel-tap range [lo, hi) for an output coordinate, so the inner
// loops never branch on padding.
inline void tap_range(long out_coord, long stride, long padding, long in_extent, long kernel,
                      long& lo, long& hi) {
  const long origin = out_coord * stride - padding;
  lo = std::max<long>(0, -origin);
  hi = std::min<long>(kernel, in_extent - origin);
}

}  // namespace

Var conv2d(const Var& input, const Var& weight, const Var& bias, const Conv2dSpec& spec) {
  const Tensor& x = input.value();
  const Tensor& w = weight.value();
  const Tensor& b = bias.value();
  SG_CHECK(x.rank() == 4, "conv2d input must be [N,C,H,W]");
  SG_CHECK(w.rank() == 4, "conv2d weight must be [O,C,kh,kw]");
  SG_CHECK(b.rank() == 1, "conv2d bias must be [O]");
  const long N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  const long O = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  SG_CHECK(w.dim(1) == C, "conv2d weight channel mismatch");
  SG_CHECK(b.dim(0) == O, "conv2d bias length mismatch");
  const long s = spec.stride, p = spec.padding;
  const long Ho = conv2d_out_extent(H, kh, s, p);
  const long Wo = conv2d_out_extent(W, kw, s, p);

  Tensor y({N, O, Ho, Wo});
  {
    const float* px = x.data();
    const float* pw = w.data();
    float* py = y.data();
    // Each (n, o) output plane is written by exactly one chunk, with the
    // same inner-loop order as the serial code — bitwise deterministic.
    parallel_for(
        static_cast<std::size_t>(N * O), /*grain=*/1,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t no = begin; no < end; ++no) {
            const long n = static_cast<long>(no) / O;
            const long o = static_cast<long>(no) % O;
            float* yplane = py + (n * O + o) * Ho * Wo;
            const float bias_v = b[o];
            for (long i = 0; i < Ho * Wo; ++i) yplane[i] = bias_v;
            for (long c = 0; c < C; ++c) {
              const float* xplane = px + (n * C + c) * H * W;
              const float* wplane = pw + (o * C + c) * kh * kw;
              for (long oh = 0; oh < Ho; ++oh) {
                long r_lo, r_hi;
                tap_range(oh, s, p, H, kh, r_lo, r_hi);
                const long ih0 = oh * s - p;
                float* yrow = yplane + oh * Wo;
                for (long r = r_lo; r < r_hi; ++r) {
                  const float* xrow = xplane + (ih0 + r) * W;
                  const float* wrow = wplane + r * kw;
                  for (long ow = 0; ow < Wo; ++ow) {
                    long q_lo, q_hi;
                    tap_range(ow, s, p, W, kw, q_lo, q_hi);
                    const long iw0 = ow * s - p;
                    float acc = 0.0f;
                    for (long q = q_lo; q < q_hi; ++q) acc += xrow[iw0 + q] * wrow[q];
                    yrow[ow] += acc;
                  }
                }
              }
            }
          }
        });
  }

  return Var::make_op(
      std::move(y), {input, weight, bias},
      [N, C, H, W, O, kh, kw, s, p, Ho, Wo](const Tensor& g, std::vector<Var>& parents) {
        const Tensor& x = parents[0].value();
        const Tensor& w = parents[1].value();
        const bool need_dx = parents[0].requires_grad();
        const bool need_dw = parents[1].requires_grad();
        const bool need_db = parents[2].requires_grad();
        Tensor* gx = need_dx ? &parents[0].grad_storage() : nullptr;
        Tensor* gw = need_dw ? &parents[1].grad_storage() : nullptr;
        Tensor* gb = need_db ? &parents[2].grad_storage() : nullptr;

        // The three gradients are computed by separate loop nests so every
        // parallel chunk owns a disjoint slice of exactly one buffer:
        // db over o, dx over (n, c) planes, dw over (o, c) planes. Within
        // a slice the reduction order matches the serial code (n ascending,
        // then the kernel-tap order), so results are bitwise identical for
        // any thread count.
        if (need_db) {
          parallel_for(static_cast<std::size_t>(O), /*grain=*/1,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t ou = begin; ou < end; ++ou) {
                           const long o = static_cast<long>(ou);
                           for (long n = 0; n < N; ++n) {
                             const float* grow = g.data() + (n * O + o) * Ho * Wo;
                             float acc = 0.0f;
                             for (long i = 0; i < Ho * Wo; ++i) acc += grow[i];
                             (*gb)[o] += acc;
                           }
                         }
                       });
        }

        if (need_dx) {
          parallel_for(
              static_cast<std::size_t>(N * C), /*grain=*/1,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t nc = begin; nc < end; ++nc) {
                  const long n = static_cast<long>(nc) / C;
                  const long c = static_cast<long>(nc) % C;
                  float* gxplane = gx->data() + (n * C + c) * H * W;
                  for (long o = 0; o < O; ++o) {
                    const float* gplane = g.data() + (n * O + o) * Ho * Wo;
                    const float* wplane = w.data() + (o * C + c) * kh * kw;
                    for (long oh = 0; oh < Ho; ++oh) {
                      long r_lo, r_hi;
                      tap_range(oh, s, p, H, kh, r_lo, r_hi);
                      const long ih0 = oh * s - p;
                      const float* grow = gplane + oh * Wo;
                      for (long r = r_lo; r < r_hi; ++r) {
                        float* gxrow = gxplane + (ih0 + r) * W;
                        const float* wrow = wplane + r * kw;
                        for (long ow = 0; ow < Wo; ++ow) {
                          const float gv = grow[ow];
                          if (gv == 0.0f) continue;
                          long q_lo, q_hi;
                          tap_range(ow, s, p, W, kw, q_lo, q_hi);
                          const long iw0 = ow * s - p;
                          for (long q = q_lo; q < q_hi; ++q) gxrow[iw0 + q] += gv * wrow[q];
                        }
                      }
                    }
                  }
                }
              });
        }

        if (need_dw) {
          parallel_for(
              static_cast<std::size_t>(O * C), /*grain=*/1,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t oc = begin; oc < end; ++oc) {
                  const long o = static_cast<long>(oc) / C;
                  const long c = static_cast<long>(oc) % C;
                  float* gwplane = gw->data() + (o * C + c) * kh * kw;
                  for (long n = 0; n < N; ++n) {
                    const float* gplane = g.data() + (n * O + o) * Ho * Wo;
                    const float* xplane = x.data() + (n * C + c) * H * W;
                    for (long oh = 0; oh < Ho; ++oh) {
                      long r_lo, r_hi;
                      tap_range(oh, s, p, H, kh, r_lo, r_hi);
                      const long ih0 = oh * s - p;
                      const float* grow = gplane + oh * Wo;
                      for (long r = r_lo; r < r_hi; ++r) {
                        const float* xrow = xplane + (ih0 + r) * W;
                        float* gwrow = gwplane + r * kw;
                        for (long ow = 0; ow < Wo; ++ow) {
                          const float gv = grow[ow];
                          if (gv == 0.0f) continue;
                          long q_lo, q_hi;
                          tap_range(ow, s, p, W, kw, q_lo, q_hi);
                          const long iw0 = ow * s - p;
                          for (long q = q_lo; q < q_hi; ++q) gwrow[q] += gv * xrow[iw0 + q];
                        }
                      }
                    }
                  }
                }
              });
        }
      });
}

}  // namespace spectra::nn
