#include "nn/conv.h"

#include <algorithm>

#include "nn/gemm.h"
#include "obs/profile.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace spectra::nn {

long conv2d_out_extent(long in, long kernel, long stride, long padding) {
  SG_CHECK(stride >= 1 && padding >= 0 && kernel >= 1, "invalid conv2d geometry");
  const long span = in + 2 * padding - kernel;
  SG_CHECK(span >= 0, "conv2d kernel larger than padded input");
  return span / stride + 1;
}

namespace {

// Valid kernel-tap range [lo, hi) for an output coordinate, so the inner
// loops never branch on padding.
inline void tap_range(long out_coord, long stride, long padding, long in_extent, long kernel,
                      long& lo, long& hi) {
  const long origin = out_coord * stride - padding;
  lo = std::max<long>(0, -origin);
  hi = std::min<long>(kernel, in_extent - origin);
}

struct ConvGeom {
  long N, C, H, W, O, kh, kw, s, p, Ho, Wo;
  long ckk() const { return C * kh * kw; }
  long out_pixels() const { return Ho * Wo; }
  // 1×1 stride-1 unpadded convs are a plain channel mix: GEMM directly
  // on the input planes, no column matrix needed.
  bool is_pointwise() const { return kh == 1 && kw == 1 && s == 1 && p == 0; }
};

// Below this per-sample contraction size (2·O·C·kh·kw·Ho·Wo flops) the
// im2col copy costs more than the GEMM saves; kAuto falls back to the
// direct kernels.
constexpr long kDirectFlopThreshold = 16384;

bool resolve_use_gemm(const ConvGeom& g, Conv2dImpl impl) {
  if (impl == Conv2dImpl::kDirect) return false;
  if (impl == Conv2dImpl::kIm2col) return true;
  return 2 * g.O * g.ckk() * g.out_pixels() >= kDirectFlopThreshold;
}

// Attribute one conv contraction's work via its im2col dimensions:
// `passes` contractions of 2·O·ckk·out_pixels flops per sample, with the
// operand planes counted once each for traffic.
void add_conv_work(const ConvGeom& g, long passes) {
  if (passes == 0 || !obs::profile_enabled()) return;
  obs::profile_add_work(
      static_cast<double>(passes) * 2.0 * static_cast<double>(g.N * g.O) *
          static_cast<double>(g.ckk()) * static_cast<double>(g.out_pixels()),
      static_cast<double>(passes) * static_cast<double>(g.N) *
          (static_cast<double>(g.C * g.H * g.W) + static_cast<double>(g.O * g.ckk()) +
           static_cast<double>(g.O * g.out_pixels())) *
          4.0);
}

// Patch matrix for one sample: col[(c*kh+r)*kw+q][oh*Wo+ow] =
// x[c][oh*s-p+r][ow*s-p+q], zero where the tap falls in the padding.
void im2col(const ConvGeom& g, const float* xplane, float* col) {
  for (long c = 0; c < g.C; ++c) {
    for (long r = 0; r < g.kh; ++r) {
      for (long q = 0; q < g.kw; ++q) {
        float* dst = col + ((c * g.kh + r) * g.kw + q) * g.out_pixels();
        for (long oh = 0; oh < g.Ho; ++oh) {
          const long ih = oh * g.s - g.p + r;
          float* drow = dst + oh * g.Wo;
          if (ih < 0 || ih >= g.H) {
            std::fill(drow, drow + g.Wo, 0.0f);
            continue;
          }
          const float* xrow = xplane + (c * g.H + ih) * g.W;
          if (g.s == 1 && g.p == 0) {
            std::copy(xrow + q, xrow + q + g.Wo, drow);
            continue;
          }
          for (long ow = 0; ow < g.Wo; ++ow) {
            const long iw = ow * g.s - g.p + q;
            drow[ow] = (iw >= 0 && iw < g.W) ? xrow[iw] : 0.0f;
          }
        }
      }
    }
  }
}

// Scatter-add the column gradient back onto one input-gradient plane
// (the adjoint of im2col). Tap order (c, r, q, oh, ow) is fixed, so the
// accumulation order per input pixel never depends on threads.
void col2im_add(const ConvGeom& g, const float* dcol, float* gxplane) {
  for (long c = 0; c < g.C; ++c) {
    for (long r = 0; r < g.kh; ++r) {
      for (long q = 0; q < g.kw; ++q) {
        const float* src = dcol + ((c * g.kh + r) * g.kw + q) * g.out_pixels();
        for (long oh = 0; oh < g.Ho; ++oh) {
          const long ih = oh * g.s - g.p + r;
          if (ih < 0 || ih >= g.H) continue;
          const float* srow = src + oh * g.Wo;
          float* gxrow = gxplane + (c * g.H + ih) * g.W;
          for (long ow = 0; ow < g.Wo; ++ow) {
            const long iw = ow * g.s - g.p + q;
            if (iw >= 0 && iw < g.W) gxrow[iw] += srow[ow];
          }
        }
      }
    }
  }
}

// --- direct kernels (fallback for tiny shapes; pre-GEMM reference) ---

void forward_direct(const ConvGeom& g, const float* px, const float* pw, const float* pb,
                    float* py) {
  // Each (n, o) output plane is written by exactly one chunk, with the
  // same inner-loop order as the serial code — bitwise deterministic.
  parallel_for(
      static_cast<std::size_t>(g.N * g.O), /*grain=*/1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t no = begin; no < end; ++no) {
          const long n = static_cast<long>(no) / g.O;
          const long o = static_cast<long>(no) % g.O;
          float* yplane = py + (n * g.O + o) * g.out_pixels();
          const float bias_v = pb[o];
          for (long i = 0; i < g.out_pixels(); ++i) yplane[i] = bias_v;
          for (long c = 0; c < g.C; ++c) {
            const float* xplane = px + (n * g.C + c) * g.H * g.W;
            const float* wplane = pw + (o * g.C + c) * g.kh * g.kw;
            for (long oh = 0; oh < g.Ho; ++oh) {
              long r_lo, r_hi;
              tap_range(oh, g.s, g.p, g.H, g.kh, r_lo, r_hi);
              const long ih0 = oh * g.s - g.p;
              float* yrow = yplane + oh * g.Wo;
              for (long r = r_lo; r < r_hi; ++r) {
                const float* xrow = xplane + (ih0 + r) * g.W;
                const float* wrow = wplane + r * g.kw;
                for (long ow = 0; ow < g.Wo; ++ow) {
                  long q_lo, q_hi;
                  tap_range(ow, g.s, g.p, g.W, g.kw, q_lo, q_hi);
                  const long iw0 = ow * g.s - g.p;
                  float acc = 0.0f;
                  for (long q = q_lo; q < q_hi; ++q) acc += xrow[iw0 + q] * wrow[q];
                  yrow[ow] += acc;
                }
              }
            }
          }
        }
      });
}

void backward_direct_dx(const ConvGeom& g, const float* pg, const float* pw, float* pgx) {
  parallel_for(
      static_cast<std::size_t>(g.N * g.C), /*grain=*/1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t nc = begin; nc < end; ++nc) {
          const long n = static_cast<long>(nc) / g.C;
          const long c = static_cast<long>(nc) % g.C;
          float* gxplane = pgx + (n * g.C + c) * g.H * g.W;
          for (long o = 0; o < g.O; ++o) {
            const float* gplane = pg + (n * g.O + o) * g.out_pixels();
            const float* wplane = pw + (o * g.C + c) * g.kh * g.kw;
            for (long oh = 0; oh < g.Ho; ++oh) {
              long r_lo, r_hi;
              tap_range(oh, g.s, g.p, g.H, g.kh, r_lo, r_hi);
              const long ih0 = oh * g.s - g.p;
              const float* grow = gplane + oh * g.Wo;
              for (long r = r_lo; r < r_hi; ++r) {
                float* gxrow = gxplane + (ih0 + r) * g.W;
                const float* wrow = wplane + r * g.kw;
                for (long ow = 0; ow < g.Wo; ++ow) {
                  const float gv = grow[ow];
                  if (gv == 0.0f) continue;
                  long q_lo, q_hi;
                  tap_range(ow, g.s, g.p, g.W, g.kw, q_lo, q_hi);
                  const long iw0 = ow * g.s - g.p;
                  for (long q = q_lo; q < q_hi; ++q) gxrow[iw0 + q] += gv * wrow[q];
                }
              }
            }
          }
        }
      });
}

void backward_direct_dw(const ConvGeom& g, const float* pg, const float* px, float* pgw) {
  parallel_for(
      static_cast<std::size_t>(g.O * g.C), /*grain=*/1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t oc = begin; oc < end; ++oc) {
          const long o = static_cast<long>(oc) / g.C;
          const long c = static_cast<long>(oc) % g.C;
          float* gwplane = pgw + (o * g.C + c) * g.kh * g.kw;
          for (long n = 0; n < g.N; ++n) {
            const float* gplane = pg + (n * g.O + o) * g.out_pixels();
            const float* xplane = px + (n * g.C + c) * g.H * g.W;
            for (long oh = 0; oh < g.Ho; ++oh) {
              long r_lo, r_hi;
              tap_range(oh, g.s, g.p, g.H, g.kh, r_lo, r_hi);
              const long ih0 = oh * g.s - g.p;
              const float* grow = gplane + oh * g.Wo;
              for (long r = r_lo; r < r_hi; ++r) {
                const float* xrow = xplane + (ih0 + r) * g.W;
                float* gwrow = gwplane + r * g.kw;
                for (long ow = 0; ow < g.Wo; ++ow) {
                  const float gv = grow[ow];
                  if (gv == 0.0f) continue;
                  long q_lo, q_hi;
                  tap_range(ow, g.s, g.p, g.W, g.kw, q_lo, q_hi);
                  const long iw0 = ow * g.s - g.p;
                  for (long q = q_lo; q < q_hi; ++q) gwrow[q] += gv * xrow[iw0 + q];
                }
              }
            }
          }
        }
      });
}

// --- im2col + GEMM lowering ---

void forward_gemm(const ConvGeom& g, const float* px, const float* pw, const float* pb,
                  float* py) {
  // Parallel over samples: each worker fills its plane's bias rows,
  // materializes its own column matrix (thread-local scratch), and runs
  // the GEMM inline (nested parallel_for executes on the worker).
  parallel_for(
      static_cast<std::size_t>(g.N), /*grain=*/1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t nu = begin; nu < end; ++nu) {
          const long n = static_cast<long>(nu);
          float* yplane = py + n * g.O * g.out_pixels();
          for (long o = 0; o < g.O; ++o) {
            std::fill(yplane + o * g.out_pixels(), yplane + (o + 1) * g.out_pixels(), pb[o]);
          }
          const float* bmat;
          if (g.is_pointwise()) {
            bmat = px + n * g.C * g.H * g.W;  // x plane already is [C, H·W]
          } else {
            float* col = gemm::scratch(1, static_cast<std::size_t>(g.ckk() * g.out_pixels()));
            im2col(g, px + n * g.C * g.H * g.W, col);
            bmat = col;
          }
          gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kNo, g.O, g.out_pixels(), g.ckk(), pw,
                      g.ckk(), bmat, g.out_pixels(), yplane, g.out_pixels(),
                      /*accumulate=*/true);
        }
      });
}

void backward_gemm_dx(const ConvGeom& g, const float* pg, const float* pw, float* pgx) {
  // dcol = Wᵀ · G per sample, then col2im scatter-adds it onto the
  // sample's input-gradient plane; samples are disjoint, so parallel
  // over n (pointwise convs accumulate straight into the plane).
  parallel_for(
      static_cast<std::size_t>(g.N), /*grain=*/1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t nu = begin; nu < end; ++nu) {
          const long n = static_cast<long>(nu);
          const float* gplane = pg + n * g.O * g.out_pixels();
          float* gxplane = pgx + n * g.C * g.H * g.W;
          if (g.is_pointwise()) {
            gemm::sgemm(gemm::Trans::kTrans, gemm::Trans::kNo, g.C, g.out_pixels(), g.O, pw, g.C,
                        gplane, g.out_pixels(), gxplane, g.out_pixels(), /*accumulate=*/true);
            continue;
          }
          float* dcol = gemm::scratch(2, static_cast<std::size_t>(g.ckk() * g.out_pixels()));
          gemm::sgemm(gemm::Trans::kTrans, gemm::Trans::kNo, g.ckk(), g.out_pixels(), g.O, pw,
                      g.ckk(), gplane, g.out_pixels(), dcol, g.out_pixels(),
                      /*accumulate=*/false);
          col2im_add(g, dcol, gxplane);
        }
      });
}

void backward_gemm_dw(const ConvGeom& g, const float* pg, const float* px, float* pgw) {
  // dW += G · colᵀ accumulated sample by sample. The n loop stays serial
  // so the reduction order over samples is fixed; the GEMM inside fans
  // out over disjoint rows of dW.
  for (long n = 0; n < g.N; ++n) {
    const float* gplane = pg + n * g.O * g.out_pixels();
    const float* bmat;
    if (g.is_pointwise()) {
      bmat = px + n * g.C * g.H * g.W;
    } else {
      float* col = gemm::scratch(1, static_cast<std::size_t>(g.ckk() * g.out_pixels()));
      im2col(g, px + n * g.C * g.H * g.W, col);
      bmat = col;
    }
    gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kTrans, g.O, g.ckk(), g.out_pixels(), gplane,
                g.out_pixels(), bmat, g.out_pixels(), pgw, g.ckk(), /*accumulate=*/true);
  }
}

}  // namespace

Var conv2d(const Var& input, const Var& weight, const Var& bias, const Conv2dSpec& spec) {
  const Tensor& x = input.value();
  const Tensor& w = weight.value();
  const Tensor& b = bias.value();
  SG_CHECK(x.rank() == 4, "conv2d input must be [N,C,H,W]");
  SG_CHECK(w.rank() == 4, "conv2d weight must be [O,C,kh,kw]");
  SG_CHECK(b.rank() == 1, "conv2d bias must be [O]");
  ConvGeom g;
  g.N = x.dim(0), g.C = x.dim(1), g.H = x.dim(2), g.W = x.dim(3);
  g.O = w.dim(0), g.kh = w.dim(2), g.kw = w.dim(3);
  SG_CHECK(w.dim(1) == g.C, "conv2d weight channel mismatch");
  SG_CHECK(b.dim(0) == g.O, "conv2d bias length mismatch");
  g.s = spec.stride, g.p = spec.padding;
  g.Ho = conv2d_out_extent(g.H, g.kh, g.s, g.p);
  g.Wo = conv2d_out_extent(g.W, g.kw, g.s, g.p);
  const bool use_gemm = resolve_use_gemm(g, spec.impl);

  Tensor y({g.N, g.O, g.Ho, g.Wo});
  {
    SG_PROFILE_SCOPE("nn/conv2d_forward");
    add_conv_work(g, /*passes=*/1);
    if (use_gemm) {
      forward_gemm(g, x.data(), w.data(), b.data(), y.data());
    } else {
      forward_direct(g, x.data(), w.data(), b.data(), y.data());
    }
  }

  return Var::make_op(
      std::move(y), {input, weight, bias}, [g, use_gemm](const Tensor& grad, std::vector<Var>& parents) {
        const Tensor& px = parents[0].value();
        const Tensor& pw = parents[1].value();
        const bool need_dx = parents[0].requires_grad();
        const bool need_dw = parents[1].requires_grad();
        const bool need_db = parents[2].requires_grad();
        SG_PROFILE_SCOPE("nn/conv2d_backward");
        // dx and dw are each one more contraction of the forward's shape.
        add_conv_work(g, (need_dx ? 1 : 0) + (need_dw ? 1 : 0));

        // The three gradients are computed by separate loop nests so every
        // parallel chunk owns a disjoint slice of exactly one buffer. The
        // bias reduction is shared by both implementations; dx/dw go
        // through GEMM (per-sample planes / serial sample accumulation)
        // or the direct nests depending on the forward's choice.
        if (need_db) {
          Tensor* gb = &parents[2].grad_storage();
          const long O = g.O, N = g.N, pixels = g.out_pixels();
          parallel_for(static_cast<std::size_t>(O), /*grain=*/1,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t ou = begin; ou < end; ++ou) {
                           const long o = static_cast<long>(ou);
                           for (long n = 0; n < N; ++n) {
                             const float* grow = grad.data() + (n * O + o) * pixels;
                             float acc = 0.0f;
                             for (long i = 0; i < pixels; ++i) acc += grow[i];
                             (*gb)[o] += acc;
                           }
                         }
                       });
        }

        if (need_dx) {
          float* pgx = parents[0].grad_storage().data();
          if (use_gemm) {
            backward_gemm_dx(g, grad.data(), pw.data(), pgx);
          } else {
            backward_direct_dx(g, grad.data(), pw.data(), pgx);
          }
        }

        if (need_dw) {
          float* pgw = parents[1].grad_storage().data();
          if (use_gemm) {
            backward_gemm_dw(g, grad.data(), px.data(), pgw);
          } else {
            backward_direct_dw(g, grad.data(), px.data(), pgw);
          }
        }
      });
}

}  // namespace spectra::nn
