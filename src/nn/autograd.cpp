#include "nn/autograd.h"

#include <unordered_set>

#include "util/error.h"

namespace spectra::nn {

namespace detail {
struct Node {
  Tensor value;
  Tensor grad;             // allocated lazily in grad_storage()
  bool grad_allocated = false;
  bool requires_grad = false;
  std::vector<Var> parents;
  Var::BackwardFn backward;
};
}  // namespace detail

namespace {
// Per-thread autograd switch: thread_local by design, so InferenceGuard
// never synchronizes and nn stays lock-free (DESIGN §6d).
thread_local bool g_inference_mode = false;
}  // namespace

InferenceGuard::InferenceGuard() : previous_(g_inference_mode) { g_inference_mode = true; }

InferenceGuard::~InferenceGuard() { g_inference_mode = previous_; }

bool InferenceGuard::active() { return g_inference_mode; }

Var Var::leaf(Tensor value) {
  auto node = std::make_shared<detail::Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  return Var(std::move(node));
}

Var Var::constant(Tensor value) {
  auto node = std::make_shared<detail::Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  return Var(std::move(node));
}

bool Var::requires_grad() const {
  SG_CHECK(defined(), "requires_grad() on null Var");
  return node_->requires_grad;
}

const Tensor& Var::value() const {
  SG_CHECK(defined(), "value() on null Var");
  return node_->value;
}

Tensor& Var::value_mut() {
  SG_CHECK(defined(), "value_mut() on null Var");
  return node_->value;
}

const Tensor& Var::grad() const {
  SG_CHECK(defined(), "grad() on null Var");
  SG_CHECK(node_->grad_allocated, "grad accessed before backward()");
  return node_->grad;
}

Tensor& Var::grad_storage() {
  SG_CHECK(defined(), "grad_storage() on null Var");
  if (!node_->grad_allocated) {
    node_->grad = Tensor(node_->value.shape());
    node_->grad_allocated = true;
  }
  return node_->grad;
}

void Var::zero_grad() {
  SG_CHECK(defined(), "zero_grad() on null Var");
  if (node_->grad_allocated) node_->grad.fill(0.0f);
}

Var Var::make_op(Tensor value, std::vector<Var> parents, BackwardFn backward) {
  auto node = std::make_shared<detail::Node>();
  node->value = std::move(value);
  for (const Var& p : parents) {
    SG_CHECK(p.defined(), "op parent is a null Var");
    node->requires_grad = node->requires_grad || p.requires_grad();
  }
  if (g_inference_mode) {
    // No recording: the result behaves like a constant.
    node->requires_grad = false;
    return Var(std::move(node));
  }
  if (node->requires_grad) {
    node->parents = std::move(parents);
    node->backward = std::move(backward);
  }
  return Var(std::move(node));
}

void Var::backward() {
  SG_CHECK(defined(), "backward() on null Var");
  SG_CHECK(node_->value.numel() == 1, "backward() must start from a scalar");
  SG_CHECK(node_->requires_grad, "backward() from a Var with no grad-requiring ancestry");

  // Iterative post-order topological sort (recursion would overflow on
  // LSTM graphs that are hundreds of steps deep).
  std::vector<detail::Node*> order;
  std::unordered_set<detail::Node*> visited;
  std::vector<std::pair<detail::Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, child_index] = stack.back();
    if (child_index < node->parents.size()) {
      detail::Node* parent = node->parents[child_index].node_.get();
      ++child_index;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  // Seed d(out)/d(out) = 1 and propagate in reverse topological order.
  grad_storage().fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::Node* node = *it;
    if (node->backward) {
      node->backward(node->grad, node->parents);
    }
  }
}

}  // namespace spectra::nn
