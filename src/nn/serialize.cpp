#include "nn/serialize.h"

#include <cstdint>
#include <fstream>

#include "util/error.h"

namespace spectra::nn {

namespace {
constexpr std::uint32_t kMagic = 0x53474e4e;  // "SGNN"

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  SG_CHECK(static_cast<bool>(in), "unexpected end of parameter file");
  return v;
}
}  // namespace

void save_parameters(const std::string& path, const std::vector<Var>& params) {
  std::ofstream out(path, std::ios::binary);
  SG_CHECK(static_cast<bool>(out), "cannot open " + path + " for writing");
  std::uint32_t magic = kMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  write_u64(out, params.size());
  for (const Var& p : params) {
    const Tensor& t = p.value();
    write_u64(out, static_cast<std::uint64_t>(t.rank()));
    for (int i = 0; i < t.rank(); ++i) write_u64(out, static_cast<std::uint64_t>(t.dim(i)));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(static_cast<std::size_t>(t.numel()) * sizeof(float)));
  }
  SG_CHECK(static_cast<bool>(out), "write failed for " + path);
}

void load_parameters(const std::string& path, std::vector<Var>& params) {
  std::ifstream in(path, std::ios::binary);
  SG_CHECK(static_cast<bool>(in), "cannot open " + path + " for reading");
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  SG_CHECK(static_cast<bool>(in) && magic == kMagic, path + " is not a parameter file");
  const std::uint64_t count = read_u64(in);
  SG_CHECK(count == params.size(), "parameter count mismatch: file has " + std::to_string(count) +
                                       ", model has " + std::to_string(params.size()));
  for (Var& p : params) {
    Tensor& t = p.value_mut();
    const std::uint64_t rank = read_u64(in);
    SG_CHECK(rank == static_cast<std::uint64_t>(t.rank()), "parameter rank mismatch");
    for (int i = 0; i < t.rank(); ++i) {
      const std::uint64_t extent = read_u64(in);
      SG_CHECK(extent == static_cast<std::uint64_t>(t.dim(i)), "parameter shape mismatch");
    }
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(static_cast<std::size_t>(t.numel()) * sizeof(float)));
    SG_CHECK(static_cast<bool>(in), "unexpected end of parameter data");
  }
}

}  // namespace spectra::nn
