// Differentiable operators over `Var`.
//
// All ops are pure: they allocate a fresh output node whose backward
// closure accumulates into the parents. Shapes are validated eagerly so
// model-construction bugs surface at the op call site, not inside
// backward().

#pragma once

#include <utility>
#include <vector>

#include "nn/autograd.h"

namespace spectra::nn {

// --- elementwise binary (operands must have identical shapes) ---
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var divide(const Var& a, const Var& b);

// --- scalar broadcast ---
Var add_scalar(const Var& a, float s);
Var mul_scalar(const Var& a, float s);

// --- elementwise unary ---
Var neg(const Var& a);
Var relu(const Var& a);
Var leaky_relu(const Var& a, float negative_slope = 0.2f);
Var vtanh(const Var& a);
Var sigmoid(const Var& a);
Var vexp(const Var& a);
// log(a + eps) for numerical safety.
Var vlog(const Var& a, float eps = 1e-12f);
Var softplus(const Var& a);
Var vabs(const Var& a);

// --- reductions (to rank-0 scalar) ---
Var sum(const Var& a);
Var mean(const Var& a);

// --- shape manipulation ---
Var reshape(const Var& a, Shape new_shape);

// Take `len` indices starting at `start` along `axis` (extent shrinks).
Var slice_axis(const Var& a, int axis, long start, long len);

// Columns [start, start+len) of a rank-2 tensor.
Var slice_cols(const Var& a, long start, long len);

// Index `i` along axis 0, removing that axis.
Var select0(const Var& a, long i);

// Stack equal-shaped tensors along a new leading axis.
Var stack0(const std::vector<Var>& parts);

// Concatenate along an existing axis; all other extents must match.
Var concat_axis(const std::vector<Var>& parts, int axis);

// Swap the two leading axes of a rank>=2 tensor: [A, B, ...] -> [B, A, ...].
Var transpose01(const Var& a);

// --- linear algebra ---
// [m,k] x [k,n] -> [m,n]
Var matmul(const Var& a, const Var& b);

// a: [m,n], bias: [n]; adds bias to every row.
Var add_rowvec(const Var& a, const Var& bias);

// Fully-connected layer primitive: x [B,in] * W [in,out] + b [out].
Var linear(const Var& x, const Var& weight, const Var& bias);

// Fused LSTM recurrence step (DESIGN §6c). Computes
//   gates = (x_proj + h_prev·Wh) + b,  i|f|g|o = σ|σ|tanh|σ (gate cols),
//   c = f⊙c_prev + i⊙g,  h = o⊙tanh(c)
// in one pass and returns {h, c} as two autograd nodes instead of the
// ~12-node unfused composition (add/add_rowvec/4×slice/4×activation/
// 3×mul/add per step). Forward and backward reproduce the unfused
// per-element arithmetic exactly — same expressions, same accumulation
// order — so results and gradients are bitwise identical to composing
// the individual ops (asserted by layers_test). x_proj is [B,4H]
// (precomputed x·Wx, gate columns ordered i,f,g,o), h_prev/c_prev are
// [B,H], weight_h is [H,4H], bias is [4H].
std::pair<Var, Var> lstm_fused_step(const Var& x_proj, const Var& h_prev, const Var& c_prev,
                                    const Var& weight_h, const Var& bias);

// --- losses (mean-reduced scalars) ---
Var mse_loss(const Var& pred, const Var& target);
Var l1_loss(const Var& pred, const Var& target);

// Numerically stable mean of BCE(sigmoid(logits), target).
Var bce_with_logits(const Var& logits, const Var& target);

// Convenience: BCE against a constant label (all-real / all-fake).
Var bce_with_logits_const(const Var& logits, float label);

}  // namespace spectra::nn
