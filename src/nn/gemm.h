// Unified single-precision GEMM kernel layer (DESIGN.md §6c).
//
// One cache-blocked, register-tiled kernel serves every dense product in
// the model: matmul forward (NN) and both backward products (NT: dA =
// G·Bᵀ, TN: dB = Aᵀ·G), Linear, the LSTM gate projections, and conv2d
// via im2col lowering. Transposed operands are handled by the packing /
// indexing routines — no explicit transpose is ever materialized.
//
// Determinism contract (same bar as the parallel layer, §6a): the
// blocking parameters below are compile-time constants independent of
// thread count, the k loop is serial, and threads split only the M
// dimension into disjoint row panels — so for a given shape every output
// element sees the same reduction order regardless of SPECTRA_THREADS,
// and results are bitwise identical for any thread count.
//
// Steady-state allocation-free: packed panels live in monotonically
// growing arenas (see `Workspace` / `scratch`); repeated calls at the
// same or smaller shapes never allocate. `gemm.workspace_grows` /
// `gemm.workspace_bytes` instrument the arena. By default every thread
// owns one implicit Workspace for its whole lifetime; long-running
// callers (the serve daemon, DESIGN §6g) bind an explicit per-request
// Workspace with WorkspaceScope so scratch memory is accounted to — and
// reclaimable with — the request instead of the thread.

#pragma once

#include <cstddef>
#include <vector>

namespace spectra::nn::gemm {

enum class Trans { kNo, kTrans };

// Blocking parameters (exposed for tests and the bench):
//   kMR×kNR — register tile computed by the micro-kernel,
//   kKC     — k-block packed and reduced at a time (a single block, i.e.
//             k <= kKC, reduces in exactly the naive p-ascending order),
//   kNC     — column block bounding the packed-B arena footprint.
inline constexpr long kMR = 4;
inline constexpr long kNR = 8;
inline constexpr long kKC = 256;
inline constexpr long kNC = 256;

// C (m×n, row-major, leading dimension ldc) = op(A)·op(B), accumulating
// into the existing C contents when `accumulate` is true.
//   op(A) is m×k: A is m×k (lda) when ta == kNo, k×m (lda) when kTrans.
//   op(B) is k×n: B is k×n (ldb) when tb == kNo, n×k (ldb) when kTrans.
// C must not alias A or B. IEEE semantics throughout: no zero-skip
// shortcuts, so NaN/Inf in either operand propagate per the usual rules.
void sgemm(Trans ta, Trans tb, long m, long n, long k, const float* a, long lda, const float* b,
           long ldb, float* c, long ldc, bool accumulate);

// Arena slots per workspace: slot 0 is reserved for sgemm's packed-B
// panels; conv2d lowering uses slots 1 (im2col columns) and 2 (backward
// dcol); the fused LSTM recurrence uses slot 3 for its [B,4H] gate
// pre-activations (forward) and gate gradients (backward) — disjoint
// from slot 0, which its nested sgemm calls consume.
inline constexpr int kScratchSlots = 4;

// A set of monotonically-growing scratch arenas. One thread-local
// instance backs `scratch` by default; the serve layer keeps a pool of
// explicit instances so every request's packed-panel memory has request
// lifetime (bound via WorkspaceScope, released or recycled when the
// request retires). Not thread-safe: a Workspace must be bound to at
// most one thread at a time.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  ~Workspace();

  // Slot arena of at least `floats` floats; grows (counted in
  // `gemm.workspace_grows`, sized in `gemm.workspace_bytes`) only when
  // the current capacity is smaller. The pointer is valid until the next
  // get() on the same slot.
  float* get(int slot, std::size_t floats);

  // Free every arena (capacity returns to zero); `gemm.workspace_bytes`
  // is decremented accordingly. The daemon trims retired request
  // workspaces through this.
  void release();

  // Bytes currently held across all slots.
  std::size_t bytes() const;

 private:
  std::vector<float> arenas_[kScratchSlots];
};

// Bind `ws` as the calling thread's scratch workspace for the scope
// lifetime; nestable, restores the previous binding on destruction. The
// serve worker installs the request's workspace here — generation runs
// inline on that worker (nested parallel_for executes inline from pool
// workers), so every kernel scratch request of the request lands in its
// own arena.
class WorkspaceScope {
 public:
  explicit WorkspaceScope(Workspace& ws);
  ~WorkspaceScope();
  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;

 private:
  Workspace* prev_;
};

// Reusable scratch arena of the calling thread's bound Workspace (the
// implicit thread-local one unless a WorkspaceScope is active). A slot's
// pointer is valid until the same thread requests the same slot again.
// Grows are counted in `gemm.workspace_grows`; repeated requests at
// steady state are free.
float* scratch(int slot, std::size_t floats);

}  // namespace spectra::nn::gemm
