#include "nn/init.h"

#include <cmath>

#include "util/error.h"

namespace spectra::nn::init {

Tensor xavier_uniform(Shape shape, long fan_in, long fan_out, Rng& rng) {
  SG_CHECK(fan_in > 0 && fan_out > 0, "xavier_uniform requires positive fans");
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  Tensor t(std::move(shape));
  const long n = t.numel();
  for (long i = 0; i < n; ++i) t[i] = static_cast<float>(rng.uniform(-a, a));
  return t;
}

Tensor he_normal(Shape shape, long fan_in, Rng& rng) {
  SG_CHECK(fan_in > 0, "he_normal requires positive fan_in");
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  Tensor t(std::move(shape));
  const long n = t.numel();
  for (long i = 0; i < n; ++i) t[i] = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor gaussian(Shape shape, float stddev, Rng& rng) {
  Tensor t(std::move(shape));
  const long n = t.numel();
  for (long i = 0; i < n; ++i) t[i] = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

}  // namespace spectra::nn::init
