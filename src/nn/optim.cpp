#include "nn/optim.h"

#include <cmath>

#include "util/error.h"

namespace spectra::nn {

Optimizer::Optimizer(std::vector<Var> params) : params_(std::move(params)) {
  for (const Var& p : params_) {
    SG_CHECK(p.defined() && p.requires_grad(), "optimizer params must be trainable leaves");
  }
}

void Optimizer::zero_grad() {
  for (Var& p : params_) p.zero_grad();
}

double Optimizer::clip_grad_norm(float max_norm) {
  SG_CHECK(max_norm > 0.0f, "clip_grad_norm requires max_norm > 0");
  double total_sq = 0.0;
  for (Var& p : params_) {
    const Tensor& g = p.grad_storage();
    const long n = g.numel();
    for (long i = 0; i < n; ++i) total_sq += static_cast<double>(g[i]) * static_cast<double>(g[i]);
  }
  const double norm = std::sqrt(total_sq);
  if (norm <= static_cast<double>(max_norm)) return norm;
  const float scale = static_cast<float>(static_cast<double>(max_norm) / (norm + 1e-12));
  for (Var& p : params_) p.grad_storage().scale_(scale);
  return norm;
}

Sgd::Sgd(std::vector<Var> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const Var& p : params_) velocity_.emplace_back(p.value().shape());
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& w = params_[k].value_mut();
    const Tensor& g = params_[k].grad_storage();
    Tensor& v = velocity_[k];
    const long n = w.numel();
    for (long i = 0; i < n; ++i) {
      v[i] = momentum_ * v[i] - lr_ * g[i];
      w[i] += v[i];
    }
  }
}

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2, float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
  }
}

void Adam::restore_state(long step_count, std::vector<Tensor> m, std::vector<Tensor> v) {
  SG_CHECK(step_count >= 0, "Adam step count must be non-negative");
  SG_CHECK(m.size() == params_.size() && v.size() == params_.size(),
           "Adam moment count mismatch: got " + std::to_string(m.size()) + "/" +
               std::to_string(v.size()) + ", optimizer has " + std::to_string(params_.size()) +
               " params");
  for (std::size_t k = 0; k < params_.size(); ++k) {
    SG_CHECK(m[k].same_shape(params_[k].value()) && v[k].same_shape(params_[k].value()),
             "Adam moment shape mismatch at parameter " + std::to_string(k));
  }
  t_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
}

void Adam::step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& w = params_[k].value_mut();
    const Tensor& g = params_[k].grad_storage();
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    const long n = w.numel();
    for (long i = 0; i < n; ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      w[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace spectra::nn
