#include "nn/ops.h"

#include <cmath>

#include "nn/gemm.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace spectra::nn {

namespace {

void check_same_shape(const Var& a, const Var& b, const char* op) {
  SG_CHECK(a.value().same_shape(b.value()),
           std::string(op) + ": shape mismatch " + shape_to_string(a.value().shape()) + " vs " +
               shape_to_string(b.value().shape()));
}

// Shared implementation for unary elementwise ops: forward maps x -> f(x),
// backward multiplies the output gradient by df computed from (x, y).
template <typename Fwd, typename Dfn>
Var unary_op(const Var& a, Fwd f, Dfn df) {
  const Tensor& x = a.value();
  Tensor y(x.shape());
  const long n = x.numel();
  for (long i = 0; i < n; ++i) y[i] = f(x[i]);
  Tensor y_copy = y;  // captured for backward closures needing f(x)
  return Var::make_op(std::move(y), {a},
                      [df, y_copy](const Tensor& out_grad, std::vector<Var>& parents) {
                        if (!parents[0].requires_grad()) return;
                        const Tensor& px = parents[0].value();
                        Tensor& gx = parents[0].grad_storage();
                        const long pn = px.numel();
                        for (long i = 0; i < pn; ++i) gx[i] += out_grad[i] * df(px[i], y_copy[i]);
                      });
}

}  // namespace

Var add(const Var& a, const Var& b) {
  check_same_shape(a, b, "add");
  Tensor y = a.value();
  y.add_(b.value());
  return Var::make_op(std::move(y), {a, b}, [](const Tensor& g, std::vector<Var>& parents) {
    for (Var& p : parents) {
      if (p.requires_grad()) p.grad_storage().add_(g);
    }
  });
}

Var sub(const Var& a, const Var& b) {
  check_same_shape(a, b, "sub");
  const Tensor& xa = a.value();
  const Tensor& xb = b.value();
  Tensor y(xa.shape());
  const long n = xa.numel();
  for (long i = 0; i < n; ++i) y[i] = xa[i] - xb[i];
  return Var::make_op(std::move(y), {a, b}, [](const Tensor& g, std::vector<Var>& parents) {
    if (parents[0].requires_grad()) parents[0].grad_storage().add_(g);
    if (parents[1].requires_grad()) {
      Tensor& gb = parents[1].grad_storage();
      const long gn = g.numel();
      for (long i = 0; i < gn; ++i) gb[i] -= g[i];
    }
  });
}

Var mul(const Var& a, const Var& b) {
  check_same_shape(a, b, "mul");
  const Tensor& xa = a.value();
  const Tensor& xb = b.value();
  Tensor y(xa.shape());
  const long n = xa.numel();
  for (long i = 0; i < n; ++i) y[i] = xa[i] * xb[i];
  return Var::make_op(std::move(y), {a, b}, [](const Tensor& g, std::vector<Var>& parents) {
    const Tensor& pa = parents[0].value();
    const Tensor& pb = parents[1].value();
    const long gn = g.numel();
    if (parents[0].requires_grad()) {
      Tensor& ga = parents[0].grad_storage();
      for (long i = 0; i < gn; ++i) ga[i] += g[i] * pb[i];
    }
    if (parents[1].requires_grad()) {
      Tensor& gb = parents[1].grad_storage();
      for (long i = 0; i < gn; ++i) gb[i] += g[i] * pa[i];
    }
  });
}

Var divide(const Var& a, const Var& b) {
  check_same_shape(a, b, "divide");
  const Tensor& xa = a.value();
  const Tensor& xb = b.value();
  Tensor y(xa.shape());
  const long n = xa.numel();
  for (long i = 0; i < n; ++i) y[i] = xa[i] / xb[i];
  return Var::make_op(std::move(y), {a, b}, [](const Tensor& g, std::vector<Var>& parents) {
    const Tensor& pa = parents[0].value();
    const Tensor& pb = parents[1].value();
    const long gn = g.numel();
    if (parents[0].requires_grad()) {
      Tensor& ga = parents[0].grad_storage();
      for (long i = 0; i < gn; ++i) ga[i] += g[i] / pb[i];
    }
    if (parents[1].requires_grad()) {
      Tensor& gb = parents[1].grad_storage();
      for (long i = 0; i < gn; ++i) gb[i] -= g[i] * pa[i] / (pb[i] * pb[i]);
    }
  });
}

Var add_scalar(const Var& a, float s) {
  return unary_op(
      a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; });
}

Var mul_scalar(const Var& a, float s) {
  return unary_op(
      a, [s](float x) { return x * s; }, [s](float, float) { return s; });
}

Var neg(const Var& a) { return mul_scalar(a, -1.0f); }

Var relu(const Var& a) {
  return unary_op(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Var leaky_relu(const Var& a, float negative_slope) {
  return unary_op(
      a, [negative_slope](float x) { return x > 0.0f ? x : negative_slope * x; },
      [negative_slope](float x, float) { return x > 0.0f ? 1.0f : negative_slope; });
}

Var vtanh(const Var& a) {
  return unary_op(
      a, [](float x) { return std::tanh(x); }, [](float, float y) { return 1.0f - y * y; });
}

Var sigmoid(const Var& a) {
  return unary_op(
      a,
      [](float x) {
        // Stable logistic for both signs of x.
        if (x >= 0.0f) {
          const float e = std::exp(-x);
          return 1.0f / (1.0f + e);
        }
        const float e = std::exp(x);
        return e / (1.0f + e);
      },
      [](float, float y) { return y * (1.0f - y); });
}

Var vexp(const Var& a) {
  return unary_op(
      a, [](float x) { return std::exp(x); }, [](float, float y) { return y; });
}

Var vlog(const Var& a, float eps) {
  return unary_op(
      a, [eps](float x) { return std::log(x + eps); },
      [eps](float x, float) { return 1.0f / (x + eps); });
}

Var softplus(const Var& a) {
  return unary_op(
      a,
      [](float x) {
        // log(1 + e^x) without overflow for large |x|.
        return x > 20.0f ? x : (x < -20.0f ? std::exp(x) : std::log1p(std::exp(x)));
      },
      [](float x, float) {
        if (x >= 0.0f) {
          const float e = std::exp(-x);
          return 1.0f / (1.0f + e);
        }
        const float e = std::exp(x);
        return e / (1.0f + e);
      });
}

Var vabs(const Var& a) {
  return unary_op(
      a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x >= 0.0f ? 1.0f : -1.0f; });
}

Var sum(const Var& a) {
  Tensor y = Tensor::scalar(a.value().sum());
  return Var::make_op(std::move(y), {a}, [](const Tensor& g, std::vector<Var>& parents) {
    if (!parents[0].requires_grad()) return;
    Tensor& ga = parents[0].grad_storage();
    const float gv = g[0];
    const long n = ga.numel();
    for (long i = 0; i < n; ++i) ga[i] += gv;
  });
}

Var mean(const Var& a) {
  const long n = a.value().numel();
  SG_CHECK(n > 0, "mean of empty tensor");
  return mul_scalar(sum(a), 1.0f / static_cast<float>(n));
}

Var reshape(const Var& a, Shape new_shape) {
  Tensor y = a.value().reshaped(std::move(new_shape));
  Shape original = a.value().shape();
  return Var::make_op(std::move(y), {a},
                      [original](const Tensor& g, std::vector<Var>& parents) {
                        if (!parents[0].requires_grad()) return;
                        parents[0].grad_storage().add_(g.reshaped(original));
                      });
}

namespace {

// Decompose a shape around `axis` into (outer, extent, inner) so the
// slice/concat kernels can iterate blocks contiguously.
struct AxisSplit {
  long outer = 1;
  long extent = 1;
  long inner = 1;
};

AxisSplit split_at_axis(const Shape& shape, int axis) {
  SG_CHECK(axis >= 0 && axis < static_cast<int>(shape.size()), "axis out of range");
  AxisSplit split;
  for (int i = 0; i < axis; ++i) split.outer *= shape[static_cast<std::size_t>(i)];
  split.extent = shape[static_cast<std::size_t>(axis)];
  for (std::size_t i = static_cast<std::size_t>(axis) + 1; i < shape.size(); ++i) {
    split.inner *= shape[i];
  }
  return split;
}

}  // namespace

Var slice_axis(const Var& a, int axis, long start, long len) {
  const Tensor& x = a.value();
  const AxisSplit split = split_at_axis(x.shape(), axis);
  SG_CHECK(start >= 0 && len > 0 && start + len <= split.extent, "slice_axis bounds out of range");

  Shape out_shape = x.shape();
  out_shape[static_cast<std::size_t>(axis)] = len;
  Tensor y(out_shape);
  for (long o = 0; o < split.outer; ++o) {
    const float* src = x.data() + (o * split.extent + start) * split.inner;
    float* dst = y.data() + o * len * split.inner;
    std::copy(src, src + len * split.inner, dst);
  }
  return Var::make_op(std::move(y), {a},
                      [split, start, len](const Tensor& g, std::vector<Var>& parents) {
                        if (!parents[0].requires_grad()) return;
                        Tensor& ga = parents[0].grad_storage();
                        for (long o = 0; o < split.outer; ++o) {
                          const float* src = g.data() + o * len * split.inner;
                          float* dst = ga.data() + (o * split.extent + start) * split.inner;
                          const long block = len * split.inner;
                          for (long i = 0; i < block; ++i) dst[i] += src[i];
                        }
                      });
}

Var slice_cols(const Var& a, long start, long len) {
  SG_CHECK(a.value().rank() == 2, "slice_cols requires a rank-2 tensor");
  return slice_axis(a, 1, start, len);
}

Var select0(const Var& a, long i) {
  SG_CHECK(a.value().rank() >= 1, "select0 requires rank >= 1");
  Var sliced = slice_axis(a, 0, i, 1);
  Shape squeezed(sliced.value().shape().begin() + 1, sliced.value().shape().end());
  return reshape(sliced, std::move(squeezed));
}

Var stack0(const std::vector<Var>& parts) {
  SG_CHECK(!parts.empty(), "stack0 of empty list");
  const Shape& part_shape = parts[0].value().shape();
  const long part_numel = parts[0].value().numel();
  for (const Var& p : parts) {
    SG_CHECK(p.value().shape() == part_shape, "stack0 parts must share a shape");
  }
  Shape out_shape;
  out_shape.push_back(static_cast<long>(parts.size()));
  out_shape.insert(out_shape.end(), part_shape.begin(), part_shape.end());
  Tensor y(out_shape);
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const float* src = parts[k].value().data();
    std::copy(src, src + part_numel, y.data() + static_cast<long>(k) * part_numel);
  }
  return Var::make_op(std::move(y), parts,
                      [part_numel](const Tensor& g, std::vector<Var>& parents) {
                        for (std::size_t k = 0; k < parents.size(); ++k) {
                          if (!parents[k].requires_grad()) continue;
                          Tensor& gp = parents[k].grad_storage();
                          const float* src = g.data() + static_cast<long>(k) * part_numel;
                          for (long i = 0; i < part_numel; ++i) gp[i] += src[i];
                        }
                      });
}

Var concat_axis(const std::vector<Var>& parts, int axis) {
  SG_CHECK(!parts.empty(), "concat_axis of empty list");
  const Shape& base = parts[0].value().shape();
  long total_extent = 0;
  for (const Var& p : parts) {
    const Shape& s = p.value().shape();
    SG_CHECK(s.size() == base.size(), "concat_axis rank mismatch");
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (static_cast<int>(i) == axis) continue;
      SG_CHECK(s[i] == base[i], "concat_axis non-axis extents must match");
    }
    total_extent += s[static_cast<std::size_t>(axis)];
  }
  Shape out_shape = base;
  out_shape[static_cast<std::size_t>(axis)] = total_extent;
  const AxisSplit out_split = split_at_axis(out_shape, axis);

  Tensor y(out_shape);
  std::vector<long> extents;
  extents.reserve(parts.size());
  long cursor = 0;
  for (const Var& p : parts) {
    const long extent = p.value().shape()[static_cast<std::size_t>(axis)];
    extents.push_back(extent);
    const AxisSplit in_split = split_at_axis(p.value().shape(), axis);
    for (long o = 0; o < in_split.outer; ++o) {
      const float* src = p.value().data() + o * extent * in_split.inner;
      float* dst = y.data() + (o * out_split.extent + cursor) * out_split.inner;
      std::copy(src, src + extent * in_split.inner, dst);
    }
    cursor += extent;
  }
  return Var::make_op(
      std::move(y), parts, [out_split, extents](const Tensor& g, std::vector<Var>& parents) {
        long gcursor = 0;
        for (std::size_t k = 0; k < parents.size(); ++k) {
          const long extent = extents[k];
          if (parents[k].requires_grad()) {
            Tensor& gp = parents[k].grad_storage();
            for (long o = 0; o < out_split.outer; ++o) {
              const float* src = g.data() + (o * out_split.extent + gcursor) * out_split.inner;
              float* dst = gp.data() + o * extent * out_split.inner;
              const long block = extent * out_split.inner;
              for (long i = 0; i < block; ++i) dst[i] += src[i];
            }
          }
          gcursor += extent;
        }
      });
}

namespace {
Tensor transpose01_tensor(const Tensor& x) {
  const long a_extent = x.dim(0);
  const long b_extent = x.dim(1);
  long inner = 1;
  for (int i = 2; i < x.rank(); ++i) inner *= x.dim(i);
  Shape out_shape = x.shape();
  std::swap(out_shape[0], out_shape[1]);
  Tensor y(out_shape);
  for (long i = 0; i < a_extent; ++i) {
    for (long j = 0; j < b_extent; ++j) {
      const float* src = x.data() + (i * b_extent + j) * inner;
      float* dst = y.data() + (j * a_extent + i) * inner;
      std::copy(src, src + inner, dst);
    }
  }
  return y;
}
}  // namespace

Var transpose01(const Var& a) {
  SG_CHECK(a.value().rank() >= 2, "transpose01 requires rank >= 2");
  return Var::make_op(transpose01_tensor(a.value()), {a},
                      [](const Tensor& g, std::vector<Var>& parents) {
                        if (!parents[0].requires_grad()) return;
                        parents[0].grad_storage().add_(transpose01_tensor(g));
                      });
}

Var matmul(const Var& a, const Var& b) {
  const Tensor& xa = a.value();
  const Tensor& xb = b.value();
  SG_CHECK(xa.rank() == 2 && xb.rank() == 2, "matmul requires rank-2 operands");
  const long m = xa.dim(0), k = xa.dim(1), k2 = xb.dim(0), n = xb.dim(1);
  SG_CHECK(k == k2, "matmul inner dimensions must agree");

  // Forward and both backward products run on the blocked GEMM kernel
  // (nn/gemm.h): full IEEE semantics (no zero-skip shortcuts, so
  // NaN/Inf propagate), parallel over disjoint row panels.
  Tensor y({m, n});
  gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kNo, m, n, k, xa.data(), k, xb.data(), n, y.data(),
              n, /*accumulate=*/false);
  return Var::make_op(std::move(y), {a, b},
                      [m, k, n](const Tensor& g, std::vector<Var>& parents) {
                        const Tensor& pa = parents[0].value();
                        const Tensor& pb = parents[1].value();
                        if (parents[0].requires_grad()) {
                          // dA += G · Bᵀ — NT variant, no transpose materialized.
                          Tensor& ga = parents[0].grad_storage();
                          gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kTrans, m, k, n, g.data(), n,
                                      pb.data(), n, ga.data(), k, /*accumulate=*/true);
                        }
                        if (parents[1].requires_grad()) {
                          // dB += Aᵀ · G — TN variant.
                          Tensor& gb = parents[1].grad_storage();
                          gemm::sgemm(gemm::Trans::kTrans, gemm::Trans::kNo, k, n, m, pa.data(), k,
                                      g.data(), n, gb.data(), n, /*accumulate=*/true);
                        }
                      });
}

Var add_rowvec(const Var& a, const Var& bias) {
  const Tensor& x = a.value();
  const Tensor& b = bias.value();
  SG_CHECK(x.rank() == 2 && b.rank() == 1, "add_rowvec expects [m,n] and [n]");
  const long m = x.dim(0), n = x.dim(1);
  SG_CHECK(b.dim(0) == n, "add_rowvec bias length mismatch");
  Tensor y(x.shape());
  for (long i = 0; i < m; ++i) {
    for (long j = 0; j < n; ++j) y[i * n + j] = x[i * n + j] + b[j];
  }
  return Var::make_op(std::move(y), {a, bias},
                      [m, n](const Tensor& g, std::vector<Var>& parents) {
                        if (parents[0].requires_grad()) parents[0].grad_storage().add_(g);
                        if (parents[1].requires_grad()) {
                          // Column reduction parallelized over disjoint
                          // column slices; per-column order stays
                          // i-ascending, matching the serial code.
                          Tensor& gb = parents[1].grad_storage();
                          float* pgb = gb.data();
                          const float* pg = g.data();
                          parallel_for(static_cast<std::size_t>(n), /*grain=*/16,
                                       [&](std::size_t jb, std::size_t je) {
                                         for (long i = 0; i < m; ++i) {
                                           const float* grow = pg + i * n;
                                           for (std::size_t j = jb; j < je; ++j) {
                                             pgb[j] += grow[j];
                                           }
                                         }
                                       });
                        }
                      });
}

Var linear(const Var& x, const Var& weight, const Var& bias) {
  return add_rowvec(matmul(x, weight), bias);
}

namespace {

// Stable logistic — the exact expression sigmoid() uses; the fused LSTM
// kernel must match the unfused op bitwise.
inline float stable_sigmoid(float x) {
  if (x >= 0.0f) {
    const float e = std::exp(-x);
    return 1.0f / (1.0f + e);
  }
  const float e = std::exp(x);
  return e / (1.0f + e);
}

// Scratch slot the fused LSTM borrows from the GEMM workspace (gemm.h):
// [B,4H] gate pre-activations on the forward pass, [B,4H] gate
// gradients on the backward pass. Disjoint from slot 0, which the
// nested sgemm calls consume while the slot-3 contents are live.
constexpr int kLstmScratchSlot = 3;

}  // namespace

std::pair<Var, Var> lstm_fused_step(const Var& x_proj, const Var& h_prev, const Var& c_prev,
                                    const Var& weight_h, const Var& bias) {
  const Tensor& xp = x_proj.value();
  const Tensor& hp = h_prev.value();
  const Tensor& cpv = c_prev.value();
  const Tensor& wh = weight_h.value();
  const Tensor& bv = bias.value();
  SG_CHECK(xp.rank() == 2 && hp.rank() == 2 && cpv.rank() == 2,
           "lstm_fused_step expects rank-2 x_proj/h_prev/c_prev");
  const long batch = xp.dim(0);
  const long hidden = hp.dim(1);
  const long gates = 4 * hidden;
  SG_CHECK(xp.dim(1) == gates, "lstm_fused_step x_proj must be [B, 4*hidden]");
  SG_CHECK(hp.dim(0) == batch && cpv.dim(0) == batch && cpv.dim(1) == hidden,
           "lstm_fused_step state shape mismatch");
  SG_CHECK(wh.rank() == 2 && wh.dim(0) == hidden && wh.dim(1) == gates,
           "lstm_fused_step weight_h must be [hidden, 4*hidden]");
  SG_CHECK(bv.rank() == 1 && bv.dim(0) == gates, "lstm_fused_step bias must be [4*hidden]");

  // Gate pre-activations z = (x_proj + h_prev·Wh) + b — the same
  // association order as the unfused add(x_proj, matmul(h, Wh)) followed
  // by add_rowvec. The recurrent product lands in workspace scratch, not
  // a fresh tensor.
  float* pre = gemm::scratch(kLstmScratchSlot, static_cast<std::size_t>(batch * gates));
  gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kNo, batch, gates, hidden, hp.data(), hidden,
              wh.data(), gates, pre, gates, /*accumulate=*/false);

  // Activated gates [B,4H] (columns i|f|g|o) and tanh(c) are the only
  // forward products backward needs; both are shared by the two nodes.
  auto acts = std::make_shared<Tensor>(Shape{batch, gates});
  auto tanh_c = std::make_shared<Tensor>(Shape{batch, hidden});
  Tensor c_out(Shape{batch, hidden});
  Tensor h_out(Shape{batch, hidden});
  for (long r = 0; r < batch; ++r) {
    const float* xrow = xp.data() + r * gates;
    const float* prow = pre + r * gates;
    float* arow = acts->data() + r * gates;
    for (long j = 0; j < gates; ++j) {
      const float z = (xrow[j] + prow[j]) + bv[j];
      arow[j] = (j < 2 * hidden || j >= 3 * hidden) ? stable_sigmoid(z) : std::tanh(z);
    }
    const float* cprow = cpv.data() + r * hidden;
    float* crow = c_out.data() + r * hidden;
    float* hrow = h_out.data() + r * hidden;
    float* tcrow = tanh_c->data() + r * hidden;
    for (long j = 0; j < hidden; ++j) {
      const float cv = (arow[hidden + j] * cprow[j]) + (arow[j] * arow[2 * hidden + j]);
      crow[j] = cv;
      const float tc = std::tanh(cv);
      tcrow[j] = tc;
      hrow[j] = arow[3 * hidden + j] * tc;
    }
  }

  // Side-channel from the h node's backward into the c node's backward:
  // the o-gate gradient needs dL/dh. The h node is the c node's consumer,
  // so its closure is guaranteed to run first and stash dh here; rank
  // stays 0 when h never receives gradient (e.g. an unused final state),
  // in which case the o-gate gradient is exactly zero — matching the
  // unfused graph, where the o-sigmoid node would be unreachable.
  auto dh_buf = std::make_shared<Tensor>();

  Var c_var = Var::make_op(
      std::move(c_out), {x_proj, h_prev, weight_h, bias, c_prev},
      [batch, hidden, gates, acts, tanh_c, dh_buf](const Tensor& dc, std::vector<Var>& parents) {
        Var& p_xproj = parents[0];
        Var& p_hprev = parents[1];
        Var& p_wh = parents[2];
        Var& p_bias = parents[3];
        Var& p_cprev = parents[4];
        const bool have_dh = dh_buf->rank() == 2;
        const Tensor& cp = p_cprev.value();
        // Assemble the gate pre-activation gradients dgates [B,4H]; each
        // expression replays the unfused mul→activation backward chain
        // exactly (ops.h contract).
        float* dgates = gemm::scratch(kLstmScratchSlot, static_cast<std::size_t>(batch * gates));
        for (long r = 0; r < batch; ++r) {
          const float* arow = acts->data() + r * gates;
          const float* tcrow = tanh_c->data() + r * hidden;
          const float* dcrow = dc.data() + r * hidden;
          const float* cprow = cp.data() + r * hidden;
          const float* dhrow = have_dh ? dh_buf->data() + r * hidden : nullptr;
          float* drow = dgates + r * gates;
          for (long j = 0; j < hidden; ++j) {
            const float iv = arow[j];
            const float fv = arow[hidden + j];
            const float gv = arow[2 * hidden + j];
            const float ov = arow[3 * hidden + j];
            const float dcv = dcrow[j];
            drow[j] = (dcv * gv) * (iv * (1.0f - iv));
            drow[hidden + j] = (dcv * cprow[j]) * (fv * (1.0f - fv));
            drow[2 * hidden + j] = (dcv * iv) * (1.0f - gv * gv);
            drow[3 * hidden + j] = have_dh ? (dhrow[j] * tcrow[j]) * (ov * (1.0f - ov)) : 0.0f;
          }
        }
        if (p_xproj.requires_grad()) {
          Tensor& gx = p_xproj.grad_storage();
          const long n = batch * gates;
          for (long idx = 0; idx < n; ++idx) gx[idx] += dgates[idx];
        }
        if (p_hprev.requires_grad()) {
          // dh_prev += dgates · Whᵀ — the matmul-backward NT product.
          Tensor& gh = p_hprev.grad_storage();
          gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kTrans, batch, hidden, gates, dgates, gates,
                      p_wh.value().data(), gates, gh.data(), hidden, /*accumulate=*/true);
        }
        if (p_wh.requires_grad()) {
          // dWh += h_prevᵀ · dgates — the matmul-backward TN product.
          Tensor& gw = p_wh.grad_storage();
          gemm::sgemm(gemm::Trans::kTrans, gemm::Trans::kNo, hidden, gates, batch,
                      p_hprev.value().data(), hidden, dgates, gates, gw.data(), gates,
                      /*accumulate=*/true);
        }
        if (p_bias.requires_grad()) {
          // Column reduction parallelized over disjoint column slices;
          // per-column order stays i-ascending — the add_rowvec backward.
          Tensor& gb = p_bias.grad_storage();
          float* pgb = gb.data();
          const float* pg = dgates;
          parallel_for(static_cast<std::size_t>(gates), /*grain=*/16,
                       [&](std::size_t jb, std::size_t je) {
                         for (long i = 0; i < batch; ++i) {
                           const float* grow = pg + i * gates;
                           for (std::size_t j = jb; j < je; ++j) {
                             pgb[j] += grow[j];
                           }
                         }
                       });
        }
        if (p_cprev.requires_grad()) {
          Tensor& gcp = p_cprev.grad_storage();
          for (long r = 0; r < batch; ++r) {
            const float* arow = acts->data() + r * gates;
            const float* dcrow = dc.data() + r * hidden;
            float* grow = gcp.data() + r * hidden;
            for (long j = 0; j < hidden; ++j) grow[j] += dcrow[j] * arow[hidden + j];
          }
        }
      });

  Var h_var = Var::make_op(
      std::move(h_out), {c_var},
      [batch, hidden, acts, tanh_c, dh_buf](const Tensor& dh, std::vector<Var>& parents) {
        if (!parents[0].requires_grad()) return;
        *dh_buf = dh;  // stashed for the c node's o-gate gradient
        // Tanh-path term of the cell gradient: dc += (dh ⊙ o)(1 − tanh²c)
        // — the unfused mul-then-vtanh backward chain.
        Tensor& gc = parents[0].grad_storage();
        const long gates = 4 * hidden;
        for (long r = 0; r < batch; ++r) {
          const float* arow = acts->data() + r * gates;
          const float* tcrow = tanh_c->data() + r * hidden;
          const float* dhrow = dh.data() + r * hidden;
          float* gcrow = gc.data() + r * hidden;
          for (long j = 0; j < hidden; ++j) {
            const float tc = tcrow[j];
            gcrow[j] += (dhrow[j] * arow[3 * hidden + j]) * (1.0f - tc * tc);
          }
        }
      });
  return {h_var, c_var};
}

Var mse_loss(const Var& pred, const Var& target) {
  check_same_shape(pred, target, "mse_loss");
  Var diff = sub(pred, target);
  return mean(mul(diff, diff));
}

Var l1_loss(const Var& pred, const Var& target) {
  check_same_shape(pred, target, "l1_loss");
  return mean(vabs(sub(pred, target)));
}

Var bce_with_logits(const Var& logits, const Var& target) {
  check_same_shape(logits, target, "bce_with_logits");
  const Tensor& z = logits.value();
  const Tensor& t = target.value();
  const long n = z.numel();
  // loss_i = max(z,0) - z*t + log(1+exp(-|z|)); fused forward + backward.
  double total = 0.0;
  for (long i = 0; i < n; ++i) {
    const float zi = z[i];
    total += static_cast<double>(std::max(zi, 0.0f) - zi * t[i] +
                                 std::log1p(std::exp(-std::fabs(zi))));
  }
  Tensor y = Tensor::scalar(static_cast<float>(total / static_cast<double>(n)));
  return Var::make_op(std::move(y), {logits, target},
                      [n](const Tensor& g, std::vector<Var>& parents) {
                        const Tensor& pz = parents[0].value();
                        const Tensor& pt = parents[1].value();
                        const float scale = g[0] / static_cast<float>(n);
                        if (parents[0].requires_grad()) {
                          Tensor& gz = parents[0].grad_storage();
                          for (long i = 0; i < n; ++i) {
                            const float zi = pz[i];
                            const float sig = zi >= 0.0f ? 1.0f / (1.0f + std::exp(-zi))
                                                         : std::exp(zi) / (1.0f + std::exp(zi));
                            gz[i] += scale * (sig - pt[i]);
                          }
                        }
                        // Targets are constants in every caller; no grad needed.
                      });
}

Var bce_with_logits_const(const Var& logits, float label) {
  Var target = Var::constant(Tensor::full(logits.value().shape(), label));
  return bce_with_logits(logits, target);
}

}  // namespace spectra::nn
