// AVX-512 instantiation of the shared micro-kernel (gemm_micro.h): 8×32
// register tile spelled as two 16-lane vectors per row — 16 accumulator
// zmm + 2 panel zmm + 1 broadcast of the 32 architectural registers.
//
// Compiled with -mavx512f -ffp-contract=off (see src/CMakeLists.txt).
// The contract flag matters here: AVX-512F implies FMA hardware, and a
// contracted fused multiply-add would change the rounding of every
// accumulation step and break cross-level bitwise equality. When the
// toolchain cannot target AVX-512 this TU degrades to a null accessor
// and the dispatch layer reports the level unavailable.

#include "nn/gemm_micro.h"

namespace spectra::nn::gemm::detail {

#if defined(__x86_64__) && defined(__AVX512F__) && (defined(__GNUC__) || defined(__clang__))

namespace {
constexpr MicroKernelSet kAvx512Set = {
    /*mr=*/8,
    /*nr=*/32,
    {micro_kernel<1, 16, 2>, micro_kernel<2, 16, 2>, micro_kernel<3, 16, 2>,
     micro_kernel<4, 16, 2>, micro_kernel<5, 16, 2>, micro_kernel<6, 16, 2>,
     micro_kernel<7, 16, 2>, micro_kernel<8, 16, 2>},
};
}  // namespace

const MicroKernelSet* kernels_avx512() { return &kAvx512Set; }

#else

const MicroKernelSet* kernels_avx512() { return nullptr; }

#endif

}  // namespace spectra::nn::gemm::detail
