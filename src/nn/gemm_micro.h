// Internal micro-kernel template shared by every SIMD dispatch level
// (DESIGN.md §6c). Not part of the public gemm API — include only from
// gemm.cpp and the per-ISA kernel translation units.
//
// One template body serves 4-lane generic SSE/NEON, 8-lane AVX2 and
// 16-lane AVX-512 instantiations. The accumulation for a given C element
// is identical at every level: each element lives in exactly one
// accumulator lane and receives its k contributions strictly p-ascending
// as a separate multiply and add. Lane width only changes *which* C
// columns share a vector register, never the per-element reduction
// order, so every dispatch level is bitwise identical to the generic
// kernel — provided the TU is compiled with -ffp-contract=off so the
// mul+add is never fused into an FMA (AVX-512 implies FMA hardware; the
// build applies the flag to all kernel TUs).

#pragma once

#include <cstddef>

namespace spectra::nn::gemm::detail {

// Widest register tile any level uses (AVX-512 runs an 8-row tile).
inline constexpr long kMaxMR = 8;

// micro_kernel<MR_, VL, NV>: acc[MR_][VL*NV] += op(A) rows × packed-B
// panel over kc, then store or add `mr`×`nr` of it into C. `a` is read
// in place through (a_row_stride, a_col_stride); `bp` is a packed panel
// of width VL*NV.
using MicroFn = void (*)(long kc, const float* a, long a_row_stride, long a_col_stride,
                         const float* bp, float* c, long ldc, long nr, bool add_to_c);

// One dispatch level's register tile: fns[i] computes i+1 rows of an
// mr×nr tile. sgemm reads mr/nr at runtime; all levels keep the serial-k
// disjoint-M determinism contract (gemm.h).
struct MicroKernelSet {
  long mr;
  long nr;
  MicroFn fns[static_cast<std::size_t>(kMaxMR)];
};

// Per-level kernel sets. kernels_generic() is always non-null; the
// others return nullptr when the compiler/target cannot build them (the
// dispatch layer treats null as "level unavailable").
const MicroKernelSet* kernels_generic();
const MicroKernelSet* kernels_avx2();
const MicroKernelSet* kernels_avx512();
const MicroKernelSet* kernels_neon();

#if defined(__GNUC__) || defined(__clang__)

// The j dimension is spelled as VL-lane vector values so the accumulator
// provably lives in SIMD registers; left as a plain 2-D float loop, GCC
// 12 vectorizes the *p* loop instead, transposing A fragments through a
// wall of shufps with acc spilled to the stack (~1.3× naive instead of
// >2×). aligned(4) keeps loads legal at any float address.
template <int VL>
struct VecOf;
template <>
struct VecOf<4> {
  typedef float type __attribute__((vector_size(16), aligned(4), may_alias));
};
template <>
struct VecOf<8> {
  typedef float type __attribute__((vector_size(32), aligned(4), may_alias));
};
template <>
struct VecOf<16> {
  typedef float type __attribute__((vector_size(64), aligned(4), may_alias));
};

template <int MR_, int VL, int NV>
void micro_kernel(long kc, const float* __restrict a, long a_row_stride, long a_col_stride,
                  const float* __restrict bp, float* c, long ldc, long nr, bool add_to_c) {
  using Vf = typename VecOf<VL>::type;
  constexpr long kNRv = static_cast<long>(VL) * NV;
  Vf acc[static_cast<std::size_t>(MR_)][static_cast<std::size_t>(NV)] = {};
  for (long p = 0; p < kc; ++p) {
    const Vf* brow = reinterpret_cast<const Vf*>(bp + p * kNRv);
    Vf bv[NV];
    for (int v = 0; v < NV; ++v) bv[v] = brow[v];
    for (int i = 0; i < MR_; ++i) {
      const float av = a[i * a_row_stride + p * a_col_stride];
      for (int v = 0; v < NV; ++v) acc[i][v] += av * bv[v];
    }
  }
  for (int i = 0; i < MR_; ++i) {
    float* crow = c + i * ldc;
    if (nr == kNRv) {
      Vf* cv = reinterpret_cast<Vf*>(crow);
      for (int v = 0; v < NV; ++v) cv[v] = add_to_c ? cv[v] + acc[i][v] : acc[i][v];
    } else {
      for (long j = 0; j < nr; ++j) {
        const float val = acc[i][j / VL][j % VL];
        crow[j] = add_to_c ? crow[j] + val : val;
      }
    }
  }
}

#else  // portable scalar fallback: same shapes, same reduction order

template <int MR_, int VL, int NV>
void micro_kernel(long kc, const float* a, long a_row_stride, long a_col_stride, const float* bp,
                  float* c, long ldc, long nr, bool add_to_c) {
  constexpr long kNRv = static_cast<long>(VL) * NV;
  float acc[static_cast<std::size_t>(MR_)][static_cast<std::size_t>(kNRv)] = {};
  for (long p = 0; p < kc; ++p) {
    const float* brow = bp + p * kNRv;
    for (int i = 0; i < MR_; ++i) {
      const float av = a[i * a_row_stride + p * a_col_stride];
      for (long j = 0; j < kNRv; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (int i = 0; i < MR_; ++i) {
    float* crow = c + i * ldc;
    if (add_to_c) {
      for (long j = 0; j < nr; ++j) crow[j] += acc[i][j];
    } else {
      for (long j = 0; j < nr; ++j) crow[j] = acc[i][j];
    }
  }
}

#endif

}  // namespace spectra::nn::gemm::detail
