// AVX2 instantiation of the shared micro-kernel (gemm_micro.h): 6×16
// register tile spelled as two 8-lane vectors per row — 12 accumulator
// ymm + 2 panel ymm + 1 broadcast of the 16 architectural registers.
//
// Compiled with -mavx2 -ffp-contract=off (see src/CMakeLists.txt); when
// the toolchain cannot target AVX2 this TU degrades to a null accessor
// and the dispatch layer reports the level unavailable.

#include "nn/gemm_micro.h"

namespace spectra::nn::gemm::detail {

#if defined(__x86_64__) && defined(__AVX2__) && (defined(__GNUC__) || defined(__clang__))

namespace {
constexpr MicroKernelSet kAvx2Set = {
    /*mr=*/6,
    /*nr=*/16,
    {micro_kernel<1, 8, 2>, micro_kernel<2, 8, 2>, micro_kernel<3, 8, 2>, micro_kernel<4, 8, 2>,
     micro_kernel<5, 8, 2>, micro_kernel<6, 8, 2>, nullptr, nullptr},
};
}  // namespace

const MicroKernelSet* kernels_avx2() { return &kAvx2Set; }

#else

const MicroKernelSet* kernels_avx2() { return nullptr; }

#endif

}  // namespace spectra::nn::gemm::detail
