#include "util/stopwatch.h"

namespace spectra {

double Stopwatch::seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

void Stopwatch::reset() { start_ = Clock::now(); }

}  // namespace spectra
