#include "util/env.h"

#include <cstdlib>

namespace spectra {

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  return raw == nullptr ? fallback : std::string(raw);
}

long env_long(const std::string& name, long fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  return (end == raw) ? fallback : value;
}

double env_double(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  return (end == raw) ? fallback : value;
}

}  // namespace spectra
