#include "util/error.h"

namespace spectra::detail {

void throw_error(const char* file, int line, const std::string& what) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + what);
}

}  // namespace spectra::detail
