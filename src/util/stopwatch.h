// Wall-clock stopwatch for coarse phase timing in trainers and benches.

#pragma once

#include <chrono>

namespace spectra {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Seconds elapsed since construction or the last reset().
  double seconds() const;

  void reset();

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spectra
