#include "util/log.h"

#include <cstdlib>
#include <iostream>

namespace spectra {

namespace {
LogLevel parse_env_level() {
  const char* raw = std::getenv("SPECTRA_LOG");
  if (raw == nullptr) return LogLevel::kWarn;
  const std::string value(raw);
  if (value == "debug") return LogLevel::kDebug;
  if (value == "info") return LogLevel::kInfo;
  if (value == "warn") return LogLevel::kWarn;
  if (value == "error") return LogLevel::kError;
  if (value == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

LogLevel& level_storage() {
  static LogLevel level = parse_env_level();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return level_storage(); }

void set_log_level(LogLevel level) { level_storage() = level; }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::cerr << "[" << level_name(level) << "] " << message << '\n';
}

}  // namespace spectra
