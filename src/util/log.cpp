#include "util/log.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace spectra {

namespace {

// Process-wide sink lock. Constant-initialized (std::mutex construction
// is constexpr), so it is usable from any static initializer. log layer:
// innermost — safe to take while holding any other lock in the hierarchy.
Mutex g_log_mutex SG_ACQUIRED_AFTER(lock_order::log);

// Monotonic seconds since the logger was first touched.
double monotonic_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  const std::chrono::duration<double> elapsed = Clock::now() - origin;
  return elapsed.count();
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// Build one complete line so the guarded stream insertion below is a
// single write — concurrent loggers can never interleave mid-line.
std::string format_line(LogLevel level, const std::string& message) {
  char prefix[48];
  std::snprintf(prefix, sizeof(prefix), "[%9.3f] [%s] ", monotonic_seconds(), level_name(level));
  std::string line = prefix;
  line += message;
  line += '\n';
  return line;
}

LogLevel parse_env_level() {
  const char* raw = std::getenv("SPECTRA_LOG");
  if (raw == nullptr) return LogLevel::kWarn;
  std::string value(raw);
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (value == "debug") return LogLevel::kDebug;
  if (value == "info") return LogLevel::kInfo;
  if (value == "warn") return LogLevel::kWarn;
  if (value == "error") return LogLevel::kError;
  if (value == "off") return LogLevel::kOff;
  // Warn once, directly (we are inside the level's own initialization,
  // so routing through log_message would recurse).
  std::cerr << format_line(LogLevel::kWarn, "unrecognized SPECTRA_LOG level \"" +
                                                std::string(raw) + "\"; defaulting to \"warn\"");
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_storage() {
  // Initialized from the environment exactly once (magic static); atomic
  // afterwards so a set_log_level racing a concurrent log_message is a
  // benign relaxed read/write, not undefined behavior.
  static std::atomic<LogLevel> level{parse_env_level()};
  return level;
}

// Parse SPECTRA_LOG eagerly so an unrecognized value warns at startup
// even in runs that never log.
const bool g_level_env_init = (level_storage(), true);

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::string line = format_line(level, message);
  MutexLock lock(g_log_mutex);
  std::cerr << line;
}

}  // namespace spectra
