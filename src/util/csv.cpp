#include "util/csv.h"

#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace spectra {

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  SG_CHECK(!header_.empty(), "CSV header must be non-empty");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  SG_CHECK(row.size() == header_.size(), "CSV row arity must match header");
  rows_.push_back(std::move(row));
}

std::string CsvWriter::num(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

namespace {
std::string escape_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

bool CsvWriter::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << escape_cell(row[i]);
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return static_cast<bool>(out);
}

std::string render_table(const CsvWriter& table) {
  std::vector<std::size_t> widths(table.header().size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(table.header());
  for (const auto& row : table.rows()) widen(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << '\n';
  };
  emit(table.header());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    os << std::string(widths[i], '-') << "  ";
  }
  os << '\n';
  for (const auto& row : table.rows()) emit(row);
  return os.str();
}

}  // namespace spectra
