// Deterministic, splittable random number generation.
//
// Every stochastic component in the library (data synthesis, weight init,
// GAN noise, samplers) takes an explicit `Rng&` so experiments are
// reproducible from a single seed. The engine is SplitMix64 — tiny,
// fast, and statistically sound for simulation workloads — wrapped with
// the distribution helpers the library needs.

#pragma once

#include <cstdint>
#include <vector>

namespace spectra {

// Complete serializable engine state: restoring it resumes the stream
// exactly, including the Box-Muller cached second sample (without it a
// resumed stream would skip or repeat one normal draw).
struct RngState {
  std::uint64_t state = 0;
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  // Next raw 64-bit value (SplitMix64).
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  // Standard normal via Box-Muller (cached second sample).
  double normal();

  // Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  // Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  // Bernoulli trial with probability p of true.
  bool bernoulli(double p);

  // Exponential with given rate (> 0).
  double exponential(double rate);

  // Poisson-distributed count (Knuth for small lambda, normal approx above 64).
  int poisson(double lambda);

  // Derive an independent generator; deterministic in (this stream, tag).
  Rng split(std::uint64_t tag);

  // Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& indices);

  // Snapshot / restore the full engine state (checkpoint/resume).
  RngState state() const { return {state_, has_cached_normal_, cached_normal_}; }
  void set_state(const RngState& s) {
    state_ = s.state;
    has_cached_normal_ = s.has_cached_normal;
    cached_normal_ = s.cached_normal;
  }

 private:
  std::uint64_t state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace spectra
