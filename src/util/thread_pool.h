// Fixed-size thread pool with a parallel_for helper.
//
// Experiment drivers use this to run independent leave-one-city-out folds
// concurrently. On single-core hosts the pool degrades gracefully to one
// worker; all library entry points remain deterministic because each task
// owns its Rng stream.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace spectra {

class ThreadPool {
 public:
  // `num_threads == 0` selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  // Run fn(i) for i in [0, n) across the pool and wait for completion.
  // Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace spectra
