// Fixed-size thread pool with blocked-range parallel_for helpers.
//
// The compute hot paths (conv2d planes, per-pixel FFT bridges, city
// assembly) call the free `spectra::parallel_for` below, which runs on a
// process-wide shared pool sized by `SPECTRA_THREADS` (default:
// hardware_concurrency; `1` = fully serial, no worker threads). Work is
// split into O(threads) contiguous chunks rather than one task per index,
// and a call made from inside a pool worker executes inline, so nested
// parallel regions cannot deadlock on their own queue.
//
// Determinism contract: callers partition writes disjointly across
// indices and keep RNG out of parallel regions, so results are bitwise
// identical for any thread count — the chunking only changes which thread
// computes an index, never the per-index instruction sequence.

#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace spectra {

class ThreadPool {
 public:
  // `num_threads == 0` selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // True when the calling thread is a worker of any ThreadPool. Used to
  // run nested parallel_for calls inline instead of re-entering a queue
  // the caller itself is supposed to drain.
  static bool in_worker_thread();

  // Enqueue a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  // Blocked-range parallel loop: fn(begin, end) over disjoint chunks
  // covering [0, n). At most `max_chunks` chunks are submitted (0 =
  // size(), i.e. O(threads)) and each chunk spans at least `grain`
  // indices; the caller executes the first chunk itself. Runs fully
  // inline when called from a worker thread or when only one chunk
  // results. Exceptions from chunks are rethrown (lowest chunk index
  // wins). The chunk layout for given (n, grain, max_chunks) is fixed,
  // so which indices share a chunk never depends on pool size.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t max_chunks = 0);

  // Per-index convenience wrapper over the blocked-range form.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  // Filled in the constructor, joined in the destructor; size() reads it
  // concurrently but the vector never changes in between.
  std::vector<std::thread> workers_;
  Mutex mutex_ SG_ACQUIRED_AFTER(lock_order::pool) SG_ACQUIRED_BEFORE(lock_order::obs);
  CondVar cv_;
  std::queue<std::packaged_task<void()>> tasks_ SG_GUARDED_BY(mutex_);
  bool stopping_ SG_GUARDED_BY(mutex_) = false;
};

// Effective thread count for the free parallel_for: initialised from
// SPECTRA_THREADS on first use (0/unset = hardware_concurrency, 1 =
// fully serial). set_parallel_threads overrides it at runtime (tests,
// experiment drivers); 0 resets to the environment default.
std::size_t parallel_threads();
void set_parallel_threads(std::size_t n);

// Run fn(begin, end) over disjoint chunks of [0, n) on the process-wide
// shared pool. Serial (inline, no pool touched) when parallel_threads()
// is 1, when n fits in one grain-sized chunk, or when already running on
// a pool worker. The shared pool is created lazily on the first call
// that actually fans out.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace spectra
