#include "util/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace spectra {

namespace {
obs::Counter& queued_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("pool.tasks_queued");
  return c;
}
obs::Counter& executed_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("pool.tasks_executed");
  return c;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::Registry::instance().gauge("pool.queue_depth");
  return g;
}
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
    queued_counter().inc();
    queue_depth_gauge().set(static_cast<double>(tasks_.size()));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      queue_depth_gauge().set(static_cast<double>(tasks_.size()));
    }
    task();
    executed_counter().inc();
  }
}

}  // namespace spectra
