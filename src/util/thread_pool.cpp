#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/metrics.h"
#include "util/env.h"

namespace spectra {

namespace {

obs::Counter& queued_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("pool.tasks_queued");
  return c;
}
obs::Counter& executed_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("pool.tasks_executed");
  return c;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::Registry::instance().gauge("pool.queue_depth");
  return g;
}
obs::MaxGauge& queue_depth_peak_gauge() {
  static obs::MaxGauge& g = obs::Registry::instance().max_gauge("pool.queue_depth_peak");
  return g;
}
obs::Counter& chunks_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("pool.parallel_chunks");
  return c;
}
obs::Counter& inline_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("pool.parallel_inline_runs");
  return c;
}

// Set for the lifetime of every pool worker thread.
thread_local bool tls_in_worker = false;

// Split [0, n) into at most `max_chunks` chunks of >= grain indices and
// run them through `run_chunk`, executing the first chunk on the calling
// thread. `run_chunk(begin, end, chunk_index)` must not throw (it records
// exceptions itself).
struct ChunkPlan {
  std::size_t chunk_size = 0;
  std::size_t num_chunks = 0;
};

ChunkPlan plan_chunks(std::size_t n, std::size_t grain, std::size_t threads) {
  grain = std::max<std::size_t>(1, grain);
  threads = std::max<std::size_t>(1, threads);
  ChunkPlan plan;
  plan.chunk_size = std::max(grain, (n + threads - 1) / threads);
  plan.num_chunks = (n + plan.chunk_size - 1) / plan.chunk_size;
  return plan;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::in_worker_thread() { return tls_in_worker; }

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(packaged));
    queued_counter().inc();
    queue_depth_gauge().set(static_cast<double>(tasks_.size()));
    queue_depth_peak_gauge().update(static_cast<double>(tasks_.size()));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              std::size_t max_chunks) {
  if (n == 0) return;
  const ChunkPlan plan = plan_chunks(n, grain, max_chunks == 0 ? size() : max_chunks);
  // Nested use: a worker waiting on futures would block the very queue
  // slot needed to run them — execute the whole range inline instead.
  if (plan.num_chunks <= 1 || tls_in_worker) {
    inline_counter().inc();
    fn(0, n);
    return;
  }

  chunks_counter().inc(plan.num_chunks);
  std::vector<std::exception_ptr> errors(plan.num_chunks);
  std::vector<std::future<void>> futures;
  futures.reserve(plan.num_chunks - 1);
  for (std::size_t c = 1; c < plan.num_chunks; ++c) {
    const std::size_t begin = c * plan.chunk_size;
    const std::size_t end = std::min(n, begin + plan.chunk_size);
    futures.push_back(submit([&fn, &errors, begin, end, c] {
      try {
        fn(begin, end);
      } catch (...) {
        errors[c] = std::current_exception();
      }
    }));
  }
  try {
    fn(0, std::min(n, plan.chunk_size));
  } catch (...) {
    errors[0] = std::current_exception();
  }
  for (auto& future : futures) future.get();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for(n, /*grain=*/1, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::worker_loop() {
  tls_in_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mutex_);
      // Explicit loop (not a predicate lambda): the thread safety
      // analysis does not look inside lambdas, so this keeps the
      // stopping_/tasks_ reads checked against mutex_.
      while (!stopping_ && tasks_.empty()) cv_.wait(mutex_);
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      queue_depth_gauge().set(static_cast<double>(tasks_.size()));
    }
    task();
    executed_counter().inc();
  }
}

namespace {

std::size_t env_default_threads() {
  const long v = env_long("SPECTRA_THREADS", 0);
  if (v <= 0) return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return static_cast<std::size_t>(v);
}

// 0 = not yet initialised from the environment.
std::atomic<std::size_t> g_parallel_threads{0};

ThreadPool& shared_pool(std::size_t min_size) {
  // Sized once at first fan-out; later set_parallel_threads calls larger
  // than the pool still work (chunks queue behind each other).
  static ThreadPool pool(min_size);
  return pool;
}

}  // namespace

std::size_t parallel_threads() {
  std::size_t v = g_parallel_threads.load(std::memory_order_relaxed);
  if (v == 0) {
    v = env_default_threads();
    g_parallel_threads.store(v, std::memory_order_relaxed);
  }
  return v;
}

void set_parallel_threads(std::size_t n) {
  g_parallel_threads.store(n == 0 ? env_default_threads() : n, std::memory_order_relaxed);
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t threads = parallel_threads();
  const ChunkPlan plan = plan_chunks(n, grain, threads);
  if (threads <= 1 || plan.num_chunks <= 1 || ThreadPool::in_worker_thread()) {
    inline_counter().inc();
    fn(0, n);
    return;
  }
  // Cap chunks at the *effective* thread count, not the pool size, so
  // set_parallel_threads keeps full control over the fan-out even when
  // the shared pool was created with a different size.
  shared_pool(threads).parallel_for(n, grain, fn, threads);
}

}  // namespace spectra
