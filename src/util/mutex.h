// Annotated synchronization primitives (DESIGN §6d). The standard library
// primitives carry no capability attributes, so every lock in the repo is
// one of these thin wrappers: same codegen, but clang's thread safety
// analysis can see acquire/release and prove the locking discipline at
// compile time. Raw std::mutex / std::shared_mutex / condition_variable
// anywhere else in src/ is an sg_lint `lock-annotation` finding.
//
// The lock hierarchy lives here too: `spectra::lock_order` declares one
// never-locked sentinel Mutex per layer, chained with SG_ACQUIRED_AFTER.
// Every real mutex is ordered against its own layer's token (after) and
// the next layer's token (before), so a cross-layer inversion anywhere in
// the tree is a -Wthread-safety-beta error, not a TSan coin flip.
//
//   layer   serve → pool → obs → fft_cache → log   (outermost first)
//
// i.e. a thread holding an obs-layer lock may take an fft_cache- or
// log-layer lock but never a serve- or pool-layer one.

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace spectra {

class CondVar;

// Exclusive lock. Same layout and cost as std::mutex.
class SG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SG_ACQUIRE() { raw_mutex_.lock(); }
  void unlock() SG_RELEASE() { raw_mutex_.unlock(); }
  bool try_lock() SG_TRY_ACQUIRE(true) { return raw_mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex raw_mutex_;  // the one audited raw primitive (lock-annotation allowlist)
};

// Reader/writer lock. Same layout and cost as std::shared_mutex.
class SG_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() SG_ACQUIRE() { raw_shared_mutex_.lock(); }
  void unlock() SG_RELEASE() { raw_shared_mutex_.unlock(); }
  void lock_shared() SG_ACQUIRE_SHARED() { raw_shared_mutex_.lock_shared(); }
  void unlock_shared() SG_RELEASE_SHARED() { raw_shared_mutex_.unlock_shared(); }

 private:
  std::shared_mutex raw_shared_mutex_;  // audited raw primitive (lock-annotation allowlist)
};

// RAII exclusive guard over Mutex (std::lock_guard shape).
class SG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SG_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  // Adopts a mutex the caller already holds (try_lock success path).
  MutexLock(Mutex& mutex, std::adopt_lock_t) SG_REQUIRES(mutex) : mutex_(mutex) {}
  ~MutexLock() SG_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

// RAII exclusive (writer) guard over SharedMutex.
class SG_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mutex) SG_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~SharedMutexLock() SG_RELEASE() { mutex_.unlock(); }
  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

// RAII shared (reader) guard over SharedMutex.
class SG_SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mutex) SG_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~SharedReaderLock() SG_RELEASE_GENERIC() { mutex_.unlock_shared(); }
  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

// Condition variable bound to Mutex. Waits require the mutex capability,
// so the analysis checks the guarded state touched around the wait. Wraps
// condition_variable_any (works over the raw mutex inside the wrapper);
// the usual "wait only under the same mutex" contract applies.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) SG_REQUIRES(mutex) { raw_cv_.wait(mutex.raw_mutex_); }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mutex,
                          const std::chrono::duration<Rep, Period>& rel_time)
      SG_REQUIRES(mutex) {
    return raw_cv_.wait_for(mutex.raw_mutex_, rel_time);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(Mutex& mutex,
                            const std::chrono::time_point<Clock, Duration>& deadline)
      SG_REQUIRES(mutex) {
    return raw_cv_.wait_until(mutex.raw_mutex_, deadline);
  }

  void notify_one() noexcept { raw_cv_.notify_one(); }
  void notify_all() noexcept { raw_cv_.notify_all(); }

 private:
  std::condition_variable_any raw_cv_;  // audited raw primitive (lock-annotation allowlist)
};

// Lock-hierarchy sentinel tokens (never locked; defined in mutex.cpp).
// Declared outermost-first so each acquired_after argument is already in
// scope; the analysis' BeforeSet is transitive across the chain.
namespace lock_order {
extern Mutex serve;  // serve: Server, RequestHandle, WeightsRegistry, FrameWriter
extern Mutex pool SG_ACQUIRED_AFTER(lock_order::serve);       // util/thread_pool
extern Mutex obs SG_ACQUIRED_AFTER(lock_order::pool);         // metrics/profile/trace/...
extern Mutex fft_cache SG_ACQUIRED_AFTER(lock_order::obs);    // dsp/fft plan caches
extern Mutex log SG_ACQUIRED_AFTER(lock_order::fft_cache);    // util/log sink
}  // namespace lock_order

}  // namespace spectra
