// Error handling primitives for the spectragan library.
//
// We follow the C++ Core Guidelines (E.2, E.3): exceptions signal errors
// that cannot be handled locally; assertions guard internal invariants.
// `SG_CHECK` is an always-on precondition check that throws
// `spectra::Error` with file/line context, used at public API boundaries.

#pragma once

#include <stdexcept>
#include <string>

namespace spectra {

// Exception type thrown by all library precondition violations.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const std::string& what);
}  // namespace detail

}  // namespace spectra

// Precondition check at API boundaries; always enabled (Release included)
// because the cost is negligible next to the numeric kernels it protects.
#define SG_CHECK(cond, msg)                                        \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::spectra::detail::throw_error(__FILE__, __LINE__, (msg));   \
    }                                                              \
  } while (false)

#define SG_THROW(msg) ::spectra::detail::throw_error(__FILE__, __LINE__, (msg))
