// Clang Thread Safety Analysis macros (DESIGN §6d). Under clang with
// -Wthread-safety these expand to capability attributes and the locking
// discipline becomes a compile-time fact; under every other compiler they
// expand to nothing, so annotations cost zero and never gate the build.
//
// Conventions:
//   * Data members guarded by a lock carry SG_GUARDED_BY(mutex_) on the
//     declaration; pointees guarded (not the pointer) use SG_PT_GUARDED_BY.
//   * Functions that must be entered with a lock held use SG_REQUIRES /
//     SG_REQUIRES_SHARED; the `_locked` naming suffix stays as the
//     human-readable mirror of the attribute.
//   * Every real mutex is placed in the global lock hierarchy with
//     SG_ACQUIRED_AFTER / SG_ACQUIRED_BEFORE against the never-locked
//     layer tokens in spectra::lock_order (util/mutex.h).
//   * Condition-variable waits are written as explicit while loops, never
//     predicate lambdas: the analysis does not look inside lambdas, so a
//     predicate wait would silently lose checking of the guarded reads.

#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define SG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SG_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define SG_CAPABILITY(x) SG_THREAD_ANNOTATION(capability(x))
#define SG_SCOPED_CAPABILITY SG_THREAD_ANNOTATION(scoped_lockable)

#define SG_GUARDED_BY(x) SG_THREAD_ANNOTATION(guarded_by(x))
#define SG_PT_GUARDED_BY(x) SG_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-hierarchy edges (checked under -Wthread-safety-beta). The BeforeSet
// is transitive, so ordering every mutex against its layer token orders it
// against every mutex in every other layer.
#define SG_ACQUIRED_BEFORE(...) SG_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SG_ACQUIRED_AFTER(...) SG_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define SG_REQUIRES(...) SG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SG_REQUIRES_SHARED(...) \
  SG_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define SG_ACQUIRE(...) SG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SG_ACQUIRE_SHARED(...) \
  SG_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SG_RELEASE(...) SG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SG_RELEASE_SHARED(...) \
  SG_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define SG_RELEASE_GENERIC(...) \
  SG_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define SG_TRY_ACQUIRE(...) SG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SG_TRY_ACQUIRE_SHARED(...) \
  SG_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define SG_EXCLUDES(...) SG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SG_ASSERT_CAPABILITY(x) SG_THREAD_ANNOTATION(assert_capability(x))
#define SG_RETURN_CAPABILITY(x) SG_THREAD_ANNOTATION(lock_returned(x))

#define SG_NO_THREAD_SAFETY_ANALYSIS SG_THREAD_ANNOTATION(no_thread_safety_analysis)
