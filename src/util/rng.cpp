#include "util/rng.h"

#include <cmath>

#include "util/error.h"

namespace spectra {

std::uint64_t Rng::next_u64() {
  // SplitMix64 (Steele, Lea, Flood 2014).
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  // Use the high 53 bits for a uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::uniform_index(std::size_t n) {
  SG_CHECK(n > 0, "uniform_index requires n > 0");
  // Lemire's nearly-divisionless bounded sampling (Lemire 2019): map the
  // 64-bit draw onto [0, n) via the high half of a 128-bit product and
  // reject the sliver of draws that would bias the low residues — unlike
  // `next_u64() % n`, every index is exactly equally likely.
  const std::uint64_t bound = n;  // std::size_t is 64-bit on every supported target
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;  // (2^64 - n) mod n
    while (low < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::size_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double rate) {
  SG_CHECK(rate > 0.0, "exponential requires rate > 0");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

int Rng::poisson(double lambda) {
  SG_CHECK(lambda >= 0.0, "poisson requires lambda >= 0");
  if (lambda == 0.0) return 0;
  if (lambda > 64.0) {
    const double v = normal(lambda, std::sqrt(lambda));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  const double limit = std::exp(-lambda);
  double prod = uniform();
  int count = 0;
  while (prod > limit) {
    prod *= uniform();
    ++count;
  }
  return count;
}

Rng Rng::split(std::uint64_t tag) {
  // Mix the tag into a fork of the current state; advancing this stream
  // afterwards does not perturb the child.
  const std::uint64_t forked = state_ ^ (tag * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  Rng child(forked);
  (void)child.next_u64();  // decorrelate from the raw seed
  return child;
}

void Rng::shuffle(std::vector<std::size_t>& indices) {
  for (std::size_t i = indices.size(); i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(indices[i - 1], indices[j]);
  }
}

}  // namespace spectra
