// Minimal leveled logger. Thread-safe: each message is formatted into a
// single line ("[  12.345] [LEVEL] message", monotonic seconds since the
// logger was first touched) and written under a mutex, so concurrent
// writers never interleave mid-line. The level comes from SPECTRA_LOG.

#pragma once

#include <sstream>
#include <string>

namespace spectra {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global minimum level; initialized from the SPECTRA_LOG env var
// ("debug" | "info" | "warn" | "error" | "off", case-insensitive,
// default "warn"; an unrecognized value warns once and falls back).
LogLevel log_level();
void set_log_level(LogLevel level);

// Emit a message at `level` (no-op when below the global level).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace spectra

#define SG_LOG_DEBUG ::spectra::detail::LogLine(::spectra::LogLevel::kDebug)
#define SG_LOG_INFO ::spectra::detail::LogLine(::spectra::LogLevel::kInfo)
#define SG_LOG_WARN ::spectra::detail::LogLine(::spectra::LogLevel::kWarn)
#define SG_LOG_ERROR ::spectra::detail::LogLine(::spectra::LogLevel::kError)
