// Typed environment-variable readers for the experiment scaling knobs
// documented in DESIGN.md §6 (SPECTRA_EPOCHS, SPECTRA_T, ...).

#pragma once

#include <cstdint>
#include <string>

namespace spectra {

// Returns the env var value, or `fallback` when unset/unparsable.
std::string env_string(const std::string& name, const std::string& fallback);
long env_long(const std::string& name, long fallback);
double env_double(const std::string& name, double fallback);

}  // namespace spectra
