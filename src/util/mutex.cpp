#include "util/mutex.h"

namespace spectra::lock_order {

// Sentinel tokens for the global lock hierarchy (see mutex.h). They exist
// only as acquired_before/after anchors; nothing ever locks them.
Mutex serve;
Mutex pool;
Mutex obs;
Mutex fft_cache;
Mutex log;

}  // namespace spectra::lock_order
