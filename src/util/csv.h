// CSV and console-table writers used by the benchmark harness to emit
// paper-style result tables (and machine-readable CSV next to them).

#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace spectra {

// Accumulates rows of stringified cells and writes them as CSV.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  // Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  // Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 4);

  // Write all accumulated rows to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders a CsvWriter's contents as an aligned console table (the
// paper-style row/column view printed by each bench binary).
std::string render_table(const CsvWriter& table);

}  // namespace spectra
