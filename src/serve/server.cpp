#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/log.h"
#include "util/stopwatch.h"

namespace spectra::serve {

namespace {

// Internal unwind type for cooperative cancellation: thrown by the row
// wrapper below, caught by the worker, never escapes the server.
class CancelledError : public Error {
 public:
  CancelledError() : Error("request cancelled") {}
};

obs::Counter& accepted_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("serve.requests_accepted");
  return c;
}
obs::Counter& rejected_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("serve.requests_rejected");
  return c;
}
obs::Counter& completed_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("serve.requests_completed");
  return c;
}
obs::Counter& failed_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("serve.requests_failed");
  return c;
}
obs::Counter& cancelled_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("serve.requests_cancelled");
  return c;
}
obs::Counter& rows_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("serve.rows_streamed");
  return c;
}
obs::Gauge& depth_gauge() {
  static obs::Gauge& g = obs::Registry::instance().gauge("serve.queue_depth");
  return g;
}
obs::MaxGauge& depth_peak() {
  static obs::MaxGauge& g = obs::Registry::instance().max_gauge("serve.queue_depth_peak");
  return g;
}
obs::MaxGauge& inflight_peak() {
  static obs::MaxGauge& g = obs::Registry::instance().max_gauge("serve.inflight_peak");
  return g;
}
obs::Histogram& req_seconds() {
  static obs::Histogram& h = obs::Registry::instance().histogram("serve.req_seconds");
  return h;
}

}  // namespace

// --- RequestHandle ----------------------------------------------------------

struct RequestHandle::Shared {
  std::uint64_t id = 0;

  mutable Mutex mutex SG_ACQUIRED_AFTER(lock_order::serve)
      SG_ACQUIRED_BEFORE(lock_order::pool);
  mutable CondVar cv;
  RequestState state SG_GUARDED_BY(mutex) = RequestState::kQueued;
  std::string error SG_GUARDED_BY(mutex);

  std::atomic<bool> cancel{false};
  std::atomic<long> rows{0};

  void set_terminal(RequestState s, std::string message = "") {
    {
      MutexLock lock(mutex);
      state = s;
      error = std::move(message);
    }
    cv.notify_all();
  }
};

std::uint64_t RequestHandle::id() const { return shared_->id; }

void RequestHandle::cancel() { shared_->cancel.store(true, std::memory_order_relaxed); }

RequestState RequestHandle::wait() const {
  MutexLock lock(shared_->mutex);
  while (shared_->state == RequestState::kQueued ||
         shared_->state == RequestState::kRunning) {
    shared_->cv.wait(shared_->mutex);
  }
  return shared_->state;
}

RequestState RequestHandle::state() const {
  MutexLock lock(shared_->mutex);
  return shared_->state;
}

long RequestHandle::rows_streamed() const {
  return shared_->rows.load(std::memory_order_relaxed);
}

std::string RequestHandle::error() const {
  MutexLock lock(shared_->mutex);
  return shared_->error;
}

// --- Server -----------------------------------------------------------------

namespace {

// Per-row delivery wrapper: enforces cancellation *before* handing the
// row out (after cancel() returns, no further rows reach the client
// sink) and keeps the handle's progress counter and the serve metrics.
class ServingSink : public geo::RowSink {
 public:
  ServingSink(geo::RowSink& inner, RequestHandle::Shared& shared)
      : inner_(inner), shared_(shared) {}

  void consume_row(long row, const std::vector<double>& values) override {
    if (shared_.cancel.load(std::memory_order_relaxed)) throw CancelledError();
    inner_.consume_row(row, values);
    shared_.rows.fetch_add(1, std::memory_order_relaxed);
    rows_counter().inc();
  }

 private:
  geo::RowSink& inner_;
  RequestHandle::Shared& shared_;
};

}  // namespace

ServerOptions ServerOptions::from_env() {
  ServerOptions options;
  options.workers = static_cast<std::size_t>(
      std::max(1L, env_long("SPECTRA_SERVE_WORKERS", static_cast<long>(options.workers))));
  options.queue_limit = static_cast<std::size_t>(
      std::max(1L, env_long("SPECTRA_SERVE_QUEUE", static_cast<long>(options.queue_limit))));
  return options;
}

Server::Server(std::shared_ptr<const core::SpectraGan> model, ServerOptions options)
    : model_(std::move(model)), options_(options) {
  SG_CHECK(model_ != nullptr, "Server needs a model");
  SG_CHECK(options_.workers >= 1 && options_.queue_limit >= 1,
           "Server needs at least one worker and one queue slot");
  workspace_pool_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workspace_pool_.push_back(std::make_unique<nn::gemm::Workspace>());
  }
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.push_back(pool_->submit([this] { worker_loop(); }));
  }
}

Server::~Server() { stop(); }

RequestHandle Server::submit(Request request, geo::RowSink& sink, OnFull on_full,
                             CompletionFn on_done) {
  RequestHandle handle;
  {
    MutexLock lock(mutex_);
    SG_CHECK(!stopping_, "Server::submit after stop");
    if (queue_.size() >= options_.queue_limit) {
      if (on_full == OnFull::kReject) {
        rejected_counter().inc();
        throw QueueFullError("serve queue full (" + std::to_string(queue_.size()) + " queued)");
      }
      // kBlock: park the caller until a worker frees a slot (or the server
      // stops underneath us). Explicit loop so the queue_/stopping_ reads
      // stay visible to the thread safety analysis.
      while (queue_.size() >= options_.queue_limit && !stopping_) {
        space_cv_.wait(mutex_);
      }
      SG_CHECK(!stopping_, "Server stopped while submit was parked");
    }

    handle.shared_ = std::make_shared<RequestHandle::Shared>();
    handle.shared_->id = next_id_++;

    Queued item;
    item.request = std::move(request);
    item.sink = &sink;
    item.shared = handle.shared_;
    item.on_done = std::move(on_done);
    queue_.push_back(std::move(item));

    accepted_counter().inc();
    const double depth = static_cast<double>(queue_.size());
    depth_gauge().set(depth);
    depth_peak().update(depth);
    // In flight = queued + running. running_ is maintained under mutex_.
    inflight_peak().update(depth + static_cast<double>(running_));
  }
  queue_cv_.notify_one();
  return handle;
}

void Server::worker_loop() {
  for (;;) {
    Queued item;
    {
      MutexLock lock(mutex_);
      while (queue_.empty() && !stopping_) queue_cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping and drained
      item = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
      depth_gauge().set(static_cast<double>(queue_.size()));
    }
    space_cv_.notify_one();
    process(std::move(item));
    {
      MutexLock lock(mutex_);
      --running_;
    }
  }
}

void Server::process(Queued item) {
  SG_TRACE_SPAN("serve/request");
  SG_PROFILE_SCOPE("serve/request");
  item.shared->set_terminal(RequestState::kRunning);  // not terminal; reuses the setter
  Stopwatch watch;

  // Per-request arena: every kernel scratch request of this generation
  // lands in a workspace owned by the request slot, not the thread —
  // recycled across requests so steady-state turnover never reallocates.
  std::unique_ptr<nn::gemm::Workspace> workspace;
  {
    MutexLock lock(mutex_);
    workspace = std::move(workspace_pool_.back());
    workspace_pool_.pop_back();
  }

  RequestState terminal = RequestState::kFailed;
  std::string error;
  try {
    nn::gemm::WorkspaceScope scope(*workspace);
    Rng rng(item.request.seed);
    ServingSink sink(*item.sink, *item.shared);
    model_->generate_city_streamed(item.request.context, item.request.steps, rng, sink,
                                   item.request.aggregation);
    completed_counter().inc();
    terminal = RequestState::kDone;
  } catch (const CancelledError&) {
    cancelled_counter().inc();
    terminal = RequestState::kCancelled;
  } catch (const std::exception& e) {
    failed_counter().inc();
    SG_LOG_WARN << "serve: request " << item.shared->id << " failed: " << e.what();
    error = e.what();
  }
  if (item.on_done) {
    item.on_done(item.shared->id, terminal,
                 item.shared->rows.load(std::memory_order_relaxed), error);
  }
  item.shared->set_terminal(terminal, error);

  req_seconds().observe(watch.seconds());
  {
    MutexLock lock(mutex_);
    workspace_pool_.push_back(std::move(workspace));
  }
}

void Server::stop() {
  std::deque<Queued> orphaned;
  std::vector<std::future<void>> workers;
  std::unique_ptr<ThreadPool> pool;
  {
    MutexLock lock(mutex_);
    if (stopping_) {
      // A concurrent stop() won the race and owns the join. Wait for it:
      // every stop() call must return only once the workers are gone
      // (previously a second caller could return while the first was
      // still joining).
      while (!stop_done_) queue_cv_.wait(mutex_);
      return;
    }
    stopping_ = true;
    orphaned.swap(queue_);
    // Claim the workers and their pool under the lock; join outside it so
    // parked submitters and workers can take mutex_ while we wait.
    workers.swap(workers_);
    pool = std::move(pool_);
    depth_gauge().set(0.0);
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  // Queued-but-never-run requests terminate as cancelled so waiters wake.
  for (Queued& item : orphaned) {
    cancelled_counter().inc();
    if (item.on_done) {
      item.on_done(item.shared->id, RequestState::kCancelled, 0, "server stopped");
    }
    item.shared->set_terminal(RequestState::kCancelled, "server stopped");
  }
  for (std::future<void>& worker : workers) worker.wait();
  pool.reset();
  {
    MutexLock lock(mutex_);
    for (std::unique_ptr<nn::gemm::Workspace>& ws : workspace_pool_) ws->release();
    stop_done_ = true;
  }
  queue_cv_.notify_all();
}

}  // namespace spectra::serve
