// spectra_served: the generation-as-a-service daemon (DESIGN §6g).
//
// Speaks the serve/protocol.h frame protocol on stdin/stdout and logs to
// stderr. Weights load once at startup and are shared read-only across
// every request; concurrency and backpressure come from the env knobs:
//
//   SPECTRA_SERVE_WEIGHTS  checkpoint dir to restore weights from
//                          (empty => freshly initialized model)
//   SPECTRA_SERVE_SEED     model init seed (default: config seed)
//   SPECTRA_SERVE_WORKERS  concurrent in-flight requests (default 8)
//   SPECTRA_SERVE_QUEUE    queued-request limit (default 32)
//
// Exits 0 on clean client EOF, after draining every in-flight request.

#include <cstdio>

#include "core/config.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/weights_registry.h"
#include "util/env.h"
#include "util/error.h"
#include "util/log.h"

int main() {
  using namespace spectra;
  try {
    core::SpectraGanConfig config;
    config.validate();
    const std::uint64_t seed = static_cast<std::uint64_t>(
        env_long("SPECTRA_SERVE_SEED", static_cast<long>(config.seed)));
    const std::string weights_dir = env_string("SPECTRA_SERVE_WEIGHTS", "");

    serve::WeightsRegistry registry;
    std::shared_ptr<const core::SpectraGan> model =
        registry.get_or_load(config, weights_dir, seed);

    serve::Server server(model, serve::ServerOptions::from_env());
    SG_LOG_INFO << "spectra_served: " << server.options().workers << " workers, queue limit "
                << server.options().queue_limit
                << (weights_dir.empty() ? ", fresh weights" : ", weights from " + weights_dir);

    const serve::DaemonStats stats = serve::daemon_loop(stdin, stdout, server);
    server.stop();
    SG_LOG_INFO << "spectra_served: served " << stats.requests << " requests, "
                << stats.protocol_errors << " protocol errors";
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spectra_served: fatal: %s\n", e.what());
    return 1;
  }
}
