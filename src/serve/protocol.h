// Wire protocol for spectra_served (DESIGN §6g): length-prefixed binary
// frames over a byte stream (stdin/stdout for the daemon; any stdio
// stream for tests).
//
//   frame   := u32 payload_bytes, payload
//   payload := u32 magic, ...
//
//   SGRQ  client -> daemon   one generation request
//           u32 version (=1), u64 id, u64 seed, u32 steps,
//           u32 channels, u32 height, u32 width, u8 aggregation (0 mean,
//           1 median), f64 context[channels*height*width]
//   SGRW  daemon -> client   one finalized city row (t-major, steps*width)
//           u64 id, u32 row, u32 count, f64 values[count]
//   SGDN  daemon -> client   terminal state for a request
//           u64 id, u8 status (0 done / 1 failed / 2 cancelled),
//           u32 rows, u32 message_bytes, message
//   SGER  daemon -> client   protocol-level error (no request id)
//           u32 message_bytes, message
//
// All integers and doubles are native-endian: the daemon serves
// co-located clients over pipes, not the network. Request ids are chosen
// by the client and echoed verbatim — the daemon interleaves SGRW frames
// of concurrent requests, and ids are how clients demultiplex.
//
// Corruption contract: a request payload that fails validation (bad
// magic, wrong version, impossible shape, size mismatch) is answered
// with an SGER frame and the daemon KEEPS SERVING — framing stays intact
// because the length prefix was honored. Only a torn stream (EOF inside
// a frame, or a length prefix beyond kMaxFrameBytes) ends the session.

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "serve/server.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace spectra::serve {

class ProtocolError : public Error {
 public:
  explicit ProtocolError(std::string message) : Error(std::move(message)) {}
};

inline constexpr std::uint32_t kProtocolVersion = 1;
// Hard ceiling on one frame; a 1024x1024 city with 32 context channels
// is ~268 MB, so this bounds a malicious length prefix without capping
// any realistic request.
inline constexpr std::uint32_t kMaxFrameBytes = 512u * 1024u * 1024u;

enum class FrameType : std::uint32_t {
  kRequest = 0x53475251u,  // "SGRQ" (big-endian mnemonic only)
  kRow = 0x53475257u,      // "SGRW"
  kDone = 0x5347444Eu,     // "SGDN"
  kError = 0x53474552u,    // "SGER"
};

// Decoded SGRQ payload.
struct WireRequest {
  std::uint64_t id = 0;
  std::uint64_t seed = 0;
  long steps = 0;
  long channels = 0;
  long height = 0;
  long width = 0;
  geo::OverlapAggregation aggregation = geo::OverlapAggregation::kMean;
  std::vector<double> context;  // channels * height * width, row-major
};

// Decoded SGRW payload.
struct WireRow {
  std::uint64_t id = 0;
  long row = 0;
  std::vector<double> values;
};

// Decoded SGDN payload.
struct WireDone {
  std::uint64_t id = 0;
  RequestState state = RequestState::kDone;
  long rows = 0;
  std::string message;
};

// --- payload encode/decode (no length prefix) -------------------------------

std::vector<std::uint8_t> encode_request(const WireRequest& request);

// All decoders throw ProtocolError on malformed input.
FrameType frame_type(const std::vector<std::uint8_t>& payload);
WireRequest decode_request(const std::vector<std::uint8_t>& payload);
WireRow decode_row(const std::vector<std::uint8_t>& payload);
WireDone decode_done(const std::vector<std::uint8_t>& payload);
std::string decode_error(const std::vector<std::uint8_t>& payload);

// --- framing ----------------------------------------------------------------

// Write one frame (length prefix + payload) and flush. Throws
// ProtocolError on a short write.
void write_frame(std::FILE* out, const std::vector<std::uint8_t>& payload);

// Read one frame's payload. Returns false on clean EOF at a frame
// boundary; throws ProtocolError on a torn frame or an oversized length.
bool read_frame(std::FILE* in, std::vector<std::uint8_t>& payload);

// Serialized frame writer shared by all serve workers of one daemon
// session: rows of concurrent requests interleave on the stream, but
// each frame is written atomically under the lock.
class FrameWriter {
 public:
  explicit FrameWriter(std::FILE* out) : out_(out) {}

  void write_row(std::uint64_t id, long row, const std::vector<double>& values);
  void write_done(std::uint64_t id, RequestState state, long rows, const std::string& message);
  void write_error(const std::string& message);

 private:
  Mutex mutex_ SG_ACQUIRED_AFTER(lock_order::serve) SG_ACQUIRED_BEFORE(lock_order::pool);
  std::FILE* out_ SG_PT_GUARDED_BY(mutex_);
};

// --- daemon -----------------------------------------------------------------

struct DaemonStats {
  long requests = 0;         // well-formed requests submitted
  long protocol_errors = 0;  // malformed frames answered with SGER
};

// Serve `in` until EOF: decode SGRQ frames, submit them to `server`
// (OnFull::kBlock — the stream itself is the backpressure), stream SGRW
// rows and SGDN completions to `out`, answer malformed requests with
// SGER without dying. Waits for every in-flight request before
// returning. Runs on the caller's thread.
DaemonStats daemon_loop(std::FILE* in, std::FILE* out, Server& server);

}  // namespace spectra::serve
