// Shared read-only model weights for serving (DESIGN §6g).
//
// A serving process loads weights exactly once per (checkpoint dir,
// init seed) and hands the same immutable `const SpectraGan` to every
// server and request — `generate_city_streamed` is const and the model
// has no mutable state, so concurrent requests share it without
// synchronization. The registry is a plain object owned by the daemon
// (or a test), not a global: ownership and lifetime stay explicit.

#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/trainer.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace spectra::serve {

class WeightsRegistry {
 public:
  // Build a model from `config` seeded with `seed`; when `checkpoint_dir`
  // is non-empty, restore the generator/discriminator parameters of the
  // newest valid training snapshot there (train::load_latest_weights) —
  // throws spectra::Error if the directory holds no usable snapshot or
  // its shapes do not match `config`. Repeated calls with the same
  // (checkpoint_dir, seed) return the same shared instance.
  std::shared_ptr<const core::SpectraGan> get_or_load(const core::SpectraGanConfig& config,
                                                      const std::string& checkpoint_dir,
                                                      std::uint64_t seed);

 private:
  // Held across the whole load so concurrent get_or_load calls for the
  // same key share one load instead of racing two (serve layer: the load
  // may fan out through the pool underneath).
  Mutex mutex_ SG_ACQUIRED_AFTER(lock_order::serve) SG_ACQUIRED_BEFORE(lock_order::pool);
  std::map<std::string, std::shared_ptr<const core::SpectraGan>> cache_ SG_GUARDED_BY(mutex_);
};

}  // namespace spectra::serve
