#include "serve/weights_registry.h"

#include <utility>
#include <vector>

#include "train/checkpoint.h"
#include "util/error.h"
#include "util/log.h"

namespace spectra::serve {

namespace {

void copy_into(const std::vector<nn::Tensor>& saved, std::vector<nn::Var> params,
               const char* which) {
  SG_CHECK(saved.size() == params.size(),
           std::string("serve weights: ") + which + " parameter count mismatch");
  for (std::size_t k = 0; k < params.size(); ++k) {
    SG_CHECK(saved[k].same_shape(params[k].value()),
             std::string("serve weights: ") + which + " parameter shape mismatch");
    params[k].value_mut() = saved[k];
  }
}

}  // namespace

std::shared_ptr<const core::SpectraGan> WeightsRegistry::get_or_load(
    const core::SpectraGanConfig& config, const std::string& checkpoint_dir,
    std::uint64_t seed) {
  const std::string key = checkpoint_dir + "#" + std::to_string(seed);
  MutexLock lock(mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  auto model = std::make_shared<core::SpectraGan>(config, seed);
  if (!checkpoint_dir.empty()) {
    std::optional<train::ModelWeights> weights = train::load_latest_weights(checkpoint_dir);
    SG_CHECK(weights.has_value(),
             "serve weights: no usable checkpoint in " + checkpoint_dir);
    copy_into(weights->gen_params, model->generator_parameters(), "generator");
    copy_into(weights->disc_params, model->discriminator_parameters(), "discriminator");
    SG_LOG_INFO << "serve: loaded weights from " << checkpoint_dir << " at iteration "
                << weights->iteration;
  }

  std::shared_ptr<const core::SpectraGan> frozen = std::move(model);
  cache_.emplace(key, frozen);
  return frozen;
}

}  // namespace spectra::serve
