#include "serve/protocol.h"

#include <cstring>
#include <memory>
#include <utility>

#include "obs/metrics.h"

namespace spectra::serve {

namespace {

class PayloadWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void f64s(const double* values, std::size_t count) { append(values, count * sizeof(double)); }
  void bytes(const std::string& s) { append(s.data(), s.size()); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void append(const void* src, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(src);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<std::uint8_t>& payload)
      : data_(payload.data()), size_(payload.size()) {}

  std::uint8_t u8() {
    std::uint8_t v = 0;
    read(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    read(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    read(&v, sizeof v);
    return v;
  }
  void f64s(double* out, std::size_t count) { read(out, count * sizeof(double)); }
  std::string bytes(std::size_t n) {
    std::string s(n, '\0');
    read(s.data(), n);
    return s;
  }
  std::size_t remaining() const { return size_ - pos_; }
  void expect_end() const {
    if (pos_ != size_) throw ProtocolError("trailing bytes in frame");
  }

 private:
  void read(void* out, std::size_t n) {
    if (size_ - pos_ < n) throw ProtocolError("truncated frame payload");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::uint8_t status_code(RequestState state) {
  switch (state) {
    case RequestState::kDone:
      return 0;
    case RequestState::kFailed:
      return 1;
    case RequestState::kCancelled:
      return 2;
    default:
      SG_THROW("non-terminal state has no wire status");
  }
}

RequestState status_state(std::uint8_t code) {
  switch (code) {
    case 0:
      return RequestState::kDone;
    case 1:
      return RequestState::kFailed;
    case 2:
      return RequestState::kCancelled;
    default:
      throw ProtocolError("bad status code " + std::to_string(code));
  }
}

}  // namespace

// --- payload encode/decode --------------------------------------------------

std::vector<std::uint8_t> encode_request(const WireRequest& request) {
  SG_CHECK(request.steps > 0 && request.channels > 0 && request.height > 0 && request.width > 0,
           "encode_request: shape must be positive");
  SG_CHECK(static_cast<long>(request.context.size()) ==
               request.channels * request.height * request.width,
           "encode_request: context size does not match shape");
  PayloadWriter w;
  w.u32(static_cast<std::uint32_t>(FrameType::kRequest));
  w.u32(kProtocolVersion);
  w.u64(request.id);
  w.u64(request.seed);
  w.u32(static_cast<std::uint32_t>(request.steps));
  w.u32(static_cast<std::uint32_t>(request.channels));
  w.u32(static_cast<std::uint32_t>(request.height));
  w.u32(static_cast<std::uint32_t>(request.width));
  w.u8(request.aggregation == geo::OverlapAggregation::kMean ? std::uint8_t{0} : std::uint8_t{1});
  w.f64s(request.context.data(), request.context.size());
  return w.take();
}

FrameType frame_type(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  return static_cast<FrameType>(r.u32());
}

WireRequest decode_request(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  if (static_cast<FrameType>(r.u32()) != FrameType::kRequest) {
    throw ProtocolError("not an SGRQ frame");
  }
  const std::uint32_t version = r.u32();
  if (version != kProtocolVersion) {
    throw ProtocolError("unsupported protocol version " + std::to_string(version));
  }
  WireRequest request;
  request.id = r.u64();
  request.seed = r.u64();
  request.steps = static_cast<long>(r.u32());
  request.channels = static_cast<long>(r.u32());
  request.height = static_cast<long>(r.u32());
  request.width = static_cast<long>(r.u32());
  const std::uint8_t agg = r.u8();
  if (agg > 1) throw ProtocolError("bad aggregation code " + std::to_string(agg));
  request.aggregation =
      agg == 0 ? geo::OverlapAggregation::kMean : geo::OverlapAggregation::kMedian;
  if (request.steps <= 0 || request.channels <= 0 || request.height <= 0 || request.width <= 0) {
    throw ProtocolError("request shape must be positive");
  }
  const std::size_t cells = static_cast<std::size_t>(request.channels) *
                            static_cast<std::size_t>(request.height) *
                            static_cast<std::size_t>(request.width);
  if (r.remaining() != cells * sizeof(double)) {
    throw ProtocolError("context size does not match declared shape");
  }
  request.context.resize(cells);
  r.f64s(request.context.data(), cells);
  r.expect_end();
  return request;
}

WireRow decode_row(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  if (static_cast<FrameType>(r.u32()) != FrameType::kRow) throw ProtocolError("not an SGRW frame");
  WireRow row;
  row.id = r.u64();
  row.row = static_cast<long>(r.u32());
  const std::size_t count = r.u32();
  if (r.remaining() != count * sizeof(double)) throw ProtocolError("row size mismatch");
  row.values.resize(count);
  r.f64s(row.values.data(), count);
  r.expect_end();
  return row;
}

WireDone decode_done(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  if (static_cast<FrameType>(r.u32()) != FrameType::kDone) throw ProtocolError("not an SGDN frame");
  WireDone done;
  done.id = r.u64();
  done.state = status_state(r.u8());
  done.rows = static_cast<long>(r.u32());
  const std::size_t message_bytes = r.u32();
  if (r.remaining() != message_bytes) throw ProtocolError("done message size mismatch");
  done.message = r.bytes(message_bytes);
  r.expect_end();
  return done;
}

std::string decode_error(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  if (static_cast<FrameType>(r.u32()) != FrameType::kError) {
    throw ProtocolError("not an SGER frame");
  }
  const std::size_t message_bytes = r.u32();
  if (r.remaining() != message_bytes) throw ProtocolError("error message size mismatch");
  std::string message = r.bytes(message_bytes);
  r.expect_end();
  return message;
}

// --- framing ----------------------------------------------------------------

void write_frame(std::FILE* out, const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) throw ProtocolError("frame payload exceeds limit");
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  if (std::fwrite(&len, sizeof len, 1, out) != 1 ||
      (len != 0 && std::fwrite(payload.data(), 1, payload.size(), out) != payload.size()) ||
      std::fflush(out) != 0) {
    throw ProtocolError("short write on frame stream");
  }
}

bool read_frame(std::FILE* in, std::vector<std::uint8_t>& payload) {
  std::uint32_t len = 0;
  const std::size_t got = std::fread(&len, 1, sizeof len, in);
  if (got == 0) return false;  // clean EOF at a frame boundary
  if (got != sizeof len) throw ProtocolError("torn frame length prefix");
  if (len > kMaxFrameBytes) {
    throw ProtocolError("frame length " + std::to_string(len) + " exceeds limit");
  }
  payload.resize(len);
  if (len != 0 && std::fread(payload.data(), 1, len, in) != len) {
    throw ProtocolError("torn frame payload");
  }
  return true;
}

void FrameWriter::write_row(std::uint64_t id, long row, const std::vector<double>& values) {
  PayloadWriter w;
  w.u32(static_cast<std::uint32_t>(FrameType::kRow));
  w.u64(id);
  w.u32(static_cast<std::uint32_t>(row));
  w.u32(static_cast<std::uint32_t>(values.size()));
  w.f64s(values.data(), values.size());
  const std::vector<std::uint8_t> payload = w.take();
  MutexLock lock(mutex_);
  write_frame(out_, payload);
}

void FrameWriter::write_done(std::uint64_t id, RequestState state, long rows,
                             const std::string& message) {
  PayloadWriter w;
  w.u32(static_cast<std::uint32_t>(FrameType::kDone));
  w.u64(id);
  w.u8(status_code(state));
  w.u32(static_cast<std::uint32_t>(rows));
  w.u32(static_cast<std::uint32_t>(message.size()));
  w.bytes(message);
  const std::vector<std::uint8_t> payload = w.take();
  MutexLock lock(mutex_);
  write_frame(out_, payload);
}

void FrameWriter::write_error(const std::string& message) {
  PayloadWriter w;
  w.u32(static_cast<std::uint32_t>(FrameType::kError));
  w.u32(static_cast<std::uint32_t>(message.size()));
  w.bytes(message);
  const std::vector<std::uint8_t> payload = w.take();
  MutexLock lock(mutex_);
  write_frame(out_, payload);
}

// --- daemon -----------------------------------------------------------------

namespace {

// Streams each finalized row as an SGRW frame tagged with the client's
// request id.
class DaemonRowSink : public geo::RowSink {
 public:
  DaemonRowSink(FrameWriter& writer, std::uint64_t id) : writer_(writer), id_(id) {}

  void consume_row(long row, const std::vector<double>& values) override {
    writer_.write_row(id_, row, values);
  }

 private:
  FrameWriter& writer_;
  std::uint64_t id_;
};

bool is_terminal(RequestState state) {
  return state == RequestState::kDone || state == RequestState::kFailed ||
         state == RequestState::kCancelled;
}

obs::Counter& protocol_errors() {
  static obs::Counter& c = obs::Registry::instance().counter("serve.protocol_errors");
  return c;
}

}  // namespace

DaemonStats daemon_loop(std::FILE* in, std::FILE* out, Server& server) {
  FrameWriter writer(out);
  DaemonStats stats;
  struct InFlight {
    RequestHandle handle;
    std::unique_ptr<DaemonRowSink> sink;
  };
  std::vector<InFlight> inflight;
  std::vector<std::uint8_t> payload;

  for (;;) {
    bool got = false;
    try {
      got = read_frame(in, payload);
    } catch (const ProtocolError& e) {
      // A torn stream cannot be resynced: report and end the session.
      ++stats.protocol_errors;
      protocol_errors().inc();
      writer.write_error(e.what());
      break;
    }
    if (!got) break;

    // Reap requests that already reached a terminal state: their SGDN
    // frame is on the wire (written before the state flips), so the sink
    // is quiescent and a long-running session stays bounded.
    std::erase_if(inflight, [](const InFlight& f) { return is_terminal(f.handle.state()); });

    WireRequest wire;
    try {
      wire = decode_request(payload);
    } catch (const ProtocolError& e) {
      // Framing is intact (the length prefix was honored), so a bad
      // payload rejects *this* request and the daemon keeps serving.
      ++stats.protocol_errors;
      protocol_errors().inc();
      writer.write_error(e.what());
      continue;
    }

    Request request;
    request.seed = wire.seed;
    request.steps = wire.steps;
    request.aggregation = wire.aggregation;
    request.context = geo::ContextTensor(wire.channels, wire.height, wire.width);
    request.context.values() = std::move(wire.context);

    auto sink = std::make_unique<DaemonRowSink>(writer, wire.id);
    RequestHandle handle =
        server.submit(std::move(request), *sink, Server::OnFull::kBlock,
                      [&writer, client_id = wire.id](std::uint64_t /*server_id*/,
                                                     RequestState state, long rows,
                                                     const std::string& error) {
                        writer.write_done(client_id, state, rows, error);
                      });
    ++stats.requests;
    inflight.push_back(InFlight{std::move(handle), std::move(sink)});
  }

  // Sinks and the writer must outlive every worker that might touch
  // them: drain before returning.
  for (InFlight& f : inflight) f.handle.wait();
  return stats;
}

}  // namespace spectra::serve
