// Generation-as-a-service (DESIGN §6g): a long-running in-process server
// that turns one-shot `generate_city` calls into queued, cancellable
// requests against one shared read-only model.
//
// Shape of the system:
//
//   clients ──submit──▶ bounded queue ──▶ N serve workers ──rows──▶ RowSink
//                        (backpressure)    (shared ThreadPool)       (per request)
//
// Each worker pops a request, binds a pooled per-request GEMM workspace
// (gemm::WorkspaceScope), and runs `generate_city_streamed` on the shared
// `const SpectraGan`. Because serve workers are ThreadPool workers, every
// nested `parallel_for` inside the generator executes inline — a
// request's entire forward/sew pipeline is one serial instruction stream
// on one worker, while the pool multiplexes up to `workers` requests'
// batched patch forwards through the same GEMM/conv kernels. That is
// also the determinism argument: each request computes exactly the
// serial (SPECTRA_THREADS=1) path, which the PR-2/PR-4 contracts pin
// bitwise-equal to every other thread count — so a (seed, context, T)
// request returns identical rows no matter how many other requests are
// in flight or how they interleave (tests/serve_test.cpp, 1-vs-8).
//
// Failure isolation: a request that violates model preconditions (wrong
// channel count, bad T) or whose sink throws fails *that request*
// (`serve.requests_failed`, message in the handle) and the server keeps
// serving — the daemon must never die to a bad request.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "geo/city_tensor.h"
#include "geo/strip_accumulator.h"
#include "nn/gemm.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace spectra::serve {

// Thrown by submit(OnFull::kReject) when the queue is at capacity.
class QueueFullError : public Error {
 public:
  explicit QueueFullError(std::string message) : Error(std::move(message)) {}
};

// One city-generation request: the (seed, context, steps) triple that
// fully determines the output, plus the aggregation mode.
struct Request {
  std::uint64_t seed = 0;
  long steps = 0;
  geo::ContextTensor context;
  geo::OverlapAggregation aggregation = geo::OverlapAggregation::kMean;
};

enum class RequestState {
  kQueued,     // accepted, waiting for a worker
  kRunning,    // a worker is generating
  kDone,       // all rows delivered
  kFailed,     // model precondition or sink failure; see error()
  kCancelled,  // cancel() observed mid-stream (or server stopped first)
};

// Client-side view of a submitted request. Copyable (shared state); the
// sink passed to submit() must outlive the terminal state.
class RequestHandle {
 public:
  std::uint64_t id() const;

  // Cooperative cancellation: the serving worker checks before every row
  // delivery, so after cancel() returns no further rows reach the sink.
  // Cancelling a finished request is a no-op.
  void cancel();

  // Block until the request reaches a terminal state and return it.
  RequestState wait() const;

  RequestState state() const;
  long rows_streamed() const;
  std::string error() const;  // non-empty only for kFailed

  // Implementation detail (defined in server.cpp); public only so the
  // serving-side sink wrapper can name it.
  struct Shared;

 private:
  friend class Server;
  std::shared_ptr<Shared> shared_;
};

struct ServerOptions {
  std::size_t workers = 8;      // concurrent in-flight requests served
  std::size_t queue_limit = 32; // queued (not yet running) requests accepted

  // SPECTRA_SERVE_WORKERS / SPECTRA_SERVE_QUEUE with the defaults above.
  static ServerOptions from_env();
};

class Server {
 public:
  // The model is shared read-only across every request (the weights
  // registry hands out the same instance to any number of servers).
  Server(std::shared_ptr<const core::SpectraGan> model, ServerOptions options);
  explicit Server(std::shared_ptr<const core::SpectraGan> model)
      : Server(std::move(model), ServerOptions::from_env()) {}
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Backpressure policy when the queue is at queue_limit.
  enum class OnFull {
    kReject,  // throw QueueFullError (counted in serve.requests_rejected)
    kBlock,   // park the caller until a slot frees up
  };

  // Invoked exactly once, from a worker thread (or from stop() for
  // requests that never ran), immediately *before* the terminal state
  // becomes observable through the handle — so a completion frame hits
  // the wire before any wait() returns. Must not block on the handle.
  using CompletionFn = std::function<void(std::uint64_t id, RequestState state, long rows,
                                          const std::string& error)>;

  // Enqueue a request; rows stream into `sink` from a worker thread in
  // strictly increasing row order. `sink` must stay valid until the
  // handle reaches a terminal state.
  RequestHandle submit(Request request, geo::RowSink& sink, OnFull on_full = OnFull::kReject,
                       CompletionFn on_done = nullptr);

  // Stop accepting, cancel queued requests, finish running ones, join
  // workers. Idempotent; also run by the destructor.
  void stop();

  const ServerOptions& options() const { return options_; }

 private:
  struct Queued {
    Request request;
    geo::RowSink* sink = nullptr;
    std::shared_ptr<RequestHandle::Shared> shared;
    CompletionFn on_done;
  };

  void worker_loop();
  void process(Queued item);

  std::shared_ptr<const core::SpectraGan> model_;
  ServerOptions options_;

  Mutex mutex_ SG_ACQUIRED_AFTER(lock_order::serve) SG_ACQUIRED_BEFORE(lock_order::pool);
  CondVar queue_cv_;  // workers wait for work / stop; late stop() callers wait for the join
  CondVar space_cv_;  // kBlock submitters wait for space
  std::deque<Queued> queue_ SG_GUARDED_BY(mutex_);
  std::size_t running_ SG_GUARDED_BY(mutex_) = 0;  // requests currently on a worker
  bool stopping_ SG_GUARDED_BY(mutex_) = false;
  bool stop_done_ SG_GUARDED_BY(mutex_) = false;  // workers joined, pool torn down
  std::uint64_t next_id_ SG_GUARDED_BY(mutex_) = 1;

  // Pooled per-request GEMM workspaces: at most `workers` live at once,
  // recycled so steady-state request turnover never reallocates packed
  // panels (the gemm.workspace_grows contract, now per request instead
  // of per thread).
  std::vector<std::unique_ptr<nn::gemm::Workspace>> workspace_pool_ SG_GUARDED_BY(mutex_);

  // The workers: long-running tasks on a dedicated ThreadPool (the
  // sanctioned threading primitive — DESIGN §6a). Written by the
  // constructor, swapped out under mutex_ by the stop() that joins them.
  std::unique_ptr<ThreadPool> pool_ SG_GUARDED_BY(mutex_);
  std::vector<std::future<void>> workers_ SG_GUARDED_BY(mutex_);
};

}  // namespace spectra::serve
