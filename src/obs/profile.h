// Hierarchical wall-clock profiler: nestable RAII scopes aggregate into a
// per-thread parent→child timing tree (call counts, inclusive nanoseconds,
// and attributed flop/byte work), merged across threads at report time.
//
// Profiling is off by default. Setting SPECTRA_PROFILE enables it at
// startup and registers an atexit report: the text tree always goes to
// stderr; when the value is a path (anything other than `1`/`true`) the
// JSON tree is also written there. Tests toggle it with
// profile_set_enabled(). When disabled, SG_PROFILE_SCOPE costs one
// relaxed atomic load and a branch — the same contract as SG_TRACE_SPAN.
//
//   void d_step() {
//     SG_PROFILE_SCOPE("train/d_step");
//     ...
//   }
//
// Kernels attribute work to the innermost open scope on their thread with
// profile_add_work(flops, bytes); the report derives GFLOP/s and
// arithmetic intensity (flops/byte) per node from it. Work is attributed
// to the node where it is reported, not summed up the tree — a conv node
// and the gemm node nested under it each carry their own accounting.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace spectra::obs {

namespace detail {
extern std::atomic<bool> g_profile_enabled;

struct ProfileNode;

// Nanoseconds since the process profile origin (monotonic clock).
std::uint64_t profile_now_ns();

// Descend into (find-or-create) the named child of the calling thread's
// current node and make it current. Returns the entered node.
ProfileNode* profile_enter(const char* name);

// Record one call of `start_ns`..now into `node` and pop back to its
// parent.
void profile_exit(ProfileNode* node, std::uint64_t start_ns);

// Idempotent SPECTRA_PROFILE autostart hook, invoked from
// Registry::instance() so the static-archive linker cannot drop it.
void profile_env_autostart();
}  // namespace detail

inline bool profile_enabled() {
  return detail::g_profile_enabled.load(std::memory_order_relaxed);
}

// Runtime toggle (SPECTRA_PROFILE flips it on during static init).
void profile_set_enabled(bool enabled);

// Attribute `flops` floating-point operations and `bytes` of memory
// traffic to the innermost open scope on this thread. No-op when
// profiling is disabled or no scope is open.
void profile_add_work(double flops, double bytes);

// Aligned text tree: one row per node with calls, inclusive/exclusive
// seconds, GFLOP/s and arithmetic intensity where work was attributed.
// Per-thread trees are merged by path; scopes entered on pool workers
// appear as their own top-level subtrees.
std::string profile_report_text();

// The same tree as a JSON document:
//   {"wall_seconds": W, "tree": [{"name", "calls", "incl_seconds",
//    "excl_seconds", "flops", "bytes", "children": [...]}, ...]}
std::string profile_report_json();

// Write profile_report_json() to `path`, or honour $SPECTRA_PROFILE when
// `path` is empty (no-op when the knob is unset or a bare enable flag).
void profile_dump(const std::string& path = "");

// Discard every recorded node and restart the wall-clock origin. Only
// safe while no scopes are open. Tests only.
void profile_reset();

// Scoped profile node: enters the named child at construction, records
// one call at destruction. `name` must be a string literal (node
// identity is the pointer first, contents second).
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) {
    if (profile_enabled()) {
      node_ = detail::profile_enter(name);
      start_ns_ = detail::profile_now_ns();
    }
  }
  ~ProfileScope() {
    if (node_ != nullptr) detail::profile_exit(node_, start_ns_);
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  detail::ProfileNode* node_ = nullptr;  // nullptr while profiling is disabled
  std::uint64_t start_ns_ = 0;
};

}  // namespace spectra::obs

#define SG_PROFILE_CONCAT_INNER(a, b) a##b
#define SG_PROFILE_CONCAT(a, b) SG_PROFILE_CONCAT_INNER(a, b)

// `name` must be a string literal (or otherwise outlive the process).
// -DSPECTRA_STRIP_PROBES compiles the scope away entirely; the CI
// obs-overhead job builds a stripped twin to measure what the disabled
// probes cost against truly probe-free code.
#if defined(SPECTRA_STRIP_PROBES)
#define SG_PROFILE_SCOPE(name) \
  do {                         \
  } while (false)
#else
#define SG_PROFILE_SCOPE(name) \
  ::spectra::obs::ProfileScope SG_PROFILE_CONCAT(sg_profile_scope_, __COUNTER__)(name)
#endif
