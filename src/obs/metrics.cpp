#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace spectra::obs {

namespace {

// CAS loop instead of atomic<double>::fetch_add: the latter is C++20 but
// still lowers to a CAS loop on x86 anyway, and this spelling compiles on
// every toolchain we target.
void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void Gauge::add(double delta) { atomic_add(value_, delta); }

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      bounds_.clear();
      buckets_ = std::vector<std::atomic<std::uint64_t>>(1);
      break;
    }
  }
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

std::uint64_t Histogram::bucket_count(std::size_t index) const {
  return index < buckets_.size() ? buckets_[index].load(std::memory_order_relaxed) : 0;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> default_time_buckets() {
  // 1us, 3.16us, 10us, ... 10s (half-decade steps).
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 10.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 3.162277660168379);
  }
  bounds.push_back(10.0);
  return bounds;
}

Registry& Registry::instance() {
  static Registry* registry = [] {
    Registry* r = new Registry();
    if (std::getenv("SPECTRA_METRICS") != nullptr) {
      std::atexit([] { dump_metrics(); });
    }
    return r;
  }();
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  for (auto& entry : counters_) {
    if (entry.first == name) return *entry.second;
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  for (auto& entry : gauges_) {
    if (entry.first == name) return *entry.second;
  }
  gauges_.emplace_back(name, std::make_unique<Gauge>());
  return *gauges_.back().second;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> upper_bounds) {
  std::lock_guard lock(mutex_);
  for (auto& entry : histograms_) {
    if (entry.first == name) return *entry.second;
  }
  if (upper_bounds.empty()) upper_bounds = default_time_buckets();
  histograms_.emplace_back(name, std::make_unique<Histogram>(std::move(upper_bounds)));
  return *histograms_.back().second;
}

std::string Registry::text_snapshot() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "# metrics snapshot\n";
  for (const auto& [name, counter] : counters_) {
    out << "counter " << name << " = " << counter->value() << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    out << "gauge " << name << " = " << format_double(gauge->value()) << '\n';
  }
  for (const auto& [name, hist] : histograms_) {
    out << "histogram " << name << " count=" << hist->count()
        << " sum=" << format_double(hist->sum());
    const double count = static_cast<double>(hist->count());
    if (count > 0) out << " mean=" << format_double(hist->sum() / count);
    out << '\n';
    for (std::size_t i = 0; i <= hist->bounds().size(); ++i) {
      const std::uint64_t n = hist->bucket_count(i);
      if (n == 0) continue;
      out << "  le ";
      if (i < hist->bounds().size()) {
        out << format_double(hist->bounds()[i]);
      } else {
        out << "+inf";
      }
      out << ": " << n << '\n';
    }
  }
  return out.str();
}

std::string Registry::json_snapshot() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << json_escape(counters_[i].first) << "\":" << counters_[i].second->value();
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << json_escape(gauges_[i].first)
        << "\":" << format_double(gauges_[i].second->value());
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (i != 0) out << ',';
    const Histogram& hist = *histograms_[i].second;
    out << '"' << json_escape(histograms_[i].first) << "\":{\"count\":" << hist.count()
        << ",\"sum\":" << format_double(hist.sum()) << ",\"bounds\":[";
    for (std::size_t b = 0; b < hist.bounds().size(); ++b) {
      if (b != 0) out << ',';
      out << format_double(hist.bounds()[b]);
    }
    out << "],\"buckets\":[";
    for (std::size_t b = 0; b <= hist.bounds().size(); ++b) {
      if (b != 0) out << ',';
      out << hist.bucket_count(b);
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

void Registry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& entry : counters_) entry.second->reset();
  for (auto& entry : gauges_) entry.second->reset();
  for (auto& entry : histograms_) entry.second->reset();
}

std::string metrics_snapshot() { return Registry::instance().text_snapshot(); }

std::string metrics_snapshot_json() { return Registry::instance().json_snapshot(); }

void dump_metrics(const std::string& path) {
  std::string target = path;
  if (target.empty()) {
    const char* env = std::getenv("SPECTRA_METRICS");
    if (env != nullptr) target = env;
  }
  if (target.empty()) return;
  std::ofstream out(target);
  if (!out) return;
  out << Registry::instance().json_snapshot() << '\n';
}

}  // namespace spectra::obs
