#include "obs/metrics.h"

#include "obs/profile.h"
#include "obs/run_manifest.h"
#include "obs/sampler.h"
#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace spectra::obs {

namespace {

// CAS loop instead of atomic<double>::fetch_add: the latter is C++20 but
// still lowers to a CAS loop on x86 anyway, and this spelling compiles on
// every toolchain we target.
void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

// SplitMix64 finalizer: the reservoir's random source is a pure hash of
// the observation index, so sampling needs no RNG state and stays
// race-free (two threads hashing distinct indices never contend).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Sorted-sample quantile with linear interpolation between order
// statistics.
double sorted_quantile(std::vector<double>& values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace

void Gauge::add(double delta) { atomic_add(value_, delta); }

void MaxGauge::update(double value) {
  double current = value_.load(std::memory_order_relaxed);
  while (value > current &&
         !value_.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1),
      reservoir_(kReservoirSize) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      bounds_.clear();
      buckets_ = std::vector<std::atomic<std::uint64_t>>(1);
      break;
    }
  }
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  // Algorithm R over the fixed reservoir: the first kReservoirSize
  // observations fill it, later ones replace a pseudo-random slot with
  // probability kReservoirSize/(n+1). A racing pair of stores just means
  // one sampled value wins the slot — acceptable for a sample.
  if (n < kReservoirSize) {
    reservoir_[static_cast<std::size_t>(n)].store(value, std::memory_order_relaxed);
  } else {
    const std::uint64_t r = mix64(n) % (n + 1);
    if (r < kReservoirSize) {
      reservoir_[static_cast<std::size_t>(r)].store(value, std::memory_order_relaxed);
    }
  }
}

std::uint64_t Histogram::bucket_count(std::size_t index) const {
  return index < buckets_.size() ? buckets_[index].load(std::memory_order_relaxed) : 0;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  for (auto& slot : reservoir_) slot.store(0.0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  const std::size_t filled =
      static_cast<std::size_t>(std::min<std::uint64_t>(n, kReservoirSize));
  std::vector<double> sample(filled);
  for (std::size_t i = 0; i < filled; ++i) {
    sample[i] = reservoir_[i].load(std::memory_order_relaxed);
  }
  return sorted_quantile(sample, q);
}

double Histogram::bucket_quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double frac =
          (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative += in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> default_time_buckets() {
  // 1us, 3.16us, 10us, ... 10s (half-decade steps).
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 10.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 3.162277660168379);
  }
  bounds.push_back(10.0);
  return bounds;
}

Registry& Registry::instance() {
  static Registry* registry = [] {
    Registry* r = new Registry();
    if (std::getenv("SPECTRA_METRICS") != nullptr) {
      std::atexit([] { dump_metrics(); });
    }
    return r;
  }();
  // The other obs env hooks (profiler, sampler, manifest) fire here
  // because this is the one obs symbol every binary references — their
  // own translation units would otherwise be dropped from the static
  // archive along with any TU-level initializers. The hooks never call
  // Registry::instance() on this thread (the sampler only spawns its
  // thread), so the nested static init cannot recurse.
  static const bool hooks_installed = [] {
    detail::trace_env_autostart();
    detail::profile_env_autostart();
    detail::sampler_env_autostart();
    detail::run_manifest_env_autostart();
    return true;
  }();
  (void)hooks_installed;
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  for (auto& entry : counters_) {
    if (entry.first == name) return *entry.second;
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& Registry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  for (auto& entry : gauges_) {
    if (entry.first == name) return *entry.second;
  }
  gauges_.emplace_back(name, std::make_unique<Gauge>());
  return *gauges_.back().second;
}

MaxGauge& Registry::max_gauge(const std::string& name) {
  MutexLock lock(mutex_);
  for (auto& entry : max_gauges_) {
    if (entry.first == name) return *entry.second;
  }
  max_gauges_.emplace_back(name, std::make_unique<MaxGauge>());
  return *max_gauges_.back().second;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> upper_bounds) {
  MutexLock lock(mutex_);
  for (auto& entry : histograms_) {
    if (entry.first == name) return *entry.second;
  }
  if (upper_bounds.empty()) upper_bounds = default_time_buckets();
  histograms_.emplace_back(name, std::make_unique<Histogram>(std::move(upper_bounds)));
  return *histograms_.back().second;
}

std::string Registry::text_snapshot() const {
  MutexLock lock(mutex_);
  std::ostringstream out;
  out << "# metrics snapshot\n";
  for (const auto& [name, counter] : counters_) {
    out << "counter " << name << " = " << counter->value() << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    out << "gauge " << name << " = " << format_double(gauge->value()) << '\n';
  }
  for (const auto& [name, gauge] : max_gauges_) {
    out << "maxgauge " << name << " = " << format_double(gauge->value()) << '\n';
  }
  for (const auto& [name, hist] : histograms_) {
    out << "histogram " << name << " count=" << hist->count()
        << " sum=" << format_double(hist->sum());
    const double count = static_cast<double>(hist->count());
    if (count > 0) {
      out << " mean=" << format_double(hist->sum() / count)
          << " p50=" << format_double(hist->quantile(0.50))
          << " p95=" << format_double(hist->quantile(0.95))
          << " p99=" << format_double(hist->quantile(0.99));
    }
    out << '\n';
    for (std::size_t i = 0; i <= hist->bounds().size(); ++i) {
      const std::uint64_t n = hist->bucket_count(i);
      if (n == 0) continue;
      out << "  le ";
      if (i < hist->bounds().size()) {
        out << format_double(hist->bounds()[i]);
      } else {
        out << "+inf";
      }
      out << ": " << n << '\n';
    }
  }
  return out.str();
}

std::string Registry::json_snapshot() const {
  MutexLock lock(mutex_);
  std::ostringstream out;
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << json_escape(counters_[i].first) << "\":" << counters_[i].second->value();
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << json_escape(gauges_[i].first)
        << "\":" << format_double(gauges_[i].second->value());
  }
  out << "},\"max_gauges\":{";
  for (std::size_t i = 0; i < max_gauges_.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << json_escape(max_gauges_[i].first)
        << "\":" << format_double(max_gauges_[i].second->value());
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (i != 0) out << ',';
    const Histogram& hist = *histograms_[i].second;
    out << '"' << json_escape(histograms_[i].first) << "\":{\"count\":" << hist.count()
        << ",\"sum\":" << format_double(hist.sum());
    if (hist.count() > 0) {
      out << ",\"p50\":" << format_double(hist.quantile(0.50))
          << ",\"p95\":" << format_double(hist.quantile(0.95))
          << ",\"p99\":" << format_double(hist.quantile(0.99));
    }
    out << ",\"bounds\":[";
    for (std::size_t b = 0; b < hist.bounds().size(); ++b) {
      if (b != 0) out << ',';
      out << format_double(hist.bounds()[b]);
    }
    out << "],\"buckets\":[";
    for (std::size_t b = 0; b <= hist.bounds().size(); ++b) {
      if (b != 0) out << ',';
      out << hist.bucket_count(b);
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

void Registry::reset_values() {
  MutexLock lock(mutex_);
  for (auto& entry : counters_) entry.second->reset();
  for (auto& entry : gauges_) entry.second->reset();
  for (auto& entry : max_gauges_) entry.second->reset();
  for (auto& entry : histograms_) entry.second->reset();
}

std::string metrics_snapshot() { return Registry::instance().text_snapshot(); }

std::string metrics_snapshot_json() { return Registry::instance().json_snapshot(); }

void dump_metrics(const std::string& path) {
  std::string target = path;
  if (target.empty()) {
    const char* env = std::getenv("SPECTRA_METRICS");
    if (env != nullptr) target = env;
  }
  if (target.empty()) return;
  std::ofstream out(target);
  if (!out) return;
  out << Registry::instance().json_snapshot() << '\n';
}

}  // namespace spectra::obs
