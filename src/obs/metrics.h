// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with lock-cheap hot paths (a relaxed atomic op per update;
// the registry mutex is only taken at instrument lookup, which callers
// amortize behind function-local statics).
//
// Snapshots are exported as aligned text or JSON. When SPECTRA_METRICS
// names a file, the JSON snapshot is also written there at process exit.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace spectra::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// High-water-mark gauge: update() keeps the maximum value ever seen.
// Marks are non-negative by convention (queue depths, peak RSS); reset
// returns to zero.
class MaxGauge {
 public:
  void update(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Histogram over fixed, strictly increasing upper bounds. Values above
// the last bound land in an implicit +inf overflow bucket, so there are
// bounds().size() + 1 buckets in total.
//
// Beside the buckets, every histogram keeps a fixed-size reservoir
// sample of the observed values (Algorithm R with a counter-hash random
// source — lock-free, no RNG state), so snapshots report real
// p50/p95/p99 instead of bucket-resolution estimates.
class Histogram {
 public:
  // Reservoir capacity: 512 doubles (4 KiB) bounds the p99 rank error
  // near 0.5% while keeping per-histogram memory trivial.
  static constexpr std::size_t kReservoirSize = 512;

  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t index) const;
  void reset();

  // Quantile estimate from the reservoir sample (sorted, linearly
  // interpolated between order statistics). `q` in [0, 1]; NaN when no
  // values have been observed.
  double quantile(double q) const;

  // Coarser quantile estimate interpolated inside the fixed buckets
  // (lower edge of bucket 0 is taken as 0 — all registered histograms
  // record non-negative quantities). NaN when empty; values in the +inf
  // overflow bucket clamp to the last finite bound.
  double bucket_quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::vector<std::atomic<double>> reservoir_;       // kReservoirSize slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Exponential seconds buckets, 1us .. 10s — the default for timing
// histograms (FFT calls, iteration phases).
std::vector<double> default_time_buckets();

class Registry {
 public:
  // The process-wide registry (leaked so instruments stay valid for
  // atexit dumps and for threads still running during shutdown).
  static Registry& instance();

  // Lookup-or-create by name. Returned references are stable for the
  // process lifetime; cache them in a function-local static on hot paths.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  MaxGauge& max_gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds = {});

  std::string text_snapshot() const;
  std::string json_snapshot() const;

  // Zero every instrument's value (names stay registered). Tests only.
  void reset_values();

 private:
  Registry() = default;

  mutable Mutex mutex_ SG_ACQUIRED_AFTER(lock_order::obs)
      SG_ACQUIRED_BEFORE(lock_order::fft_cache);
  // Ordered by registration; unique_ptr keeps addresses stable (the
  // instruments themselves are relaxed atomics, so only the name lists
  // are guarded — updates through returned references are lock-free).
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_
      SG_GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_
      SG_GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, std::unique_ptr<MaxGauge>>> max_gauges_
      SG_GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_
      SG_GUARDED_BY(mutex_);
};

// Snapshots of the process registry.
std::string metrics_snapshot();       // aligned text
std::string metrics_snapshot_json();  // JSON object

// Write the JSON snapshot to `path`, or to $SPECTRA_METRICS when `path`
// is empty. No-op when neither names a file.
void dump_metrics(const std::string& path = "");

// RAII seconds timer: records the scope's wall time into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start_;
    histogram_.observe(elapsed.count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace spectra::obs
