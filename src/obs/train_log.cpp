#include "obs/train_log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace spectra::obs {

namespace {

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Locate `"key":` in `line` and parse the number that follows.
std::optional<double> find_number(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return value;
}

}  // namespace

std::string to_jsonl(const TrainIterRecord& record) {
  std::string out = "{\"iter\":" + std::to_string(record.iteration);
  out += ",\"d_loss\":" + format_double(record.d_loss);
  out += ",\"g_adv_loss\":" + format_double(record.g_adv_loss);
  out += ",\"l1_loss\":" + format_double(record.l1_loss);
  out += ",\"grad_norm_d\":" + format_double(record.grad_norm_d);
  out += ",\"grad_norm_g\":" + format_double(record.grad_norm_g);
  out += ",\"seconds\":" + format_double(record.seconds);
  out += "}";
  return out;
}

std::optional<TrainIterRecord> parse_jsonl(const std::string& line) {
  TrainIterRecord record;
  const auto iter = find_number(line, "iter");
  const auto d_loss = find_number(line, "d_loss");
  const auto g_adv = find_number(line, "g_adv_loss");
  const auto l1 = find_number(line, "l1_loss");
  const auto norm_d = find_number(line, "grad_norm_d");
  const auto norm_g = find_number(line, "grad_norm_g");
  const auto seconds = find_number(line, "seconds");
  if (!iter || !d_loss || !g_adv || !l1 || !norm_d || !norm_g || !seconds) {
    return std::nullopt;
  }
  record.iteration = static_cast<long>(*iter);
  record.d_loss = *d_loss;
  record.g_adv_loss = *g_adv;
  record.l1_loss = *l1;
  record.grad_norm_d = *norm_d;
  record.grad_norm_g = *norm_g;
  record.seconds = *seconds;
  return record;
}

TrainLogSink::TrainLogSink() {
  const char* env = std::getenv("SPECTRA_TRAIN_LOG");
  if (env != nullptr && *env != '\0') {
    out_.open(env, std::ios::app);
  }
}

TrainLogSink::TrainLogSink(const std::string& path) {
  if (!path.empty()) out_.open(path, std::ios::app);
}

void TrainLogSink::write(const TrainIterRecord& record) {
  if (!out_.is_open()) return;
  out_ << to_jsonl(record) << '\n';
  out_.flush();
}

}  // namespace spectra::obs
