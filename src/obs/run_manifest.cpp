#include "obs/run_manifest.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

#if __has_include("obs/build_info.h")
#include "obs/build_info.h"
#endif

// Fallbacks for builds that bypass the CMake configure step.
#ifndef SG_BUILD_GIT_SHA
#define SG_BUILD_GIT_SHA "unknown"
#endif
#ifndef SG_BUILD_TYPE
#define SG_BUILD_TYPE "unknown"
#endif
#ifndef SG_BUILD_CXX_FLAGS
#define SG_BUILD_CXX_FLAGS ""
#endif

#if defined(__linux__)
#include <unistd.h>
extern char** environ;
#endif

namespace spectra::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Wall time origin: first touch of the manifest machinery (static init
// in any linked binary, so effectively process start).
std::chrono::steady_clock::time_point origin() {
  // sg-lint: allow(mutable-static) const time origin, set once on first use
  static const std::chrono::steady_clock::time_point t = std::chrono::steady_clock::now();
  return t;
}

struct ExtraState {
  Mutex mutex SG_ACQUIRED_AFTER(lock_order::obs)
      SG_ACQUIRED_BEFORE(lock_order::fft_cache);
  std::map<std::string, std::string> values SG_GUARDED_BY(mutex);  // key -> raw JSON value
};

ExtraState& extras() {
  // sg-lint: allow(mutable-static) leaked manifest extras; read by atexit writer
  static ExtraState* s = new ExtraState();
  return *s;
}

// Default run name set by bench_report() et al., consulted when a writer
// (notably the SPECTRA_RUNMETA atexit rewrite) passes no explicit name.
struct NameState {
  Mutex mutex SG_ACQUIRED_AFTER(lock_order::obs)
      SG_ACQUIRED_BEFORE(lock_order::fft_cache);
  std::string name SG_GUARDED_BY(mutex);
};

NameState& default_name() {
  // sg-lint: allow(mutable-static) leaked default run name; read by atexit writer
  static NameState* s = new NameState();
  return *s;
}

// Every SPECTRA_* variable in the environment, sorted by the map.
std::map<std::string, std::string> spectra_env() {
  std::map<std::string, std::string> env;
#if defined(__linux__)
  for (char** entry = environ; entry != nullptr && *entry != nullptr; ++entry) {
    if (std::strncmp(*entry, "SPECTRA_", 8) != 0) continue;
    const char* eq = std::strchr(*entry, '=');
    if (eq == nullptr) continue;
    env.emplace(std::string(*entry, static_cast<std::size_t>(eq - *entry)),
                std::string(eq + 1));
  }
#endif
  return env;
}

}  // namespace

void run_manifest_set(const std::string& key, const std::string& json_value) {
  ExtraState& s = extras();
  MutexLock lock(s.mutex);
  s.values[key] = json_value;
}

void run_manifest_set_string(const std::string& key, const std::string& value) {
  run_manifest_set(key, "\"" + json_escape(value) + "\"");
}

void run_manifest_set_name(const std::string& run_name) {
  NameState& s = default_name();
  MutexLock lock(s.mutex);
  s.name = run_name;
}

std::string run_manifest_json(const std::string& run_name) {
  std::string name = run_name;
  if (name.empty()) {
    const char* env = std::getenv("SPECTRA_RUN");
    if (env != nullptr && env[0] != '\0') {
      name = env;
    } else {
      NameState& s = default_name();
      MutexLock lock(s.mutex);
      name = s.name.empty() ? "run" : s.name;
    }
  }
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - origin();

  std::ostringstream out;
  out << "{\"name\":\"" << json_escape(name) << "\",\"git_sha\":\""
      << json_escape(SG_BUILD_GIT_SHA) << "\",\"build_type\":\""
      << json_escape(SG_BUILD_TYPE) << "\",\"cxx_flags\":\""
      << json_escape(SG_BUILD_CXX_FLAGS) << "\",\"wall_seconds\":"
      << format_double(wall.count()) << ",\"env\":{";
  bool first = true;
  for (const auto& [key, value] : spectra_env()) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
  }
  out << "},\"extra\":{";
  {
    ExtraState& s = extras();
    MutexLock lock(s.mutex);
    first = true;
    for (const auto& [key, value] : s.values) {
      if (!first) out << ',';
      first = false;
      out << '"' << json_escape(key) << "\":" << value;
    }
  }
  out << "},\"metrics\":" << Registry::instance().json_snapshot()
      << ",\"profile\":" << profile_report_json() << '}';
  return out.str();
}

void write_run_manifest(const std::string& path, const std::string& run_name) {
  std::string target = path;
  if (target.empty()) {
    const char* env = std::getenv("SPECTRA_RUNMETA");
    if (env != nullptr) target = env;
  }
  if (target.empty()) return;
  std::ofstream out(target);
  if (!out) return;
  out << run_manifest_json(run_name) << '\n';
}

namespace detail {

void run_manifest_env_autostart() {
  // sg-lint: allow(mutable-static) once-guard for the env autostart hook
  static bool done = false;
  if (done) return;
  done = true;
  origin();  // pin the wall-time origin at static init
  if (std::getenv("SPECTRA_RUNMETA") != nullptr) {
    std::atexit([] { write_run_manifest(); });
  }
}

}  // namespace detail

}  // namespace spectra::obs
